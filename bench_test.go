// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus micro-benchmarks of the substrate. Each figure-level benchmark runs a
// scaled-down version of the corresponding experiment in
// internal/experiment and reports the figure's headline quantity as a
// custom metric; full-scale runs use cmd/handsfree.
package handsfree

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"handsfree/internal/experiment"
	"handsfree/internal/nn"
	"handsfree/internal/optimizer"
	"handsfree/internal/plancache"
	"handsfree/internal/query"
	"handsfree/internal/rejoin"
	"handsfree/internal/rl"
	"handsfree/internal/sketch"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiment.Lab
	benchLabErr  error
)

func lab(b *testing.B) *experiment.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab, benchLabErr = experiment.NewLab(experiment.QuickLabConfig())
	})
	if benchLabErr != nil {
		b.Fatal(benchLabErr)
	}
	return benchLab
}

// BenchmarkFig3aConvergence regenerates Figure 3a (ReJOIN convergence).
// Metric: final plan cost relative to the traditional optimizer (percent).
func BenchmarkFig3aConvergence(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig3a(experiment.Fig3aConfig{
			Episodes: 2000, QueryCount: 8, MinRel: 4, MaxRel: 6,
			SamplePoints: 10, Window: 150, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Curve.Last(), "final-%-of-postgres")
	}
}

// BenchmarkFig3bPlanCost regenerates Figure 3b (final cost per JOB query).
// Metric: queries where ReJOIN matched or beat the baseline.
func BenchmarkFig3bPlanCost(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig3b(experiment.Fig3bConfig{Episodes: 2500, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Wins), "wins-of-10")
	}
}

// BenchmarkFig3cPlanningTime regenerates Figure 3c (planning time vs
// relation count). Metric: traditional-vs-ReJOIN time ratio at 12 relations.
func BenchmarkFig3cPlanningTime(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.Fig3c(experiment.Fig3cConfig{
			RelationCounts: []int{4, 8, 12, 14}, Repeats: 2, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Postgres.Y[2]/res.ReJOIN.Y[2], "pg/rejoin-time-at-12rel")
	}
}

// BenchmarkNaiveFullSpace regenerates the §4 negative result. Metric: how
// many times worse the naive full-space agent is than the restricted one.
func BenchmarkNaiveFullSpace(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.NaiveFullSpace(experiment.NaiveConfig{
			Episodes: 2000, QueryCount: 8, MinRel: 4, MaxRel: 6, EvalEvery: 500, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FinalAgent/res.FinalJoinOrder, "naive/restricted-ratio")
	}
}

// BenchmarkLatencyRewardTimeouts regenerates §4 footnote 2. Metric: the
// fraction of tabula-rasa episodes hitting the execution budget.
func BenchmarkLatencyRewardTimeouts(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.LatencyFromScratch(experiment.ScratchLatencyConfig{
			Episodes: 120, QueryCount: 8, MinRel: 5, MaxRel: 7, BudgetFactor: 25, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TimeoutFraction, "timeout-fraction")
	}
}

// BenchmarkLfD regenerates §5.1. Metric: latency ratio vs expert after
// imitation alone (before any agent-driven execution).
func BenchmarkLfD(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.LfDExperiment(experiment.LfDConfig{
			QueryCount: 8, MinRel: 5, MaxRel: 7, PretrainBatches: 1200, FineTuneEpisodes: 200, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RatioAfterPretrain, "imitation-ratio")
		b.ReportMetric(float64(res.Catastrophic), "catastrophic-execs")
	}
}

// BenchmarkBootstrapScaling regenerates §5.2. Metric: extra destabilization
// of the unscaled reward switch versus the paper's linear rescaling.
func BenchmarkBootstrapScaling(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.BootstrapExperiment(experiment.BootstrapConfig{
			QueryCount: 8, MinRel: 4, MaxRel: 6, Phase1Episodes: 1200, Phase2Episodes: 600, EvalEvery: 150, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DipUnscaled-res.DipScaled, "extra-dip-log10")
	}
}

// BenchmarkCurricula regenerates §5.3. Metric: the flat baseline's final
// ratio divided by the best curriculum's.
func BenchmarkCurricula(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		res, err := l.CurriculumExperiment(experiment.CurriculumConfig{
			QueryCount: 12, MinRel: 2, MaxRel: 5, EpisodesPerPhase: 250, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		best := res.FinalRatios["pipeline"]
		for _, name := range []string{"relations", "hybrid"} {
			if r := res.FinalRatios[name]; r < best {
				best = r
			}
		}
		b.ReportMetric(res.FinalRatios["flat (naive §4)"]/best, "flat/best-curriculum")
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkPlannerDP measures exhaustive DP planning on an 8-relation query.
func BenchmarkPlannerDP(b *testing.B) {
	l := lab(b)
	q, err := l.Workload.ByRelations(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Planner.PlanWith(q, optimizer.DP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerGreedy measures greedy planning on an 8-relation query.
func BenchmarkPlannerGreedy(b *testing.B) {
	l := lab(b)
	q, err := l.Workload.ByRelations(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Planner.PlanWith(q, optimizer.Greedy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerGEQO measures randomized search on a 17-relation query.
func BenchmarkPlannerGEQO(b *testing.B) {
	l := lab(b)
	q, err := l.Workload.ByRelations(17, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Planner.PlanWith(q, optimizer.GEQO); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostModel measures costing one physical plan.
func BenchmarkCostModel(b *testing.B) {
	l := lab(b)
	q, err := l.Workload.ByRelations(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	planned, err := l.Planner.Plan(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Model.Cost(q, planned.Root)
	}
}

// BenchmarkSimulatedLatency measures one latency-model evaluation.
func BenchmarkSimulatedLatency(b *testing.B) {
	l := lab(b)
	q, err := l.Workload.ByRelations(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	planned, err := l.Planner.Plan(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Latency.Latency(q, planned.Root)
	}
}

// BenchmarkExecutorHashJoin measures really executing a two-way hash join.
func BenchmarkExecutorHashJoin(b *testing.B) {
	sys, err := Open(Config{Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	q, err := ParseSQL(`SELECT COUNT(*) FROM title t, movie_companies mc WHERE mc.movie_id = t.id`)
	if err != nil {
		b.Fatal(err)
	}
	planned, err := sys.Plan(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Execute(q, planned.Root); err != nil {
			b.Fatal(err)
		}
	}
}

// --- batched training-path benchmarks ---

// benchQAgent builds a training setup shaped like the production agents:
// a 256-dim observation, 64 actions, 128→64 hidden layers, and a replay
// buffer of 4096 samples.
func benchQAgent(seed int64) (*rl.QAgent, *rl.ReplayBuffer) {
	return benchQAgentAt(nn.F64, nn.EngineAuto, seed)
}

func benchQAgentAt(p nn.Precision, e nn.Engine, seed int64) (*rl.QAgent, *rl.ReplayBuffer) {
	const obsDim, actions = 256, 64
	agent := rl.NewQAgent(obsDim, actions, rl.QAgentConfig{Hidden: []int{128, 64}, Precision: p, Engine: e, Seed: seed})
	buf := rl.NewReplayBuffer(4096)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 4096; i++ {
		f := make([]float64, obsDim)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		buf.Add(rl.Sample{Features: f, Action: rng.Intn(actions), Target: rng.NormFloat64()})
	}
	return agent, buf
}

// BenchmarkBatchedTrain measures QAgent.Train's batched path: one 64-sample
// minibatch per iteration through a single parallel forward/backward pass,
// at each tensor-core precision × compute engine. The f32 sub-benchmarks
// move half the bytes per matmul, bias add, and Adam step; the blocked
// sub-benchmarks run the packed-panel microkernels. Steady state is
// allocation-free (0 allocs/op — see TestBatchedTrainZeroAlloc).
func BenchmarkBatchedTrain(b *testing.B) {
	for _, p := range []nn.Precision{nn.F64, nn.F32} {
		for _, e := range []nn.Engine{nn.EngineReference, nn.EngineBlocked} {
			b.Run(fmt.Sprintf("%s/%s", p, e), func(b *testing.B) {
				agent, buf := benchQAgentAt(p, e, 1)
				agent.Train(buf, 64) // size the layer and batch buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					agent.Train(buf, 64)
				}
			})
		}
	}
}

// TestBatchedTrainZeroAlloc pins the hot training path's zero-steady-state
// allocation property end to end — replay sampling, batch assembly, the
// forward/backward kernels, and the Adam step — under both compute engines.
// Serial kernels only: the parallel dispatch path allocates its task
// closures by design.
func TestBatchedTrainZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless under -race")
	}
	prev := nn.Workers()
	nn.SetWorkers(1)
	defer nn.SetWorkers(prev)
	for _, e := range []nn.Engine{nn.EngineReference, nn.EngineBlocked} {
		agent, buf := benchQAgentAt(nn.F64, e, 1)
		train := func() { agent.Train(buf, 64) }
		train() // size the layer and batch buffers
		if allocs := testing.AllocsPerRun(20, train); allocs != 0 {
			t.Errorf("%v: batched train %.1f allocs/op, want 0", e, allocs)
		}
	}
}

// BenchmarkPerSampleTrain replicates the pre-batching training loop — one
// 1×d forward/backward per sample — over the same 64-sample minibatch, for
// comparison against BenchmarkBatchedTrain.
func BenchmarkPerSampleTrain(b *testing.B) {
	agent, buf := benchQAgent(1)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := buf.Sample(64, rng)
		agent.Net.ZeroGrad()
		for _, s := range batch {
			pred := agent.Net.Forward(nn.FromVec(s.Features)).Data
			grad := make([]float64, len(pred))
			d := pred[s.Action] - s.Target
			const delta = 1.0
			if math.Abs(d) <= delta {
				grad[s.Action] = d
			} else if d > 0 {
				grad[s.Action] = delta
			} else {
				grad[s.Action] = -delta
			}
			agent.Net.Backward(&nn.Mat{Rows: 1, Cols: len(grad), Data: grad})
		}
		for _, p := range agent.Net.Params() {
			for j := range p.Grad {
				p.Grad[j] /= float64(len(batch))
			}
		}
		agent.Opt.Step(agent.Net.Params())
	}
}

// BenchmarkMatMulParallel measures the goroutine-parallel kernel on the
// batched-training matmul shape (64×256 · 256×128).
func BenchmarkMatMulParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := nn.NewMat(64, 256)
	w := nn.NewMat(256, 128)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.MatMul(x, w)
	}
}

// BenchmarkMatMulSerial measures the same multiply with the parallel path
// disabled (SetWorkers(1)).
func BenchmarkMatMulSerial(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := nn.NewMat(64, 256)
	w := nn.NewMat(256, 128)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	prev := nn.Workers()
	nn.SetWorkers(1)
	defer nn.SetWorkers(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.MatMul(x, w)
	}
}

// BenchmarkParallelEpisodeCollection measures ReJOIN training throughput
// with 4 collection workers, against BenchmarkSequentialEpisodeCollection.
func BenchmarkParallelEpisodeCollection(b *testing.B) {
	benchCollect(b, 4)
}

// BenchmarkSequentialEpisodeCollection is the single-worker baseline.
func BenchmarkSequentialEpisodeCollection(b *testing.B) {
	benchCollect(b, 1)
}

func benchCollect(b *testing.B, workers int) {
	l := lab(b)
	queries := make([]*query.Query, 0, 4)
	for i := int64(0); i < 4; i++ {
		q, err := l.Workload.ByRelations(8, 3+i)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	space := l.Space(8)
	env := rejoin.NewEnv(space, l.Planner, queries, 1)
	agent := rejoin.NewAgent(env, rl.ReinforceConfig{Hidden: []int{128, 64}, BatchSize: 16, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.TrainEpisodes(16, workers)
	}
}

// BenchmarkSyncCollect measures round-synchronous ReJOIN training (frozen
// snapshots, barrier join per policy batch) at 1/4/8 collection workers on
// the bench workload; one iteration = 48 episodes. Compare per-actor-count
// against BenchmarkAsyncCollect: the async split removes the round barrier,
// so it pulls ahead as actors multiply and episode durations spread.
func BenchmarkSyncCollect(b *testing.B) {
	for _, actors := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("actors=%d", actors), func(b *testing.B) {
			benchActorCollect(b, actors, false)
		})
	}
}

// BenchmarkAsyncCollect measures asynchronous actor-learner ReJOIN training
// (lock-free parameter-server snapshots, staleness bound 4, no barrier) at
// 1/4/8 actors; one iteration = 48 episodes.
func BenchmarkAsyncCollect(b *testing.B) {
	for _, actors := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("actors=%d", actors), func(b *testing.B) {
			benchActorCollect(b, actors, true)
		})
	}
}

func benchActorCollect(b *testing.B, actors int, async bool) {
	l := lab(b)
	queries := make([]*query.Query, 0, 4)
	for i := int64(0); i < 4; i++ {
		q, err := l.Workload.ByRelations(8, 3+i)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	env := rejoin.NewEnv(l.Space(8), l.Planner, queries, 1)
	agent := rejoin.NewAgent(env, rl.ReinforceConfig{Hidden: []int{128, 64}, BatchSize: 16, Seed: 1})
	const episodes = 48
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if async {
			agent.TrainAsync(episodes, rl.AsyncConfig{Actors: actors, Staleness: 4})
		} else {
			agent.TrainEpisodes(episodes, actors)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(episodes*b.N)/b.Elapsed().Seconds(), "episodes/sec")
}

// --- plan cache benchmarks ---

// benchWorkload builds the fixed 4-query, 8-relation workload shared by the
// cache benchmarks.
func benchWorkload(b *testing.B, l *experiment.Lab) []*query.Query {
	b.Helper()
	queries := make([]*query.Query, 0, 4)
	for i := int64(0); i < 4; i++ {
		q, err := l.Workload.ByRelations(8, 3+i)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	return queries
}

// benchCacheCollect measures repeated-workload episode collection under a
// frozen policy — the serving/evaluation regime the paper's latency-centric
// loop converges to, where every sweep replays the same workload queries.
// Each iteration collects one greedy episode per workload query. With the
// cache, the second and later sweeps are whole-plan fingerprint hits that
// skip both the policy rollout and the optimizer completion.
func benchCacheCollect(b *testing.B, withCache bool) {
	l := lab(b)
	queries := benchWorkload(b, l)
	env := rejoin.NewEnv(l.Space(8), l.Planner, queries, 1)
	var cache *plancache.Cache
	if withCache {
		cache = plancache.New(plancache.Config{Capacity: 1 << 16, Shards: 16})
		env.UseCache(cache)
	}
	agent := rejoin.NewAgent(env, rl.ReinforceConfig{Hidden: []int{128, 64}, BatchSize: 16, Seed: 1})
	for _, q := range queries { // warm-up sweep (run for the cold baseline too, for parity)
		agent.GreedyPlan(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if root, _ := agent.GreedyPlan(q); root == nil {
				b.Fatal("no plan")
			}
		}
	}
	if withCache {
		b.StopTimer()
		b.ReportMetric(cache.Stats().HitRate(), "hit-rate")
	}
}

// BenchmarkCachedCollect is repeated-workload episode collection with a
// warm plan cache; compare against BenchmarkColdCollect for the cache's
// effect on revisited queries.
func BenchmarkCachedCollect(b *testing.B) {
	benchCacheCollect(b, true)
}

// BenchmarkColdCollect is the identical collection loop without a cache:
// every repetition of every workload query pays the full rollout and
// optimizer completion.
func BenchmarkColdCollect(b *testing.B) {
	benchCacheCollect(b, false)
}

// benchCacheTrainingCollect measures the stochastic training hot path — 4
// workers, policy snapshots refreshed and updated every round — with or
// without the cache. Sampled join orders rarely repeat wholesale, so only
// subtree entries (leaves, small joins) hit; the win is real but modest
// compared to the frozen-policy sweep above. minAdmit > 0 adds the
// cost-based admission threshold: cheap subtree entries (the ones that
// dominate Put traffic here while rarely hitting) are not memoized at all.
func benchCacheTrainingCollect(b *testing.B, withCache bool, minAdmit float64) {
	l := lab(b)
	queries := benchWorkload(b, l)
	env := rejoin.NewEnv(l.Space(8), l.Planner, queries, 1)
	var cache *plancache.Cache
	if withCache {
		cache = plancache.New(plancache.Config{Capacity: 1 << 16, Shards: 16, MinAdmitCost: minAdmit})
		env.UseCache(cache)
	}
	agent := rejoin.NewAgent(env, rl.ReinforceConfig{Hidden: []int{128, 64}, BatchSize: 16, Seed: 1})
	agent.TrainEpisodes(16, 4) // warm-up sweep (also for the cold baseline)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.TrainEpisodes(16, 4)
	}
	if withCache {
		b.StopTimer()
		st := cache.Stats()
		b.ReportMetric(st.HitRate(), "hit-rate")
		b.ReportMetric(float64(st.AdmissionSkips), "admission-skips")
	}
}

// BenchmarkCachedTrainingCollect is stochastic parallel training collection
// with the plan cache attached and unconditional admission.
func BenchmarkCachedTrainingCollect(b *testing.B) {
	benchCacheTrainingCollect(b, true, 0)
}

// BenchmarkCachedTrainingCollectAdmission adds the cost-based admission
// threshold, skipping completion subtrees cheaper than the lookup they'd
// save; compare against BenchmarkCachedTrainingCollect (memoize everything)
// and BenchmarkColdTrainingCollect (no cache). As of PR 5 the environments
// also keep a per-episode skeleton-hash memo (optimizer.*Memo +
// plancache.HashSubtreesMemo), which removes the remaining per-episode
// fingerprint/hash overhead the ROADMAP named: each skeleton node is hashed
// once per episode, with zero map allocations after the first episode.
func BenchmarkCachedTrainingCollectAdmission(b *testing.B) {
	benchCacheTrainingCollect(b, true, 50_000)
}

// BenchmarkSkeletonHashing isolates the per-completion hashing cost the
// episode memo removes: "fresh" is the pre-memo behaviour (allocate a map,
// walk the whole tree, every completion call), "memo" is the per-episode
// path (first completion fills the reused map, later completions of the
// same episode — e.g. the double CostFixed aggregation probe — hit it).
func BenchmarkSkeletonHashing(b *testing.B) {
	l := lab(b)
	q, err := l.Workload.ByRelations(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	skeleton := optimizer.RandomOrder(q, rand.New(rand.NewSource(7)))
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hs := make(map[PlanNode]uint64, 16)
			plancache.HashSubtrees(skeleton, hs)
		}
	})
	b.Run("memo", func(b *testing.B) {
		b.ReportAllocs()
		memo := make(map[PlanNode]uint64, 16)
		plancache.HashSubtreesMemo(skeleton, memo)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plancache.HashSubtreesMemo(skeleton, memo)
		}
	})
}

// BenchmarkColdTrainingCollect is the uncached stochastic baseline.
func BenchmarkColdTrainingCollect(b *testing.B) {
	benchCacheTrainingCollect(b, false, 0)
}

// BenchmarkCompletePhysicalWarm measures a fully warm completion — the
// per-episode cost of a repeated (query, join order) pair once cached.
func BenchmarkCompletePhysicalWarm(b *testing.B) {
	benchCompletePhysical(b, true)
}

// BenchmarkCompletePhysicalCold is the same completion recomputed from
// scratch every time (the seed system's behaviour).
func BenchmarkCompletePhysicalCold(b *testing.B) {
	benchCompletePhysical(b, false)
}

func benchCompletePhysical(b *testing.B, withCache bool) {
	l := lab(b)
	q, err := l.Workload.ByRelations(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	skeleton := optimizer.RandomOrder(q, rand.New(rand.NewSource(7)))
	planner := l.Planner
	if withCache {
		planner = planner.WithCache(plancache.New(plancache.Config{Capacity: 4096}))
		planner.CompletePhysical(q, skeleton) // warm
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if root, _ := planner.CompletePhysical(q, skeleton); root == nil {
			b.Fatal("no plan")
		}
	}
}

// BenchmarkPolicyInference measures one ReJOIN greedy planning pass
// (the quantity behind Figure 3c's ReJOIN curve).
func BenchmarkPolicyInference(b *testing.B) {
	l := lab(b)
	q, err := l.Workload.ByRelations(10, 3)
	if err != nil {
		b.Fatal(err)
	}
	space := l.Space(10)
	env := rejoin.NewEnv(space, l.Planner, []*query.Query{q}, 1)
	agent := rejoin.NewAgent(env, rl.ReinforceConfig{Hidden: []int{128, 64}, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if node, _ := agent.GreedyPlan(q); node == nil {
			b.Fatal("no plan")
		}
	}
}

// benchExecService builds a small service for Execute-path benchmarks.
func benchExecService(b *testing.B, opts ...Option) *Service {
	b.Helper()
	svc, err := New(append([]Option{
		WithScale(0.05),
		WithWorkload(4, 4, 5, 3),
	}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	return svc
}

// BenchmarkServiceExecute measures the full execution feedback path — the
// safeguarded serving decision, the engine run, the per-fingerprint history
// record, and the drift check — against the same path with the feedback
// machinery (latency guard, expert probes, drift detector) disabled, so the
// delta is the drift-detection overhead per execution. Metric: executions/sec,
// reported the way the PR 7 serving benches report plans/sec: wall clock
// measured across the whole driving loop, so the rate stays comparable when
// a variant adds setup inside the loop.
func BenchmarkServiceExecute(b *testing.B) {
	cases := []struct {
		name string
		exec ExecutionConfig
	}{
		{"feedback-on", ExecutionConfig{}},
		{"feedback-off", ExecutionConfig{GuardRatio: -1, ProbeEvery: -1, DriftRatio: -1}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			svc := benchExecService(b, WithExecution(tc.exec))
			qs := svc.Queries()
			ctx := context.Background()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Execute(ctx, qs[i%len(qs)]); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "executions/sec")
		})
	}
}

// BenchmarkServiceExecuteParallel hammers Execute from all procs — the
// serving-path contention profile (shared engine caches, history store
// mutex, atomic counters). Metric: executions/sec aggregate.
func BenchmarkServiceExecuteParallel(b *testing.B) {
	svc := benchExecService(b)
	qs := svc.Queries()
	ctx := context.Background()
	var idx atomic.Uint64
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := qs[idx.Add(1)%uint64(len(qs))]
			if _, err := svc.Execute(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "executions/sec")
}

// BenchmarkServicePlanConcurrent drives Plan from 8 goroutines against a
// warm published policy, with the per-publish shared weight packing on (the
// default) and off (per-call unpacked inference) — the PR 9 acceptance pair.
// The cache is disabled so every call pays the full greedy rollout; the two
// variants serve bitwise-identical plans (TestServiceSharedInferenceParity),
// so the plans/sec delta is pure inference mechanics.
//
// Both variants run interleaved inside one benchmark invocation — every
// iteration alternates a 64-plan batch on the packed service with the same
// batch on the unpacked one — so machine-level noise (CPU steal, frequency
// drift) hits both equally and the reported speedup is a paired measurement.
// Metrics: plans/sec (shared packing, the serving default), unpacked-plans/sec
// (per-call raw-matrix inference), and packed-speedup (their ratio). The
// policy uses the service's default hidden sizes; inference is a modest
// slice of a full Plan (expert costing and featurization dominate), so the
// end-to-end speedup is a few percent — the kernel-level gap is pinned by
// BenchmarkPackedInfer.
func BenchmarkServicePlanConcurrent(b *testing.B) {
	svcOn := benchExecService(b, WithFallbackRatio(0))
	svcOff := benchExecService(b, WithFallbackRatio(0), WithSharedInference(false))
	publishPolicySized(b, svcOn, 71, []int{128, 64})
	publishPolicySized(b, svcOff, 71, []int{128, 64})
	qs := svcOn.Queries()
	ctx := context.Background()

	// One batch = a fixed 64-plan block fanned across the 8 goroutines, so
	// even a 1x smoke run measures a meaningful rate.
	const goroutines, plansPerBatch = 8, 64
	errs := make(chan error, 2*goroutines)
	batch := func(svc *Service) time.Duration {
		start := time.Now()
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= plansPerBatch {
						return
					}
					if _, err := svc.Plan(ctx, qs[i%int64(len(qs))]); err != nil {
						select {
						case errs <- err:
						default:
						}
						return
					}
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}

	// Warm both services: expert plans, featurizer state, pools, the pack.
	batch(svcOn)
	batch(svcOff)

	var elapsedOn, elapsedOff time.Duration
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		// Alternate which variant goes first so slow drift within the run
		// cannot systematically favor one side.
		if iter%2 == 0 {
			elapsedOn += batch(svcOn)
			elapsedOff += batch(svcOff)
		} else {
			elapsedOff += batch(svcOff)
			elapsedOn += batch(svcOn)
		}
	}
	b.StopTimer()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
	work := float64(b.N) * plansPerBatch
	b.ReportMetric(work/elapsedOn.Seconds(), "plans/sec")
	b.ReportMetric(work/elapsedOff.Seconds(), "unpacked-plans/sec")
	b.ReportMetric(elapsedOff.Seconds()/elapsedOn.Seconds(), "packed-speedup")
}

// --- sketch statistics & approximate execution benchmarks ---

// BenchmarkSketchAnalyze measures the one-pass sketch analysis of the whole
// synthetic database — per column an HLL distinct counter, a Count-Min
// frequency sketch, and a value reservoir, plus one whole-row sample per
// table. Metric: analyzed rows/sec.
func BenchmarkSketchAnalyze(b *testing.B) {
	sys, err := Open(Config{Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	var rows float64
	for _, tab := range sys.DB.Store.Tables {
		rows += float64(tab.N)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := sketch.NewAnalyzer(sketch.Config{Seed: uint64(i + 1)})
		if st := a.Analyze(sys.DB.Store); len(st.Tables) == 0 {
			b.Fatal("empty sketch store")
		}
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

// BenchmarkApproxCount compares exact and approximate execution of the same
// single-table aggregate at the default 5% error budget. The headline metric
// is exact/approx-work — the scan reduction bought by sample-and-scale
// answering (the acceptance floor is 5x; see TestExecuteApproxWorkReduction
// for the hard assertion). Wall-clock on the approx side includes the
// periodic exact audit the service runs against its own estimates, exactly
// as in production serving.
func BenchmarkApproxCount(b *testing.B) {
	// Full scale (25k-row title table), not the 0.05 bench scale: the scan
	// reduction is governed by table rows vs the fixed sample cap, and at
	// tiny scales the sample covers the whole table.
	svc, err := New(WithWorkload(4, 4, 5, 3))
	if err != nil {
		b.Fatal(err)
	}
	q := approxQuery()
	ctx := context.Background()
	exactRes, err := svc.Execute(ctx, q)
	if err != nil {
		b.Fatal(err)
	}
	approxRes, err := svc.ExecuteApprox(ctx, q, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	if approxRes.ApproxFellBack || approxRes.WorkUnits == 0 {
		b.Fatalf("approx path fell back on the bench query: %+v", approxRes)
	}
	reduction := float64(exactRes.WorkUnits) / float64(approxRes.WorkUnits)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svc.Execute(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(exactRes.WorkUnits), "work-units")
	})
	b.Run("approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svc.ExecuteApprox(ctx, q, 0.05); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(approxRes.WorkUnits), "work-units")
		b.ReportMetric(reduction, "exact/approx-work")
	})
}

// BenchmarkSketchEstimatorQError sweeps the seed workload and scores both
// cardinality estimators' full-query subset estimates against the truth
// oracle. Metrics: geometric-mean q-error (max(est/true, true/est), 1.0 is
// perfect) for the sketch-backed estimator and the histogram estimator —
// the planning-quality basis behind the sketch-parity acceptance test.
func BenchmarkSketchEstimatorQError(b *testing.B) {
	sys, err := Open(Config{Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := sys.Workload.Training(16, 2, 5, 7)
	if err != nil {
		b.Fatal(err)
	}
	skEst := sys.SketchEstimator()
	qerr := func(est, truth float64) float64 {
		if est < 1 {
			est = 1
		}
		if r := est / truth; r >= 1 {
			return r
		}
		return truth / est
	}
	var sketchGeo, exactGeo float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var logSk, logEx float64
		n := 0
		for _, q := range qs {
			aliases := make(map[string]bool, len(q.Relations))
			for _, r := range q.Relations {
				aliases[r.Alias] = true
			}
			truth := sys.Oracle.TrueSubsetCard(q, aliases)
			if truth <= 0 {
				continue
			}
			logSk += math.Log(qerr(skEst.SubsetCard(q, aliases), truth))
			logEx += math.Log(qerr(sys.Est.SubsetCard(q, aliases), truth))
			n++
		}
		sketchGeo = math.Exp(logSk / float64(n))
		exactGeo = math.Exp(logEx / float64(n))
	}
	b.ReportMetric(sketchGeo, "sketch-qerr-geomean")
	b.ReportMetric(exactGeo, "exact-qerr-geomean")
}
