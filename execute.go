package handsfree

import (
	"context"
	"fmt"
	"io"
	"math"

	"handsfree/internal/engine"
	"handsfree/internal/exechistory"
	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/sketch"
)

// This file closes the paper's feedback loop: Service.Execute runs the served
// plan on the columnar engine, observes its true latency, and feeds the
// observation back into (a) the latency-tuning reward, (b) a latency-based
// regression guard on the serving path, and (c) a drift detector that sends
// the lifecycle back to CostTraining when a learned plan's observed latency
// sustainedly regresses against the expert baseline on the same query
// fingerprint. The execution history behind all three lives in the bounded
// internal/exechistory store; the deterministic fault seam (Service.Faults)
// makes production incidents reproducible in tests.
//
// See ARCHITECTURE.md, "Execution feedback loop", for the data flow.

// Execution-feedback re-exports.
type (
	// Faults is the deterministic fault-injection seam over observed
	// execution: per-table and per-plan latency inflation, periodic spikes,
	// and injected failures, all reproducible. Reach it via Service.Faults.
	Faults = engine.Faults
	// FaultStats counts what the fault seam has injected.
	FaultStats = engine.FaultStats
	// ExecHistoryStats snapshots the execution-history store's counters.
	ExecHistoryStats = exechistory.Stats
	// ApproxEstimate is one approximate aggregate with its bootstrap
	// confidence interval (see ExecuteApprox).
	ApproxEstimate = engine.ApproxEstimate
)

// ErrApproxBudget reports that an approximate execution could not meet its
// error budget on the sample; ExecuteApprox reacts by falling back to exact
// execution, so callers only see it through ExecResult.ApproxFellBack.
var ErrApproxBudget = engine.ErrApproxBudget

// DefaultMaxRelError is the approximate-execution error budget used when the
// caller passes none: every estimate's confidence-interval half-width must
// stay within 5% of the point estimate.
const DefaultMaxRelError = engine.DefaultMaxRelError

// Defaults for ExecutionConfig.
const (
	// DefaultLatencyGuardRatio is the observed-latency regression guard: a
	// learned plan is served only while its rolling observed latency stays
	// within this multiple of the expert's on the same query fingerprint.
	DefaultLatencyGuardRatio = 1.5
	// DefaultExecBudgetMs is the per-execution latency budget (censoring
	// timeout) used by Execute and, by default, latency-phase training.
	DefaultExecBudgetMs = 1000.0
	// DefaultExpertProbeEvery is how many learned executions of a
	// fingerprint elapse between expert shadow probes that keep the
	// fingerprint's expert baseline fresh.
	DefaultExpertProbeEvery = 8
)

// ExecutionConfig tunes the execution feedback loop. The zero value selects
// the defaults; a Service always has the loop on (Execute works untrained —
// it just observes expert plans).
type ExecutionConfig struct {
	// Window, MaxFingerprints, MinLearned, MinExpert bound the execution
	// history store (see exechistory.Config; defaults 32, 4096, 4, 2).
	Window          int
	MaxFingerprints int
	MinLearned      int
	MinExpert       int
	// GuardRatio is the latency regression guard: when a fingerprint's
	// rolling learned/expert observed-latency ratio exceeds it, Plan serves
	// the expert plan (SourceFallback, LatencyGuarded) until the ratio
	// recovers or the history is flushed by re-training. Negative disables;
	// default DefaultLatencyGuardRatio.
	GuardRatio float64
	// ProbeEvery schedules expert shadow probes: after this many learned
	// executions of a fingerprint, Execute also runs the expert plan once to
	// refresh the baseline the ratio compares against. Negative disables;
	// default DefaultExpertProbeEvery.
	ProbeEvery int
	// BudgetMs censors every Execute at this observed latency (the recorded
	// latency of a timed-out run is the budget itself). Negative disables;
	// default DefaultExecBudgetMs. Zero-valued LifecycleConfig.LatencyBudgetMs
	// inherits it, so training and serving censor alike.
	BudgetMs float64
	// MsPerWork calibrates work units → observed milliseconds (default
	// engine.DefaultMsPerWork).
	MsPerWork float64
	// DriftRatio / DriftSustain tune the drift detector: DriftSustain
	// consecutive post-execution ratios above DriftRatio on one fingerprint
	// trip a drift event (defaults 2.0 and 6; negative DriftRatio disables).
	// A lifecycle started with LifecycleConfig.DriftRetrain reacts to trips
	// by re-entering CostTraining.
	DriftRatio   float64
	DriftSustain int
	// Approx routes Execute through the approximate path by default
	// (sample-and-scale aggregates with bootstrap confidence intervals;
	// exact fallback when MaxRelError cannot be met). ExecuteApprox is the
	// per-call form; this is the service-wide default.
	Approx bool
	// MaxRelError is the default error budget for approximate execution
	// (≤ 0 means DefaultMaxRelError).
	MaxRelError float64
}

func (c *ExecutionConfig) fill() {
	if c.GuardRatio == 0 {
		c.GuardRatio = DefaultLatencyGuardRatio
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = DefaultExpertProbeEvery
	}
	if c.BudgetMs == 0 {
		c.BudgetMs = DefaultExecBudgetMs
	}
	if c.MsPerWork <= 0 {
		c.MsPerWork = engine.DefaultMsPerWork
	}
}

// WithExecution tunes the execution feedback loop (history bounds, latency
// guard, expert probing, execution budget, drift thresholds).
func WithExecution(ec ExecutionConfig) Option {
	return func(o *serviceOptions) { o.exec = ec }
}

// ExecResult is one executed planning decision: the serving decision plus
// what actually happened when the plan ran.
type ExecResult struct {
	PlanResult
	// LatencyMs is the observed execution latency of the served plan (the
	// budget itself when TimedOut).
	LatencyMs float64
	// TimedOut marks a budget-censored execution.
	TimedOut bool
	// Failed reports that the learned plan's execution failed and the expert
	// plan was executed and served in its place (the execution-level
	// safeguard; the decision's Source becomes SourceFallback).
	Failed bool
	// Rows is the served result's row count; WorkUnits the executor's
	// deterministic effort accounting for it.
	Rows      int
	WorkUnits int64
	// Approx marks an approximately executed decision: Estimates carries the
	// sample-scaled aggregates with their 99% bootstrap confidence intervals,
	// and SampleFraction is the fraction of the table actually scanned.
	Approx         bool
	Estimates      []ApproxEstimate
	SampleFraction float64
	// ApproxFellBack reports that approximate execution was requested but
	// the query was ineligible or the error budget unsatisfiable on the
	// sample, so the result above is an exact execution.
	ApproxFellBack bool
}

// execBudget resolves the per-execution censoring budget (0 = none).
func (s *Service) execBudget() float64 {
	if s.execCfg.BudgetMs > 0 {
		return s.execCfg.BudgetMs
	}
	return 0
}

// Execute serves a plan for q (exactly Plan's safeguarded decision), runs it
// on the engine, and returns the decision together with its observed latency.
// Every execution is recorded in the per-fingerprint history that drives the
// latency guard and the drift detector:
//
//   - A served learned plan's latency lands in the fingerprint's learned
//     window; expert and fallback executions land in the expert window
//     (they executed the expert plan, so they refresh the baseline).
//   - When a fingerprint's expert baseline goes stale (ProbeEvery learned
//     executions since the last expert one), the expert plan is additionally
//     shadow-executed once and recorded, so the ratio never compares fresh
//     learned latencies against a fossilized baseline.
//   - If the learned plan's execution fails outright, the expert plan is
//     executed and served instead (Failed; counted as a fallback at
//     execution level), so Execute degrades, never breaks, under faults.
//   - After recording, the fingerprint's rolling learned/expert ratio feeds
//     the drift detector; once the lifecycle is PhaseDone, a sustained
//     degradation signals the (DriftRetrain-enabled) lifecycle to re-enter
//     CostTraining.
//
// Execute is safe for any number of concurrent callers, during training and
// drift re-training included.
func (s *Service) Execute(ctx context.Context, q *Query) (ExecResult, error) {
	if s.execCfg.Approx {
		return s.ExecuteApprox(ctx, q, s.execCfg.MaxRelError)
	}
	pr, err := s.Plan(ctx, q)
	if err != nil {
		return ExecResult{}, err
	}
	return s.executePlanned(q, pr)
}

// executePlanned is Execute's back half: run an already-served decision
// exactly, with the execution-level safeguard, history recording, expert
// probing, and drift observation. ExecuteApprox shares it as the exact
// fallback path.
func (s *Service) executePlanned(q *Query, pr PlanResult) (ExecResult, error) {
	res := ExecResult{PlanResult: pr}
	s.executions.Add(1)
	kind := exechistory.Expert
	if pr.Source == SourceLearned {
		kind = exechistory.Learned
	}
	budget := s.execBudget()
	run, w, lat, timedOut, rerr := s.observed.Run(q, res.Plan, budget)
	if rerr != nil {
		s.execFailures.Add(1)
		s.history.RecordFailure(pr.Fingerprint)
		if pr.Source != SourceLearned || pr.expertPlan == nil {
			return res, fmt.Errorf("handsfree: execution failed: %w", rerr)
		}
		// Execution-level safeguard: the learned plan failed, so execute and
		// serve the expert plan instead of surfacing the failure.
		res.Failed = true
		res.Plan, res.Cost, res.Source = pr.expertPlan, pr.ExpertCost, SourceFallback
		s.fallbacks.Add(1)
		kind = exechistory.Expert
		run, w, lat, timedOut, rerr = s.observed.Run(q, res.Plan, budget)
		if rerr != nil {
			s.execFailures.Add(1)
			s.history.RecordFailure(pr.Fingerprint)
			return res, fmt.Errorf("handsfree: fallback execution failed: %w", rerr)
		}
	}
	res.LatencyMs, res.TimedOut = lat, timedOut
	if run != nil {
		res.Rows = run.N
	}
	if w != nil {
		res.WorkUnits = w.Total()
	}
	if timedOut {
		s.execTimeouts.Add(1)
	}
	source := res.Source.String()
	if res.LatencyGuarded {
		source = "latency-guard"
	}
	s.history.Record(pr.Fingerprint, exechistory.Record{
		Kind:          kind,
		LatencyMs:     lat,
		PolicyVersion: pr.PolicyVersion,
		TimedOut:      timedOut,
		Source:        source,
	})
	if kind == exechistory.Learned && s.execCfg.ProbeEvery > 0 &&
		s.history.NeedExpertProbe(pr.Fingerprint, s.execCfg.ProbeEvery) {
		s.probeExpert(q, pr.Fingerprint, pr.expertPlan, budget)
	}
	ratio, _, _ := s.history.Ratio(pr.Fingerprint)
	// Drift only means something once a trained policy is the steady state:
	// during training phases the policy is in flux by design, and before any
	// lifecycle there is nothing to retrain.
	if s.Phase() == PhaseDone && s.drift.Observe(pr.Fingerprint, ratio) {
		s.driftEvents.Add(1)
		s.signalDrift(fmt.Sprintf(
			"observed latency drift: fingerprint %016x sustained ratio %.2f > %.2f for %d executions",
			pr.Fingerprint, ratio, s.drift.Config().Ratio, s.drift.Config().Sustain))
	}
	return res, nil
}

// ExecuteSQL parses SQL text and executes a served plan for it; see Execute.
func (s *Service) ExecuteSQL(ctx context.Context, sql string) (ExecResult, error) {
	q, err := ParseSQL(sql)
	if err != nil {
		return ExecResult{}, err
	}
	return s.Execute(ctx, q)
}

// approxAuditEvery schedules the accuracy audit: every Nth approximately
// served answer is also executed exactly (off the books — the audit run is
// not recorded in the latency history) and the observed estimate error and
// CI coverage feed ApproxStats.
const approxAuditEvery = 8

// ExecuteApprox serves a plan for q through the same safeguarded decision
// path as Execute, then executes it approximately: the query's COUNT/SUM
// (and derived AVG) aggregates are estimated from the table's reservoir row
// sample, scaled to the full table, and reported with 99% bootstrap
// confidence intervals. The work accounting — and therefore the observed
// latency recorded in the execution history — reflects the reduced sample
// scan, which is the point: an approximate answer with a quantified error
// at a fraction of the cost.
//
// maxRelError is the error budget (≤ 0 means DefaultMaxRelError): every
// estimate's CI half-width must stay within maxRelError × |estimate|.
// When the budget cannot be met (too few matching sample rows, or the
// interval is too wide), when the query is ineligible (joins, GROUP BY,
// MIN/MAX), or when no sample exists, ExecuteApprox transparently falls
// back to exact execution and marks the result ApproxFellBack — the
// approximate path is an optimization, never a new failure mode.
func (s *Service) ExecuteApprox(ctx context.Context, q *Query, maxRelError float64) (ExecResult, error) {
	opt := engine.ApproxOptions{MaxRelError: maxRelError}
	// Resolve eligibility and the sample before planning; either miss means
	// the decision executes exactly.
	var sample *sketch.RowSample
	if engine.ApproxEligible(q) == nil {
		if ts := s.sys.Sketches().Table(q.Relations[0].Table); ts != nil {
			sample = ts.Sample
		}
	}
	pr, err := s.Plan(ctx, q)
	if err != nil {
		return ExecResult{}, err
	}
	if sample == nil {
		s.approxFallbacks.Add(1)
		res, eerr := s.executePlanned(q, pr)
		res.ApproxFellBack = true
		return res, eerr
	}
	budget := s.execBudget()
	ares, w, lat, timedOut, rerr := s.observed.RunApprox(q, pr.Plan, sample, opt, budget)
	if rerr != nil {
		// Budget unsatisfiable on the sample (or an injected failure): fall
		// back to the exact path, which carries its own safeguards.
		s.approxFallbacks.Add(1)
		res, eerr := s.executePlanned(q, pr)
		res.ApproxFellBack = true
		return res, eerr
	}
	out := ExecResult{
		PlanResult:     pr,
		LatencyMs:      lat,
		TimedOut:       timedOut,
		Rows:           1,
		WorkUnits:      w.Total(),
		Approx:         true,
		Estimates:      ares.Estimates,
		SampleFraction: ares.SampleFraction,
	}
	s.executions.Add(1)
	s.approxServed.Add(1)
	if timedOut {
		s.execTimeouts.Add(1)
	}
	kind := exechistory.Expert
	if pr.Source == SourceLearned {
		kind = exechistory.Learned
	}
	source := pr.Source.String()
	if pr.LatencyGuarded {
		source = "latency-guard"
	}
	s.history.Record(pr.Fingerprint, exechistory.Record{
		Kind:          kind,
		LatencyMs:     lat,
		PolicyVersion: pr.PolicyVersion,
		TimedOut:      timedOut,
		Source:        source,
	})
	if s.approxServed.Load()%approxAuditEvery == 1 {
		s.auditApprox(q, out)
	}
	return out, nil
}

// auditApprox executes the served plan exactly and scores the approximate
// answer against it: per-estimate relative error and whether each reported
// confidence interval covered the exact value. Audit runs are off the
// latency books (not recorded in the history) — they measure accuracy, not
// performance.
func (s *Service) auditApprox(q *Query, out ExecResult) {
	run, _, _, _, err := s.observed.Run(q, out.Plan, 0)
	if err != nil || run == nil || run.N == 0 {
		return
	}
	var compared, covered uint64
	var errSum float64
	for _, est := range out.Estimates {
		col, ok := run.Cols[est.Name]
		if !ok || len(col) == 0 {
			continue // derived AVG has no exact output column
		}
		exact := float64(col[0])
		compared++
		if est.Lo <= exact && exact <= est.Hi {
			covered++
		}
		if exact != 0 {
			errSum += math.Abs(est.Value-exact) / math.Abs(exact)
		} else if est.Value != 0 {
			errSum += 1
		}
	}
	if compared == 0 {
		return
	}
	s.approxMu.Lock()
	s.approxAudits++
	s.approxCompared += compared
	s.approxCovered += covered
	s.approxErrSum += errSum
	s.approxMu.Unlock()
}

// ApproxStats is a point-in-time snapshot of the approximate-execution
// accuracy counters.
type ApproxStats struct {
	// Served counts approximately served answers; Fallbacks counts
	// ExecuteApprox calls that executed exactly instead (ineligible query,
	// missing sample, or unsatisfiable error budget).
	Served, Fallbacks uint64
	// Audits counts exact audit runs; AuditEstimates individual estimates
	// compared against their exact value; AuditCovered those whose reported
	// confidence interval contained it.
	Audits, AuditEstimates, AuditCovered uint64
	// AuditMeanRelError is the mean |approx − exact| / |exact| over all
	// audited estimates (NaN until the first audit).
	AuditMeanRelError float64
}

// ApproxStats snapshots the approximate-execution counters (O(1)).
func (s *Service) ApproxStats() ApproxStats {
	s.approxMu.Lock()
	defer s.approxMu.Unlock()
	st := ApproxStats{
		Served:            s.approxServed.Load(),
		Fallbacks:         s.approxFallbacks.Load(),
		Audits:            s.approxAudits,
		AuditEstimates:    s.approxCompared,
		AuditCovered:      s.approxCovered,
		AuditMeanRelError: math.NaN(),
	}
	if s.approxCompared > 0 {
		st.AuditMeanRelError = s.approxErrSum / float64(s.approxCompared)
	}
	return st
}

// probeExpert shadow-executes the expert plan to refresh a fingerprint's
// expert latency baseline. Probe failures are counted, never surfaced: the
// caller's own execution already succeeded.
func (s *Service) probeExpert(q *Query, fp uint64, expert PlanNode, budget float64) {
	if expert == nil {
		return
	}
	_, _, lat, timedOut, err := s.observed.Run(q, expert, budget)
	if err != nil {
		s.execFailures.Add(1)
		s.history.RecordFailure(fp)
		return
	}
	s.history.Record(fp, exechistory.Record{
		Kind: exechistory.Expert, LatencyMs: lat, TimedOut: timedOut,
	})
}

// signalDrift hands a drift event to the resident lifecycle without ever
// blocking the serving path: the channel holds one pending signal, and a
// signal arriving while one is pending (or while no lifecycle listens)
// is redundant and dropped.
func (s *Service) signalDrift(reason string) {
	select {
	case s.driftCh <- reason:
	default:
	}
}

// SaveExecHistory serializes the execution-history store — every tracked
// fingerprint's learned and expert latency windows, probe clocks, and last
// serving sources — so a restarted service can resume its latency guard and
// drift detector from the baselines this process observed (the counterpart
// of System.SavePlanCache for the feedback loop). The dump is tagged with
// the system's configuration fingerprint; LoadExecHistory refuses a dump
// from a differently configured system.
func (s *Service) SaveExecHistory(w io.Writer) error {
	return s.history.Save(w, s.sys.cacheTag)
}

// LoadExecHistory replays a dump written by SaveExecHistory into the
// service's execution history, returning how many latency records it
// restored. The receiving store's bounds apply, and loading into a
// non-empty history merges.
func (s *Service) LoadExecHistory(r io.Reader) (int, error) {
	return s.history.Load(r, s.sys.cacheTag)
}

// ObservedRatio returns a query's current rolling learned/expert
// observed-latency ratio and the window sizes behind it (ratio is NaN until
// both windows hold their configured minimum samples). It is the
// post-execution view; PlanResult.LatencyRatio is the same ratio as of
// decision time.
func (s *Service) ObservedRatio(q *Query) (ratio float64, learnedN, expertN int) {
	return s.history.Ratio(s.sys.PlanCache.FingerprintOf(q))
}

// Faults exposes the deterministic fault-injection seam on the execution
// path, for tests and chaos drills: inflate a table's or plan shape's
// observed latency, add periodic spikes, or fail executions — reproducibly.
func (s *Service) Faults() *Faults { return s.observed.Faults }

// ExecutionConfig returns the resolved execution feedback configuration
// (every default filled in, including the drift detector's).
func (s *Service) ExecutionConfig() ExecutionConfig {
	ec := s.execCfg
	hc := s.history.Config()
	ec.Window, ec.MaxFingerprints = hc.Window, hc.MaxFingerprints
	ec.MinLearned, ec.MinExpert = hc.MinLearned, hc.MinExpert
	dc := s.drift.Config()
	ec.DriftRatio, ec.DriftSustain = dc.Ratio, dc.Sustain
	return ec
}

// ExecStats is a point-in-time snapshot of the execution feedback loop.
type ExecStats struct {
	// Executions counts Execute decisions; Failures injected/failed plan
	// executions (including failed shadow probes); TimedOut budget-censored
	// executions.
	Executions, Failures, TimedOut uint64
	// LatencyGuarded counts serving decisions where the observed-latency
	// guard (not the cost guard) forced the expert plan.
	LatencyGuarded uint64
	// DriftEvents counts drift-detector trips; Retrains counts completed
	// drift-triggered re-training rounds.
	DriftEvents, Retrains uint64
	// DriftWorstRatio is the worst finite learned/expert ratio the detector
	// has seen since the last re-training round (NaN when none).
	DriftWorstRatio float64
	// History snapshots the bounded execution-history store.
	History ExecHistoryStats
}

// DriftEntry is one fingerprint's execution-feedback state: its rolling
// latency ratio, the window sizes behind it, the drift detector's current
// consecutive-degradation streak, and the serving decision that last touched
// it ("learned", "expert", "fallback", "latency-guard", "demonstration").
type DriftEntry struct {
	Fingerprint       uint64
	Ratio             float64 // NaN until both windows hold their minimums
	LearnedN, ExpertN int
	Streak            int
	LastSource        string
}

// DriftEntries snapshots up to max tracked fingerprints (all when max ≤ 0),
// most recently executed first — the per-fingerprint view behind ExecStats,
// served by GET /drift. The ratio/streak pair says where each fingerprint
// stands relative to the guard and drift thresholds in ExecutionConfig.
func (s *Service) DriftEntries(max int) []DriftEntry {
	hist := s.history.Entries(max)
	out := make([]DriftEntry, len(hist))
	for i, e := range hist {
		out[i] = DriftEntry{
			Fingerprint: e.Fingerprint,
			Ratio:       e.Ratio,
			LearnedN:    e.LearnedN,
			ExpertN:     e.ExpertN,
			Streak:      s.drift.Streak(e.Fingerprint),
			LastSource:  e.LastSource,
		}
	}
	return out
}

// ExecStats snapshots the execution feedback loop's counters (O(1)).
func (s *Service) ExecStats() ExecStats {
	return ExecStats{
		Executions:      s.executions.Load(),
		Failures:        s.execFailures.Load(),
		TimedOut:        s.execTimeouts.Load(),
		LatencyGuarded:  s.latencyGuarded.Load(),
		DriftEvents:     s.driftEvents.Load(),
		Retrains:        s.retrains.Load(),
		DriftWorstRatio: s.drift.WorstRatio(),
		History:         s.history.Stats(),
	}
}

// recordingExecutor is the lifecycle's demonstration-phase executor: it
// derives latency from real observed execution (like the serving path) and
// records each expert demonstration into the execution history, so query
// fingerprints enter serving with a warm expert baseline.
type recordingExecutor struct {
	svc *Service
}

func (r recordingExecutor) Execute(q *query.Query, n plan.Node, budgetMs float64) (float64, bool) {
	lat, timedOut := r.svc.observed.Execute(q, n, budgetMs)
	if !math.IsNaN(lat) {
		r.svc.history.Record(r.svc.sys.PlanCache.FingerprintOf(q), exechistory.Record{
			Kind: exechistory.Expert, LatencyMs: lat, TimedOut: timedOut,
			Source: "demonstration",
		})
	}
	return lat, timedOut
}
