package handsfree

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestServiceExecHistoryPersistence: a restarted (identically configured)
// service resumes with the previous process's latency baselines; a
// differently configured one refuses the dump.
func TestServiceExecHistoryPersistence(t *testing.T) {
	svc := testService(t)
	ctx := context.Background()
	q := svc.Queries()[0]
	for i := 0; i < 3; i++ {
		if _, err := svc.Execute(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := svc.SaveExecHistory(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := testService(t)
	restored, err := fresh.LoadExecHistory(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 3 {
		t.Fatalf("restored %d records, want 3", restored)
	}
	want := svc.ExecStats().History
	got := fresh.ExecStats().History
	if got.Fingerprints != want.Fingerprints || got.ExpertHeld != want.ExpertHeld {
		t.Fatalf("restored history %+v, want %+v", got, want)
	}
	_, _, expertN := fresh.ObservedRatio(q)
	if expertN != 3 {
		t.Fatalf("restored expert window holds %d samples, want 3", expertN)
	}

	other := testService(t, WithSeed(99))
	if _, err := other.LoadExecHistory(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "different system configuration") {
		t.Fatalf("differently seeded system accepted the dump: %v", err)
	}
}
