// Learning from demonstration (§5.1 of the paper): the agent first imitates
// the traditional optimizer (observing executions of *feasible* plans only),
// then fine-tunes on observed latency — reaching near-expert performance
// without ever executing the catastrophic plans a tabula-rasa learner
// stumbles through.
package main

import (
	"fmt"
	"log"
	"math"

	"handsfree"
	"handsfree/internal/featurize"
	"handsfree/internal/lfd"
	"handsfree/internal/planspace"
)

func main() {
	sys, err := handsfree.Open(handsfree.Config{Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	queries, err := sys.Workload.Training(8, 4, 6, 13)
	if err != nil {
		log.Fatal(err)
	}

	maxRel := 6
	env := planspace.NewEnv(planspace.Config{
		Space:         featurize.NewSpace(maxRel, sys.Est),
		Stages:        planspace.StagePrefix(planspace.NumStages), // full pipeline
		Planner:       sys.Planner,
		Latency:       sys.Latency,
		Queries:       queries,
		Reward:        planspace.LatencyReward,
		ExecuteAlways: true,
		Seed:          3,
	})
	agent := lfd.New(lfd.Config{Env: env, Seed: 7})

	fmt.Println("step 1–2: watching the expert plan and executing its plans…")
	if err := agent.CollectDemonstrations(); err != nil {
		log.Fatal(err)
	}
	for _, d := range agent.Demos() {
		fmt.Printf("  %-10s expert latency %8.2f ms (%d decisions recorded)\n",
			d.Query.Name, d.LatencyMs, len(d.Traj.Steps))
	}

	fmt.Println("\nstep 3: training the reward-prediction network on demonstrations…")
	loss := agent.Pretrain(2000, 32)
	fmt.Printf("  final demonstration loss %.4f\n", loss)

	ratio := func() float64 {
		var logSum float64
		for _, q := range queries {
			logSum += math.Log(agent.GreedyLatency(q) / agent.ExpertLatency(q))
		}
		return math.Exp(logSum / float64(len(queries)))
	}
	fmt.Printf("\nafter imitation alone: latency ratio vs expert = %.2f× (zero exploratory executions)\n", ratio())

	fmt.Println("\nstep 4–5: fine-tuning on observed latency (with slip detection)…")
	for ep := 0; ep < 200; ep++ {
		res := agent.FineTuneEpisode()
		if res.Retrained {
			fmt.Printf("  episode %d: performance slipped — re-trained on expert demonstrations\n", ep)
		}
	}
	fmt.Printf("after fine-tuning: latency ratio vs expert = %.2f×\n", ratio())
	fmt.Printf("catastrophic executions during fine-tuning: %d\n", agent.CatastrophicExecutions)
}
