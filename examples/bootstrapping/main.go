// Cost-model bootstrapping (§5.2 of the paper): a policy-gradient agent
// trains with the optimizer's cost model as "training wheels" (no plan is
// ever executed), then switches its reward to observed latency — using the
// paper's linear rescaling so the reward range does not jump.
package main

import (
	"fmt"
	"log"
	"math"

	"handsfree"
	"handsfree/internal/bootstrap"
	"handsfree/internal/featurize"
	"handsfree/internal/planspace"
	"handsfree/internal/rl"
)

func main() {
	sys, err := handsfree.Open(handsfree.Config{Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	queries, err := sys.Workload.Training(8, 4, 6, 17)
	if err != nil {
		log.Fatal(err)
	}
	expert := map[string]float64{}
	for _, q := range queries {
		planned, err := sys.Plan(q)
		if err != nil {
			log.Fatal(err)
		}
		expert[q.Key()] = planned.Cost
	}

	env := planspace.NewEnv(planspace.Config{
		Space:   featurize.NewSpace(6, sys.Est),
		Stages:  planspace.StagePrefix(planspace.NumStages),
		Planner: sys.Planner,
		Latency: sys.Latency,
		Queries: queries,
		Seed:    3,
	})
	agent := bootstrap.New(bootstrap.Config{
		Env:     env,
		Scaling: bootstrap.ScaleLinear, // the paper's latency→cost rescaling
		Agent:   rl.ReinforceConfig{Hidden: []int{128, 64}, BatchSize: 16, Seed: 7},
	})

	report := func(phase string, ep int, out planspace.Outcome) {
		fmt.Printf("  [%s] episode %4d: cost ratio %7.1f× (log10 %.2f)\n",
			phase, ep, out.Cost/expert[env.Current().Key()],
			math.Log10(out.Cost/expert[env.Current().Key()]))
	}

	fmt.Println("phase 1: reward = optimizer cost model (training wheels — nothing is executed)")
	for ep := 0; ep < 1600; ep++ {
		out := agent.TrainEpisode()
		if ep%400 == 0 {
			report("cost", ep, out)
		}
	}
	fmt.Printf("  plans executed so far: %d\n", env.Executions)

	fmt.Println("\nphase 2: reward = observed latency, rescaled into the phase-1 cost range")
	agent.SwitchToLatency()
	fmt.Printf("  calibration range (log-cost): [%.2f, %.2f]\n", agent.CostRange().Min(), agent.CostRange().Max())
	for ep := 0; ep < 800; ep++ {
		out := agent.TrainEpisode()
		if ep%200 == 0 {
			report("latency", ep, out)
		}
	}
	fmt.Printf("  plans executed in phase 2: %d\n", env.Executions)

	var logSum float64
	for _, q := range queries {
		out := agent.GreedyOutcome(q)
		logSum += math.Log(out.Cost / expert[q.Key()])
	}
	fmt.Printf("\nfinal greedy cost ratio vs expert (geomean): %.2f×\n", math.Exp(logSum/float64(len(queries))))
}
