// Quickstart: open the synthetic database, optimize a SQL query with the
// traditional optimizer, inspect the plan, execute it on the columnar
// engine, and compare the cost model's opinion with simulated latency.
package main

import (
	"fmt"
	"log"

	"handsfree"
)

func main() {
	// A small database keeps the example snappy; Scale: 1.0 is the full
	// synthetic IMDB-like dataset (~400k rows).
	sys, err := handsfree.Open(handsfree.Config{Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	const sql = `SELECT COUNT(*)
		FROM title AS t, movie_companies AS mc, company_name AS cn
		WHERE mc.movie_id = t.id AND mc.company_id = cn.id
		  AND t.production_year > 40 AND cn.country_code < 40;`

	planned, err := sys.PlanSQL(sql)
	if err != nil {
		log.Fatal(err)
	}
	q, _ := handsfree.ParseSQL(sql)

	fmt.Println("SQL:", q.SQL())
	fmt.Printf("\noptimizer cost: %.1f (strategy %s, planned in %s)\n",
		planned.Cost, planned.Strategy, planned.Duration.Round(0))
	fmt.Println("\nplan:")
	fmt.Print(handsfree.ExplainPlan(planned.Root))

	// The cost model plans with *estimated* cardinalities; the simulator
	// reflects the true ones. This gap is what the paper's learned
	// optimizers exploit.
	fmt.Printf("\nsimulated execution latency: %.2f ms\n", sys.SimulateLatency(q, planned.Root))

	res, work, err := sys.Execute(q, planned.Root)
	if err != nil {
		log.Fatal(err)
	}
	count, err := res.Column("agg0_COUNT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted for real: COUNT(*) = %d\n", count[0])
	fmt.Printf("engine work: %d tuples read, %d comparisons, %d hash ops\n",
		work.TuplesRead, work.Comparisons, work.HashOps)
}
