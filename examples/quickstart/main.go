// Quickstart: build the hands-free optimizer service, plan a SQL query
// under a request deadline, inspect the decision, execute the plan on the
// columnar engine, and compare the cost model's opinion with simulated
// latency.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"handsfree"
)

func main() {
	// A small database keeps the example snappy; WithScale(1.0) is the full
	// synthetic IMDB-like dataset (~400k rows).
	svc, err := handsfree.New(handsfree.WithScale(0.1))
	if err != nil {
		log.Fatal(err)
	}

	const sql = `SELECT COUNT(*)
		FROM title AS t, movie_companies AS mc, company_name AS cn
		WHERE mc.movie_id = t.id AND mc.company_id = cn.id
		  AND t.production_year > 40 AND cn.country_code < 40;`

	// Every planning request is context-scoped: a deadline cuts the search
	// off mid-enumeration instead of blocking the caller.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := svc.PlanSQL(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	q, _ := handsfree.ParseSQL(sql)

	fmt.Println("SQL:", q.SQL())
	fmt.Printf("\nserved by %s planner: cost %.1f (untrained service always serves the expert)\n",
		res.Source, res.Cost)
	fmt.Println("\nplan:")
	fmt.Print(handsfree.ExplainPlan(res.Plan))

	// The cost model plans with *estimated* cardinalities; the simulator
	// reflects the true ones. This gap is what the paper's learned
	// optimizers exploit — and what Service.StartTraining learns away in the
	// background (see examples/service).
	sys := svc.System()
	fmt.Printf("\nsimulated execution latency: %.2f ms\n", sys.SimulateLatency(q, res.Plan))

	out, work, err := sys.Execute(q, res.Plan)
	if err != nil {
		log.Fatal(err)
	}
	count, err := out.Column("agg0_COUNT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted for real: COUNT(*) = %d\n", count[0])
	fmt.Printf("engine work: %d tuples read, %d comparisons, %d hash ops\n",
		work.TuplesRead, work.Comparisons, work.HashOps)
}
