// Quickstart: build the hands-free optimizer service, execute a SQL query
// under a request deadline — one call plans it through the safeguarded
// decision path AND runs the served plan on the columnar engine — then
// inspect the decision, its observed latency, and the execution feedback
// the service accumulates for its latency guard and drift detector.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"handsfree"
)

func main() {
	// A small database keeps the example snappy; WithScale(1.0) is the full
	// synthetic IMDB-like dataset (~400k rows).
	svc, err := handsfree.New(handsfree.WithScale(0.1))
	if err != nil {
		log.Fatal(err)
	}

	const sql = `SELECT COUNT(*)
		FROM title AS t, movie_companies AS mc, company_name AS cn
		WHERE mc.movie_id = t.id AND mc.company_id = cn.id
		  AND t.production_year > 40 AND cn.country_code < 40;`

	// Every request is context-scoped: a deadline cuts the plan search off
	// mid-enumeration instead of blocking the caller. ExecuteSQL both makes
	// the safeguarded serving decision and runs the served plan, so the
	// latency below is *observed* on the engine, not predicted by a model.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := svc.ExecuteSQL(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	q, _ := handsfree.ParseSQL(sql)

	fmt.Println("SQL:", q.SQL())
	guard := ""
	switch {
	case res.Failed:
		guard = " — learned execution failed, expert served"
	case res.LatencyGuarded:
		guard = " — observed-latency guard"
	}
	fmt.Printf("\nserved by %s planner%s: cost %.1f (untrained service always serves the expert)\n",
		res.Source, guard, res.Cost)
	fmt.Println("\nplan:")
	fmt.Print(handsfree.ExplainPlan(res.Plan))

	fmt.Printf("\nobserved execution latency: %.2f ms (%d rows, %d work units)\n",
		res.LatencyMs, res.Rows, res.WorkUnits)

	// The result columns come from the raw engine API; the service already
	// executed the decision above, so this is the same plan re-run directly.
	sys := svc.System()
	out, work, err := sys.Execute(q, res.Plan)
	if err != nil {
		log.Fatal(err)
	}
	count, err := out.Column("agg0_COUNT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCOUNT(*) = %d\n", count[0])
	fmt.Printf("engine work: %d tuples read, %d comparisons, %d hash ops\n",
		work.TuplesRead, work.Comparisons, work.HashOps)

	// Every Execute feeds the per-fingerprint execution history that drives
	// the service's observed-latency guard and drift detector (see
	// ARCHITECTURE.md, "Execution feedback loop").
	st := svc.ExecStats()
	fmt.Printf("\nexecution feedback: %d execution(s) recorded, %d fingerprint(s) tracked\n",
		st.Executions, st.History.Fingerprints)
}
