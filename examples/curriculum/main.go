// Incremental learning (§5.3 of the paper): train the full query
// optimization pipeline one step at a time (Figure 8). The policy network is
// carried between phases, with its action layer surgically extended as new
// pipeline stages come under the agent's control.
package main

import (
	"fmt"
	"log"

	"handsfree"
	"handsfree/internal/curriculum"
	"handsfree/internal/featurize"
	"handsfree/internal/rl"
)

func main() {
	sys, err := handsfree.Open(handsfree.Config{Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	queries, err := sys.Workload.Training(12, 2, 6, 21)
	if err != nil {
		log.Fatal(err)
	}

	trainer := curriculum.NewTrainer(curriculum.Config{
		Space:   featurize.NewSpace(6, sys.Est),
		Planner: sys.Planner,
		Latency: sys.Latency,
		Queries: queries,
		Agent:   rl.ReinforceConfig{Hidden: []int{128, 64}, BatchSize: 16, Seed: 7},
		Seed:    7,
	})

	fmt.Println("pipeline curriculum (Figure 8): join order → +index selection → +join operators → +aggregation")
	schedule := curriculum.PipelineSchedule(600)
	base := 0
	for _, phase := range schedule {
		res, err := trainer.RunPhase(phase, base, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s stages=%+v  %4d episodes on %2d queries → cost ratio %.2f× vs expert\n",
			phase.Name, phase.Stages, phase.Episodes, res.QueryCount, res.FinalRatio)
		base += phase.Episodes
	}

	ratio, err := trainer.EvalRatio(queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal full-pipeline policy: %.2f× the traditional optimizer's cost\n", ratio)
	fmt.Println("(compare with `handsfree incremental`, which also runs the relations,")
	fmt.Println(" hybrid, and flat-baseline schedules at equal training budgets)")
}
