// ReJOIN (§3 of the paper): train the deep-RL join-order enumerator on a
// small workload and watch it converge toward — and sometimes beat — the
// traditional optimizer's greedy enumeration.
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"

	"handsfree"
	"handsfree/internal/optimizer"
)

func main() {
	sys, err := handsfree.Open(handsfree.Config{Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}

	// A continuous workload of 4–6 relation queries (an episode per query,
	// repeating — exactly the paper's training loop).
	queries, err := sys.Workload.Training(10, 4, 6, 42)
	if err != nil {
		log.Fatal(err)
	}

	agent, err := sys.NewReJOINAgent(queries, handsfree.ReJOINConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// The baseline: the traditional optimizer's greedy bottom-up enumerator
	// (the paper's characterization of PostgreSQL).
	expert := map[string]float64{}
	for _, q := range queries {
		planned, err := sys.Planner.PlanWith(q, optimizer.Greedy)
		if err != nil {
			log.Fatal(err)
		}
		expert[q.Key()] = planned.Cost
	}
	avgRatio := func() float64 {
		var logSum float64
		for _, q := range queries {
			_, cost := agent.Plan(q)
			logSum += math.Log(cost / expert[q.Key()])
		}
		return math.Exp(logSum / float64(len(queries)))
	}

	workers := runtime.NumCPU()
	fmt.Printf("training ReJOIN (reward = optimizer cost model, %d collection workers)…\n", workers)
	fmt.Printf("%8s  %s\n", "episode", "avg cost vs greedy optimizer")
	for step := 0; step <= 10; step++ {
		if step > 0 {
			agent.TrainParallel(400, workers)
		}
		fmt.Printf("%8d  %6.2f×\n", step*400, avgRatio())
	}

	// Show one final plan next to the expert's.
	q := queries[0]
	planned, _ := sys.Planner.PlanWith(q, optimizer.Greedy)
	node, cost := agent.Plan(q)
	fmt.Printf("\nquery %s — greedy optimizer cost %.1f vs ReJOIN cost %.1f\n", q.Name, planned.Cost, cost)
	fmt.Println("\nReJOIN's plan:")
	fmt.Print(handsfree.ExplainPlan(node))
}
