// Service lifecycle: run the paper's learning state machine — observe the
// expert (§5.1), train on cost (§5.2 Phase 1), fine-tune on latency (§5.2
// Phase 2) — as a background goroutine while the service keeps serving
// plans, then inspect the transitions and the regression-guard counters.
package main

import (
	"context"
	"fmt"
	"log"

	"handsfree"
)

func main() {
	svc, err := handsfree.New(
		handsfree.WithScale(0.05),
		handsfree.WithWorkload(6, 4, 6, 3),
		handsfree.WithCache(handsfree.CacheConfig{Capacity: 1 << 14}),
		handsfree.WithFallbackRatio(1.2),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Before training: the expert (traditional optimizer) serves everything.
	first, err := svc.Plan(ctx, svc.Queries()[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before training: source=%s policy=v%d\n", first.Source, first.PolicyVersion)

	// Run the learning state machine in the background. The zero-value
	// budgets are quick; production runs scale CostEpisodes/LatencyEpisodes
	// up and set CostRatioTarget so the cost phase exits on convergence.
	if err := svc.StartTraining(ctx, handsfree.LifecycleConfig{
		Seed:            7,
		CostRatioTarget: 1.1, // CostTraining → LatencyTuning predicate
	}); err != nil {
		log.Fatal(err)
	}

	// Serving continues during training — policy snapshots hot-swap under
	// these calls with monotone versions.
	for svc.TrainingActive() {
		for _, q := range svc.Queries() {
			if _, err := svc.Plan(ctx, q); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := svc.WaitTraining(ctx); err != nil {
		log.Fatal(err)
	}

	st := svc.LifecycleStats()
	fmt.Printf("lifecycle: %s, policy v%d\n", st.Phase, st.PolicyVersion)
	for _, tr := range st.Transitions {
		fmt.Printf("  %s → %s (%s)\n", tr.From, tr.To, tr.Reason)
	}

	// After training: learned plans are served only within the safeguard
	// bound; regressions fall back to the expert plan and are counted.
	for _, q := range svc.Queries() {
		res, err := svc.Plan(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-8s cost %10.1f (expert %10.1f)\n", q.Name, res.Source, res.Cost, res.ExpertCost)
	}
	final := svc.LifecycleStats()
	fmt.Printf("counters: %d plans, %d learned, %d expert, %d fallbacks\n",
		final.Plans, final.LearnedServed, final.ExpertServed, final.Fallbacks)
}
