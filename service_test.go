package handsfree

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"handsfree/internal/featurize"
	"handsfree/internal/rl"
)

// testService builds a small service with a training workload attached.
func testService(t *testing.T, opts ...Option) *Service {
	t.Helper()
	svc, err := New(append([]Option{
		WithScale(0.05),
		WithWorkload(4, 4, 5, 3),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestServiceServesExpertBeforeTraining(t *testing.T) {
	svc := testService(t)
	ctx := context.Background()
	if got := svc.Phase(); got != PhaseIdle {
		t.Fatalf("phase before training = %v, want idle", got)
	}
	for _, q := range svc.Queries() {
		res, err := svc.Plan(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != SourceExpert {
			t.Fatalf("untrained service served source %v, want expert", res.Source)
		}
		if res.Plan == nil || res.Cost <= 0 || res.Cost != res.ExpertCost {
			t.Fatalf("bad expert decision: %+v", res)
		}
		if res.PolicyVersion != 0 {
			t.Fatalf("policy version %d before any publish", res.PolicyVersion)
		}
		if !math.IsNaN(res.LearnedCost) {
			t.Fatalf("learned cost %v without a learned rollout", res.LearnedCost)
		}
	}
	if _, err := svc.PlanSQL(ctx, `SELECT COUNT(*) FROM title t WHERE t.production_year > 50`); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Plan(ctx, nil); err == nil {
		t.Fatal("nil query accepted")
	}
	st := svc.LifecycleStats()
	if st.ExpertServed == 0 || st.LearnedServed != 0 || st.Fallbacks != 0 {
		t.Fatalf("serving counters %+v", st)
	}
}

func TestServicePlanHonorsContext(t *testing.T) {
	svc := testService(t)
	q, err := svc.System().Workload.ByRelations(12, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Already-cancelled context: immediate error, no planning.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Plan(cancelled, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Plan err = %v, want context.Canceled", err)
	}

	// A deadline that expires mid-search: the 12-relation DP sweep takes far
	// longer than 3ms, so the enumeration loop's per-subset check must cut
	// it off and surface context.DeadlineExceeded promptly.
	start := time.Now()
	ctx, cancel2 := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel2()
	_, err = svc.Plan(ctx, q)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline Plan err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Plan took %v to notice an expired 3ms deadline", elapsed)
	}

	// Without a deadline the same query plans fine.
	if res, err := svc.Plan(context.Background(), q); err != nil || res.Plan == nil {
		t.Fatalf("unbounded Plan: res=%+v err=%v", res, err)
	}
}

// publishRandomPolicy installs a serving layout and publishes an untrained
// (deliberately regressed) policy with matching dimensions — the safeguard's
// worst case, injected without depending on training stochasticity.
func publishRandomPolicy(t testing.TB, svc *Service, seed int64) *rl.Reinforce {
	return publishPolicySized(t, svc, seed, []int{16})
}

// publishPolicySized is publishRandomPolicy with the hidden layout exposed:
// the serving benchmarks publish production-sized policies so the inference
// path carries a realistic share of each Plan call.
func publishPolicySized(t testing.TB, svc *Service, seed int64, hidden []int) *rl.Reinforce {
	t.Helper()
	maxRels := 0
	for _, q := range svc.Queries() {
		if len(q.Relations) > maxRels {
			maxRels = len(q.Relations)
		}
	}
	space := featurize.NewSpace(maxRels, svc.sys.Est)
	sp := newServePool(svc, space, Stages{}, maxRels)
	svc.serve.Store(sp)
	learner := rl.NewReinforce(sp.obsDim, sp.actionDim, rl.ReinforceConfig{
		Hidden: hidden, Precision: F64, Seed: seed,
	})
	svc.publish(learner)
	return learner
}

func TestServiceSafeguardNeverServesRegression(t *testing.T) {
	// FallbackRatio 1.0: the learned plan may only be served when it is at
	// least as cheap as the expert's. A random policy regresses on most
	// queries, so the guard must fire and every served cost must stay
	// bounded by the expert's.
	svc, err := New(WithScale(0.05), WithWorkload(4, 7, 8, 5), WithFallbackRatio(1.0))
	if err != nil {
		t.Fatal(err)
	}
	publishRandomPolicy(t, svc, 99)
	if v := svc.PolicyVersion(); v != 1 {
		t.Fatalf("policy version %d after one publish", v)
	}

	ctx := context.Background()
	for round := 0; round < 3; round++ {
		for _, q := range svc.Queries() {
			res, err := svc.Plan(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Plan == nil || res.Cost <= 0 {
				t.Fatalf("service served no plan: %+v", res)
			}
			// The safeguard invariant: never serve worse than ratio × expert.
			if res.Cost > svc.FallbackRatio()*res.ExpertCost*(1+1e-12) {
				t.Fatalf("served cost %.1f breaches %.2f× expert %.1f (source %v)",
					res.Cost, svc.FallbackRatio(), res.ExpertCost, res.Source)
			}
			if res.Source == SourceFallback && res.Cost != res.ExpertCost {
				t.Fatalf("fallback decision did not serve the expert plan: %+v", res)
			}
			if res.PolicyVersion != 1 {
				t.Fatalf("decision consulted version %d, want 1", res.PolicyVersion)
			}
		}
	}
	st := svc.LifecycleStats()
	if st.Fallbacks == 0 {
		t.Fatalf("random policy never triggered the regression guard: %+v", st)
	}
}

func TestServiceSafeguardDisabled(t *testing.T) {
	// Ratio ≤ 0 disables the guard: the learned plan is served regardless
	// of regression (when the rollout produces one).
	svc, err := New(WithScale(0.05), WithWorkload(3, 4, 5, 5), WithFallbackRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	publishRandomPolicy(t, svc, 41)
	learned := 0
	for _, q := range svc.Queries() {
		res, err := svc.Plan(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Source == SourceLearned {
			learned++
		}
	}
	if learned == 0 {
		t.Fatal("guard disabled but no learned plan was ever served")
	}
}

// quickLifecycle is a budget small enough for test runs while still passing
// through every phase.
func quickLifecycle() LifecycleConfig {
	return LifecycleConfig{
		Hidden:          []int{32},
		DemoSweeps:      1,
		PretrainBatches: 6,
		CostEpisodes:    48,
		EvalEvery:       24,
		LatencyEpisodes: 16,
		Actors:          2,
		Seed:            7,
	}
}

func TestServiceLifecyclePhasesInOrder(t *testing.T) {
	svc := testService(t)
	ctx := context.Background()
	if err := svc.StartTraining(ctx, quickLifecycle()); err != nil {
		t.Fatal(err)
	}
	if err := svc.StartTraining(ctx, quickLifecycle()); err == nil {
		t.Fatal("second StartTraining accepted while the first is running")
	}
	if err := svc.WaitTraining(ctx); err != nil {
		t.Fatal(err)
	}
	st := svc.LifecycleStats()
	if st.Phase != PhaseDone {
		t.Fatalf("final phase %v, want done (%+v)", st.Phase, st)
	}
	want := []struct{ from, to LifecyclePhase }{
		{PhaseIdle, PhaseDemonstration},
		{PhaseDemonstration, PhaseCostTraining},
		{PhaseCostTraining, PhaseLatencyTuning},
		{PhaseLatencyTuning, PhaseDone},
	}
	if len(st.Transitions) != len(want) {
		t.Fatalf("transitions %+v, want %d of them", st.Transitions, len(want))
	}
	for i, w := range want {
		got := st.Transitions[i]
		if got.From != w.from || got.To != w.to || got.Reason == "" {
			t.Fatalf("transition %d = %+v, want %v→%v with a reason", i, got, w.from, w.to)
		}
	}
	if st.Demonstrations != len(svc.Queries()) {
		t.Fatalf("demonstrated %d queries, want %d", st.Demonstrations, len(svc.Queries()))
	}
	if st.CostEpisodes != 48 || st.LatencyEpisodes != 16 {
		t.Fatalf("episode accounting %+v", st)
	}
	if st.PolicyVersion == 0 {
		t.Fatal("lifecycle finished without publishing a policy")
	}
	// A trained service serves learned plans (bounded by the safeguard) for
	// its workload without error.
	for _, q := range svc.Queries() {
		res, err := svc.Plan(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.PolicyVersion == 0 {
			t.Fatalf("post-training decision consulted no policy: %+v", res)
		}
	}
}

func TestServiceLifecycleCancellation(t *testing.T) {
	svc := testService(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before it can get anywhere
	if err := svc.StartTraining(ctx, quickLifecycle()); err != nil {
		t.Fatal(err)
	}
	err := svc.WaitTraining(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled lifecycle err = %v, want context.Canceled", err)
	}
	if got := svc.Phase(); got != PhaseStopped {
		t.Fatalf("phase after cancellation = %v, want stopped", got)
	}
	// The service still serves (expert path) and can start a fresh lifecycle.
	if _, err := svc.Plan(context.Background(), svc.Queries()[0]); err != nil {
		t.Fatal(err)
	}
	if err := svc.StartTraining(context.Background(), quickLifecycle()); err != nil {
		t.Fatal(err)
	}
	if err := svc.WaitTraining(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServiceConcurrentPlanDuringTraining hammers Plan from several
// goroutines while the lifecycle trains and hot-swaps policies, asserting
// no torn reads (every decision is a complete, safeguard-bounded plan) and
// per-goroutine monotone policy versions. Run with -race.
func TestServiceConcurrentPlanDuringTraining(t *testing.T) {
	svc := testService(t, WithCache(CacheConfig{Capacity: 1 << 14}))
	ratio := svc.FallbackRatio()
	ctx := context.Background()
	if err := svc.StartTraining(ctx, quickLifecycle()); err != nil {
		t.Fatal(err)
	}

	const hammers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, hammers)
	stop := make(chan struct{})
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := svc.Queries()
			var lastVersion uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g+i)%len(queries)]
				res, err := svc.Plan(ctx, q)
				if err != nil {
					errCh <- err
					return
				}
				if res.Plan == nil || res.Cost <= 0 || math.IsNaN(res.Cost) || math.IsInf(res.Cost, 0) {
					errCh <- errors.New("torn or empty planning decision")
					return
				}
				if ratio > 0 && res.Cost > ratio*res.ExpertCost*(1+1e-12) {
					errCh <- errors.New("safeguard breached under concurrency")
					return
				}
				if res.PolicyVersion < lastVersion {
					errCh <- errors.New("policy version went backwards")
					return
				}
				lastVersion = res.PolicyVersion
			}
		}(g)
	}
	if err := svc.WaitTraining(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := svc.LifecycleStats()
	if st.Phase != PhaseDone || st.PolicyVersion == 0 {
		t.Fatalf("lifecycle under load ended %+v", st)
	}
	if st.Plans == 0 {
		t.Fatal("hammer goroutines planned nothing")
	}
}

// TestOpenWrapperParity pins the deprecated-wrapper contract: Open + the
// System agent API and New + the Service agent API are the same code path,
// so for identical seeds on the f64 path they produce bitwise-identical
// plans and costs.
func TestOpenWrapperParity(t *testing.T) {
	cfg := Config{Scale: 0.05}
	sysA, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svcB, err := New(WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	queriesA, err := sysA.Workload.Training(4, 4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	queriesB, err := svcB.System().Workload.Training(4, 4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Pin f64 so the parity is bitwise regardless of HANDSFREE_PRECISION.
	rcfg := ReJOINConfig{Seed: 1, Hidden: []int{32}, Precision: F64}
	agentA, err := sysA.NewReJOINAgent(queriesA, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	agentB, err := svcB.NewReJOINAgent(queriesB, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	agentA.Train(40)
	agentB.Train(40)
	for i := range queriesA {
		planA, costA := agentA.Plan(queriesA[i])
		planB, costB := agentB.Plan(queriesB[i])
		if math.Float64bits(costA) != math.Float64bits(costB) {
			t.Fatalf("query %d: wrapper cost %x (%.6f) != service cost %x (%.6f)",
				i, math.Float64bits(costA), costA, math.Float64bits(costB), costB)
		}
		if ExplainPlan(planA) != ExplainPlan(planB) {
			t.Fatalf("query %d: wrapper and service plans differ:\n%s\nvs\n%s",
				i, ExplainPlan(planA), ExplainPlan(planB))
		}
	}
	// The expert path delegates identically too.
	for i := range queriesA {
		pA, err := sysA.Plan(queriesA[i])
		if err != nil {
			t.Fatal(err)
		}
		pB, err := svcB.ExpertPlan(context.Background(), queriesB[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(pA.Cost) != math.Float64bits(pB.Cost) || ExplainPlan(pA.Root) != ExplainPlan(pB.Root) {
			t.Fatalf("query %d: expert parity broken", i)
		}
	}
}

// TestServiceRolloutHonorsDeadlineMidEpisode drives the learned-rollout
// branch of Plan with an expiring deadline: cancellation must surface from
// inside the planspace rollout loop, not only from the expert's enumerator.
func TestServiceRolloutHonorsDeadlineMidEpisode(t *testing.T) {
	svc := testService(t)
	publishRandomPolicy(t, svc, 11)
	q := svc.Queries()[0]
	// Expire the context between the (cached-fast) expert plan and the
	// rollout by pre-warming the expert plan, then using a context that is
	// already at its deadline when the rollout begins.
	if _, err := svc.Plan(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	env := svc.serve.Load().get()
	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	_, err := env.GreedyRollout(ctx, q, func(st rl.State) int {
		steps++
		cancel() // cancel mid-episode, after the first decision
		return planspaceFirstValid(st)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("rollout err = %v after %d steps, want context.Canceled", err, steps)
	}
	if steps != 1 {
		t.Fatalf("rollout took %d decisions after cancellation, want exactly 1", steps)
	}
}

func planspaceFirstValid(st rl.State) int {
	for i, ok := range st.Mask {
		if ok {
			return i
		}
	}
	return -1
}

// TestServiceSharedInferenceParity pins the shared-packing serving contract:
// Plan decisions with the per-publish packed policy are bitwise identical to
// the per-call unpacked path, so WithSharedInference can never change what
// the service serves — only how fast it serves it.
func TestServiceSharedInferenceParity(t *testing.T) {
	shared := testService(t, WithFallbackRatio(0))
	unshared := testService(t, WithFallbackRatio(0), WithSharedInference(false))
	publishRandomPolicy(t, shared, 71)
	publishRandomPolicy(t, unshared, 71)

	ctx := context.Background()
	learned := 0
	for i, q := range shared.Queries() {
		resA, err := shared.Plan(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := unshared.Plan(ctx, unshared.Queries()[i])
		if err != nil {
			t.Fatal(err)
		}
		if resA.Source != resB.Source ||
			math.Float64bits(resA.Cost) != math.Float64bits(resB.Cost) ||
			math.Float64bits(resA.LearnedCost) != math.Float64bits(resB.LearnedCost) {
			t.Fatalf("query %d: shared (%v, %x) != unshared (%v, %x)",
				i, resA.Source, math.Float64bits(resA.Cost), resB.Source, math.Float64bits(resB.Cost))
		}
		if ExplainPlan(resA.Plan) != ExplainPlan(resB.Plan) {
			t.Fatalf("query %d: shared and unshared plans differ:\n%s\nvs\n%s",
				i, ExplainPlan(resA.Plan), ExplainPlan(resB.Plan))
		}
		if resA.Source == SourceLearned {
			learned++
		}
	}
	if learned == 0 {
		t.Fatal("parity check never exercised the learned-rollout path")
	}
}
