package handsfree

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"handsfree/internal/bootstrap"
	"handsfree/internal/engine"
	"handsfree/internal/exechistory"
	"handsfree/internal/featurize"
	"handsfree/internal/lfd"
	"handsfree/internal/nn"
	"handsfree/internal/paramserver"
	"handsfree/internal/planspace"
	"handsfree/internal/rl"
)

// This file is the hands-free optimizer as a service: a concurrency-safe
// front end that always serves a plan (the traditional optimizer's until a
// learned policy exists, the learned policy's once it beats the safeguard),
// threads context.Context through every planning request, and runs the
// paper's learning state machine — observe the expert, train on cost,
// fine-tune on latency — as a background lifecycle with hot policy swaps.
//
//	svc, _ := handsfree.New(handsfree.WithScale(0.1), handsfree.WithWorkload(8, 4, 6, 3))
//	res, _ := svc.PlanSQL(ctx, "SELECT ...")     // expert plan (untrained)
//	svc.StartTraining(ctx, handsfree.LifecycleConfig{})
//	...                                           // Plan keeps serving, policy hot-swaps
//	svc.WaitTraining(ctx)
//
// See ARCHITECTURE.md, "Service lifecycle", for the state machine diagram.

// Stages selects which pipeline steps a lifecycle's learned policy controls
// (join ordering is always learned; the traditional optimizer completes the
// rest). The zero value — join ordering only, as in the paper's §3 ReJOIN
// case study — is the service default.
type Stages = planspace.Stages

// DefaultFallbackRatio is the regression-guard default: a learned plan is
// served only while its cost-model estimate stays within this multiple of
// the expert plan's.
const DefaultFallbackRatio = 1.2

// serviceOptions is the state assembled by functional options.
type serviceOptions struct {
	cfg             Config
	fallbackRatio   float64
	workload        *workloadSpec
	exec            ExecutionConfig
	noSharedPacking bool
}

type workloadSpec struct {
	count, minRel, maxRel int
	seed                  int64
}

// Option configures New.
type Option func(*serviceOptions)

// WithConfig seeds every substrate knob at once from a legacy Config; later
// options override individual fields.
func WithConfig(cfg Config) Option {
	return func(o *serviceOptions) { o.cfg = cfg }
}

// WithSeed sets the database-generation seed (default 1).
func WithSeed(seed int64) Option {
	return func(o *serviceOptions) { o.cfg.Seed = seed }
}

// WithScale sets the database scale factor (default 1.0 ≈ 400k rows).
func WithScale(scale float64) Option {
	return func(o *serviceOptions) { o.cfg.Scale = scale }
}

// WithOracleSeed selects the systematic cardinality-error field (default 11).
func WithOracleSeed(seed int64) Option {
	return func(o *serviceOptions) { o.cfg.OracleSeed = seed }
}

// WithLatencySeed selects the execution-noise field (default 5).
func WithLatencySeed(seed int64) Option {
	return func(o *serviceOptions) { o.cfg.LatencySeed = seed }
}

// WithPrecision sets the default tensor-core precision for every learned
// agent the service builds (F64, F32, or PrecisionAuto).
func WithPrecision(p Precision) Option {
	return func(o *serviceOptions) { o.cfg.Precision = p }
}

// WithEngine sets the default dense-kernel backend for every learned agent
// the service builds (EngineReference, EngineBlocked, or EngineAuto).
func WithEngine(e ComputeEngine) Option {
	return func(o *serviceOptions) { o.cfg.Engine = e }
}

// WithStats selects the statistics source the planning stack runs on:
// StatsExact (histograms + MCVs, the historical behavior), StatsSketch
// (HyperLogLog / Count-Min / reservoir sketches alone), or StatsAuto
// (resolve through HANDSFREE_STATS, defaulting to exact).
func WithStats(m StatsMode) Option {
	return func(o *serviceOptions) { o.cfg.Stats = m }
}

// WithCache enables and sizes the plan cache service.
func WithCache(cc CacheConfig) Option {
	return func(o *serviceOptions) {
		cc.Enabled = true
		o.cfg.Cache = cc
	}
}

// WithWorkload attaches a generated training workload: count queries of
// minRel–maxRel relations drawn with the given seed. The lifecycle trains on
// it by default, and Queries exposes it for serving loops.
func WithWorkload(count, minRel, maxRel int, seed int64) Option {
	return func(o *serviceOptions) {
		o.workload = &workloadSpec{count: count, minRel: minRel, maxRel: maxRel, seed: seed}
	}
}

// WithFallbackRatio configures the per-query regression guard: the learned
// plan is served only while its cost stays ≤ ratio × the expert plan's cost;
// otherwise the expert plan is served and the fallback counted. Values ≤ 0
// disable the guard (the learned plan, when one exists, is always served).
// Default DefaultFallbackRatio.
func WithFallbackRatio(ratio float64) Option {
	return func(o *serviceOptions) { o.fallbackRatio = ratio }
}

// WithSharedInference toggles shared-packing inference for served rollouts
// (default on). When on, each published policy snapshot packs its layers'
// weight panels once (lazily, on first Plan against that snapshot) and every
// concurrent Plan evaluation reads the shared pack; when off, rollout
// decisions evaluate the unpacked network per call. Both paths are bitwise
// identical — the packed gemv kernels round exactly like the reference
// kernels — so the knob trades only packing-at-publish versus per-call
// weight traffic, never plans.
func WithSharedInference(on bool) Option {
	return func(o *serviceOptions) { o.noSharedPacking = !on }
}

// Service is the hands-free optimizer as a long-lived, concurrency-safe
// service. Plan/PlanSQL may be called from any number of goroutines, during
// training included: policy snapshots are immutable and swapped atomically
// (versions are monotone), and the regression guard keeps every served plan
// within the configured ratio of the expert's.
type Service struct {
	sys             *System
	queries         []*Query
	fallbackRatio   float64
	sharedInference bool

	// policies holds the published policy snapshots (version 0 = no learned
	// policy yet). The lifecycle's learner publishes, Plan reads lock-free.
	policies *paramserver.Server
	// serve is the current serving layout + env pool (nil before the first
	// StartTraining; swapped atomically when a lifecycle begins).
	serve atomic.Pointer[servePool]

	phase atomic.Int32

	// Execution feedback loop (see execute.go): real execution with
	// fault-injectable observed latency, the bounded per-fingerprint latency
	// history, and the drift detector over its rolling ratios. driftCh hands
	// drift events to the resident lifecycle (one pending signal, never
	// blocking the serving path).
	execCfg  ExecutionConfig
	observed *engine.Observed
	history  *exechistory.Store
	drift    *exechistory.Detector
	driftCh  chan string

	mu           sync.Mutex
	running      bool
	done         chan struct{}
	exited       chan struct{}
	stopTraining context.CancelFunc
	trainErr     error
	transitions  []PhaseChange
	progress     lifecycleProgress

	plans, learnedServed, expertServed, fallbacks atomic.Uint64

	executions, execFailures, execTimeouts atomic.Uint64
	latencyGuarded, driftEvents, retrains  atomic.Uint64

	// Approximate-execution counters (see ExecuteApprox): served vs
	// fell-back decisions, plus the exact-audit accuracy tallies guarded by
	// approxMu.
	approxServed, approxFallbacks atomic.Uint64
	approxMu                      sync.Mutex
	approxAudits                  uint64
	approxCompared, approxCovered uint64
	approxErrSum                  float64
}

// New assembles the synthetic substrate and wraps it in a Service.
func New(opts ...Option) (*Service, error) {
	o := serviceOptions{fallbackRatio: DefaultFallbackRatio}
	for _, opt := range opts {
		opt(&o)
	}
	sys, err := openSystem(o.cfg)
	if err != nil {
		return nil, err
	}
	o.exec.fill()
	svc := &Service{
		sys:             sys,
		fallbackRatio:   o.fallbackRatio,
		sharedInference: !o.noSharedPacking,
		policies:        paramserver.New(nil),
		execCfg:         o.exec,
		history: exechistory.New(exechistory.Config{
			Window:          o.exec.Window,
			MaxFingerprints: o.exec.MaxFingerprints,
			MinLearned:      o.exec.MinLearned,
			MinExpert:       o.exec.MinExpert,
		}),
		drift: exechistory.NewDetector(exechistory.DriftConfig{
			Ratio:   o.exec.DriftRatio,
			Sustain: o.exec.DriftSustain,
		}),
		driftCh: make(chan string, 1),
	}
	svc.observed = engine.NewObserved(sys.Engine)
	svc.observed.MsPerWork = o.exec.MsPerWork
	sys.svc = svc
	if o.workload != nil {
		qs, err := sys.Workload.Training(o.workload.count, o.workload.minRel, o.workload.maxRel, o.workload.seed)
		if err != nil {
			return nil, err
		}
		svc.queries = qs
	}
	return svc, nil
}

// System exposes the underlying substrate (database, planner, engine,
// latency simulator, workload generators) for code that needs direct access.
func (s *Service) System() *System { return s.sys }

// StatsMode reports which statistics source the planner runs on: exact
// histograms (StatsExact) or one-pass sketches (StatsSketch).
func (s *Service) StatsMode() StatsMode { return s.sys.StatsSource }

// Queries returns the workload configured with WithWorkload (nil otherwise).
func (s *Service) Queries() []*Query { return s.queries }

// FallbackRatio reports the regression-guard ratio in force (≤ 0 when the
// guard is disabled).
func (s *Service) FallbackRatio() float64 { return s.fallbackRatio }

// PolicyVersion returns the version of the latest published policy snapshot
// (0 until the lifecycle publishes one). Versions are monotone: once a
// caller has observed version v, no later call observes an older version.
func (s *Service) PolicyVersion() uint64 { return s.policies.Version() }

// PlanSource says which planner produced a served plan.
type PlanSource int

const (
	// SourceExpert: the traditional optimizer's plan, served because no
	// learned policy exists (or it cannot cover the query).
	SourceExpert PlanSource = iota
	// SourceLearned: the learned policy's plan, within the safeguard bound.
	SourceLearned
	// SourceFallback: the learned policy produced a plan but it regressed
	// past FallbackRatio × the expert's cost, so the expert plan was served.
	SourceFallback
)

// String names the source.
func (p PlanSource) String() string {
	switch p {
	case SourceLearned:
		return "learned"
	case SourceFallback:
		return "fallback"
	default:
		return "expert"
	}
}

// PlanResult is one served planning decision.
type PlanResult struct {
	// Plan is the served physical plan; Cost its cost-model estimate.
	Plan PlanNode
	Cost float64
	// Source says which planner the served plan came from.
	Source PlanSource
	// PolicyVersion is the policy snapshot consulted (0 when no learned
	// policy existed at serving time).
	PolicyVersion uint64
	// ExpertCost is the traditional optimizer's plan cost (always computed:
	// it is both the fallback and the safeguard reference).
	ExpertCost float64
	// LearnedCost is the learned plan's cost (NaN when no learned rollout
	// ran).
	LearnedCost float64
	// Fingerprint is the query's canonical fingerprint — the key its
	// execution history (and therefore the latency guard and drift detector)
	// is tracked under.
	Fingerprint uint64
	// LatencyRatio is the fingerprint's rolling observed learned/expert
	// latency ratio at decision time (NaN until both windows hold their
	// minimum samples); Service.ObservedRatio reads the live value.
	LatencyRatio float64
	// LatencyGuarded reports that the observed-latency guard (not the cost
	// guard) forced this decision to the expert plan: the learned plan's
	// rolling observed latency had regressed past ExecutionConfig.GuardRatio
	// × the expert's on this fingerprint.
	LatencyGuarded bool

	// expertPlan is the expert's plan, kept for Execute's failure fallback
	// and expert shadow probes even when the learned plan is served.
	expertPlan PlanNode
}

// Plan serves a plan for q under a request-scoped context. The expert plan
// is always computed (it is the safeguard reference and the fallback); when
// a learned policy is published, the policy rolls out greedily and its plan
// is served only if its cost stays within FallbackRatio × the expert's.
// Deadlines and cancellation are honored mid-search — inside the expert's
// enumeration loops and between rollout decisions — returning ctx.Err().
func (s *Service) Plan(ctx context.Context, q *Query) (PlanResult, error) {
	if q == nil {
		return PlanResult{}, fmt.Errorf("handsfree: Plan called with a nil query")
	}
	if err := ctx.Err(); err != nil {
		return PlanResult{}, err
	}
	expert, err := s.sys.Planner.PlanCtx(ctx, q)
	if err != nil {
		return PlanResult{}, err
	}
	fp := s.sys.PlanCache.FingerprintOf(q)
	ratio, _, _ := s.history.Ratio(fp)
	res := PlanResult{
		Plan:         expert.Root,
		Cost:         expert.Cost,
		Source:       SourceExpert,
		ExpertCost:   expert.Cost,
		LearnedCost:  math.NaN(),
		Fingerprint:  fp,
		LatencyRatio: ratio,
		expertPlan:   expert.Root,
	}
	sp := s.serve.Load()
	if sp == nil || len(q.Relations) > sp.maxRels {
		s.plans.Add(1)
		s.expertServed.Add(1)
		return res, nil
	}
	snap := s.policies.Latest()
	if snap.Version == 0 || snap.Net == nil ||
		snap.Net.InDim() != sp.obsDim || snap.Net.OutDim() != sp.actionDim {
		// No learned policy yet, or a stale snapshot from a lifecycle with a
		// different layout (a fresh lifecycle has begun but not published).
		s.plans.Add(1)
		s.expertServed.Add(1)
		return res, nil
	}
	res.PolicyVersion = snap.Version
	env := sp.get()
	choose := func(st rl.State) int { return greedyAction(snap.Net, st) }
	if s.sharedInference {
		if packed := snap.Packed(); packed != nil {
			logits := logitsPool.Get().(*nn.Mat)
			defer logitsPool.Put(logits)
			choose = func(st rl.State) int { return greedyActionPacked(packed, st, logits) }
		}
	}
	out, rerr := env.GreedyRollout(ctx, q, choose)
	sp.put(env)
	if rerr != nil {
		return PlanResult{}, rerr
	}
	res.LearnedCost = out.Cost
	// Count the decision only once it is complete, next to its source
	// counter, so Plans == LearnedServed + ExpertServed + Fallbacks holds
	// even when a deadline aborts a rollout mid-episode.
	s.plans.Add(1)
	switch {
	case out.Plan == nil || math.IsInf(out.Cost, 1) ||
		(s.fallbackRatio > 0 && out.Cost > s.fallbackRatio*expert.Cost):
		res.Source = SourceFallback
		s.fallbacks.Add(1)
	case s.execCfg.GuardRatio > 0 && ratio > s.execCfg.GuardRatio:
		// The observed-latency guard: the cost model still likes the learned
		// plan, but executions of this fingerprint's learned plans have been
		// measurably slower than the expert's — serve the expert until the
		// ratio recovers (or re-training flushes the learned windows). A NaN
		// ratio (no verdict yet) never trips this branch.
		res.Source = SourceFallback
		res.LatencyGuarded = true
		s.fallbacks.Add(1)
		s.latencyGuarded.Add(1)
	default:
		res.Plan, res.Cost, res.Source = out.Plan, out.Cost, SourceLearned
		s.learnedServed.Add(1)
	}
	return res, nil
}

// PlanSQL parses SQL text and serves a plan for it; see Plan.
func (s *Service) PlanSQL(ctx context.Context, sql string) (PlanResult, error) {
	q, err := ParseSQL(sql)
	if err != nil {
		return PlanResult{}, err
	}
	return s.Plan(ctx, q)
}

// ExpertPlan runs only the traditional optimizer under a request-scoped
// context — no learned policy, no safeguard. It is the request-scoped
// equivalent of the deprecated System.Plan.
func (s *Service) ExpertPlan(ctx context.Context, q *Query) (Planned, error) {
	return s.sys.Planner.PlanCtx(ctx, q)
}

// greedyAction picks the highest-logit valid action from an immutable policy
// snapshot (nn.Infer is safe for concurrent use on a shared network).
// Returns -1 when no valid action exists. Tie-breaking is first-max-wins
// over the logits, which selects the same action as rl.Reinforce.Greedy's
// first-max-wins over the softmax probabilities (softmax is monotone and
// tie-preserving), so serving agrees with the lifecycle's greedyRatio
// predicate on every state.
func greedyAction(net *nn.Network, st rl.State) int {
	logits := net.Infer(nn.FromVec(st.Features))
	return argmaxMasked(logits.Data, st.Mask)
}

// greedyActionPacked is greedyAction against a snapshot's shared packed form
// (see paramserver.Snapshot.Packed): bitwise-identical logits — the packed
// gemv rounds exactly like the reference kernels — with the per-call weight
// re-reads and output allocation replaced by the shared panels and a pooled
// logits buffer. One buffer serves one Plan call's whole rollout; concurrent
// Plan calls each hold their own.
func greedyActionPacked(p *nn.PackedNetwork, st rl.State, logits *nn.Mat) int {
	p.InferVec(st.Features, logits)
	return argmaxMasked(logits.Data, st.Mask)
}

func argmaxMasked(logits []float64, mask []bool) int {
	best := -1
	var bestV float64
	for i, v := range logits {
		if i >= len(mask) || !mask[i] || math.IsNaN(v) {
			continue
		}
		if best < 0 || v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// logitsPool recycles rollout logits buffers across Plan calls.
var logitsPool = sync.Pool{New: func() any { return &nn.Mat{} }}

// servePool is the serving-side layout and environment pool for learned
// rollouts. Envs are stateful (one rollout at a time each), so concurrent
// Plan calls each take their own from the pool.
type servePool struct {
	svc               *Service
	space             *featurize.Space
	stages            Stages
	maxRels           int
	obsDim, actionDim int
	pool              sync.Pool
}

func newServePool(svc *Service, space *featurize.Space, stages Stages, maxRels int) *servePool {
	layout := planspace.Layout{Space: space, Stages: stages}
	sp := &servePool{
		svc:       svc,
		space:     space,
		stages:    stages,
		maxRels:   maxRels,
		obsDim:    layout.ObsDim(),
		actionDim: layout.ActionDim(),
	}
	sp.pool.New = func() any {
		return planspace.NewEnv(planspace.Config{
			Space:   sp.space,
			Stages:  sp.stages,
			Planner: sp.svc.sys.Planner,
			Reward:  planspace.CostReward,
			Cache:   sp.svc.sys.PlanCache,
			// Serving rollouts decode each state into an action and drop it,
			// so the pooled envs can reuse their feature/mask buffers.
			ReuseStateBuffers: true,
		})
	}
	return sp
}

func (sp *servePool) get() *planspace.Env  { return sp.pool.Get().(*planspace.Env) }
func (sp *servePool) put(e *planspace.Env) { sp.pool.Put(e) }

// LifecyclePhase is a state of the learning state machine.
type LifecyclePhase int32

const (
	// PhaseIdle: no lifecycle has run.
	PhaseIdle LifecyclePhase = iota
	// PhaseDemonstration: observing the expert (§5.1 steps 1–3): collect
	// expert demonstrations with executed latencies, pretrain the
	// reward-prediction network, prime the policy on the expert
	// trajectories.
	PhaseDemonstration
	// PhaseCostTraining: the §5.2 "training wheels" phase — asynchronous
	// actor-learner training against the cost model, exploration safe
	// because bad plans are costed, never executed.
	PhaseCostTraining
	// PhaseLatencyTuning: the reward switches to simulated execution
	// latency (§5.2 Phase 2) and training continues asynchronously.
	PhaseLatencyTuning
	// PhaseDone: the lifecycle completed its budgets. With
	// LifecycleConfig.DriftRetrain the lifecycle stays resident here,
	// watching for drift events from the execution feedback loop.
	PhaseDone
	// PhaseStopped: the lifecycle's context was cancelled mid-run.
	PhaseStopped
	// PhaseDriftRetraining: the drift detector observed a served learned
	// plan's latency sustainedly regressing against the expert baseline, so
	// the lifecycle flushed the stale learned history and re-entered
	// cost-then-latency training. Serving continues throughout (the latency
	// guard holds regressed fingerprints on the expert plan meanwhile), and
	// the retrained policy hot-swaps in on the way back to PhaseDone.
	PhaseDriftRetraining
)

// String names the phase.
func (p LifecyclePhase) String() string {
	switch p {
	case PhaseDemonstration:
		return "demonstration"
	case PhaseCostTraining:
		return "cost-training"
	case PhaseLatencyTuning:
		return "latency-tuning"
	case PhaseDone:
		return "done"
	case PhaseStopped:
		return "stopped"
	case PhaseDriftRetraining:
		return "drift-retraining"
	default:
		return "idle"
	}
}

// PhaseChange records one state-machine transition and why it fired.
type PhaseChange struct {
	From, To LifecyclePhase
	Reason   string
}

// LifecycleConfig budgets the learning state machine. The zero value is
// usable when the service has a workload (WithWorkload): every knob has a
// default sized for a quick run; scale the budgets up for real training.
type LifecycleConfig struct {
	// Queries is the training workload (default: the service workload).
	Queries []*Query
	// Stages selects the pipeline prefix the learned policy controls
	// (default: join ordering only, the §3 setup).
	Stages Stages
	// Hidden, LR, BatchSize, Precision, Engine, Seed configure the learners
	// (defaults: 128/64, 1e-3, 16, the service precision, the service
	// compute engine, 1).
	Hidden    []int
	LR        float64
	BatchSize int
	Precision Precision
	Engine    ComputeEngine
	Seed      int64

	// DemoSweeps is how many times the expert's demonstrated trajectories
	// are replayed into the policy learner as a warm start (default 2).
	DemoSweeps int
	// PretrainBatches bounds §5.1 pretraining on the demonstration buffer
	// (default 48); PretrainBatchSize is the minibatch size (default 32).
	PretrainBatches   int
	PretrainBatchSize int
	// PretrainLossTarget ends the Demonstration phase early once the
	// pretrain minibatch loss falls to the target (0 = budget only). This is
	// the Demonstration → CostTraining transition predicate.
	PretrainLossTarget float64

	// CostEpisodes budgets the CostTraining phase (default 192).
	CostEpisodes int
	// CostRatioTarget ends CostTraining early once the greedy policy's
	// geometric-mean cost ratio versus the expert reaches the target
	// (0 = budget only). This is the CostTraining → LatencyTuning
	// transition predicate; it is evaluated every EvalEvery episodes
	// (default 64).
	CostRatioTarget float64
	EvalEvery       int

	// LatencyEpisodes budgets the LatencyTuning phase (default 96);
	// LatencyBudgetMs censors simulated execution (0 = no budget).
	LatencyEpisodes int
	LatencyBudgetMs float64

	// Actors and Staleness configure the asynchronous actor-learner split
	// used by the training phases (defaults: GOMAXPROCS actors, bound 4).
	Actors    int
	Staleness int

	// DriftRetrain keeps the lifecycle resident after PhaseDone, watching
	// the execution feedback loop: when the drift detector trips on a served
	// fingerprint, the lifecycle transitions to PhaseDriftRetraining, flushes
	// the stale learned latency history, and re-runs CostTraining +
	// LatencyTuning before returning to PhaseDone (default off — without it
	// the lifecycle goroutine exits at PhaseDone exactly as before).
	// Re-training runs under live serving traffic, so its async learner
	// importance-weights over-stale trajectories (rl.AsyncConfig.WeightStale)
	// instead of dropping them.
	DriftRetrain bool
	// RetrainCostEpisodes / RetrainLatencyEpisodes budget each drift
	// re-training round (defaults: CostEpisodes and LatencyEpisodes).
	RetrainCostEpisodes    int
	RetrainLatencyEpisodes int
}

func (c *LifecycleConfig) fill(s *Service) {
	if len(c.Queries) == 0 {
		c.Queries = s.queries
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{128, 64}
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Precision == PrecisionAuto {
		c.Precision = s.sys.Precision
	}
	if c.Engine == EngineAuto {
		c.Engine = s.sys.Compute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DemoSweeps == 0 {
		c.DemoSweeps = 2
	}
	if c.PretrainBatches == 0 {
		c.PretrainBatches = 48
	}
	if c.PretrainBatchSize == 0 {
		c.PretrainBatchSize = 32
	}
	if c.CostEpisodes == 0 {
		c.CostEpisodes = 192
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 64
	}
	if c.LatencyEpisodes == 0 {
		c.LatencyEpisodes = 96
	}
	if c.LatencyBudgetMs == 0 && s.execCfg.BudgetMs > 0 {
		// Training censors executions exactly like serving does.
		c.LatencyBudgetMs = s.execCfg.BudgetMs
	}
	if c.RetrainCostEpisodes == 0 {
		c.RetrainCostEpisodes = c.CostEpisodes
	}
	if c.RetrainLatencyEpisodes == 0 {
		c.RetrainLatencyEpisodes = c.LatencyEpisodes
	}
}

// lifecycleProgress is the mutable half of LifecycleStats (mu-guarded).
type lifecycleProgress struct {
	demos           int
	pretrainBatches int
	pretrainLoss    float64
	costEpisodes    int
	latencyEpisodes int
	costRatio       float64
}

// LifecycleStats is a point-in-time snapshot of the learning state machine
// and the serving counters.
type LifecycleStats struct {
	// Phase is the current state.
	Phase LifecyclePhase
	// Transitions is the ordered transition history with reasons.
	Transitions []PhaseChange
	// Demonstrations, PretrainBatches, PretrainLoss describe the
	// Demonstration phase.
	Demonstrations  int
	PretrainBatches int
	PretrainLoss    float64
	// CostEpisodes / LatencyEpisodes count consumed training episodes;
	// CostRatio is the last evaluated greedy-vs-expert geometric-mean cost
	// ratio.
	CostEpisodes    int
	LatencyEpisodes int
	CostRatio       float64
	// PolicyVersion is the latest published snapshot version.
	PolicyVersion uint64
	// Plans counts Plan/PlanSQL decisions; LearnedServed, ExpertServed,
	// and Fallbacks split them by source. Fallbacks > 0 means the
	// regression guard fired — hands-free is not hands-over-eyes.
	Plans, LearnedServed, ExpertServed, Fallbacks uint64
}

// Phase returns the lifecycle's current state.
func (s *Service) Phase() LifecyclePhase { return LifecyclePhase(s.phase.Load()) }

// TrainingActive reports whether a lifecycle goroutine is running.
func (s *Service) TrainingActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// LifecycleStats snapshots the state machine and serving counters.
func (s *Service) LifecycleStats() LifecycleStats {
	s.mu.Lock()
	trans := append([]PhaseChange(nil), s.transitions...)
	prog := s.progress
	s.mu.Unlock()
	return LifecycleStats{
		Phase:           s.Phase(),
		Transitions:     trans,
		Demonstrations:  prog.demos,
		PretrainBatches: prog.pretrainBatches,
		PretrainLoss:    prog.pretrainLoss,
		CostEpisodes:    prog.costEpisodes,
		LatencyEpisodes: prog.latencyEpisodes,
		CostRatio:       prog.costRatio,
		PolicyVersion:   s.policies.Version(),
		Plans:           s.plans.Load(),
		LearnedServed:   s.learnedServed.Load(),
		ExpertServed:    s.expertServed.Load(),
		Fallbacks:       s.fallbacks.Load(),
	}
}

// StartTraining launches the learning state machine as a background
// goroutine: Demonstration → CostTraining → LatencyTuning → Done, with the
// transition predicates in LifecycleConfig and a policy snapshot published
// (hot swap; plan-cache epoch bumped) on every learner update. Serving
// continues throughout. Cancelling ctx stops the lifecycle at the next
// episode boundary (phase becomes PhaseStopped and WaitTraining returns the
// context error). Errors if a lifecycle is already running or no workload is
// configured.
func (s *Service) StartTraining(ctx context.Context, cfg LifecycleConfig) error {
	cfg.fill(s)
	if len(cfg.Queries) == 0 {
		return fmt.Errorf("handsfree: no training workload: set LifecycleConfig.Queries or configure WithWorkload")
	}
	ctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		cancel()
		return fmt.Errorf("handsfree: a training lifecycle is already running")
	}
	s.running = true
	s.done = make(chan struct{})
	s.exited = make(chan struct{})
	s.stopTraining = cancel
	s.trainErr = nil
	s.mu.Unlock()

	// Install the serving layout before anything can be published, so Plan
	// rollouts always agree with the snapshots' dimensions.
	maxRels := 0
	for _, q := range cfg.Queries {
		if len(q.Relations) > maxRels {
			maxRels = len(q.Relations)
		}
	}
	space := featurize.NewSpace(maxRels, s.sys.cardEstimator())
	s.serve.Store(newServePool(s, space, cfg.Stages, maxRels))

	done, exited := s.done, s.exited
	// trained fires at the first PhaseDone, releasing WaitTraining; with
	// DriftRetrain the goroutine then stays resident, so exited (the
	// StopTraining barrier) closes separately at goroutine exit.
	var once sync.Once
	trained := func() { once.Do(func() { close(done) }) }
	go func() {
		defer cancel()
		err := s.runLifecycle(ctx, cfg, space, trained)
		s.mu.Lock()
		s.trainErr = err
		s.running = false
		s.mu.Unlock()
		trained()
		close(exited)
	}()
	return nil
}

// StopTraining cancels the running lifecycle, if any, and waits for its
// goroutine to exit (the phase becomes PhaseStopped and the lifecycle error
// is context.Canceled, which StopTraining swallows as the expected clean
// stop). In-flight Plan calls are unaffected: they run under their own
// request contexts. Returns nil when no lifecycle is running; returns
// ctx.Err() if ctx expires before the lifecycle goroutine exits. It is the
// drain hook for network front ends shutting down mid-training.
func (s *Service) StopTraining(ctx context.Context) error {
	s.mu.Lock()
	cancel := s.stopTraining
	exited := s.exited
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if exited == nil {
		return nil
	}
	select {
	case <-exited:
		s.mu.Lock()
		defer s.mu.Unlock()
		if errors.Is(s.trainErr, context.Canceled) && ctx.Err() == nil {
			return nil
		}
		return s.trainErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CacheStats snapshots the plan cache counters (zeros when the cache is
// disabled). It is the stats hook behind a front end's /cache endpoint.
func (s *Service) CacheStats() PlanCacheStats {
	return s.sys.CacheStats()
}

// WaitTraining blocks until the running lifecycle first reaches PhaseDone
// (returning nil) or stops with an error, or until ctx expires (returning
// ctx.Err()). Under LifecycleConfig.DriftRetrain the lifecycle goroutine
// stays resident after PhaseDone to watch for drift; WaitTraining still
// returns at the first PhaseDone — use StopTraining to retire the resident
// watcher. Returns nil immediately if no lifecycle was ever started.
func (s *Service) WaitTraining(ctx context.Context) error {
	s.mu.Lock()
	done := s.done
	s.mu.Unlock()
	if done == nil {
		return nil
	}
	select {
	case <-done:
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.trainErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// transition moves the state machine and records why.
func (s *Service) transition(to LifecyclePhase, reason string) {
	from := LifecyclePhase(s.phase.Swap(int32(to)))
	s.mu.Lock()
	s.transitions = append(s.transitions, PhaseChange{From: from, To: to, Reason: reason})
	s.mu.Unlock()
}

func (s *Service) setProgress(f func(p *lifecycleProgress)) {
	s.mu.Lock()
	f(&s.progress)
	s.mu.Unlock()
}

// publish makes the learner's current policy the served snapshot (hot swap)
// and bumps the plan cache's policy epoch so plans memoized under older
// policies can never be served.
func (s *Service) publish(learner *rl.Reinforce) {
	s.policies.Publish(learner.Policy.CloneForInference(), learner.Updates)
	s.sys.PlanCache.BumpEpoch()
}

// stopped marks a context-cancelled lifecycle.
func (s *Service) stopped(err error) error {
	s.transition(PhaseStopped, fmt.Sprintf("lifecycle stopped: %v", err))
	return err
}

// runLifecycle is the learning state machine (one background goroutine).
// trained fires at the first transition to PhaseDone.
func (s *Service) runLifecycle(ctx context.Context, cfg LifecycleConfig, space *featurize.Space, trained func()) error {
	planner := s.sys.Planner

	// --- Demonstration (§5.1 steps 1–3) -------------------------------
	// Demonstrated episodes execute for real through the observed executor
	// and are recorded as expert baselines, so the execution feedback loop
	// starts warm for every workload fingerprint.
	s.transition(PhaseDemonstration, "lifecycle started: observe the expert")
	demoEnv := planspace.NewEnv(planspace.Config{
		Space:           space,
		Stages:          cfg.Stages,
		Planner:         planner,
		Latency:         recordingExecutor{svc: s},
		Queries:         cfg.Queries,
		ExecuteAlways:   true,
		LatencyBudgetMs: cfg.LatencyBudgetMs,
		Cache:           s.sys.PlanCache,
		Seed:            cfg.Seed,
	})
	demo := lfd.New(lfd.Config{
		Env: demoEnv, Hidden: cfg.Hidden, LR: cfg.LR,
		Precision: cfg.Precision, Engine: cfg.Engine, Seed: cfg.Seed,
	})
	if err := demo.CollectDemonstrationsCtx(ctx); err != nil {
		return s.stopped(err)
	}
	s.setProgress(func(p *lifecycleProgress) { p.demos = len(demo.Demos()) })
	loss := math.Inf(1)
	batches := 0
	demoReason := fmt.Sprintf("pretrain budget exhausted (%d batches)", cfg.PretrainBatches)
	for batches < cfg.PretrainBatches {
		if err := ctx.Err(); err != nil {
			return s.stopped(err)
		}
		loss = demo.Pretrain(1, cfg.PretrainBatchSize)
		batches++
		if cfg.PretrainLossTarget > 0 && loss <= cfg.PretrainLossTarget {
			demoReason = fmt.Sprintf("pretrain loss %.4f ≤ target %.4f after %d batches", loss, cfg.PretrainLossTarget, batches)
			break
		}
	}
	s.setProgress(func(p *lifecycleProgress) { p.pretrainBatches, p.pretrainLoss = batches, loss })

	// Build the cost→latency learner (robust bootstrap agent: Adam,
	// scale-free baseline; the §5.2 reward-range hazard does not apply).
	// Training rewards come from the same observed executor serving does —
	// true latency feedback, not the analytic simulator — but exploratory
	// rollouts are NOT recorded per fingerprint: only served decisions and
	// expert baselines may move the guard and drift ratios.
	trainEnv := planspace.NewEnv(planspace.Config{
		Space:           space,
		Stages:          cfg.Stages,
		Planner:         planner,
		Latency:         s.observed,
		Queries:         cfg.Queries,
		LatencyBudgetMs: cfg.LatencyBudgetMs,
		Cache:           s.sys.PlanCache,
		Seed:            cfg.Seed + 1,
	})
	boot := bootstrap.New(bootstrap.Config{
		Env:    trainEnv,
		Robust: true,
		Agent: rl.ReinforceConfig{
			Hidden:    cfg.Hidden,
			LR:        cfg.LR,
			BatchSize: cfg.BatchSize,
			Precision: cfg.Precision,
			Engine:    cfg.Engine,
			Seed:      cfg.Seed,
		},
	})
	// Warm-start the policy on the expert's demonstrated trajectories (their
	// recorded rewards are the same −log(cost) the cost phase trains on), so
	// cost training starts near the expert instead of from a random policy.
	for sweep := 0; sweep < cfg.DemoSweeps; sweep++ {
		if err := ctx.Err(); err != nil {
			return s.stopped(err)
		}
		for _, d := range demo.Demos() {
			boot.RL.Observe(d.Traj)
		}
	}
	s.publish(boot.RL)
	s.transition(PhaseCostTraining, demoReason+"; policy primed on expert trajectories")

	// --- CostTraining (§5.2 Phase 1, async actor-learner) --------------
	// Drift re-training runs under live serving traffic, so over-stale
	// trajectories are importance-weighted rather than dropped or consumed
	// at full weight.
	async := rl.AsyncConfig{
		Actors:      cfg.Actors,
		Staleness:   cfg.Staleness,
		WeightStale: cfg.DriftRetrain,
		OnPublish:   func(uint64) { s.publish(boot.RL) },
	}
	seed := cfg.Seed + 100

	// costPhase runs one CostTraining round (the initial one and every
	// drift re-entry) and returns the transition reason for what ended it.
	costPhase := func(episodes int) (string, error) {
		remaining := episodes
		ratio := math.Inf(1)
		reason := fmt.Sprintf("cost budget exhausted (%d episodes)", episodes)
		for remaining > 0 {
			if err := ctx.Err(); err != nil {
				return "", err
			}
			chunk := min(cfg.EvalEvery, remaining)
			seed++
			async.Seed = seed
			st := planspace.TrainAsyncCtx(ctx, trainEnv, boot.RL, chunk, async, nil)
			remaining -= chunk
			s.setProgress(func(p *lifecycleProgress) { p.costEpisodes += st.Episodes })
			if err := ctx.Err(); err != nil {
				return "", err
			}
			r, err := s.greedyRatio(trainEnv, boot.RL, cfg.Queries)
			if err == nil {
				ratio = r
				s.setProgress(func(p *lifecycleProgress) { p.costRatio = r })
			}
			if cfg.CostRatioTarget > 0 && ratio <= cfg.CostRatioTarget {
				reason = fmt.Sprintf("greedy cost ratio %.3f ≤ target %.3f", ratio, cfg.CostRatioTarget)
				break
			}
		}
		s.publish(boot.RL)
		return reason, nil
	}
	// latencyPhase runs one LatencyTuning round and publishes the result.
	latencyPhase := func(episodes int) error {
		boot.SwitchToLatency()
		seed++
		async.Seed = seed
		st := planspace.TrainAsyncCtx(ctx, trainEnv, boot.RL, episodes, async, nil)
		s.setProgress(func(p *lifecycleProgress) { p.latencyEpisodes += st.Episodes })
		if err := ctx.Err(); err != nil {
			return err
		}
		s.publish(boot.RL)
		return nil
	}

	costReason, err := costPhase(cfg.CostEpisodes)
	if err != nil {
		return s.stopped(err)
	}
	s.transition(PhaseLatencyTuning, costReason)

	// --- LatencyTuning (§5.2 Phase 2, async actor-learner) -------------
	if err := latencyPhase(cfg.LatencyEpisodes); err != nil {
		return s.stopped(err)
	}
	s.transition(PhaseDone, fmt.Sprintf("latency budget exhausted (%d episodes)", cfg.LatencyEpisodes))
	trained()
	if !cfg.DriftRetrain {
		return nil
	}

	// --- Resident drift watcher ---------------------------------------
	// The lifecycle stays alive after Done, waiting on the execution
	// feedback loop. A drift trip re-enters training: the stale learned
	// latency history is flushed (expert baselines survive — the regressed
	// policy's observations must not be held against its successor), the
	// detector resets, the reward drops back to the cost model, and the
	// CostTraining → LatencyTuning → Done path re-runs with the retrain
	// budgets, hot-swapping policies the whole way.
	for {
		select {
		case <-ctx.Done():
			return s.stopped(ctx.Err())
		case reason := <-s.driftCh:
			s.transition(PhaseDriftRetraining, reason)
			s.history.FlushLearned()
			s.drift.Reset()
			boot.SwitchToCost()
			s.transition(PhaseCostTraining, "drift re-training: reward back on the cost model")
			costReason, err := costPhase(cfg.RetrainCostEpisodes)
			if err != nil {
				return s.stopped(err)
			}
			s.transition(PhaseLatencyTuning, costReason)
			if err := latencyPhase(cfg.RetrainLatencyEpisodes); err != nil {
				return s.stopped(err)
			}
			s.retrains.Add(1)
			s.transition(PhaseDone, fmt.Sprintf("drift re-training round %d complete", s.retrains.Load()))
			// Drop any drift signal that queued up while re-training: it
			// indicted the policy that was just replaced.
			select {
			case <-s.driftCh:
			default:
			}
		}
	}
}

// greedyRatio is the CostTraining transition predicate's measurement: the
// geometric mean over the workload of (greedy learned plan cost) / (expert
// plan cost). Runs on the lifecycle goroutine between training chunks, when
// no actors are stepping the env.
func (s *Service) greedyRatio(env *planspace.Env, learner *rl.Reinforce, queries []*Query) (float64, error) {
	var logSum float64
	n := 0
	for _, q := range queries {
		out, err := env.GreedyRollout(context.Background(), q, learner.Greedy)
		if err != nil || out.Plan == nil {
			continue
		}
		planned, err := s.sys.Planner.Plan(q)
		if err != nil {
			return 0, err
		}
		logSum += math.Log(out.Cost / planned.Cost)
		n++
	}
	if n == 0 {
		return math.Inf(1), nil
	}
	return math.Exp(logSum / float64(n)), nil
}
