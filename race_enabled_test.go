//go:build race

package handsfree

// raceEnabled reports whether the race detector is compiled in. The
// zero-alloc assertions skip under -race: detector instrumentation allocates
// shadow state inside the measured functions, so allocs/op is not 0 there by
// construction, independent of the production code.
const raceEnabled = true
