module handsfree

go 1.24
