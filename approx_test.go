package handsfree

import (
	"context"
	"math"
	"testing"

	"handsfree/internal/query"
)

// approxQuery is a sketch-eligible single-relation aggregate over the
// generated title table: COUNT(*) and SUM(production_year).
func approxQuery() *Query {
	return &Query{
		Relations: []query.Relation{{Table: "title", Alias: "t"}},
		Aggregates: []query.Aggregate{
			{Kind: query.AggCount},
			{Kind: query.AggSum, Alias: "t", Column: "production_year"},
		},
	}
}

// exactAggs computes the true COUNT and SUM the approximate path estimates.
func exactAggs(t *testing.T, svc *Service, q *Query) (count, sum float64) {
	t.Helper()
	tab := svc.System().DB.Store.Tables[q.Relations[0].Table]
	if tab == nil {
		t.Fatal("no such table")
	}
	col := tab.Cols[q.Aggregates[1].Column]
	for i := 0; i < tab.N; i++ {
		ok := true
		for _, f := range q.Filters {
			if !matchOp(f.Op, tab.Cols[f.Column][i], f.Value) {
				ok = false
				break
			}
		}
		if ok {
			count++
			sum += float64(col[i])
		}
	}
	return count, sum
}

func matchOp(op query.CmpOp, v, c int64) bool {
	switch op {
	case query.Eq:
		return v == c
	case query.Ne:
		return v != c
	case query.Lt:
		return v < c
	case query.Le:
		return v <= c
	case query.Gt:
		return v > c
	case query.Ge:
		return v >= c
	}
	return false
}

// TestServiceExecuteApprox is the end-to-end acceptance property: an
// approximate execution reports estimates whose confidence intervals cover
// the exact answers, records a reduced-scan latency, and the first serve's
// exact audit scores full CI coverage.
func TestServiceExecuteApprox(t *testing.T) {
	svc := testService(t)
	q := approxQuery()
	res, err := svc.ExecuteApprox(context.Background(), q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approx || res.ApproxFellBack {
		t.Fatalf("expected an approximately served answer, got %+v", res)
	}
	if len(res.Estimates) != 3 { // COUNT, SUM, derived AVG
		t.Fatalf("got %d estimates, want 3: %+v", len(res.Estimates), res.Estimates)
	}
	count, sum := exactAggs(t, svc, q)
	want := map[string]float64{
		"agg0_COUNT":           count,
		"agg1_SUM":             sum,
		"avg1_production_year": sum / count,
	}
	for _, est := range res.Estimates {
		exact, ok := want[est.Name]
		if !ok {
			t.Fatalf("unexpected estimate %q", est.Name)
		}
		if est.Lo > exact || est.Hi < exact {
			t.Errorf("%s: CI [%.1f, %.1f] misses exact %.1f", est.Name, est.Lo, est.Hi, exact)
		}
		if est.RelError > 0.05 {
			t.Errorf("%s: rel error %.3f exceeds the met budget", est.Name, est.RelError)
		}
	}
	if !(res.LatencyMs > 0) || res.WorkUnits <= 0 {
		t.Fatalf("no observed latency/work: %+v", res)
	}
	if !(res.SampleFraction > 0 && res.SampleFraction <= 1) {
		t.Fatalf("SampleFraction %v out of range", res.SampleFraction)
	}
	st := svc.ApproxStats()
	if st.Served != 1 || st.Fallbacks != 0 {
		t.Fatalf("approx stats %+v", st)
	}
	// The first approximate serve is audited against exact execution: every
	// auditable estimate's CI must have covered the truth.
	if st.Audits != 1 || st.AuditEstimates == 0 || st.AuditCovered != st.AuditEstimates {
		t.Fatalf("audit did not confirm coverage: %+v", st)
	}
	if math.IsNaN(st.AuditMeanRelError) || st.AuditMeanRelError > 0.05 {
		t.Fatalf("audit mean relative error %v exceeds budget", st.AuditMeanRelError)
	}
	// The approximate execution landed in the latency history like any other.
	if es := svc.ExecStats(); es.Executions != 1 || es.History.Records == 0 {
		t.Fatalf("approx execution not recorded: %+v", es)
	}
}

// TestServiceExecuteApproxFallsBackIneligible: a multi-relation query cannot
// be approximated; ExecuteApprox transparently serves the exact execution.
func TestServiceExecuteApproxFallsBackIneligible(t *testing.T) {
	svc := testService(t)
	q := svc.Queries()[0] // 4–5 relations: joins are ineligible
	res, err := svc.ExecuteApprox(context.Background(), q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Approx || !res.ApproxFellBack {
		t.Fatalf("join query should have fallen back to exact: %+v", res)
	}
	if len(res.Estimates) != 0 || !(res.LatencyMs > 0) {
		t.Fatalf("fallback result malformed: %+v", res)
	}
	if st := svc.ApproxStats(); st.Served != 0 || st.Fallbacks != 1 {
		t.Fatalf("approx stats %+v", st)
	}
}

// TestServiceExecuteApproxFallsBackOnBudget: an unsatisfiably tight error
// budget triggers the exact fallback — the caller still gets an answer.
func TestServiceExecuteApproxFallsBackOnBudget(t *testing.T) {
	svc := testService(t)
	res, err := svc.ExecuteApprox(context.Background(), approxQuery(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Approx || !res.ApproxFellBack {
		t.Fatalf("unsatisfiable budget should have fallen back: %+v", res)
	}
	if st := svc.ApproxStats(); st.Fallbacks != 1 {
		t.Fatalf("fallback not counted: %+v", st)
	}
}

// TestServiceApproxDefault: ExecutionConfig.Approx makes Execute route every
// eligible query through the approximate path by default.
func TestServiceApproxDefault(t *testing.T) {
	svc := testService(t, WithExecution(ExecutionConfig{Approx: true, MaxRelError: 0.05}))
	res, err := svc.Execute(context.Background(), approxQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approx {
		t.Fatalf("Approx-configured Execute served exactly: %+v", res)
	}
	// Ineligible queries still work — they just execute exactly.
	res, err = svc.Execute(context.Background(), svc.Queries()[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Approx || !res.ApproxFellBack {
		t.Fatalf("join query under Approx default: %+v", res)
	}
}
