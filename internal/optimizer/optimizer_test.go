package optimizer

import (
	"math/rand"
	"testing"

	"handsfree/internal/cost"
	"handsfree/internal/datagen"
	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/stats"
	"handsfree/internal/workload"
)

func fixture(t *testing.T) (*Planner, *workload.Workload) {
	t.Helper()
	db, err := datagen.Generate(datagen.Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(db.Catalog, db.Stats)
	model := cost.New(cost.DefaultParams(), est)
	return New(db.Catalog, model), workload.New(db)
}

func TestDPPlansAllNamedQueries(t *testing.T) {
	p, w := fixture(t)
	for _, name := range workload.Fig3bNames() {
		q := w.MustNamed(name)
		if len(q.Relations) > p.DPThreshold {
			continue
		}
		planned, err := p.PlanWith(q, DP)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if planned.Cost <= 0 {
			t.Fatalf("%s: non-positive cost %v", name, planned.Cost)
		}
		// Every relation appears exactly once.
		leaves := plan.Leaves(planned.Root)
		if len(leaves) != len(q.Relations) {
			t.Fatalf("%s: plan has %d leaves, want %d", name, len(leaves), len(q.Relations))
		}
		seen := map[string]bool{}
		for _, l := range leaves {
			if seen[l.Alias] {
				t.Fatalf("%s: alias %s appears twice", name, l.Alias)
			}
			seen[l.Alias] = true
		}
		// A connected query planned by DP must not contain cross products.
		if plan.CrossProduct(planned.Root) {
			t.Fatalf("%s: DP produced a cross product:\n%s", name, plan.Format(planned.Root))
		}
	}
}

func TestDPOptimalVsGreedy(t *testing.T) {
	p, w := fixture(t)
	worse := 0
	for _, name := range []string{"1a", "2a", "4b", "8c", "16b"} {
		q := w.MustNamed(name)
		dp, err := p.PlanWith(q, DP)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := p.PlanWith(q, Greedy)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Cost > gr.Cost*1.0000001 {
			t.Fatalf("%s: DP cost %v exceeds greedy cost %v (DP must be optimal)", name, dp.Cost, gr.Cost)
		}
		if gr.Cost > dp.Cost*1.0000001 {
			worse++
		}
	}
	t.Logf("greedy was suboptimal on %d/5 queries", worse)
}

func TestDPBeatsRandomOrders(t *testing.T) {
	p, w := fixture(t)
	q := w.MustNamed("8c")
	dp, err := p.PlanWith(q, DP)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		skeleton := RandomOrder(q, rng)
		_, nc := p.CompletePhysical(q, skeleton)
		if nc.Total < dp.Cost*0.9999999 {
			t.Fatalf("random order %d cost %v beat DP %v", i, nc.Total, dp.Cost)
		}
	}
}

func TestGEQOHandlesLargeQueries(t *testing.T) {
	p, w := fixture(t)
	q, err := w.ByRelations(17, 5)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := p.PlanWith(q, GEQO)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.Leaves(planned.Root)); got != 17 {
		t.Fatalf("GEQO plan has %d leaves, want 17", got)
	}
	if plan.CrossProduct(planned.Root) {
		t.Fatal("GEQO produced a cross product on a connected query")
	}
}

func TestAutoSwitchesAtThreshold(t *testing.T) {
	p, w := fixture(t)
	small := w.MustNamed("1a") // 5 relations
	planned, err := p.Plan(small)
	if err != nil {
		t.Fatal(err)
	}
	if planned.Strategy != DP {
		t.Fatalf("5-relation query planned with %v, want dp", planned.Strategy)
	}
	large, err := w.ByRelations(14, 2)
	if err != nil {
		t.Fatal(err)
	}
	planned, err = p.Plan(large)
	if err != nil {
		t.Fatal(err)
	}
	if planned.Strategy != GEQO {
		t.Fatalf("14-relation query planned with %v, want geqo", planned.Strategy)
	}
}

func TestCompletePhysicalPreservesOrder(t *testing.T) {
	p, w := fixture(t)
	q := w.MustNamed("1a")
	rng := rand.New(rand.NewSource(9))
	skeleton := RandomOrder(q, rng)
	completed, nc := p.CompletePhysical(q, skeleton)
	if nc.Total <= 0 {
		t.Fatal("non-positive completed cost")
	}
	// Leaf order (join order) must be identical to the skeleton's.
	wantLeaves := plan.Leaves(skeleton)
	gotLeaves := plan.Leaves(completed)
	if len(wantLeaves) != len(gotLeaves) {
		t.Fatalf("leaf count changed: %d vs %d", len(gotLeaves), len(wantLeaves))
	}
	for i := range wantLeaves {
		if wantLeaves[i].Alias != gotLeaves[i].Alias {
			t.Fatalf("leaf %d: %s vs %s — join order not preserved", i, gotLeaves[i].Alias, wantLeaves[i].Alias)
		}
	}
}

func TestCompletePhysicalImprovesSkeleton(t *testing.T) {
	p, w := fixture(t)
	q := w.MustNamed("1a")
	rng := rand.New(rand.NewSource(4))
	skeleton := RandomOrder(q, rng) // all NLJ + seq scans
	naiveCost := p.Model.Cost(q, skeleton)
	_, nc := p.CompletePhysical(q, skeleton)
	if nc.Total > naiveCost {
		t.Fatalf("operator selection made the plan worse: %v > %v", nc.Total, naiveCost)
	}
}

func TestAggregateOperatorSelected(t *testing.T) {
	p, w := fixture(t)
	q := w.MustNamed("1c") // has GROUP BY
	planned, err := p.PlanWith(q, DP)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := planned.Root.(*plan.Agg); !ok {
		t.Fatalf("plan root is %T, want *plan.Agg", planned.Root)
	}
}

func TestAccessPathSelection(t *testing.T) {
	p, w := fixture(t)
	// Build a 1-relation query with an equality filter on an indexed column
	// (title.id is PK-indexed).
	q := w.MustNamed("1a")
	q.Relations = q.Relations[:1] // title only
	q.Joins = nil
	q.Filters = nil
	q.GroupBys = nil
	q.Filters = append(q.Filters, queryFilterEqID())
	node, _ := p.BestScan(q, "t")
	s := node.(*plan.Scan)
	if s.Access == plan.SeqScan {
		t.Fatal("planner chose seq scan for an equality filter on the PK")
	}
	if s.IndexColumn != "id" {
		t.Fatalf("index column = %s, want id", s.IndexColumn)
	}
}

func TestPlanningTimeGrowsWithDP(t *testing.T) {
	p, w := fixture(t)
	small, err := w.ByRelations(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	large, err := w.ByRelations(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := p.PlanWith(small, DP)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := p.PlanWith(large, DP)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Duration <= ps.Duration {
		t.Fatalf("DP on 11 relations (%v) should take longer than 4 (%v)", pl.Duration, ps.Duration)
	}
}

func TestPlannerRejectsEmptyQuery(t *testing.T) {
	p, _ := fixture(t)
	if _, err := p.Plan(&query.Query{}); err == nil {
		t.Fatal("planned an empty query")
	}
}

// queryFilterEqID is the equality-on-PK filter used by the access-path test.
func queryFilterEqID() query.Filter {
	return query.Filter{Alias: "t", Column: "id", Op: query.Eq, Value: 42}
}
