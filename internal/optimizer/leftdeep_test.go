package optimizer

import (
	"testing"

	"handsfree/internal/plan"
)

// leftDeepShape reports whether every join's right input is a leaf.
func leftDeepShape(n plan.Node) bool {
	switch n := n.(type) {
	case *plan.Join:
		if _, leaf := n.Right.(*plan.Scan); !leaf {
			return false
		}
		return leftDeepShape(n.Left)
	case *plan.Agg:
		return leftDeepShape(n.Child)
	default:
		return true
	}
}

func TestLeftDeepOnlyProducesLeftDeepTrees(t *testing.T) {
	p, w := fixture(t)
	p.LeftDeepOnly = true
	for _, name := range []string{"1a", "8c", "16b"} {
		q := w.MustNamed(name)
		planned, err := p.PlanWith(q, DP)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !leftDeepShape(planned.Root) {
			t.Fatalf("%s: LeftDeepOnly DP produced a bushy tree:\n%s", name, plan.Format(planned.Root))
		}
	}
}

func TestBushyNeverWorseThanLeftDeep(t *testing.T) {
	pBushy, w := fixture(t)
	pLeft, _ := fixture(t)
	pLeft.LeftDeepOnly = true
	better := 0
	for _, name := range []string{"1a", "2a", "4b", "8c", "12b", "16b"} {
		q := w.MustNamed(name)
		bushy, err := pBushy.PlanWith(q, DP)
		if err != nil {
			t.Fatal(err)
		}
		left, err := pLeft.PlanWith(q, DP)
		if err != nil {
			t.Fatal(err)
		}
		if bushy.Cost > left.Cost*1.0000001 {
			t.Fatalf("%s: bushy DP (%v) worse than left-deep (%v) — bushy search is a superset", name, bushy.Cost, left.Cost)
		}
		if left.Cost > bushy.Cost*1.0000001 {
			better++
		}
	}
	t.Logf("bushy strictly beat left-deep on %d/6 queries", better)
}

func TestLeftDeepPlansFaster(t *testing.T) {
	pBushy, w := fixture(t)
	pLeft, _ := fixture(t)
	pLeft.LeftDeepOnly = true
	q, err := w.ByRelations(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	bushy, err := pBushy.PlanWith(q, DP)
	if err != nil {
		t.Fatal(err)
	}
	left, err := pLeft.PlanWith(q, DP)
	if err != nil {
		t.Fatal(err)
	}
	if left.Duration >= bushy.Duration {
		t.Fatalf("left-deep DP (%v) not faster than bushy (%v) on 11 relations", left.Duration, bushy.Duration)
	}
}
