package optimizer

import (
	"math"

	"handsfree/internal/cost"
	"handsfree/internal/plan"
	"handsfree/internal/query"
)

// CompleteOperators keeps the skeleton's join order AND leaf access paths
// but lets the optimizer choose every join algorithm (and the aggregation
// algorithm). Used when a learned agent has decided order + access paths and
// delegates operator selection (pipeline stage 2 of §5.3).
func (p *Planner) CompleteOperators(q *query.Query, skeleton plan.Node) (plan.Node, cost.NodeCost) {
	e := p.completeOps(q, skeleton)
	return p.finishAgg(q, e.node, e.nc)
}

func (p *Planner) completeOps(q *query.Query, n plan.Node) entry {
	switch n := n.(type) {
	case *plan.Scan:
		return entry{n, p.Model.ScanCost(q, n)}
	case *plan.Join:
		left := p.completeOps(q, n.Left)
		right := p.completeOps(q, n.Right)
		// Choose only the algorithm; inputs are fixed.
		var best entry
		bestCost := math.Inf(1)
		for _, algo := range plan.JoinAlgos {
			j := plan.JoinNodes(q, algo, left.node, right.node)
			nc := p.Model.JoinCost(q, j, left.nc, right.nc)
			if nc.Total < bestCost {
				best = entry{j, nc}
				bestCost = nc.Total
			}
		}
		return best
	case *plan.Agg:
		return p.completeOps(q, n.Child)
	default:
		panic("optimizer: unknown node")
	}
}

// CompleteAccess keeps the skeleton's join order AND join algorithms but
// lets the optimizer choose every leaf's access path. Used when a learned
// agent decides order + operators but delegates index selection.
func (p *Planner) CompleteAccess(q *query.Query, skeleton plan.Node) (plan.Node, cost.NodeCost) {
	e := p.completeAccess(q, skeleton)
	return p.finishAgg(q, e.node, e.nc)
}

func (p *Planner) completeAccess(q *query.Query, n plan.Node) entry {
	switch n := n.(type) {
	case *plan.Scan:
		node, nc := p.BestScan(q, n.Alias)
		return entry{node, nc}
	case *plan.Join:
		left := p.completeAccess(q, n.Left)
		right := p.completeAccess(q, n.Right)
		j := plan.JoinNodes(q, n.Algo, left.node, right.node)
		return entry{j, p.Model.JoinCost(q, j, left.nc, right.nc)}
	case *plan.Agg:
		return p.completeAccess(q, n.Child)
	default:
		panic("optimizer: unknown node")
	}
}

// CostFixed prices a fully specified plan (all dimensions decided by the
// caller), adding the query's aggregation with the given algorithm if the
// plan lacks it.
func (p *Planner) CostFixed(q *query.Query, root plan.Node, agg plan.AggAlgo) (plan.Node, cost.NodeCost) {
	if _, ok := root.(*plan.Agg); !ok {
		root = plan.FinishAgg(q, agg, root)
	}
	return root, p.Model.Explain(q, root)
}
