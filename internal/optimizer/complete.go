package optimizer

import (
	"math"

	"handsfree/internal/cost"
	"handsfree/internal/plan"
	"handsfree/internal/plancache"
	"handsfree/internal/query"
)

// completionFP returns the query fingerprint used to key completion cache
// entries; it is only meaningful (and only computed) when a cache is
// attached.
func (p *Planner) completionFP(q *query.Query) uint64 {
	if p.Cache == nil {
		return 0
	}
	return p.Cache.FingerprintOf(q)
}

// skeletonHashes computes every subtree's structural hash in one walk
// (nil when no cache is attached); the completion recursion then looks
// hashes up by node identity instead of rehashing each subtree at each
// level, keeping hashing O(tree) per completion. A caller-provided memo
// (the environments keep one per episode) is reused: nodes already hashed
// by an earlier completion of the same episode are not re-walked, and no
// fresh map is allocated.
func (p *Planner) skeletonHashes(skeleton plan.Node, memo map[plan.Node]uint64) map[plan.Node]uint64 {
	if p.Cache == nil {
		return nil
	}
	if memo == nil {
		memo = make(map[plan.Node]uint64, 16)
	}
	plancache.HashSubtreesMemo(skeleton, memo)
	return memo
}

// cachedSubtree memoizes one completion computation under (query
// fingerprint, skeleton-subtree hash, mode). Each completion is a pure
// function of that key — the planner's catalog and cost model are fixed —
// so a cache hit returns exactly the plan and cost the computation would
// have produced. Memoizing per subtree rather than only per root means a
// repeated workload query reuses its leaves and small join subtrees even
// when the sampled join orders differ between episodes.
func (p *Planner) cachedSubtree(fp, skeletonHash uint64, mode plancache.Mode, compute func() entry) entry {
	if p.Cache == nil {
		return compute()
	}
	k := plancache.Key{Query: fp, Skeleton: skeletonHash, Mode: mode}
	if e, ok := p.Cache.Get(k); ok {
		return entry{e.Plan, e.Cost}
	}
	e := compute()
	p.Cache.Put(k, plancache.Entry{Plan: e.node, Cost: e.nc})
	return e
}

// CompleteOperators keeps the skeleton's join order AND leaf access paths
// but lets the optimizer choose every join algorithm (and the aggregation
// algorithm). Used when a learned agent has decided order + access paths and
// delegates operator selection (pipeline stage 2 of §5.3).
func (p *Planner) CompleteOperators(q *query.Query, skeleton plan.Node) (plan.Node, cost.NodeCost) {
	return p.CompleteOperatorsMemo(q, skeleton, nil)
}

// CompleteOperatorsMemo is CompleteOperators with a caller-maintained
// skeleton-hash memo (see HashSubtreesMemo): an environment passing its
// per-episode memo hashes each node once per episode across repeated
// completion calls instead of once per call. A nil memo behaves exactly
// like CompleteOperators.
func (p *Planner) CompleteOperatorsMemo(q *query.Query, skeleton plan.Node, memo map[plan.Node]uint64) (plan.Node, cost.NodeCost) {
	e := p.completeOps(q, p.completionFP(q), p.skeletonHashes(skeleton, memo), skeleton)
	return p.finishAgg(q, e.node, e.nc)
}

func (p *Planner) completeOps(q *query.Query, fp uint64, hs map[plan.Node]uint64, n plan.Node) entry {
	return p.cachedSubtree(fp, hs[n], plancache.ModeCompleteOperators, func() entry {
		switch n := n.(type) {
		case *plan.Scan:
			return entry{n, p.Model.ScanCost(q, n)}
		case *plan.Join:
			left := p.completeOps(q, fp, hs, n.Left)
			right := p.completeOps(q, fp, hs, n.Right)
			// Choose only the algorithm; inputs are fixed.
			var best entry
			bestCost := math.Inf(1)
			for _, algo := range plan.JoinAlgos {
				j := plan.JoinNodes(q, algo, left.node, right.node)
				nc := p.Model.JoinCost(q, j, left.nc, right.nc)
				if nc.Total < bestCost {
					best = entry{j, nc}
					bestCost = nc.Total
				}
			}
			return best
		case *plan.Agg:
			return p.completeOps(q, fp, hs, n.Child)
		default:
			panic("optimizer: unknown node")
		}
	})
}

// CompleteAccess keeps the skeleton's join order AND join algorithms but
// lets the optimizer choose every leaf's access path. Used when a learned
// agent decides order + operators but delegates index selection.
func (p *Planner) CompleteAccess(q *query.Query, skeleton plan.Node) (plan.Node, cost.NodeCost) {
	return p.CompleteAccessMemo(q, skeleton, nil)
}

// CompleteAccessMemo is CompleteAccess with a caller-maintained per-episode
// skeleton-hash memo; see CompleteOperatorsMemo.
func (p *Planner) CompleteAccessMemo(q *query.Query, skeleton plan.Node, memo map[plan.Node]uint64) (plan.Node, cost.NodeCost) {
	e := p.completeAccess(q, p.completionFP(q), p.skeletonHashes(skeleton, memo), skeleton)
	return p.finishAgg(q, e.node, e.nc)
}

func (p *Planner) completeAccess(q *query.Query, fp uint64, hs map[plan.Node]uint64, n plan.Node) entry {
	return p.cachedSubtree(fp, hs[n], plancache.ModeCompleteAccess, func() entry {
		switch n := n.(type) {
		case *plan.Scan:
			node, nc := p.BestScan(q, n.Alias)
			return entry{node, nc}
		case *plan.Join:
			left := p.completeAccess(q, fp, hs, n.Left)
			right := p.completeAccess(q, fp, hs, n.Right)
			j := plan.JoinNodes(q, n.Algo, left.node, right.node)
			return entry{j, p.Model.JoinCost(q, j, left.nc, right.nc)}
		case *plan.Agg:
			return p.completeAccess(q, fp, hs, n.Child)
		default:
			panic("optimizer: unknown node")
		}
	})
}

// CostFixed prices a fully specified plan (all dimensions decided by the
// caller), adding the query's aggregation with the given algorithm if the
// plan lacks it.
func (p *Planner) CostFixed(q *query.Query, root plan.Node, agg plan.AggAlgo) (plan.Node, cost.NodeCost) {
	return p.CostFixedMemo(q, root, agg, nil)
}

// CostFixedMemo is CostFixed with a caller-maintained per-episode
// skeleton-hash memo: costing the same skeleton under several aggregation
// algorithms (the agent-delegated aggregation choice) hashes the tree once
// instead of once per algorithm. A nil memo behaves exactly like CostFixed.
func (p *Planner) CostFixedMemo(q *query.Query, root plan.Node, agg plan.AggAlgo, memo map[plan.Node]uint64) (plan.Node, cost.NodeCost) {
	if p.Cache != nil {
		k := plancache.Key{
			Query:    p.Cache.FingerprintOf(q),
			Skeleton: plancache.HashSubtreesMemo(root, memo),
			Mode:     plancache.ModeCostFixed,
			Aux:      uint8(agg),
		}
		if e, ok := p.Cache.Get(k); ok {
			return e.Plan, e.Cost
		}
		node, nc := p.costFixed(q, root, agg)
		p.Cache.Put(k, plancache.Entry{Plan: node, Cost: nc})
		return node, nc
	}
	return p.costFixed(q, root, agg)
}

func (p *Planner) costFixed(q *query.Query, root plan.Node, agg plan.AggAlgo) (plan.Node, cost.NodeCost) {
	if _, ok := root.(*plan.Agg); !ok {
		root = plan.FinishAgg(q, agg, root)
	}
	return root, p.Model.Explain(q, root)
}
