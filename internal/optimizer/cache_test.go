package optimizer

import (
	"bytes"
	"math/rand"
	"testing"

	"handsfree/internal/plan"
	"handsfree/internal/plancache"
	"handsfree/internal/query"
	"handsfree/internal/workload"
)

// cacheFixture returns an uncached planner, a cached copy sharing its
// catalog and cost model, and the workload.
func cacheFixture(t *testing.T) (*Planner, *Planner, *workload.Workload) {
	t.Helper()
	p, w := fixture(t)
	cached := p.WithCache(plancache.New(plancache.Config{Capacity: 4096, Shards: 8}))
	if cached == p || cached.Cache == nil {
		t.Fatal("WithCache did not attach a cache to a copy")
	}
	return p, cached, w
}

// TestCachedCompletionMatchesUncached: every completion mode must return
// exactly the same plan and cost with and without the cache, on the first
// (miss) call and on the repeated (hit) call.
func TestCachedCompletionMatchesUncached(t *testing.T) {
	p, cached, w := cacheFixture(t)
	rng := rand.New(rand.NewSource(3))
	for _, name := range workload.Fig3bNames() {
		q := w.MustNamed(name)
		skeleton := RandomOrder(q, rng)

		type completion struct {
			label string
			run   func(*Planner) (plan.Node, float64)
		}
		for _, c := range []completion{
			{"CompletePhysical", func(pl *Planner) (plan.Node, float64) {
				n, nc := pl.CompletePhysical(q, skeleton)
				return n, nc.Total
			}},
			{"CompleteOperators", func(pl *Planner) (plan.Node, float64) {
				n, nc := pl.CompleteOperators(q, skeleton)
				return n, nc.Total
			}},
			{"CompleteAccess", func(pl *Planner) (plan.Node, float64) {
				n, nc := pl.CompleteAccess(q, skeleton)
				return n, nc.Total
			}},
			{"CostFixed", func(pl *Planner) (plan.Node, float64) {
				n, nc := pl.CostFixed(q, skeleton, plan.HashAgg)
				return n, nc.Total
			}},
		} {
			wantNode, wantCost := c.run(p)
			missNode, missCost := c.run(cached)
			hitNode, hitCost := c.run(cached)
			if missCost != wantCost || hitCost != wantCost {
				t.Fatalf("%s/%s: cost uncached=%v miss=%v hit=%v", name, c.label, wantCost, missCost, hitCost)
			}
			if missNode.Signature() != wantNode.Signature() || hitNode.Signature() != wantNode.Signature() {
				t.Fatalf("%s/%s: cached plan differs from uncached", name, c.label)
			}
		}
	}
	st := cached.Cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
}

// TestCachedPlanWithMatchesUncached: full enumeration results round-trip
// through the cache unchanged, and the second call is served from cache.
func TestCachedPlanWithMatchesUncached(t *testing.T) {
	p, cached, w := cacheFixture(t)
	for _, s := range []Strategy{DP, Greedy, GEQO} {
		q := w.MustNamed("2a")
		want, err := p.PlanWith(q, s)
		if err != nil {
			t.Fatal(err)
		}
		before := cached.Cache.Stats().Hits
		first, err := cached.PlanWith(q, s)
		if err != nil {
			t.Fatal(err)
		}
		second, err := cached.PlanWith(q, s)
		if err != nil {
			t.Fatal(err)
		}
		if first.Cost != want.Cost || second.Cost != want.Cost {
			t.Fatalf("%s: cost uncached=%v first=%v second=%v", s, want.Cost, first.Cost, second.Cost)
		}
		if second.Root.Signature() != want.Root.Signature() {
			t.Fatalf("%s: cached plan differs from uncached", s)
		}
		if cached.Cache.Stats().Hits != before+1 {
			t.Fatalf("%s: second PlanWith did not hit the cache", s)
		}
	}
}

// TestCacheSubtreeReuseAcrossSkeletons: two different join orders over the
// same query share leaves, so completing the second skeleton must hit the
// leaf entries the first one populated even though the roots differ.
func TestCacheSubtreeReuseAcrossSkeletons(t *testing.T) {
	_, cached, w := cacheFixture(t)
	q := w.MustNamed("2a")
	rng := rand.New(rand.NewSource(9))
	first := RandomOrder(q, rng)
	var second plan.Node
	for {
		second = RandomOrder(q, rng)
		if second.Signature() != first.Signature() {
			break
		}
	}
	cached.CompletePhysical(q, first)
	hitsBefore := cached.Cache.Stats().Hits
	cached.CompletePhysical(q, second)
	if hits := cached.Cache.Stats().Hits; hits <= hitsBefore {
		t.Fatalf("no subtree reuse across skeletons: hits %d -> %d", hitsBefore, hits)
	}
}

// TestCacheAblationKnobsKeyed: LeftDeepOnly variants sharing one cache must
// not serve each other's plans (the knob is folded into the key).
func TestCacheAblationKnobsKeyed(t *testing.T) {
	_, cached, w := cacheFixture(t)
	q := w.MustNamed("8c")
	leftDeep := *cached
	leftDeep.LeftDeepOnly = true

	bushy, err := cached.PlanWith(q, DP)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := leftDeep.PlanWith(q, DP)
	if err != nil {
		t.Fatal(err)
	}
	// Left-deep DP is a strict restriction: it may tie but must never win,
	// and crucially it must not return the cached bushy plan verbatim when
	// the bushy plan is not left-deep.
	if ld.Cost < bushy.Cost {
		t.Fatalf("left-deep DP beat bushy DP: %v < %v", ld.Cost, bushy.Cost)
	}
	if isBushy(bushy.Root) && ld.Root.Signature() == bushy.Root.Signature() {
		t.Fatal("left-deep planner served the cached bushy plan")
	}
}

// isBushy reports whether any join's right input is itself a join.
func isBushy(n plan.Node) bool {
	bushy := false
	plan.Walk(n, func(m plan.Node) {
		if j, ok := m.(*plan.Join); ok {
			if _, ok := j.Right.(*plan.Join); ok {
				bushy = true
			}
		}
	})
	return bushy
}

// TestWarmStartSkipsColdSweep: a cache saved at shutdown and loaded into a
// fresh planner in a "restarted" process must serve the whole repeated
// workload sweep — full plans and per-episode completions — without a single
// recomputation: every lookup hits, zero entry-producing misses.
func TestWarmStartSkipsColdSweep(t *testing.T) {
	p, _, w := cacheFixture(t)
	rng := rand.New(rand.NewSource(11))

	// First process: plan and complete the bench workload cold.
	first := p.WithCache(plancache.New(plancache.Config{Capacity: 1 << 14, Shards: 8}))
	type sweep struct {
		q        *query.Query
		skeleton plan.Node
	}
	var sweeps []sweep
	var coldPlans []string
	var coldCosts []float64
	for _, name := range workload.Fig3bNames()[:4] {
		q := w.MustNamed(name)
		skeleton := RandomOrder(q, rng)
		sweeps = append(sweeps, sweep{q, skeleton})
		planned, err := first.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		node, nc := first.CompletePhysical(q, skeleton)
		coldPlans = append(coldPlans, plan.Format(planned.Root), plan.Format(node))
		coldCosts = append(coldCosts, planned.Cost, nc.Total)
	}

	var buf bytes.Buffer
	if err := first.Cache.Save(&buf, 42); err != nil {
		t.Fatal(err)
	}

	// "Restarted" process: fresh cache, warm-started from the dump.
	warm := plancache.New(plancache.Config{Capacity: 1 << 14, Shards: 8})
	restored, err := warm.Load(&buf, 42)
	if err != nil {
		t.Fatal(err)
	}
	if restored == 0 {
		t.Fatal("dump restored no entries")
	}
	second := p.WithCache(warm)
	before := warm.Stats()
	var warmPlans []string
	var warmCosts []float64
	for _, s := range sweeps {
		planned, err := second.Plan(s.q)
		if err != nil {
			t.Fatal(err)
		}
		node, nc := second.CompletePhysical(s.q, s.skeleton)
		warmPlans = append(warmPlans, plan.Format(planned.Root), plan.Format(node))
		warmCosts = append(warmCosts, planned.Cost, nc.Total)
	}
	after := warm.Stats()

	if after.Misses != before.Misses {
		t.Fatalf("warm-started sweep missed %d times; the cold sweep was not skipped", after.Misses-before.Misses)
	}
	if after.Hits == before.Hits {
		t.Fatal("warm-started sweep never hit the restored cache")
	}
	if after.Puts != before.Puts {
		t.Fatalf("warm-started sweep recomputed %d entries", after.Puts-before.Puts)
	}
	for i := range coldPlans {
		if coldPlans[i] != warmPlans[i] || coldCosts[i] != warmCosts[i] {
			t.Fatalf("restored result %d differs from the cold sweep", i)
		}
	}
}
