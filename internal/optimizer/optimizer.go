// Package optimizer implements the traditional query optimizer that plays
// the role of PostgreSQL in the paper: access-path selection, join-order
// enumeration (Selinger dynamic programming up to a threshold, GEQO-style
// randomized search beyond it, and a greedy bottom-up enumerator), join
// operator selection, and aggregate operator selection.
//
// It serves the learned agents three ways, matching the paper:
//   - its cost model is ReJOIN's reward signal and the bootstrapping agent's
//     Phase-1 reward (§3, §5.2);
//   - its plan choices are the expert demonstrations for §5.1;
//   - its per-query planning time is the baseline of Figure 3c.
//
// Every planning entry point — full enumeration (PlanWith) and the skeleton
// completions the learned agents call once per episode (CompletePhysical,
// CompleteOperators, CompleteAccess, CostFixed) — optionally consults a
// plancache.Cache before computing. Completion is memoized at subtree
// granularity, so even when sampled join orders differ between episodes the
// shared leaves and small join subtrees of a repeated workload query are
// served from cache.
package optimizer

import (
	"context"
	"fmt"
	"math"
	"time"

	"handsfree/internal/catalog"
	"handsfree/internal/cost"
	"handsfree/internal/plan"
	"handsfree/internal/plancache"
	"handsfree/internal/query"
)

// Strategy selects the join enumeration algorithm.
type Strategy int

const (
	// Auto uses DP up to DPThreshold relations, then GEQO (PostgreSQL's
	// geqo_threshold behaviour).
	Auto Strategy = iota
	// DP is exhaustive Selinger dynamic programming (bushy).
	DP
	// Greedy is the O(n²)-per-step bottom-up heuristic.
	Greedy
	// GEQO is randomized greedy with restarts (stand-in for PostgreSQL's
	// genetic optimizer).
	GEQO
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case DP:
		return "dp"
	case Greedy:
		return "greedy"
	case GEQO:
		return "geqo"
	default:
		return "auto"
	}
}

// Planner is the traditional optimizer.
type Planner struct {
	Cat   *catalog.Catalog
	Model *cost.Model
	// DPThreshold is the largest relation count planned with exhaustive DP
	// (PostgreSQL's geqo_threshold defaults to 12).
	DPThreshold int
	// GEQORestarts is the number of randomized-greedy restarts.
	GEQORestarts int
	// AllowCross permits cross products during enumeration when the join
	// graph leaves no connected choice.
	AllowCross bool
	// LeftDeepOnly restricts DP to left-deep trees (the classical Selinger
	// restriction; bushy enumeration is the default). Exposed for the
	// enumerator ablation.
	LeftDeepOnly bool
	// Seed drives the randomized search.
	Seed int64
	// Cache, when non-nil, memoizes planning and skeleton completion across
	// calls (the plan cache service). All planners sharing one cache must
	// plan over the same catalog and cost model; the enumeration knobs that
	// the ablations vary (LeftDeepOnly, AllowCross) are folded into the
	// cache key, so WithCache copies with different settings stay distinct.
	Cache *plancache.Cache
}

// WithCache returns a planner identical to p that consults cache. The
// receiver is returned unchanged when it already uses that cache (or cache
// is nil); otherwise a shallow copy is made so shared planners are not
// mutated behind other callers' backs.
func (p *Planner) WithCache(cache *plancache.Cache) *Planner {
	if cache == nil || p.Cache == cache {
		return p
	}
	cp := *p
	cp.Cache = cache
	return &cp
}

// planAux encodes the enumeration knobs that change full-planning results
// into the cache key's Aux byte: the strategy in the low bits, the ablation
// flags in the top two (leaving room for future strategies without key
// aliasing).
func (p *Planner) planAux(s Strategy) uint8 {
	aux := uint8(s)
	if p.LeftDeepOnly {
		aux |= 1 << 6
	}
	if p.AllowCross {
		aux |= 1 << 7
	}
	return aux
}

// New returns a planner with PostgreSQL-like defaults.
func New(cat *catalog.Catalog, model *cost.Model) *Planner {
	return &Planner{
		Cat:          cat,
		Model:        model,
		DPThreshold:  12,
		GEQORestarts: 12,
		AllowCross:   true,
		Seed:         1,
	}
}

// Planned couples a physical plan with its cost and the planning time spent
// producing it.
type Planned struct {
	Root     plan.Node
	Cost     float64
	Rows     float64
	Duration time.Duration
	Strategy Strategy
}

// Plan optimizes the query with the Auto strategy.
func (p *Planner) Plan(q *query.Query) (Planned, error) {
	return p.PlanWithCtx(context.Background(), q, Auto)
}

// PlanCtx optimizes the query with the Auto strategy under a request-scoped
// context: enumeration checks ctx between search steps, so a deadline or
// cancellation cuts planning off mid-search and returns ctx.Err().
func (p *Planner) PlanCtx(ctx context.Context, q *query.Query) (Planned, error) {
	return p.PlanWithCtx(ctx, q, Auto)
}

// PlanWith optimizes the query with an explicit enumeration strategy.
func (p *Planner) PlanWith(q *query.Query, s Strategy) (Planned, error) {
	return p.PlanWithCtx(context.Background(), q, s)
}

// PlanWithCtx is PlanWith with a request-scoped context threaded through the
// enumeration loops (DP subset sweep, greedy merge steps, GEQO restarts).
// It returns ctx.Err() — typically context.DeadlineExceeded — as soon as the
// search loop observes an expired context.
func (p *Planner) PlanWithCtx(ctx context.Context, q *query.Query, s Strategy) (Planned, error) {
	if err := q.Validate(); err != nil {
		return Planned{}, err
	}
	if len(q.Relations) == 0 {
		return Planned{}, fmt.Errorf("optimizer: query has no relations")
	}
	if err := ctx.Err(); err != nil {
		return Planned{}, err
	}
	start := time.Now()
	effective := s
	if s == Auto {
		if len(q.Relations) <= p.DPThreshold {
			effective = DP
		} else {
			effective = GEQO
		}
	}
	var key plancache.Key
	if p.Cache != nil {
		key = plancache.Key{
			Query: p.Cache.FingerprintOf(q),
			Mode:  plancache.ModePlan,
			Aux:   p.planAux(effective),
		}
		if e, ok := p.Cache.Get(key); ok {
			return Planned{
				Root:     e.Plan,
				Cost:     e.Cost.Total,
				Rows:     e.Cost.Rows,
				Duration: time.Since(start),
				Strategy: effective,
			}, nil
		}
	}
	var root plan.Node
	var nc cost.NodeCost
	var err error
	switch effective {
	case DP:
		root, nc, err = p.planDP(ctx, q)
	case Greedy:
		root, nc, err = p.planGreedy(ctx, q, nil)
	case GEQO:
		root, nc, err = p.planGEQO(ctx, q)
	}
	if err != nil {
		return Planned{}, err
	}
	root, nc = p.finishAgg(q, root, nc)
	if p.Cache != nil {
		p.Cache.Put(key, plancache.Entry{Plan: root, Cost: nc})
	}
	return Planned{
		Root:     root,
		Cost:     nc.Total,
		Rows:     nc.Rows,
		Duration: time.Since(start),
		Strategy: effective,
	}, nil
}

// entry is one enumeration candidate: a plan with its incremental costing.
type entry struct {
	node plan.Node
	nc   cost.NodeCost
}

// BestScan picks the cheapest access path for one relation: sequential scan,
// or any index on a filtered column (this is the optimizer's access-path
// selection stage).
func (p *Planner) BestScan(q *query.Query, alias string) (plan.Node, cost.NodeCost) {
	rel, _ := q.RelationByAlias(alias)
	best := plan.BuildScan(q, alias, plan.SeqScan, "")
	bestNC := p.Model.ScanCost(q, best)
	tbl, err := p.Cat.Table(rel.Table)
	if err != nil {
		return best, bestNC
	}
	for _, ix := range tbl.Indexes {
		for _, f := range q.FiltersOn(alias) {
			if f.Column != ix.Column {
				continue
			}
			access := plan.IndexScan
			if ix.Kind == catalog.Hash {
				if f.Op != query.Eq {
					continue
				}
				access = plan.HashIndexScan
			}
			cand := plan.BuildScan(q, alias, access, ix.Column)
			nc := p.Model.ScanCost(q, cand)
			if nc.Total < bestNC.Total {
				best, bestNC = cand, nc
			}
		}
	}
	return best, bestNC
}

// scanVariants returns every access path the planner will consider for a
// relation when it appears as the inner side of a nested loop: the best
// filter-driven scan plus an index scan on each indexed join column.
func (p *Planner) scanVariants(q *query.Query, alias string) []entry {
	rel, _ := q.RelationByAlias(alias)
	base, baseNC := p.BestScan(q, alias)
	out := []entry{{base, baseNC}}
	tbl, err := p.Cat.Table(rel.Table)
	if err != nil {
		return out
	}
	for _, ix := range tbl.Indexes {
		joinsIt := false
		for _, j := range q.Joins {
			if (j.LeftAlias == alias && j.LeftCol == ix.Column) ||
				(j.RightAlias == alias && j.RightCol == ix.Column) {
				joinsIt = true
				break
			}
		}
		if !joinsIt {
			continue
		}
		access := plan.IndexScan
		if ix.Kind == catalog.Hash {
			access = plan.HashIndexScan
		}
		cand := plan.BuildScan(q, alias, access, ix.Column)
		out = append(out, entry{cand, p.Model.ScanCost(q, cand)})
	}
	return out
}

// BestJoin combines two subtrees with the cheapest (algorithm, inner access
// path) pair — the optimizer's join operator selection stage. The right
// input may be replaced by an index-scan variant to enable index nested
// loops when the right entry is a leaf.
func (p *Planner) BestJoin(q *query.Query, left, right entry) entry {
	rights := []entry{right}
	if s, ok := right.node.(*plan.Scan); ok {
		for _, v := range p.scanVariants(q, s.Alias) {
			if v.node.Signature() != right.node.Signature() {
				rights = append(rights, v)
			}
		}
	}
	var best entry
	bestCost := math.Inf(1)
	for _, r := range rights {
		for _, algo := range plan.JoinAlgos {
			j := plan.JoinNodes(q, algo, left.node, r.node)
			nc := p.Model.JoinCost(q, j, left.nc, r.nc)
			if nc.Total < bestCost {
				best = entry{j, nc}
				bestCost = nc.Total
			}
		}
	}
	return best
}

func (p *Planner) finishAgg(q *query.Query, root plan.Node, nc cost.NodeCost) (plan.Node, cost.NodeCost) {
	if len(q.Aggregates) == 0 && len(q.GroupBys) == 0 {
		return root, nc
	}
	var best plan.Node
	bestNC := cost.NodeCost{Total: math.Inf(1)}
	for _, algo := range plan.AggAlgos {
		a := &plan.Agg{Algo: algo, Child: root, GroupBys: q.GroupBys, Aggregates: q.Aggregates}
		c := p.Model.AggCost(q, a, nc)
		if c.Total < bestNC.Total {
			best, bestNC = a, c
		}
	}
	return best, bestNC
}
