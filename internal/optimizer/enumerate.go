package optimizer

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"handsfree/internal/cost"
	"handsfree/internal/plan"
	"handsfree/internal/plancache"
	"handsfree/internal/query"
)

// planDP is exhaustive Selinger-style dynamic programming over connected
// subsets (bushy trees). Cross products are only introduced at the top when
// the join graph is disconnected and AllowCross is set. The context is
// checked once per subset, so an expired deadline aborts the sweep after at
// most one subset's worth of work.
func (p *Planner) planDP(ctx context.Context, q *query.Query) (plan.Node, cost.NodeCost, error) {
	n := len(q.Relations)
	if n > 20 {
		return nil, cost.NodeCost{}, fmt.Errorf("optimizer: %d relations exceeds DP capacity", n)
	}
	aliases := make([]string, n)
	for i, r := range q.Relations {
		aliases[i] = r.Alias
	}
	aliasBit := make(map[string]uint32, n)
	for i, a := range aliases {
		aliasBit[a] = 1 << i
	}

	// Join-graph connectivity as bitmasks.
	adj := make([]uint32, n)
	for _, j := range q.Joins {
		l, r := aliasBit[j.LeftAlias], aliasBit[j.RightAlias]
		for i := 0; i < n; i++ {
			if l == 1<<i {
				adj[i] |= r
			}
			if r == 1<<i {
				adj[i] |= l
			}
		}
	}
	connectedTo := func(mask uint32) uint32 {
		var out uint32
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				out |= adj[i]
			}
		}
		return out &^ mask
	}

	allowCross := p.crossNeeded(q)
	best := make(map[uint32]entry, 1<<n)
	for i, a := range aliases {
		node, nc := p.BestScan(q, a)
		best[1<<i] = entry{node, nc}
	}

	full := uint32(1<<n) - 1
	// Enumerate subsets in increasing popcount order via plain increasing
	// masks (every proper submask of m is < m).
	for mask := uint32(1); mask <= full; mask++ {
		if err := ctx.Err(); err != nil {
			return nil, cost.NodeCost{}, err
		}
		if _, done := best[mask]; done {
			continue // singleton
		}
		var bestE entry
		bestCost := math.Inf(1)
		// Iterate proper submasks.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask &^ sub
			if p.LeftDeepOnly && other&(other-1) != 0 {
				continue // right side must be a single relation
			}
			le, lok := best[sub]
			re, rok := best[other]
			if !lok || !rok {
				continue
			}
			// Require a join predicate between the halves unless the query's
			// graph forces a cross product.
			if connectedTo(sub)&other == 0 && !allowCross {
				continue
			}
			cand := p.BestJoin(q, le, re)
			if cand.nc.Total < bestCost {
				bestE = cand
				bestCost = cand.nc.Total
			}
		}
		if bestCost < math.Inf(1) {
			best[mask] = bestE
		}
	}
	e, ok := best[full]
	if !ok {
		// Disconnected graph without AllowCross.
		return nil, cost.NodeCost{}, fmt.Errorf("optimizer: no connected plan for query %s", q.Name)
	}
	return e.node, e.nc, nil
}

// crossNeeded reports whether cross products must be allowed for this query
// (disconnected join graph and the planner permits them).
func (p *Planner) crossNeeded(q *query.Query) bool {
	return p.AllowCross && !q.Connected()
}

// planGreedy builds the plan bottom-up: at every step it joins the pair of
// current subtrees whose best physical join has the lowest resulting total
// cost — the greedy O(n²)-per-step enumeration the paper attributes to
// PostgreSQL's non-exhaustive mode. A non-nil rng adds GEQO-style noise by
// choosing uniformly among the top-3 candidate pairs. The context is checked
// once per merge step.
func (p *Planner) planGreedy(ctx context.Context, q *query.Query, rng *rand.Rand) (plan.Node, cost.NodeCost, error) {
	items := make([]entry, 0, len(q.Relations))
	for _, r := range q.Relations {
		node, nc := p.BestScan(q, r.Alias)
		items = append(items, entry{node, nc})
	}
	for len(items) > 1 {
		if err := ctx.Err(); err != nil {
			return nil, cost.NodeCost{}, err
		}
		type cand struct {
			i, j int
			e    entry
		}
		var cands []cand
		for i := 0; i < len(items); i++ {
			for j := 0; j < len(items); j++ {
				if i == j {
					continue
				}
				// Skip cross products while a connected pair exists.
				preds := q.JoinsBetween(items[i].node.Aliases(), items[j].node.Aliases())
				if len(preds) == 0 {
					continue
				}
				cands = append(cands, cand{i, j, p.BestJoin(q, items[i], items[j])})
			}
		}
		if len(cands) == 0 {
			if !p.AllowCross {
				return nil, cost.NodeCost{}, fmt.Errorf("optimizer: stuck without cross products")
			}
			for i := 0; i < len(items); i++ {
				for j := 0; j < len(items); j++ {
					if i != j {
						cands = append(cands, cand{i, j, p.BestJoin(q, items[i], items[j])})
					}
				}
			}
		}
		// Order candidates by cost (selection sort of the top 3 is enough).
		top := 1
		if rng != nil {
			top = 3
		}
		if top > len(cands) {
			top = len(cands)
		}
		for k := 0; k < top; k++ {
			minI := k
			for m := k + 1; m < len(cands); m++ {
				if cands[m].e.nc.Total < cands[minI].e.nc.Total {
					minI = m
				}
			}
			cands[k], cands[minI] = cands[minI], cands[k]
		}
		pick := 0
		if rng != nil {
			pick = rng.Intn(top)
		}
		chosen := cands[pick]
		// Replace the two inputs with the joined subtree.
		var next []entry
		for idx, it := range items {
			if idx != chosen.i && idx != chosen.j {
				next = append(next, it)
			}
		}
		next = append(next, chosen.e)
		items = next
	}
	return items[0].node, items[0].nc, nil
}

// planGEQO runs randomized greedy construction with restarts and keeps the
// best plan — a stand-in for PostgreSQL's genetic optimizer with the same
// role in the experiments: sub-exhaustive search for large join counts whose
// planning time scales far better than DP.
func (p *Planner) planGEQO(ctx context.Context, q *query.Query) (plan.Node, cost.NodeCost, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	var bestN plan.Node
	bestNC := cost.NodeCost{Total: math.Inf(1)}
	restarts := p.GEQORestarts
	if restarts < 1 {
		restarts = 1
	}
	for r := 0; r < restarts; r++ {
		node, nc, err := p.planGreedy(ctx, q, rng)
		if err != nil {
			return nil, cost.NodeCost{}, err
		}
		if nc.Total < bestNC.Total {
			bestN, bestNC = node, nc
		}
	}
	return bestN, bestNC, nil
}

// CompletePhysical takes a join-order skeleton (any plan tree over the
// query's relations) and re-performs the optimizer's physical decisions —
// access paths, join algorithms, aggregation algorithm — while preserving
// the skeleton's join order exactly. This implements the paper's §3 loop:
// "the final join ordering is sent to the optimizer to perform operator
// selection, index selection, etc." With a cache attached, the completion
// is memoized per subtree, so the episode-collection hot path skips
// recomputation for every part of the skeleton it has seen before.
func (p *Planner) CompletePhysical(q *query.Query, skeleton plan.Node) (plan.Node, cost.NodeCost) {
	return p.CompletePhysicalMemo(q, skeleton, nil)
}

// CompletePhysicalMemo is CompletePhysical with a caller-maintained
// per-episode skeleton-hash memo; see CompleteOperatorsMemo. The training
// environments pass their episode memo here so the terminal completion of
// each episode reuses hashes (and the map allocation) instead of re-walking
// the skeleton.
func (p *Planner) CompletePhysicalMemo(q *query.Query, skeleton plan.Node, memo map[plan.Node]uint64) (plan.Node, cost.NodeCost) {
	e := p.completeEntry(q, p.completionFP(q), p.skeletonHashes(skeleton, memo), skeleton)
	return p.finishAgg(q, e.node, e.nc)
}

func (p *Planner) completeEntry(q *query.Query, fp uint64, hs map[plan.Node]uint64, n plan.Node) entry {
	return p.cachedSubtree(fp, hs[n], plancache.ModeCompletePhysical, func() entry {
		switch n := n.(type) {
		case *plan.Scan:
			node, nc := p.BestScan(q, n.Alias)
			return entry{node, nc}
		case *plan.Join:
			left := p.completeEntry(q, fp, hs, n.Left)
			right := p.completeEntry(q, fp, hs, n.Right)
			return p.BestJoin(q, left, right)
		case *plan.Agg:
			return p.completeEntry(q, fp, hs, n.Child)
		default:
			panic("optimizer: unknown node")
		}
	})
}

// RandomOrder builds a uniformly random join-order skeleton (the paper's
// "random choice" baseline). Scans and join algorithms are left at defaults;
// pass the result through CompletePhysical for a fair physical comparison.
func RandomOrder(q *query.Query, rng *rand.Rand) plan.Node {
	items := make([]plan.Node, 0, len(q.Relations))
	for _, r := range q.Relations {
		items = append(items, plan.BuildScan(q, r.Alias, plan.SeqScan, ""))
	}
	for len(items) > 1 {
		i := rng.Intn(len(items))
		j := rng.Intn(len(items) - 1)
		if j >= i {
			j++
		}
		joined := plan.JoinNodes(q, plan.NestLoop, items[i], items[j])
		var next []plan.Node
		for k, it := range items {
			if k != i && k != j {
				next = append(next, it)
			}
		}
		items = append(next, joined)
	}
	return items[0]
}
