package optimizer

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"handsfree/internal/plan"
	"handsfree/internal/plancache"
)

// TestPlanCtxCancellation: every enumeration strategy must notice an
// already-cancelled context and return its error instead of planning.
func TestPlanCtxCancellation(t *testing.T) {
	p, w := fixture(t)
	q, err := w.ByRelations(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range []Strategy{Auto, DP, Greedy, GEQO} {
		if _, err := p.PlanWithCtx(ctx, q, s); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", s, err)
		}
	}
	// A live context plans normally through the ctx entry points.
	if planned, err := p.PlanCtx(context.Background(), q); err != nil || planned.Cost <= 0 {
		t.Fatalf("live-context PlanCtx: %+v, %v", planned, err)
	}
}

// TestPlanCtxDeadlineMidSearch: a deadline expiring during the DP subset
// sweep must abort it promptly with context.DeadlineExceeded.
func TestPlanCtxDeadlineMidSearch(t *testing.T) {
	p, w := fixture(t)
	q, err := w.ByRelations(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = p.PlanWithCtx(ctx, q, DP)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("DP took %v to honor an expired 2ms deadline", elapsed)
	}
}

// TestCompleteMemoMatchesFresh: the Memo completion variants must return
// exactly what their memo-less counterparts return, both on first use and
// when the memo is reused across calls within an "episode".
func TestCompleteMemoMatchesFresh(t *testing.T) {
	p, w := fixture(t)
	cached := p.WithCache(plancache.New(plancache.Config{Capacity: 1 << 12}))
	q, err := w.ByRelations(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		skeleton := RandomOrder(q, rng)
		m := make(map[plan.Node]uint64, 16)
		freshRoot, freshNC := p.CompletePhysical(q, skeleton)
		memoRoot, memoNC := cached.CompletePhysicalMemo(q, skeleton, m)
		if freshNC.Total != memoNC.Total {
			t.Fatalf("iteration %d: memoized completion cost %v != fresh %v", i, memoNC.Total, freshNC.Total)
		}
		if plancache.HashPlan(freshRoot) != plancache.HashPlan(memoRoot) {
			t.Fatalf("iteration %d: memoized completion plan differs", i)
		}
		// Reusing the same memo for a second completion of the same skeleton
		// (the double-CostFixed pattern) must not change the result.
		again, againNC := cached.CompletePhysicalMemo(q, skeleton, m)
		if againNC.Total != memoNC.Total || plancache.HashPlan(again) != plancache.HashPlan(memoRoot) {
			t.Fatalf("iteration %d: memo reuse changed the completion", i)
		}
	}
}
