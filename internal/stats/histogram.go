// Package stats implements the statistics subsystem: equi-depth histograms
// with most-common-value lists, per-table statistics, a cardinality
// Estimator that makes the classical independence/uniformity assumptions
// (this is what the traditional cost model consumes), and an Oracle that
// produces "true" cardinalities by applying a deterministic, systematic
// correlation field on top of the estimates.
//
// The Estimator/Oracle split is the heart of the reproduction: the paper's
// argument (§4, Performance Indicator) is that optimizer cost models are
// driven by estimated cardinalities that diverge from reality, so an agent
// that learns from observed latency can beat one that optimizes the cost
// model. The divergence here is modeled after the empirical findings of
// Leis et al. (VLDB'15): estimation error is systematic per join edge and
// compounds multiplicatively with every additional join.
package stats

import (
	"fmt"
	"sort"

	"handsfree/internal/query"
)

// MCV is a most-common-value entry: a value and the fraction of rows holding it.
type MCV struct {
	Value int64
	Frac  float64
}

// Histogram is an equi-depth histogram over int64 values, with an MCV list
// factored out (PostgreSQL-style: MCVs first, histogram over the rest).
type Histogram struct {
	// Bounds are bucket boundaries, ascending; bucket i covers
	// (Bounds[i], Bounds[i+1]]. len(Bounds) = buckets+1.
	Bounds []int64
	// BucketFrac is the fraction of (non-MCV) rows per bucket.
	BucketFrac float64
	// MCVs lists the most common values with their row fractions.
	MCVs []MCV
	// MCVTotal is the summed fraction of all MCVs.
	MCVTotal float64
	// Distinct is the number of distinct values in the column.
	Distinct int64
	// Rows is the total row count the histogram was built from.
	Rows int64
	// Min and Max are the observed extrema.
	Min, Max int64
}

// BuildHistogram constructs an equi-depth histogram with the given number of
// buckets and MCV slots from a sample of column values.
func BuildHistogram(values []int64, buckets, mcvs int) *Histogram {
	if len(values) == 0 {
		return &Histogram{Bounds: []int64{0, 0}, Distinct: 0, Rows: 0}
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	h := &Histogram{Rows: int64(len(sorted)), Min: sorted[0], Max: sorted[len(sorted)-1]}

	// Count frequencies for distinct count and MCV selection.
	freq := map[int64]int{}
	for _, v := range sorted {
		freq[v]++
	}
	h.Distinct = int64(len(freq))

	// Pick the top `mcvs` values that each cover more than an average
	// bucket would (otherwise an MCV adds no information).
	type fv struct {
		v int64
		n int
	}
	all := make([]fv, 0, len(freq))
	for v, n := range freq {
		all = append(all, fv{v, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].v < all[j].v
	})
	isMCV := map[int64]bool{}
	threshold := float64(len(sorted)) / float64(max(buckets, 1)) / 2
	for i := 0; i < len(all) && i < mcvs; i++ {
		if float64(all[i].n) < threshold {
			break
		}
		frac := float64(all[i].n) / float64(len(sorted))
		h.MCVs = append(h.MCVs, MCV{Value: all[i].v, Frac: frac})
		h.MCVTotal += frac
		isMCV[all[i].v] = true
	}

	// Histogram over the remaining values.
	rest := sorted[:0:0]
	for _, v := range sorted {
		if !isMCV[v] {
			rest = append(rest, v)
		}
	}
	if len(rest) == 0 {
		h.Bounds = []int64{h.Min, h.Max}
		return h
	}
	if buckets < 1 {
		buckets = 1
	}
	if buckets > len(rest) {
		buckets = len(rest)
	}
	h.Bounds = make([]int64, 0, buckets+1)
	h.Bounds = append(h.Bounds, rest[0])
	for i := 1; i <= buckets; i++ {
		idx := i * len(rest) / buckets
		if idx >= len(rest) {
			idx = len(rest) - 1
		}
		b := rest[idx]
		if i == buckets {
			b = rest[len(rest)-1]
		}
		if b < h.Bounds[len(h.Bounds)-1] {
			b = h.Bounds[len(h.Bounds)-1]
		}
		h.Bounds = append(h.Bounds, b)
	}
	h.BucketFrac = (1 - h.MCVTotal) / float64(buckets)
	return h
}

// fracLE estimates the fraction of all rows with value ≤ v.
func (h *Histogram) fracLE(v int64) float64 {
	var frac float64
	for _, m := range h.MCVs {
		if m.Value <= v {
			frac += m.Frac
		}
	}
	if len(h.Bounds) < 2 || h.BucketFrac == 0 {
		return clamp01(frac)
	}
	if v < h.Bounds[0] {
		return clamp01(frac)
	}
	last := len(h.Bounds) - 1
	if v >= h.Bounds[last] {
		return clamp01(frac + h.BucketFrac*float64(last))
	}
	// Find the bucket containing v and interpolate linearly within it.
	i := sort.Search(last, func(i int) bool { return h.Bounds[i+1] >= v })
	full := float64(i)
	lo, hi := h.Bounds[i], h.Bounds[i+1]
	var within float64
	if hi > lo {
		within = float64(v-lo) / float64(hi-lo)
	} else {
		within = 1
	}
	return clamp01(frac + h.BucketFrac*(full+within))
}

// fracEQ estimates the fraction of rows equal to v.
func (h *Histogram) fracEQ(v int64) float64 {
	for _, m := range h.MCVs {
		if m.Value == v {
			return m.Frac
		}
	}
	if h.Distinct <= int64(len(h.MCVs)) {
		return 0
	}
	// Uniformity over the non-MCV distinct values.
	if v < h.Min || v > h.Max {
		return 0
	}
	return (1 - h.MCVTotal) / float64(h.Distinct-int64(len(h.MCVs)))
}

// Selectivity estimates the fraction of rows satisfying `col op v`.
func (h *Histogram) Selectivity(op query.CmpOp, v int64) float64 {
	if h.Rows == 0 {
		return 0
	}
	switch op {
	case query.Eq:
		return clamp01(h.fracEQ(v))
	case query.Ne:
		return clamp01(1 - h.fracEQ(v))
	case query.Le:
		return h.fracLE(v)
	case query.Lt:
		return clamp01(h.fracLE(v) - h.fracEQ(v))
	case query.Gt:
		return clamp01(1 - h.fracLE(v))
	case query.Ge:
		return clamp01(1 - h.fracLE(v) + h.fracEQ(v))
	default:
		panic(fmt.Sprintf("stats: unknown operator %v", op))
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
