package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"handsfree/internal/catalog"
	"handsfree/internal/query"
)

func TestHistogramSelectivityUniform(t *testing.T) {
	// Uniform values 0..999, so P(v < 500) ≈ 0.5.
	values := make([]int64, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := range values {
		values[i] = rng.Int63n(1000)
	}
	h := BuildHistogram(values, 32, 4)
	if got := h.Selectivity(query.Lt, 500); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("P(v<500) = %v, want ≈ 0.5", got)
	}
	if got := h.Selectivity(query.Ge, 900); math.Abs(got-0.1) > 0.05 {
		t.Fatalf("P(v>=900) = %v, want ≈ 0.1", got)
	}
	if got := h.Selectivity(query.Eq, 123); math.Abs(got-0.001) > 0.002 {
		t.Fatalf("P(v=123) = %v, want ≈ 0.001", got)
	}
}

func TestHistogramMCVsCaptureSkew(t *testing.T) {
	// 60% of rows hold value 7; the MCV list should capture that exactly.
	var values []int64
	for i := 0; i < 6000; i++ {
		values = append(values, 7)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		values = append(values, rng.Int63n(100))
	}
	h := BuildHistogram(values, 16, 4)
	if got := h.Selectivity(query.Eq, 7); math.Abs(got-0.6) > 0.02 {
		t.Fatalf("P(v=7) = %v, want ≈ 0.6", got)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := BuildHistogram(nil, 8, 4)
	if h.Selectivity(query.Eq, 1) != 0 {
		t.Fatal("empty histogram should estimate 0")
	}
	one := BuildHistogram([]int64{42}, 8, 0)
	if got := one.Selectivity(query.Eq, 42); got < 0.5 {
		t.Fatalf("single-value histogram P(v=42) = %v, want high", got)
	}
	if got := one.Selectivity(query.Lt, 0); got != 0 {
		t.Fatalf("P(v<0) = %v, want 0", got)
	}
}

// Property: selectivities are within [0,1] and LE is monotone in v.
func TestHistogramProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		vals := make([]int64, int(n)+2)
		for i := range vals {
			vals[i] = r.Int63n(50)
		}
		h := BuildHistogram(vals, 8, 3)
		prev := -1.0
		for v := int64(-5); v <= 55; v += 5 {
			s := h.Selectivity(query.Le, v)
			if s < 0 || s > 1 {
				return false
			}
			if s < prev-1e-9 {
				return false
			}
			prev = s
			for _, op := range []query.CmpOp{query.Eq, query.Lt, query.Gt, query.Ge, query.Ne} {
				x := h.Selectivity(op, v)
				if x < -1e-9 || x > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: complementary operators sum to 1: P(<v) + P(>=v) = 1.
func TestHistogramComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(200)
	}
	h := BuildHistogram(vals, 32, 8)
	for v := int64(0); v < 200; v += 7 {
		lt := h.Selectivity(query.Lt, v)
		ge := h.Selectivity(query.Ge, v)
		if math.Abs(lt+ge-1) > 1e-6 {
			t.Fatalf("P(<%d)+P(>=%d) = %v, want 1", v, v, lt+ge)
		}
	}
}

func testFixture(t *testing.T) (*catalog.Catalog, *Stats, *query.Query) {
	t.Helper()
	cat := catalog.New()
	for _, tbl := range []*catalog.Table{
		{Name: "title", Rows: 1000, Columns: []catalog.Column{{Name: "id"}, {Name: "production_year"}, {Name: "kind_id"}}},
		{Name: "movie_companies", Rows: 5000, Columns: []catalog.Column{{Name: "id"}, {Name: "movie_id"}, {Name: "company_id"}}},
		{Name: "company_name", Rows: 200, Columns: []catalog.Column{{Name: "id"}, {Name: "country_code"}}},
	} {
		if err := cat.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(4))
	st := NewStats()
	mkCol := func(n int, domain int64) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = rng.Int63n(domain)
		}
		return v
	}
	seq := func(n int) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = int64(i)
		}
		return v
	}
	st.Analyze("title", map[string][]int64{
		"id": seq(1000), "production_year": mkCol(1000, 130), "kind_id": mkCol(1000, 7),
	}, 32, 4)
	st.Analyze("movie_companies", map[string][]int64{
		"id": seq(5000), "movie_id": mkCol(5000, 1000), "company_id": mkCol(5000, 200),
	}, 32, 4)
	st.Analyze("company_name", map[string][]int64{
		"id": seq(200), "country_code": mkCol(200, 50),
	}, 32, 4)

	q := &query.Query{
		Relations: []query.Relation{
			{Table: "title", Alias: "t"},
			{Table: "movie_companies", Alias: "mc"},
			{Table: "company_name", Alias: "cn"},
		},
		Joins: []query.Join{
			{LeftAlias: "mc", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "mc", LeftCol: "company_id", RightAlias: "cn", RightCol: "id"},
		},
		Filters: []query.Filter{
			{Alias: "t", Column: "production_year", Op: query.Lt, Value: 65},
		},
	}
	return cat, st, q
}

func TestEstimatorBaseCard(t *testing.T) {
	cat, st, q := testFixture(t)
	e := NewEstimator(cat, st)
	// production_year uniform over 130 values; < 65 keeps ≈ half.
	got := e.BaseCard(q, "t")
	if math.Abs(got-500) > 75 {
		t.Fatalf("BaseCard(t) = %v, want ≈ 500", got)
	}
	// Unfiltered: full table.
	if got := e.BaseCard(q, "mc"); got != 5000 {
		t.Fatalf("BaseCard(mc) = %v, want 5000", got)
	}
}

func TestEstimatorJoinCard(t *testing.T) {
	cat, st, q := testFixture(t)
	e := NewEstimator(cat, st)
	// mc ⋈ t on movie_id=id: sel = 1/max(ndv) = 1/1000.
	// card ≈ 5000 × 500 / 1000 = 2500.
	sub := map[string]bool{"t": true, "mc": true}
	got := e.SubsetCard(q, sub)
	if got < 1500 || got > 3500 {
		t.Fatalf("SubsetCard(t,mc) = %v, want ≈ 2500", got)
	}
	// Cross product: no join predicate between t and cn.
	cross := map[string]bool{"t": true, "cn": true}
	crossCard := e.SubsetCard(q, cross)
	if crossCard < 80000 {
		t.Fatalf("cross product card = %v, want ≈ 100000", crossCard)
	}
}

func TestEstimatorMonotoneInFilters(t *testing.T) {
	cat, st, q := testFixture(t)
	e := NewEstimator(cat, st)
	before := e.BaseCard(q, "t")
	q.Filters = append(q.Filters, query.Filter{Alias: "t", Column: "kind_id", Op: query.Eq, Value: 3})
	after := e.BaseCard(q, "t")
	if after > before {
		t.Fatalf("adding a filter increased the estimate: %v → %v", before, after)
	}
}

func TestOracleDeterminism(t *testing.T) {
	cat, st, q := testFixture(t)
	e := NewEstimator(cat, st)
	o1 := NewOracle(e, 42)
	o2 := NewOracle(e, 42)
	sub := map[string]bool{"t": true, "mc": true, "cn": true}
	if o1.TrueSubsetCard(q, sub) != o2.TrueSubsetCard(q, sub) {
		t.Fatal("oracle is not deterministic for equal seeds")
	}
	o3 := NewOracle(e, 43)
	if o1.TrueSubsetCard(q, sub) == o3.TrueSubsetCard(q, sub) {
		t.Fatal("different seeds produced identical truth (suspicious)")
	}
}

func TestOracleSystematicPerEdge(t *testing.T) {
	cat, st, q := testFixture(t)
	e := NewEstimator(cat, st)
	o := NewOracle(e, 7)
	j := q.Joins[0]
	a := o.TrueJoinSelectivity(q, j)
	// Same edge with sides swapped must err identically.
	swapped := query.Join{LeftAlias: j.RightAlias, LeftCol: j.RightCol, RightAlias: j.LeftAlias, RightCol: j.LeftCol}
	b := o.TrueJoinSelectivity(q, swapped)
	if a != b {
		t.Fatalf("edge error not symmetric: %v vs %v", a, b)
	}
}

func TestOracleErrorCompoundsWithJoins(t *testing.T) {
	cat, st, q := testFixture(t)
	e := NewEstimator(cat, st)
	// Average q-error over seeds should grow with subset size.
	var small, large float64
	n := 50
	for seed := int64(0); seed < int64(n); seed++ {
		o := NewOracle(e, seed)
		small += math.Log(o.QError(q, map[string]bool{"t": true, "mc": true}))
		large += math.Log(o.QError(q, map[string]bool{"t": true, "mc": true, "cn": true}))
	}
	if large <= small {
		t.Fatalf("q-error did not compound: 2-way %v vs 3-way %v (mean log)", small/float64(n), large/float64(n))
	}
}

func TestOracleBoundsRespected(t *testing.T) {
	cat, st, q := testFixture(t)
	e := NewEstimator(cat, st)
	for seed := int64(0); seed < 30; seed++ {
		o := NewOracle(e, seed)
		if c := o.TrueBaseCard(q, "t"); c < 1 || c > 1000 {
			t.Fatalf("seed %d: TrueBaseCard(t) = %v outside [1, rows]", seed, c)
		}
		if s := o.TrueJoinSelectivity(q, q.Joins[0]); s <= 0 || s > 1 {
			t.Fatalf("seed %d: join selectivity %v outside (0,1]", seed, s)
		}
	}
}

func TestUnfilteredBaseCardExact(t *testing.T) {
	cat, st, q := testFixture(t)
	e := NewEstimator(cat, st)
	o := NewOracle(e, 99)
	// No filters on mc → truth equals the known row count exactly.
	if got := o.TrueBaseCard(q, "mc"); got != 5000 {
		t.Fatalf("TrueBaseCard(mc) = %v, want exactly 5000", got)
	}
}
