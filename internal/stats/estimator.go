package stats

import (
	"fmt"

	"handsfree/internal/catalog"
	"handsfree/internal/query"
)

// ColumnStats aggregates the statistics kept for one column.
type ColumnStats struct {
	Hist     *Histogram
	Distinct int64
}

// TableStats holds per-column statistics and the analyzed row count.
type TableStats struct {
	Rows    int64
	Columns map[string]*ColumnStats
}

// Stats is the statistics store for a whole database.
type Stats struct {
	Tables map[string]*TableStats
}

// NewStats returns an empty statistics store.
func NewStats() *Stats {
	return &Stats{Tables: make(map[string]*TableStats)}
}

// Analyze builds statistics for one table from full column data.
func (s *Stats) Analyze(table string, cols map[string][]int64, buckets, mcvs int) {
	ts := &TableStats{Columns: make(map[string]*ColumnStats)}
	for name, values := range cols {
		h := BuildHistogram(values, buckets, mcvs)
		ts.Columns[name] = &ColumnStats{Hist: h, Distinct: h.Distinct}
		ts.Rows = int64(len(values))
	}
	s.Tables[table] = ts
}

// Column returns statistics for table.column, or an error.
func (s *Stats) Column(table, column string) (*ColumnStats, error) {
	ts, ok := s.Tables[table]
	if !ok {
		return nil, fmt.Errorf("stats: no statistics for table %s", table)
	}
	cs, ok := ts.Columns[column]
	if !ok {
		return nil, fmt.Errorf("stats: no statistics for column %s.%s", table, column)
	}
	return cs, nil
}

// Estimator performs classical System-R-style cardinality estimation:
// histogram selectivities for filters, independence across predicates, and
// 1/max(NDV) for equality joins. Its errors relative to the Oracle are the
// systematic cost-model flaws the paper's learned agents can exploit.
type Estimator struct {
	Cat   *catalog.Catalog
	Stats *Stats
}

// NewEstimator builds an estimator over a catalog and its statistics.
func NewEstimator(cat *catalog.Catalog, st *Stats) *Estimator {
	return &Estimator{Cat: cat, Stats: st}
}

// FilterSelectivity estimates the selectivity of one filter predicate.
func (e *Estimator) FilterSelectivity(q *query.Query, f query.Filter) float64 {
	rel, ok := q.RelationByAlias(f.Alias)
	if !ok {
		return 1
	}
	cs, err := e.Stats.Column(rel.Table, f.Column)
	if err != nil {
		return defaultSelectivity(f.Op)
	}
	return cs.Hist.Selectivity(f.Op, f.Value)
}

// BaseSelectivity estimates the combined selectivity of all filters on an
// alias under the independence assumption.
func (e *Estimator) BaseSelectivity(q *query.Query, alias string) float64 {
	sel := 1.0
	for _, f := range q.FiltersOn(alias) {
		sel *= e.FilterSelectivity(q, f)
	}
	return sel
}

// BaseCard estimates the post-filter cardinality of one relation.
func (e *Estimator) BaseCard(q *query.Query, alias string) float64 {
	rel, ok := q.RelationByAlias(alias)
	if !ok {
		return 0
	}
	rows := float64(e.tableRows(rel.Table))
	card := rows * e.BaseSelectivity(q, alias)
	if card < 1 {
		card = 1
	}
	return card
}

// JoinSelectivity estimates the selectivity of a single equality join
// predicate as 1/max(NDV_left, NDV_right).
func (e *Estimator) JoinSelectivity(q *query.Query, j query.Join) float64 {
	l := e.ndv(q, j.LeftAlias, j.LeftCol)
	r := e.ndv(q, j.RightAlias, j.RightCol)
	m := max(l, r)
	if m <= 0 {
		return 1
	}
	return 1 / float64(m)
}

// SubsetCard estimates the cardinality of joining the given set of aliases,
// applying every join predicate fully contained in the set:
//
//	card = Π base(r) × Π sel(join edges within the set)
func (e *Estimator) SubsetCard(q *query.Query, aliases map[string]bool) float64 {
	card := 1.0
	for a := range aliases {
		card *= e.BaseCard(q, a)
	}
	for _, j := range q.Joins {
		if aliases[j.LeftAlias] && aliases[j.RightAlias] {
			card *= e.JoinSelectivity(q, j)
		}
	}
	if card < 1 {
		card = 1
	}
	return card
}

// TableRows reports the analyzed (or cataloged) row count of a table.
func (e *Estimator) TableRows(table string) int64 { return e.tableRows(table) }

func (e *Estimator) tableRows(table string) int64 {
	if ts, ok := e.Stats.Tables[table]; ok && ts.Rows > 0 {
		return ts.Rows
	}
	if t, err := e.Cat.Table(table); err == nil {
		return t.Rows
	}
	return 1
}

func (e *Estimator) ndv(q *query.Query, alias, col string) int64 {
	rel, ok := q.RelationByAlias(alias)
	if !ok {
		return 0
	}
	cs, err := e.Stats.Column(rel.Table, col)
	if err != nil {
		return 0
	}
	return cs.Distinct
}

// defaultSelectivity mirrors the textbook fallbacks when statistics are
// missing: 0.005 for equality, 1/3 for ranges.
func defaultSelectivity(op query.CmpOp) float64 {
	switch op {
	case query.Eq:
		return 0.005
	case query.Ne:
		return 0.995
	default:
		return 1.0 / 3.0
	}
}
