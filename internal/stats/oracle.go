package stats

import (
	"hash/fnv"
	"math"

	"handsfree/internal/query"
)

// Oracle produces the "true" cardinalities that query execution would
// observe. It layers a deterministic, systematic error field over the
// Estimator:
//
//   - every (table, filter-set) signature carries a fixed multiplicative
//     error on its base selectivity (cross-column correlation the histogram
//     independence assumption misses), and
//   - every join-edge signature carries a fixed multiplicative error on its
//     join selectivity, biased toward underestimation by the Estimator
//     (Leis et al., VLDB'15: optimizers systematically underestimate join
//     cardinalities, with error compounding per join).
//
// Determinism matters twice: the same plan always observes the same "truth"
// (so learning is possible), and the errors are *systematic* rather than
// per-query noise (so a learned optimizer can genuinely exploit them, which
// is the paper's §5.1 claim about surpassing a flawed expert).
type Oracle struct {
	Est *Estimator
	// Seed selects the error field.
	Seed int64
	// JoinBias is the mean of log error on join selectivities (> 0 means
	// the estimator underestimates result sizes on average).
	JoinBias float64
	// JoinSigma is the standard deviation of log error per join edge.
	JoinSigma float64
	// FilterSigma is the standard deviation of log error per filter set.
	FilterSigma float64
}

// NewOracle builds the truth oracle with the default error field
// (moderate filter correlation, join underestimation bias).
func NewOracle(est *Estimator, seed int64) *Oracle {
	return &Oracle{
		Est:         est,
		Seed:        seed,
		JoinBias:    0.7,
		JoinSigma:   0.8,
		FilterSigma: 0.5,
	}
}

// errFactor derives a deterministic lognormal factor from a key string.
func (o *Oracle) errFactor(key string, mu, sigma float64) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	var seedBytes [8]byte
	s := uint64(o.Seed)
	for i := range seedBytes {
		seedBytes[i] = byte(s >> (8 * i))
	}
	h.Write(seedBytes[:])
	u := h.Sum64()
	// Two uniforms from the hash → one standard normal (Box–Muller).
	u1 := float64(u>>11)/float64(1<<53) + 1e-12
	h.Write([]byte{0xA5})
	u2f := float64(h.Sum64()>>11)/float64(1<<53) + 1e-12
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2f)
	return math.Exp(mu + sigma*z)
}

// TrueBaseCard returns the post-filter cardinality execution would observe
// for one relation. Unfiltered relations have exact statistics (row counts
// are known), so they carry no error.
func (o *Oracle) TrueBaseCard(q *query.Query, alias string) float64 {
	est := o.Est.BaseCard(q, alias)
	filters := q.FiltersOn(alias)
	if len(filters) == 0 {
		return est
	}
	rel, _ := q.RelationByAlias(alias)
	key := "base|" + rel.Table
	for _, f := range filters {
		key += "|" + f.String()
	}
	// Correlation across multiple filters amplifies the error.
	sigma := o.FilterSigma * math.Sqrt(float64(len(filters)))
	card := est * o.errFactor(key, 0, sigma)
	rows := float64(o.Est.tableRows(rel.Table))
	if card > rows {
		card = rows
	}
	if card < 1 {
		card = 1
	}
	return card
}

// TrueJoinSelectivity returns the join-edge selectivity execution observes.
// The error key deliberately excludes the query name: the same schema edge
// always errs the same way, making the flaw learnable.
func (o *Oracle) TrueJoinSelectivity(q *query.Query, j query.Join) float64 {
	est := o.Est.JoinSelectivity(q, j)
	lrel, _ := q.RelationByAlias(j.LeftAlias)
	rrel, _ := q.RelationByAlias(j.RightAlias)
	l := lrel.Table + "." + j.LeftCol
	r := rrel.Table + "." + j.RightCol
	if l > r {
		l, r = r, l
	}
	sel := est * o.errFactor("join|"+l+"="+r, o.JoinBias, o.JoinSigma)
	if sel > 1 {
		sel = 1
	}
	return sel
}

// TrueSubsetCard returns the cardinality execution would observe for a join
// over the given alias set (product form, like the estimator, but with true
// selectivities).
func (o *Oracle) TrueSubsetCard(q *query.Query, aliases map[string]bool) float64 {
	card := 1.0
	for a := range aliases {
		card *= o.TrueBaseCard(q, a)
	}
	for _, j := range q.Joins {
		if aliases[j.LeftAlias] && aliases[j.RightAlias] {
			card *= o.TrueJoinSelectivity(q, j)
		}
	}
	if card < 1 {
		card = 1
	}
	return card
}

// BaseCard implements the cost model's CardSource with true cardinalities.
func (o *Oracle) BaseCard(q *query.Query, alias string) float64 {
	return o.TrueBaseCard(q, alias)
}

// JoinSelectivity implements the cost model's CardSource with true
// selectivities.
func (o *Oracle) JoinSelectivity(q *query.Query, j query.Join) float64 {
	return o.TrueJoinSelectivity(q, j)
}

// TableRows implements the cost model's CardSource (row counts are exact).
func (o *Oracle) TableRows(table string) int64 { return o.Est.TableRows(table) }

// QError returns the q-error between the estimator and the oracle for a
// subset: max(est/true, true/est) ≥ 1. Used in tests and diagnostics to
// confirm the error field compounds with join count.
func (o *Oracle) QError(q *query.Query, aliases map[string]bool) float64 {
	est := o.Est.SubsetCard(q, aliases)
	truth := o.TrueSubsetCard(q, aliases)
	if est <= 0 || truth <= 0 {
		return math.Inf(1)
	}
	r := est / truth
	if r < 1 {
		r = 1 / r
	}
	return r
}
