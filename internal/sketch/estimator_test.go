package sketch_test

import (
	"math"
	"testing"

	"handsfree/internal/datagen"
	"handsfree/internal/query"
	"handsfree/internal/sketch"
	"handsfree/internal/stats"
	"handsfree/internal/workload"
)

func generated(t testing.TB, scale float64) *datagen.Database {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Scale = scale
	db, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return db
}

// TestHLLAccuracyOnGeneratedTables is the acceptance criterion from the
// roadmap: on every column of the generated database, the HyperLogLog
// distinct count is within 3% of the exact one.
func TestHLLAccuracyOnGeneratedTables(t *testing.T) {
	db := generated(t, 1.0)
	store := sketch.NewAnalyzer(sketch.Config{Seed: 1}).Analyze(db.Store)
	checked := 0
	for name, tab := range db.Store.Tables {
		ts := store.Table(name)
		if ts == nil {
			t.Fatalf("no sketches for table %s", name)
		}
		for col, values := range tab.Cols {
			exact := make(map[int64]bool, 1024)
			for _, v := range values {
				exact[v] = true
			}
			got := float64(ts.Column(col).HLL.Distinct())
			want := float64(len(exact))
			if math.Abs(got-want) > math.Max(1, 0.03*want) {
				t.Errorf("%s.%s: HLL distinct %.0f vs exact %.0f (>3%%)", name, col, got, want)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d columns checked; generated schema should have more", checked)
	}
}

// TestSketchEstimatorMirrorsExact checks that when the sketches are
// lossless (reservoir and Count-Min big enough to be exact, HLL at small
// cardinality), the sketch estimator agrees with the exact histogram
// estimator on every interface method — they share the same System-R
// formulas, so the only divergence can come from sketch error.
func TestSketchEstimatorMirrorsExact(t *testing.T) {
	db := generated(t, 0.05)
	// Pick a small table pair joined in the schema with ample sketch
	// capacity so the sketches are (near-)exact.
	store := sketch.NewAnalyzer(sketch.Config{
		ReservoirCap: 1 << 20, CMWidth: 1 << 16, Seed: 2,
	}).Analyze(db.Store)
	exact := stats.NewEstimator(db.Catalog, db.Stats)
	approx := sketch.NewEstimator(db.Catalog, store)

	q := workload.New(db).MustNamed("1a")
	for _, rel := range q.Relations {
		er, ar := exact.TableRows(rel.Table), approx.TableRows(rel.Table)
		if er != ar {
			t.Errorf("TableRows(%s): sketch %d != exact %d", rel.Table, ar, er)
		}
		eb, ab := exact.BaseCard(q, rel.Alias), approx.BaseCard(q, rel.Alias)
		if qerr(eb, ab) > 1.35 {
			t.Errorf("BaseCard(%s): sketch %.1f vs exact %.1f (q-error %.2f)", rel.Alias, ab, eb, qerr(eb, ab))
		}
	}
	for _, j := range q.Joins {
		ej, aj := exact.JoinSelectivity(q, j), approx.JoinSelectivity(q, j)
		if qerr(ej, aj) > 1.1 {
			t.Errorf("JoinSelectivity(%s): sketch %g vs exact %g", j, aj, ej)
		}
	}
	all := map[string]bool{}
	for _, rel := range q.Relations {
		all[rel.Alias] = true
	}
	es, as := exact.SubsetCard(q, all), approx.SubsetCard(q, all)
	if qerr(es, as) > 2.0 {
		t.Errorf("SubsetCard(all): sketch %g vs exact %g (q-error %.2f)", as, es, qerr(es, as))
	}
}

// TestEstimatorQErrorOnWorkload measures both estimators against true
// cardinalities computed from the data: the sketch estimator must stay in
// the same accuracy class as the exact histogram estimator (geometric-mean
// q-error within 2× of it) on the named workload's base relations. This is
// the roadmap's "estimator accuracy vs the exact oracle" success metric as
// a test floor; the benchmark emits the exact numbers per PR.
func TestEstimatorQErrorOnWorkload(t *testing.T) {
	db := generated(t, 0.25)
	store := sketch.NewAnalyzer(sketch.Config{Seed: 3}).Analyze(db.Store)
	exact := stats.NewEstimator(db.Catalog, db.Stats)
	approx := sketch.NewEstimator(db.Catalog, store)
	w := workload.New(db)

	var logExact, logSketch float64
	n := 0
	for _, name := range workload.NamedNames() {
		q := w.MustNamed(name)
		for _, rel := range q.Relations {
			filters := q.FiltersOn(rel.Alias)
			if len(filters) == 0 {
				continue
			}
			truth := trueBaseCard(db, q, rel)
			if truth <= 0 {
				truth = 1
			}
			logExact += math.Log(qerr(truth, exact.BaseCard(q, rel.Alias)))
			logSketch += math.Log(qerr(truth, approx.BaseCard(q, rel.Alias)))
			n++
		}
	}
	if n == 0 {
		t.Fatal("no filtered base relations in the named workload")
	}
	geoExact := math.Exp(logExact / float64(n))
	geoSketch := math.Exp(logSketch / float64(n))
	t.Logf("base-card geomean q-error: exact=%.3f sketch=%.3f over %d relations", geoExact, geoSketch, n)
	if geoSketch > 2*geoExact+0.5 {
		t.Errorf("sketch estimator geomean q-error %.3f not in the exact estimator's class (%.3f)", geoSketch, geoExact)
	}
}

// trueBaseCard counts the rows of rel's table matching every filter on its
// alias — the ground truth both estimators approximate.
func trueBaseCard(db *datagen.Database, q *query.Query, rel query.Relation) float64 {
	tab, err := db.Store.Table(rel.Table)
	if err != nil {
		return 0
	}
	filters := q.FiltersOn(rel.Alias)
	count := 0
	for i := 0; i < tab.N; i++ {
		ok := true
		for _, f := range filters {
			if !cmpMatch(f.Op, tab.Cols[f.Column][i], f.Value) {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return float64(count)
}

func cmpMatch(op query.CmpOp, v, c int64) bool {
	switch op {
	case query.Eq:
		return v == c
	case query.Ne:
		return v != c
	case query.Lt:
		return v < c
	case query.Le:
		return v <= c
	case query.Gt:
		return v > c
	case query.Ge:
		return v >= c
	default:
		return false
	}
}

func qerr(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return math.Inf(1)
	}
	if a > b {
		return a / b
	}
	return b / a
}
