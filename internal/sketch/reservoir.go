package sketch

import "sort"

// Default sampling capacities: 1024 values per column reconstruct an
// empirical CDF to ~±3% (DKW bound at 95%), and 4096 sampled rows per
// table give approximate aggregates their sample at a fraction of a
// full scan.
const (
	DefaultReservoirCap = 1024
	DefaultSampleCap    = 4096
)

// ValueReservoir is Vitter's algorithm-R reservoir over a column's values:
// after the stream ends, Values is a uniform random sample of size
// min(Cap, Seen). The estimator reads range selectivities off its
// empirical CDF. All state is exported, so the sketch serializes whole —
// including the PRNG word, which keeps post-restore additions on the same
// deterministic stream.
type ValueReservoir struct {
	Cap    int
	Seen   int64
	Values []int64
	// Rng is the splitmix64 PRNG state (seeded at construction).
	Rng uint64
	// sorted is a sorted copy of Values built by Seal for O(log n) CDF
	// queries. It is never built lazily: FracLE/FracLT on an unsealed
	// reservoir scan linearly instead, so concurrent readers (the cost
	// model under concurrent Plan calls) never mutate shared state.
	sorted []int64
}

// NewValueReservoir builds an empty reservoir holding up to cap values;
// non-positive cap falls back to the default.
func NewValueReservoir(cap int, seed uint64) *ValueReservoir {
	if cap <= 0 {
		cap = DefaultReservoirCap
	}
	return &ValueReservoir{Cap: cap, Rng: mix64(seed)}
}

// Add observes one value.
func (r *ValueReservoir) Add(v int64) {
	r.Seen++
	r.sorted = nil
	if len(r.Values) < r.Cap {
		r.Values = append(r.Values, v)
		return
	}
	if j := nextRand(&r.Rng) % uint64(r.Seen); j < uint64(r.Cap) {
		r.Values[j] = v
	}
}

// Merge folds other into r, drawing each merged slot from the two
// reservoirs with probability proportional to the stream sizes they
// represent. Unlike HLL/Count-Min merge this is approximate — the result
// is a valid uniform-ish sample of the union, not bit-identical to
// sketching the concatenated stream.
func (r *ValueReservoir) Merge(other *ValueReservoir) {
	if other == nil || other.Seen == 0 {
		return
	}
	if r.Seen == 0 {
		r.Seen = other.Seen
		r.Values = append(r.Values[:0], other.Values...)
		if len(r.Values) > r.Cap {
			r.Values = r.Values[:r.Cap]
		}
		r.sorted = nil
		return
	}
	total := uint64(r.Seen + other.Seen)
	merged := make([]int64, 0, r.Cap)
	for i := 0; i < r.Cap && (len(r.Values) > 0 || len(other.Values) > 0); i++ {
		fromSelf := len(other.Values) == 0 ||
			(len(r.Values) > 0 && nextRand(&r.Rng)%total < uint64(r.Seen))
		if fromSelf {
			j := int(nextRand(&r.Rng) % uint64(len(r.Values)))
			merged = append(merged, r.Values[j])
		} else {
			j := int(nextRand(&r.Rng) % uint64(len(other.Values)))
			merged = append(merged, other.Values[j])
		}
	}
	r.Values = merged
	r.Seen += other.Seen
	r.sorted = nil
}

// Seal sorts the sample for binary-search CDF queries. Call it once after
// the build pass (and after Load/Merge); until then FracLE/FracLT fall
// back to a linear scan so they stay safe under concurrent readers.
func (r *ValueReservoir) Seal() {
	if len(r.Values) == 0 {
		r.sorted = nil
		return
	}
	r.sorted = append(make([]int64, 0, len(r.Values)), r.Values...)
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
}

// FracLE estimates the fraction of column values ≤ v from the sample CDF.
func (r *ValueReservoir) FracLE(v int64) float64 {
	if s := r.sorted; len(s) > 0 {
		n := sort.Search(len(s), func(i int) bool { return s[i] > v })
		return float64(n) / float64(len(s))
	}
	return r.scanFrac(func(x int64) bool { return x <= v })
}

// FracLT estimates the fraction of column values < v.
func (r *ValueReservoir) FracLT(v int64) float64 {
	if s := r.sorted; len(s) > 0 {
		n := sort.Search(len(s), func(i int) bool { return s[i] >= v })
		return float64(n) / float64(len(s))
	}
	return r.scanFrac(func(x int64) bool { return x < v })
}

func (r *ValueReservoir) scanFrac(keep func(int64) bool) float64 {
	if len(r.Values) == 0 {
		return 0
	}
	n := 0
	for _, x := range r.Values {
		if keep(x) {
			n++
		}
	}
	return float64(n) / float64(len(r.Values))
}

// RowSample is a uniform reservoir sample of whole table rows with the
// column values materialized, columnar like storage.Table, so approximate
// execution can evaluate filters and aggregates on the sample and scale by
// Seen/len. Every column slice has the same length and index i across
// columns is one sampled row.
type RowSample struct {
	Cap  int
	Seen int64
	Cols map[string][]int64
	Rng  uint64
}

// NewRowSample builds an empty sample of up to cap rows over the given
// column names; non-positive cap falls back to the default.
func NewRowSample(cap int, cols []string, seed uint64) *RowSample {
	if cap <= 0 {
		cap = DefaultSampleCap
	}
	s := &RowSample{Cap: cap, Cols: make(map[string][]int64, len(cols)), Rng: mix64(seed ^ 0x5a11e57)}
	for _, c := range cols {
		s.Cols[c] = nil
	}
	return s
}

// Len returns the number of sampled rows.
func (s *RowSample) Len() int {
	for _, col := range s.Cols {
		return len(col)
	}
	return 0
}

// Column returns the sampled values for one column (nil if absent).
func (s *RowSample) Column(name string) []int64 { return s.Cols[name] }

// AddRow observes one row, given as a lookup from column name to value at
// the source row index (so the analyzer can feed columnar storage without
// materializing row structs).
func (s *RowSample) AddRow(value func(col string) int64) {
	s.Seen++
	if s.Len() < s.Cap {
		for c := range s.Cols {
			s.Cols[c] = append(s.Cols[c], value(c))
		}
		return
	}
	if j := nextRand(&s.Rng) % uint64(s.Seen); j < uint64(s.Cap) {
		for c := range s.Cols {
			s.Cols[c][j] = value(c)
		}
	}
}
