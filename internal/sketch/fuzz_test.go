package sketch

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// valuesFrom decodes a fuzz payload into two int64 streams split at a
// pivot byte, so the fuzzer controls both shard contents and the split.
func valuesFrom(data []byte) (a, b []int64) {
	if len(data) == 0 {
		return nil, nil
	}
	split := int(data[0]) % (len(data) + 1)
	decode := func(p []byte) []int64 {
		var out []int64
		for len(p) >= 8 {
			out = append(out, int64(binary.LittleEndian.Uint64(p)))
			p = p[8:]
		}
		if len(p) > 0 {
			var last [8]byte
			copy(last[:], p)
			out = append(out, int64(binary.LittleEndian.Uint64(last[:])))
		}
		return out
	}
	rest := data[1:]
	if split > len(rest) {
		split = len(rest)
	}
	return decode(rest[:split]), decode(rest[split:])
}

// FuzzHLLMerge checks, on arbitrary streams: no panics, merge equals the
// whole-stream sketch (union semantics), and merge is commutative.
func FuzzHLLMerge(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		va, vb := valuesFrom(data)
		const p = 8
		whole, a, b := NewHLL(p), NewHLL(p), NewHLL(p)
		ba, bb := NewHLL(p), NewHLL(p) // second copies for commutativity
		for _, v := range va {
			whole.Add(v)
			a.Add(v)
			ba.Add(v)
		}
		for _, v := range vb {
			whole.Add(v)
			b.Add(v)
			bb.Add(v)
		}
		if err := a.Merge(b); err != nil {
			t.Fatalf("merge: %v", err)
		}
		if !bytes.Equal(a.Registers, whole.Registers) {
			t.Fatal("merge(a,b) != sketch of concatenated stream")
		}
		if err := bb.Merge(ba); err != nil {
			t.Fatalf("reverse merge: %v", err)
		}
		if !bytes.Equal(bb.Registers, a.Registers) {
			t.Fatal("HLL merge is not commutative")
		}
		// Distinct never exceeds stream length by more than the error
		// bound allows at tiny precision; just assert non-negative and
		// finite behavior.
		if whole.Distinct() < 0 {
			t.Fatal("negative distinct estimate")
		}
	})
}

// FuzzCountMinMerge checks, on arbitrary streams: no panics, merged
// counters equal the whole-stream sketch, commutativity, and the
// overestimate-only invariant for every fuzzed value.
func FuzzCountMinMerge(f *testing.F) {
	f.Add([]byte{5, 9, 9, 9, 9, 9, 9, 9, 9, 1, 2, 3})
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{7}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		va, vb := valuesFrom(data)
		const depth, width = 3, 64
		whole, a, b := NewCountMin(depth, width), NewCountMin(depth, width), NewCountMin(depth, width)
		ba, bb := NewCountMin(depth, width), NewCountMin(depth, width)
		exact := make(map[int64]uint64)
		for _, v := range va {
			whole.Add(v, 1)
			a.Add(v, 1)
			ba.Add(v, 1)
			exact[v]++
		}
		for _, v := range vb {
			whole.Add(v, 1)
			b.Add(v, 1)
			bb.Add(v, 1)
			exact[v]++
		}
		if err := a.Merge(b); err != nil {
			t.Fatalf("merge: %v", err)
		}
		if a.Items != whole.Items {
			t.Fatalf("merged Items %d != whole %d", a.Items, whole.Items)
		}
		for i := range whole.Counts {
			if !equalU64(a.Counts[i], whole.Counts[i]) {
				t.Fatal("merge(a,b) != sketch of concatenated stream")
			}
		}
		if err := bb.Merge(ba); err != nil {
			t.Fatalf("reverse merge: %v", err)
		}
		for i := range a.Counts {
			if !equalU64(bb.Counts[i], a.Counts[i]) {
				t.Fatal("CountMin merge is not commutative")
			}
		}
		for v, want := range exact {
			if got := a.Count(v); got < want {
				t.Fatalf("value %d: merged estimate %d < true count %d (underestimate)", v, got, want)
			}
		}
	})
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
