package sketch

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"handsfree/internal/storage"
)

// Config sizes the sketches an Analyzer builds. The zero value resolves to
// the package defaults.
type Config struct {
	// HLLPrecision is the HyperLogLog precision (registers = 2^p).
	HLLPrecision int
	// CMDepth × CMWidth size the Count-Min counter matrix.
	CMDepth, CMWidth int
	// ReservoirCap bounds the per-column value reservoir.
	ReservoirCap int
	// SampleCap bounds the per-table row sample used by approximate
	// execution.
	SampleCap int
	// Seed makes the sampling deterministic.
	Seed uint64
}

func (c *Config) fill() {
	if c.HLLPrecision <= 0 {
		c.HLLPrecision = DefaultHLLPrecision
	}
	if c.CMDepth <= 0 {
		c.CMDepth = DefaultCMDepth
	}
	if c.CMWidth <= 0 {
		c.CMWidth = DefaultCMWidth
	}
	if c.ReservoirCap <= 0 {
		c.ReservoirCap = DefaultReservoirCap
	}
	if c.SampleCap <= 0 {
		c.SampleCap = DefaultSampleCap
	}
}

// ColumnSketch bundles the one-pass summaries for a single column.
type ColumnSketch struct {
	// Rows is the number of values the sketches saw (the table's row
	// count at analysis time).
	Rows int64
	// HLL estimates the column's distinct count.
	HLL *HLL
	// CM estimates per-value frequencies for equality selectivities.
	CM *CountMin
	// Values is a uniform sample of the column for range selectivities.
	Values *ValueReservoir
	// Min and Max are the exact observed extremes (one word each — cheap
	// to keep exactly even in one pass).
	Min, Max int64
}

// TableSketch holds every column's sketches plus the table-level row
// sample for approximate execution.
type TableSketch struct {
	Rows    int64
	Columns map[string]*ColumnSketch
	Sample  *RowSample
}

// Column returns the sketch for one column, or nil.
func (t *TableSketch) Column(name string) *ColumnSketch {
	if t == nil {
		return nil
	}
	return t.Columns[name]
}

// Store holds the sketches for a whole database.
type Store struct {
	Tables map[string]*TableSketch
}

// Table returns the sketch for one table, or nil.
func (s *Store) Table(name string) *TableSketch {
	if s == nil {
		return nil
	}
	return s.Tables[name]
}

// Column returns the sketch for table.column, or an error mirroring
// stats.Stats.Column so the estimator's missing-stats fallbacks line up.
func (s *Store) Column(table, column string) (*ColumnSketch, error) {
	ts, ok := s.Tables[table]
	if !ok {
		return nil, fmt.Errorf("sketch: no sketches for table %s", table)
	}
	cs, ok := ts.Columns[column]
	if !ok {
		return nil, fmt.Errorf("sketch: no sketches for column %s.%s", table, column)
	}
	return cs, nil
}

// Analyzer builds sketches from columnar table data.
type Analyzer struct {
	cfg Config
}

// NewAnalyzer returns an analyzer with the given configuration (zero
// values resolve to defaults).
func NewAnalyzer(cfg Config) *Analyzer {
	cfg.fill()
	return &Analyzer{cfg: cfg}
}

// AnalyzeTable builds a TableSketch in one pass per column plus one pass
// for the row sample. The per-column seed mixes the table and column names
// so reservoirs across columns draw independent streams deterministically.
func (a *Analyzer) AnalyzeTable(t *storage.Table) *TableSketch {
	ts := &TableSketch{
		Rows:    int64(t.N),
		Columns: make(map[string]*ColumnSketch, len(t.Cols)),
	}
	names := make([]string, 0, len(t.Cols))
	for name := range t.Cols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts.Columns[name] = a.analyzeColumn(t.Name, name, t.Cols[name])
	}
	ts.Sample = a.sampleRows(t, names)
	return ts
}

func (a *Analyzer) analyzeColumn(table, column string, values []int64) *ColumnSketch {
	cs := &ColumnSketch{
		Rows: int64(len(values)),
		HLL:  NewHLL(a.cfg.HLLPrecision),
		CM:   NewCountMin(a.cfg.CMDepth, a.cfg.CMWidth),
		Values: NewValueReservoir(a.cfg.ReservoirCap,
			a.cfg.Seed^hashName(table)^mix64(hashName(column))),
	}
	for i, v := range values {
		cs.HLL.Add(v)
		cs.CM.Add(v, 1)
		cs.Values.Add(v)
		if i == 0 || v < cs.Min {
			cs.Min = v
		}
		if i == 0 || v > cs.Max {
			cs.Max = v
		}
	}
	cs.Values.Seal()
	return cs
}

func (a *Analyzer) sampleRows(t *storage.Table, names []string) *RowSample {
	s := NewRowSample(a.cfg.SampleCap, names, a.cfg.Seed^hashName(t.Name))
	for i := 0; i < t.N; i++ {
		row := i
		s.AddRow(func(col string) int64 { return t.Cols[col][row] })
	}
	return s
}

// Analyze builds sketches for every table in the database.
func (a *Analyzer) Analyze(db *storage.DB) *Store {
	st := &Store{Tables: make(map[string]*TableSketch, len(db.Tables))}
	for name, t := range db.Tables {
		st.Tables[name] = a.AnalyzeTable(t)
	}
	return st
}

// hashName hashes a table/column name for seed derivation (FNV-1a folded
// through the mixer — the mixer supplies the avalanche, FNV the bytes).
func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// Save gob-encodes the store.
func (s *Store) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s)
}

// LoadStore gob-decodes a store written by Save and re-seals every value
// reservoir (the sorted CDF cache is derived state and not serialized).
func LoadStore(r io.Reader) (*Store, error) {
	var s Store
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("sketch: decoding store: %w", err)
	}
	for _, ts := range s.Tables {
		for _, cs := range ts.Columns {
			if cs.Values != nil {
				cs.Values.Seal()
			}
		}
	}
	return &s, nil
}
