package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// DefaultHLLPrecision gives 2^14 = 16384 registers (16 KiB per column),
// a ~0.81% standard error — comfortably inside the ≤3% distinct-count
// accuracy budget the planner parity tests pin.
const DefaultHLLPrecision = 14

// HLL is a HyperLogLog distinct-count sketch (Flajolet et al. 2007): each
// hashed value routes to one of 2^P registers by its top P bits, and the
// register keeps the maximum leading-zero rank seen in the remaining bits.
// Merging two HLLs of equal precision is the element-wise register max and
// is exact: merge(A,B) summarizes exactly the union of the streams.
type HLL struct {
	// P is the precision; Registers has length 1<<P.
	P         uint8
	Registers []uint8
}

// NewHLL builds an empty sketch with 2^p registers. Precisions outside
// [4, 18] are clamped.
func NewHLL(p int) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 18 {
		p = 18
	}
	return &HLL{P: uint8(p), Registers: make([]uint8, 1<<p)}
}

// Add observes one value.
func (h *HLL) Add(v int64) {
	x := mix64(uint64(v))
	idx := x >> (64 - h.P)
	// The sentinel bit keeps the rank bounded by 64-P+1 even when every
	// remaining hash bit is zero.
	rest := x<<h.P | 1<<(h.P-1)
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.Registers[idx] {
		h.Registers[idx] = rank
	}
}

// Merge folds other into h (element-wise register max). The precisions
// must match.
func (h *HLL) Merge(other *HLL) error {
	if other == nil {
		return nil
	}
	if h.P != other.P || len(h.Registers) != len(other.Registers) {
		return fmt.Errorf("sketch: cannot merge HLL precision %d/%d registers with %d/%d", h.P, len(h.Registers), other.P, len(other.Registers))
	}
	for i, r := range other.Registers {
		if r > h.Registers[i] {
			h.Registers[i] = r
		}
	}
	return nil
}

// Estimate returns the estimated number of distinct values observed,
// using Ertl's improved raw estimator (arXiv 1702.01284): unlike the
// original raw-estimate + linear-counting pair it has no regime thresholds
// and no bias spike in the transition zone around n ≈ 2.5·m — which the
// generated tables land in exactly.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.Registers))
	q := 64 - int(h.P) // register values range over 0..q+1
	counts := make([]int, q+2)
	for _, r := range h.Registers {
		counts[r]++
	}
	z := m * tau(float64(counts[q+1])/m)
	for k := q; k >= 1; k-- {
		z = 0.5 * (z + float64(counts[k]))
	}
	z += m * sigma(float64(counts[0])/m)
	const alphaInf = 0.5 / math.Ln2
	return alphaInf * m * m / z
}

// Distinct returns the estimate rounded to a count, never below zero.
func (h *HLL) Distinct() int64 {
	e := h.Estimate()
	if e < 0 {
		return 0
	}
	return int64(e + 0.5)
}

// sigma computes x + Σ_k x^(2^k)·2^(k-1) (Ertl, Algorithm 5).
func sigma(x float64) float64 {
	if x == 1 {
		return math.Inf(1)
	}
	y, z := 1.0, x
	for {
		x *= x
		prev := z
		z += x * y
		y += y
		if z == prev {
			return z
		}
	}
}

// tau computes (1 − x − Σ_k (1−x^(2^-k))²·2^(-k)) / 3 (Ertl, Algorithm 6).
func tau(x float64) float64 {
	if x == 0 || x == 1 {
		return 0
	}
	y, z := 1.0, 1-x
	for {
		x = math.Sqrt(x)
		prev := z
		y *= 0.5
		z -= (1 - x) * (1 - x) * y
		if z == prev {
			return z / 3
		}
	}
}
