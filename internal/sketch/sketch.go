// Package sketch provides probabilistic data summaries — HyperLogLog for
// distinct counts, Count-Min for frequency estimation, and reservoir
// sampling for value distributions and approximate execution — as the
// scalable alternative to the exact per-column histograms in
// internal/stats. Every sketch is built in one pass over column data, is
// mergeable (so per-shard sketches combine into a global one without
// re-reading data), and is serializable (exported fields only, gob-ready).
//
// The package feeds two consumers: sketch.Estimator mirrors the exact
// System-R estimator's formulas over sketches alone, so the cost model,
// the optimizer's DP, and the learned featurization can plan without ever
// touching a histogram; and the engine's approximate execution mode runs
// sample-and-scale aggregates over the per-table row samples with
// bootstrap confidence intervals.
package sketch

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer. Column
// values here are small sequential integers, so a weak hash (e.g. FNV over
// raw bytes) would leave HyperLogLog register indices correlated with the
// values; the finalizer decorrelates them.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextRand advances a splitmix64 PRNG whose whole state is one word, so
// sketches that sample (reservoirs) keep their stream as an exported field
// and stay reproducible across serialization round trips without dragging
// math/rand state along.
func nextRand(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return mix64(*state)
}
