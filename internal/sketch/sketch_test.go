package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"handsfree/internal/query"
	"handsfree/internal/storage"
)

// TestHLLAccuracy pins the distinct-count relative error vs an exact
// oracle across cardinalities spanning the linear-counting and raw-HLL
// regimes. At precision 14 the theoretical standard error is ~0.81%; the
// acceptance bound is ≤3% everywhere.
func TestHLLAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{10, 100, 1000, 10000, 100000, 500000} {
		h := NewHLL(DefaultHLLPrecision)
		exact := make(map[int64]bool)
		for i := 0; i < 2*n; i++ {
			v := int64(rng.Intn(n)) // ~n distinct with repeats
			h.Add(v)
			exact[v] = true
		}
		got := float64(h.Distinct())
		want := float64(len(exact))
		relErr := math.Abs(got-want) / want
		if relErr > 0.03 {
			t.Errorf("n=%d: HLL estimate %.0f vs exact %.0f, rel error %.2f%% > 3%%", n, got, want, 100*relErr)
		}
	}
}

// TestHLLSequential pins accuracy on sequential integers — the actual
// shape of generated id columns, and the case a weak hash would fail.
func TestHLLSequential(t *testing.T) {
	h := NewHLL(DefaultHLLPrecision)
	const n = 200000
	for i := int64(0); i < n; i++ {
		h.Add(i)
	}
	relErr := math.Abs(float64(h.Distinct())-n) / n
	if relErr > 0.03 {
		t.Errorf("sequential ids: rel error %.2f%% > 3%%", 100*relErr)
	}
}

// TestHLLMergeIsUnion checks that merging per-shard sketches equals
// sketching the concatenated stream, register for register.
func TestHLLMergeIsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	whole := NewHLL(12)
	a, b := NewHLL(12), NewHLL(12)
	for i := 0; i < 50000; i++ {
		v := rng.Int63n(30000)
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(a.Registers, whole.Registers) {
		t.Fatal("merged HLL registers differ from whole-stream sketch")
	}
	if err := a.Merge(NewHLL(8)); err == nil {
		t.Fatal("merging mismatched precisions should error")
	}
}

// TestCountMinOverestimateOnly checks the one-sided error bound: the
// estimate is never below the true count, and the overestimate stays
// within the εN = (e/width)·N analytical bound with headroom.
func TestCountMinOverestimateOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cm := NewCountMin(DefaultCMDepth, DefaultCMWidth)
	exact := make(map[int64]uint64)
	const n = 200000
	for i := 0; i < n; i++ {
		v := int64(rng.Intn(5000))
		cm.Add(v, 1)
		exact[v]++
	}
	bound := uint64(math.Ceil(math.E / float64(DefaultCMWidth) * n))
	for v, want := range exact {
		got := cm.Count(v)
		if got < want {
			t.Fatalf("value %d: estimate %d underestimates true count %d", v, got, want)
		}
		if got-want > 4*bound {
			t.Errorf("value %d: overestimate %d exceeds 4× the εN bound %d", v, got-want, bound)
		}
	}
}

// TestCountMinMergeIsUnion checks merged counters equal the whole-stream
// sketch exactly.
func TestCountMinMergeIsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	whole := NewCountMin(4, 256)
	a, b := NewCountMin(4, 256), NewCountMin(4, 256)
	for i := 0; i < 20000; i++ {
		v := rng.Int63n(1000)
		whole.Add(v, 1)
		if i%3 == 0 {
			a.Add(v, 1)
		} else {
			b.Add(v, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Items != whole.Items {
		t.Fatalf("merged Items %d != whole %d", a.Items, whole.Items)
	}
	for i := range whole.Counts {
		for j := range whole.Counts[i] {
			if a.Counts[i][j] != whole.Counts[i][j] {
				t.Fatalf("counter [%d][%d] differs after merge", i, j)
			}
		}
	}
	if err := a.Merge(NewCountMin(4, 128)); err == nil {
		t.Fatal("merging mismatched widths should error")
	}
}

// TestValueReservoirCDF checks the empirical CDF tracks the true one on a
// skewed stream, and that sealing preserves query answers.
func TestValueReservoirCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	r := NewValueReservoir(DefaultReservoirCap, 23)
	const n = 100000
	vals := make([]int64, n)
	for i := range vals {
		v := int64(rng.NormFloat64()*1000 + 5000)
		vals[i] = v
		r.Add(v)
	}
	if r.Seen != n {
		t.Fatalf("Seen = %d, want %d", r.Seen, n)
	}
	for _, probe := range []int64{3000, 4500, 5000, 5500, 7000} {
		exact := 0
		for _, v := range vals {
			if v <= probe {
				exact++
			}
		}
		want := float64(exact) / n
		unsealed := r.FracLE(probe)
		r.Seal()
		sealed := r.FracLE(probe)
		if unsealed != sealed {
			t.Errorf("probe %d: sealed answer %.4f != unsealed %.4f", probe, sealed, unsealed)
		}
		if math.Abs(sealed-want) > 0.05 {
			t.Errorf("probe %d: sample CDF %.3f vs exact %.3f (>0.05 off)", probe, sealed, want)
		}
	}
}

// TestReservoirMerge checks the merged reservoir stays capacity-bounded
// and draws from both inputs roughly proportionally.
func TestReservoirMerge(t *testing.T) {
	a := NewValueReservoir(400, 29)
	b := NewValueReservoir(400, 31)
	for i := 0; i < 10000; i++ {
		a.Add(1) // stream A is all ones
		b.Add(2) // stream B is all twos, same size
	}
	a.Merge(b)
	if len(a.Values) > a.Cap {
		t.Fatalf("merged reservoir exceeds cap: %d > %d", len(a.Values), a.Cap)
	}
	if a.Seen != 20000 {
		t.Fatalf("merged Seen = %d, want 20000", a.Seen)
	}
	ones := 0
	for _, v := range a.Values {
		if v == 1 {
			ones++
		}
	}
	frac := float64(ones) / float64(len(a.Values))
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("equal streams should merge ~50/50, got %.2f from A", frac)
	}
}

// TestRowSample checks row integrity: index i holds one source row across
// all columns, verified via a derived column (b = a + 1000000).
func TestRowSample(t *testing.T) {
	tab := &storage.Table{Name: "t", N: 50000, Cols: map[string][]int64{}}
	a := make([]int64, tab.N)
	b := make([]int64, tab.N)
	for i := range a {
		a[i] = int64(i)
		b[i] = int64(i) + 1000000
	}
	tab.Cols["a"], tab.Cols["b"] = a, b
	ts := NewAnalyzer(Config{SampleCap: 512, Seed: 3}).AnalyzeTable(tab)
	s := ts.Sample
	if s.Len() != 512 {
		t.Fatalf("sample size %d, want 512", s.Len())
	}
	if s.Seen != 50000 {
		t.Fatalf("Seen = %d, want 50000", s.Seen)
	}
	ca, cb := s.Column("a"), s.Column("b")
	for i := range ca {
		if cb[i] != ca[i]+1000000 {
			t.Fatalf("row %d torn: a=%d b=%d", i, ca[i], cb[i])
		}
	}
}

// TestStoreGobRoundTrip checks sketches survive Save/LoadStore with
// identical estimates (serialized state is complete).
func TestStoreGobRoundTrip(t *testing.T) {
	tab := &storage.Table{Name: "t", N: 20000, Cols: map[string][]int64{}}
	vals := make([]int64, tab.N)
	rng := rand.New(rand.NewSource(37))
	for i := range vals {
		vals[i] = rng.Int63n(3000)
	}
	tab.Cols["c"] = vals
	st := &Store{Tables: map[string]*TableSketch{
		"t": NewAnalyzer(Config{Seed: 5}).AnalyzeTable(tab),
	}}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadStore(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	want, _ := st.Column("t", "c")
	have, err := got.Column("t", "c")
	if err != nil {
		t.Fatalf("column after load: %v", err)
	}
	if have.HLL.Distinct() != want.HLL.Distinct() {
		t.Errorf("HLL distinct changed across round trip: %d vs %d", have.HLL.Distinct(), want.HLL.Distinct())
	}
	if have.CM.Count(42) != want.CM.Count(42) {
		t.Errorf("CM count changed across round trip")
	}
	for _, probe := range []int64{0, 500, 1500, 2999} {
		if have.Values.FracLE(probe) != want.Values.FracLE(probe) {
			t.Errorf("CDF at %d changed across round trip", probe)
		}
	}
	if have.Min != want.Min || have.Max != want.Max || have.Rows != want.Rows {
		t.Errorf("column metadata changed across round trip")
	}
	if got.Table("t").Sample.Len() != st.Table("t").Sample.Len() {
		t.Errorf("row sample size changed across round trip")
	}
}

// TestColumnSelectivity sanity-checks the operator semantics against an
// exact count on a known column.
func TestColumnSelectivity(t *testing.T) {
	tab := &storage.Table{Name: "t", N: 10000, Cols: map[string][]int64{}}
	vals := make([]int64, tab.N)
	rng := rand.New(rand.NewSource(41))
	for i := range vals {
		vals[i] = rng.Int63n(100)
	}
	tab.Cols["c"] = vals
	cs := NewAnalyzer(Config{Seed: 7}).AnalyzeTable(tab).Column("c")
	exactFrac := func(keep func(int64) bool) float64 {
		n := 0
		for _, v := range vals {
			if keep(v) {
				n++
			}
		}
		return float64(n) / float64(len(vals))
	}
	cases := []struct {
		op   query.CmpOp
		v    int64
		want float64
	}{
		{query.Eq, 50, exactFrac(func(x int64) bool { return x == 50 })},
		{query.Ne, 50, exactFrac(func(x int64) bool { return x != 50 })},
		{query.Lt, 30, exactFrac(func(x int64) bool { return x < 30 })},
		{query.Le, 30, exactFrac(func(x int64) bool { return x <= 30 })},
		{query.Gt, 70, exactFrac(func(x int64) bool { return x > 70 })},
		{query.Ge, 70, exactFrac(func(x int64) bool { return x >= 70 })},
		{query.Eq, -5, 0},  // below range
		{query.Lt, -5, 0},  // below range
		{query.Gt, 500, 0}, // above range
		{query.Le, 500, 1}, // above range
	}
	for _, c := range cases {
		got := cs.Selectivity(c.op, c.v)
		if math.Abs(got-c.want) > 0.05 {
			t.Errorf("sel(c %s %d) = %.3f, want ~%.3f", c.op, c.v, got, c.want)
		}
	}
}
