package sketch

import (
	"handsfree/internal/catalog"
	"handsfree/internal/query"
)

// Estimator answers the same cardinality questions as the exact
// stats.Estimator — formula for formula (independence across filters,
// 1/max(NDV) equality joins, the same textbook missing-stats fallbacks) —
// but reads every input off sketches: equality selectivity from Count-Min
// frequencies, range selectivity from the value reservoir's empirical CDF,
// NDV from HyperLogLog. It satisfies the cost model's CardSource interface
// and the featurization's Estimator interface, so planning runs on
// sketches alone.
type Estimator struct {
	Cat   *catalog.Catalog
	Store *Store
}

// NewEstimator builds an estimator over a catalog and its sketch store.
func NewEstimator(cat *catalog.Catalog, st *Store) *Estimator {
	return &Estimator{Cat: cat, Store: st}
}

// FilterSelectivity estimates the selectivity of one filter predicate.
func (e *Estimator) FilterSelectivity(q *query.Query, f query.Filter) float64 {
	rel, ok := q.RelationByAlias(f.Alias)
	if !ok {
		return 1
	}
	cs, err := e.Store.Column(rel.Table, f.Column)
	if err != nil {
		return defaultSelectivity(f.Op)
	}
	return cs.Selectivity(f.Op, f.Value)
}

// Selectivity estimates the fraction of rows passing `col op value`.
func (c *ColumnSketch) Selectivity(op query.CmpOp, v int64) float64 {
	if c.Rows <= 0 {
		return defaultSelectivity(op)
	}
	// Values outside the observed range answer exactly.
	switch {
	case v < c.Min:
		switch op {
		case query.Eq:
			return 0
		case query.Ne:
			return 1
		case query.Lt, query.Le:
			return 0
		default:
			return 1
		}
	case v > c.Max:
		switch op {
		case query.Eq:
			return 0
		case query.Ne:
			return 1
		case query.Lt, query.Le:
			return 1
		default:
			return 0
		}
	}
	switch op {
	case query.Eq:
		return c.fracEQ(v)
	case query.Ne:
		return clamp01(1 - c.fracEQ(v))
	case query.Lt:
		return clamp01(c.Values.FracLT(v))
	case query.Le:
		return clamp01(c.Values.FracLE(v))
	case query.Gt:
		return clamp01(1 - c.Values.FracLE(v))
	case query.Ge:
		return clamp01(1 - c.Values.FracLT(v))
	default:
		return 1
	}
}

// fracEQ reads the equality selectivity off the Count-Min frequency. The
// sketch can only overestimate, so the result is clamped and its bias is
// one-sided — the overestimate-only property the tests pin.
func (c *ColumnSketch) fracEQ(v int64) float64 {
	if c.CM == nil || c.Rows <= 0 {
		return defaultSelectivity(query.Eq)
	}
	return clamp01(float64(c.CM.Count(v)) / float64(c.Rows))
}

// BaseSelectivity estimates the combined selectivity of all filters on an
// alias under the independence assumption.
func (e *Estimator) BaseSelectivity(q *query.Query, alias string) float64 {
	sel := 1.0
	for _, f := range q.FiltersOn(alias) {
		sel *= e.FilterSelectivity(q, f)
	}
	return sel
}

// BaseCard estimates the post-filter cardinality of one relation.
func (e *Estimator) BaseCard(q *query.Query, alias string) float64 {
	rel, ok := q.RelationByAlias(alias)
	if !ok {
		return 0
	}
	rows := float64(e.tableRows(rel.Table))
	card := rows * e.BaseSelectivity(q, alias)
	if card < 1 {
		card = 1
	}
	return card
}

// JoinSelectivity estimates the selectivity of a single equality join
// predicate as 1/max(NDV_left, NDV_right), NDVs read off HyperLogLog.
func (e *Estimator) JoinSelectivity(q *query.Query, j query.Join) float64 {
	l := e.ndv(q, j.LeftAlias, j.LeftCol)
	r := e.ndv(q, j.RightAlias, j.RightCol)
	m := max(l, r)
	if m <= 0 {
		return 1
	}
	return 1 / float64(m)
}

// SubsetCard estimates the cardinality of joining the given set of
// aliases, applying every join predicate fully contained in the set.
func (e *Estimator) SubsetCard(q *query.Query, aliases map[string]bool) float64 {
	card := 1.0
	for a := range aliases {
		card *= e.BaseCard(q, a)
	}
	for _, j := range q.Joins {
		if aliases[j.LeftAlias] && aliases[j.RightAlias] {
			card *= e.JoinSelectivity(q, j)
		}
	}
	if card < 1 {
		card = 1
	}
	return card
}

// TableRows reports the sketched (or cataloged) row count of a table.
func (e *Estimator) TableRows(table string) int64 { return e.tableRows(table) }

func (e *Estimator) tableRows(table string) int64 {
	if ts := e.Store.Table(table); ts != nil && ts.Rows > 0 {
		return ts.Rows
	}
	if t, err := e.Cat.Table(table); err == nil {
		return t.Rows
	}
	return 1
}

func (e *Estimator) ndv(q *query.Query, alias, col string) int64 {
	rel, ok := q.RelationByAlias(alias)
	if !ok {
		return 0
	}
	cs, err := e.Store.Column(rel.Table, col)
	if err != nil || cs.HLL == nil {
		return 0
	}
	return cs.HLL.Distinct()
}

// defaultSelectivity mirrors stats.Estimator's textbook fallbacks when
// sketches are missing: 0.005 for equality, 1/3 for ranges.
func defaultSelectivity(op query.CmpOp) float64 {
	switch op {
	case query.Eq:
		return 0.005
	case query.Ne:
		return 0.995
	default:
		return 1.0 / 3.0
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
