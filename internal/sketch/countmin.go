package sketch

import "fmt"

// Default Count-Min dimensions: depth 4 bounds the failure probability at
// e^-4 ≈ 1.8%, width 2048 bounds the overestimate at (e/2048)·N ≈ 0.13% of
// the stream length — small against the equality selectivities it feeds.
const (
	DefaultCMDepth = 4
	DefaultCMWidth = 2048
)

// CountMin is a Count-Min frequency sketch (Cormode & Muthukrishnan 2005):
// Depth independent hash rows of Width counters each; an item's estimate is
// the minimum of its counters, which can only overestimate the true count
// (every counter the item touches holds its count plus whatever collided).
// Merging equal-dimension sketches is the element-wise counter sum and is
// exact in the same sense as HLL merge: merge(A,B) equals the sketch of the
// concatenated streams, because the row hash for row i depends only on i.
type CountMin struct {
	Width int
	// Counts holds Depth rows of Width counters.
	Counts [][]uint64
	// Items is the total weight added (the stream length N in the error
	// bound εN).
	Items uint64
}

// NewCountMin builds an empty sketch; non-positive dimensions fall back to
// the defaults.
func NewCountMin(depth, width int) *CountMin {
	if depth <= 0 {
		depth = DefaultCMDepth
	}
	if width <= 0 {
		width = DefaultCMWidth
	}
	c := &CountMin{Width: width, Counts: make([][]uint64, depth)}
	for i := range c.Counts {
		c.Counts[i] = make([]uint64, width)
	}
	return c
}

// rowIndex hashes v for row i. The seed is derived from the row index
// alone, so any two sketches with equal dimensions hash identically and
// are therefore mergeable.
func (c *CountMin) rowIndex(i int, v int64) int {
	h := mix64(uint64(v) ^ mix64(uint64(i)+0xc0117e57))
	return int(h % uint64(c.Width))
}

// Add observes v with weight n.
func (c *CountMin) Add(v int64, n uint64) {
	for i := range c.Counts {
		c.Counts[i][c.rowIndex(i, v)] += n
	}
	c.Items += n
}

// Count estimates how many times v was added: min over rows, an
// overestimate-only bound (never below the true count).
func (c *CountMin) Count(v int64) uint64 {
	var est uint64
	for i := range c.Counts {
		n := c.Counts[i][c.rowIndex(i, v)]
		if i == 0 || n < est {
			est = n
		}
	}
	return est
}

// Merge folds other into c (element-wise counter sum). Dimensions must
// match.
func (c *CountMin) Merge(other *CountMin) error {
	if other == nil {
		return nil
	}
	if c.Width != other.Width || len(c.Counts) != len(other.Counts) {
		return fmt.Errorf("sketch: cannot merge CountMin %dx%d with %dx%d", len(c.Counts), c.Width, len(other.Counts), other.Width)
	}
	for i := range c.Counts {
		for j := range c.Counts[i] {
			c.Counts[i][j] += other.Counts[i][j]
		}
	}
	c.Items += other.Items
	return nil
}
