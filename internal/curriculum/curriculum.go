// Package curriculum implements §5.3 of the paper: incremental learning.
// A schedule is a sequence of training phases, each restricting either the
// pipeline stages the agent controls (Figure 8), the relation counts of the
// training queries (Figure 9), or both (the hybrid of Figure 7). Between
// phases the policy network is carried forward, with output-layer surgery
// when the action space grows.
package curriculum

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"handsfree/internal/engine"
	"handsfree/internal/featurize"
	"handsfree/internal/optimizer"
	"handsfree/internal/plancache"
	"handsfree/internal/planspace"
	"handsfree/internal/query"
	"handsfree/internal/rl"
)

// Phase is one curriculum step.
type Phase struct {
	// Name labels the phase in reports.
	Name string
	// Stages selects the pipeline prefix the agent controls.
	Stages planspace.Stages
	// MaxRelations filters the workload to queries with at most this many
	// relations (0 = no limit).
	MaxRelations int
	// Episodes is the training budget of the phase.
	Episodes int
}

// Schedule is a full curriculum.
type Schedule []Phase

// PipelineSchedule trains the pipeline stages one prefix at a time on the
// full workload (§5.3.1 / Figure 8).
func PipelineSchedule(episodesPerPhase int) Schedule {
	var s Schedule
	for k := 1; k <= planspace.NumStages; k++ {
		s = append(s, Phase{
			Name:     fmt.Sprintf("pipeline-%d", k),
			Stages:   planspace.StagePrefix(k),
			Episodes: episodesPerPhase,
		})
	}
	return s
}

// RelationsSchedule trains the full pipeline on queries of growing relation
// count (§5.3.2 / Figure 9).
func RelationsSchedule(episodesPerPhase int, relationSteps []int) Schedule {
	var s Schedule
	full := planspace.StagePrefix(planspace.NumStages)
	for _, n := range relationSteps {
		s = append(s, Phase{
			Name:         fmt.Sprintf("relations-%d", n),
			Stages:       full,
			MaxRelations: n,
			Episodes:     episodesPerPhase,
		})
	}
	return s
}

// HybridSchedule grows the pipeline and the relation count together, then
// keeps growing relations (§5.3.3).
func HybridSchedule(episodesPerPhase int, maxRelations int) Schedule {
	var s Schedule
	rel := 2
	for k := 1; k <= planspace.NumStages; k++ {
		s = append(s, Phase{
			Name:         fmt.Sprintf("hybrid-s%d-r%d", k, rel),
			Stages:       planspace.StagePrefix(k),
			MaxRelations: rel,
			Episodes:     episodesPerPhase,
		})
		if rel < maxRelations {
			rel++
		}
	}
	for rel < maxRelations {
		rel++
		s = append(s, Phase{
			Name:         fmt.Sprintf("hybrid-s%d-r%d", planspace.NumStages, rel),
			Stages:       planspace.StagePrefix(planspace.NumStages),
			MaxRelations: rel,
			Episodes:     episodesPerPhase,
		})
	}
	return s
}

// FlatSchedule is the §4 naive baseline: the full pipeline and the full
// workload from the first episode.
func FlatSchedule(episodes int) Schedule {
	return Schedule{{
		Name:     "flat-full-space",
		Stages:   planspace.StagePrefix(planspace.NumStages),
		Episodes: episodes,
	}}
}

// TotalEpisodes sums the schedule's training budget.
func (s Schedule) TotalEpisodes() int {
	total := 0
	for _, p := range s {
		total += p.Episodes
	}
	return total
}

// Config assembles a curriculum trainer.
type Config struct {
	Space   *featurize.Space
	Planner *optimizer.Planner
	Latency *engine.LatencyModel
	// Queries is the full workload; phases filter it by relation count.
	Queries []*query.Query
	// Agent configures the policy learner (rebuilt per phase with weights
	// transferred).
	Agent rl.ReinforceConfig
	// Workers > 1 collects training episodes with that many parallel
	// environment replicas per phase (frozen policy snapshots, one
	// policy-batch per collection round, deterministic merge). Workers ≤ 1
	// trains strictly sequentially.
	Workers int
	// Async switches parallel collection (Workers > 1) from the
	// round-synchronous barrier to the asynchronous actor-learner split:
	// actors collect continuously against lock-free parameter-server
	// snapshots while the learner updates and republishes. Higher
	// throughput, but episode order becomes scheduling-dependent; leave it
	// off when bitwise reproducibility matters.
	Async bool
	// Staleness bounds how many snapshot versions an async actor's policy
	// may lag the learner (0 = the rl.AsyncConfig default of 4). Ignored
	// unless Async.
	Staleness int
	// AdaptStaleness lets the async learner shrink the staleness bound
	// below Staleness while it outpaces the actors (see
	// rl.AsyncConfig.AdaptStaleness). Ignored unless Async.
	AdaptStaleness bool
	// Cache, when non-nil, memoizes optimizer completions and expert plans
	// across episodes and phases (the plan cache service). Completion
	// entries are pure and survive phase transitions; policy-dependent
	// entries are invalidated whenever the policy is transferred to a new
	// action space or fresh collection snapshots are taken.
	Cache *plancache.Cache
	Seed  int64
}

// Trainer runs a schedule.
type Trainer struct {
	Cfg Config

	agent  *rl.Reinforce
	stages planspace.Stages
	env    *planspace.Env
	rng    *rand.Rand
}

// NewTrainer builds a trainer. With a cache configured, the trainer's
// planner consults it too, so the per-query expert plans recomputed by
// every EvalRatio call are served from cache after the first evaluation.
func NewTrainer(cfg Config) *Trainer {
	if cfg.Cache != nil {
		cfg.Planner = cfg.Planner.WithCache(cfg.Cache)
	}
	return &Trainer{Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// PhaseResult reports one finished phase.
type PhaseResult struct {
	Phase Phase
	// QueryCount is the number of workload queries the phase trained on.
	QueryCount int
	// FinalRatio is the mean greedy cost ratio versus the expert on the
	// phase's own workload after training.
	FinalRatio float64
}

// filterQueries applies the phase's relation bound.
func (t *Trainer) filterQueries(p Phase) []*query.Query {
	if p.MaxRelations == 0 {
		return t.Cfg.Queries
	}
	var out []*query.Query
	for _, q := range t.Cfg.Queries {
		if len(q.Relations) <= p.MaxRelations {
			out = append(out, q)
		}
	}
	return out
}

// envFor builds the phase environment.
func (t *Trainer) envFor(p Phase, queries []*query.Query) *planspace.Env {
	return planspace.NewEnv(planspace.Config{
		Space:   t.Cfg.Space,
		Stages:  p.Stages,
		Planner: t.Cfg.Planner,
		Latency: t.Cfg.Latency,
		Queries: queries,
		Reward:  planspace.CostReward,
		Cache:   t.Cfg.Cache,
		Seed:    t.Cfg.Seed,
	})
}

// RunPhase trains one phase, transferring the policy across action-space
// changes, and returns the phase report. onEpisode (optional) observes every
// training episode with the cumulative episode index.
func (t *Trainer) RunPhase(p Phase, episodeBase int, onEpisode func(ep int, out planspace.Outcome)) (PhaseResult, error) {
	return t.RunPhaseCtx(context.Background(), p, episodeBase, onEpisode)
}

// RunPhaseCtx is RunPhase under a request-scoped context: cancellation stops
// training between episodes (sequential), between collection rounds
// (parallel), or through rl.TrainAsyncCtx (async) and returns ctx.Err().
func (t *Trainer) RunPhaseCtx(ctx context.Context, p Phase, episodeBase int, onEpisode func(ep int, out planspace.Outcome)) (PhaseResult, error) {
	queries := t.filterQueries(p)
	if len(queries) == 0 {
		return PhaseResult{}, fmt.Errorf("curriculum: phase %s has no queries (max relations %d)", p.Name, p.MaxRelations)
	}
	env := t.envFor(p, queries)

	if t.agent == nil {
		t.agent = rl.NewReinforce(env.ObsDim(), env.ActionDim(), t.Cfg.Agent)
	} else if t.stages != p.Stages {
		// Carry the policy across the action-space change. The Adam state is
		// keyed per parameter, so the surgically replaced output layer
		// naturally starts with fresh optimizer state. Pending trajectories
		// recorded under the old action space must be dropped.
		t.agent.ResetBatch()
		t.agent.Policy = planspace.TransferPolicy(t.agent.Policy, t.Cfg.Space, t.stages, p.Stages, t.rng)
		// The transferred policy is a new policy: invalidate any plans
		// memoized under the old one.
		t.Cfg.Cache.BumpEpoch()
	}
	t.stages = p.Stages
	t.env = env

	if t.Cfg.Workers > 1 && t.Cfg.Async {
		// Async actor-learner split: no round barrier; the learner updates
		// and republishes while actors keep collecting against bounded-
		// staleness snapshots.
		planspace.TrainAsyncCtx(ctx, env, t.agent, p.Episodes, rl.AsyncConfig{
			Actors:         t.Cfg.Workers,
			Staleness:      t.Cfg.Staleness,
			AdaptStaleness: t.Cfg.AdaptStaleness,
			Seed:           t.Cfg.Seed,
		}, func(i int, rec planspace.EpisodeRecord) {
			if onEpisode != nil {
				onEpisode(episodeBase+i, rec.Out)
			}
		})
		if err := ctx.Err(); err != nil {
			return PhaseResult{}, err
		}
	} else if t.Cfg.Workers > 1 {
		// Parallel collection: one policy-batch of episodes per round from
		// frozen policy snapshots, merged deterministically, so the learner
		// updates exactly as often as in sequential training.
		collector := planspace.NewCollector(env, t.Cfg.Workers)
		round := t.agent.Cfg.BatchSize
		if round < 1 {
			round = 1
		}
		for ep := 0; ep < p.Episodes; {
			if err := ctx.Err(); err != nil {
				return PhaseResult{}, err
			}
			n := min(round, p.Episodes-ep)
			for i, rec := range collector.Collect(t.agent, n) {
				t.agent.Observe(rec.Traj)
				if onEpisode != nil {
					onEpisode(episodeBase+ep+i, rec.Out)
				}
			}
			ep += n
		}
	} else {
		for ep := 0; ep < p.Episodes; ep++ {
			if err := ctx.Err(); err != nil {
				return PhaseResult{}, err
			}
			traj := rl.RunEpisode(env, t.agent.Sample, 4*t.Cfg.Space.MaxRels+8)
			t.agent.Observe(traj)
			if onEpisode != nil {
				onEpisode(episodeBase+ep, env.Last)
			}
		}
	}

	ratio, err := t.EvalRatio(queries)
	if err != nil {
		return PhaseResult{}, err
	}
	return PhaseResult{Phase: p, QueryCount: len(queries), FinalRatio: ratio}, nil
}

// Run trains the whole schedule and returns per-phase reports.
func (t *Trainer) Run(s Schedule, onEpisode func(ep int, out planspace.Outcome)) ([]PhaseResult, error) {
	return t.RunCtx(context.Background(), s, onEpisode)
}

// RunCtx is Run under a request-scoped context: cancellation stops the
// schedule mid-phase (see RunPhaseCtx) and returns the phases completed so
// far together with ctx.Err().
func (t *Trainer) RunCtx(ctx context.Context, s Schedule, onEpisode func(ep int, out planspace.Outcome)) ([]PhaseResult, error) {
	var out []PhaseResult
	base := 0
	for _, p := range s {
		res, err := t.RunPhaseCtx(ctx, p, base, onEpisode)
		if err != nil {
			return out, err
		}
		out = append(out, res)
		base += p.Episodes
	}
	return out, nil
}

// EvalRatio evaluates the greedy policy against the traditional optimizer
// on a query set: the geometric mean of per-query cost ratios (robust to a
// single query blowing up).
func (t *Trainer) EvalRatio(queries []*query.Query) (float64, error) {
	if t.agent == nil || t.env == nil {
		return 0, fmt.Errorf("curriculum: no trained agent")
	}
	var logSum float64
	for _, q := range queries {
		out := t.GreedyOutcome(q)
		planned, err := t.Cfg.Planner.Plan(q)
		if err != nil {
			return 0, err
		}
		logSum += math.Log(out.Cost / planned.Cost)
	}
	return math.Exp(logSum / float64(len(queries))), nil
}

// GreedyOutcome plans one query with the current greedy policy.
func (t *Trainer) GreedyOutcome(q *query.Query) planspace.Outcome {
	env := t.env
	s := env.ResetTo(q)
	for !s.Terminal {
		act := t.agent.Greedy(s)
		if act < 0 {
			break
		}
		next, _, done := env.Step(act)
		s = next
		if done {
			break
		}
	}
	return env.Last
}

// Agent exposes the current policy learner (nil before the first phase).
func (t *Trainer) Agent() *rl.Reinforce { return t.agent }
