package curriculum

import (
	"testing"

	"handsfree/internal/cost"
	"handsfree/internal/datagen"
	"handsfree/internal/engine"
	"handsfree/internal/featurize"
	"handsfree/internal/optimizer"
	"handsfree/internal/planspace"
	"handsfree/internal/rl"
	"handsfree/internal/stats"
	"handsfree/internal/workload"
)

func fixtureCfg(t *testing.T, nQueries, minRel, maxRel int) Config {
	t.Helper()
	db, err := datagen.Generate(datagen.Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(db.Catalog, db.Stats)
	model := cost.New(cost.DefaultParams(), est)
	planner := optimizer.New(db.Catalog, model)
	oracle := stats.NewOracle(est, 11)
	lat := engine.NewLatencyModel(oracle, 5)
	w := workload.New(db)
	qs, err := w.Training(nQueries, minRel, maxRel, 21)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Space:   featurize.NewSpace(maxRel, est),
		Planner: planner,
		Latency: lat,
		Queries: qs,
		Agent:   rl.ReinforceConfig{Hidden: []int{32}, BatchSize: 8, Seed: 1},
		Seed:    1,
	}
}

func TestPipelineScheduleShape(t *testing.T) {
	s := PipelineSchedule(100)
	if len(s) != planspace.NumStages {
		t.Fatalf("pipeline schedule has %d phases, want %d", len(s), planspace.NumStages)
	}
	for k, p := range s {
		if p.Stages != planspace.StagePrefix(k+1) {
			t.Fatalf("phase %d stages %+v, want prefix %d", k, p.Stages, k+1)
		}
		if p.MaxRelations != 0 {
			t.Fatalf("pipeline schedule must not restrict relations")
		}
	}
	if s.TotalEpisodes() != 400 {
		t.Fatalf("total episodes %d, want 400", s.TotalEpisodes())
	}
}

func TestRelationsScheduleShape(t *testing.T) {
	s := RelationsSchedule(50, []int{2, 3, 5})
	if len(s) != 3 {
		t.Fatalf("got %d phases", len(s))
	}
	full := planspace.StagePrefix(planspace.NumStages)
	for i, p := range s {
		if p.Stages != full {
			t.Fatalf("phase %d must use the full pipeline", i)
		}
	}
	if s[0].MaxRelations != 2 || s[2].MaxRelations != 5 {
		t.Fatal("relation bounds wrong")
	}
}

func TestHybridScheduleShape(t *testing.T) {
	s := HybridSchedule(10, 7)
	// Pipeline grows for NumStages phases, then relations keep growing.
	if s[0].Stages != planspace.StagePrefix(1) || s[0].MaxRelations != 2 {
		t.Fatalf("first phase %+v", s[0])
	}
	last := s[len(s)-1]
	if last.Stages != planspace.StagePrefix(planspace.NumStages) || last.MaxRelations != 7 {
		t.Fatalf("last phase %+v", last)
	}
	// Relation bound is non-decreasing.
	prev := 0
	for _, p := range s {
		if p.MaxRelations < prev {
			t.Fatal("relation bound decreased")
		}
		prev = p.MaxRelations
	}
}

func TestFlatScheduleShape(t *testing.T) {
	s := FlatSchedule(500)
	if len(s) != 1 || s[0].Stages != planspace.StagePrefix(planspace.NumStages) {
		t.Fatalf("flat schedule %+v", s)
	}
}

func TestTrainerRunsPipelineSchedule(t *testing.T) {
	cfg := fixtureCfg(t, 6, 2, 5)
	tr := NewTrainer(cfg)
	episodes := 0
	results, err := tr.Run(PipelineSchedule(24), func(ep int, out planspace.Outcome) {
		if ep != episodes {
			t.Fatalf("episode index %d, want %d", ep, episodes)
		}
		episodes++
		if out.Cost <= 0 {
			t.Fatalf("episode %d outcome cost %v", ep, out.Cost)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if episodes != 96 {
		t.Fatalf("ran %d episodes, want 96", episodes)
	}
	if len(results) != planspace.NumStages {
		t.Fatalf("got %d phase results", len(results))
	}
	for _, r := range results {
		if r.FinalRatio <= 0 {
			t.Fatalf("phase %s ratio %v", r.Phase.Name, r.FinalRatio)
		}
	}
}

func TestTrainerTransfersAcrossStages(t *testing.T) {
	cfg := fixtureCfg(t, 4, 3, 4)
	tr := NewTrainer(cfg)
	if _, err := tr.RunPhase(Phase{Name: "p1", Stages: planspace.StagePrefix(1), Episodes: 8}, 0, nil); err != nil {
		t.Fatal(err)
	}
	dim1 := tr.Agent().Policy.OutDim()
	if _, err := tr.RunPhase(Phase{Name: "p3", Stages: planspace.StagePrefix(3), Episodes: 8}, 8, nil); err != nil {
		t.Fatal(err)
	}
	dim3 := tr.Agent().Policy.OutDim()
	if dim3 <= dim1 {
		t.Fatalf("action space did not grow: %d → %d", dim1, dim3)
	}
}

func TestRelationFilter(t *testing.T) {
	cfg := fixtureCfg(t, 10, 2, 6)
	tr := NewTrainer(cfg)
	qs := tr.filterQueries(Phase{MaxRelations: 3})
	for _, q := range qs {
		if len(q.Relations) > 3 {
			t.Fatalf("query %s has %d relations under a 3-relation bound", q.Name, len(q.Relations))
		}
	}
	if len(qs) == 0 {
		t.Fatal("filter removed every query")
	}
	if len(tr.filterQueries(Phase{})) != 10 {
		t.Fatal("unbounded filter must keep all queries")
	}
}

func TestEmptyPhaseErrors(t *testing.T) {
	cfg := fixtureCfg(t, 4, 5, 6)
	tr := NewTrainer(cfg)
	if _, err := tr.RunPhase(Phase{Name: "empty", MaxRelations: 1, Episodes: 4}, 0, nil); err == nil {
		t.Fatal("phase with no queries should error")
	}
}

func TestHybridRunsEndToEnd(t *testing.T) {
	cfg := fixtureCfg(t, 8, 2, 5)
	tr := NewTrainer(cfg)
	results, err := tr.Run(HybridSchedule(10, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < planspace.NumStages {
		t.Fatalf("hybrid produced %d phases", len(results))
	}
}

// TestTrainerParallelWorkers runs a schedule with parallel episode
// collection and checks episode accounting, outcome validity, and
// run-to-run determinism of the phase results.
func TestTrainerParallelWorkers(t *testing.T) {
	run := func() []PhaseResult {
		cfg := fixtureCfg(t, 6, 2, 5)
		cfg.Workers = 3
		tr := NewTrainer(cfg)
		episodes := 0
		results, err := tr.Run(PipelineSchedule(24), func(ep int, out planspace.Outcome) {
			if ep != episodes {
				t.Fatalf("episode index %d, want %d", ep, episodes)
			}
			episodes++
			if out.Cost <= 0 {
				t.Fatalf("episode %d outcome cost %v", ep, out.Cost)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if episodes != 96 {
			t.Fatalf("ran %d episodes, want 96", episodes)
		}
		return results
	}
	a, b := run(), run()
	for i := range a {
		if a[i].FinalRatio != b[i].FinalRatio {
			t.Fatalf("phase %d: ratio %v vs %v across identical parallel runs",
				i, a[i].FinalRatio, b[i].FinalRatio)
		}
		if a[i].FinalRatio <= 0 {
			t.Fatalf("phase %s ratio %v", a[i].Phase.Name, a[i].FinalRatio)
		}
	}
}

// TestTrainerAsyncWorkers runs a schedule with the asynchronous
// actor-learner split and checks episode accounting across phases, outcome
// validity, and that the learner converges to a usable policy. Unlike the
// synchronous path, per-run bitwise determinism is not promised.
func TestTrainerAsyncWorkers(t *testing.T) {
	cfg := fixtureCfg(t, 6, 2, 5)
	cfg.Workers = 3
	cfg.Async = true
	cfg.Staleness = 2
	tr := NewTrainer(cfg)
	episodes := 0
	results, err := tr.Run(PipelineSchedule(24), func(ep int, out planspace.Outcome) {
		if ep != episodes {
			t.Fatalf("episode index %d, want %d", ep, episodes)
		}
		episodes++
		if out.Cost <= 0 {
			t.Fatalf("episode %d outcome cost %v", ep, out.Cost)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if episodes != 96 {
		t.Fatalf("ran %d episodes, want 96", episodes)
	}
	if len(results) != planspace.NumStages {
		t.Fatalf("async run produced %d phases, want %d", len(results), planspace.NumStages)
	}
	for _, r := range results {
		if r.FinalRatio <= 0 {
			t.Fatalf("phase %s ratio %v", r.Phase.Name, r.FinalRatio)
		}
	}
	if tr.Agent() == nil || tr.Agent().Updates == 0 {
		t.Fatal("async curriculum never updated the policy")
	}
}
