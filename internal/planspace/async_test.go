package planspace

import (
	"testing"

	"handsfree/internal/rl"
)

// TestTrainAsyncCollectsAndLearns: the async split over the plan-space MDP
// must honor the episode budget, deliver complete outcomes, update the
// learner, and respect the staleness bound.
func TestTrainAsyncCollectsAndLearns(t *testing.T) {
	f := fixture(t, 4, 3, 4)
	env := f.env(StagePrefix(2), CostReward, false)
	agent := rl.NewReinforce(env.ObsDim(), env.ActionDim(), rl.ReinforceConfig{Hidden: []int{16}, BatchSize: 8, Seed: 5})
	n := 0
	stats := TrainAsync(env, agent, 32, rl.AsyncConfig{Actors: 3, Staleness: 2}, func(i int, rec EpisodeRecord) {
		if i != n {
			t.Errorf("episode index %d, want %d", i, n)
		}
		n++
		if rec.Out.Plan == nil || rec.Query == nil {
			t.Errorf("episode %d has no plan/query", i)
		}
		if len(rec.Traj.Steps) == 0 {
			t.Errorf("episode %d has an empty trajectory", i)
		}
	})
	if n != 32 || stats.Episodes != 32 {
		t.Fatalf("observed %d episodes (stats %d), want 32", n, stats.Episodes)
	}
	if agent.Updates == 0 {
		t.Fatal("learner never updated")
	}
	if stats.MaxLag > 2 {
		t.Fatalf("staleness bound violated: MaxLag %d > 2", stats.MaxLag)
	}
}

// TestTrainAsyncFoldsExecutionCounters: §4-style timeout statistics must
// survive async collection exactly as they survive the synchronous rounds.
func TestTrainAsyncFoldsExecutionCounters(t *testing.T) {
	f := fixture(t, 3, 3, 3)
	env := f.env(StagePrefix(1), LatencyReward, true)
	agent := rl.NewReinforce(env.ObsDim(), env.ActionDim(), rl.ReinforceConfig{Hidden: []int{16}, Seed: 6})
	TrainAsync(env, agent, 8, rl.AsyncConfig{Actors: 2, Staleness: 2}, nil)
	if env.Executions != 8 {
		t.Fatalf("base env folded %d executions, want 8", env.Executions)
	}
}
