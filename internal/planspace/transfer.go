package planspace

import (
	"math/rand"

	"handsfree/internal/featurize"
	"handsfree/internal/nn"
)

// TransferPolicy adapts a policy network trained under oldStages to the
// action space of newStages (§5.3's "the action space can be extended"):
// hidden layers are kept verbatim, and output-layer weights are remapped
// action-by-action wherever an old action has a counterpart in the new
// layout (a join pair keeps its weights across the 1→3 algorithm expansion,
// with each algorithm variant initialized from the old pair weights).
// Actions with no counterpart keep fresh Xavier weights. The surgery runs in
// the network's own precision: an f32 policy transfers without ever widening
// its weights to float64.
func TransferPolicy(old *nn.Network, space *featurize.Space, oldStages, newStages Stages, rng *rand.Rand) *nn.Network {
	if old.Precision() == nn.F32 {
		return nn.WrapNet32(transferPolicyT(old.F32(), space, oldStages, newStages, rng))
	}
	return nn.WrapNet64(transferPolicyT(old.F64(), space, oldStages, newStages, rng))
}

// transferPolicyT is the precision-generic transfer surgery.
func transferPolicyT[T nn.Float](old *nn.NetOf[T], space *featurize.Space, oldStages, newStages Stages, rng *rand.Rand) *nn.NetOf[T] {
	oldLayout := Layout{Space: space, Stages: oldStages}
	newLayout := Layout{Space: space, Stages: newStages}

	net := old.Clone()
	if oldStages == newStages {
		return net
	}
	oldOut := oldLayout.ActionDim()
	newOut := newLayout.ActionDim()

	// Capture the output layer's weights before surgery.
	outLin := lastLinear(net)
	if outLin == nil {
		return net
	}
	oldW := append([]T(nil), outLin.W.Value...)
	oldB := append([]T(nil), outLin.B.Value...)

	net.ResizeOutput(newOut, rng)
	newLin := lastLinear(net)

	copyAction := func(oldA, newA int) {
		if oldA < 0 || oldA >= oldOut || newA < 0 || newA >= newOut {
			return
		}
		for r := 0; r < newLin.In; r++ {
			newLin.W.Value[r*newOut+newA] = oldW[r*oldOut+oldA]
		}
		newLin.B.Value[newA] = oldB[oldA]
	}

	// Join block: every (pair, algo) inherits from its old counterpart, or
	// from the pair's single variant when the block expanded.
	pairCount := space.ActionDim()
	for pair := 0; pair < pairCount; pair++ {
		for algo := 0; algo < newLayout.JoinAlgoCount(); algo++ {
			oldAlgo := algo
			if oldAlgo >= oldLayout.JoinAlgoCount() {
				oldAlgo = 0
			}
			copyAction(pair*oldLayout.JoinAlgoCount()+oldAlgo, pair*newLayout.JoinAlgoCount()+algo)
		}
	}
	// Access block.
	if oldLayout.Stages.AccessPaths && newLayout.Stages.AccessPaths {
		for i := 0; i < numAccessChoices; i++ {
			copyAction(oldLayout.AccessOffset()+i, newLayout.AccessOffset()+i)
		}
	}
	// Agg block.
	if oldLayout.Stages.AggOps && newLayout.Stages.AggOps {
		for i := 0; i < 2; i++ {
			copyAction(oldLayout.AggOffset()+i, newLayout.AggOffset()+i)
		}
	}
	return net
}

// lastLinear returns the network's final Linear layer (nil if none).
func lastLinear[T nn.Float](net *nn.NetOf[T]) *nn.LinearOf[T] {
	for i := len(net.Layers) - 1; i >= 0; i-- {
		if lin, ok := net.Layers[i].(*nn.LinearOf[T]); ok {
			return lin
		}
	}
	return nil
}
