package planspace

import (
	"math"
	"math/rand"
	"testing"

	"handsfree/internal/cost"
	"handsfree/internal/datagen"
	"handsfree/internal/engine"
	"handsfree/internal/featurize"
	"handsfree/internal/nn"
	"handsfree/internal/optimizer"
	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/rl"
	"handsfree/internal/stats"
	"handsfree/internal/workload"
)

type fx struct {
	planner *optimizer.Planner
	est     *stats.Estimator
	lat     *engine.LatencyModel
	queries []*query.Query
	space   *featurize.Space
}

func fixture(t *testing.T, nQueries, minRel, maxRel int) fx {
	t.Helper()
	db, err := datagen.Generate(datagen.Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(db.Catalog, db.Stats)
	model := cost.New(cost.DefaultParams(), est)
	planner := optimizer.New(db.Catalog, model)
	oracle := stats.NewOracle(est, 11)
	lat := engine.NewLatencyModel(oracle, 5)
	w := workload.New(db)
	qs, err := w.Training(nQueries, minRel, maxRel, 9)
	if err != nil {
		t.Fatal(err)
	}
	return fx{planner: planner, est: est, lat: lat, queries: qs, space: featurize.NewSpace(maxRel, est)}
}

func (f fx) env(stages Stages, reward RewardFunc, needsLat bool) *Env {
	return NewEnv(Config{
		Space:              f.space,
		Stages:             stages,
		Planner:            f.planner,
		Latency:            f.lat,
		Queries:            f.queries,
		Reward:             reward,
		RewardNeedsLatency: needsLat,
		Seed:               3,
	})
}

func runRandomEpisode(t *testing.T, env *Env, seed int64) Outcome {
	t.Helper()
	pol := rl.RandomPolicy(seed)
	s := env.Reset()
	for steps := 0; !s.Terminal && steps < 100; steps++ {
		a := pol(s)
		if a < 0 {
			t.Fatal("no valid action")
		}
		next, _, done := env.Step(a)
		s = next
		if done {
			break
		}
	}
	if env.Last.Plan == nil {
		t.Fatal("episode finished without a plan")
	}
	return env.Last
}

func TestStagePrefix(t *testing.T) {
	if StagePrefix(1) != (Stages{}) {
		t.Fatal("stage 1 should control join order only")
	}
	if StagePrefix(2) != (Stages{AccessPaths: true}) {
		t.Fatal("stage 2 adds access paths")
	}
	if StagePrefix(4) != (Stages{AccessPaths: true, JoinOps: true, AggOps: true}) {
		t.Fatal("stage 4 is the full pipeline")
	}
}

func TestActionDimGrowsWithStages(t *testing.T) {
	space := featurize.NewSpace(6, nil)
	prev := 0
	for k := 1; k <= NumStages; k++ {
		l := Layout{Space: space, Stages: StagePrefix(k)}
		if l.ActionDim() <= prev {
			t.Fatalf("stage %d action dim %d not larger than stage %d (%d)", k, l.ActionDim(), k-1, prev)
		}
		prev = l.ActionDim()
	}
}

func TestEpisodesFinishAtEveryStage(t *testing.T) {
	f := fixture(t, 4, 4, 5)
	for k := 1; k <= NumStages; k++ {
		env := f.env(StagePrefix(k), CostReward, false)
		for ep := 0; ep < 8; ep++ {
			out := runRandomEpisode(t, env, int64(k*100+ep))
			if out.Cost <= 0 || math.IsInf(out.Cost, 1) {
				t.Fatalf("stage %d: bad cost %v", k, out.Cost)
			}
			leaves := plan.Leaves(out.Plan)
			if len(leaves) != len(env.Current().Relations) {
				t.Fatalf("stage %d: %d leaves, want %d", k, len(leaves), len(env.Current().Relations))
			}
		}
	}
}

func TestJoinOpsStageControlsAlgorithms(t *testing.T) {
	f := fixture(t, 2, 4, 4)
	env := f.env(Stages{AccessPaths: true, JoinOps: true}, CostReward, false)
	// Drive an episode always picking the first valid action; with JoinOps
	// the first valid join action for a pair is algorithm variant 0 =
	// NestLoop — the final plan's joins must all be nested loops.
	s := env.Reset()
	for !s.Terminal {
		a := -1
		for i, ok := range s.Mask {
			if ok {
				a = i
				break
			}
		}
		next, _, done := env.Step(a)
		s = next
		if done {
			break
		}
	}
	sawJoin := false
	plan.Walk(env.Last.Plan, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok {
			sawJoin = true
			if j.Algo != plan.NestLoop {
				t.Fatalf("join algo %v, want NestLoop (agent-controlled)", j.Algo)
			}
		}
	})
	if !sawJoin {
		t.Fatal("plan has no joins")
	}
}

func TestAccessStageControlsScans(t *testing.T) {
	f := fixture(t, 2, 4, 4)
	env := f.env(Stages{AccessPaths: true}, CostReward, false)
	s := env.Reset()
	q := env.Current()
	// Choose AccessSeq for every relation (action offset+0 is always valid).
	for i := 0; i < len(q.Relations); i++ {
		next, _, _ := env.Step(env.Layout.AccessOffset() + AccessSeq)
		s = next
	}
	// Finish joins randomly.
	pol := rl.RandomPolicy(1)
	for !s.Terminal {
		a := pol(s)
		next, _, done := env.Step(a)
		s = next
		if done {
			break
		}
	}
	for _, l := range plan.Leaves(env.Last.Plan) {
		if l.Access != plan.SeqScan {
			t.Fatalf("leaf %s access %v, want SeqScan (agent chose seq)", l.Alias, l.Access)
		}
	}
}

func TestLatencyRewardExecutes(t *testing.T) {
	f := fixture(t, 3, 4, 4)
	env := f.env(Stages{}, LatencyReward, true)
	runRandomEpisode(t, env, 7)
	if env.Executions != 1 {
		t.Fatalf("executions = %d, want 1", env.Executions)
	}
	if math.IsNaN(env.Last.LatencyMs) {
		t.Fatal("latency reward episode has NaN latency")
	}
}

func TestCostRewardDoesNotExecute(t *testing.T) {
	f := fixture(t, 3, 4, 4)
	env := f.env(Stages{}, CostReward, false)
	runRandomEpisode(t, env, 7)
	if env.Executions != 0 {
		t.Fatalf("cost-reward episode executed %d times, want 0", env.Executions)
	}
}

func TestLatencyBudgetTimeouts(t *testing.T) {
	f := fixture(t, 4, 6, 7)
	env := f.env(Stages{}, LatencyReward, true)
	env.Cfg.LatencyBudgetMs = 1 // absurdly tight: everything times out
	for ep := 0; ep < 5; ep++ {
		runRandomEpisode(t, env, int64(ep))
	}
	if env.TimedOutCount == 0 {
		t.Fatal("no timeouts under a 1ms budget")
	}
}

func TestExpertReplayMatchesExpertCost(t *testing.T) {
	f := fixture(t, 4, 4, 6)
	for k := 1; k <= NumStages; k++ {
		env := f.env(StagePrefix(k), CostReward, false)
		for _, q := range f.queries {
			planned, err := f.planner.PlanWith(q, optimizer.DP)
			if err != nil {
				t.Fatal(err)
			}
			traj, out, err := env.Replay(q, planned.Root)
			if err != nil {
				t.Fatalf("stage %d, query %s: %v", k, q.Name, err)
			}
			if len(traj.Steps) == 0 {
				t.Fatalf("stage %d: empty trace", k)
			}
			// With all stages enabled the replayed plan reproduces the expert
			// decisions in the controlled dimensions; its cost must not be
			// wildly different (completion may improve uncontrolled dims).
			ratio := out.Cost / planned.Cost
			if ratio < 0.49 || ratio > 2.01 {
				t.Fatalf("stage %d, query %s: replayed cost %.1f vs expert %.1f (ratio %.2f)",
					k, q.Name, out.Cost, planned.Cost, ratio)
			}
		}
	}
}

func TestExpertReplayFullStagesExact(t *testing.T) {
	f := fixture(t, 4, 4, 6)
	env := f.env(StagePrefix(4), CostReward, false)
	for _, q := range f.queries {
		planned, err := f.planner.PlanWith(q, optimizer.DP)
		if err != nil {
			t.Fatal(err)
		}
		_, out, err := env.Replay(q, planned.Root)
		if err != nil {
			t.Fatal(err)
		}
		// All four dimensions agent-controlled: join order, access paths and
		// operators match the expert exactly, so costs agree to rounding.
		if math.Abs(out.Cost/planned.Cost-1) > 0.05 {
			t.Fatalf("query %s: full-stage replay cost %.1f vs expert %.1f", q.Name, out.Cost, planned.Cost)
		}
	}
}

func TestTransferPolicyPreservesHiddenLayers(t *testing.T) {
	f := fixture(t, 2, 4, 4)
	rng := rand.New(rand.NewSource(1))
	oldStages := StagePrefix(1)
	newStages := StagePrefix(3)
	oldLayout := Layout{Space: f.space, Stages: oldStages}
	newLayout := Layout{Space: f.space, Stages: newStages}
	old := nn.NewMLP(rng, oldLayout.ObsDim(), 32, oldLayout.ActionDim())
	transferred := TransferPolicy(old, f.space, oldStages, newStages, rng)

	if transferred.OutDim() != newLayout.ActionDim() {
		t.Fatalf("transferred out dim %d, want %d", transferred.OutDim(), newLayout.ActionDim())
	}
	// First hidden layer identical.
	ow := old.F64().Layers[0].(*nn.Linear).W.Value
	tw := transferred.F64().Layers[0].(*nn.Linear).W.Value
	for i := range ow {
		if ow[i] != tw[i] {
			t.Fatal("hidden layer weights changed during transfer")
		}
	}
}

func TestTransferPolicyRemapsJoinBlock(t *testing.T) {
	f := fixture(t, 2, 4, 4)
	rng := rand.New(rand.NewSource(2))
	oldStages := StagePrefix(1) // 1 algo variant
	newStages := StagePrefix(3) // 3 algo variants
	oldLayout := Layout{Space: f.space, Stages: oldStages}
	old := nn.NewMLP(rng, oldLayout.ObsDim(), 16, oldLayout.ActionDim())
	transferred := TransferPolicy(old, f.space, oldStages, newStages, rng)

	oldLin := old.F64().Layers[len(old.F64().Layers)-1].(*nn.Linear)
	newLin := transferred.F64().Layers[len(transferred.F64().Layers)-1].(*nn.Linear)
	// Pair 5's single variant should seed all three variants of pair 5.
	pair := 5
	for algo := 0; algo < 3; algo++ {
		for r := 0; r < newLin.In; r++ {
			want := oldLin.W.Value[r*oldLin.Out+pair]
			got := newLin.W.Value[r*newLin.Out+(pair*3+algo)]
			if want != got {
				t.Fatalf("pair %d algo %d weight not inherited", pair, algo)
			}
		}
	}
}

func TestMaskAlwaysHasValidAction(t *testing.T) {
	f := fixture(t, 6, 4, 7)
	for k := 1; k <= NumStages; k++ {
		env := f.env(StagePrefix(k), CostReward, false)
		pol := rl.RandomPolicy(int64(k))
		for ep := 0; ep < len(f.queries); ep++ {
			s := env.Reset()
			for steps := 0; !s.Terminal && steps < 100; steps++ {
				if s.NumValid() == 0 {
					t.Fatalf("stage %d: no valid action at step %d", k, steps)
				}
				next, _, done := env.Step(pol(s))
				s = next
				if done {
					break
				}
			}
		}
	}
}
