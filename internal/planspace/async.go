package planspace

import (
	"context"
	"runtime"

	"handsfree/internal/rl"
)

// TrainAsync trains agent over the environment with the asynchronous
// actor-learner split (rl.TrainAsync): cfg.Actors replicas of base
// continuously collect episodes against lock-free policy snapshots while the
// learner drains trajectories, applies policy-batch updates, and
// republishes. onEpisode (optional) observes every consumed episode in
// consumption order — a scheduling-dependent order; Collector.Collect is the
// deterministic round-synchronous alternative.
//
// The configured Reward must be a pure function of the outcome (CostReward
// and LatencyReward are), exactly as for Replica-based parallel collection.
// Every snapshot publish advances the shared plan cache's policy epoch, so
// ModeGreedyPolicy entries from older snapshots can never be served; the
// replicas' execution counters are folded back into base when training
// returns, so §4-style timeout statistics survive async collection.
func TrainAsync(base *Env, agent *rl.Reinforce, episodes int, cfg rl.AsyncConfig,
	onEpisode func(i int, rec EpisodeRecord)) rl.AsyncStats {
	return TrainAsyncCtx(context.Background(), base, agent, episodes, cfg, onEpisode)
}

// TrainAsyncCtx is TrainAsync under a request-scoped context: cancellation
// stops the learner, drains the actors, and returns early with
// AsyncStats.Episodes < episodes (see rl.TrainAsyncCtx). The replicas'
// execution counters are folded back into base in every case.
func TrainAsyncCtx(ctx context.Context, base *Env, agent *rl.Reinforce, episodes int, cfg rl.AsyncConfig,
	onEpisode func(i int, rec EpisodeRecord)) rl.AsyncStats {
	if cfg.Actors < 1 {
		// Same default rl.TrainAsync documents: the replica count must be
		// fixed here, before the environments are built.
		cfg.Actors = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 4*base.Cfg.Space.MaxRels + 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = base.Cfg.Seed + 1
	}
	replicas := make([]*Env, cfg.Actors)
	envs := make([]rl.Env, cfg.Actors)
	for w := 0; w < cfg.Actors; w++ {
		replicas[w] = base.Replica(w, cfg.Actors)
		envs[w] = replicas[w]
	}
	cache := base.Cfg.Planner.Cache
	cache.BumpEpoch()
	prev := cfg.OnPublish
	cfg.OnPublish = func(version uint64) {
		cache.BumpEpoch()
		if prev != nil {
			prev(version)
		}
	}

	i := 0
	stats := rl.TrainAsyncCtx(ctx, agent, envs, episodes, cfg,
		func(w, seq int, traj rl.Trajectory) any {
			return EpisodeRecord{
				Query: replicas[w].Current(),
				Traj:  traj,
				Out:   replicas[w].Last,
			}
		},
		func(e rl.AsyncEpisode) {
			if onEpisode != nil {
				onEpisode(i, e.Out.(EpisodeRecord))
			}
			i++
		})
	for _, r := range replicas {
		base.Executions += r.Executions
		base.TimedOutCount += r.TimedOutCount
		r.Executions, r.TimedOutCount = 0, 0
	}
	return stats
}
