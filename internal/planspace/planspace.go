// Package planspace defines the full plan-space Markov decision process the
// paper's §4 and §5 study: join ordering, access-path (index) selection,
// join operator selection, and aggregate operator selection, with any prefix
// of that pipeline enabled (§5.3's Figure 8). Dimensions the agent does not
// control are delegated to the traditional optimizer, exactly as the paper
// prescribes for early curriculum phases.
//
// The same environment serves every agent in the reproduction:
//   - naive full-space DRL (§4's negative result),
//   - learning from demonstration (§5.1) via expert traces,
//   - cost-model bootstrapping (§5.2) via its switchable reward source,
//   - incremental/curriculum learning (§5.3) via stage masks.
package planspace

import (
	"math"

	"handsfree/internal/catalog"
	"handsfree/internal/featurize"
	"handsfree/internal/plan"
	"handsfree/internal/query"
)

// Stages selects which pipeline steps the agent controls. Join ordering is
// always agent-controlled (it is the pipeline's first step).
type Stages struct {
	AccessPaths bool
	JoinOps     bool
	AggOps      bool
}

// StagePrefix returns the pipeline prefix of length k (1 = join order only …
// 4 = the full pipeline), matching Figure 8's phases.
func StagePrefix(k int) Stages {
	return Stages{AccessPaths: k >= 2, JoinOps: k >= 3, AggOps: k >= 4}
}

// NumStages is the pipeline length (Figure 8).
const NumStages = 4

// Access-path choices in the access block of the action space.
const (
	// AccessSeq scans the relation sequentially.
	AccessSeq = iota
	// AccessFilterIndex scans through an index on a filtered column.
	AccessFilterIndex
	// AccessJoinIndex scans through an index on a join column (enables
	// index nested loops).
	AccessJoinIndex
	// AccessHashIndex scans through a hash index on an equality-filtered
	// column.
	AccessHashIndex
	numAccessChoices = 4
)

// Layout computes the action-space geometry for a stage configuration over
// a featurization space.
type Layout struct {
	Space  *featurize.Space
	Stages Stages
}

// JoinAlgoCount is how many algorithm variants each join-pair action has.
func (l Layout) JoinAlgoCount() int {
	if l.Stages.JoinOps {
		return len(plan.JoinAlgos)
	}
	return 1
}

// JoinBlockSize is the width of the join-pair action block.
func (l Layout) JoinBlockSize() int {
	return l.Space.ActionDim() * l.JoinAlgoCount()
}

// AccessOffset is the start of the access-choice block (-1 if absent).
func (l Layout) AccessOffset() int {
	if !l.Stages.AccessPaths {
		return -1
	}
	return l.JoinBlockSize()
}

// AggOffset is the start of the aggregation block (-1 if absent).
func (l Layout) AggOffset() int {
	if !l.Stages.AggOps {
		return -1
	}
	off := l.JoinBlockSize()
	if l.Stages.AccessPaths {
		off += numAccessChoices
	}
	return off
}

// ActionDim is the total action-space size for this layout.
func (l Layout) ActionDim() int {
	n := l.JoinBlockSize()
	if l.Stages.AccessPaths {
		n += numAccessChoices
	}
	if l.Stages.AggOps {
		n += len(plan.AggAlgos)
	}
	return n
}

// EncodeJoin builds the action id for joining forest positions (x, y) with
// the algo-variant index (0 when JoinOps is disabled).
func (l Layout) EncodeJoin(x, y, algoIdx int) int {
	return l.Space.EncodeAction(x, y)*l.JoinAlgoCount() + algoIdx
}

// DecodeJoin splits a join-block action id.
func (l Layout) DecodeJoin(a int) (x, y, algoIdx int) {
	pair := a / l.JoinAlgoCount()
	algoIdx = a % l.JoinAlgoCount()
	x, y = l.Space.DecodeAction(pair)
	return x, y, algoIdx
}

// ObsDim is the state-vector length: the ReJOIN join state plus a phase
// indicator (3), an access-cursor one-hot (MaxRels), and the per-relation
// chosen-access one-hot block (MaxRels × numAccessChoices).
func (l Layout) ObsDim() int {
	n := l.Space.MaxRels
	return l.Space.ObsDim() + 3 + n + n*numAccessChoices
}

// accessOptions describes which access choices a relation supports in a
// query, and the concrete scan each choice denotes.
type accessOptions struct {
	valid [numAccessChoices]bool
	scans [numAccessChoices]*plan.Scan
}

// accessOptionsFor classifies the available access paths of one relation.
func accessOptionsFor(cat *catalog.Catalog, q *query.Query, alias string) accessOptions {
	var opts accessOptions
	opts.valid[AccessSeq] = true
	opts.scans[AccessSeq] = plan.BuildScan(q, alias, plan.SeqScan, "")

	rel, _ := q.RelationByAlias(alias)
	tbl, err := cat.Table(rel.Table)
	if err != nil {
		return opts
	}
	filters := q.FiltersOn(alias)
	for _, ix := range tbl.Indexes {
		onFilter := false
		eqFilter := false
		for _, f := range filters {
			if f.Column == ix.Column {
				onFilter = true
				if f.Op == query.Eq {
					eqFilter = true
				}
			}
		}
		onJoin := false
		for _, j := range q.Joins {
			if (j.LeftAlias == alias && j.LeftCol == ix.Column) ||
				(j.RightAlias == alias && j.RightCol == ix.Column) {
				onJoin = true
			}
		}
		switch ix.Kind {
		case catalog.BTree:
			if onFilter && !opts.valid[AccessFilterIndex] {
				opts.valid[AccessFilterIndex] = true
				opts.scans[AccessFilterIndex] = plan.BuildScan(q, alias, plan.IndexScan, ix.Column)
			}
			if onJoin && !opts.valid[AccessJoinIndex] {
				opts.valid[AccessJoinIndex] = true
				opts.scans[AccessJoinIndex] = plan.BuildScan(q, alias, plan.IndexScan, ix.Column)
			}
		case catalog.Hash:
			if eqFilter && !opts.valid[AccessHashIndex] {
				opts.valid[AccessHashIndex] = true
				opts.scans[AccessHashIndex] = plan.BuildScan(q, alias, plan.HashIndexScan, ix.Column)
			}
		}
	}
	return opts
}

// classifyScan maps a concrete scan back to its access-choice id (for
// encoding expert demonstrations).
func classifyScan(s *plan.Scan, opts accessOptions) int {
	switch s.Access {
	case plan.SeqScan:
		return AccessSeq
	case plan.HashIndexScan:
		return AccessHashIndex
	default:
		// B-tree: prefer the filter classification when both apply.
		if opts.valid[AccessFilterIndex] && opts.scans[AccessFilterIndex].IndexColumn == s.IndexColumn {
			return AccessFilterIndex
		}
		if opts.valid[AccessJoinIndex] {
			return AccessJoinIndex
		}
		return AccessSeq
	}
}

// algoIndex maps a join algorithm to its variant index.
func algoIndex(a plan.JoinAlgo) int {
	for i, algo := range plan.JoinAlgos {
		if algo == a {
			return i
		}
	}
	return 0
}

// infCost is the sentinel for unexecutable plans.
var infCost = math.Inf(1)
