package planspace

import (
	"context"
	"math"
	"math/rand"

	"handsfree/internal/featurize"
	"handsfree/internal/optimizer"
	"handsfree/internal/plan"
	"handsfree/internal/plancache"
	"handsfree/internal/query"
	"handsfree/internal/rl"
)

// Outcome describes a finished episode: the plan the agent (plus optimizer
// completion) produced and its evaluation under both performance indicators.
type Outcome struct {
	Plan plan.Node
	// Cost is the traditional optimizer's cost-model value (always computed:
	// costing is free at planning time).
	Cost float64
	// LatencyMs is the simulated execution latency; NaN when the episode was
	// not executed (no latency model attached or reward needed none).
	LatencyMs float64
	// TimedOut reports that execution hit the latency budget (the paper's
	// "could not be executed in any reasonable amount of time").
	TimedOut bool
}

// RewardFunc maps an episode outcome to the terminal reward.
type RewardFunc func(Outcome) float64

// CostReward is the Phase-1/§3 reward: −log of the optimizer cost.
func CostReward(o Outcome) float64 {
	if math.IsInf(o.Cost, 1) || o.Cost <= 0 {
		return -50
	}
	return -math.Log(o.Cost)
}

// LatencyReward is the "true" reward: −log of observed latency.
func LatencyReward(o Outcome) float64 {
	if o.LatencyMs <= 0 || math.IsNaN(o.LatencyMs) || math.IsInf(o.LatencyMs, 1) {
		return -50
	}
	return -math.Log(o.LatencyMs)
}

// Executor abstracts "run this plan and observe a latency" for episode
// evaluation. Both the analytic simulator (engine.LatencyModel) and the
// real observed executor (engine.Observed) satisfy it, so a training
// environment's reward can come from simulated or genuinely executed
// latencies without the env knowing which. Implementations must be safe for
// concurrent use: environment replicas share the configured value.
type Executor interface {
	Execute(q *query.Query, n plan.Node, budgetMs float64) (latencyMs float64, timedOut bool)
}

// Config assembles an Env.
type Config struct {
	Space   *featurize.Space
	Stages  Stages
	Planner *optimizer.Planner
	// Latency is required when Reward reads LatencyMs or ExecuteAlways is
	// set; otherwise episodes are not executed.
	Latency Executor
	Queries []*query.Query
	// Reward defaults to CostReward.
	Reward RewardFunc
	// ExecuteAlways forces execution (latency measurement) of every episode
	// even under CostReward — used to count how often an agent *would* have
	// run a catastrophic plan.
	ExecuteAlways bool
	// RewardNeedsLatency declares that Reward reads Outcome.LatencyMs, so
	// every episode must be executed. CostReward leaves it false.
	RewardNeedsLatency bool
	// LatencyBudgetMs censors execution latency (0 = no budget).
	LatencyBudgetMs float64
	// Cache, when non-nil, memoizes the optimizer completions that end
	// every episode (the plan cache service). NewEnv attaches it to the
	// planner, and Replica copies inherit the attachment, so all parallel
	// collection workers share one sharded cache.
	Cache *plancache.Cache
	// ReuseStateBuffers makes the env reuse one features vector and one mask
	// across states instead of allocating fresh slices per step. Safe only
	// when the caller consumes each state before the next Step/ResetTo — the
	// serving GreedyRollout path, where states are decoded into an action and
	// dropped. Training collection retains whole trajectories until the
	// policy update and must leave this off.
	ReuseStateBuffers bool
	Seed              int64
}

// phase enumerates the episode's decision phases.
type phase int

const (
	phaseAccess phase = iota
	phaseJoin
	phaseAgg
	phaseDone
)

// Env is the full plan-space MDP.
type Env struct {
	Cfg    Config
	Layout Layout

	rng    *rand.Rand
	curIdx int

	cur    *query.Query
	opts   []accessOptions // per alias index
	chosen []int           // access choice per alias index (-1 = undecided)
	forest []plan.Node
	ph     phase
	// memo is the per-episode skeleton-hash memo (lazily allocated, only
	// with a plan cache attached): the completion calls that end every
	// episode share it, so a skeleton costed under two aggregation
	// algorithms is hashed once and no completion allocates a map.
	memo map[plan.Node]uint64
	// scratch carries the reusable featurization maps (alias index, depth
	// weights, subtree alias sets); Reset per episode.
	scratch featurize.Scratch
	// featBuf/maskBuf are the reused state storage under
	// Cfg.ReuseStateBuffers; nil otherwise.
	featBuf []float64
	maskBuf []bool

	// Executions counts how many episodes were actually executed (latency
	// measured); TimedOutCount counts executions that hit the budget.
	Executions    int
	TimedOutCount int

	// Last is the outcome of the most recently finished episode.
	Last Outcome
}

// NewEnv builds the environment.
func NewEnv(cfg Config) *Env {
	if cfg.Reward == nil {
		cfg.Reward = CostReward
	}
	if cfg.Cache != nil {
		// WithCache is idempotent, so replicas built from an already
		// attached config keep sharing the same planner copy and cache.
		cfg.Planner = cfg.Planner.WithCache(cfg.Cache)
	}
	return &Env{
		Cfg:    cfg,
		Layout: Layout{Space: cfg.Space, Stages: cfg.Stages},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		curIdx: -1,
	}
}

// ObsDim implements rl.Env.
func (e *Env) ObsDim() int { return e.Layout.ObsDim() }

// ActionDim implements rl.Env.
func (e *Env) ActionDim() int { return e.Layout.ActionDim() }

// Current returns the in-progress episode's query.
func (e *Env) Current() *query.Query { return e.cur }

// Reset starts an episode on the next workload query.
func (e *Env) Reset() rl.State {
	e.curIdx = (e.curIdx + 1) % len(e.Cfg.Queries)
	return e.ResetTo(e.Cfg.Queries[e.curIdx])
}

// ResetTo starts an episode on a specific query.
func (e *Env) ResetTo(q *query.Query) rl.State {
	e.cur = q
	aliases := featurize.AliasIndex(q)
	e.opts = e.opts[:0]
	e.chosen = e.chosen[:0]
	e.forest = e.forest[:0]
	for _, a := range aliases {
		opt := accessOptionsFor(e.Cfg.Planner.Cat, q, a)
		e.opts = append(e.opts, opt)
		e.chosen = append(e.chosen, -1)
		e.forest = append(e.forest, opt.scans[AccessSeq])
	}
	if e.Cfg.Stages.AccessPaths {
		e.ph = phaseAccess
	} else {
		e.ph = phaseJoin
	}
	e.Last = Outcome{}
	clear(e.memo)
	e.scratch.Reset()
	return e.state()
}

// hashMemo returns the env's per-episode skeleton-hash memo, allocating it
// on first use; without an attached plan cache skeleton hashing is never
// needed and the memo stays nil.
func (e *Env) hashMemo() map[plan.Node]uint64 {
	if e.Cfg.Planner.Cache == nil {
		return nil
	}
	if e.memo == nil {
		e.memo = make(map[plan.Node]uint64, 16)
	}
	return e.memo
}

// cursor returns the alias index whose access path is being decided.
func (e *Env) cursor() int {
	for i, c := range e.chosen {
		if c < 0 {
			return i
		}
	}
	return -1
}

func (e *Env) state() rl.State {
	n := e.Cfg.Space.MaxRels
	// One fresh vector per state (trajectories retain it) unless the caller
	// opted into buffer reuse; the join-state prefix and the
	// phase/cursor/access one-hot blocks are written directly at their
	// offsets instead of composed from temporary slices, and the episode
	// scratch carries the featurization working maps.
	var features []float64
	if e.Cfg.ReuseStateBuffers {
		if cap(e.featBuf) < e.ObsDim() {
			e.featBuf = make([]float64, e.ObsDim())
		}
		features = e.featBuf[:e.ObsDim()]
		clear(features)
	} else {
		features = make([]float64, e.ObsDim())
	}
	e.Cfg.Space.JoinStateInto(features[:e.Cfg.Space.ObsDim()], e.cur, e.forest, &e.scratch)

	phaseOff := e.Cfg.Space.ObsDim()
	cursorOff := phaseOff + 3
	accessOff := cursorOff + n
	switch e.ph {
	case phaseAccess:
		features[phaseOff] = 1
		if c := e.cursor(); c >= 0 && c < n {
			features[cursorOff+c] = 1
		}
	case phaseJoin:
		features[phaseOff+1] = 1
	case phaseAgg:
		features[phaseOff+2] = 1
	}
	for i, c := range e.chosen {
		if c >= 0 && i < n {
			features[accessOff+i*numAccessChoices+c] = 1
		}
	}

	return rl.State{
		Features: features,
		Mask:     e.mask(),
		Terminal: e.ph == phaseDone,
	}
}

func (e *Env) mask() []bool {
	var mask []bool
	if e.Cfg.ReuseStateBuffers {
		if cap(e.maskBuf) < e.ActionDim() {
			e.maskBuf = make([]bool, e.ActionDim())
		}
		mask = e.maskBuf[:e.ActionDim()]
		clear(mask)
	} else {
		mask = make([]bool, e.ActionDim())
	}
	switch e.ph {
	case phaseAccess:
		c := e.cursor()
		off := e.Layout.AccessOffset()
		for i := 0; i < numAccessChoices; i++ {
			mask[off+i] = e.opts[c].valid[i]
		}
	case phaseJoin:
		nAlgo := e.Layout.JoinAlgoCount()
		for x := 0; x < len(e.forest); x++ {
			for y := 0; y < len(e.forest); y++ {
				if x == y {
					continue
				}
				for a := 0; a < nAlgo; a++ {
					mask[e.Layout.EncodeJoin(x, y, a)] = true
				}
			}
		}
	case phaseAgg:
		off := e.Layout.AggOffset()
		for i := range plan.AggAlgos {
			mask[off+i] = true
		}
	}
	return mask
}

// Step implements rl.Env.
func (e *Env) Step(action int) (rl.State, float64, bool) {
	switch e.ph {
	case phaseAccess:
		c := e.cursor()
		choice := action - e.Layout.AccessOffset()
		if choice < 0 || choice >= numAccessChoices || !e.opts[c].valid[choice] {
			return e.abort()
		}
		e.chosen[c] = choice
		e.forest[c] = e.opts[c].scans[choice]
		if e.cursor() < 0 {
			e.ph = phaseJoin
		}
		return e.state(), 0, false

	case phaseJoin:
		if action >= e.Layout.JoinBlockSize() {
			return e.abort()
		}
		x, y, algoIdx := e.Layout.DecodeJoin(action)
		if x >= len(e.forest) || y >= len(e.forest) || x == y {
			return e.abort()
		}
		algo := plan.NestLoop
		if e.Cfg.Stages.JoinOps {
			algo = plan.JoinAlgos[algoIdx]
		}
		joined := plan.JoinNodes(e.cur, algo, e.forest[x], e.forest[y])
		// Filter in place: the write index never overtakes the read index,
		// so reusing the forest's backing array is safe and avoids a fresh
		// slice per join step.
		next := e.forest[:0]
		for i, node := range e.forest {
			if i != x && i != y {
				next = append(next, node)
			}
		}
		e.forest = append(next, joined)
		if len(e.forest) > 1 {
			return e.state(), 0, false
		}
		if e.Cfg.Stages.AggOps && (len(e.cur.Aggregates) > 0 || len(e.cur.GroupBys) > 0) {
			e.ph = phaseAgg
			return e.state(), 0, false
		}
		return e.finish(plan.HashAgg, false)

	case phaseAgg:
		idx := action - e.Layout.AggOffset()
		if idx < 0 || idx >= len(plan.AggAlgos) {
			return e.abort()
		}
		return e.finish(plan.AggAlgos[idx], true)
	default:
		return e.abort()
	}
}

// abort ends the episode on an invalid (unmasked) action with the worst
// reward; masked sampling never reaches this path.
func (e *Env) abort() (rl.State, float64, bool) {
	e.ph = phaseDone
	e.Last = Outcome{Cost: infCost, LatencyMs: math.NaN()}
	return rl.State{Terminal: true}, e.Cfg.Reward(e.Last), true
}

// finish completes the plan (delegating undecided dimensions to the
// traditional optimizer), evaluates it, and returns the terminal reward.
func (e *Env) finish(aggAlgo plan.AggAlgo, aggChosen bool) (rl.State, float64, bool) {
	skeleton := e.forest[0]
	var final plan.Node
	var costTotal float64
	p := e.Cfg.Planner
	q := e.cur
	st := e.Cfg.Stages
	memo := e.hashMemo()
	switch {
	case aggChosen || (st.AccessPaths && st.JoinOps):
		// Fully specified up to aggregation.
		if aggChosen {
			root, nc := p.CostFixedMemo(q, skeleton, aggAlgo, memo)
			final, costTotal = root, nc.Total
		} else {
			// The optimizer picks the cheaper aggregation; the shared episode
			// memo means the skeleton is hashed once for both candidates.
			bestRoot, bestNC := p.CostFixedMemo(q, skeleton, plan.HashAgg, memo)
			if len(q.Aggregates) > 0 || len(q.GroupBys) > 0 {
				r2, nc2 := p.CostFixedMemo(q, skeleton, plan.SortAgg, memo)
				if nc2.Total < bestNC.Total {
					bestRoot, bestNC = r2, nc2
				}
			}
			final, costTotal = bestRoot, bestNC.Total
		}
	case st.AccessPaths:
		root, nc := p.CompleteOperatorsMemo(q, skeleton, memo)
		final, costTotal = root, nc.Total
	case st.JoinOps:
		root, nc := p.CompleteAccessMemo(q, skeleton, memo)
		final, costTotal = root, nc.Total
	default:
		root, nc := p.CompletePhysicalMemo(q, skeleton, memo)
		final, costTotal = root, nc.Total
	}

	out := Outcome{Plan: final, Cost: costTotal, LatencyMs: math.NaN()}
	if e.Cfg.Latency != nil && (e.Cfg.ExecuteAlways || e.Cfg.RewardNeedsLatency) {
		lat, timedOut := e.Cfg.Latency.Execute(q, final, e.Cfg.LatencyBudgetMs)
		out.LatencyMs = lat
		out.TimedOut = timedOut
		e.Executions++
		if timedOut {
			e.TimedOutCount++
		}
	}
	e.ph = phaseDone
	e.Last = out
	return rl.State{Terminal: true}, e.Cfg.Reward(out), true
}

// GreedyRollout plans q by stepping the env with choose until the episode
// terminates, checking ctx before every decision: a deadline or
// cancellation cuts the rollout off mid-search and returns ctx.Err(). A
// negative action from choose (no valid action) ends the rollout early with
// whatever outcome the env holds. This is the request-scoped serving path of
// the root handsfree.Service; the env must be owned by the caller (rollouts
// are not concurrency-safe on a shared env).
func (e *Env) GreedyRollout(ctx context.Context, q *query.Query, choose func(rl.State) int) (Outcome, error) {
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	s := e.ResetTo(q)
	maxSteps := 4*e.Cfg.Space.MaxRels + 8
	for i := 0; i < maxSteps && !s.Terminal; i++ {
		if err := ctx.Err(); err != nil {
			return Outcome{}, err
		}
		act := choose(s)
		if act < 0 {
			break
		}
		next, _, done := e.Step(act)
		s = next
		if done {
			break
		}
	}
	return e.Last, nil
}
