package planspace

import (
	"testing"

	"handsfree/internal/plancache"
	"handsfree/internal/rl"
)

// TestCollectorDeterministic collects the same parallel round twice against
// identically seeded agents and requires identical outcomes and order.
func TestCollectorDeterministic(t *testing.T) {
	f := fixture(t, 4, 3, 4)
	run := func() []EpisodeRecord {
		env := f.env(StagePrefix(2), CostReward, false)
		agent := rl.NewReinforce(env.ObsDim(), env.ActionDim(), rl.ReinforceConfig{Hidden: []int{16}, Seed: 5})
		return NewCollector(env, 3).Collect(agent, 12)
	}
	a, b := run(), run()
	if len(a) != 12 || len(b) != 12 {
		t.Fatalf("collected %d and %d episodes, want 12", len(a), len(b))
	}
	for i := range a {
		if a[i].Out.Cost != b[i].Out.Cost || a[i].Query.Name != b[i].Query.Name {
			t.Fatalf("episode %d differs across identical collection runs: (%v,%s) vs (%v,%s)",
				i, a[i].Out.Cost, a[i].Query.Name, b[i].Out.Cost, b[i].Query.Name)
		}
		if a[i].Out.Plan == nil {
			t.Fatalf("episode %d has no plan", i)
		}
		if len(a[i].Traj.Steps) == 0 {
			t.Fatalf("episode %d has an empty trajectory", i)
		}
	}
}

// TestCollectorFoldsExecutionCounters runs a latency-executing collection
// and checks the replicas' execution counts fold back into the base env.
func TestCollectorFoldsExecutionCounters(t *testing.T) {
	f := fixture(t, 3, 3, 3)
	env := f.env(StagePrefix(1), LatencyReward, true)
	agent := rl.NewReinforce(env.ObsDim(), env.ActionDim(), rl.ReinforceConfig{Hidden: []int{16}, Seed: 6})
	NewCollector(env, 2).Collect(agent, 8)
	if env.Executions != 8 {
		t.Fatalf("base env folded %d executions, want 8", env.Executions)
	}
}

// TestReplicaIndependentEpisodes checks a replica owns its own episode state.
func TestReplicaIndependentEpisodes(t *testing.T) {
	f := fixture(t, 3, 3, 4)
	base := f.env(StagePrefix(1), CostReward, false)
	rep := base.Replica(1, 2)
	s1 := base.Reset()
	s2 := rep.Reset()
	if base.Current() == rep.Current() {
		t.Fatal("staggered replicas started on the same query")
	}
	if len(s1.Features) != len(s2.Features) {
		t.Fatal("replica observation dimension differs from base")
	}
}

// TestCollectorCacheTransparent: parallel collection over the full
// plan-space MDP must return identical episodes with and without the plan
// cache (completion memoization is pure), and repeated workload sweeps
// must be served from cache.
func TestCollectorCacheTransparent(t *testing.T) {
	f := fixture(t, 4, 3, 4)
	run := func(cache *plancache.Cache) []EpisodeRecord {
		env := NewEnv(Config{
			Space:   f.space,
			Stages:  StagePrefix(2),
			Planner: f.planner,
			Latency: f.lat,
			Queries: f.queries,
			Reward:  CostReward,
			Cache:   cache,
			Seed:    3,
		})
		agent := rl.NewReinforce(env.ObsDim(), env.ActionDim(), rl.ReinforceConfig{Hidden: []int{16}, Seed: 5})
		collector := NewCollector(env, 3)
		var out []EpisodeRecord
		for round := 0; round < 3; round++ {
			out = append(out, collector.Collect(agent, 12)...)
		}
		return out
	}
	plain := run(nil)
	cache := plancache.New(plancache.Config{Capacity: 4096, Shards: 8})
	cached := run(cache)
	if len(plain) != len(cached) {
		t.Fatalf("episode counts differ: %d vs %d", len(plain), len(cached))
	}
	for i := range plain {
		if plain[i].Out.Cost != cached[i].Out.Cost || plain[i].Query.Name != cached[i].Query.Name {
			t.Fatalf("episode %d differs with cache enabled: (%v,%s) vs (%v,%s)",
				i, plain[i].Out.Cost, plain[i].Query.Name, cached[i].Out.Cost, cached[i].Query.Name)
		}
		if plain[i].Out.Plan.Signature() != cached[i].Out.Plan.Signature() {
			t.Fatalf("episode %d plan differs with cache enabled", i)
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("cache never hit across repeated workload sweeps: %+v", st)
	}
	if st.EpochBumps == 0 {
		t.Fatal("collector never advanced the policy epoch")
	}
}
