package planspace

import (
	"fmt"
	"sort"
	"strings"

	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/rl"
)

// Replay drives the environment through the action sequence that constructs
// the given expert plan, recording the (state, action) trajectory — the
// episode history H_q of §5.1. Only the dimensions the environment's stages
// control are encoded; the rest of the expert's decisions are re-derived by
// the optimizer at completion time, exactly as during agent episodes.
//
// The final state's reward is whatever the environment's reward source
// produces for the completed episode; callers doing learning-from-
// demonstration typically relabel the trajectory with the expert plan's
// measured latency.
func (e *Env) Replay(q *query.Query, expert plan.Node) (rl.Trajectory, Outcome, error) {
	actions, err := e.planActions(q, expert)
	if err != nil {
		return rl.Trajectory{}, Outcome{}, err
	}
	var traj rl.Trajectory
	s := e.ResetTo(q)
	for _, a := range actions {
		if s.Terminal {
			return traj, Outcome{}, fmt.Errorf("planspace: expert trace too long for query %s", q.Name)
		}
		if a < 0 || a >= len(s.Mask) || !s.Mask[a] {
			return traj, Outcome{}, fmt.Errorf("planspace: expert action %d is masked for query %s", a, q.Name)
		}
		next, r, done := e.Step(a)
		traj.Steps = append(traj.Steps, rl.Step{Features: s.Features, Mask: s.Mask, Action: a, Reward: r})
		traj.Return += r
		s = next
		if done {
			break
		}
	}
	if !s.Terminal {
		return traj, Outcome{}, fmt.Errorf("planspace: expert trace did not finish query %s", q.Name)
	}
	return traj, e.Last, nil
}

// planActions converts an expert physical plan into this environment's
// action vocabulary.
func (e *Env) planActions(q *query.Query, expert plan.Node) ([]int, error) {
	var actions []int
	aliases := aliasIndexOf(q)

	// Leaf access decisions, in alias order (the env's cursor order).
	if e.Cfg.Stages.AccessPaths {
		leafOf := map[string]*plan.Scan{}
		for _, l := range plan.Leaves(expert) {
			leafOf[l.Alias] = l
		}
		for i, a := range aliases {
			l, ok := leafOf[a]
			if !ok {
				return nil, fmt.Errorf("planspace: expert plan lacks relation %s", a)
			}
			opts := accessOptionsFor(e.Cfg.Planner.Cat, q, a)
			choice := classifyScan(l, opts)
			if !opts.valid[choice] {
				choice = AccessSeq
			}
			_ = i
			actions = append(actions, e.Layout.AccessOffset()+choice)
		}
	}

	// Join decisions: simulate the forest and emit pair actions bottom-up.
	forest := make([]string, len(aliases)) // alias-set keys, forest order
	for i, a := range aliases {
		forest[i] = a
	}
	joins := joinSequence(expert)
	for _, jn := range joins {
		lKey := aliasKey(jn.Left.Aliases())
		rKey := aliasKey(jn.Right.Aliases())
		x := indexOf(forest, lKey)
		y := indexOf(forest, rKey)
		if x < 0 || y < 0 {
			return nil, fmt.Errorf("planspace: cannot locate subtrees %q/%q in forest", lKey, rKey)
		}
		algoIdx := 0
		if e.Cfg.Stages.JoinOps {
			algoIdx = algoIndex(jn.Algo)
		}
		actions = append(actions, e.Layout.EncodeJoin(x, y, algoIdx))
		// Mirror the env's forest mutation: remove x and y, append the join.
		var next []string
		for i, k := range forest {
			if i != x && i != y {
				next = append(next, k)
			}
		}
		forest = append(next, aliasKey(jn.Aliases()))
	}

	// Aggregation decision.
	if e.Cfg.Stages.AggOps && (len(q.Aggregates) > 0 || len(q.GroupBys) > 0) {
		algo := plan.HashAgg
		if a, ok := expert.(*plan.Agg); ok {
			algo = a.Algo
		}
		for i, cand := range plan.AggAlgos {
			if cand == algo {
				actions = append(actions, e.Layout.AggOffset()+i)
			}
		}
	}
	return actions, nil
}

// joinSequence returns the plan's join nodes in construction order
// (post-order: every join appears after both of its child joins).
func joinSequence(n plan.Node) []*plan.Join {
	var out []*plan.Join
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		switch n := n.(type) {
		case *plan.Join:
			walk(n.Left)
			walk(n.Right)
			out = append(out, n)
		case *plan.Agg:
			walk(n.Child)
		}
	}
	walk(n)
	return out
}

func aliasKey(aliases map[string]bool) string {
	keys := make([]string, 0, len(aliases))
	for a := range aliases {
		keys = append(keys, a)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func indexOf(forest []string, key string) int {
	for i, k := range forest {
		if k == key {
			return i
		}
	}
	return -1
}

func aliasIndexOf(q *query.Query) []string {
	out := make([]string, len(q.Relations))
	for i, r := range q.Relations {
		out[i] = r.Alias
	}
	sort.Strings(out)
	return out
}
