package planspace

import (
	"handsfree/internal/query"
	"handsfree/internal/rl"
)

// Replica returns an independent copy of the environment for parallel
// episode collection: its own RNG stream (derived from the worker index)
// and an episode cursor staggered so `workers` replicas sweep the workload
// with minimal overlap. The planner, space, latency model, and query set
// are shared — they are read-only during planning and execution. The
// configured Reward must be a pure function of the outcome when replicas
// run concurrently (CostReward and LatencyReward are; stateful closures
// like the bootstrapping agent's phase-dependent reward are not).
func (e *Env) Replica(worker, workers int) *Env {
	cfg := e.Cfg
	cfg.Seed = e.Cfg.Seed + 1000*int64(worker+1)
	r := NewEnv(cfg)
	if workers > 0 {
		r.curIdx = (worker*len(cfg.Queries))/workers - 1
	}
	return r
}

// EpisodeRecord is one episode from a parallel collection round: the
// trajectory for the learner plus the environment outcome for reporting.
type EpisodeRecord struct {
	Query *query.Query
	Traj  rl.Trajectory
	Out   Outcome
}

// Collector owns a set of environment replicas for repeated parallel
// episode collection over a base environment.
type Collector struct {
	base     *Env
	replicas []*Env
	envs     []rl.Env
	maxSteps int
	snapSeed int64
}

// NewCollector builds a collector with the given number of worker replicas.
func NewCollector(base *Env, workers int) *Collector {
	if workers < 1 {
		workers = 1
	}
	c := &Collector{
		base:     base,
		maxSteps: 4*base.Cfg.Space.MaxRels + 8,
		snapSeed: base.Cfg.Seed,
	}
	for w := 0; w < workers; w++ {
		r := base.Replica(w, workers)
		c.replicas = append(c.replicas, r)
		c.envs = append(c.envs, r)
	}
	return c
}

// Collect runs `episodes` episodes across the worker replicas, each worker
// stepping a frozen snapshot of the policy (fresh snapshots per call, seeded
// deterministically), and returns the merged records in a deterministic
// order. The caller feeds the trajectories to its learner in that order —
// typically one policy-batch per Collect call so updates happen exactly as
// often as in sequential training.
func (c *Collector) Collect(agent *rl.Reinforce, episodes int) []EpisodeRecord {
	workers := len(c.replicas)
	per := rl.SplitEpisodes(episodes, workers)
	policies := make([]func(rl.State) int, workers)
	records := make([][]EpisodeRecord, workers)
	// Fresh policy snapshots mean any plan cached under the previous policy
	// is stale: advance the shared cache's policy epoch so ModeGreedyPolicy
	// entries from older snapshots can never be served. Pure optimizer
	// completions are unaffected — they are what makes repeated workload
	// queries cheap.
	c.base.Cfg.Planner.Cache.BumpEpoch()
	for w := 0; w < workers; w++ {
		c.snapSeed++
		policies[w] = agent.PolicySnapshot(c.snapSeed)
		records[w] = make([]EpisodeRecord, per[w])
	}
	rl.CollectParallel(c.envs, policies, per, c.maxSteps, func(w, ep int, traj rl.Trajectory) {
		records[w][ep] = EpisodeRecord{
			Query: c.replicas[w].Current(),
			Traj:  traj,
			Out:   c.replicas[w].Last,
		}
	})
	// Fold the replicas' execution counters back into the base environment
	// so §4-style timeout statistics survive parallel collection.
	for _, r := range c.replicas {
		c.base.Executions += r.Executions
		c.base.TimedOutCount += r.TimedOutCount
		r.Executions, r.TimedOutCount = 0, 0
	}
	return rl.Interleave(records)
}
