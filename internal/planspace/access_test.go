package planspace

import (
	"testing"

	"handsfree/internal/plan"
	"handsfree/internal/query"
)

// TestHashAccessChoiceLive verifies the hash access path is actually
// reachable in the MDP: the generated schema carries hash indexes on
// equality-filterable attributes.
func TestHashAccessChoiceLive(t *testing.T) {
	f := fixture(t, 1, 3, 3)
	q := &query.Query{
		Name: "hash-probe",
		Relations: []query.Relation{
			{Table: "company_name", Alias: "cn"},
			{Table: "movie_companies", Alias: "mc"},
		},
		Joins: []query.Join{
			{LeftAlias: "mc", LeftCol: "company_id", RightAlias: "cn", RightCol: "id"},
		},
		Filters: []query.Filter{
			{Alias: "cn", Column: "country_code", Op: query.Eq, Value: 5},
		},
	}
	opts := accessOptionsFor(f.planner.Cat, q, "cn")
	if !opts.valid[AccessHashIndex] {
		t.Fatal("hash access path not available for an equality filter on a hash-indexed column")
	}
	if opts.scans[AccessHashIndex].Access != plan.HashIndexScan {
		t.Fatalf("hash choice builds %v", opts.scans[AccessHashIndex].Access)
	}
	// A range filter must NOT enable the hash path.
	q.Filters[0].Op = query.Lt
	opts = accessOptionsFor(f.planner.Cat, q, "cn")
	if opts.valid[AccessHashIndex] {
		t.Fatal("hash access path offered for a range predicate")
	}
}

// TestAccessChoicesClassifyRoundTrip checks classifyScan inverts the scans
// that accessOptionsFor constructs.
func TestAccessChoicesClassifyRoundTrip(t *testing.T) {
	f := fixture(t, 4, 4, 6)
	for _, q := range f.queries {
		for _, rel := range q.Relations {
			opts := accessOptionsFor(f.planner.Cat, q, rel.Alias)
			for choice := 0; choice < numAccessChoices; choice++ {
				if !opts.valid[choice] {
					continue
				}
				got := classifyScan(opts.scans[choice], opts)
				// AccessFilterIndex and AccessJoinIndex can alias when the
				// same column serves both; accept either.
				if got != choice && !(choice == AccessJoinIndex && got == AccessFilterIndex) {
					t.Fatalf("%s/%s: choice %d classified as %d", q.Name, rel.Alias, choice, got)
				}
			}
		}
	}
}
