package planspace

import (
	"context"
	"testing"

	"handsfree/internal/rl"
)

// firstValid is a deterministic serving policy: the lowest-indexed valid
// action.
func firstValid(st rl.State) int {
	for i, ok := range st.Mask {
		if ok {
			return i
		}
	}
	return -1
}

// TestReuseStateBuffersEquivalence: buffer reuse is invisible to the rollout
// — the same policy produces the identical plan and cost with and without it.
func TestReuseStateBuffersEquivalence(t *testing.T) {
	f := fixture(t, 6, 2, 4)
	stages := Stages{AccessPaths: true, JoinOps: true, AggOps: true}
	plain := NewEnv(Config{Space: f.space, Stages: stages, Planner: f.planner, Queries: f.queries})
	reused := NewEnv(Config{Space: f.space, Stages: stages, Planner: f.planner, Queries: f.queries, ReuseStateBuffers: true})
	ctx := context.Background()
	for i, q := range f.queries {
		a, err := plain.GreedyRollout(ctx, q, firstValid)
		if err != nil {
			t.Fatal(err)
		}
		b, err := reused.GreedyRollout(ctx, q, firstValid)
		if err != nil {
			t.Fatal(err)
		}
		if a.Plan == nil || b.Plan == nil {
			t.Fatalf("query %d: rollout produced no plan", i)
		}
		if a.Plan.Signature() != b.Plan.Signature() || a.Cost != b.Cost {
			t.Fatalf("query %d: buffer reuse changed the rollout:\n%s (%.2f)\nvs\n%s (%.2f)",
				i, a.Plan.Signature(), a.Cost, b.Plan.Signature(), b.Cost)
		}
	}
}

// TestStateEncodingSteadyStateAllocs pins the featurization hot path: with
// buffer reuse on and the per-episode scratch warm, re-encoding a state
// allocates nothing — the feature vector, mask, alias/selectivity caches,
// and subtree cardinality memo are all reused. This is what keeps concurrent
// serving from being dominated by featurization malloc churn.
func TestStateEncodingSteadyStateAllocs(t *testing.T) {
	f := fixture(t, 4, 4, 4)
	env := NewEnv(Config{
		Space:             f.space,
		Stages:            Stages{AccessPaths: true, JoinOps: true, AggOps: true},
		Planner:           f.planner,
		Queries:           f.queries,
		ReuseStateBuffers: true,
	})
	q := f.queries[0]
	env.ResetTo(q) // warms the scratch caches and state buffers
	if allocs := testing.AllocsPerRun(20, func() {
		_ = env.state()
	}); allocs != 0 {
		t.Errorf("steady-state state() allocates %.0f objects per call, want 0", allocs)
	}

	// The reused buffers really are reused: successive states share storage.
	s1 := env.state()
	s2 := env.state()
	if &s1.Features[0] != &s2.Features[0] || &s1.Mask[0] != &s2.Mask[0] {
		t.Error("ReuseStateBuffers did not reuse the state storage")
	}
	// And without the opt-in, trajectories keep distinct vectors.
	plain := NewEnv(Config{Space: f.space, Stages: Stages{JoinOps: true}, Planner: f.planner, Queries: f.queries})
	plain.ResetTo(q)
	p1 := plain.state()
	p2 := plain.state()
	if &p1.Features[0] == &p2.Features[0] {
		t.Error("default env aliased feature vectors across states")
	}
}
