package engine

import (
	"errors"
	"math"

	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/sketch"
)

// ErrInjected is returned when the fault seam fails an execution.
var ErrInjected = errors.New("engine: injected execution failure")

// DefaultMsPerWork converts executor work units into observed milliseconds.
// Calibrated so the generated workloads at small scale factors land in the
// 1–100 ms range a production OLAP query would.
const DefaultMsPerWork = 1e-4

// Observed is the "run it on the production system" executor: it executes
// plans for real on the columnar Engine and derives an observed wall-clock
// latency from the deterministic work accounting (work units × MsPerWork),
// optionally transformed by the fault seam. Unlike LatencyModel — an
// analytic simulator over estimated costs — Observed latencies reflect what
// the engine actually did, so they respond to injected faults, and they are
// exactly reproducible per (database, plan).
//
// Observed is safe for concurrent use: the Engine's index caches are
// mutex-guarded, per-call state lives in the Work accounting, and the fault
// seam serializes its counter internally.
type Observed struct {
	Eng *Engine
	// MsPerWork converts work units to milliseconds (DefaultMsPerWork when
	// built by NewObserved).
	MsPerWork float64
	// Faults is the fault-injection seam (never nil from NewObserved; an
	// empty seam injects nothing).
	Faults *Faults
}

// NewObserved wraps the engine with the default calibration and a fresh
// (inject-nothing) fault seam.
func NewObserved(eng *Engine) *Observed {
	return &Observed{Eng: eng, MsPerWork: DefaultMsPerWork, Faults: NewFaults()}
}

// Run executes root for q under a latency budget (milliseconds; 0 = none)
// and returns the result, the work performed, and the observed latency.
// A budget-exhausted execution is not an error: it returns timedOut=true
// with the budget as the censored latency, mirroring LatencyModel.Execute.
// An injected failure returns ErrInjected with a NaN latency.
func (o *Observed) Run(q *query.Query, root plan.Node, budgetMs float64) (res *Result, w *Work, latencyMs float64, timedOut bool, err error) {
	factor := 1.0
	fail := false
	if o.Faults != nil {
		factor, fail = o.Faults.apply(q, root)
	}
	if fail {
		return nil, nil, math.NaN(), false, ErrInjected
	}
	var budget int64
	if budgetMs > 0 {
		// The budget censors observed (post-inflation) latency, so an
		// inflated execution times out proportionally earlier — exactly how a
		// wall-clock timeout behaves on a degraded system.
		budget = int64(budgetMs / (o.MsPerWork * factor))
		if budget < 1 {
			budget = 1
		}
	}
	res, w, err = o.Eng.ExecuteBudget(q, root, budget)
	if err != nil {
		if errors.Is(err, ErrBudget) {
			return nil, w, budgetMs, true, nil
		}
		return nil, w, math.NaN(), false, err
	}
	return res, w, float64(w.Total()) * o.MsPerWork * factor, false, nil
}

// RunApprox is Run's approximate sibling: it executes the query's
// aggregates over the table's row sample via ExecuteApprox and derives the
// observed latency from the (much smaller) sample-scan work — under the
// same fault seam and the same budget censoring, so approximate latencies
// live in the same regime as exact ones and feed the same history. root is
// the served plan; it participates only in fault-seam matching, not in
// execution. ErrApproxBudget propagates so the caller can fall back.
func (o *Observed) RunApprox(q *query.Query, root plan.Node, sample *sketch.RowSample, opt ApproxOptions, budgetMs float64) (res *ApproxResult, w *Work, latencyMs float64, timedOut bool, err error) {
	factor := 1.0
	fail := false
	if o.Faults != nil {
		factor, fail = o.Faults.apply(q, root)
	}
	if fail {
		return nil, nil, math.NaN(), false, ErrInjected
	}
	res, w, err = o.Eng.ExecuteApprox(q, sample, opt)
	if err != nil {
		return res, w, math.NaN(), false, err
	}
	lat := float64(w.Total()) * o.MsPerWork * factor
	if budgetMs > 0 && lat > budgetMs {
		return res, w, budgetMs, true, nil
	}
	return res, w, lat, false, nil
}

// Execute satisfies the planspace executor contract (latency and timeout
// only): training environments use it to reward episodes with observed
// execution latency. Failed executions report NaN (the reward functions'
// worst-case path).
func (o *Observed) Execute(q *query.Query, n plan.Node, budgetMs float64) (latencyMs float64, timedOut bool) {
	_, _, lat, timedOut, err := o.Run(q, n, budgetMs)
	if err != nil {
		return math.NaN(), false
	}
	return lat, timedOut
}
