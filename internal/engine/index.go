package engine

import (
	"sort"

	"handsfree/internal/query"
	"handsfree/internal/storage"
)

// btreeIndex is a sorted (value, row) list supporting range and equality
// lookups — the executor's stand-in for a B-tree.
type btreeIndex struct {
	vals []int64
	rows []int32
}

func buildBTree(col []int64) *btreeIndex {
	ix := &btreeIndex{vals: make([]int64, len(col)), rows: make([]int32, len(col))}
	order := make([]int32, len(col))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return col[order[a]] < col[order[b]] })
	for i, r := range order {
		ix.vals[i] = col[r]
		ix.rows[i] = r
	}
	return ix
}

// rangeRows returns the rows with value in [lo, hi] (inclusive).
func (ix *btreeIndex) rangeRows(lo, hi int64, w *Work) []int32 {
	from := sort.Search(len(ix.vals), func(i int) bool { return ix.vals[i] >= lo })
	to := sort.Search(len(ix.vals), func(i int) bool { return ix.vals[i] > hi })
	w.IndexProbes += 2
	out := make([]int32, to-from)
	copy(out, ix.rows[from:to])
	w.TuplesRead += int64(len(out))
	return out
}

// lookupFilters returns candidate rows for the filters on the indexed
// column. With no usable filter it degenerates to all rows (a full index
// scan), which is charged accordingly.
func (ix *btreeIndex) lookupFilters(filters []query.Filter, column string, n int, w *Work) []int32 {
	lo, hi := int64(minInt64), int64(maxInt64)
	usable := false
	for _, f := range filters {
		if f.Column != column {
			continue
		}
		switch f.Op {
		case query.Eq:
			if f.Value > lo {
				lo = f.Value
			}
			if f.Value < hi {
				hi = f.Value
			}
			usable = true
		case query.Lt:
			if f.Value-1 < hi {
				hi = f.Value - 1
			}
			usable = true
		case query.Le:
			if f.Value < hi {
				hi = f.Value
			}
			usable = true
		case query.Gt:
			if f.Value+1 > lo {
				lo = f.Value + 1
			}
			usable = true
		case query.Ge:
			if f.Value > lo {
				lo = f.Value
			}
			usable = true
		}
	}
	if !usable {
		// Full index scan: every row in index order.
		w.TuplesRead += int64(n)
		w.IndexProbes++
		out := make([]int32, n)
		copy(out, ix.rows)
		return out
	}
	if lo > hi {
		return nil
	}
	return ix.rangeRows(lo, hi, w)
}

// eqRows returns the rows with exactly the given value.
func (ix *btreeIndex) eqRows(v int64, w *Work) []int32 {
	return ix.rangeRows(v, v, w)
}

// hashIndex maps value → rows; equality lookups only.
type hashIndex struct {
	buckets map[int64][]int32
}

func buildHash(col []int64) *hashIndex {
	ix := &hashIndex{buckets: make(map[int64][]int32, len(col))}
	for i, v := range col {
		ix.buckets[v] = append(ix.buckets[v], int32(i))
	}
	return ix
}

func (ix *hashIndex) eqRows(v int64, w *Work) []int32 {
	w.IndexProbes++
	rows := ix.buckets[v]
	w.TuplesRead += int64(len(rows))
	return rows
}

// lookupFilters returns candidates for an equality filter on the indexed
// column; any other shape degenerates to all rows.
func (ix *hashIndex) lookupFilters(filters []query.Filter, column string, n int, w *Work) []int32 {
	for _, f := range filters {
		if f.Column == column && f.Op == query.Eq {
			return ix.eqRows(f.Value, w)
		}
	}
	// Hash indexes cannot serve ranges: walk every bucket.
	w.TuplesRead += int64(n)
	out := make([]int32, 0, n)
	for _, rows := range ix.buckets {
		out = append(out, rows...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// btreeIndexFor returns (building and caching on first use) the B-tree index
// for a table column. The cache is mutex-guarded so concurrent executions
// share one build; holding the lock across the build means a cold index is
// built exactly once.
func (e *Engine) btreeIndexFor(t *storage.Table, column string) (*btreeIndex, error) {
	key := t.Name + "." + column
	e.mu.Lock()
	defer e.mu.Unlock()
	if ix, ok := e.btree[key]; ok {
		return ix, nil
	}
	col, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	ix := buildBTree(col)
	e.btree[key] = ix
	return ix, nil
}

// hashIndexFor returns (building and caching on first use) the hash index
// for a table column; see btreeIndexFor for the concurrency contract.
func (e *Engine) hashIndexFor(t *storage.Table, column string) (*hashIndex, error) {
	key := t.Name + "." + column
	e.mu.Lock()
	defer e.mu.Unlock()
	if ix, ok := e.hash[key]; ok {
		return ix, nil
	}
	col, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	ix := buildHash(col)
	e.hash[key] = ix
	return ix, nil
}
