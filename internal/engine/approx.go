package engine

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"handsfree/internal/query"
	"handsfree/internal/sketch"
)

// Approximate execution: sample-and-scale COUNT/SUM (and derived AVG) over
// a table's reservoir row sample, with bootstrap confidence intervals.
// This is where the reduced-scan payoff lives — the work accounting charges
// the sample scan, not the table scan — at the price of a quantified error.
// When the requested error budget cannot be met on the sample, execution
// reports ErrApproxBudget and the caller falls back to the exact path.

// ErrApproxBudget reports that the bootstrap confidence interval is wider
// than the requested error budget (or the matching sample is too small to
// bound the error at all); the caller should fall back to exact execution.
var ErrApproxBudget = errors.New("engine: error budget unsatisfiable on the sample")

// Default approximate-execution parameters.
const (
	// DefaultMaxRelError is the error budget when the caller passes none:
	// the CI half-width must stay within 5% of the point estimate.
	DefaultMaxRelError = 0.05
	// approxMinMatches is the minimum matching sample rows below which no
	// CLT-flavored interval is trustworthy — fall back to exact.
	approxMinMatches = 30
	// approxBootstrapB is the bootstrap resample count.
	approxBootstrapB = 200
	// approxConfidence is the two-sided CI level the bootstrap quantiles
	// target (99%: quantiles at 0.5% and 99.5%).
	approxConfidence = 0.99
)

// ApproxOptions controls one approximate execution.
type ApproxOptions struct {
	// MaxRelError is the error budget: every estimate's CI half-width must
	// be ≤ MaxRelError × |estimate| or execution falls back (≤ 0 means
	// DefaultMaxRelError).
	MaxRelError float64
}

func (o *ApproxOptions) fill() {
	if o.MaxRelError <= 0 {
		o.MaxRelError = DefaultMaxRelError
	}
}

// ApproxEstimate is one approximate aggregate with its bootstrap CI.
type ApproxEstimate struct {
	// Name matches the exact executor's output column naming
	// ("agg<i>_<KIND>"); derived averages are named "avg<i>_<column>".
	Name string
	// Kind is the aggregate function name (COUNT, SUM, or the derived AVG).
	Kind string
	// Value is the sample-scaled point estimate.
	Value float64
	// Lo and Hi bound the 99% bootstrap confidence interval.
	Lo, Hi float64
	// RelError is the CI half-width relative to |Value|.
	RelError float64
}

// ApproxResult carries the approximate answer.
type ApproxResult struct {
	Estimates []ApproxEstimate
	// SampleRows is how many sampled rows were scanned; MatchingRows how
	// many passed the filters.
	SampleRows   int
	MatchingRows int
	// SampleFraction is the fraction of the table actually scanned
	// (SampleRows / table rows) — the reduced-scan factor.
	SampleFraction float64
}

// ApproxEligible reports whether a query fits the approximate path:
// a single relation (no joins to sample through), no grouping, and at
// least one aggregate, all COUNT or SUM (MIN/MAX extremes cannot be
// bounded from a uniform sample). A nil return means eligible.
func ApproxEligible(q *query.Query) error {
	if len(q.Relations) != 1 {
		return fmt.Errorf("engine: approximate execution needs exactly one relation, query has %d", len(q.Relations))
	}
	if len(q.GroupBys) > 0 {
		return errors.New("engine: approximate execution does not support GROUP BY")
	}
	if len(q.Aggregates) == 0 {
		return errors.New("engine: approximate execution needs an aggregate (COUNT or SUM)")
	}
	for _, a := range q.Aggregates {
		switch a.Kind {
		case query.AggCount, query.AggSum:
		default:
			return fmt.Errorf("engine: approximate execution supports COUNT and SUM, not %s", a.Kind)
		}
	}
	return nil
}

// ExecuteApprox runs the query approximately over the table's row sample:
// filters are evaluated on the sampled rows, COUNT/SUM estimates are
// scaled by the sampled fraction, and every estimate carries a 99%
// bootstrap confidence interval. Work is charged for the sample scan only.
// Returns ErrApproxBudget when the budget cannot be met; the partial work
// (the sample scan that was performed) is still returned.
func (e *Engine) ExecuteApprox(q *query.Query, sample *sketch.RowSample, opt ApproxOptions) (*ApproxResult, *Work, error) {
	opt.fill()
	w := &Work{}
	if err := ApproxEligible(q); err != nil {
		return nil, w, err
	}
	if sample == nil || sample.Len() == 0 || sample.Seen <= 0 {
		return nil, w, errors.New("engine: no row sample for approximate execution")
	}
	rel := q.Relations[0]
	filters := q.FiltersOn(rel.Alias)
	filterCols := make([][]int64, len(filters))
	for i, f := range filters {
		col := sample.Column(f.Column)
		if col == nil {
			return nil, w, fmt.Errorf("engine: sample has no column %s.%s", rel.Table, f.Column)
		}
		filterCols[i] = col
	}
	aggCols := make([][]int64, len(q.Aggregates))
	for i, a := range q.Aggregates {
		if a.Column == "" {
			continue // COUNT(*)
		}
		col := sample.Column(a.Column)
		if col == nil {
			return nil, w, fmt.Errorf("engine: sample has no column %s.%s", rel.Table, a.Column)
		}
		aggCols[i] = col
	}

	// Scan the sample: the reduced scan the work accounting reflects.
	k := sample.Len()
	w.TuplesRead += int64(k)
	match := make([]int32, 0, k)
	for i := 0; i < k; i++ {
		ok := true
		for fi, f := range filters {
			w.Comparisons++
			if !matches(f.Op, filterCols[fi][i], f.Value) {
				ok = false
				break
			}
		}
		if ok {
			match = append(match, int32(i))
		}
	}

	res := &ApproxResult{
		SampleRows:     k,
		MatchingRows:   len(match),
		SampleFraction: float64(k) / float64(sample.Seen),
	}
	if len(match) < approxMinMatches {
		return res, w, ErrApproxBudget
	}

	// Point estimates scale the sample aggregates by rows/sampleRows. The
	// bootstrap resamples the *full* sample (not just the matches): the
	// dominant uncertainty for COUNT/SUM is which table rows a sample of
	// this size would have caught, so the match indicator must vary
	// across resamples. All aggregates share the same resamples, keeping
	// a result row internally consistent (and letting the AVG ratio's
	// scale factors cancel).
	scale := float64(sample.Seen) / float64(k)
	isMatch := make([]bool, k)
	for _, r := range match {
		isMatch[r] = true
	}
	// Deterministic per query: the same query over the same sample always
	// reports the same interval (tests and replayed workloads depend on
	// reproducibility the same way the latency model's noise field does).
	h := fnv.New64a()
	h.Write([]byte(q.Key()))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	// One pass per resample accumulates the match count and every SUM
	// column at once.
	sumIdx := make([]int, 0, len(q.Aggregates))
	for i, a := range q.Aggregates {
		if a.Kind == query.AggSum {
			sumIdx = append(sumIdx, i)
		}
	}
	bootCount := make([]float64, approxBootstrapB)
	bootSums := make([][]float64, len(sumIdx))
	for i := range bootSums {
		bootSums[i] = make([]float64, approxBootstrapB)
	}
	for b := 0; b < approxBootstrapB; b++ {
		var cnt int64
		sums := make([]int64, len(sumIdx))
		for j := 0; j < k; j++ {
			r := rng.Intn(k)
			if !isMatch[r] {
				continue
			}
			cnt++
			for si, ai := range sumIdx {
				sums[si] += aggCols[ai][r]
			}
		}
		bootCount[b] = float64(cnt)
		for si := range sumIdx {
			bootSums[si][b] = float64(sums[si])
		}
	}

	var exactSums []int64
	if len(sumIdx) > 0 {
		exactSums = make([]int64, len(sumIdx))
		for si, ai := range sumIdx {
			for _, r := range match {
				exactSums[si] += aggCols[ai][r]
			}
		}
	}
	si := 0
	for i, a := range q.Aggregates {
		name := fmt.Sprintf("agg%d_%s", i, a.Kind)
		switch a.Kind {
		case query.AggCount:
			vals := make([]float64, approxBootstrapB)
			for b, c := range bootCount {
				vals[b] = scale * c
			}
			lo, hi := quantiles(vals, approxConfidence)
			res.Estimates = append(res.Estimates,
				finishEstimate(name, "COUNT", scale*float64(len(match)), lo, hi))
		case query.AggSum:
			vals := make([]float64, approxBootstrapB)
			for b, s := range bootSums[si] {
				vals[b] = scale * s
			}
			lo, hi := quantiles(vals, approxConfidence)
			res.Estimates = append(res.Estimates,
				finishEstimate(name, "SUM", scale*float64(exactSums[si]), lo, hi))
			// Derived AVG = SUM/COUNT over the same resamples: the scale
			// factors cancel in the ratio, which is why AVG is often far
			// tighter than SUM itself.
			avgVals := make([]float64, 0, approxBootstrapB)
			for b := range bootSums[si] {
				if bootCount[b] > 0 {
					avgVals = append(avgVals, bootSums[si][b]/bootCount[b])
				}
			}
			avgPoint := float64(exactSums[si]) / float64(len(match))
			alo, ahi := quantiles(avgVals, approxConfidence)
			res.Estimates = append(res.Estimates,
				finishEstimate(fmt.Sprintf("avg%d_%s", i, a.Column), "AVG", avgPoint, alo, ahi))
			si++
		}
	}
	w.TuplesEmitted++
	w.RowsMaterialized++

	for _, est := range res.Estimates {
		if est.RelError > opt.MaxRelError {
			return res, w, ErrApproxBudget
		}
	}
	return res, w, nil
}

func finishEstimate(name, kind string, point, lo, hi float64) ApproxEstimate {
	half := (hi - lo) / 2
	rel := 0.0
	if point != 0 {
		rel = half / abs(point)
	} else if half > 0 {
		rel = 1
	}
	return ApproxEstimate{Name: name, Kind: kind, Value: point, Lo: lo, Hi: hi, RelError: rel}
}

func quantiles(vals []float64, confidence float64) (lo, hi float64) {
	sorted := append(make([]float64, 0, len(vals)), vals...)
	sort.Float64s(sorted)
	alpha := (1 - confidence) / 2
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(alpha), at(1 - alpha)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
