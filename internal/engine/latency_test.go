package engine

import (
	"math"
	"math/rand"
	"testing"

	"handsfree/internal/catalog"
	"handsfree/internal/cost"
	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/stats"
)

func latencyFixture(t *testing.T) (*LatencyModel, *cost.Model, *query.Query) {
	t.Helper()
	cat := catalog.New()
	for _, tbl := range []*catalog.Table{
		{Name: "title", Rows: 10000, Columns: []catalog.Column{{Name: "id"}, {Name: "production_year"}}},
		{Name: "movie_companies", Rows: 50000, Columns: []catalog.Column{{Name: "id"}, {Name: "movie_id"}, {Name: "company_id"}}},
		{Name: "company_name", Rows: 500, Columns: []catalog.Column{{Name: "id"}, {Name: "country_code"}}},
	} {
		if err := cat.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	st := stats.NewStats()
	seq := func(n int) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = int64(i)
		}
		return v
	}
	uni := func(n int, domain int64) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = rng.Int63n(domain)
		}
		return v
	}
	st.Analyze("title", map[string][]int64{"id": seq(10000), "production_year": uni(10000, 130)}, 32, 4)
	st.Analyze("movie_companies", map[string][]int64{"id": seq(50000), "movie_id": uni(50000, 10000), "company_id": uni(50000, 500)}, 32, 4)
	st.Analyze("company_name", map[string][]int64{"id": seq(500), "country_code": uni(500, 50)}, 32, 4)

	est := stats.NewEstimator(cat, st)
	oracle := stats.NewOracle(est, 11)
	q := &query.Query{
		Relations: []query.Relation{
			{Table: "title", Alias: "t"},
			{Table: "movie_companies", Alias: "mc"},
			{Table: "company_name", Alias: "cn"},
		},
		Joins: []query.Join{
			{LeftAlias: "mc", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "mc", LeftCol: "company_id", RightAlias: "cn", RightCol: "id"},
		},
		Filters: []query.Filter{{Alias: "t", Column: "production_year", Op: query.Lt, Value: 13}},
	}
	return NewLatencyModel(oracle, 5), cost.New(cost.DefaultParams(), est), q
}

func goodPlan(q *query.Query) plan.Node {
	return plan.JoinNodes(q, plan.HashJoin,
		plan.JoinNodes(q, plan.HashJoin,
			plan.BuildScan(q, "mc", plan.SeqScan, ""),
			plan.BuildScan(q, "t", plan.SeqScan, "")),
		plan.BuildScan(q, "cn", plan.SeqScan, ""))
}

func crossPlan(q *query.Query) plan.Node {
	return plan.JoinNodes(q, plan.NestLoop,
		plan.JoinNodes(q, plan.NestLoop,
			plan.BuildScan(q, "t", plan.SeqScan, ""),
			plan.BuildScan(q, "cn", plan.SeqScan, "")),
		plan.BuildScan(q, "mc", plan.SeqScan, ""))
}

func TestLatencyDeterministic(t *testing.T) {
	lm, _, q := latencyFixture(t)
	p := goodPlan(q)
	if lm.Latency(q, p) != lm.Latency(q, p) {
		t.Fatal("latency not deterministic for identical (query, plan)")
	}
}

func TestLatencyNoiseBounded(t *testing.T) {
	lm, _, q := latencyFixture(t)
	p := goodPlan(q)
	base := lm.TrueCost(q, p) * lm.MsPerUnit
	l := lm.Latency(q, p)
	ratio := l / base
	if ratio < math.Exp(-5*lm.NoiseSigma) || ratio > math.Exp(5*lm.NoiseSigma) {
		t.Fatalf("noise ratio %v outside ±5σ", ratio)
	}
}

func TestCatastrophicPlansCatastrophicallySlow(t *testing.T) {
	lm, _, q := latencyFixture(t)
	good := lm.Latency(q, goodPlan(q))
	bad := lm.Latency(q, crossPlan(q))
	if bad < good*100 {
		t.Fatalf("cross-product plan (%v ms) should be ≫ good plan (%v ms)", bad, good)
	}
}

func TestExecuteBudgetCensorship(t *testing.T) {
	lm, _, q := latencyFixture(t)
	good := goodPlan(q)
	bad := crossPlan(q)
	gl, gto := lm.Execute(q, good, 1e7)
	if gto {
		t.Fatalf("good plan timed out at %v ms budget", 1e7)
	}
	if gl <= 0 {
		t.Fatal("good plan latency not positive")
	}
	budget := gl * 10
	bl, bto := lm.Execute(q, bad, budget)
	if !bto {
		t.Fatal("catastrophic plan should exceed 10× budget")
	}
	if bl != budget {
		t.Fatalf("timed-out latency = %v, want censored at %v", bl, budget)
	}
}

func TestCostLatencyDivergence(t *testing.T) {
	// The whole point of the substrate: the optimizer's cost model and the
	// latency model must disagree on plan rankings for *some* plan pairs,
	// while agreeing that catastrophic plans are bad.
	lm, cm, q := latencyFixture(t)
	plans := []plan.Node{
		goodPlan(q),
		plan.JoinNodes(q, plan.MergeJoin,
			plan.JoinNodes(q, plan.HashJoin,
				plan.BuildScan(q, "mc", plan.SeqScan, ""),
				plan.BuildScan(q, "t", plan.SeqScan, "")),
			plan.BuildScan(q, "cn", plan.SeqScan, "")),
		plan.JoinNodes(q, plan.HashJoin,
			plan.JoinNodes(q, plan.NestLoop,
				plan.BuildScan(q, "cn", plan.SeqScan, ""),
				plan.BuildScan(q, "mc", plan.SeqScan, "")),
			plan.BuildScan(q, "t", plan.SeqScan, "")),
		plan.JoinNodes(q, plan.HashJoin,
			plan.JoinNodes(q, plan.HashJoin,
				plan.BuildScan(q, "t", plan.SeqScan, ""),
				plan.BuildScan(q, "mc", plan.SeqScan, "")),
			plan.BuildScan(q, "cn", plan.SeqScan, "")),
	}
	costs := make([]float64, len(plans))
	lats := make([]float64, len(plans))
	for i, p := range plans {
		costs[i] = cm.Cost(q, p)
		lats[i] = lm.Latency(q, p)
	}
	// Check that cost ordering and latency ordering are not identical
	// permutations (there is something to learn).
	sameOrder := true
	for i := 0; i < len(plans); i++ {
		for j := i + 1; j < len(plans); j++ {
			if (costs[i] < costs[j]) != (lats[i] < lats[j]) {
				sameOrder = false
			}
		}
	}
	if sameOrder {
		t.Log("cost and latency fully rank-agree on this plan set (weak divergence)")
	}
	// And the cross product is terrible under both.
	cross := crossPlan(q)
	if cm.Cost(q, cross) < costs[0]*10 || lm.Latency(q, cross) < lats[0]*10 {
		t.Fatal("both models must agree catastrophic plans are catastrophic")
	}
}

func TestHardwareParamsDifferFromPlanner(t *testing.T) {
	hp := HardwareParams()
	dp := cost.DefaultParams()
	if hp == dp {
		t.Fatal("hardware params identical to planner params: no systematic divergence")
	}
}
