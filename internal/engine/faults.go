package engine

import (
	"sync"

	"handsfree/internal/plan"
	"handsfree/internal/query"
)

// Faults is the deterministic fault-injection seam over observed execution:
// per-table and per-plan-signature latency inflation, periodic latency
// spikes, and injected execution failures. It exists so tests (and chaos
// drills) can reproduce the production incidents the drift detector is built
// for — a table's storage degrading, one plan shape hitting a pathological
// code path, a noisy neighbor — without any nondeterminism: every fault is a
// pure function of the (query, plan) pair plus a mutex-guarded execution
// counter, so a single-threaded replay observes the exact same faults in the
// exact same order.
//
// A zero-valued/fresh Faults injects nothing; Clear returns to that state
// (the "incident resolved" transition in drift tests).
type Faults struct {
	mu sync.Mutex

	tableFactor map[string]float64
	planFactor  map[string]float64
	failPlans   map[string]bool

	spikeEvery  int
	spikeFactor float64
	failEvery   int

	execs    uint64 // executions routed through the seam
	spikes   uint64 // spike injections
	failures uint64 // failure injections
}

// NewFaults returns an empty (inject-nothing) fault seam.
func NewFaults() *Faults { return &Faults{} }

// InflateTable multiplies the observed latency of every execution whose query
// reads the table (models a degraded disk/cache under one relation). A
// factor ≤ 0 or 1 removes the entry.
func (f *Faults) InflateTable(table string, factor float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if factor <= 0 || factor == 1 {
		delete(f.tableFactor, table)
		return
	}
	if f.tableFactor == nil {
		f.tableFactor = make(map[string]float64)
	}
	f.tableFactor[table] = factor
}

// InflatePlan multiplies the observed latency of executions of the exact plan
// shape (plan.Node.Signature). Because learned and expert plans for the same
// query differ precisely in their signatures, this is the knob that injects
// *differential* drift: the learned plan regresses while the expert baseline
// on the same fingerprint stays healthy. A factor ≤ 0 or 1 removes the entry.
func (f *Faults) InflatePlan(signature string, factor float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if factor <= 0 || factor == 1 {
		delete(f.planFactor, signature)
		return
	}
	if f.planFactor == nil {
		f.planFactor = make(map[string]float64)
	}
	f.planFactor[signature] = factor
}

// Spike inflates every `every`-th execution through the seam by factor
// (periodic latency spikes: checkpoints, GC pauses). every ≤ 0 disables.
func (f *Faults) Spike(every int, factor float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.spikeEvery, f.spikeFactor = every, factor
}

// FailPlan makes every execution of the exact plan shape fail with
// ErrInjected.
func (f *Faults) FailPlan(signature string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failPlans == nil {
		f.failPlans = make(map[string]bool)
	}
	f.failPlans[signature] = true
}

// FailEvery makes every `every`-th execution through the seam fail with
// ErrInjected (transient worker crashes). every ≤ 0 disables.
func (f *Faults) FailEvery(every int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failEvery = every
}

// Clear removes every configured fault (injection counters are kept).
func (f *Faults) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tableFactor, f.planFactor, f.failPlans = nil, nil, nil
	f.spikeEvery, f.spikeFactor, f.failEvery = 0, 0, 0
}

// FaultStats counts what the seam has injected so far.
type FaultStats struct {
	// Executions is how many executions were routed through the seam.
	Executions uint64
	// Spikes and Failures count injected spikes and failures.
	Spikes   uint64
	Failures uint64
}

// Stats snapshots the injection counters.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FaultStats{Executions: f.execs, Spikes: f.spikes, Failures: f.failures}
}

// Active reports whether any fault is currently configured.
func (f *Faults) Active() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.tableFactor) > 0 || len(f.planFactor) > 0 || len(f.failPlans) > 0 ||
		f.spikeEvery > 0 || f.failEvery > 0
}

// apply resolves the faults for one execution: the combined latency inflation
// factor and whether the execution fails outright. It advances the seam's
// execution counter (the clock for periodic spikes/failures).
func (f *Faults) apply(q *query.Query, n plan.Node) (factor float64, fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.execs++
	factor = 1
	if len(f.tableFactor) > 0 && q != nil {
		for _, r := range q.Relations {
			if v, ok := f.tableFactor[r.Table]; ok {
				factor *= v
			}
		}
	}
	var sig string
	if n != nil && (len(f.planFactor) > 0 || len(f.failPlans) > 0) {
		sig = n.Signature()
	}
	if v, ok := f.planFactor[sig]; ok && sig != "" {
		factor *= v
	}
	if f.spikeEvery > 0 && f.execs%uint64(f.spikeEvery) == 0 {
		factor *= f.spikeFactor
		f.spikes++
	}
	if sig != "" && f.failPlans[sig] {
		f.failures++
		return factor, true
	}
	if f.failEvery > 0 && f.execs%uint64(f.failEvery) == 0 {
		f.failures++
		return factor, true
	}
	return factor, false
}
