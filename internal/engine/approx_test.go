package engine

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/sketch"
	"handsfree/internal/storage"
)

// approxFixture builds a one-table database, its row sample, and an
// aggregate query with an optional filter.
func approxFixture(t *testing.T, rows int, filter *query.Filter) (*Engine, *storage.Table, *sketch.RowSample, *query.Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(101))
	tab := &storage.Table{Name: "t", N: rows, Cols: map[string][]int64{}}
	v := make([]int64, rows)
	for i := range v {
		v[i] = rng.Int63n(1000)
	}
	tab.Cols["v"] = v
	db := &storage.DB{Tables: map[string]*storage.Table{"t": tab}}
	sample := sketch.NewAnalyzer(sketch.Config{Seed: 9}).AnalyzeTable(tab).Sample
	q := &query.Query{
		Relations: []query.Relation{{Table: "t", Alias: "t"}},
		Aggregates: []query.Aggregate{
			{Kind: query.AggCount},
			{Kind: query.AggSum, Alias: "t", Column: "v"},
		},
	}
	if filter != nil {
		q.Filters = []query.Filter{*filter}
	}
	return New(db), tab, sample, q
}

// exactAnswers computes the true COUNT, SUM, AVG under the query's filters.
func exactAnswers(tab *storage.Table, q *query.Query) (count, sum float64) {
	v := tab.Cols["v"]
	for i := 0; i < tab.N; i++ {
		ok := true
		for _, f := range q.Filters {
			if !matches(f.Op, tab.Cols[f.Column][i], f.Value) {
				ok = false
				break
			}
		}
		if ok {
			count++
			sum += float64(v[i])
		}
	}
	return count, sum
}

// TestExecuteApproxCIsCoverExact is the acceptance property: every
// reported confidence interval covers the exact answer, and the point
// estimates land within the budget of the truth.
func TestExecuteApproxCIsCoverExact(t *testing.T) {
	// A mildly selective filter (~70% pass) keeps the CI within the 5%
	// budget at the default sample size.
	f := &query.Filter{Alias: "t", Column: "v", Op: query.Lt, Value: 700}
	eng, tab, sample, q := approxFixture(t, 200000, f)
	res, w, err := eng.ExecuteApprox(q, sample, ApproxOptions{MaxRelError: 0.05})
	if err != nil {
		t.Fatalf("ExecuteApprox: %v", err)
	}
	count, sum := exactAnswers(tab, q)
	want := map[string]float64{
		"agg0_COUNT": count,
		"agg1_SUM":   sum,
		"avg1_v":     sum / count,
	}
	if len(res.Estimates) != len(want) {
		t.Fatalf("got %d estimates, want %d", len(res.Estimates), len(want))
	}
	for _, est := range res.Estimates {
		exact, ok := want[est.Name]
		if !ok {
			t.Fatalf("unexpected estimate %q", est.Name)
		}
		if est.Lo > exact || est.Hi < exact {
			t.Errorf("%s: CI [%.1f, %.1f] does not cover exact %.1f", est.Name, est.Lo, est.Hi, exact)
		}
		if rel := math.Abs(est.Value-exact) / exact; rel > 0.05 {
			t.Errorf("%s: point estimate %.1f is %.1f%% off exact %.1f", est.Name, est.Value, 100*rel, exact)
		}
		if est.RelError > 0.05 {
			t.Errorf("%s: reported rel error %.3f exceeds the met budget", est.Name, est.RelError)
		}
	}
	if res.SampleRows != sample.Len() {
		t.Errorf("SampleRows = %d, want %d", res.SampleRows, sample.Len())
	}
	if w.TuplesRead != int64(sample.Len()) {
		t.Errorf("approx TuplesRead = %d, want the sample scan %d", w.TuplesRead, sample.Len())
	}
}

// TestExecuteApproxWorkReduction is the ≥5× acceptance criterion: the
// approximate path must charge at least 5× fewer work units than exact
// execution of the same aggregate at the 5% budget.
func TestExecuteApproxWorkReduction(t *testing.T) {
	eng, _, sample, q := approxFixture(t, 200000, nil)
	_, aw, err := eng.ExecuteApprox(q, sample, ApproxOptions{MaxRelError: 0.05})
	if err != nil {
		t.Fatalf("ExecuteApprox: %v", err)
	}
	root := plan.FinishAgg(q, plan.HashAgg, plan.BuildScan(q, "t", plan.SeqScan, ""))
	_, ew, err := eng.Execute(q, root)
	if err != nil {
		t.Fatalf("exact Execute: %v", err)
	}
	if ew.Total() < 5*aw.Total() {
		t.Errorf("approx work %d not ≥5× under exact work %d", aw.Total(), ew.Total())
	}
}

// TestExecuteApproxFallsBack pins both fallback triggers: too few
// matching sample rows, and a budget tighter than the CI.
func TestExecuteApproxFallsBack(t *testing.T) {
	// Equality on one of 1000 uniform values matches ~0.1% of rows —
	// a handful of sample rows, below the minimum.
	f := &query.Filter{Alias: "t", Column: "v", Op: query.Eq, Value: 3}
	eng, _, sample, q := approxFixture(t, 200000, f)
	_, _, err := eng.ExecuteApprox(q, sample, ApproxOptions{MaxRelError: 0.05})
	if !errors.Is(err, ErrApproxBudget) {
		t.Fatalf("tiny match set: err = %v, want ErrApproxBudget", err)
	}
	// A ~30%-selective filter meets a 25% budget but not 0.1%.
	f2 := &query.Filter{Alias: "t", Column: "v", Op: query.Lt, Value: 300}
	eng2, _, sample2, q2 := approxFixture(t, 200000, f2)
	if _, _, err := eng2.ExecuteApprox(q2, sample2, ApproxOptions{MaxRelError: 0.25}); err != nil {
		t.Fatalf("25%% budget should be satisfiable: %v", err)
	}
	res, _, err := eng2.ExecuteApprox(q2, sample2, ApproxOptions{MaxRelError: 0.001})
	if !errors.Is(err, ErrApproxBudget) {
		t.Fatalf("0.1%% budget: err = %v, want ErrApproxBudget", err)
	}
	if res == nil || len(res.Estimates) == 0 {
		t.Fatal("budget failure should still return the estimates it computed")
	}
}

// TestApproxEligible pins the eligibility rules.
func TestApproxEligible(t *testing.T) {
	base := func() *query.Query {
		return &query.Query{
			Relations:  []query.Relation{{Table: "t", Alias: "t"}},
			Aggregates: []query.Aggregate{{Kind: query.AggCount}},
		}
	}
	if err := ApproxEligible(base()); err != nil {
		t.Errorf("COUNT over one relation should be eligible: %v", err)
	}
	q := base()
	q.Relations = append(q.Relations, query.Relation{Table: "u", Alias: "u"})
	if ApproxEligible(q) == nil {
		t.Error("two relations should be ineligible")
	}
	q = base()
	q.GroupBys = []query.GroupBy{{Alias: "t", Column: "v"}}
	if ApproxEligible(q) == nil {
		t.Error("GROUP BY should be ineligible")
	}
	q = base()
	q.Aggregates = []query.Aggregate{{Kind: query.AggMin, Alias: "t", Column: "v"}}
	if ApproxEligible(q) == nil {
		t.Error("MIN should be ineligible")
	}
	q = base()
	q.Aggregates = nil
	if ApproxEligible(q) == nil {
		t.Error("no aggregates should be ineligible")
	}
}

// TestExecuteApproxDeterministic pins reproducibility: the same query over
// the same sample reports identical estimates and intervals.
func TestExecuteApproxDeterministic(t *testing.T) {
	f := &query.Filter{Alias: "t", Column: "v", Op: query.Ge, Value: 200}
	eng, _, sample, q := approxFixture(t, 100000, f)
	a, _, err := eng.ExecuteApprox(q, sample, ApproxOptions{})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, _, err := eng.ExecuteApprox(q, sample, ApproxOptions{})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatalf("estimate %d differs across identical runs: %+v vs %+v", i, a.Estimates[i], b.Estimates[i])
		}
	}
}

// TestRunApproxFaultsAndBudget checks the Observed wrapper applies the
// fault seam's inflation to approximate latencies and censors at the
// budget, mirroring the exact path's semantics.
func TestRunApproxFaultsAndBudget(t *testing.T) {
	eng, _, sample, q := approxFixture(t, 100000, nil)
	o := NewObserved(eng)
	root := plan.FinishAgg(q, plan.HashAgg, plan.BuildScan(q, "t", plan.SeqScan, ""))
	_, w, lat, timedOut, err := o.RunApprox(q, root, sample, ApproxOptions{}, 0)
	if err != nil || timedOut {
		t.Fatalf("baseline RunApprox: err=%v timedOut=%v", err, timedOut)
	}
	if want := float64(w.Total()) * o.MsPerWork; lat != want {
		t.Errorf("latency %v != work-derived %v", lat, want)
	}
	o.Faults.InflateTable("t", 10)
	_, _, inflated, _, err := o.RunApprox(q, root, sample, ApproxOptions{}, 0)
	if err != nil {
		t.Fatalf("inflated RunApprox: %v", err)
	}
	if inflated <= lat*9 {
		t.Errorf("fault inflation not applied: %v vs baseline %v", inflated, lat)
	}
	_, _, censored, timedOut, err := o.RunApprox(q, root, sample, ApproxOptions{}, lat)
	if err != nil {
		t.Fatalf("budgeted RunApprox: %v", err)
	}
	if !timedOut || censored != lat {
		t.Errorf("budget censoring: timedOut=%v latency=%v, want true/%v", timedOut, censored, lat)
	}
}
