package engine

import (
	"math"
	"testing"

	"handsfree/internal/plan"
)

func TestParallelLatencyBelowAdditive(t *testing.T) {
	lm, _, q := latencyFixture(t)
	lm.NoiseSigma = 0 // isolate the structural effect
	bushy := plan.JoinNodes(q, plan.HashJoin,
		plan.JoinNodes(q, plan.HashJoin,
			plan.BuildScan(q, "mc", plan.SeqScan, ""),
			plan.BuildScan(q, "t", plan.SeqScan, "")),
		plan.BuildScan(q, "cn", plan.SeqScan, ""))

	lm.Parallel = true
	par := lm.Latency(q, bushy)
	lm.Parallel = false
	add := lm.Latency(q, bushy)
	if par >= add {
		t.Fatalf("parallel latency (%v) not below additive (%v)", par, add)
	}
	// Parallelism can save at most the cheaper subtree's work: the saving is
	// bounded by the additive total.
	if par < add/4 {
		t.Fatalf("parallel latency (%v) implausibly small vs additive (%v)", par, add)
	}
}

func TestParallelLatencyFavorsBushyTrees(t *testing.T) {
	// With inter-operator parallelism, a bushy tree whose two halves run
	// concurrently can beat the equivalent left-deep chain even when the
	// additive model ranks them closer. This is the §4 "latency is not
	// linear" divergence.
	lm, _, q := latencyFixture(t)
	lm.NoiseSigma = 0

	leftDeep := plan.JoinNodes(q, plan.HashJoin,
		plan.JoinNodes(q, plan.HashJoin,
			plan.BuildScan(q, "mc", plan.SeqScan, ""),
			plan.BuildScan(q, "t", plan.SeqScan, "")),
		plan.BuildScan(q, "cn", plan.SeqScan, ""))

	lm.Parallel = true
	parLD := lm.Latency(q, leftDeep)
	lm.Parallel = false
	addLD := lm.Latency(q, leftDeep)
	saving := (addLD - parLD) / addLD
	if saving <= 0 || saving >= 1 {
		t.Fatalf("parallel saving fraction %v out of (0,1)", saving)
	}
}

func TestParallelOffMatchesTruthCost(t *testing.T) {
	lm, _, q := latencyFixture(t)
	lm.NoiseSigma = 0
	lm.Parallel = false
	p := goodPlan(q)
	want := lm.TrueCost(q, p) * lm.MsPerUnit
	got := lm.Latency(q, p)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("additive latency %v != truth cost × MsPerUnit %v", got, want)
	}
}

func TestParallelLatencyDeterministic(t *testing.T) {
	lm, _, q := latencyFixture(t)
	p := goodPlan(q)
	if lm.Latency(q, p) != lm.Latency(q, p) {
		t.Fatal("parallel latency not deterministic")
	}
}
