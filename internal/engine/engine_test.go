package engine

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/storage"
)

// tinyDB builds a small deterministic database for exact-answer tests.
//
//	users:  id 0..9,  age = id*10
//	orders: id 0..19, user_id = id % 10, amount = id
func tinyDB() *storage.DB {
	db := storage.NewDB()
	users := storage.NewTable("users", 10)
	ids := make([]int64, 10)
	ages := make([]int64, 10)
	for i := range ids {
		ids[i] = int64(i)
		ages[i] = int64(i * 10)
	}
	_ = users.AddColumn("id", ids)
	_ = users.AddColumn("age", ages)
	db.Add(users)

	orders := storage.NewTable("orders", 20)
	oid := make([]int64, 20)
	uid := make([]int64, 20)
	amt := make([]int64, 20)
	for i := range oid {
		oid[i] = int64(i)
		uid[i] = int64(i % 10)
		amt[i] = int64(i)
	}
	_ = orders.AddColumn("id", oid)
	_ = orders.AddColumn("user_id", uid)
	_ = orders.AddColumn("amount", amt)
	db.Add(orders)
	return db
}

func tinyQuery() *query.Query {
	return &query.Query{
		Relations: []query.Relation{
			{Table: "users", Alias: "u"},
			{Table: "orders", Alias: "o"},
		},
		Joins: []query.Join{
			{LeftAlias: "o", LeftCol: "user_id", RightAlias: "u", RightCol: "id"},
		},
	}
}

// rowsOf flattens a result into sorted strings for order-insensitive
// comparison.
func rowsOf(t *testing.T, r *Result, cols ...string) []string {
	t.Helper()
	out := make([]string, r.N)
	for i := 0; i < r.N; i++ {
		s := ""
		for _, c := range cols {
			col, err := r.Column(c)
			if err != nil {
				t.Fatal(err)
			}
			s += fmt.Sprintf("%d|", col[i])
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func TestJoinAlgorithmsAgree(t *testing.T) {
	db := tinyDB()
	q := tinyQuery()
	var want []string
	for _, algo := range plan.JoinAlgos {
		e := New(db)
		root := plan.JoinNodes(q, algo, plan.BuildScan(q, "o", plan.SeqScan, ""), plan.BuildScan(q, "u", plan.SeqScan, ""))
		res, _, err := e.Execute(q, root)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.N != 20 {
			t.Fatalf("%v: joined %d rows, want 20 (every order matches one user)", algo, res.N)
		}
		got := rowsOf(t, res, "o.id", "u.id", "u.age")
		if want == nil {
			want = got
		} else {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: row %d = %q, want %q", algo, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFiltersApplied(t *testing.T) {
	db := tinyDB()
	q := tinyQuery()
	q.Filters = []query.Filter{{Alias: "u", Column: "age", Op: query.Ge, Value: 50}}
	e := New(db)
	root := plan.JoinNodes(q, plan.HashJoin,
		plan.BuildScan(q, "o", plan.SeqScan, ""),
		plan.BuildScan(q, "u", plan.SeqScan, ""))
	res, _, err := e.Execute(q, root)
	if err != nil {
		t.Fatal(err)
	}
	// Users 5..9 qualify; each has 2 orders → 10 rows.
	if res.N != 10 {
		t.Fatalf("got %d rows, want 10", res.N)
	}
	ages, _ := res.Column("u.age")
	for _, a := range ages {
		if a < 50 {
			t.Fatalf("row with age %d escaped the filter", a)
		}
	}
}

func TestIndexScanMatchesSeqScan(t *testing.T) {
	db := tinyDB()
	q := &query.Query{
		Relations: []query.Relation{{Table: "orders", Alias: "o"}},
		Filters:   []query.Filter{{Alias: "o", Column: "user_id", Op: query.Eq, Value: 3}},
	}
	for _, access := range []struct {
		ap  plan.AccessPath
		col string
	}{
		{plan.IndexScan, "user_id"},
		{plan.HashIndexScan, "user_id"},
	} {
		e := New(db)
		res, _, err := e.Execute(q, plan.BuildScan(q, "o", access.ap, access.col))
		if err != nil {
			t.Fatal(err)
		}
		seqRes, _, err := New(db).Execute(q, plan.BuildScan(q, "o", plan.SeqScan, ""))
		if err != nil {
			t.Fatal(err)
		}
		got := rowsOf(t, res, "o.id", "o.amount")
		want := rowsOf(t, seqRes, "o.id", "o.amount")
		if len(got) != len(want) {
			t.Fatalf("%v: %d rows vs seq %d", access.ap, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v row %d: %q vs %q", access.ap, i, got[i], want[i])
			}
		}
	}
}

func TestIndexRangeScan(t *testing.T) {
	db := tinyDB()
	q := &query.Query{
		Relations: []query.Relation{{Table: "users", Alias: "u"}},
		Filters: []query.Filter{
			{Alias: "u", Column: "age", Op: query.Gt, Value: 20},
			{Alias: "u", Column: "age", Op: query.Le, Value: 60},
		},
	}
	e := New(db)
	res, w, err := e.Execute(q, plan.BuildScan(q, "u", plan.IndexScan, "age"))
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 4 { // ages 30,40,50,60
		t.Fatalf("got %d rows, want 4", res.N)
	}
	// Range scan must read fewer tuples than the whole table.
	if w.TuplesRead >= 10 {
		t.Fatalf("index range scan read %d tuples, want < 10", w.TuplesRead)
	}
}

func TestCrossProductCounts(t *testing.T) {
	db := tinyDB()
	q := tinyQuery()
	q.Joins = nil // force a cross product
	e := New(db)
	root := plan.JoinNodes(q, plan.NestLoop,
		plan.BuildScan(q, "o", plan.SeqScan, ""),
		plan.BuildScan(q, "u", plan.SeqScan, ""))
	res, _, err := e.Execute(q, root)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 200 {
		t.Fatalf("cross product produced %d rows, want 200", res.N)
	}
}

func TestBudgetAborts(t *testing.T) {
	db := tinyDB()
	q := tinyQuery()
	q.Joins = nil
	e := New(db)
	e.Budget = 50
	root := plan.JoinNodes(q, plan.NestLoop,
		plan.BuildScan(q, "o", plan.SeqScan, ""),
		plan.BuildScan(q, "u", plan.SeqScan, ""))
	_, _, err := e.Execute(q, root)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestAggregation(t *testing.T) {
	db := tinyDB()
	q := &query.Query{
		Relations:  []query.Relation{{Table: "orders", Alias: "o"}},
		GroupBys:   []query.GroupBy{{Alias: "o", Column: "user_id"}},
		Aggregates: []query.Aggregate{{Kind: query.AggCount}, {Kind: query.AggSum, Alias: "o", Column: "amount"}},
	}
	for _, algo := range plan.AggAlgos {
		e := New(db)
		root := plan.FinishAgg(q, algo, plan.BuildScan(q, "o", plan.SeqScan, ""))
		res, _, err := e.Execute(q, root)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.N != 10 {
			t.Fatalf("%v: %d groups, want 10", algo, res.N)
		}
		uids, _ := res.Column("o.user_id")
		counts, _ := res.Column("agg0_COUNT")
		sums, _ := res.Column("agg1_SUM")
		for i := 0; i < res.N; i++ {
			if counts[i] != 2 {
				t.Fatalf("%v: group %d count = %d, want 2", algo, uids[i], counts[i])
			}
			// user u has orders u and u+10 → sum = 2u+10.
			if sums[i] != 2*uids[i]+10 {
				t.Fatalf("%v: group %d sum = %d, want %d", algo, uids[i], sums[i], 2*uids[i]+10)
			}
		}
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	db := tinyDB()
	q := &query.Query{
		Relations:  []query.Relation{{Table: "users", Alias: "u"}},
		Filters:    []query.Filter{{Alias: "u", Column: "age", Op: query.Gt, Value: 1000}},
		Aggregates: []query.Aggregate{{Kind: query.AggCount}},
	}
	e := New(db)
	res, _, err := e.Execute(q, plan.FinishAgg(q, plan.HashAgg, plan.BuildScan(q, "u", plan.SeqScan, "")))
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 {
		t.Fatalf("global aggregate produced %d rows, want 1", res.N)
	}
	c, _ := res.Column("agg0_COUNT")
	if c[0] != 0 {
		t.Fatalf("COUNT over empty input = %d, want 0", c[0])
	}
}

func TestMinMaxAggregates(t *testing.T) {
	db := tinyDB()
	q := &query.Query{
		Relations: []query.Relation{{Table: "users", Alias: "u"}},
		Aggregates: []query.Aggregate{
			{Kind: query.AggMin, Alias: "u", Column: "age"},
			{Kind: query.AggMax, Alias: "u", Column: "age"},
		},
	}
	e := New(db)
	res, _, err := e.Execute(q, plan.FinishAgg(q, plan.SortAgg, plan.BuildScan(q, "u", plan.SeqScan, "")))
	if err != nil {
		t.Fatal(err)
	}
	mn, _ := res.Column("agg0_MIN")
	mx, _ := res.Column("agg1_MAX")
	if mn[0] != 0 || mx[0] != 90 {
		t.Fatalf("min/max = %d/%d, want 0/90", mn[0], mx[0])
	}
}

func TestWorkReflectsPlanQuality(t *testing.T) {
	db := tinyDB()
	q := tinyQuery()
	// Good: hash join. Bad: nested loop over the same inputs.
	good := plan.JoinNodes(q, plan.HashJoin,
		plan.BuildScan(q, "o", plan.SeqScan, ""),
		plan.BuildScan(q, "u", plan.SeqScan, ""))
	bad := plan.JoinNodes(q, plan.NestLoop,
		plan.BuildScan(q, "o", plan.SeqScan, ""),
		plan.BuildScan(q, "u", plan.SeqScan, ""))
	_, wGood, err := New(db).Execute(q, good)
	if err != nil {
		t.Fatal(err)
	}
	_, wBad, err := New(db).Execute(q, bad)
	if err != nil {
		t.Fatal(err)
	}
	if wBad.Total() <= wGood.Total() {
		t.Fatalf("NLJ work %d should exceed hash join work %d", wBad.Total(), wGood.Total())
	}
}

func TestWorkDeterministic(t *testing.T) {
	db := tinyDB()
	q := tinyQuery()
	root := plan.JoinNodes(q, plan.MergeJoin,
		plan.BuildScan(q, "o", plan.SeqScan, ""),
		plan.BuildScan(q, "u", plan.SeqScan, ""))
	_, w1, _ := New(db).Execute(q, root)
	_, w2, _ := New(db).Execute(q, root)
	if *w1 != *w2 {
		t.Fatalf("work differs across runs: %+v vs %+v", w1, w2)
	}
}

func TestSwappedPredicateSides(t *testing.T) {
	db := tinyDB()
	q := tinyQuery()
	// Join with u on the left: the predicate o.user_id = u.id is "swapped".
	root := plan.JoinNodes(q, plan.HashJoin,
		plan.BuildScan(q, "u", plan.SeqScan, ""),
		plan.BuildScan(q, "o", plan.SeqScan, ""))
	res, _, err := New(db).Execute(q, root)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 20 {
		t.Fatalf("swapped-side join produced %d rows, want 20", res.N)
	}
}

func TestMultiPredicateJoin(t *testing.T) {
	db := tinyDB()
	// Self-join orders on user_id AND amount: only identical rows survive.
	q := &query.Query{
		Relations: []query.Relation{
			{Table: "orders", Alias: "a"},
			{Table: "orders", Alias: "b"},
		},
		Joins: []query.Join{
			{LeftAlias: "a", LeftCol: "user_id", RightAlias: "b", RightCol: "user_id"},
			{LeftAlias: "a", LeftCol: "amount", RightAlias: "b", RightCol: "amount"},
		},
	}
	for _, algo := range plan.JoinAlgos {
		root := plan.JoinNodes(q, algo,
			plan.BuildScan(q, "a", plan.SeqScan, ""),
			plan.BuildScan(q, "b", plan.SeqScan, ""))
		res, _, err := New(db).Execute(q, root)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.N != 20 {
			t.Fatalf("%v: self-join on two keys produced %d rows, want 20", algo, res.N)
		}
	}
}
