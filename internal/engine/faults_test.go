package engine

import (
	"errors"
	"math"
	"sync"
	"testing"

	"handsfree/internal/plan"
)

func tinyObserved() (*Observed, *plan.Join, *plan.Join) {
	o := NewObserved(New(tinyDB()))
	q := tinyQuery()
	hash := plan.JoinNodes(q, plan.HashJoin,
		plan.BuildScan(q, "o", plan.SeqScan, ""),
		plan.BuildScan(q, "u", plan.SeqScan, ""))
	nest := plan.JoinNodes(q, plan.NestLoop,
		plan.BuildScan(q, "o", plan.SeqScan, ""),
		plan.BuildScan(q, "u", plan.SeqScan, ""))
	return o, hash, nest
}

// TestObservedLatencyIsDeterministic: observed latency is a pure function of
// (database, plan) — repeated runs agree bitwise, and latency equals the
// work accounting times the calibration constant.
func TestObservedLatencyIsDeterministic(t *testing.T) {
	o, hash, _ := tinyObserved()
	q := tinyQuery()
	res, w, lat, timedOut, err := o.Run(q, hash, 0)
	if err != nil || timedOut {
		t.Fatalf("run: err=%v timedOut=%v", err, timedOut)
	}
	if res.N != 20 {
		t.Fatalf("joined %d rows, want 20", res.N)
	}
	if want := float64(w.Total()) * o.MsPerWork; lat != want {
		t.Fatalf("latency %v != work %d × %v", lat, w.Total(), o.MsPerWork)
	}
	for i := 0; i < 3; i++ {
		_, _, again, _, err := o.Run(q, hash, 0)
		if err != nil || again != lat {
			t.Fatalf("rerun %d: latency %v, want %v (err=%v)", i, again, lat, err)
		}
	}
}

// TestFaultsInflatePlanIsDifferential: inflating one plan signature scales
// only that plan's observed latency, leaving a different plan for the same
// query untouched — the knob drift tests use to regress the learned plan
// against a healthy expert baseline.
func TestFaultsInflatePlanIsDifferential(t *testing.T) {
	o, hash, nest := tinyObserved()
	q := tinyQuery()
	_, _, hashBase, _, _ := o.Run(q, hash, 0)
	_, _, nestBase, _, _ := o.Run(q, nest, 0)
	if hash.Signature() == nest.Signature() {
		t.Fatal("test plans must have distinct signatures")
	}

	o.Faults.InflatePlan(hash.Signature(), 10)
	_, _, hashHot, _, _ := o.Run(q, hash, 0)
	_, _, nestHot, _, _ := o.Run(q, nest, 0)
	if hashHot != 10*hashBase {
		t.Fatalf("inflated plan latency %v, want %v", hashHot, 10*hashBase)
	}
	if nestHot != nestBase {
		t.Fatalf("uninflated plan latency moved: %v != %v", nestHot, nestBase)
	}

	o.Faults.Clear()
	if o.Faults.Active() {
		t.Fatal("seam active after Clear")
	}
	if _, _, lat, _, _ := o.Run(q, hash, 0); lat != hashBase {
		t.Fatalf("latency %v after Clear, want baseline %v", lat, hashBase)
	}
}

func TestFaultsInflateTable(t *testing.T) {
	o, hash, _ := tinyObserved()
	q := tinyQuery()
	_, _, base, _, _ := o.Run(q, hash, 0)
	o.Faults.InflateTable("users", 4)
	if _, _, lat, _, _ := o.Run(q, hash, 0); lat != 4*base {
		t.Fatalf("table inflation latency %v, want %v", lat, 4*base)
	}
	// Factors compose across tables the query reads.
	o.Faults.InflateTable("orders", 2)
	if _, _, lat, _, _ := o.Run(q, hash, 0); lat != 8*base {
		t.Fatalf("composed inflation latency %v, want %v", lat, 8*base)
	}
	// A table the query does not read is a no-op.
	o.Faults.Clear()
	o.Faults.InflateTable("elsewhere", 100)
	if _, _, lat, _, _ := o.Run(q, hash, 0); lat != base {
		t.Fatalf("unrelated table inflated latency to %v", lat)
	}
}

// TestFaultsPeriodicSpikesAndFailures: every-Nth spikes and failures fire on
// the seam's deterministic execution counter.
func TestFaultsPeriodicSpikesAndFailures(t *testing.T) {
	o, hash, _ := tinyObserved()
	q := tinyQuery()
	_, _, base, _, _ := o.Run(q, hash, 0) // exec 1
	o.Faults.Spike(3, 5)
	var lats []float64
	for i := 0; i < 6; i++ { // execs 2..7; execs 3 and 6 spike
		_, _, lat, _, err := o.Run(q, hash, 0)
		if err != nil {
			t.Fatal(err)
		}
		lats = append(lats, lat)
	}
	want := []float64{base, 5 * base, base, base, 5 * base, base}
	for i := range want {
		if lats[i] != want[i] {
			t.Fatalf("spike pattern %v, want %v", lats, want)
		}
	}
	if st := o.Faults.Stats(); st.Spikes != 2 {
		t.Fatalf("spike count %d, want 2", st.Spikes)
	}

	o.Faults.Clear()
	o.Faults.FailEvery(2)
	fails := 0
	for i := 0; i < 4; i++ {
		_, _, lat, _, err := o.Run(q, hash, 0)
		if err != nil {
			if !errors.Is(err, ErrInjected) || !math.IsNaN(lat) {
				t.Fatalf("injected failure surfaced as err=%v lat=%v", err, lat)
			}
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("FailEvery(2) failed %d of 4 executions, want 2", fails)
	}
}

func TestFaultsFailPlan(t *testing.T) {
	o, hash, nest := tinyObserved()
	q := tinyQuery()
	o.Faults.FailPlan(hash.Signature())
	if _, _, _, _, err := o.Run(q, hash, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("failed plan err = %v, want ErrInjected", err)
	}
	if _, _, _, _, err := o.Run(q, nest, 0); err != nil {
		t.Fatalf("unrelated plan failed: %v", err)
	}
	if lat, timedOut := o.Execute(q, hash, 0); !math.IsNaN(lat) || timedOut {
		t.Fatalf("Execute adapter on failure = (%v, %v), want (NaN, false)", lat, timedOut)
	}
}

// TestObservedBudgetCensors: a budget below the plan's true latency censors
// the run (timedOut, latency = budget, no error), and inflation makes a
// previously fitting budget censor — the wall-clock semantics drift tests
// rely on.
func TestObservedBudgetCensors(t *testing.T) {
	o, hash, _ := tinyObserved()
	q := tinyQuery()
	_, _, base, _, _ := o.Run(q, hash, 0)

	_, _, lat, timedOut, err := o.Run(q, hash, base/2)
	if err != nil {
		t.Fatal(err)
	}
	if !timedOut || lat != base/2 {
		t.Fatalf("half-budget run = (%v, %v), want censored at %v", lat, timedOut, base/2)
	}

	// A comfortable budget does not censor…
	if _, _, lat, timedOut, _ := o.Run(q, hash, 4*base); timedOut || lat != base {
		t.Fatalf("comfortable budget censored: (%v, %v)", lat, timedOut)
	}
	// …until inflation pushes the observed latency past it.
	o.Faults.InflatePlan(hash.Signature(), 100)
	if _, _, lat, timedOut, _ := o.Run(q, hash, 4*base); !timedOut || lat != 4*base {
		t.Fatalf("inflated run under budget = (%v, %v), want censored at %v", lat, timedOut, 4*base)
	}
}

// TestObservedConcurrentRuns hammers one Observed (shared engine, shared
// fault seam) from many goroutines — the index caches and the seam counter
// are the shared state the serving path exercises. Run with -race.
func TestObservedConcurrentRuns(t *testing.T) {
	o, hash, nest := tinyObserved()
	q := tinyQuery()
	o.Faults.Spike(7, 3)
	o.Faults.InflatePlan(nest.Signature(), 2)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := hash
				if (g+i)%2 == 0 {
					root = nest
				}
				res, _, lat, timedOut, err := o.Run(q, root, 0)
				if err != nil {
					errCh <- err
					return
				}
				if timedOut || res.N != 20 || math.IsNaN(lat) || lat <= 0 {
					errCh <- errors.New("torn concurrent execution")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := o.Faults.Stats(); st.Executions != 8*50 {
		t.Fatalf("seam counted %d executions, want %d", st.Executions, 8*50)
	}
}
