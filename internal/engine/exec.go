// Package engine is the execution substrate: a real in-memory columnar
// executor (scans, three join algorithms, two aggregation algorithms) with
// deterministic work accounting and an execution budget, plus an analytic
// latency simulator (see latency.go) that stands in for "run the plan on the
// production system" in the paper's experiments.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/storage"
)

// ErrBudget is returned when plan execution exceeds the engine's work
// budget. This is the executable form of the paper's footnote 2: plans
// produced by an untrained agent "could not be executed in any reasonable
// amount of time".
var ErrBudget = errors.New("engine: execution work budget exceeded")

// Work counts the effort spent executing a plan. It is deterministic for a
// given (database, plan) pair, which makes it usable as a reproducible
// latency proxy.
type Work struct {
	TuplesRead       int64 // rows fetched from base tables
	TuplesEmitted    int64 // rows produced by operators
	IndexProbes      int64 // index lookups performed
	HashOps          int64 // hash-table inserts + probes
	Comparisons      int64 // predicate/merge comparisons
	RowsMaterialized int64 // rows copied into intermediate results

	// budget, when > 0, bounds Total() for this call (set by ExecuteBudget;
	// kept here so concurrent executions each carry their own bound).
	budget int64
}

// Total returns a single scalar summary of the work performed.
func (w *Work) Total() int64 {
	return w.TuplesRead + w.TuplesEmitted + w.IndexProbes + w.HashOps + w.Comparisons + w.RowsMaterialized
}

// Result is a materialized intermediate or final result. Columns are keyed
// "alias.column".
type Result struct {
	N    int
	Cols map[string][]int64
}

// Column returns a result column by its "alias.column" key.
func (r *Result) Column(key string) ([]int64, error) {
	c, ok := r.Cols[key]
	if !ok {
		return nil, fmt.Errorf("engine: result has no column %s", key)
	}
	return c, nil
}

// Engine executes physical plans against a storage.DB. Execute and
// ExecuteBudget are safe for concurrent use: per-call state lives in the
// Work accounting and the lazily built index caches are mutex-guarded.
type Engine struct {
	db *storage.DB
	// Budget bounds Work.Total() during one Execute call; 0 means unlimited.
	// It is the engine-wide default — set it before serving begins;
	// ExecuteBudget carries a per-call bound instead.
	Budget int64

	mu    sync.Mutex
	btree map[string]*btreeIndex
	hash  map[string]*hashIndex
}

// New returns an executor over the database.
func New(db *storage.DB) *Engine {
	return &Engine{
		db:    db,
		btree: make(map[string]*btreeIndex),
		hash:  make(map[string]*hashIndex),
	}
}

// Execute runs the plan for query q and returns the result and the work
// performed. If the engine's budget is exceeded, it returns ErrBudget along
// with the partial work counts.
func (e *Engine) Execute(q *query.Query, root plan.Node) (*Result, *Work, error) {
	return e.ExecuteBudget(q, root, 0)
}

// ExecuteBudget is Execute under a per-call work budget (0 falls back to the
// engine-wide Budget). Concurrent calls may each carry a different budget.
func (e *Engine) ExecuteBudget(q *query.Query, root plan.Node, budget int64) (*Result, *Work, error) {
	w := &Work{budget: budget}
	res, err := e.exec(root, w)
	return res, w, err
}

func (e *Engine) check(w *Work) error {
	limit := e.Budget
	if w.budget > 0 {
		limit = w.budget
	}
	if limit > 0 && w.Total() > limit {
		return ErrBudget
	}
	return nil
}

func (e *Engine) exec(n plan.Node, w *Work) (*Result, error) {
	switch n := n.(type) {
	case *plan.Scan:
		return e.execScan(n, w)
	case *plan.Join:
		return e.execJoin(n, w)
	case *plan.Agg:
		return e.execAgg(n, w)
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
}

// matches evaluates a filter against a value.
func matches(op query.CmpOp, v, c int64) bool {
	switch op {
	case query.Eq:
		return v == c
	case query.Ne:
		return v != c
	case query.Lt:
		return v < c
	case query.Le:
		return v <= c
	case query.Gt:
		return v > c
	case query.Ge:
		return v >= c
	default:
		return false
	}
}

// gatherRows materializes the given row positions of a table into a Result
// with alias-prefixed columns.
func gatherRows(t *storage.Table, alias string, rows []int32, w *Work) *Result {
	out := &Result{N: len(rows), Cols: make(map[string][]int64, len(t.Cols))}
	for name, col := range t.Cols {
		vals := make([]int64, len(rows))
		for i, r := range rows {
			vals[i] = col[r]
		}
		out.Cols[alias+"."+name] = vals
	}
	w.RowsMaterialized += int64(len(rows))
	return out
}

func (e *Engine) execScan(s *plan.Scan, w *Work) (*Result, error) {
	t, err := e.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	var candidates []int32

	switch s.Access {
	case plan.SeqScan:
		w.TuplesRead += int64(t.N)
		candidates = make([]int32, t.N)
		for i := range candidates {
			candidates[i] = int32(i)
		}
	case plan.IndexScan:
		ix, err := e.btreeIndexFor(t, s.IndexColumn)
		if err != nil {
			return nil, err
		}
		candidates = ix.lookupFilters(s.Filters, s.IndexColumn, t.N, w)
	case plan.HashIndexScan:
		ix, err := e.hashIndexFor(t, s.IndexColumn)
		if err != nil {
			return nil, err
		}
		candidates = ix.lookupFilters(s.Filters, s.IndexColumn, t.N, w)
	}
	if err := e.check(w); err != nil {
		return nil, err
	}

	// Apply all filters (including residuals after an index lookup).
	kept := candidates[:0]
	cols := make(map[string][]int64, len(s.Filters))
	for _, f := range s.Filters {
		c, err := t.Column(f.Column)
		if err != nil {
			return nil, err
		}
		cols[f.Column] = c
	}
	for _, r := range candidates {
		ok := true
		for _, f := range s.Filters {
			w.Comparisons++
			if !matches(f.Op, cols[f.Column][r], f.Value) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, r)
		}
	}
	if err := e.check(w); err != nil {
		return nil, err
	}
	res := gatherRows(t, s.Alias, kept, w)
	w.TuplesEmitted += int64(res.N)
	return res, e.check(w)
}

// joinKeyCols resolves which result columns hold each side's join keys.
// Predicate sides may be swapped relative to the plan's left/right inputs.
func joinKeyCols(left, right *Result, preds []query.Join) (lk, rk [][]int64, err error) {
	for _, p := range preds {
		lcol := p.LeftAlias + "." + p.LeftCol
		rcol := p.RightAlias + "." + p.RightCol
		if lc, ok := left.Cols[lcol]; ok {
			rc, ok := right.Cols[rcol]
			if !ok {
				return nil, nil, fmt.Errorf("engine: join column %s not in right input", rcol)
			}
			lk = append(lk, lc)
			rk = append(rk, rc)
			continue
		}
		// Swapped: the predicate's "left" column lives in the right input.
		lc, ok := left.Cols[rcol]
		if !ok {
			return nil, nil, fmt.Errorf("engine: join column %s/%s not in left input", lcol, rcol)
		}
		rc, ok := right.Cols[lcol]
		if !ok {
			return nil, nil, fmt.Errorf("engine: join column %s not in right input", lcol)
		}
		lk = append(lk, lc)
		rk = append(rk, rc)
	}
	return lk, rk, nil
}

// emitJoin materializes matched row pairs into a combined result.
func emitJoin(left, right *Result, li, ri []int32, w *Work) *Result {
	out := &Result{N: len(li), Cols: make(map[string][]int64, len(left.Cols)+len(right.Cols))}
	for name, col := range left.Cols {
		vals := make([]int64, len(li))
		for i, r := range li {
			vals[i] = col[r]
		}
		out.Cols[name] = vals
	}
	for name, col := range right.Cols {
		vals := make([]int64, len(ri))
		for i, r := range ri {
			vals[i] = col[r]
		}
		out.Cols[name] = vals
	}
	w.RowsMaterialized += int64(len(li))
	w.TuplesEmitted += int64(len(li))
	return out
}

func (e *Engine) execJoin(j *plan.Join, w *Work) (*Result, error) {
	left, err := e.exec(j.Left, w)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(j.Right, w)
	if err != nil {
		return nil, err
	}
	lk, rk, err := joinKeyCols(left, right, j.Preds)
	if err != nil {
		return nil, err
	}

	var li, ri []int32
	switch {
	case len(j.Preds) == 0:
		// Cross product.
		for a := 0; a < left.N; a++ {
			for b := 0; b < right.N; b++ {
				w.Comparisons++
				li = append(li, int32(a))
				ri = append(ri, int32(b))
			}
			if err := e.check(w); err != nil {
				return nil, err
			}
		}
	case j.Algo == plan.HashJoin:
		li, ri, err = e.hashJoin(left, right, lk, rk, w)
	case j.Algo == plan.MergeJoin:
		li, ri, err = e.mergeJoin(left, right, lk, rk, w)
	default:
		li, ri, err = e.nestLoopJoin(left, right, lk, rk, w)
	}
	if err != nil {
		return nil, err
	}
	res := emitJoin(left, right, li, ri, w)
	return res, e.check(w)
}

func (e *Engine) nestLoopJoin(left, right *Result, lk, rk [][]int64, w *Work) ([]int32, []int32, error) {
	var li, ri []int32
	for a := 0; a < left.N; a++ {
		for b := 0; b < right.N; b++ {
			ok := true
			for k := range lk {
				w.Comparisons++
				if lk[k][a] != rk[k][b] {
					ok = false
					break
				}
			}
			if ok {
				li = append(li, int32(a))
				ri = append(ri, int32(b))
			}
		}
		if err := e.check(w); err != nil {
			return nil, nil, err
		}
	}
	return li, ri, nil
}

func (e *Engine) hashJoin(left, right *Result, lk, rk [][]int64, w *Work) ([]int32, []int32, error) {
	// Build on the right input (first key column), probe with the left.
	build := make(map[int64][]int32, right.N)
	for b := 0; b < right.N; b++ {
		w.HashOps++
		key := rk[0][b]
		build[key] = append(build[key], int32(b))
	}
	if err := e.check(w); err != nil {
		return nil, nil, err
	}
	var li, ri []int32
	for a := 0; a < left.N; a++ {
		w.HashOps++
		for _, b := range build[lk[0][a]] {
			ok := true
			for k := 1; k < len(lk); k++ {
				w.Comparisons++
				if lk[k][a] != rk[k][b] {
					ok = false
					break
				}
			}
			if ok {
				li = append(li, int32(a))
				ri = append(ri, int32(b))
			}
		}
		if a%4096 == 0 {
			if err := e.check(w); err != nil {
				return nil, nil, err
			}
		}
	}
	return li, ri, nil
}

func (e *Engine) mergeJoin(left, right *Result, lk, rk [][]int64, w *Work) ([]int32, []int32, error) {
	lo := sortedOrder(left.N, lk[0], w)
	ro := sortedOrder(right.N, rk[0], w)
	var li, ri []int32
	i, j := 0, 0
	for i < left.N && j < right.N {
		w.Comparisons++
		a, b := lk[0][lo[i]], rk[0][ro[j]]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			// Emit the full group × group block for this key.
			jEnd := j
			for jEnd < right.N && rk[0][ro[jEnd]] == a {
				jEnd++
			}
			iEnd := i
			for iEnd < left.N && lk[0][lo[iEnd]] == a {
				iEnd++
			}
			for x := i; x < iEnd; x++ {
				for y := j; y < jEnd; y++ {
					ok := true
					for k := 1; k < len(lk); k++ {
						w.Comparisons++
						if lk[k][lo[x]] != rk[k][ro[y]] {
							ok = false
							break
						}
					}
					if ok {
						li = append(li, lo[x])
						ri = append(ri, ro[y])
					}
				}
				if err := e.check(w); err != nil {
					return nil, nil, err
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return li, ri, nil
}

// sortedOrder returns row positions ordered by key, charging n·log n
// comparisons to the work counter.
func sortedOrder(n int, key []int64, w *Work) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return key[order[a]] < key[order[b]] })
	logn := int64(1)
	for v := n; v > 1; v >>= 1 {
		logn++
	}
	w.Comparisons += int64(n) * logn
	return order
}

func (e *Engine) execAgg(a *plan.Agg, w *Work) (*Result, error) {
	child, err := e.exec(a.Child, w)
	if err != nil {
		return nil, err
	}
	return aggregate(a, child, w, e)
}
