package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/storage"
)

// TestJoinAlgorithmsAgainstBruteForce property-checks every join algorithm
// against a nested-loop reference on randomly generated tiny tables.
func TestJoinAlgorithmsAgainstBruteForce(t *testing.T) {
	f := func(seed int64, na, nb uint8, domain uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rowsA := int(na%40) + 1
		rowsB := int(nb%40) + 1
		dom := int64(domain%8) + 1

		db := storage.NewDB()
		mk := func(name string, n int) *storage.Table {
			tbl := storage.NewTable(name, n)
			ids := make([]int64, n)
			ks := make([]int64, n)
			for i := range ids {
				ids[i] = int64(i)
				ks[i] = rng.Int63n(dom)
			}
			_ = tbl.AddColumn("id", ids)
			_ = tbl.AddColumn("k", ks)
			db.Add(tbl)
			return tbl
		}
		ta := mk("a", rowsA)
		tb := mk("b", rowsB)

		q := &query.Query{
			Relations: []query.Relation{{Table: "a", Alias: "a"}, {Table: "b", Alias: "b"}},
			Joins:     []query.Join{{LeftAlias: "a", LeftCol: "k", RightAlias: "b", RightCol: "k"}},
		}

		// Brute-force reference.
		ak, _ := ta.Column("k")
		bk, _ := tb.Column("k")
		var want []string
		for i := 0; i < rowsA; i++ {
			for j := 0; j < rowsB; j++ {
				if ak[i] == bk[j] {
					want = append(want, key2(int64(i), int64(j)))
				}
			}
		}
		sort.Strings(want)

		for _, algo := range plan.JoinAlgos {
			e := New(db)
			root := plan.JoinNodes(q, algo,
				plan.BuildScan(q, "a", plan.SeqScan, ""),
				plan.BuildScan(q, "b", plan.SeqScan, ""))
			res, _, err := e.Execute(q, root)
			if err != nil {
				return false
			}
			aID, _ := res.Column("a.id")
			bID, _ := res.Column("b.id")
			got := make([]string, res.N)
			for i := 0; i < res.N; i++ {
				got[i] = key2(aID[i], bID[i])
			}
			sort.Strings(got)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func key2(a, b int64) string {
	return string(rune(a)) + "|" + string(rune(b))
}

// TestAggAlgorithmsAgainstBruteForce property-checks grouped aggregation.
func TestAggAlgorithmsAgainstBruteForce(t *testing.T) {
	f := func(seed int64, n uint8, domain uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(n%60) + 1
		dom := int64(domain%6) + 1

		db := storage.NewDB()
		tbl := storage.NewTable("x", rows)
		g := make([]int64, rows)
		v := make([]int64, rows)
		ids := make([]int64, rows)
		for i := range g {
			ids[i] = int64(i)
			g[i] = rng.Int63n(dom)
			v[i] = rng.Int63n(100)
		}
		_ = tbl.AddColumn("id", ids)
		_ = tbl.AddColumn("g", g)
		_ = tbl.AddColumn("v", v)
		db.Add(tbl)

		q := &query.Query{
			Relations:  []query.Relation{{Table: "x", Alias: "x"}},
			GroupBys:   []query.GroupBy{{Alias: "x", Column: "g"}},
			Aggregates: []query.Aggregate{{Kind: query.AggSum, Alias: "x", Column: "v"}},
		}
		// Reference sums.
		wantSum := map[int64]int64{}
		for i := range g {
			wantSum[g[i]] += v[i]
		}

		for _, algo := range plan.AggAlgos {
			e := New(db)
			root := plan.FinishAgg(q, algo, plan.BuildScan(q, "x", plan.SeqScan, ""))
			res, _, err := e.Execute(q, root)
			if err != nil {
				return false
			}
			if res.N != len(wantSum) {
				return false
			}
			gs, _ := res.Column("x.g")
			sums, _ := res.Column("agg0_SUM")
			for i := 0; i < res.N; i++ {
				if wantSum[gs[i]] != sums[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
