package engine

import (
	"hash/fnv"
	"math"

	"handsfree/internal/cost"
	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/stats"
)

// LatencyModel simulates the wall-clock latency of executing a plan on the
// "production system". It substitutes for the paper's real PostgreSQL
// execution (see DESIGN.md §1) while preserving the three properties the
// experiments depend on:
//
//  1. It diverges *systematically* from the optimizer's cost model — it is
//     driven by true (Oracle) cardinalities and by hardware constants that
//     differ from the planner's tuning, so plans the cost model ranks as
//     equal can have very different latencies (and vice versa).
//  2. Catastrophic plans (cross products, mis-ordered joins) are
//     catastrophically slow, so latency-as-reward from scratch is untenable
//     (§4, footnote 2).
//  3. It is deterministic per (query, plan): re-executing a plan observes the
//     same latency up to seeded noise, making learning possible and the
//     experiments reproducible.
type LatencyModel struct {
	truth *cost.Model
	// MsPerUnit converts hardware-cost units to simulated milliseconds.
	MsPerUnit float64
	// NoiseSigma is the σ of the lognormal execution-time noise.
	NoiseSigma float64
	// Seed selects the noise field.
	Seed int64
	// Parallel models inter-operator parallelism: independent subtrees run
	// concurrently, so a join''s latency is max(children) plus its own work
	// rather than the sum. This is the paper''s §4 point that latency "is
	// not linear (e.g., subtrees may be executed in parallel)" — one more
	// systematic divergence from the strictly additive cost model.
	Parallel bool
}

// HardwareParams returns the "true" execution constants, deliberately
// mis-matched with cost.DefaultParams(): the production box has fast random
// I/O (SSD vs. the planner's spinning-disk assumption), more expensive
// per-tuple CPU work, and less memory before spilling. These mismatches are
// exactly the cost-model mis-tuning the paper's §4 discusses.
func HardwareParams() cost.Params {
	return cost.Params{
		SeqPageCost:       1.0,
		RandomPageCost:    1.4,  // planner assumes 4.0
		CPUTupleCost:      0.02, // planner assumes 0.01
		CPUIndexTupleCost: 0.004,
		CPUOperatorCost:   0.004, // planner assumes 0.0025
		RowsPerPage:       100,
		WorkMemRows:       40_000, // planner assumes 100k
		SpillFactor:       4.0,    // planner assumes 2.5
	}
}

// NewLatencyModel builds the simulator over the truth oracle.
func NewLatencyModel(oracle *stats.Oracle, seed int64) *LatencyModel {
	return &LatencyModel{
		truth:      cost.New(HardwareParams(), oracle),
		MsPerUnit:  0.05,
		NoiseSigma: 0.08,
		Seed:       seed,
		Parallel:   true,
	}
}

// Latency returns the simulated execution latency of the plan in
// milliseconds.
func (lm *LatencyModel) Latency(q *query.Query, n plan.Node) float64 {
	var base float64
	if lm.Parallel {
		lat, _ := lm.parallel(q, n)
		base = lat * lm.MsPerUnit
	} else {
		base = lm.truth.Cost(q, n) * lm.MsPerUnit
	}
	return base * lm.noise(q, n)
}

// parallel walks the plan computing latency under inter-operator
// parallelism: each operator”s own work starts when its slowest input
// finishes. Returns (latency in cost units, the node”s full NodeCost).
func (lm *LatencyModel) parallel(q *query.Query, n plan.Node) (float64, cost.NodeCost) {
	switch n := n.(type) {
	case *plan.Scan:
		nc := lm.truth.ScanCost(q, n)
		return nc.Total, nc
	case *plan.Join:
		leftLat, leftNC := lm.parallel(q, n.Left)
		rightLat, rightNC := lm.parallel(q, n.Right)
		nc := lm.truth.JoinCost(q, n, leftNC, rightNC)
		own := nc.Total - leftNC.Total - rightNC.Total
		if own < 0 {
			own = 0
		}
		slower := leftLat
		if rightLat > slower {
			slower = rightLat
		}
		return slower + own, nc
	case *plan.Agg:
		childLat, childNC := lm.parallel(q, n.Child)
		nc := lm.truth.AggCost(q, n, childNC)
		own := nc.Total - childNC.Total
		if own < 0 {
			own = 0
		}
		return childLat + own, nc
	default:
		panic("engine: unknown plan node")
	}
}

// TrueCost exposes the underlying hardware-cost (no noise, cost units), for
// diagnostics and tests.
func (lm *LatencyModel) TrueCost(q *query.Query, n plan.Node) float64 {
	return lm.truth.Cost(q, n)
}

// noise returns the deterministic lognormal factor for a (query, plan) pair.
func (lm *LatencyModel) noise(q *query.Query, n plan.Node) float64 {
	if lm.NoiseSigma == 0 {
		return 1
	}
	h := fnv.New64a()
	h.Write([]byte(q.Key()))
	h.Write([]byte{0})
	h.Write([]byte(n.Signature()))
	var seedBytes [8]byte
	s := uint64(lm.Seed)
	for i := range seedBytes {
		seedBytes[i] = byte(s >> (8 * i))
	}
	h.Write(seedBytes[:])
	u := h.Sum64()
	u1 := float64(u>>11)/float64(1<<53) + 1e-12
	h.Write([]byte{0xC3})
	u2 := float64(h.Sum64()>>11)/float64(1<<53) + 1e-12
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(lm.NoiseSigma * z)
}

// Execute simulates running the plan under a latency budget (milliseconds).
// It returns the observed latency and whether the budget was exhausted
// first; a timed-out plan reports the budget as its (censored) latency,
// matching how the paper's experiments must treat plans that never finish.
func (lm *LatencyModel) Execute(q *query.Query, n plan.Node, budgetMs float64) (latencyMs float64, timedOut bool) {
	l := lm.Latency(q, n)
	if budgetMs > 0 && l > budgetMs {
		return budgetMs, true
	}
	return l, false
}
