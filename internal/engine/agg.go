package engine

import (
	"fmt"
	"sort"

	"handsfree/internal/plan"
	"handsfree/internal/query"
)

// aggState accumulates one aggregate function over a group.
type aggState struct {
	kind  query.AggKind
	count int64
	min   int64
	max   int64
	sum   int64
}

func newAggState(kind query.AggKind) *aggState {
	return &aggState{kind: kind, min: maxInt64, max: minInt64}
}

func (s *aggState) add(v int64) {
	s.count++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.sum += v
}

func (s *aggState) value() int64 {
	switch s.kind {
	case query.AggCount:
		return s.count
	case query.AggMin:
		if s.count == 0 {
			return 0
		}
		return s.min
	case query.AggMax:
		if s.count == 0 {
			return 0
		}
		return s.max
	case query.AggSum:
		return s.sum
	default:
		return 0
	}
}

// aggregate evaluates a grouped (or global) aggregation over child rows.
// HashAgg groups through a map; SortAgg sorts by the grouping key and
// aggregates adjacent runs. Both produce identical results and are charged
// different work, mirroring their cost asymmetry.
func aggregate(a *plan.Agg, child *Result, w *Work, e *Engine) (*Result, error) {
	groupCols := make([][]int64, len(a.GroupBys))
	for i, g := range a.GroupBys {
		c, err := child.Column(g.Alias + "." + g.Column)
		if err != nil {
			return nil, err
		}
		groupCols[i] = c
	}
	aggCols := make([][]int64, len(a.Aggregates))
	for i, ag := range a.Aggregates {
		if ag.Kind == query.AggCount && ag.Column == "" {
			continue // COUNT(*) reads no column
		}
		c, err := child.Column(ag.Alias + "." + ag.Column)
		if err != nil {
			return nil, err
		}
		aggCols[i] = c
	}

	// Determine the processing order of rows.
	order := make([]int32, child.N)
	for i := range order {
		order[i] = int32(i)
	}
	if a.Algo == plan.SortAgg && len(groupCols) > 0 {
		sort.Slice(order, func(x, y int) bool {
			rx, ry := order[x], order[y]
			for _, gc := range groupCols {
				if gc[rx] != gc[ry] {
					return gc[rx] < gc[ry]
				}
			}
			return rx < ry
		})
		logn := int64(1)
		for v := child.N; v > 1; v >>= 1 {
			logn++
		}
		w.Comparisons += int64(child.N) * logn
	}

	type group struct {
		key    []int64
		states []*aggState
	}
	var groups []*group
	index := map[string]*group{}

	keyOf := func(r int32) ([]int64, string) {
		key := make([]int64, len(groupCols))
		buf := make([]byte, 0, 16*len(groupCols))
		for i, gc := range groupCols {
			key[i] = gc[r]
			v := gc[r]
			for s := 0; s < 8; s++ {
				buf = append(buf, byte(v>>(8*s)))
			}
		}
		return key, string(buf)
	}

	var cur *group
	var curKey string
	for _, r := range order {
		key, ks := keyOf(r)
		var g *group
		switch a.Algo {
		case plan.HashAgg:
			w.HashOps++
			g = index[ks]
			if g == nil {
				g = &group{key: key, states: newStates(a.Aggregates)}
				index[ks] = g
				groups = append(groups, g)
			}
		case plan.SortAgg:
			w.Comparisons++
			if cur == nil || ks != curKey {
				cur = &group{key: key, states: newStates(a.Aggregates)}
				curKey = ks
				groups = append(groups, cur)
			}
			g = cur
		default:
			return nil, fmt.Errorf("engine: unknown aggregation algorithm %v", a.Algo)
		}
		for i, st := range g.states {
			if aggCols[i] == nil {
				st.add(1) // COUNT(*)
			} else {
				st.add(aggCols[i][r])
			}
		}
		if err := e.check(w); err != nil {
			return nil, err
		}
	}

	// Global aggregation over zero rows still yields one row.
	if len(groupCols) == 0 && len(groups) == 0 {
		groups = append(groups, &group{states: newStates(a.Aggregates)})
	}

	out := &Result{N: len(groups), Cols: make(map[string][]int64)}
	for i, g := range a.GroupBys {
		col := make([]int64, len(groups))
		for r, grp := range groups {
			col[r] = grp.key[i]
		}
		out.Cols[g.Alias+"."+g.Column] = col
	}
	for i, ag := range a.Aggregates {
		col := make([]int64, len(groups))
		for r, grp := range groups {
			col[r] = grp.states[i].value()
		}
		out.Cols[fmt.Sprintf("agg%d_%s", i, ag.Kind)] = col
	}
	w.TuplesEmitted += int64(out.N)
	w.RowsMaterialized += int64(out.N)
	return out, nil
}

func newStates(aggs []query.Aggregate) []*aggState {
	states := make([]*aggState, len(aggs))
	for i, a := range aggs {
		states[i] = newAggState(a.Kind)
	}
	return states
}
