package lfd

import (
	"math"
	"testing"

	"handsfree/internal/cost"
	"handsfree/internal/datagen"
	"handsfree/internal/engine"
	"handsfree/internal/featurize"
	"handsfree/internal/optimizer"
	"handsfree/internal/planspace"
	"handsfree/internal/query"
	"handsfree/internal/rl"
	"handsfree/internal/stats"
	"handsfree/internal/workload"
)

func fixtureEnv(t *testing.T, nQueries, minRel, maxRel int, stages planspace.Stages) *planspace.Env {
	t.Helper()
	db, err := datagen.Generate(datagen.Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(db.Catalog, db.Stats)
	model := cost.New(cost.DefaultParams(), est)
	planner := optimizer.New(db.Catalog, model)
	oracle := stats.NewOracle(est, 11)
	lat := engine.NewLatencyModel(oracle, 5)
	w := workload.New(db)
	qs, err := w.Training(nQueries, minRel, maxRel, 13)
	if err != nil {
		t.Fatal(err)
	}
	return planspace.NewEnv(planspace.Config{
		Space:         featurize.NewSpace(maxRel, est),
		Stages:        stages,
		Planner:       planner,
		Latency:       lat,
		Queries:       qs,
		Reward:        planspace.LatencyReward,
		ExecuteAlways: true,
		Seed:          3,
	})
}

func TestCollectDemonstrations(t *testing.T) {
	env := fixtureEnv(t, 5, 4, 5, planspace.StagePrefix(4))
	agent := New(Config{Env: env, Hidden: []int{32}, Seed: 1})
	if err := agent.CollectDemonstrations(); err != nil {
		t.Fatal(err)
	}
	demos := agent.Demos()
	if len(demos) != 5 {
		t.Fatalf("collected %d demos, want 5", len(demos))
	}
	for _, d := range demos {
		if len(d.Traj.Steps) == 0 {
			t.Fatalf("demo for %s has no steps", d.Query.Name)
		}
		if d.LatencyMs <= 0 || math.IsNaN(d.LatencyMs) {
			t.Fatalf("demo for %s has latency %v", d.Query.Name, d.LatencyMs)
		}
	}
}

func TestPretrainReducesLoss(t *testing.T) {
	env := fixtureEnv(t, 6, 4, 5, planspace.StagePrefix(4))
	agent := New(Config{Env: env, Hidden: []int{32}, Seed: 2})
	if err := agent.CollectDemonstrations(); err != nil {
		t.Fatal(err)
	}
	first := agent.Pretrain(1, 32)
	last := agent.Pretrain(300, 32)
	if last >= first {
		t.Fatalf("pretraining did not reduce loss: %v → %v", first, last)
	}
}

// TestImitationBeatsRandom is the core §5.1 claim at miniature scale: after
// imitation pre-training alone (zero agent-driven executions of bad plans),
// the agent's plans are far better than random plans.
func TestImitationBeatsRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	env := fixtureEnv(t, 6, 4, 6, planspace.StagePrefix(4))
	agent := New(Config{Env: env, Hidden: []int{64, 32}, LR: 2e-3, Seed: 3})
	if err := agent.CollectDemonstrations(); err != nil {
		t.Fatal(err)
	}
	agent.Pretrain(1500, 32)

	var agentTotal, randomTotal, expertTotal float64
	pol := rl.RandomPolicy(9)
	for _, q := range env.Cfg.Queries {
		agentTotal += agent.GreedyLatency(q)
		expertTotal += agent.ExpertLatency(q)
		// Random baseline episode.
		s := env.ResetTo(q)
		for !s.Terminal {
			next, _, done := env.Step(pol(s))
			s = next
			if done {
				break
			}
		}
		randomTotal += env.Last.LatencyMs
	}
	t.Logf("total latency: expert=%.0f agent=%.0f random=%.0f", expertTotal, agentTotal, randomTotal)
	if agentTotal >= randomTotal {
		t.Fatalf("imitation (%v) not better than random (%v)", agentTotal, randomTotal)
	}
	if agentTotal > 8*expertTotal {
		t.Fatalf("imitation (%v) too far from expert (%v)", agentTotal, expertTotal)
	}
}

func TestFineTuneEpisodeAccounting(t *testing.T) {
	env := fixtureEnv(t, 4, 4, 5, planspace.StagePrefix(4))
	agent := New(Config{Env: env, Hidden: []int{32}, Seed: 4})
	if err := agent.CollectDemonstrations(); err != nil {
		t.Fatal(err)
	}
	agent.Pretrain(100, 32)
	for ep := 0; ep < 12; ep++ {
		res := agent.FineTuneEpisode()
		if res.LatencyMs <= 0 {
			t.Fatalf("episode %d latency %v", ep, res.LatencyMs)
		}
		if res.ExpertLatencyMs <= 0 {
			t.Fatalf("episode %d has no expert reference", ep)
		}
		if res.Ratio <= 0 {
			t.Fatalf("episode %d ratio %v", ep, res.Ratio)
		}
	}
}

func TestSlipTriggersRetrain(t *testing.T) {
	env := fixtureEnv(t, 4, 4, 4, planspace.StagePrefix(4))
	agent := New(Config{Env: env, Hidden: []int{16}, Seed: 5, SlipWindow: 5, SlipFactor: 0.001})
	if err := agent.CollectDemonstrations(); err != nil {
		t.Fatal(err)
	}
	// SlipFactor is absurdly low: any window must trigger a re-train.
	for ep := 0; ep < 10; ep++ {
		agent.FineTuneEpisode()
	}
	if agent.Retrains == 0 {
		t.Fatal("slip detection never triggered despite a 0.001 threshold")
	}
}

func TestCatastropheCounting(t *testing.T) {
	env := fixtureEnv(t, 4, 5, 6, planspace.StagePrefix(4))
	agent := New(Config{Env: env, Hidden: []int{16}, Seed: 6, CatastropheFactor: 0.5})
	if err := agent.CollectDemonstrations(); err != nil {
		t.Fatal(err)
	}
	// CatastropheFactor 0.5 means anything slower than half the expert
	// counts; an untrained agent must hit it quickly.
	for ep := 0; ep < 10; ep++ {
		agent.FineTuneEpisode()
	}
	if agent.CatastrophicExecutions == 0 {
		t.Fatal("no catastrophic executions counted with a 0.5× threshold")
	}
}

var _ = query.Query{} // keep the import for the fixture's types
