// Package lfd implements §5.1 of the paper: learning from demonstration.
//
// The agent first watches the traditional optimizer (the expert) plan a
// workload, records every (state, action) pair along the expert's plan
// construction together with the executed plan's latency, and trains a
// reward-prediction network to predict that latency (the paper's step 3).
// It then fine-tunes by planning queries itself — choosing at each state the
// action with the lowest predicted latency (plus ε exploration) — executing
// the finished plans, and training on the observed latencies (step 4).
// If its performance slips past a threshold relative to the expert, it is
// partially re-trained on the expert demonstrations (step 5).
package lfd

import (
	"context"
	"math"
	"math/rand"

	"handsfree/internal/nn"
	"handsfree/internal/planspace"
	"handsfree/internal/query"
	"handsfree/internal/rl"
)

// Config controls the learning-from-demonstration agent.
type Config struct {
	// Env must be configured with ExecuteAlways (or a latency-reading
	// reward) so episodes produce latencies.
	Env *planspace.Env
	// Hidden, LR, Epsilon configure the reward-prediction network.
	Hidden  []int
	LR      float64
	Epsilon float64
	// SlipFactor triggers re-training when the agent's moving-average
	// latency ratio versus the expert exceeds it (default 1.5).
	SlipFactor float64
	// SlipWindow is the moving-average window in episodes (default 25).
	SlipWindow int
	// RetrainBatches is how many expert minibatches a slip re-train runs
	// (default 50).
	RetrainBatches int
	// CatastropheFactor defines a catastrophic execution: latency worse than
	// this multiple of the expert's (default 50).
	CatastropheFactor float64
	// Precision and Engine select the reward-prediction network's scalar
	// type and dense-kernel backend (zero values resolve through the
	// HANDSFREE_PRECISION / HANDSFREE_ENGINE environment variables).
	Precision nn.Precision
	Engine    nn.Engine
	Seed      int64
}

func (c *Config) fill() {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{128, 64}
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.SlipFactor == 0 {
		c.SlipFactor = 1.5
	}
	if c.SlipWindow == 0 {
		c.SlipWindow = 25
	}
	if c.RetrainBatches == 0 {
		c.RetrainBatches = 50
	}
	if c.CatastropheFactor == 0 {
		c.CatastropheFactor = 50
	}
}

// Demo is one expert demonstration: the trajectory through the environment
// and the latency the expert's plan achieved.
type Demo struct {
	Query     *query.Query
	Traj      rl.Trajectory
	LatencyMs float64
}

// Agent is the learning-from-demonstration agent.
type Agent struct {
	Cfg Config
	Q   *rl.QAgent

	expertBuf *rl.ReplayBuffer
	ownBuf    *rl.ReplayBuffer
	demos     []Demo
	expertLat map[string]float64 // query key → expert latency
	rng       *rand.Rand

	// Target normalization (frozen after CollectDemonstrations): regression
	// learns standardized log-latencies so that the network's zero-init
	// outputs start near the demonstrated mean rather than far below it.
	normMean, normStd float64

	// Counters for the §5.1 evaluation.
	Retrains               int
	CatastrophicExecutions int
	recent                 []float64
}

// New builds the agent over the environment.
func New(cfg Config) *Agent {
	cfg.fill()
	env := cfg.Env
	q := rl.NewQAgent(env.ObsDim(), env.ActionDim(), rl.QAgentConfig{
		Hidden:    cfg.Hidden,
		LR:        cfg.LR,
		Epsilon:   cfg.Epsilon,
		Precision: cfg.Precision,
		Engine:    cfg.Engine,
		Seed:      cfg.Seed,
	})
	return &Agent{
		Cfg:       cfg,
		Q:         q,
		expertBuf: rl.NewReplayBuffer(100_000),
		ownBuf:    rl.NewReplayBuffer(100_000),
		expertLat: map[string]float64{},
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
	}
}

// target converts a latency to the regression target: standardized log
// latency (plan latencies span orders of magnitude).
func (a *Agent) target(latencyMs float64) float64 {
	if latencyMs <= 0 || math.IsNaN(latencyMs) {
		return 0
	}
	std := a.normStd
	if std < 0.1 {
		std = 0.1
	}
	return (math.Log(latencyMs) - a.normMean) / std
}

// CollectDemonstrations runs steps 1–2 of §5.1: each workload query is
// planned by the expert, its plan executed once, and the episode history
// recorded with the observed latency.
func (a *Agent) CollectDemonstrations() error {
	return a.CollectDemonstrationsCtx(context.Background())
}

// CollectDemonstrationsCtx is CollectDemonstrations under a request-scoped
// context: the context is threaded into each expert planning call and
// checked between queries, so a cancelled lifecycle stops demonstrating
// after at most one query's worth of work.
func (a *Agent) CollectDemonstrationsCtx(ctx context.Context) error {
	env := a.Cfg.Env
	for _, q := range env.Cfg.Queries {
		planned, err := env.Cfg.Planner.PlanCtx(ctx, q)
		if err != nil {
			return err
		}
		traj, out, err := env.Replay(q, planned.Root)
		if err != nil {
			return err
		}
		lat := out.LatencyMs
		if math.IsNaN(lat) {
			// The env was not configured to execute; measure directly.
			lat, _ = env.Cfg.Latency.Execute(q, out.Plan, env.Cfg.LatencyBudgetMs)
		}
		a.demos = append(a.demos, Demo{Query: q, Traj: traj, LatencyMs: lat})
		a.expertLat[q.Key()] = lat
	}
	// Freeze target normalization on the demonstrated latencies, then fill
	// the demonstration buffer.
	var rn rl.RunningNorm
	for _, d := range a.demos {
		rn.Observe(math.Log(d.LatencyMs))
	}
	a.normMean, a.normStd = rn.Mean(), rn.Std()
	for _, d := range a.demos {
		for _, st := range d.Traj.Steps {
			a.expertBuf.Add(rl.Sample{Features: st.Features, Mask: st.Mask, Action: st.Action, Target: a.target(d.LatencyMs)})
		}
	}
	return nil
}

// Pretrain runs step 3: fit the reward-prediction network to the expert
// demonstrations with the DQfD combined loss (regression + large margin).
// Returns the final minibatch loss.
func (a *Agent) Pretrain(batches, batchSize int) float64 {
	var loss float64
	for i := 0; i < batches; i++ {
		loss = a.Q.TrainMargin(a.expertBuf, batchSize, demoMargin, demoMarginWeight)
	}
	return loss
}

// DQfD margin hyperparameters: the demonstrated action must predict at
// least demoMargin (in standardized log-latency units) better than any
// untried competitor.
const (
	demoMargin       = 0.3
	demoMarginWeight = 1.0
)

// EpisodeResult reports one fine-tuning episode.
type EpisodeResult struct {
	Query *query.Query
	// LatencyMs is the executed latency of the agent's plan.
	LatencyMs float64
	// ExpertLatencyMs is the expert's latency on the same query.
	ExpertLatencyMs float64
	// Ratio is LatencyMs / ExpertLatencyMs.
	Ratio float64
	// Catastrophic marks an execution ≥ CatastropheFactor × expert.
	Catastrophic bool
	// Retrained marks that this episode triggered a slip re-train.
	Retrained bool
}

// FineTuneEpisode runs step 4 on the next workload query: act greedily on
// predicted latency (with ε exploration), execute the finished plan, and
// train on the observation. Step 5's slip detection may re-train on expert
// samples.
func (a *Agent) FineTuneEpisode() EpisodeResult {
	env := a.Cfg.Env
	var steps []rl.Step
	s := env.Reset()
	q := env.Current()
	for !s.Terminal {
		act := a.Q.Act(s)
		if act < 0 {
			break
		}
		next, _, done := env.Step(act)
		steps = append(steps, rl.Step{Features: s.Features, Mask: s.Mask, Action: act})
		s = next
		if done {
			break
		}
	}
	out := env.Last
	lat := out.LatencyMs
	if math.IsNaN(lat) {
		lat, _ = env.Cfg.Latency.Execute(q, out.Plan, env.Cfg.LatencyBudgetMs)
	}
	for _, st := range steps {
		a.ownBuf.Add(rl.Sample{Features: st.Features, Mask: st.Mask, Action: st.Action, Target: a.target(lat)})
	}
	a.Q.Train(a.ownBuf, 32)
	// Keep a light demonstration signal mixed in (DQfD trains on a mixture
	// of self-generated and demonstration data).
	a.Q.TrainMargin(a.expertBuf, 8, demoMargin, demoMarginWeight)

	expert := a.expertLat[q.Key()]
	res := EpisodeResult{Query: q, LatencyMs: lat, ExpertLatencyMs: expert}
	if expert > 0 {
		res.Ratio = lat / expert
	}
	if expert > 0 && lat >= a.Cfg.CatastropheFactor*expert {
		res.Catastrophic = true
		a.CatastrophicExecutions++
	}

	// Slip detection (step 5).
	a.recent = append(a.recent, res.Ratio)
	if len(a.recent) > a.Cfg.SlipWindow {
		a.recent = a.recent[1:]
	}
	if len(a.recent) == a.Cfg.SlipWindow && mean(a.recent) > a.Cfg.SlipFactor {
		for i := 0; i < a.Cfg.RetrainBatches; i++ {
			a.Q.TrainMargin(a.expertBuf, 32, demoMargin, demoMarginWeight)
		}
		a.Retrains++
		a.recent = a.recent[:0]
		res.Retrained = true
	}
	return res
}

// GreedyLatency plans q with the learned policy (no exploration) and
// returns the executed latency of the resulting plan.
func (a *Agent) GreedyLatency(q *query.Query) float64 {
	env := a.Cfg.Env
	s := env.ResetTo(q)
	for !s.Terminal {
		act := a.Q.Best(s)
		if act < 0 {
			break
		}
		next, _, done := env.Step(act)
		s = next
		if done {
			break
		}
	}
	lat := env.Last.LatencyMs
	if math.IsNaN(lat) {
		lat, _ = env.Cfg.Latency.Execute(q, env.Last.Plan, env.Cfg.LatencyBudgetMs)
	}
	return lat
}

// ExpertLatency returns the recorded expert latency for a query (0 if the
// query was not demonstrated).
func (a *Agent) ExpertLatency(q *query.Query) float64 { return a.expertLat[q.Key()] }

// Demos returns the collected demonstrations.
func (a *Agent) Demos() []Demo { return a.demos }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}
