package nn

// CPU/kernel introspection for operational tooling (`handsfree env`): which
// ISA features the host exposes and which implementation each engine kernel
// resolves to under the current gates. Read-only views over the same flags
// the dispatchers consult — reported and executed paths cannot drift.

// CPUFeatures reports the ISA capabilities the kernel dispatchers probe at
// startup. AVX2FMA covers the ymm kernels (GEMM, gemv, Adam); AVX512F covers
// the zmm GEMM variants and requires OS zmm-state support (XCR0), not just
// the CPUID bit.
type CPUFeatures struct {
	AVX2    bool // ymm integer/float vectors, OS-enabled
	FMA     bool // fused multiply-add (used by the GEMM microkernels)
	AVX512F bool // zmm foundation set, OS-enabled
}

// DetectCPU returns the host's probed feature set. On non-amd64 builds every
// field is false and all kernels run portable Go.
func DetectCPU() CPUFeatures {
	// The amd64 probe requires AVX2 and FMA together (the GEMM kernels use
	// both), so one flag backs both fields.
	return CPUFeatures{AVX2: cpuAVX2FMA, FMA: cpuAVX2FMA, AVX512F: cpuAVX512F}
}

// KernelDispatch names the implementation each engine entry point resolves
// to right now, honoring runtime gates (HANDSFREE_AVX512) as well as
// hardware detection. Values are "avx512f", "avx2+fma", "avx2" (vector
// without FMA, for the bitwise-constrained kernels), or "portable".
type KernelDispatch struct {
	Gemm    string // blocked-engine GEMM microkernel
	Gemv    string // shared-packing inference panels
	Softmax string // fused softmax+cross-entropy
	Adam    string // fused Adam step
}

// Dispatch reports the current kernel routing. Softmax is always
// "portable": the fused kernel's win is pass fusion, not vectorization —
// exp/log dominate and stay scalar so the result is bitwise identical to
// the composed reference path.
func Dispatch() KernelDispatch {
	d := KernelDispatch{Gemm: "portable", Gemv: "portable", Softmax: "portable", Adam: "portable"}
	switch {
	case asmGemmEnabled && asmGemm512Enabled:
		d.Gemm = "avx512f"
	case asmGemmEnabled:
		d.Gemm = "avx2+fma"
	}
	if asmGemvEnabled {
		d.Gemv = "avx2" // multiply-then-add per step; no FMA by contract
	}
	if asmAdamEnabled {
		d.Adam = "avx2" // same bitwise contract as gemv
	}
	return d
}
