package nn

import "math"

// The blocked backend: cache-blocked, register-tiled matmul microkernels
// behind the EngineOf seam.
//
// Layout: the k dimension is cut into KC-deep blocks; for each block the
// needed rows of B are packed into NR-wide column panels (panel-major, so
// the microkernel streams B contiguously), then the output rows fan out over
// the package worker pool in MR-row tiles. The a·b path has two microkernel
// implementations: AVX2+FMA vector tiles (gemm_amd64.go, used when a one-time
// CPUID check passes) and the portable 2×4 Go tiles below. The 2×4 kernel
// keeps its 8 partial sums in registers across the whole k block — 6 loads
// feed 16 flops per k step, versus the reference kernel's two loads and a
// store per multiply-add — and the packed panel plus MR rows of A fit L1.
// The tile is 2×4 rather than 4×4 deliberately: 8 accumulators plus 4 packed
// B values and 2 A values stay within amd64's 16 vector registers, where a
// 4×4 tile's 21 live floats spill to the stack and forfeit the win.
//
// Numerics: register accumulation per k block reorders each output element's
// summation (reference adds every product straight into memory in k order),
// so blocked results match the reference by tolerance (f64 rel ≤1e-12, f32
// rel ≤1e-4), not bitwise. Determinism still holds: the blocking is a pure
// function of the shapes, never of the worker count, so a blocked product is
// identical across SetWorkers settings. Tiny shapes — in particular the 1×d
// products of greedy rollouts and per-sample inference — fall back to the
// serial reference kernel and stay bitwise identical to EngineReference,
// which is what makes reference-trained policies plan identically under
// either engine.

const (
	// blockedKC is the k-block depth: one packed B panel is KC×NR elements
	// (8 KB at f64) and each microkernel pass adds MR×KC elements of A, so
	// the inner loops run from L1-resident data.
	blockedKC = 256
	// blockedMR × blockedNR is the register tile: 8 partial sums held in
	// registers per microkernel invocation (see the register-budget note in
	// the package comment above).
	blockedMR = 2
	blockedNR = 4
	// blockedMinFlops is the multiply-accumulate count under which blocking
	// (zeroing, packing, tile bookkeeping) costs more than it saves and the
	// serial reference kernel runs instead.
	blockedMinFlops = 1 << 12
)

// BlockedTileConfig reports the blocked engine's portable tile geometry
// (register tile MR×NR, k-block depth KC) for reproducible perf reports. When
// BlockedKernel reports "avx2+fma" the a·b path instead runs 4×16 (f32) or
// 4×8 (f64) vector tiles; the k-block depth is KC either way.
func BlockedTileConfig() (mr, nr, kc int) { return blockedMR, blockedNR, blockedKC }

// BlockedKernel names the microkernel implementation behind the blocked
// engine's a·b path: "avx512" when the opt-in zmm kernels are active
// (HANDSFREE_AVX512 on AVX512F hardware), "avx2+fma" when the
// runtime-detected ymm kernels are active (amd64 with AVX2 and FMA),
// "portable" for the generic 2×4 register-tiled Go kernels. The avx512 and
// avx2+fma paths produce bitwise-identical results (same FMA-covered column
// region, same per-element fold order); the portable kernels match by the
// engine tolerance contract.
func BlockedKernel() string {
	switch {
	case asmGemmEnabled && asmGemm512Enabled:
		return "avx512"
	case asmGemmEnabled:
		return "avx2+fma"
	}
	return "portable"
}

// blockedEngineOf is the cache-blocked backend.
type blockedEngineOf[T Float] struct{}

// Kind reports EngineBlocked.
func (blockedEngineOf[T]) Kind() Engine { return EngineBlocked }

// MatMul computes out = a·b with the blocked kernel.
func (blockedEngineOf[T]) MatMul(a, b, out *MatOf[T]) {
	checkMatMulShape(a, b, out)
	gemmBlocked(a, b, out, false)
}

// MatMulATB computes out (+)= aᵀ·b by materializing aᵀ into pooled scratch
// (an O(M·K) copy against the O(M·K·N) product) and running the blocked
// kernel on it. Tiny products skip the transpose and run the reference
// kernel directly.
func (blockedEngineOf[T]) MatMulATB(a, b, out *MatOf[T], accum bool) {
	checkMatMulATBShape(a, b, out)
	if a.Cols < blockedMR || a.Rows < 2 || a.Rows*a.Cols*b.Cols < blockedMinFlops {
		if !accum {
			out.Zero()
		}
		matMulATBRows(a, b, out, 0, a.Cols)
		return
	}
	at := getVec[T](a.Rows * a.Cols)
	transposeInto(*at, a)
	atm := getMat[T]()
	*atm = MatOf[T]{Rows: a.Cols, Cols: a.Rows, Data: *at}
	gemmBlocked(atm, b, out, accum)
	putMat(atm)
	putVec(at)
}

// MatMulABT computes out = a·bᵀ with 2×4 register-tiled dot kernels. B's
// rows are already the contiguous reduction vectors, so no packing is
// needed; each output element is a single ascending-k dot product, making
// this kernel bitwise identical to the reference one.
func (blockedEngineOf[T]) MatMulABT(a, b, out *MatOf[T]) {
	checkMatMulABTShape(a, b, out)
	if a.Rows < 2 || a.Rows*a.Cols*b.Rows < blockedMinFlops {
		matMulABTRows(a, b, out, 0, a.Rows)
		return
	}
	if serialKernel(a.Rows, a.Rows*a.Cols*b.Rows) {
		matMulABTBlockedRows(a, b, out, 0, a.Rows)
		return
	}
	parallelRowsOf(a.Rows, a.Rows*a.Cols*b.Rows, matABArgs[T]{a, b, out},
		func(g matABArgs[T], lo, hi int) { matMulABTBlockedRows(g.a, g.b, g.out, lo, hi) })
}

// LinearForward computes out = x·w + bias on the blocked kernel.
func (blockedEngineOf[T]) LinearForward(x, w *MatOf[T], bias []T, out *MatOf[T]) {
	checkMatMulShape(x, w, out)
	gemmBlocked(x, w, out, false)
	addBiasRows(out, bias)
}

// LinearBackward accumulates dW += xᵀ·dout and dB += Σrows dout and computes
// dx = dout·wᵀ, all on the blocked kernels.
func (e blockedEngineOf[T]) LinearBackward(x, dout, w *MatOf[T], dW, dB []T, dx *MatOf[T]) {
	// Pooled dW view, as in the reference engine: a stack literal would
	// escape through the kernel call and allocate on every backward pass.
	dWm := getMat[T]()
	*dWm = MatOf[T]{Rows: x.Cols, Cols: dout.Cols, Data: dW}
	e.MatMulATB(x, dout, dWm, true)
	putMat(dWm)
	addColSums(dout, dB)
	e.MatMulABT(dout, w, dx)
}

// SoftmaxXent is the fused form: where the reference path makes five passes
// over each row (max, exp+sum, normalize, entropy, gradient), the fused
// kernel folds the entropy accumulation into the normalize pass and the
// entropy gradient into the gradient write, leaving three. Every element
// still rounds in the reference order — pf is the same e/sum the normalize
// pass stored, and grad[i] = T(g) − T(ent·dh) is exactly the reference's
// store-then-subtract — so the result is bitwise identical to the reference
// engine at both precisions.
func (blockedEngineOf[T]) SoftmaxXent(logits *MatOf[T], masks [][]bool, actions []int, advs []float64, entropyCoef float64, probs, grad *MatOf[T]) {
	checkSoftmaxXentShape(logits, masks, actions, advs)
	probs.Resize(logits.Rows, logits.Cols)
	grad.Resize(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		softmaxXentRow(probs.Row(i), grad.Row(i), logits.Row(i), masks[i], actions[i], advs[i], entropyCoef)
	}
}

// softmaxXentRow fuses one row's masked softmax, entropy, and policy
// gradient. See the blockedEngineOf.SoftmaxXent comment for the bitwise
// argument.
func softmaxXentRow[T Float](probs, grad, logits []T, mask []bool, action int, advantage, entropyCoef float64) {
	maxv := T(math.Inf(-1))
	any := false
	for i, v := range logits {
		if mask[i] && v > maxv {
			maxv = v
			any = true
		}
	}
	var h float64
	if !any {
		// No finite masked logit: all-zero probabilities, but the gradient
		// loop below still runs — the reference path evaluates
		// advantage·0 (±0, advantage's sign) and the action term against
		// zero probabilities, and bitwise parity includes those signs.
		for i := range probs {
			probs[i] = 0
		}
	} else {
		var sum T
		for i, v := range logits {
			if !mask[i] {
				probs[i] = 0
				continue
			}
			e := T(math.Exp(float64(v - maxv)))
			probs[i] = e
			sum += e
		}
		// Normalize and accumulate the entropy in one pass: pf is the final
		// probability the reference entropy loop would read.
		if entropyCoef != 0 {
			for i, e := range probs {
				if !mask[i] {
					continue
				}
				p := e / sum
				probs[i] = p
				if p > 0 {
					pf := float64(p)
					h -= pf * math.Log(pf)
				}
			}
		} else {
			for i := range probs {
				probs[i] /= sum
			}
		}
	}
	for i, p := range probs {
		if !mask[i] {
			grad[i] = 0
			continue
		}
		g := advantage * float64(p)
		if i == action {
			g -= advantage
		}
		t := T(g)
		if entropyCoef != 0 && p > 0 {
			pf := float64(p)
			dh := -pf * (math.Log(pf) + h)
			t -= T(entropyCoef * dh)
		}
		grad[i] = t
	}
}

// AdamStep routes through the vector kernels when the CPUID gate passed
// (non-FMA multiply/add plus correctly rounded sqrt and divide, so the
// vector lanes round exactly like the scalar loop), with the scalar loop
// covering the lane remainder and every CPU without the kernels.
func (blockedEngineOf[T]) AdamStep(p, grad, m, v []T, a AdamArgs[T]) {
	checkAdamShape(p, grad, m, v)
	done := adamStepAsm(p, grad, m, v, &a)
	adamStepRows(p, grad, m, v, a, done, len(p))
}

// gemmArgs carries one k-block's operands through parallelRowsOf.
type gemmArgs[T Float] struct {
	a, b, out *MatOf[T]
	bp        []T
	kc0, kc1  int
}

// gemmBlocked computes out (+)= a·b with KC-blocking and packed panels.
// Callers have checked shapes. When accum is false out is zeroed first; the
// k blocks then accumulate into it in ascending order regardless of how the
// rows are split across workers, so results are worker-count independent.
func gemmBlocked[T Float](a, b, out *MatOf[T], accum bool) {
	m, k, n := a.Rows, a.Cols, b.Cols
	if !accum {
		out.Zero()
	}
	if m < blockedMR || m*k*n < blockedMinFlops {
		matMulRows(a, b, out, 0, m)
		return
	}
	if gemmBlockedAsm(a, b, out) {
		return
	}
	np := n - n%blockedNR
	var bpv *[]T
	var bp []T
	if np > 0 {
		bpv = getVec[T](min(blockedKC, k) * np)
		bp = *bpv
	}
	for kc0 := 0; kc0 < k; kc0 += blockedKC {
		kc1 := min(kc0+blockedKC, k)
		if np > 0 {
			packBPanels(b, kc0, kc1, np, bp)
		}
		if serialKernel(m, m*(kc1-kc0)*n) {
			gemmBlockRows(a, b, bp, kc0, kc1, out, 0, m)
			continue
		}
		parallelRowsOf(m, m*(kc1-kc0)*n,
			gemmArgs[T]{a: a, b: b, out: out, bp: bp, kc0: kc0, kc1: kc1},
			func(g gemmArgs[T], lo, hi int) {
				gemmBlockRows(g.a, g.b, g.bp, g.kc0, g.kc1, g.out, lo, hi)
			})
	}
	if bpv != nil {
		putVec(bpv)
	}
}

// packBPanels copies B[kc0:kc1, 0:np] into NR-wide panels: panel jp/NR holds
// rows kc0..kc1 of columns jp..jp+NR contiguously, so the microkernel reads
// B with stride 1.
// packBPanelsN is packBPanels for an arbitrary panel width: B[kc0:kc1, 0:np]
// copied into nr-wide k-major panels. Shared by the vector GEMM paths and
// the per-snapshot inference packer.
func packBPanelsN[T Float](b *MatOf[T], kc0, kc1, np, nr int, bp []T) {
	idx := 0
	for jp := 0; jp < np; jp += nr {
		for k := kc0; k < kc1; k++ {
			copy(bp[idx:idx+nr], b.Row(k)[jp:jp+nr])
			idx += nr
		}
	}
}

func packBPanels[T Float](b *MatOf[T], kc0, kc1, np int, bp []T) {
	idx := 0
	for jp := 0; jp < np; jp += blockedNR {
		for k := kc0; k < kc1; k++ {
			row := b.Row(k)
			bp[idx] = row[jp]
			bp[idx+1] = row[jp+1]
			bp[idx+2] = row[jp+2]
			bp[idx+3] = row[jp+3]
			idx += blockedNR
		}
	}
}

// gemmBlockRows accumulates out[lo:hi, :] += A[lo:hi, kc0:kc1]·B[kc0:kc1, :]
// for one packed k block: 2×4 register tiles over the packed panels, a
// scalar column edge for n%NR trailing columns, and 1×4 tiles for a trailing
// odd row. Inner-loop indexing is shaped for bounds-check elimination: the A
// rows are pre-sliced to exactly kc elements so the range index covers both,
// and each panel step reads element 3 first so the remaining three loads are
// provably in bounds.
func gemmBlockRows[T Float](a, b *MatOf[T], bp []T, kc0, kc1 int, out *MatOf[T], lo, hi int) {
	kc := kc1 - kc0
	n := out.Cols
	np := n - n%blockedNR
	i := lo
	for ; i+blockedMR <= hi; i += blockedMR {
		a0 := a.Row(i)[kc0:kc1]
		a1 := a.Row(i + 1)[kc0:kc1]
		o0 := out.Row(i)
		o1 := out.Row(i + 1)
		for jp := 0; jp < np; jp += blockedNR {
			p := bp[(jp/blockedNR)*kc*blockedNR:]
			var c00, c01, c02, c03 T
			var c10, c11, c12, c13 T
			for k, av0 := range a0 {
				av1 := a1[k]
				b3 := p[3]
				b0 := p[0]
				b1 := p[1]
				b2 := p[2]
				p = p[blockedNR:]
				c00 += av0 * b0
				c01 += av0 * b1
				c02 += av0 * b2
				c03 += av0 * b3
				c10 += av1 * b0
				c11 += av1 * b1
				c12 += av1 * b2
				c13 += av1 * b3
			}
			o0[jp] += c00
			o0[jp+1] += c01
			o0[jp+2] += c02
			o0[jp+3] += c03
			o1[jp] += c10
			o1[jp+1] += c11
			o1[jp+2] += c12
			o1[jp+3] += c13
		}
		for j := np; j < n; j++ {
			bcol := b.Data[kc0*b.Cols+j:]
			var s0, s1 T
			for k, av0 := range a0 {
				bv := bcol[k*b.Cols]
				s0 += av0 * bv
				s1 += a1[k] * bv
			}
			o0[j] += s0
			o1[j] += s1
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)[kc0:kc1]
		orow := out.Row(i)
		for jp := 0; jp < np; jp += blockedNR {
			p := bp[(jp/blockedNR)*kc*blockedNR:]
			var c0, c1, c2, c3 T
			for _, av := range arow {
				b3 := p[3]
				c0 += av * p[0]
				c1 += av * p[1]
				c2 += av * p[2]
				c3 += av * b3
				p = p[blockedNR:]
			}
			orow[jp] += c0
			orow[jp+1] += c1
			orow[jp+2] += c2
			orow[jp+3] += c3
		}
		for j := np; j < n; j++ {
			bcol := b.Data[kc0*b.Cols+j:]
			var s T
			for k := 0; k < kc; k++ {
				s += arow[k] * bcol[k*b.Cols]
			}
			orow[j] += s
		}
	}
}

// transposeInto writes aᵀ into dst (len a.Rows*a.Cols, column-major over a).
func transposeInto[T Float](dst []T, a *MatOf[T]) {
	rows := a.Rows
	for i := 0; i < rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			dst[j*rows+i] = v
		}
	}
}

// matMulABTBlockedRows computes out rows [lo, hi) of a·bᵀ with 2×4 register
// tiles. Each output element is one ascending-k dot product — the same
// order the reference kernel uses, so the results are bitwise identical to
// matMulABTRows.
func matMulABTBlockedRows[T Float](a, b, out *MatOf[T], lo, hi int) {
	nb := b.Rows
	nbt := nb - nb%4
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := a.Row(i)
		a1 := a.Row(i + 1)
		o0 := out.Row(i)
		o1 := out.Row(i + 1)
		for j := 0; j < nbt; j += 4 {
			b0 := b.Row(j)
			b1 := b.Row(j + 1)
			b2 := b.Row(j + 2)
			b3 := b.Row(j + 3)
			var c00, c01, c02, c03 T
			var c10, c11, c12, c13 T
			for k, av0 := range a0 {
				av1 := a1[k]
				bv := b0[k]
				c00 += av0 * bv
				c10 += av1 * bv
				bv = b1[k]
				c01 += av0 * bv
				c11 += av1 * bv
				bv = b2[k]
				c02 += av0 * bv
				c12 += av1 * bv
				bv = b3[k]
				c03 += av0 * bv
				c13 += av1 * bv
			}
			o0[j] = c00
			o0[j+1] = c01
			o0[j+2] = c02
			o0[j+3] = c03
			o1[j] = c10
			o1[j+1] = c11
			o1[j+2] = c12
			o1[j+3] = c13
		}
		for j := nbt; j < nb; j++ {
			brow := b.Row(j)
			var s0, s1 T
			for k, av0 := range a0 {
				bv := brow[k]
				s0 += av0 * bv
				s1 += a1[k] * bv
			}
			o0[j] = s0
			o1[j] = s1
		}
	}
	if i < hi {
		matMulABTRows(a, b, out, i, hi)
	}
}
