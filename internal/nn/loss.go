package nn

import "math"

// The losses and softmax helpers are generic over the tensor-core precision.
// Element-wise transcendentals (exp, log, tanh) are evaluated through the
// float64 math package and rounded to T, so the float64 instantiations are
// bitwise identical to the pre-generic implementations.

// Softmax writes the softmax of logits into a new slice, numerically stable.
func Softmax[T Float](logits []T) []T {
	out := make([]T, len(logits))
	maxv := T(math.Inf(-1))
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum T
	for i, v := range logits {
		e := T(math.Exp(float64(v - maxv)))
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// MaskedSoftmax computes a probability distribution over only the positions
// where mask is true; masked-out positions get probability 0. If no position
// is valid the result is all zeros.
func MaskedSoftmax[T Float](logits []T, mask []bool) []T {
	out := make([]T, len(logits))
	MaskedSoftmaxInto(out, logits, mask)
	return out
}

// MaskedSoftmaxInto is MaskedSoftmax writing into caller-owned storage (the
// allocation-free form used by the training hot path). out and logits must
// have equal length; out is fully overwritten.
func MaskedSoftmaxInto[T Float](out, logits []T, mask []bool) {
	maxv := T(math.Inf(-1))
	any := false
	for i, v := range logits {
		if mask[i] && v > maxv {
			maxv = v
			any = true
		}
	}
	if !any {
		for i := range out {
			out[i] = 0
		}
		return
	}
	var sum T
	for i, v := range logits {
		if !mask[i] {
			out[i] = 0
			continue
		}
		e := T(math.Exp(float64(v - maxv)))
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// SoftmaxRows applies Softmax independently to every row of a batch of
// logits, writing into a new matrix of the same shape.
func SoftmaxRows[T Float](logits *MatOf[T]) *MatOf[T] {
	out := NewMatOf[T](logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		copy(out.Row(i), Softmax(logits.Row(i)))
	}
	return out
}

// MaskedSoftmaxRows applies MaskedSoftmax to every row of a batch of logits
// under the corresponding per-row mask. len(masks) must equal logits.Rows.
func MaskedSoftmaxRows[T Float](logits *MatOf[T], masks [][]bool) *MatOf[T] {
	out := NewMatOf[T](logits.Rows, logits.Cols)
	MaskedSoftmaxRowsInto(out, logits, masks)
	return out
}

// MaskedSoftmaxRowsInto is MaskedSoftmaxRows writing into a caller-owned
// matrix, which is resized to logits' shape (the allocation-free form used by
// the training hot path).
func MaskedSoftmaxRowsInto[T Float](out, logits *MatOf[T], masks [][]bool) {
	if len(masks) != logits.Rows {
		panic("nn: MaskedSoftmaxRows mask count does not match batch size")
	}
	out.Resize(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		MaskedSoftmaxInto(out.Row(i), logits.Row(i), masks[i])
	}
}

// MSEBatch returns the mean squared error over a whole k×d batch (each row
// one sample) and the gradient matrix with respect to pred. Equivalent to
// averaging per-row MSE over the batch.
func MSEBatch[T Float](pred, target *MatOf[T]) (loss float64, grad *MatOf[T]) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSEBatch shape mismatch")
	}
	grad = NewMatOf[T](pred.Rows, pred.Cols)
	n := T(len(pred.Data))
	var total T
	for i, p := range pred.Data {
		d := p - target.Data[i]
		total += d * d
		grad.Data[i] = 2 * d / n
	}
	return float64(total / n), grad
}

// HuberBatch returns the Huber loss (delta=1) over a whole k×d batch and the
// gradient matrix with respect to pred — the batched form of HuberLoss.
func HuberBatch[T Float](pred, target *MatOf[T]) (loss float64, grad *MatOf[T]) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: HuberBatch shape mismatch")
	}
	const delta = 1.0
	grad = NewMatOf[T](pred.Rows, pred.Cols)
	n := T(len(pred.Data))
	var total T
	for i, p := range pred.Data {
		d := p - target.Data[i]
		if absT(d) <= delta {
			total += 0.5 * d * d
			grad.Data[i] = d / n
		} else {
			total += delta * (absT(d) - 0.5*delta)
			if d > 0 {
				grad.Data[i] = delta / n
			} else {
				grad.Data[i] = -delta / n
			}
		}
	}
	return float64(total / n), grad
}

// MSE returns the mean squared error and the gradient with respect to pred.
func MSE[T Float](pred, target []T) (loss float64, grad []T) {
	grad = make([]T, len(pred))
	n := T(len(pred))
	var total T
	for i := range pred {
		d := pred[i] - target[i]
		total += d * d
		grad[i] = 2 * d / n
	}
	return float64(total / n), grad
}

// HuberLoss returns the Huber loss (delta=1) and gradient with respect to
// pred. It is the regression loss used for reward-prediction training, where
// catastrophic-plan latencies would otherwise dominate MSE gradients.
func HuberLoss[T Float](pred, target []T) (loss float64, grad []T) {
	const delta = 1.0
	grad = make([]T, len(pred))
	n := T(len(pred))
	var total T
	for i := range pred {
		d := pred[i] - target[i]
		if absT(d) <= delta {
			total += 0.5 * d * d
			grad[i] = d / n
		} else {
			total += delta * (absT(d) - 0.5*delta)
			if d > 0 {
				grad[i] = delta / n
			} else {
				grad[i] = -delta / n
			}
		}
	}
	return float64(total / n), grad
}

// absT is math.Abs in the tensor precision (NaN and ±0 behave as math.Abs).
func absT[T Float](x T) T { return T(math.Abs(float64(x))) }

// PolicyGradient computes the REINFORCE gradient of
// −advantage·log π(action) − entropyCoef·H(π) with respect to the logits,
// for a single decision with a masked action space. probs must be the
// masked softmax of the logits. The returned slice is ∂loss/∂logits.
func PolicyGradient[T Float](probs []T, mask []bool, action int, advantage, entropyCoef float64) []T {
	grad := make([]T, len(probs))
	PolicyGradientInto(grad, probs, mask, action, advantage, entropyCoef)
	return grad
}

// PolicyGradientInto is PolicyGradient writing into caller-owned storage (the
// allocation-free form used by the training hot path). grad must have the
// same length as probs; it is fully overwritten, masked positions to 0.
func PolicyGradientInto[T Float](grad, probs []T, mask []bool, action int, advantage, entropyCoef float64) {
	// d(−A·log p_a)/dlogit_i = A·(p_i − 1{i==a}) restricted to the mask.
	for i, p := range probs {
		if !mask[i] {
			grad[i] = 0
			continue
		}
		g := advantage * float64(p)
		if i == action {
			g -= advantage
		}
		grad[i] = T(g)
	}
	if entropyCoef != 0 {
		// H = −Σ p log p; dH/dlogit_i = −p_i (log p_i + H) on the mask.
		var h float64
		for i, p := range probs {
			if mask[i] && p > 0 {
				pf := float64(p)
				h -= pf * math.Log(pf)
			}
		}
		for i, p := range probs {
			if !mask[i] || p <= 0 {
				continue
			}
			pf := float64(p)
			dh := -pf * (math.Log(pf) + h)
			grad[i] -= T(entropyCoef * dh)
		}
	}
}

// Entropy returns the Shannon entropy of a distribution (0·log0 taken as 0).
func Entropy[T Float](probs []T) float64 {
	var h float64
	for _, p := range probs {
		if p > 0 {
			pf := float64(p)
			h -= pf * math.Log(pf)
		}
	}
	return h
}
