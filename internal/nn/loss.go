package nn

import "math"

// Softmax writes the softmax of logits into a new slice, numerically stable.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// MaskedSoftmax computes a probability distribution over only the positions
// where mask is true; masked-out positions get probability 0. If no position
// is valid the result is all zeros.
func MaskedSoftmax(logits []float64, mask []bool) []float64 {
	out := make([]float64, len(logits))
	maxv := math.Inf(-1)
	any := false
	for i, v := range logits {
		if mask[i] && v > maxv {
			maxv = v
			any = true
		}
	}
	if !any {
		return out
	}
	var sum float64
	for i, v := range logits {
		if !mask[i] {
			continue
		}
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SoftmaxRows applies Softmax independently to every row of a batch of
// logits, writing into a new matrix of the same shape.
func SoftmaxRows(logits *Mat) *Mat {
	out := NewMat(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		copy(out.Row(i), Softmax(logits.Row(i)))
	}
	return out
}

// MaskedSoftmaxRows applies MaskedSoftmax to every row of a batch of logits
// under the corresponding per-row mask. len(masks) must equal logits.Rows.
func MaskedSoftmaxRows(logits *Mat, masks [][]bool) *Mat {
	if len(masks) != logits.Rows {
		panic("nn: MaskedSoftmaxRows mask count does not match batch size")
	}
	out := NewMat(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		copy(out.Row(i), MaskedSoftmax(logits.Row(i), masks[i]))
	}
	return out
}

// MSEBatch returns the mean squared error over a whole k×d batch (each row
// one sample) and the gradient matrix with respect to pred. Equivalent to
// averaging per-row MSE over the batch.
func MSEBatch(pred, target *Mat) (loss float64, grad *Mat) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSEBatch shape mismatch")
	}
	grad = NewMat(pred.Rows, pred.Cols)
	n := float64(len(pred.Data))
	for i, p := range pred.Data {
		d := p - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// HuberBatch returns the Huber loss (delta=1) over a whole k×d batch and the
// gradient matrix with respect to pred — the batched form of HuberLoss.
func HuberBatch(pred, target *Mat) (loss float64, grad *Mat) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: HuberBatch shape mismatch")
	}
	const delta = 1.0
	grad = NewMat(pred.Rows, pred.Cols)
	n := float64(len(pred.Data))
	for i, p := range pred.Data {
		d := p - target.Data[i]
		if math.Abs(d) <= delta {
			loss += 0.5 * d * d
			grad.Data[i] = d / n
		} else {
			loss += delta * (math.Abs(d) - 0.5*delta)
			if d > 0 {
				grad.Data[i] = delta / n
			} else {
				grad.Data[i] = -delta / n
			}
		}
	}
	return loss / n, grad
}

// MSE returns the mean squared error and the gradient with respect to pred.
func MSE(pred, target []float64) (loss float64, grad []float64) {
	grad = make([]float64, len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d
		grad[i] = 2 * d / float64(len(pred))
	}
	return loss / float64(len(pred)), grad
}

// HuberLoss returns the Huber loss (delta=1) and gradient with respect to
// pred. It is the regression loss used for reward-prediction training, where
// catastrophic-plan latencies would otherwise dominate MSE gradients.
func HuberLoss(pred, target []float64) (loss float64, grad []float64) {
	const delta = 1.0
	grad = make([]float64, len(pred))
	n := float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		if math.Abs(d) <= delta {
			loss += 0.5 * d * d
			grad[i] = d / n
		} else {
			loss += delta * (math.Abs(d) - 0.5*delta)
			if d > 0 {
				grad[i] = delta / n
			} else {
				grad[i] = -delta / n
			}
		}
	}
	return loss / n, grad
}

// PolicyGradient computes the REINFORCE gradient of
// −advantage·log π(action) − entropyCoef·H(π) with respect to the logits,
// for a single decision with a masked action space. probs must be the
// masked softmax of the logits. The returned slice is ∂loss/∂logits.
func PolicyGradient(probs []float64, mask []bool, action int, advantage, entropyCoef float64) []float64 {
	grad := make([]float64, len(probs))
	// d(−A·log p_a)/dlogit_i = A·(p_i − 1{i==a}) restricted to the mask.
	for i, p := range probs {
		if !mask[i] {
			continue
		}
		g := advantage * p
		if i == action {
			g -= advantage
		}
		grad[i] = g
	}
	if entropyCoef != 0 {
		// H = −Σ p log p; dH/dlogit_i = −p_i (log p_i + H) on the mask.
		var h float64
		for i, p := range probs {
			if mask[i] && p > 0 {
				h -= p * math.Log(p)
			}
		}
		for i, p := range probs {
			if !mask[i] || p <= 0 {
				continue
			}
			dh := -p * (math.Log(p) + h)
			grad[i] -= entropyCoef * dh
		}
	}
	return grad
}

// Entropy returns the Shannon entropy of a distribution (0·log0 taken as 0).
func Entropy(probs []float64) float64 {
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}
