//go:build amd64

package nn

// Vector kernels for the fused Adam step. Unlike the GEMM microkernels these
// deliberately avoid FMA: the update is one multiply/add chain per element
// (no cross-element reduction), and separate VMULP/VADDP instructions round
// each intermediate exactly like the scalar Go expression — VSQRTP and VDIVP
// are correctly rounded by IEEE-754, and float32's sqrt-through-float64
// double rounding is innocuous (53 ≥ 2·24+2) — so the vector lanes are
// bitwise identical to the reference loop at both precisions. The win is the
// 4-wide (f64) / 8-wide (f32) data path over a fused single pass of the
// parameter, gradient, and both moment arrays, not contraction.
//
// The kernels share the GEMM gate's CPUID detection (they need AVX and
// OS-managed ymm state; requiring the full AVX2+FMA gate keeps one knob) and
// the setAsmGemm test hook, so the portable-path CI legs cover the scalar
// loop on hardware that would never otherwise run it.

// asmAdamEnabled routes the blocked engine's AdamStep through the vector
// kernels. It follows the GEMM gate: detection plus the setAsmAdam hook.
var asmAdamEnabled = cpuAVX2FMA

// setAsmAdam is a test hook mirroring setAsmGemm for the Adam kernels.
func setAsmAdam(on bool) bool {
	prev := asmAdamEnabled
	asmAdamEnabled = on && cpuAVX2FMA
	return prev
}

// Vector kernels (adam_amd64.s). Each processes elements [0, n) — n a
// multiple of the lane width — of one fused update, reading the broadcast
// constants from a by struct offset.
//
//go:noescape
func adamStep4f64(n int, p, grad, m, v *float64, a *AdamArgs[float64])

//go:noescape
func adamStep8f32(n int, p, grad, m, v *float32, a *AdamArgs[float32])

// adamStepAsm runs the vector kernels over the largest lane-aligned prefix
// of the update and returns how many elements were processed (0 when the
// kernels are unavailable, disabled, or the slice is shorter than one
// vector). The caller finishes [done, len) with the scalar loop.
func adamStepAsm[T Float](p, grad, m, v []T, a *AdamArgs[T]) int {
	if !asmAdamEnabled {
		return 0
	}
	switch pt := any(p).(type) {
	case []float64:
		n := len(p) - len(p)%4
		if n == 0 {
			return 0
		}
		adamStep4f64(n, &pt[0], &any(grad).([]float64)[0], &any(m).([]float64)[0], &any(v).([]float64)[0], any(a).(*AdamArgs[float64]))
		return n
	case []float32:
		n := len(p) - len(p)%8
		if n == 0 {
			return 0
		}
		adamStep8f32(n, &pt[0], &any(grad).([]float32)[0], &any(m).([]float32)[0], &any(v).([]float32)[0], any(a).(*AdamArgs[float32]))
		return n
	}
	return 0
}
