package nn

import "testing"

// TestDispatchTracksGates checks the introspection view against the flags
// the dispatchers actually consult, across the toggleable gate states.
func TestDispatchTracksGates(t *testing.T) {
	cpu := DetectCPU()
	if cpu.AVX2 != cpuAVX2FMA || cpu.FMA != cpuAVX2FMA || cpu.AVX512F != cpuAVX512F {
		t.Fatalf("DetectCPU() = %+v, flags avx2fma=%v avx512f=%v", cpu, cpuAVX2FMA, cpuAVX512F)
	}

	d := Dispatch()
	wantGemm := "portable"
	switch {
	case asmGemmEnabled && asmGemm512Enabled:
		wantGemm = "avx512f"
	case asmGemmEnabled:
		wantGemm = "avx2+fma"
	}
	if d.Gemm != wantGemm {
		t.Errorf("Dispatch().Gemm = %q, want %q", d.Gemm, wantGemm)
	}
	if d.Softmax != "portable" {
		t.Errorf("Dispatch().Softmax = %q, want portable (fusion, not vectorization)", d.Softmax)
	}

	if !cpuAVX2FMA {
		if d.Gemv != "portable" || d.Adam != "portable" {
			t.Errorf("no AVX2+FMA but Dispatch() = %+v", d)
		}
		return
	}

	// Flip the gemv and Adam gates and check the view follows.
	prevGemv := setAsmGemv(false)
	prevAdam := setAsmAdam(false)
	defer setAsmGemv(prevGemv)
	defer setAsmAdam(prevAdam)
	if d := Dispatch(); d.Gemv != "portable" || d.Adam != "portable" {
		t.Errorf("gates off but Dispatch() = %+v", d)
	}
	setAsmGemv(true)
	setAsmAdam(true)
	if d := Dispatch(); d.Gemv != "avx2" || d.Adam != "avx2" {
		t.Errorf("gates on but Dispatch() = %+v", d)
	}
}
