package nn

import (
	"math/rand"
	"testing"
)

// BenchmarkAdamStep pins the fused-optimizer acceptance number: one Adam
// update over a 128Ki-element parameter tensor, as the legacy unfused scalar
// loop (adamStepT — map lookups, per-element bias correction recomputed
// inline) versus the fused engine kernel (one constants conversion, one pass
// over p/g/m/v) in its portable and vector forms. Metric: steps/sec.
func BenchmarkAdamStep(b *testing.B) {
	b.Run("f64", func(b *testing.B) { benchAdamStep[float64](b) })
	b.Run("f32", func(b *testing.B) { benchAdamStep[float32](b) })
}

func benchAdamStep[T Float](b *testing.B) {
	const n = 128 * 1024
	newState := func() (p *ParamOf[T], m, v map[*ParamOf[T]][]T) {
		rng := rand.New(rand.NewSource(5))
		p = &ParamOf[T]{Value: make([]T, n), Grad: make([]T, n)}
		fillUniform(p.Value, rng)
		fillUniform(p.Grad, rng)
		return p, map[*ParamOf[T]][]T{}, map[*ParamOf[T]][]T{}
	}

	b.Run("unfused", func(b *testing.B) {
		p, m, v := newState()
		params := []*ParamOf[T]{p}
		adamStepT(m, v, params, 1, 1e-3, 0.9, 0.999, 1e-8, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			adamStepT(m, v, params, i+2, 1e-3, 0.9, 0.999, 1e-8, 0)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
	})

	fused := func(b *testing.B, asm bool) {
		prev := setAsmAdam(asm)
		defer setAsmAdam(prev)
		e := NewEngineOf[T](EngineBlocked)
		p, _, _ := newState()
		m, v := make([]T, n), make([]T, n)
		e.AdamStep(p.Value, p.Grad, m, v, NewAdamArgs[T](1, 1e-3, 0.9, 0.999, 1e-8, 1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.AdamStep(p.Value, p.Grad, m, v, NewAdamArgs[T](i+2, 1e-3, 0.9, 0.999, 1e-8, 1))
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
	}
	b.Run("fused-portable", func(b *testing.B) { fused(b, false) })
	if cpuAVX2FMA {
		b.Run("fused-avx2fma", func(b *testing.B) { fused(b, true) })
	}
}

// BenchmarkSoftmaxXent compares the composed policy-loss sequence (masked
// row softmax, then the per-row policy-gradient fill — the reference
// engine's path) against the blocked engine's fused three-pass kernel on the
// REINFORCE batch shape. Both are bitwise identical; the metric is rows/sec.
func BenchmarkSoftmaxXent(b *testing.B) {
	b.Run("f64", func(b *testing.B) { benchSoftmaxXent[float64](b) })
	b.Run("f32", func(b *testing.B) { benchSoftmaxXent[float32](b) })
}

func benchSoftmaxXent[T Float](b *testing.B) {
	const rows, cols = 256, 64
	rng := rand.New(rand.NewSource(11))
	logits, masks, actions, advs := softmaxXentCase[T](rows, cols, rng)
	probs, grad := NewMatOf[T](rows, cols), NewMatOf[T](rows, cols)
	for _, eng := range []struct {
		name string
		e    Engine
	}{{"composed-reference", EngineReference}, {"fused-blocked", EngineBlocked}} {
		b.Run(eng.name, func(b *testing.B) {
			e := NewEngineOf[T](eng.e)
			e.SoftmaxXent(logits, masks, actions, advs, 0.01, probs, grad)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.SoftmaxXent(logits, masks, actions, advs, 0.01, probs, grad)
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// BenchmarkPackedInfer measures the serving-shape inference path — one
// feature vector through a policy-sized MLP — unpacked (per-call reference
// kernels over the raw weight matrices) versus the shared pack (per-publish
// panels, vector gemv). Bitwise-identical outputs; metrics: infers/sec and
// GFLOP/s over the matmul work.
func BenchmarkPackedInfer(b *testing.B) {
	b.Run("f64", func(b *testing.B) { benchPackedInfer[float64](b) })
	b.Run("f32", func(b *testing.B) { benchPackedInfer[float32](b) })
}

func benchPackedInfer[T Float](b *testing.B) {
	old := Workers()
	SetWorkers(1)
	defer SetWorkers(old)
	sizes := []int{256, 128, 64}
	rng := rand.New(rand.NewSource(21))
	net := NewMLPOf[T](rng, sizes...)
	flops := 0.0
	for i := 0; i+1 < len(sizes); i++ {
		flops += 2 * float64(sizes[i]) * float64(sizes[i+1])
	}
	x := randMatOf[T](1, sizes[0], rng)
	var out MatOf[T]

	b.Run("unpacked", func(b *testing.B) {
		net.InferInto(x, &out)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.InferInto(x, &out)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "infers/sec")
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	})
	b.Run("packed", func(b *testing.B) {
		p := net.Pack()
		p.InferInto(x, &out)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.InferInto(x, &out)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "infers/sec")
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	})
}
