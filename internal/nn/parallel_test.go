package nn

import (
	"math"
	"math/rand"
	"testing"
)

// randMat fills an r×c matrix with standard-normal values (a few exact zeros
// mixed in to exercise the sparse-skip branches).
func randMat(r, c int, rng *rand.Rand) *Mat {
	m := NewMat(r, c)
	for i := range m.Data {
		if rng.Intn(13) == 0 {
			continue // leave an exact zero
		}
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// equalApprox reports whether two float64 slices agree within a tolerance.
func equalApprox(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// TestParallelMatMulMatchesSerial checks all three kernels on random shapes,
// including shapes large enough to cross the parallel threshold and odd
// sizes that produce ragged row blocks. The parallel kernels preserve the
// serial accumulation order, so the comparison is exact (tolerance 0).
func TestParallelMatMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{1, 7, 5},      // single row: must stay serial
		{3, 4, 2},      // tiny
		{64, 256, 128}, // well above threshold
		{65, 129, 67},  // odd sizes, ragged blocks
		{4, 1024, 33},  // minimum parallel rows
		{200, 17, 90},
	}
	for _, sh := range shapes {
		r, k, c := sh[0], sh[1], sh[2]
		a := randMat(r, k, rng)
		b := randMat(k, c, rng)

		got := MatMul(a, b)
		want := NewMat(r, c)
		matMulRows(a, b, want, 0, r)
		if !equalApprox(got.Data, want.Data, 0) {
			t.Fatalf("MatMul %dx%d·%dx%d: parallel differs from serial", r, k, k, c)
		}

		// aᵀ·b with matching leading dims.
		a2 := randMat(k, r, rng)
		b2 := randMat(k, c, rng)
		got = MatMulATB(a2, b2)
		want = NewMat(r, c)
		matMulATBRows(a2, b2, want, 0, r)
		if !equalApprox(got.Data, want.Data, 0) {
			t.Fatalf("MatMulATB %dx%dᵀ·%dx%d: parallel differs from serial", k, r, k, c)
		}

		// a·bᵀ with matching trailing dims.
		a3 := randMat(r, k, rng)
		b3 := randMat(c, k, rng)
		got = MatMulABT(a3, b3)
		want = NewMat(r, c)
		matMulABTRows(a3, b3, want, 0, r)
		if !equalApprox(got.Data, want.Data, 0) {
			t.Fatalf("MatMulABT %dx%d·%dx%dᵀ: parallel differs from serial", r, k, c, k)
		}
	}
}

// TestSetWorkersForcesSerial verifies the SetWorkers(1) escape hatch still
// yields correct results and restores parallelism afterwards.
func TestSetWorkersForcesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(64, 128, rng)
	b := randMat(128, 64, rng)
	parallel := MatMul(a, b)
	SetWorkers(1)
	serial := MatMul(a, b)
	SetWorkers(0) // clamps to 1
	if Workers() != 1 {
		t.Fatalf("SetWorkers(0) should clamp to 1, got %d", Workers())
	}
	SetWorkers(8)
	if !equalApprox(parallel.Data, serial.Data, 0) {
		t.Fatal("serial and parallel MatMul disagree")
	}
}

func TestSoftmaxRowsMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logits := randMat(9, 11, rng)
	batch := SoftmaxRows(logits)
	for i := 0; i < logits.Rows; i++ {
		want := Softmax(logits.Row(i))
		if !equalApprox(batch.Row(i), want, 0) {
			t.Fatalf("row %d: SoftmaxRows differs from Softmax", i)
		}
	}
}

func TestMaskedSoftmaxRowsMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := randMat(8, 6, rng)
	masks := make([][]bool, logits.Rows)
	for i := range masks {
		masks[i] = make([]bool, logits.Cols)
		any := false
		for j := range masks[i] {
			masks[i][j] = rng.Intn(2) == 0
			any = any || masks[i][j]
		}
		if !any && i != 3 {
			masks[i][rng.Intn(logits.Cols)] = true
		}
		// Row 3 keeps whatever mask it drew — possibly all-false, which must
		// produce an all-zero row, not a panic.
	}
	batch := MaskedSoftmaxRows(logits, masks)
	for i := 0; i < logits.Rows; i++ {
		want := MaskedSoftmax(logits.Row(i), masks[i])
		if !equalApprox(batch.Row(i), want, 0) {
			t.Fatalf("row %d: MaskedSoftmaxRows differs from MaskedSoftmax", i)
		}
	}
}

func TestBatchedLossesMatchPerRowMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pred := randMat(6, 5, rng)
	target := randMat(6, 5, rng)

	mseLoss, mseGrad := MSEBatch(pred, target)
	hubLoss, hubGrad := HuberBatch(pred, target)

	var wantMSE, wantHub float64
	for i := 0; i < pred.Rows; i++ {
		l, g := MSE(pred.Row(i), target.Row(i))
		wantMSE += l
		for j, v := range g {
			if math.Abs(v/float64(pred.Rows)-mseGrad.At(i, j)) > 1e-12 {
				t.Fatalf("MSEBatch grad (%d,%d) mismatch", i, j)
			}
		}
		l, g = HuberLoss(pred.Row(i), target.Row(i))
		wantHub += l
		for j, v := range g {
			if math.Abs(v/float64(pred.Rows)-hubGrad.At(i, j)) > 1e-12 {
				t.Fatalf("HuberBatch grad (%d,%d) mismatch", i, j)
			}
		}
	}
	wantMSE /= float64(pred.Rows)
	wantHub /= float64(pred.Rows)
	if math.Abs(mseLoss-wantMSE) > 1e-12 {
		t.Fatalf("MSEBatch loss %v, want %v", mseLoss, wantMSE)
	}
	if math.Abs(hubLoss-wantHub) > 1e-12 {
		t.Fatalf("HuberBatch loss %v, want %v", hubLoss, wantHub)
	}
}

// TestBatchedForwardMatchesPerSample pushes a batch through an MLP and
// compares every row against the same vectors pushed through one at a time.
// Row-independent forward math means the results must be bitwise equal.
func TestBatchedForwardMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewMLP(rng, 12, 32, 16, 5)
	// Pin the reference engine: bitwise batch-vs-single equality only holds
	// when both paths share an accumulation order. The blocked engine reorders
	// batched sums (and routes 1×d through the reference fallback anyway);
	// its batch-vs-reference tolerance is covered by the engine parity tests.
	net.SetEngine(EngineReference)
	x := randMat(10, 12, rng)
	// Forward results live in the net's reusable buffer and are overwritten
	// by the per-sample Forward calls below, so retain a copy.
	batch := net.Forward(x).Clone()
	for i := 0; i < x.Rows; i++ {
		single := net.Forward(FromVec(x.Row(i)))
		if !equalApprox(batch.Row(i), single.Data, 0) {
			t.Fatalf("row %d: batched forward differs from per-sample forward", i)
		}
	}
}
