//go:build amd64

#include "textflag.h"

// AVX-512 microkernels for the blocked engine (see gemm512_amd64.go for the
// contract). The zmm analogue of the AVX2 register plan:
//
//	Z0–Z7   accumulators (row r uses Z(2r) for the first 16/8 columns,
//	        Z(2r+1) for the second zmm of columns)
//	Z8, Z9  the current k step's packed B panel row
//	Z10,Z11 broadcast A values
//	DX      kc (loop bound)   BX  k index
//	R8–R11  A row pointers    SI  packed panel pointer, advanced per k
//	DI      output row pointer during the epilogue
//
// Each k step issues one FMA per live accumulator, so every output element
// folds its products in ascending k order — per-lane arithmetic identical to
// the AVX2 kernels, just twice as many lanes per instruction.

// func gemm4x32f32(kc int, a0, a1, a2, a3, bp, o0, o1, o2, o3 *float32)
TEXT ·gemm4x32f32(SB), NOSPLIT, $0-80
	MOVQ   kc+0(FP), DX
	MOVQ   a0+8(FP), R8
	MOVQ   a1+16(FP), R9
	MOVQ   a2+24(FP), R10
	MOVQ   a3+32(FP), R11
	MOVQ   bp+40(FP), SI
	VXORPS X0, X0, X0
	VXORPS X1, X1, X1
	VXORPS X2, X2, X2
	VXORPS X3, X3, X3
	VXORPS X4, X4, X4
	VXORPS X5, X5, X5
	VXORPS X6, X6, X6
	VXORPS X7, X7, X7
	XORQ   BX, BX
	CMPQ   BX, DX
	JGE    done4x32

loop4x32:
	VMOVUPS      (SI), Z8
	VMOVUPS      64(SI), Z9
	VBROADCASTSS (R8)(BX*4), Z10
	VBROADCASTSS (R9)(BX*4), Z11
	VFMADD231PS  Z8, Z10, Z0
	VFMADD231PS  Z9, Z10, Z1
	VFMADD231PS  Z8, Z11, Z2
	VFMADD231PS  Z9, Z11, Z3
	VBROADCASTSS (R10)(BX*4), Z10
	VBROADCASTSS (R11)(BX*4), Z11
	VFMADD231PS  Z8, Z10, Z4
	VFMADD231PS  Z9, Z10, Z5
	VFMADD231PS  Z8, Z11, Z6
	VFMADD231PS  Z9, Z11, Z7
	ADDQ         $128, SI
	INCQ         BX
	CMPQ         BX, DX
	JLT          loop4x32

done4x32:
	MOVQ       o0+48(FP), DI
	VADDPS     (DI), Z0, Z0
	VMOVUPS    Z0, (DI)
	VADDPS     64(DI), Z1, Z1
	VMOVUPS    Z1, 64(DI)
	MOVQ       o1+56(FP), DI
	VADDPS     (DI), Z2, Z2
	VMOVUPS    Z2, (DI)
	VADDPS     64(DI), Z3, Z3
	VMOVUPS    Z3, 64(DI)
	MOVQ       o2+64(FP), DI
	VADDPS     (DI), Z4, Z4
	VMOVUPS    Z4, (DI)
	VADDPS     64(DI), Z5, Z5
	VMOVUPS    Z5, 64(DI)
	MOVQ       o3+72(FP), DI
	VADDPS     (DI), Z6, Z6
	VMOVUPS    Z6, (DI)
	VADDPS     64(DI), Z7, Z7
	VMOVUPS    Z7, 64(DI)
	VZEROUPPER
	RET

// func gemm1x32f32(kc int, a0, bp, o0 *float32)
TEXT ·gemm1x32f32(SB), NOSPLIT, $0-32
	MOVQ   kc+0(FP), DX
	MOVQ   a0+8(FP), R8
	MOVQ   bp+16(FP), SI
	VXORPS X0, X0, X0
	VXORPS X1, X1, X1
	XORQ   BX, BX
	CMPQ   BX, DX
	JGE    done1x32

loop1x32:
	VMOVUPS      (SI), Z8
	VMOVUPS      64(SI), Z9
	VBROADCASTSS (R8)(BX*4), Z10
	VFMADD231PS  Z8, Z10, Z0
	VFMADD231PS  Z9, Z10, Z1
	ADDQ         $128, SI
	INCQ         BX
	CMPQ         BX, DX
	JLT          loop1x32

done1x32:
	MOVQ       o0+24(FP), DI
	VADDPS     (DI), Z0, Z0
	VMOVUPS    Z0, (DI)
	VADDPS     64(DI), Z1, Z1
	VMOVUPS    Z1, 64(DI)
	VZEROUPPER
	RET

// func gemm4x16f64(kc int, a0, a1, a2, a3, bp, o0, o1, o2, o3 *float64)
TEXT ·gemm4x16f64(SB), NOSPLIT, $0-80
	MOVQ   kc+0(FP), DX
	MOVQ   a0+8(FP), R8
	MOVQ   a1+16(FP), R9
	MOVQ   a2+24(FP), R10
	MOVQ   a3+32(FP), R11
	MOVQ   bp+40(FP), SI
	VXORPS X0, X0, X0
	VXORPS X1, X1, X1
	VXORPS X2, X2, X2
	VXORPS X3, X3, X3
	VXORPS X4, X4, X4
	VXORPS X5, X5, X5
	VXORPS X6, X6, X6
	VXORPS X7, X7, X7
	XORQ   BX, BX
	CMPQ   BX, DX
	JGE    done4x16d

loop4x16d:
	VMOVUPD      (SI), Z8
	VMOVUPD      64(SI), Z9
	VBROADCASTSD (R8)(BX*8), Z10
	VBROADCASTSD (R9)(BX*8), Z11
	VFMADD231PD  Z8, Z10, Z0
	VFMADD231PD  Z9, Z10, Z1
	VFMADD231PD  Z8, Z11, Z2
	VFMADD231PD  Z9, Z11, Z3
	VBROADCASTSD (R10)(BX*8), Z10
	VBROADCASTSD (R11)(BX*8), Z11
	VFMADD231PD  Z8, Z10, Z4
	VFMADD231PD  Z9, Z10, Z5
	VFMADD231PD  Z8, Z11, Z6
	VFMADD231PD  Z9, Z11, Z7
	ADDQ         $128, SI
	INCQ         BX
	CMPQ         BX, DX
	JLT          loop4x16d

done4x16d:
	MOVQ       o0+48(FP), DI
	VADDPD     (DI), Z0, Z0
	VMOVUPD    Z0, (DI)
	VADDPD     64(DI), Z1, Z1
	VMOVUPD    Z1, 64(DI)
	MOVQ       o1+56(FP), DI
	VADDPD     (DI), Z2, Z2
	VMOVUPD    Z2, (DI)
	VADDPD     64(DI), Z3, Z3
	VMOVUPD    Z3, 64(DI)
	MOVQ       o2+64(FP), DI
	VADDPD     (DI), Z4, Z4
	VMOVUPD    Z4, (DI)
	VADDPD     64(DI), Z5, Z5
	VMOVUPD    Z5, 64(DI)
	MOVQ       o3+72(FP), DI
	VADDPD     (DI), Z6, Z6
	VMOVUPD    Z6, (DI)
	VADDPD     64(DI), Z7, Z7
	VMOVUPD    Z7, 64(DI)
	VZEROUPPER
	RET

// func gemm1x16f64(kc int, a0, bp, o0 *float64)
TEXT ·gemm1x16f64(SB), NOSPLIT, $0-32
	MOVQ   kc+0(FP), DX
	MOVQ   a0+8(FP), R8
	MOVQ   bp+16(FP), SI
	VXORPS X0, X0, X0
	VXORPS X1, X1, X1
	XORQ   BX, BX
	CMPQ   BX, DX
	JGE    done1x16d

loop1x16d:
	VMOVUPD      (SI), Z8
	VMOVUPD      64(SI), Z9
	VBROADCASTSD (R8)(BX*8), Z10
	VFMADD231PD  Z8, Z10, Z0
	VFMADD231PD  Z9, Z10, Z1
	ADDQ         $128, SI
	INCQ         BX
	CMPQ         BX, DX
	JLT          loop1x16d

done1x16d:
	MOVQ       o0+24(FP), DI
	VADDPD     (DI), Z0, Z0
	VMOVUPD    Z0, (DI)
	VADDPD     64(DI), Z1, Z1
	VMOVUPD    Z1, 64(DI)
	VZEROUPPER
	RET
