package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
)

// Network is a sequential stack of layers.
type Network struct {
	Layers []Layer
}

// NewMLP builds Linear→ReLU→…→Linear with the given layer sizes.
// sizes must contain at least an input and an output dimension.
func NewMLP(rng *rand.Rand, sizes ...int) *Network {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	var layers []Layer
	for i := 0; i+1 < len(sizes); i++ {
		layers = append(layers, NewLinear(sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			layers = append(layers, &ReLU{})
		}
	}
	return &Network{Layers: layers}
}

// Forward runs the batch through every layer.
func (n *Network) Forward(x *Mat) *Mat {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the loss gradient back through every layer,
// accumulating parameter gradients.
func (n *Network) Backward(dout *Mat) *Mat {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns every learnable parameter in the network.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// InDim reports the input dimension of the first Linear layer.
func (n *Network) InDim() int {
	for _, l := range n.Layers {
		if lin, ok := l.(*Linear); ok {
			return lin.In
		}
	}
	return 0
}

// OutDim reports the output dimension of the last Linear layer.
func (n *Network) OutDim() int {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if lin, ok := n.Layers[i].(*Linear); ok {
			return lin.Out
		}
	}
	return 0
}

// ResizeOutput replaces the final Linear layer with one of a new output
// width, copying the overlapping weights. This is the "network surgery" used
// by incremental (curriculum) learning when the action space grows between
// training phases: knowledge in the hidden layers and in the surviving
// output rows is preserved.
func (n *Network) ResizeOutput(newOut int, rng *rand.Rand) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		lin, ok := n.Layers[i].(*Linear)
		if !ok {
			continue
		}
		repl := NewLinear(lin.In, newOut, rng)
		keep := min(lin.Out, newOut)
		for r := 0; r < lin.In; r++ {
			copy(repl.W.Value[r*newOut:r*newOut+keep], lin.W.Value[r*lin.Out:r*lin.Out+keep])
		}
		copy(repl.B.Value[:keep], lin.B.Value[:keep])
		n.Layers[i] = repl
		return
	}
	panic("nn: ResizeOutput on a network without a Linear layer")
}

// ReinitOutput replaces the final Linear layer with a freshly initialized
// one of the same shape, preserving all hidden layers. This is the
// "transfer learning" move the paper's §5.2 closes with: keep the
// representation learned under one objective, retrain the head under
// another.
func (n *Network) ReinitOutput(rng *rand.Rand) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if lin, ok := n.Layers[i].(*Linear); ok {
			n.Layers[i] = NewLinear(lin.In, lin.Out, rng)
			return
		}
	}
	panic("nn: ReinitOutput on a network without a Linear layer")
}

// Infer runs the batch through the network without caching anything for a
// backward pass. Forward stores per-layer state (the Linear input, the ReLU
// mask) and therefore must not be called concurrently on a shared network;
// Infer touches only the parameter values, so any number of goroutines may
// call it on one network at once as long as none mutates the parameters.
// That is exactly the contract of a published policy snapshot: the parameter
// server hands one immutable network to every actor, and the actors' episode
// hot path stays allocation-light and lock-free instead of cloning the
// network per worker. Each Layer.Infer is required to compute exactly what
// its Forward computes (asserted bitwise by the parity test).
func (n *Network) Infer(x *Mat) *Mat {
	for _, l := range n.Layers {
		x = l.Infer(x)
	}
	return x
}

// netState is the gob wire form of a network: enough to rebuild layer
// structure plus the flat parameter values.
type netState struct {
	Kinds []string // "linear", "relu", "tanh"
	Ins   []int
	Outs  []int
	Vals  [][]float64
}

// MarshalBinary encodes the network structure and parameters with gob.
func (n *Network) MarshalBinary() ([]byte, error) {
	var st netState
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *Linear:
			st.Kinds = append(st.Kinds, "linear")
			st.Ins = append(st.Ins, l.In)
			st.Outs = append(st.Outs, l.Out)
			st.Vals = append(st.Vals, append([]float64(nil), l.W.Value...), append([]float64(nil), l.B.Value...))
		case *ReLU:
			st.Kinds = append(st.Kinds, "relu")
			st.Ins = append(st.Ins, 0)
			st.Outs = append(st.Outs, 0)
		case *Tanh:
			st.Kinds = append(st.Kinds, "tanh")
			st.Ins = append(st.Ins, 0)
			st.Outs = append(st.Outs, 0)
		default:
			return nil, fmt.Errorf("nn: cannot serialize layer %T", l)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a network previously encoded with MarshalBinary.
func (n *Network) UnmarshalBinary(data []byte) error {
	var st netState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	n.Layers = nil
	vi := 0
	for i, kind := range st.Kinds {
		switch kind {
		case "linear":
			in, out := st.Ins[i], st.Outs[i]
			if vi+1 >= len(st.Vals) || len(st.Vals[vi]) != in*out || len(st.Vals[vi+1]) != out {
				return fmt.Errorf("nn: corrupt network encoding at layer %d", i)
			}
			l := &Linear{
				In:  in,
				Out: out,
				W:   &Param{Name: "W", Value: st.Vals[vi], Grad: make([]float64, in*out)},
				B:   &Param{Name: "b", Value: st.Vals[vi+1], Grad: make([]float64, out)},
			}
			vi += 2
			n.Layers = append(n.Layers, l)
		case "relu":
			n.Layers = append(n.Layers, &ReLU{})
		case "tanh":
			n.Layers = append(n.Layers, &Tanh{})
		default:
			return fmt.Errorf("nn: unknown layer kind %q", kind)
		}
	}
	return nil
}

// Clone returns a deep copy of the network (parameters copied, gradients
// fresh). It copies structurally rather than through the gob round-trip:
// policy snapshots are cloned once per parallel collection round, so this is
// a warm path.
func (n *Network) Clone() *Network {
	out := &Network{Layers: make([]Layer, 0, len(n.Layers))}
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *Linear:
			out.Layers = append(out.Layers, &Linear{
				In:  l.In,
				Out: l.Out,
				W:   &Param{Name: "W", Value: append([]float64(nil), l.W.Value...), Grad: make([]float64, len(l.W.Grad))},
				B:   &Param{Name: "b", Value: append([]float64(nil), l.B.Value...), Grad: make([]float64, len(l.B.Grad))},
			})
		case *ReLU:
			out.Layers = append(out.Layers, &ReLU{})
		case *Tanh:
			out.Layers = append(out.Layers, &Tanh{})
		default:
			panic(fmt.Sprintf("nn: cannot clone layer %T", l))
		}
	}
	return out
}

// CloneForInference deep-copies the parameter values but allocates no
// gradient buffers: the copy supports Infer (and Forward) but not Backward.
// An async learner republishes a snapshot after every policy update, so the
// publish hot path skips half of Clone's allocation and memory traffic —
// snapshots are read-only by contract and their gradients would be dead
// weight.
func (n *Network) CloneForInference() *Network {
	out := &Network{Layers: make([]Layer, 0, len(n.Layers))}
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *Linear:
			out.Layers = append(out.Layers, &Linear{
				In:  l.In,
				Out: l.Out,
				W:   &Param{Name: "W", Value: append([]float64(nil), l.W.Value...)},
				B:   &Param{Name: "b", Value: append([]float64(nil), l.B.Value...)},
			})
		case *ReLU:
			out.Layers = append(out.Layers, &ReLU{})
		case *Tanh:
			out.Layers = append(out.Layers, &Tanh{})
		default:
			panic(fmt.Sprintf("nn: cannot clone layer %T", l))
		}
	}
	return out
}
