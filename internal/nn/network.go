package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
)

// NetOf is a sequential stack of layers at a fixed precision — the generic
// tensor core. Callers above nn normally hold the precision-erased Network
// wrapper instead; the typed core is exposed (Network.F64/F32) for code that
// performs weight surgery, such as planspace.TransferPolicy.
type NetOf[T Float] struct {
	Layers []LayerOf[T]

	engKind Engine        // engine the layers were bound to (EngineAuto = default)
	params  []*ParamOf[T] // cached Params() result (hot: optimizer + ZeroGrad per step)
}

// NewMLPOf builds Linear→ReLU→…→Linear with the given layer sizes at the
// given precision. sizes must contain at least an input and an output
// dimension.
func NewMLPOf[T Float](rng *rand.Rand, sizes ...int) *NetOf[T] {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	var layers []LayerOf[T]
	for i := 0; i+1 < len(sizes); i++ {
		layers = append(layers, NewLinearOf[T](sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			layers = append(layers, &ReLUOf[T]{})
		}
	}
	return &NetOf[T]{Layers: layers}
}

// SetEngine binds every layer's dense kernels to the given compute backend
// (EngineAuto resolves through DefaultEngine). Engine choice is runtime
// state, not model state: it is preserved by Clone/CloneForInference and by
// precision conversion, but never serialized — a checkpoint loads onto the
// loading process's default engine until SetEngine is called.
func (n *NetOf[T]) SetEngine(e Engine) {
	e = e.Resolve()
	n.engKind = e
	impl := NewEngineOf[T](e)
	for _, l := range n.Layers {
		l.setEngine(impl)
	}
}

// Engine reports the compute backend the network's kernels run on.
func (n *NetOf[T]) Engine() Engine {
	if n.engKind == EngineAuto {
		return DefaultEngine()
	}
	return n.engKind
}

// Forward runs the batch through every layer. The result lives in the last
// layer's reusable buffer: it is valid until the network's next
// Forward/Backward call, and callers that retain it longer must Clone it.
func (n *NetOf[T]) Forward(x *MatOf[T]) *MatOf[T] {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the loss gradient back through every layer,
// accumulating parameter gradients. The returned input gradient lives in the
// first layer's reusable buffer (valid until the next Forward/Backward).
func (n *NetOf[T]) Backward(dout *MatOf[T]) *MatOf[T] {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
	return dout
}

// Infer runs the batch through the network without caching anything for a
// backward pass; see Network.Infer for the concurrency contract.
func (n *NetOf[T]) Infer(x *MatOf[T]) *MatOf[T] {
	for _, l := range n.Layers {
		x = l.Infer(x)
	}
	return x
}

// InferInto is Infer with caller-owned output and pooled intermediates: out
// is resized to the result shape and overwritten, and the layer
// intermediates ping-pong through per-call pooled scratch, so steady-state
// inference allocates nothing. Like Infer it writes no layer state and is
// safe for any number of concurrent callers on an immutable network. out
// must not alias x.
func (n *NetOf[T]) InferInto(x, out *MatOf[T]) {
	if len(n.Layers) == 0 {
		out.Resize(x.Rows, x.Cols)
		copy(out.Data, x.Data)
		return
	}
	sc := getInferScratch[T]()
	cur := x
	for i, l := range n.Layers {
		dst := out
		if i < len(n.Layers)-1 {
			dst = sc.next()
		}
		l.inferTo(cur, dst)
		cur = dst
	}
	putInferScratch(sc)
}

// Params returns every learnable parameter in the network. The slice is
// cached (the optimizer walks it every training step); layer-replacing
// surgery (ResizeOutput/ReinitOutput) invalidates the cache.
func (n *NetOf[T]) Params() []*ParamOf[T] {
	if n.params == nil {
		for _, l := range n.Layers {
			n.params = append(n.params, l.Params()...)
		}
	}
	return n.params
}

// ZeroGrad clears every parameter gradient.
func (n *NetOf[T]) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// DivideGrads divides every accumulated gradient by n, in the network's own
// precision (the batch-size normalization of the minibatch training paths).
func (n *NetOf[T]) DivideGrads(by float64) {
	d := T(by)
	for _, p := range n.Params() {
		for i := range p.Grad {
			p.Grad[i] /= d
		}
	}
}

// FlattenParams concatenates every parameter value into one float64 vector
// (converted from the network's precision) — the precision-agnostic form the
// parity tests compare.
func (n *NetOf[T]) FlattenParams() []float64 {
	var out []float64
	for _, p := range n.Params() {
		for _, v := range p.Value {
			out = append(out, float64(v))
		}
	}
	return out
}

// InDim reports the input dimension of the first Linear layer.
func (n *NetOf[T]) InDim() int {
	for _, l := range n.Layers {
		if lin, ok := l.(*LinearOf[T]); ok {
			return lin.In
		}
	}
	return 0
}

// OutDim reports the output dimension of the last Linear layer.
func (n *NetOf[T]) OutDim() int {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if lin, ok := n.Layers[i].(*LinearOf[T]); ok {
			return lin.Out
		}
	}
	return 0
}

// ResizeOutput replaces the final Linear layer with one of a new output
// width, copying the overlapping weights. This is the "network surgery" used
// by incremental (curriculum) learning when the action space grows between
// training phases: knowledge in the hidden layers and in the surviving
// output rows is preserved.
func (n *NetOf[T]) ResizeOutput(newOut int, rng *rand.Rand) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		lin, ok := n.Layers[i].(*LinearOf[T])
		if !ok {
			continue
		}
		repl := NewLinearOf[T](lin.In, newOut, rng)
		repl.eng = lin.eng
		keep := min(lin.Out, newOut)
		for r := 0; r < lin.In; r++ {
			copy(repl.W.Value[r*newOut:r*newOut+keep], lin.W.Value[r*lin.Out:r*lin.Out+keep])
		}
		copy(repl.B.Value[:keep], lin.B.Value[:keep])
		n.Layers[i] = repl
		n.params = nil
		return
	}
	panic("nn: ResizeOutput on a network without a Linear layer")
}

// ReinitOutput replaces the final Linear layer with a freshly initialized
// one of the same shape, preserving all hidden layers. This is the
// "transfer learning" move the paper's §5.2 closes with: keep the
// representation learned under one objective, retrain the head under
// another.
func (n *NetOf[T]) ReinitOutput(rng *rand.Rand) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if lin, ok := n.Layers[i].(*LinearOf[T]); ok {
			repl := NewLinearOf[T](lin.In, lin.Out, rng)
			repl.eng = lin.eng
			n.Layers[i] = repl
			n.params = nil
			return
		}
	}
	panic("nn: ReinitOutput on a network without a Linear layer")
}

// Clone returns a deep copy of the network (parameters copied, gradients
// fresh). It copies structurally rather than through the gob round-trip:
// policy snapshots are cloned once per parallel collection round, so this is
// a warm path.
func (n *NetOf[T]) Clone() *NetOf[T] {
	return n.clone(true)
}

// CloneForInference deep-copies the parameter values but allocates no
// gradient buffers: the copy supports Infer (and Forward) but not Backward.
// An async learner republishes a snapshot after every policy update, so the
// publish hot path skips half of Clone's allocation and memory traffic —
// snapshots are read-only by contract and their gradients would be dead
// weight.
func (n *NetOf[T]) CloneForInference() *NetOf[T] {
	return n.clone(false)
}

func (n *NetOf[T]) clone(grads bool) *NetOf[T] {
	out := &NetOf[T]{Layers: make([]LayerOf[T], 0, len(n.Layers)), engKind: n.engKind}
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *LinearOf[T]:
			cl := &LinearOf[T]{
				In:  l.In,
				Out: l.Out,
				W:   &ParamOf[T]{Name: "W", Value: append([]T(nil), l.W.Value...)},
				B:   &ParamOf[T]{Name: "b", Value: append([]T(nil), l.B.Value...)},
				eng: l.eng,
			}
			if grads {
				cl.W.Grad = make([]T, len(l.W.Value))
				cl.B.Grad = make([]T, len(l.B.Value))
			}
			out.Layers = append(out.Layers, cl.bindViews())
		case *ReLUOf[T]:
			out.Layers = append(out.Layers, &ReLUOf[T]{})
		case *TanhOf[T]:
			out.Layers = append(out.Layers, &TanhOf[T]{})
		default:
			panic(fmt.Sprintf("nn: cannot clone layer %T", l))
		}
	}
	return out
}

// convertNet rebuilds a core at element type U from a core at element type T,
// converting every parameter value and allocating fresh gradients.
func convertNet[U, T Float](n *NetOf[T]) *NetOf[U] {
	out := &NetOf[U]{Layers: make([]LayerOf[U], 0, len(n.Layers)), engKind: n.engKind}
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *LinearOf[T]:
			cl := &LinearOf[U]{
				In:  l.In,
				Out: l.Out,
				W:   &ParamOf[U]{Name: "W", Value: make([]U, len(l.W.Value)), Grad: make([]U, len(l.W.Value))},
				B:   &ParamOf[U]{Name: "b", Value: make([]U, len(l.B.Value)), Grad: make([]U, len(l.B.Value))},
			}
			if l.eng != nil {
				cl.eng = NewEngineOf[U](l.eng.Kind())
			}
			for i, v := range l.W.Value {
				cl.W.Value[i] = U(v)
			}
			for i, v := range l.B.Value {
				cl.B.Value[i] = U(v)
			}
			out.Layers = append(out.Layers, cl.bindViews())
		case *ReLUOf[T]:
			out.Layers = append(out.Layers, &ReLUOf[U]{})
		case *TanhOf[T]:
			out.Layers = append(out.Layers, &TanhOf[U]{})
		default:
			panic(fmt.Sprintf("nn: cannot convert layer %T", l))
		}
	}
	return out
}

// Network is the precision-erased handle every layer above nn holds: one
// policy or value network that computes in float64 or float32 internally
// while keeping a float64 interchange API (states in, logits/gradients out).
// For F64 networks the methods delegate straight to the float64 core, so the
// default path is bitwise-identical to the pre-generic implementation; for
// F32 networks the input batch is converted once on entry and the output
// once on exit, and the whole layer chain — weights, activations, gradients,
// optimizer state — stays float32, halving the bytes every kernel moves.
type Network struct {
	prec Precision // F64 or F32, never PrecisionAuto
	n64  *NetOf[float64]
	n32  *NetOf[float32]

	// Reusable F32 boundary-conversion buffers for the single-goroutine
	// Forward/Backward paths (Infer allocates fresh conversions to keep its
	// concurrency contract).
	x32, d32 *Mat32
	y64, g64 *Mat
}

// WrapNet64 wraps a float64 core in an erased handle.
func WrapNet64(core *NetOf[float64]) *Network {
	return &Network{prec: F64, n64: core}
}

// WrapNet32 wraps a float32 core in an erased handle.
func WrapNet32(core *NetOf[float32]) *Network {
	return &Network{prec: F32, n32: core}
}

// NewMLP builds a float64 Linear→ReLU→…→Linear network with the given layer
// sizes (the historical constructor; see NewMLPAt for the precision knob).
func NewMLP(rng *rand.Rand, sizes ...int) *Network {
	return WrapNet64(NewMLPOf[float64](rng, sizes...))
}

// NewMLPAt builds an MLP at the given precision (PrecisionAuto resolves via
// DefaultPrecision). Both precisions consume the rng stream identically, so
// an f32 network built from a seed starts from the rounded weights of its
// f64 counterpart.
func NewMLPAt(p Precision, rng *rand.Rand, sizes ...int) *Network {
	if p.Resolve() == F32 {
		return WrapNet32(NewMLPOf[float32](rng, sizes...))
	}
	return WrapNet64(NewMLPOf[float64](rng, sizes...))
}

// Precision reports the precision the network stores and computes in. The
// zero-value Network reports F64 (it has no layers of either kind).
func (n *Network) Precision() Precision {
	if n.prec == F32 {
		return F32
	}
	return F64
}

// F64 returns the float64 core, or nil for an F32 network.
func (n *Network) F64() *NetOf[float64] { return n.n64 }

// F32 returns the float32 core, or nil for an F64 network.
func (n *Network) F32() *NetOf[float32] { return n.n32 }

// ConvertTo returns a network at the target precision: the receiver itself
// when the precision already matches, otherwise a fresh network with every
// parameter value explicitly converted (f64→f32 rounds; f32→f64 is exact).
// This is the upgrade path for checkpoints saved at a different precision
// than the loading agent's.
func (n *Network) ConvertTo(p Precision) *Network {
	if p.Resolve() == n.Precision() {
		return n
	}
	if n.prec == F32 {
		return WrapNet64(convertNet[float64](n.n32))
	}
	return WrapNet32(convertNet[float32](n.n64))
}

// SetEngine binds the network's dense kernels to the given compute backend
// (EngineAuto resolves through DefaultEngine). Engine choice is runtime
// state: Clone/CloneForInference/ConvertTo preserve it, serialization does
// not (a loaded checkpoint runs on the process default until SetEngine).
func (n *Network) SetEngine(e Engine) {
	if n.prec == F32 {
		n.n32.SetEngine(e)
		return
	}
	n.n64.SetEngine(e)
}

// Engine reports the compute backend the network's kernels run on. The
// zero-value Network reports the process default.
func (n *Network) Engine() Engine {
	if n.prec == F32 && n.n32 != nil {
		return n.n32.Engine()
	}
	if n.n64 != nil {
		return n.n64.Engine()
	}
	return DefaultEngine()
}

// Forward runs the batch through every layer. For an F32 network the batch
// is converted to float32 once on entry and the logits back to float64 once
// on exit; the layer chain itself runs entirely in float32, and both
// conversions land in reusable buffers. Like NetOf.Forward, the result is
// valid until the network's next Forward/Backward call — Clone it to retain
// it longer.
func (n *Network) Forward(x *Mat) *Mat {
	if n.prec == F32 {
		if n.x32 == nil {
			n.x32, n.y64 = &Mat32{}, &Mat{}
		}
		convertMatInto(n.x32, x)
		convertMatInto(n.y64, n.n32.Forward(n.x32))
		return n.y64
	}
	return n.n64.Forward(x)
}

// Backward propagates the (float64) loss gradient back through every layer,
// accumulating parameter gradients in the network's own precision, and
// returns the gradient with respect to the input (valid until the next
// Forward/Backward call).
func (n *Network) Backward(dout *Mat) *Mat {
	if n.prec == F32 {
		if n.d32 == nil {
			n.d32, n.g64 = &Mat32{}, &Mat{}
		}
		convertMatInto(n.d32, dout)
		convertMatInto(n.g64, n.n32.Backward(n.d32))
		return n.g64
	}
	return n.n64.Backward(dout)
}

// Infer runs the batch through the network without caching anything for a
// backward pass. Forward stores per-layer state (the Linear input, the ReLU
// mask) and therefore must not be called concurrently on a shared network;
// Infer touches only the parameter values, so any number of goroutines may
// call it on one network at once as long as none mutates the parameters.
// That is exactly the contract of a published policy snapshot: the parameter
// server hands one immutable network to every actor, and the actors' episode
// hot path stays allocation-light and lock-free instead of cloning the
// network per worker. Each Layer.Infer is required to compute exactly what
// its Forward computes (asserted bitwise by the parity test). The boundary
// conversions of an F32 network allocate fresh matrices per call, so they
// preserve the concurrency contract.
func (n *Network) Infer(x *Mat) *Mat {
	if n.prec == F32 {
		return ConvertMat[float64](n.n32.Infer(ConvertMat[float32](x)))
	}
	return n.n64.Infer(x)
}

// InferInto is Infer with caller-owned output: out is resized and
// overwritten with the logits, all intermediates (and, for an F32 network,
// the boundary conversions) come from per-call pooled scratch, and no layer
// state is written — so steady-state inference allocates nothing while
// keeping Infer's any-number-of-goroutines concurrency contract. out must
// not alias x.
func (n *Network) InferInto(x, out *Mat) {
	if n.prec == F32 {
		x32 := getMat[float32]()
		y32 := getMat[float32]()
		convertMatInto(x32, x)
		n.n32.InferInto(x32, y32)
		convertMatInto(out, y32)
		putMat(x32)
		putMat(y32)
		return
	}
	n.n64.InferInto(x, out)
}

// Params returns every learnable parameter of a float64 network. It panics
// on an F32 network — float32 parameters cannot be viewed as []float64;
// precision-agnostic callers use DivideGrads, FlattenParams, and
// Optimizer.StepNet instead.
func (n *Network) Params() []*Param {
	if n.prec == F32 {
		panic("nn: Params on a float32 network — use DivideGrads/FlattenParams/StepNet")
	}
	return n.n64.Params()
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	if n.prec == F32 {
		n.n32.ZeroGrad()
		return
	}
	n.n64.ZeroGrad()
}

// DivideGrads divides every accumulated gradient by n in the network's own
// precision. For F64 this is exactly the historical
// `for … { p.Grad[i] /= n }` loop, so the default path stays bitwise
// identical.
func (n *Network) DivideGrads(by float64) {
	if n.prec == F32 {
		n.n32.DivideGrads(by)
		return
	}
	n.n64.DivideGrads(by)
}

// FlattenParams concatenates every parameter value into one float64 vector
// regardless of the network's precision.
func (n *Network) FlattenParams() []float64 {
	if n.prec == F32 {
		return n.n32.FlattenParams()
	}
	return n.n64.FlattenParams()
}

// InDim reports the input dimension of the first Linear layer.
func (n *Network) InDim() int {
	if n.prec == F32 {
		return n.n32.InDim()
	}
	return n.n64.InDim()
}

// OutDim reports the output dimension of the last Linear layer.
func (n *Network) OutDim() int {
	if n.prec == F32 {
		return n.n32.OutDim()
	}
	return n.n64.OutDim()
}

// ResizeOutput replaces the final Linear layer with one of a new output
// width, copying the overlapping weights (curriculum network surgery).
func (n *Network) ResizeOutput(newOut int, rng *rand.Rand) {
	if n.prec == F32 {
		n.n32.ResizeOutput(newOut, rng)
		return
	}
	n.n64.ResizeOutput(newOut, rng)
}

// ReinitOutput replaces the final Linear layer with a freshly initialized
// one of the same shape (§5.2 transfer learning).
func (n *Network) ReinitOutput(rng *rand.Rand) {
	if n.prec == F32 {
		n.n32.ReinitOutput(rng)
		return
	}
	n.n64.ReinitOutput(rng)
}

// Clone returns a deep copy at the same precision (parameters copied,
// gradients fresh).
func (n *Network) Clone() *Network {
	if n.prec == F32 {
		return WrapNet32(n.n32.Clone())
	}
	return WrapNet64(n.n64.Clone())
}

// CloneForInference deep-copies the parameter values at the same precision
// without allocating gradient buffers (the snapshot-publish hot path).
func (n *Network) CloneForInference() *Network {
	if n.prec == F32 {
		return WrapNet32(n.n32.CloneForInference())
	}
	return WrapNet64(n.n64.CloneForInference())
}

// netState is the gob wire form of a network: enough to rebuild layer
// structure plus the flat parameter values.
//
// Version history:
//   - Version 0 (implicit; fields Version and Precision absent from the
//     stream): the original float64-only format. Kinds/Ins/Outs describe the
//     layers, Vals carries the float64 parameters.
//   - Version 1: adds Precision ("f64"/"f32"); f32 networks carry their
//     parameters in Vals32 instead of Vals. Version-0 streams decode as f64
//     (gob leaves the absent fields zero), so every pre-versioning
//     checkpoint still loads.
type netState struct {
	Version   int
	Precision string
	Kinds     []string // "linear", "relu", "tanh"
	Ins       []int
	Outs      []int
	Vals      [][]float64
	Vals32    [][]float32
}

// coreState flattens a typed core into the precision-independent part of
// netState plus its parameter payload.
func coreState[T Float](n *NetOf[T]) (kinds []string, ins, outs []int, vals [][]T, err error) {
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *LinearOf[T]:
			kinds = append(kinds, "linear")
			ins = append(ins, l.In)
			outs = append(outs, l.Out)
			vals = append(vals, append([]T(nil), l.W.Value...), append([]T(nil), l.B.Value...))
		case *ReLUOf[T]:
			kinds = append(kinds, "relu")
			ins = append(ins, 0)
			outs = append(outs, 0)
		case *TanhOf[T]:
			kinds = append(kinds, "tanh")
			ins = append(ins, 0)
			outs = append(outs, 0)
		default:
			return nil, nil, nil, nil, fmt.Errorf("nn: cannot serialize layer %T", l)
		}
	}
	return kinds, ins, outs, vals, nil
}

// coreFromState rebuilds a typed core from decoded checkpoint fields.
func coreFromState[T Float](kinds []string, ins, outs []int, vals [][]T) (*NetOf[T], error) {
	if len(ins) != len(kinds) || len(outs) != len(kinds) {
		return nil, fmt.Errorf("nn: corrupt network encoding: %d kinds, %d ins, %d outs", len(kinds), len(ins), len(outs))
	}
	n := &NetOf[T]{}
	vi := 0
	for i, kind := range kinds {
		switch kind {
		case "linear":
			in, out := ins[i], outs[i]
			if in <= 0 || out <= 0 || vi+1 >= len(vals) || len(vals[vi]) != in*out || len(vals[vi+1]) != out {
				return nil, fmt.Errorf("nn: corrupt network encoding at layer %d", i)
			}
			l := &LinearOf[T]{
				In:  in,
				Out: out,
				W:   &ParamOf[T]{Name: "W", Value: vals[vi], Grad: make([]T, in*out)},
				B:   &ParamOf[T]{Name: "b", Value: vals[vi+1], Grad: make([]T, out)},
			}
			vi += 2
			n.Layers = append(n.Layers, l.bindViews())
		case "relu":
			n.Layers = append(n.Layers, &ReLUOf[T]{})
		case "tanh":
			n.Layers = append(n.Layers, &TanhOf[T]{})
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %q", kind)
		}
	}
	return n, nil
}

// MarshalBinary encodes the network structure, precision, and parameters
// with gob (netState Version 1; parameters stay in the network's native
// precision on the wire).
func (n *Network) MarshalBinary() ([]byte, error) {
	st := netState{Version: 1, Precision: n.Precision().String()}
	var err error
	if n.prec == F32 {
		st.Kinds, st.Ins, st.Outs, st.Vals32, err = coreState(n.n32)
	} else {
		st.Kinds, st.Ins, st.Outs, st.Vals, err = coreState(n.n64)
	}
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a network previously encoded with MarshalBinary,
// restoring it at the precision recorded in the checkpoint (legacy
// version-0 streams are float64). Use ConvertTo afterwards to move the
// loaded network to a different precision.
func (n *Network) UnmarshalBinary(data []byte) error {
	var st netState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	prec := F64
	if st.Version >= 1 {
		p, err := ParsePrecision(st.Precision)
		if err != nil {
			return err
		}
		if p == PrecisionAuto {
			return fmt.Errorf("nn: checkpoint version %d carries no precision", st.Version)
		}
		prec = p
	}
	if prec == F32 {
		if len(st.Vals) != 0 {
			return fmt.Errorf("nn: f32 checkpoint carries float64 payload")
		}
		core, err := coreFromState(st.Kinds, st.Ins, st.Outs, st.Vals32)
		if err != nil {
			return err
		}
		n.prec, n.n32, n.n64 = F32, core, nil
		return nil
	}
	if len(st.Vals32) != 0 {
		return fmt.Errorf("nn: f64 checkpoint carries float32 payload")
	}
	core, err := coreFromState(st.Kinds, st.Ins, st.Outs, st.Vals)
	if err != nil {
		return err
	}
	n.prec, n.n64, n.n32 = F64, core, nil
	return nil
}
