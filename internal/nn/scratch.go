package nn

import "sync"

// Per-precision scratch pools. The blocked engine's pack/transpose panels
// and the pooled inference intermediates are transient (live for one kernel
// or one InferInto call) but hot, so they come from sync.Pool instead of the
// allocator: steady-state training and serving reach zero allocations while
// concurrent callers (the Infer contract, parallel collectors) still each
// get private buffers.

var (
	vec64Pool = sync.Pool{New: func() any { return new([]float64) }}
	vec32Pool = sync.Pool{New: func() any { return new([]float32) }}
)

// getVec returns a pooled scratch slice of length ≥ n, sliced to n. Contents
// are unspecified.
func getVec[T Float](n int) *[]T {
	p := vecPool[T]()
	v := p.Get().(*[]T)
	if cap(*v) < n {
		*v = make([]T, n)
	}
	*v = (*v)[:n]
	return v
}

// putVec returns a scratch slice to its pool.
func putVec[T Float](v *[]T) { vecPool[T]().Put(v) }

// vecPool selects the pool matching the instantiated precision.
func vecPool[T Float]() *sync.Pool {
	if _, ok := any(T(0)).(float32); ok {
		return &vec32Pool
	}
	return &vec64Pool
}

var (
	mat64Pool = sync.Pool{New: func() any { return new(MatOf[float64]) }}
	mat32Pool = sync.Pool{New: func() any { return new(MatOf[float32]) }}
)

// matPool selects the scratch-matrix pool matching the precision.
func matPool[T Float]() *sync.Pool {
	if _, ok := any(T(0)).(float32); ok {
		return &mat32Pool
	}
	return &mat64Pool
}

// getMat returns a pooled scratch matrix (shape and contents unspecified;
// Resize before use).
func getMat[T Float]() *MatOf[T] { return matPool[T]().Get().(*MatOf[T]) }

// putMat returns a scratch matrix to its pool.
func putMat[T Float](m *MatOf[T]) { matPool[T]().Put(m) }

var (
	infer64Pool = sync.Pool{New: func() any { return new(inferScratch[float64]) }}
	infer32Pool = sync.Pool{New: func() any { return new(inferScratch[float32]) }}
)

// inferScratch is the ping-pong buffer pair InferInto threads layer
// intermediates through.
type inferScratch[T Float] struct {
	bufs [2]MatOf[T]
	idx  int
}

// next returns the scratch buffer that does not alias the previous one.
func (s *inferScratch[T]) next() *MatOf[T] {
	s.idx ^= 1
	return &s.bufs[s.idx]
}

// inferPool selects the scratch pool matching the instantiated precision.
func inferPool[T Float]() *sync.Pool {
	if _, ok := any(T(0)).(float32); ok {
		return &infer32Pool
	}
	return &infer64Pool
}

func getInferScratch[T Float]() *inferScratch[T] {
	s := inferPool[T]().Get().(*inferScratch[T])
	s.idx = 0
	return s
}

func putInferScratch[T Float](s *inferScratch[T]) { inferPool[T]().Put(s) }
