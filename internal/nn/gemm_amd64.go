//go:build amd64

package nn

// AVX2+FMA microkernels for the blocked engine's a·b path. The scalar Go
// kernels top out at the core's two FP ports — roughly two flops per cycle no
// matter how the loop is tiled — so the only way past the reference kernel's
// throughput on wide shapes is vector arithmetic. GOAMD64 defaults to v1, so
// the kernels are hand-written assembly (gemm_amd64.s) gated by a one-time
// CPUID check rather than compiler-emitted VEX code.
//
// Kernel shape: 4 output rows × two 8-lane ymm columns — 16 f32 or 8 f64
// columns per tile — with the 8 accumulator registers live across the whole
// k block, fed by the same packed panels the portable kernel uses (just NR=16
// or 8 instead of 4). Each output element still accumulates in ascending k
// order, one fused multiply-add per step; fusion skips the intermediate
// product rounding, so results match the reference kernels within the blocked
// engine's tolerance contract, and every element's arithmetic is a pure
// function of the shapes — the 1-row kernel and the 4-row kernel round
// identically, so worker-count independence survives any row split. The
// n%NR column edge always runs the same scalar Go loop for every row, keeping
// that property there too.

const (
	// asmMR is the microkernel row count; row remainders run the 1-row kernel.
	asmMR = 4
	// asmNRF32 and asmNRF64 are the packed-panel widths: two ymm registers of
	// columns per k step at each precision.
	asmNRF32 = 16
	asmNRF64 = 8
)

// cpuid and xgetbv are implemented in gemm_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// cpuAVX2FMA reports whether the CPU and OS support the vector kernels:
// FMA and AVX2 instruction sets, with OS-managed ymm state (OSXSAVE set and
// XCR0 enabling both XMM and YMM saves).
var cpuAVX2FMA = detectAVX2FMA()

// asmGemmEnabled routes gemmBlocked through the vector kernels. It starts at
// the detected capability; tests flip it through setAsmGemm to cover the
// portable kernels on hardware that would never otherwise run them.
var asmGemmEnabled = cpuAVX2FMA

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c&fma == 0 || c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}

// setAsmGemm is a test hook: it enables or disables the vector kernels
// (enabling is a no-op on CPUs without them) and returns the previous
// setting so tests can restore it.
func setAsmGemm(on bool) bool {
	prev := asmGemmEnabled
	asmGemmEnabled = on && cpuAVX2FMA
	return prev
}

// Microkernels (gemm_amd64.s). Each accumulates
// out[r][0:NR] += Σ_k a_r[k]·bp[k·NR : k·NR+NR] for kc steps of one packed
// panel, in ascending k order with one FMA per element per step.
//
//go:noescape
func gemm4x16f32(kc int, a0, a1, a2, a3, bp, o0, o1, o2, o3 *float32)

//go:noescape
func gemm1x16f32(kc int, a0, bp, o0 *float32)

//go:noescape
func gemm4x8f64(kc int, a0, a1, a2, a3, bp, o0, o1, o2, o3 *float64)

//go:noescape
func gemm1x8f64(kc int, a0, bp, o0 *float64)

// gemmBlockedAsm routes out += a·b through the vector kernels, returning
// false (having written nothing) when they are unavailable or unprofitable:
// detection failed, tests forced the portable path, the precision has no
// kernel, or the output is too narrow for even one vector panel. Callers have
// zeroed (or deliberately kept) out and filtered tiny shapes.
func gemmBlockedAsm[T Float](a, b, out *MatOf[T]) bool {
	if !asmGemmEnabled {
		return false
	}
	switch am := any(a).(type) {
	case *MatOf[float32]:
		if b.Cols < asmNRF32 {
			return false
		}
		if asmGemm512Enabled && b.Cols >= asmNR512F32 {
			gemmBlocked512F32(am, any(b).(*MatOf[float32]), any(out).(*MatOf[float32]))
			return true
		}
		gemmBlockedF32(am, any(b).(*MatOf[float32]), any(out).(*MatOf[float32]))
	case *MatOf[float64]:
		if b.Cols < asmNRF64 {
			return false
		}
		if asmGemm512Enabled && b.Cols >= asmNR512F64 {
			gemmBlocked512F64(am, any(b).(*MatOf[float64]), any(out).(*MatOf[float64]))
			return true
		}
		gemmBlockedF64(am, any(b).(*MatOf[float64]), any(out).(*MatOf[float64]))
	default:
		return false
	}
	return true
}

// gemmColEdgeRow accumulates the n%NR trailing columns of one output row as
// plain ascending-k dot products over unpacked B. Every row takes this path
// for these columns regardless of which microkernel covered the panels, so
// the arithmetic per element never depends on the row split.
func gemmColEdgeRow[T Float](a, b *MatOf[T], kc0, kc1 int, out *MatOf[T], i, np int) {
	arow := a.Row(i)[kc0:kc1]
	orow := out.Row(i)
	for j := np; j < out.Cols; j++ {
		bcol := b.Data[kc0*b.Cols+j:]
		var s T
		for k, av := range arow {
			s += av * bcol[k*b.Cols]
		}
		orow[j] += s
	}
}

// gemmAsmArgsF32 carries one k-block's operands through parallelRowsOf.
type gemmAsmArgsF32 struct {
	a, b, out *MatOf[float32]
	bp        []float32
	kc0, kc1  int
}

type gemmAsmArgsF64 struct {
	a, b, out *MatOf[float64]
	bp        []float64
	kc0, kc1  int
}

func gemmBlockedF32(a, b, out *MatOf[float32]) {
	m, k, n := a.Rows, a.Cols, b.Cols
	np := n - n%asmNRF32
	bpv := getVec[float32](min(blockedKC, k) * np)
	bp := *bpv
	for kc0 := 0; kc0 < k; kc0 += blockedKC {
		kc1 := min(kc0+blockedKC, k)
		packBPanelsN(b, kc0, kc1, np, asmNRF32, bp)
		g := gemmAsmArgsF32{a: a, b: b, out: out, bp: bp, kc0: kc0, kc1: kc1}
		if serialKernel(m, m*(kc1-kc0)*n) {
			gemmAsmRowsF32(g, 0, m)
			continue
		}
		parallelRowsOf(m, m*(kc1-kc0)*n, g, gemmAsmRowsF32)
	}
	putVec(bpv)
}

func gemmBlockedF64(a, b, out *MatOf[float64]) {
	m, k, n := a.Rows, a.Cols, b.Cols
	np := n - n%asmNRF64
	bpv := getVec[float64](min(blockedKC, k) * np)
	bp := *bpv
	for kc0 := 0; kc0 < k; kc0 += blockedKC {
		kc1 := min(kc0+blockedKC, k)
		packBPanelsN(b, kc0, kc1, np, asmNRF64, bp)
		g := gemmAsmArgsF64{a: a, b: b, out: out, bp: bp, kc0: kc0, kc1: kc1}
		if serialKernel(m, m*(kc1-kc0)*n) {
			gemmAsmRowsF64(g, 0, m)
			continue
		}
		parallelRowsOf(m, m*(kc1-kc0)*n, g, gemmAsmRowsF64)
	}
	putVec(bpv)
}

// gemmAsmRowsF32 runs rows [lo, hi) of one packed k block: 4-row vector
// tiles, the 1-row kernel for the row remainder, and the shared scalar column
// edge.
func gemmAsmRowsF32(g gemmAsmArgsF32, lo, hi int) {
	kc := g.kc1 - g.kc0
	np := g.out.Cols - g.out.Cols%asmNRF32
	i := lo
	for ; i+asmMR <= hi; i += asmMR {
		a0 := g.a.Row(i)[g.kc0:g.kc1]
		a1 := g.a.Row(i + 1)[g.kc0:g.kc1]
		a2 := g.a.Row(i + 2)[g.kc0:g.kc1]
		a3 := g.a.Row(i + 3)[g.kc0:g.kc1]
		o0, o1 := g.out.Row(i), g.out.Row(i+1)
		o2, o3 := g.out.Row(i+2), g.out.Row(i+3)
		for jp := 0; jp < np; jp += asmNRF32 {
			gemm4x16f32(kc, &a0[0], &a1[0], &a2[0], &a3[0],
				&g.bp[(jp/asmNRF32)*kc*asmNRF32],
				&o0[jp], &o1[jp], &o2[jp], &o3[jp])
		}
	}
	for ; i < hi; i++ {
		arow := g.a.Row(i)[g.kc0:g.kc1]
		orow := g.out.Row(i)
		for jp := 0; jp < np; jp += asmNRF32 {
			gemm1x16f32(kc, &arow[0], &g.bp[(jp/asmNRF32)*kc*asmNRF32], &orow[jp])
		}
	}
	for i = lo; i < hi; i++ {
		gemmColEdgeRow(g.a, g.b, g.kc0, g.kc1, g.out, i, np)
	}
}

func gemmAsmRowsF64(g gemmAsmArgsF64, lo, hi int) {
	kc := g.kc1 - g.kc0
	np := g.out.Cols - g.out.Cols%asmNRF64
	i := lo
	for ; i+asmMR <= hi; i += asmMR {
		a0 := g.a.Row(i)[g.kc0:g.kc1]
		a1 := g.a.Row(i + 1)[g.kc0:g.kc1]
		a2 := g.a.Row(i + 2)[g.kc0:g.kc1]
		a3 := g.a.Row(i + 3)[g.kc0:g.kc1]
		o0, o1 := g.out.Row(i), g.out.Row(i+1)
		o2, o3 := g.out.Row(i+2), g.out.Row(i+3)
		for jp := 0; jp < np; jp += asmNRF64 {
			gemm4x8f64(kc, &a0[0], &a1[0], &a2[0], &a3[0],
				&g.bp[(jp/asmNRF64)*kc*asmNRF64],
				&o0[jp], &o1[jp], &o2[jp], &o3[jp])
		}
	}
	for ; i < hi; i++ {
		arow := g.a.Row(i)[g.kc0:g.kc1]
		orow := g.out.Row(i)
		for jp := 0; jp < np; jp += asmNRF64 {
			gemm1x8f64(kc, &arow[0], &g.bp[(jp/asmNRF64)*kc*asmNRF64], &orow[jp])
		}
	}
	for i = lo; i < hi; i++ {
		gemmColEdgeRow(g.a, g.b, g.kc0, g.kc1, g.out, i, np)
	}
}
