//go:build handsfree_blocked

package nn

// buildDefaultEngine under -tags handsfree_blocked: EngineAuto resolves to
// the cache-blocked backend unless HANDSFREE_ENGINE overrides it.
const buildDefaultEngine = EngineBlocked
