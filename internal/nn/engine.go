package nn

import (
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
)

// Engine selects the compute backend the dense kernels run on. The seam is
// deliberately small — three matmul variants plus the fused linear-layer
// forward/backward — so a backend is a handful of kernels, and everything
// above the kernels (layers, networks, agents, the service) is untouched by
// backend choice.
//
// The zero value (EngineAuto) resolves through the HANDSFREE_ENGINE
// environment variable, falling back to the build-tag default (see
// engine_default.go): EngineReference unless the binary was built with
// -tags handsfree_blocked. Existing callers that never pick an engine keep
// the reference kernels' numerics bit for bit, while CI sweeps the whole
// suite through the blocked kernels with one env var.
type Engine uint8

const (
	// EngineAuto defers to DefaultEngine (the HANDSFREE_ENGINE environment
	// variable, or the build-tag default when unset).
	EngineAuto Engine = iota
	// EngineReference is the pure-Go generic kernel set (MatMul/MatMulATB/
	// MatMulABT as shipped before the engine seam): the bitwise-deterministic
	// reference every other backend is verified against.
	EngineReference
	// EngineBlocked is the cache-blocked backend: packed B-panels, KC-deep
	// k-blocking, and register-tiled microkernels — runtime-detected AVX2+FMA
	// vector tiles (4×16 f32, 4×8 f64; see BlockedKernel) with portable 2×4
	// Go tiles as the fallback — composed with the package worker pool. It
	// reorders the per-element summation (register accumulation per k-block)
	// and the vector kernels fuse each multiply-add, so it matches the
	// reference by tolerance (f64 rel ≤1e-12, f32 rel ≤1e-4) rather than
	// bitwise — except on single-row and other tiny shapes, which fall back
	// to the reference kernel and stay bitwise identical (greedy 1×d
	// inference in particular).
	EngineBlocked
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineReference:
		return "reference"
	case EngineBlocked:
		return "blocked"
	default:
		return "auto"
	}
}

// ParseEngine parses an engine name: "reference"/"ref" and "blocked"/"block"
// (case-insensitive); "" and "auto" are EngineAuto.
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return EngineAuto, nil
	case "reference", "ref":
		return EngineReference, nil
	case "blocked", "block":
		return EngineBlocked, nil
	}
	return EngineAuto, fmt.Errorf("nn: unknown engine %q (want reference or blocked)", s)
}

// defaultEngine caches the HANDSFREE_ENGINE lookup: the env var is a
// process-wide matrix knob, not something that changes mid-run.
var defaultEngine = sync.OnceValue(func() Engine {
	e, err := ParseEngine(os.Getenv("HANDSFREE_ENGINE"))
	if err != nil || e == EngineAuto {
		return buildDefaultEngine
	}
	return e
})

// DefaultEngine returns the engine EngineAuto resolves to: the value of the
// HANDSFREE_ENGINE environment variable at first use, or the build-tag
// default (EngineReference, or EngineBlocked under -tags handsfree_blocked).
func DefaultEngine() Engine { return defaultEngine() }

// BuildDefaultEngine returns the compiled-in engine default — what
// DefaultEngine falls back to when HANDSFREE_ENGINE is unset.
func BuildDefaultEngine() Engine { return buildDefaultEngine }

// Resolve maps EngineAuto to DefaultEngine and returns concrete engines
// unchanged.
func (e Engine) Resolve() Engine {
	if e == EngineAuto {
		return DefaultEngine()
	}
	return e
}

// EngineOf is one compute backend at a fixed precision. All methods write
// into caller-provided, correctly shaped outputs (they panic on shape
// mismatch) so steady-state training allocates nothing.
//
// Numeric contract: MatMul/MatMulATB/MatMulABT accumulate each output
// element over the shared k index in ascending order within whatever
// blocking the backend applies; LinearForward is the matmul followed by the
// bias row-add; LinearBackward accumulates dW += xᵀ·dout and dB += Σrows
// dout and overwrites dx = dout·wᵀ, in that order. SoftmaxXent and AdamStep
// round every element exactly as the composed reference helpers do (see the
// method comments), so both are bitwise identical across backends. The
// reference engine's float64 instantiation is bitwise identical to the
// pre-seam layer code.
type EngineOf[T Float] interface {
	// Kind reports which Engine this backend implements.
	Kind() Engine
	// MatMul computes out = a·b (out fully overwritten).
	MatMul(a, b, out *MatOf[T])
	// MatMulATB computes out = aᵀ·b, or out += aᵀ·b when accum is true.
	MatMulATB(a, b, out *MatOf[T], accum bool)
	// MatMulABT computes out = a·bᵀ (out fully overwritten).
	MatMulABT(a, b, out *MatOf[T])
	// LinearForward computes out = x·w + bias (bias broadcast over rows).
	LinearForward(x, w *MatOf[T], bias []T, out *MatOf[T])
	// LinearBackward accumulates the fused linear-layer gradients:
	// dW += xᵀ·dout, dB += column sums of dout, dx = dout·wᵀ.
	LinearBackward(x, dout, w *MatOf[T], dW, dB []T, dx *MatOf[T])
	// SoftmaxXent computes, per batch row i, the masked softmax of the
	// logits into probs and the REINFORCE policy gradient
	// ∂(−advs[i]·log π(actions[i]) − entropyCoef·H(π))/∂logits into grad
	// (both resized to logits' shape). Every element rounds exactly as
	// MaskedSoftmaxRowsInto followed by per-row PolicyGradientInto does, so
	// all backends agree bitwise at both precisions; backends only differ
	// in how many passes they take over the row.
	SoftmaxXent(logits *MatOf[T], masks [][]bool, actions []int, advs []float64, entropyCoef float64, probs, grad *MatOf[T])
	// AdamStep applies one fused Adam update to a parameter slice: for each
	// element, g = Scale·grad[i]; m[i] = B1·m[i] + NB1·g;
	// v[i] = B2·v[i] + NB2·g·g; p[i] -= LR·(m[i]/C1)/(sqrt(v[i]/C2) + Eps),
	// with every intermediate rounded to T in exactly that order. The
	// vector backends use separate multiply and add instructions (no FMA
	// contraction) plus correctly rounded sqrt/divide, so AdamStep is
	// bitwise identical across backends at both precisions.
	AdamStep(p, grad, m, v []T, a AdamArgs[T])
}

// AdamArgs carries one Adam step's per-step constants, pre-converted to the
// parameter precision exactly as the reference update does: the conversions
// (T of β, 1−β, the bias-correction denominators, the clip scale) happen
// once per step in float64, never per element, so the constants an f32
// update sees are the rounded-once values. Field order is load-bearing: the
// assembly kernels broadcast each field by its struct offset.
type AdamArgs[T Float] struct {
	// Scale is the gradient clip multiplier (1 when clipping is off).
	Scale T
	// B1, NB1, B2, NB2 are β₁, 1−β₁, β₂, 1−β₂.
	B1, NB1, B2, NB2 T
	// C1, C2 are the bias-correction denominators 1−β₁ᵗ and 1−β₂ᵗ.
	C1, C2 T
	// LR and Eps are the learning rate and ε.
	LR, Eps T
}

// NewAdamArgs converts one step's Adam hyperparameters to precision T,
// rounding each float64 constant exactly once — the same conversions, in the
// same places, as the pre-seam update loop.
func NewAdamArgs[T Float](t int, lr, beta1, beta2, eps, clipScale float64) AdamArgs[T] {
	return AdamArgs[T]{
		Scale: T(clipScale),
		B1:    T(beta1),
		NB1:   T(1 - beta1),
		B2:    T(beta2),
		NB2:   T(1 - beta2),
		C1:    T(1 - math.Pow(beta1, float64(t))),
		C2:    T(1 - math.Pow(beta2, float64(t))),
		LR:    T(lr),
		Eps:   T(eps),
	}
}

// NewEngineOf returns the backend implementing e at precision T. Backends
// are stateless (scratch comes from internal pools), so the returned values
// are freely shareable across goroutines and allocate nothing.
func NewEngineOf[T Float](e Engine) EngineOf[T] {
	if e.Resolve() == EngineBlocked {
		return blockedEngineOf[T]{}
	}
	return refEngineOf[T]{}
}

// refEngineOf is the reference backend: the package's generic i-k-j kernels
// run through the row-parallel worker pool, exactly as the pre-seam layer
// code called them.
type refEngineOf[T Float] struct{}

// Kind reports EngineReference.
func (refEngineOf[T]) Kind() Engine { return EngineReference }

// matABArgs carries kernel operands through parallelRowsOf, so the serial
// dispatch path builds no closure and allocates nothing.
type matABArgs[T Float] struct {
	a, b, out *MatOf[T]
}

func checkMatMulShape[T Float](a, b, out *MatOf[T]) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("nn: engine matmul shape mismatch %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
}

func checkMatMulATBShape[T Float](a, b, out *MatOf[T]) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("nn: engine matmulATB shape mismatch %dx%d ᵀ· %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
}

func checkMatMulABTShape[T Float](a, b, out *MatOf[T]) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("nn: engine matmulABT shape mismatch %dx%d · %dx%d ᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
}

// MatMul computes out = a·b with the reference kernel.
func (refEngineOf[T]) MatMul(a, b, out *MatOf[T]) {
	checkMatMulShape(a, b, out)
	out.Zero()
	if serialKernel(a.Rows, a.Rows*a.Cols*b.Cols) {
		matMulRows(a, b, out, 0, a.Rows)
		return
	}
	parallelRowsOf(a.Rows, a.Rows*a.Cols*b.Cols, matABArgs[T]{a, b, out},
		func(g matABArgs[T], lo, hi int) { matMulRows(g.a, g.b, g.out, lo, hi) })
}

// MatMulATB computes out (+)= aᵀ·b with the reference kernel.
func (refEngineOf[T]) MatMulATB(a, b, out *MatOf[T], accum bool) {
	checkMatMulATBShape(a, b, out)
	if !accum {
		out.Zero()
	}
	if serialKernel(a.Cols, a.Rows*a.Cols*b.Cols) {
		matMulATBRows(a, b, out, 0, a.Cols)
		return
	}
	parallelRowsOf(a.Cols, a.Rows*a.Cols*b.Cols, matABArgs[T]{a, b, out},
		func(g matABArgs[T], lo, hi int) { matMulATBRows(g.a, g.b, g.out, lo, hi) })
}

// MatMulABT computes out = a·bᵀ with the reference kernel.
func (refEngineOf[T]) MatMulABT(a, b, out *MatOf[T]) {
	checkMatMulABTShape(a, b, out)
	if serialKernel(a.Rows, a.Rows*a.Cols*b.Rows) {
		matMulABTRows(a, b, out, 0, a.Rows)
		return
	}
	parallelRowsOf(a.Rows, a.Rows*a.Cols*b.Rows, matABArgs[T]{a, b, out},
		func(g matABArgs[T], lo, hi int) { matMulABTRows(g.a, g.b, g.out, lo, hi) })
}

// LinearForward computes out = x·w + bias — the matmul followed by the
// batched bias add, in the exact order the pre-seam Linear layer used.
func (e refEngineOf[T]) LinearForward(x, w *MatOf[T], bias []T, out *MatOf[T]) {
	e.MatMul(x, w, out)
	addBiasRows(out, bias)
}

// LinearBackward accumulates dW += xᵀ·dout and dB += Σrows dout and computes
// dx = dout·wᵀ, in the pre-seam layer's order. Starting dW from the existing
// gradient instead of a zeroed temporary is bitwise identical whenever the
// gradient was just zeroed (every training path calls ZeroGrad first):
// folding a1…an onto 0 and then adding onto g0=0 rounds exactly like folding
// a1…an onto g0=0 directly.
func (e refEngineOf[T]) LinearBackward(x, dout, w *MatOf[T], dW, dB []T, dx *MatOf[T]) {
	// The dW view comes from the matrix pool: a stack literal would escape
	// through the kernel call and allocate on every backward pass.
	dWm := getMat[T]()
	*dWm = MatOf[T]{Rows: x.Cols, Cols: dout.Cols, Data: dW}
	e.MatMulATB(x, dout, dWm, true)
	putMat(dWm)
	addColSums(dout, dB)
	e.MatMulABT(dout, w, dx)
}

// SoftmaxXent runs the composed reference helpers: the masked row softmax
// into probs, then the per-row policy gradient into grad — the exact
// pre-seam sequence of the REINFORCE update, element for element.
func (refEngineOf[T]) SoftmaxXent(logits *MatOf[T], masks [][]bool, actions []int, advs []float64, entropyCoef float64, probs, grad *MatOf[T]) {
	checkSoftmaxXentShape(logits, masks, actions, advs)
	MaskedSoftmaxRowsInto(probs, logits, masks)
	grad.Resize(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		PolicyGradientInto(grad.Row(i), probs.Row(i), masks[i], actions[i], advs[i], entropyCoef)
	}
}

// AdamStep runs the scalar update loop — the reference rounding every other
// backend must reproduce bitwise.
func (refEngineOf[T]) AdamStep(p, grad, m, v []T, a AdamArgs[T]) {
	checkAdamShape(p, grad, m, v)
	adamStepRows(p, grad, m, v, a, 0, len(p))
}

func checkSoftmaxXentShape[T Float](logits *MatOf[T], masks [][]bool, actions []int, advs []float64) {
	if len(masks) != logits.Rows || len(actions) != logits.Rows || len(advs) != logits.Rows {
		panic(fmt.Sprintf("nn: engine SoftmaxXent batch mismatch: %d rows, %d masks, %d actions, %d advantages",
			logits.Rows, len(masks), len(actions), len(advs)))
	}
}

func checkAdamShape[T Float](p, grad, m, v []T) {
	if len(grad) != len(p) || len(m) != len(p) || len(v) != len(p) {
		panic(fmt.Sprintf("nn: engine AdamStep length mismatch: %d params, %d grads, %d m, %d v",
			len(p), len(grad), len(m), len(v)))
	}
}

// adamStepRows is the scalar Adam update over elements [lo, hi): the exact
// arithmetic of the pre-seam optimizer loop, shared by the reference engine,
// the blocked engine's portable path, and the vector kernels' tails.
func adamStepRows[T Float](p, grad, m, v []T, a AdamArgs[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		g := a.Scale * grad[i]
		m[i] = a.B1*m[i] + a.NB1*g
		v[i] = a.B2*v[i] + a.NB2*g*g
		mhat := m[i] / a.C1
		vhat := v[i] / a.C2
		p[i] -= a.LR * mhat / (sqrtT(vhat) + a.Eps)
	}
}

// addBiasRows adds bias to every row of out.
func addBiasRows[T Float](out *MatOf[T], bias []T) {
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// addColSums accumulates the column sums of m into dst (the bias gradient).
func addColSums[T Float](m *MatOf[T], dst []T) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}
