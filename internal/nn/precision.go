package nn

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Float constrains the scalar element type of the tensor core. Every kernel,
// layer, loss, and optimizer update in this package is generic over these two
// precisions: float64 is the bitwise-deterministic reference used by the
// synchronous training path, float32 halves the bytes moved by every batched
// matmul (the memory-bandwidth lever on the incremental-training loop, and
// the precision Neo and Balsa train their learned optimizers in).
type Float interface {
	~float32 | ~float64
}

// Precision selects the scalar type a network stores and computes in.
//
// The zero value (PrecisionAuto) resolves through the HANDSFREE_PRECISION
// environment variable, defaulting to F64 — so existing callers that never
// set a precision keep today's float64 numerics bit for bit, while CI can
// sweep the whole test suite through the f32 kernels with one env var.
type Precision uint8

const (
	// PrecisionAuto defers to DefaultPrecision (the HANDSFREE_PRECISION
	// environment variable, or F64 when unset).
	PrecisionAuto Precision = iota
	// F64 is the float64 path: the bitwise-deterministic reference.
	F64
	// F32 is the float32 path: half the memory traffic per kernel, verified
	// against F64 by tolerance-based parity rather than bitwise equality
	// (see ARCHITECTURE.md, "Precision-generic tensor core").
	F32
)

// String names the precision.
func (p Precision) String() string {
	switch p {
	case F32:
		return "f32"
	case F64:
		return "f64"
	default:
		return "auto"
	}
}

// ParsePrecision parses a precision name: "f32"/"float32"/"32" and
// "f64"/"float64"/"64" (case-insensitive); "" and "auto" are PrecisionAuto.
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return PrecisionAuto, nil
	case "f32", "float32", "32":
		return F32, nil
	case "f64", "float64", "64":
		return F64, nil
	}
	return PrecisionAuto, fmt.Errorf("nn: unknown precision %q (want f32 or f64)", s)
}

// defaultPrecision caches the HANDSFREE_PRECISION lookup: the env var is a
// process-wide test-matrix knob, not something that changes mid-run.
var defaultPrecision = sync.OnceValue(func() Precision {
	p, err := ParsePrecision(os.Getenv("HANDSFREE_PRECISION"))
	if err != nil || p == PrecisionAuto {
		return F64
	}
	return p
})

// DefaultPrecision returns the precision PrecisionAuto resolves to: the value
// of the HANDSFREE_PRECISION environment variable at first use, or F64.
func DefaultPrecision() Precision { return defaultPrecision() }

// Resolve maps PrecisionAuto to DefaultPrecision and returns concrete
// precisions unchanged.
func (p Precision) Resolve() Precision {
	if p == PrecisionAuto {
		return DefaultPrecision()
	}
	return p
}
