//go:build amd64

package nn

// Vector gemv kernels for packed inference. Like the Adam kernels these
// deliberately avoid FMA: each output element is an ascending-k fold of
// x[k]·panel[k][j] with a separate multiply and add per step, which rounds
// exactly like the reference scalar kernel — so packed inference is bitwise
// identical to the unpacked 1×d path while moving 8 (f64) or 16 (f32)
// columns per instruction through a panel that was packed once per snapshot.

// asmGemvEnabled routes packed gemv through the vector kernels. It shares
// the GEMM gate's detection (plain AVX ymm arithmetic, no FMA, but one knob
// keeps the matrix small) and has its own test hook.
var asmGemvEnabled = cpuAVX2FMA

// setAsmGemv is a test hook mirroring setAsmGemm for the gemv kernels. It
// only affects packs built afterwards — an existing pack remembers the
// layout it was built for.
func setAsmGemv(on bool) bool {
	prev := asmGemvEnabled
	asmGemvEnabled = on && cpuAVX2FMA
	return prev
}

// Vector kernels (gemv_amd64.s): out[0:NR] = Σ_k x[k]·panel[k·NR : k·NR+NR]
// over kc steps of one packed panel, ascending k, multiply-then-add per step.
//
//go:noescape
func gemv16f32(kc int, x, panel, out *float32)

//go:noescape
func gemv8f64(kc int, x, panel, out *float64)

// gemvAsm runs the vector kernels over every packed panel and reports
// whether it did; false (nothing written) when the kernels are unavailable
// or the pack's panel width does not match the asm layout.
func gemvAsm[T Float](x, panels, out []T, nr int) bool {
	if !asmGemvEnabled || len(x) == 0 {
		return false
	}
	switch xt := any(x).(type) {
	case []float32:
		if nr != asmNRF32 {
			return false
		}
		ps := any(panels).([]float32)
		os := any(out).([]float32)
		kc := len(x)
		for jp := 0; jp < len(os); jp += asmNRF32 {
			gemv16f32(kc, &xt[0], &ps[jp*kc], &os[jp])
		}
	case []float64:
		if nr != asmNRF64 {
			return false
		}
		ps := any(panels).([]float64)
		os := any(out).([]float64)
		kc := len(x)
		for jp := 0; jp < len(os); jp += asmNRF64 {
			gemv8f64(kc, &xt[0], &ps[jp*kc], &os[jp])
		}
	default:
		return false
	}
	return true
}
