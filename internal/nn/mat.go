// Package nn implements small dense neural networks from scratch using only
// the standard library: linear layers, pointwise activations, masked softmax
// policy heads, standard losses, and SGD/Momentum/Adam optimizers. It backs
// every learned component of the paper (Marcus & Papaemmanouil, CIDR 2019):
// ReJOIN's policy network (§3), the full plan-space agents (§4), and the
// reward-prediction network of learning from demonstration (§5.1).
//
// The package exists because this reproduction may not depend on an external
// deep-learning framework. It is deliberately minimal — everything the
// hands-free optimizer's agents need and nothing more — but it is exact:
// gradients are verified against numerical differentiation in the tests.
//
// # Batching and parallelism
//
// The package is batch-first: a batch of k states is a k×d Mat, and
// Network.Forward/Backward process whole batches with per-layer cached
// activations, batched bias addition, and batched gradient accumulation.
// Row-wise helpers (SoftmaxRows, MaskedSoftmaxRows, MSEBatch, HuberBatch)
// extend the single-vector losses to batches.
//
// The three matrix kernels (MatMul, MatMulATB, MatMulABT) transparently
// split their independent output-row blocks across a shared goroutine worker
// pool once the multiply-accumulate count crosses parallelThreshold and the
// parallel dimension has at least minParallelRows rows. Because each output
// row is accumulated in exactly the order the serial kernel uses, the
// parallel kernels are bitwise identical to the serial ones — verified in
// the tests. SetWorkers(1) disables the parallel path entirely.
//
// # Precision
//
// The tensor core is generic over the Float constraint: MatOf, LinearOf,
// NetOf, the kernels, the losses, and the optimizer updates are instantiated
// at float64 (the bitwise-deterministic reference — the aliases Mat, Linear,
// Param, Layer preserve the original float64 API verbatim) and at float32,
// which halves the memory bandwidth of every batched kernel. Networks carry
// their precision; the erased Network wrapper keeps a float64 interchange
// boundary so callers above nn never go generic. The f64 path is verified
// bitwise against the pre-generic kernels; the f32 path is verified against
// f64 by tolerance-based parity (see ARCHITECTURE.md).
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// MatOf is a dense row-major matrix over either float precision. A batch of
// k vectors of dimension d is a k×d matrix. The zero value is an empty
// matrix.
type MatOf[T Float] struct {
	Rows, Cols int
	Data       []T
}

// Mat is the float64 matrix — the package's interchange type: every API
// boundary above the kernels (states, logits, gradients crossing the erased
// Network) speaks float64 regardless of the precision a network computes in.
type Mat = MatOf[float64]

// Mat32 is the float32 matrix used inside f32 networks.
type Mat32 = MatOf[float32]

// NewMatOf returns a zeroed r×c matrix of the given precision.
func NewMatOf[T Float](r, c int) *MatOf[T] {
	return &MatOf[T]{Rows: r, Cols: c, Data: make([]T, r*c)}
}

// NewMat returns a zeroed r×c float64 matrix.
func NewMat(r, c int) *Mat { return NewMatOf[float64](r, c) }

// FromVec wraps a single vector as a 1×len(v) matrix. The slice is not
// copied.
func FromVec[T Float](v []T) *MatOf[T] {
	return &MatOf[T]{Rows: 1, Cols: len(v), Data: v}
}

// ConvertMat copies m into a matrix of element type U, converting every
// element. Converting f64→f32 rounds to nearest; f32→f64 is exact.
func ConvertMat[U, T Float](m *MatOf[T]) *MatOf[U] {
	out := NewMatOf[U](m.Rows, m.Cols)
	convertMatInto(out, m)
	return out
}

// convertMatInto converts src into dst, resizing dst (the allocation-free
// form of ConvertMat used by the erased Network's precision boundary).
func convertMatInto[U, T Float](dst *MatOf[U], src *MatOf[T]) {
	dst.Resize(src.Rows, src.Cols)
	for i, v := range src.Data {
		dst.Data[i] = U(v)
	}
}

// Row returns a view of row i (no copy).
func (m *MatOf[T]) Row(i int) []T {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at row i, column j.
func (m *MatOf[T]) At(i, j int) T { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *MatOf[T]) Set(i, j int, v T) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *MatOf[T]) Clone() *MatOf[T] {
	out := NewMatOf[T](m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Resize reshapes m to r×c in place, reusing the existing allocation when it
// is large enough. The element contents after a Resize are unspecified;
// follow with Zero when zeroed data is required. This is the reuse primitive
// behind the zero-allocation training hot path: per-net scratch matrices are
// Resized to each batch's shape instead of reallocated.
func (m *MatOf[T]) Resize(r, c int) {
	n := r * c
	if cap(m.Data) < n {
		m.Data = make([]T, n)
	}
	m.Rows, m.Cols, m.Data = r, c, m.Data[:n]
}

// Zero sets every element to 0 in place.
func (m *MatOf[T]) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul returns a·b. Panics if the inner dimensions disagree; shape errors
// here are always programmer errors, never data errors. Large products are
// computed tile-parallel on the package worker pool with results bitwise
// identical to the serial kernel.
func MatMul[T Float](a, b *MatOf[T]) *MatOf[T] {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatOf[T](a.Rows, b.Cols)
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		matMulRows(a, b, out, lo, hi)
	})
	return out
}

// matMulRows computes output rows [lo, hi) of a·b.
func matMulRows[T Float](a, b, out *MatOf[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulATB returns aᵀ·b without materializing the transpose.
func MatMulATB[T Float](a, b *MatOf[T]) *MatOf[T] {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: matmulATB shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatOf[T](a.Cols, b.Cols)
	parallelRows(a.Cols, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		matMulATBRows(a, b, out, lo, hi)
	})
	return out
}

// matMulATBRows computes output rows [lo, hi) of aᵀ·b. The reduction over
// a's rows stays outermost so each output element accumulates in the same
// order as the serial kernel.
func matMulATBRows[T Float](a, b, out *MatOf[T], lo, hi int) {
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulABT returns a·bᵀ without materializing the transpose.
func MatMulABT[T Float](a, b *MatOf[T]) *MatOf[T] {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmulABT shape mismatch %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatOf[T](a.Rows, b.Rows)
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, func(lo, hi int) {
		matMulABTRows(a, b, out, lo, hi)
	})
	return out
}

// matMulABTRows computes output rows [lo, hi) of a·bᵀ.
func matMulABTRows[T Float](a, b, out *MatOf[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s T
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// Xavier fills m with Glorot-uniform values appropriate for a layer with the
// given fan-in and fan-out. The draws come from rng in float64 and are then
// rounded to m's precision, so f32 and f64 networks built from the same seed
// start from the same (rounded) weights.
func Xavier[T Float](m *MatOf[T], fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = T(rng.Float64()*2*limit - limit)
	}
}
