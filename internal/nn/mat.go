// Package nn implements small dense neural networks from scratch using only
// the standard library: linear layers, pointwise activations, masked softmax
// policy heads, standard losses, and SGD/Momentum/Adam optimizers. It backs
// every learned component of the paper (Marcus & Papaemmanouil, CIDR 2019):
// ReJOIN's policy network (§3), the full plan-space agents (§4), and the
// reward-prediction network of learning from demonstration (§5.1).
//
// The package exists because this reproduction may not depend on an external
// deep-learning framework. It is deliberately minimal — everything the
// hands-free optimizer's agents need and nothing more — but it is exact:
// gradients are verified against numerical differentiation in the tests.
//
// # Batching and parallelism
//
// The package is batch-first: a batch of k states is a k×d Mat, and
// Network.Forward/Backward process whole batches with per-layer cached
// activations, batched bias addition, and batched gradient accumulation.
// Row-wise helpers (SoftmaxRows, MaskedSoftmaxRows, MSEBatch, HuberBatch)
// extend the single-vector losses to batches.
//
// The three matrix kernels (MatMul, MatMulATB, MatMulABT) transparently
// split their independent output-row blocks across a shared goroutine worker
// pool once the multiply-accumulate count crosses parallelThreshold and the
// parallel dimension has at least minParallelRows rows. Because each output
// row is accumulated in exactly the order the serial kernel uses, the
// parallel kernels are bitwise identical to the serial ones — verified in
// the tests. SetWorkers(1) disables the parallel path entirely.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix. A batch of k vectors of dimension d is a
// k×d Mat. The zero value is an empty matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zeroed r×c matrix.
func NewMat(r, c int) *Mat {
	return &Mat{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromVec wraps a single vector as a 1×len(v) matrix. The slice is not copied.
func FromVec(v []float64) *Mat {
	return &Mat{Rows: 1, Cols: len(v), Data: v}
}

// Row returns a view of row i (no copy).
func (m *Mat) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0 in place.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul returns a·b. Panics if the inner dimensions disagree; shape errors
// here are always programmer errors, never data errors. Large products are
// computed tile-parallel on the package worker pool with results bitwise
// identical to the serial kernel.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		matMulRows(a, b, out, lo, hi)
	})
	return out
}

// matMulRows computes output rows [lo, hi) of a·b.
func matMulRows(a, b, out *Mat, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulATB returns aᵀ·b without materializing the transpose.
func MatMulATB(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: matmulATB shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Cols, b.Cols)
	parallelRows(a.Cols, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		matMulATBRows(a, b, out, lo, hi)
	})
	return out
}

// matMulATBRows computes output rows [lo, hi) of aᵀ·b. The reduction over
// a's rows stays outermost so each output element accumulates in the same
// order as the serial kernel.
func matMulATBRows(a, b, out *Mat, lo, hi int) {
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulABT returns a·bᵀ without materializing the transpose.
func MatMulABT(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmulABT shape mismatch %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Rows)
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, func(lo, hi int) {
		matMulABTRows(a, b, out, lo, hi)
	})
	return out
}

// matMulABTRows computes output rows [lo, hi) of a·bᵀ.
func matMulABTRows(a, b, out *Mat, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// Xavier fills m with Glorot-uniform values appropriate for a layer with the
// given fan-in and fan-out.
func Xavier(m *Mat, fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2*limit - limit
	}
}
