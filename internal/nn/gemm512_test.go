package nn

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestAVX512BitwiseIdentity pins the zmm kernels' numeric contract: with the
// knob on, every blocked a·b result is bit-identical to the AVX2 path —
// panel cascade (zmm → ymm mid → scalar edge) included — so enabling
// HANDSFREE_AVX512 can never change a policy's outputs. Skips cleanly on
// hardware without AVX512F.
func TestAVX512BitwiseIdentity(t *testing.T) {
	if !cpuAVX512F {
		t.Skip("no AVX512F on this CPU")
	}
	t.Run("f64", func(t *testing.T) { testAVX512Bitwise[float64](t) })
	t.Run("f32", func(t *testing.T) { testAVX512Bitwise[float32](t) })
}

func testAVX512Bitwise[T Float](t *testing.T) {
	prevGemm := setAsmGemm(true)
	defer setAsmGemm(prevGemm)
	e := NewEngineOf[T](EngineBlocked)
	// Shapes chosen to hit every panel-cascade case: multiple zmm panels,
	// a zmm panel plus the ymm mid panel, the mid panel alone, scalar column
	// edges of both parities, row remainders, and k crossing a KC boundary.
	shapes := []struct{ m, k, n int }{
		{4, 8, 32}, {4, 8, 33}, {4, 8, 48}, {5, 9, 47},
		{7, 300, 96}, {33, 64, 80}, {64, 64, 64}, {3, 5, 100},
		{17, 257, 40}, {1, 64, 72},
	}
	for _, sh := range shapes {
		t.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(sh.m*1000 + sh.n)))
			a := randMatOf[T](sh.m, sh.k, rng)
			b := randMatOf[T](sh.k, sh.n, rng)
			var want, got MatOf[T]
			want.Resize(sh.m, sh.n)
			got.Resize(sh.m, sh.n)
			prev := setAsmGemm512(false)
			e.MatMul(a, b, &want)
			setAsmGemm512(true)
			e.MatMul(a, b, &got)
			setAsmGemm512(prev)
			checkBitwise(t, "MatMul", got.Data, want.Data)
		})
	}
}
