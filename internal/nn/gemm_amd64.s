//go:build amd64

#include "textflag.h"

// AVX2+FMA microkernels for the blocked engine (see gemm_amd64.go for the
// contract). Register plan, shared by all kernels:
//
//	Y0–Y7   accumulators (row r uses Y(2r) for columns 0–7·lanes, Y(2r+1)
//	        for the second ymm of columns)
//	Y8, Y9  the current k step's packed B panel row
//	Y10,Y11 broadcast A values
//	DX      kc (loop bound)   BX  k index
//	R8–R11  A row pointers    SI  packed panel pointer, advanced per k
//	DI      output row pointer during the epilogue
//
// Each k step issues one FMA per live accumulator, so every output element
// folds its products in ascending k order — the ordering half of the engine
// numeric contract — and the 1-row kernels round identically to the 4-row
// ones.

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemm4x16f32(kc int, a0, a1, a2, a3, bp, o0, o1, o2, o3 *float32)
TEXT ·gemm4x16f32(SB), NOSPLIT, $0-80
	MOVQ   kc+0(FP), DX
	MOVQ   a0+8(FP), R8
	MOVQ   a1+16(FP), R9
	MOVQ   a2+24(FP), R10
	MOVQ   a3+32(FP), R11
	MOVQ   bp+40(FP), SI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	XORQ   BX, BX
	CMPQ   BX, DX
	JGE    done4x16

loop4x16:
	VMOVUPS      (SI), Y8
	VMOVUPS      32(SI), Y9
	VBROADCASTSS (R8)(BX*4), Y10
	VBROADCASTSS (R9)(BX*4), Y11
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS (R10)(BX*4), Y10
	VBROADCASTSS (R11)(BX*4), Y11
	VFMADD231PS  Y8, Y10, Y4
	VFMADD231PS  Y9, Y10, Y5
	VFMADD231PS  Y8, Y11, Y6
	VFMADD231PS  Y9, Y11, Y7
	ADDQ         $64, SI
	INCQ         BX
	CMPQ         BX, DX
	JLT          loop4x16

done4x16:
	MOVQ       o0+48(FP), DI
	VADDPS     (DI), Y0, Y0
	VMOVUPS    Y0, (DI)
	VADDPS     32(DI), Y1, Y1
	VMOVUPS    Y1, 32(DI)
	MOVQ       o1+56(FP), DI
	VADDPS     (DI), Y2, Y2
	VMOVUPS    Y2, (DI)
	VADDPS     32(DI), Y3, Y3
	VMOVUPS    Y3, 32(DI)
	MOVQ       o2+64(FP), DI
	VADDPS     (DI), Y4, Y4
	VMOVUPS    Y4, (DI)
	VADDPS     32(DI), Y5, Y5
	VMOVUPS    Y5, 32(DI)
	MOVQ       o3+72(FP), DI
	VADDPS     (DI), Y6, Y6
	VMOVUPS    Y6, (DI)
	VADDPS     32(DI), Y7, Y7
	VMOVUPS    Y7, 32(DI)
	VZEROUPPER
	RET

// func gemm1x16f32(kc int, a0, bp, o0 *float32)
TEXT ·gemm1x16f32(SB), NOSPLIT, $0-32
	MOVQ   kc+0(FP), DX
	MOVQ   a0+8(FP), R8
	MOVQ   bp+16(FP), SI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	XORQ   BX, BX
	CMPQ   BX, DX
	JGE    done1x16

loop1x16:
	VMOVUPS      (SI), Y8
	VMOVUPS      32(SI), Y9
	VBROADCASTSS (R8)(BX*4), Y10
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	ADDQ         $64, SI
	INCQ         BX
	CMPQ         BX, DX
	JLT          loop1x16

done1x16:
	MOVQ       o0+24(FP), DI
	VADDPS     (DI), Y0, Y0
	VMOVUPS    Y0, (DI)
	VADDPS     32(DI), Y1, Y1
	VMOVUPS    Y1, 32(DI)
	VZEROUPPER
	RET

// func gemm4x8f64(kc int, a0, a1, a2, a3, bp, o0, o1, o2, o3 *float64)
TEXT ·gemm4x8f64(SB), NOSPLIT, $0-80
	MOVQ   kc+0(FP), DX
	MOVQ   a0+8(FP), R8
	MOVQ   a1+16(FP), R9
	MOVQ   a2+24(FP), R10
	MOVQ   a3+32(FP), R11
	MOVQ   bp+40(FP), SI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	XORQ   BX, BX
	CMPQ   BX, DX
	JGE    done4x8

loop4x8:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (R8)(BX*8), Y10
	VBROADCASTSD (R9)(BX*8), Y11
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD (R10)(BX*8), Y10
	VBROADCASTSD (R11)(BX*8), Y11
	VFMADD231PD  Y8, Y10, Y4
	VFMADD231PD  Y9, Y10, Y5
	VFMADD231PD  Y8, Y11, Y6
	VFMADD231PD  Y9, Y11, Y7
	ADDQ         $64, SI
	INCQ         BX
	CMPQ         BX, DX
	JLT          loop4x8

done4x8:
	MOVQ       o0+48(FP), DI
	VADDPD     (DI), Y0, Y0
	VMOVUPD    Y0, (DI)
	VADDPD     32(DI), Y1, Y1
	VMOVUPD    Y1, 32(DI)
	MOVQ       o1+56(FP), DI
	VADDPD     (DI), Y2, Y2
	VMOVUPD    Y2, (DI)
	VADDPD     32(DI), Y3, Y3
	VMOVUPD    Y3, 32(DI)
	MOVQ       o2+64(FP), DI
	VADDPD     (DI), Y4, Y4
	VMOVUPD    Y4, (DI)
	VADDPD     32(DI), Y5, Y5
	VMOVUPD    Y5, 32(DI)
	MOVQ       o3+72(FP), DI
	VADDPD     (DI), Y6, Y6
	VMOVUPD    Y6, (DI)
	VADDPD     32(DI), Y7, Y7
	VMOVUPD    Y7, 32(DI)
	VZEROUPPER
	RET

// func gemm1x8f64(kc int, a0, bp, o0 *float64)
TEXT ·gemm1x8f64(SB), NOSPLIT, $0-32
	MOVQ   kc+0(FP), DX
	MOVQ   a0+8(FP), R8
	MOVQ   bp+16(FP), SI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	XORQ   BX, BX
	CMPQ   BX, DX
	JGE    done1x8

loop1x8:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (R8)(BX*8), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	ADDQ         $64, SI
	INCQ         BX
	CMPQ         BX, DX
	JLT          loop1x8

done1x8:
	MOVQ       o0+24(FP), DI
	VADDPD     (DI), Y0, Y0
	VMOVUPD    Y0, (DI)
	VADDPD     32(DI), Y1, Y1
	VMOVUPD    Y1, 32(DI)
	VZEROUPPER
	RET
