package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMatMulShapes(t *testing.T) {
	a := NewMat(2, 3)
	b := NewMat(3, 4)
	for i := range a.Data {
		a.Data[i] = float64(i + 1)
	}
	for i := range b.Data {
		b.Data[i] = float64(i + 1)
	}
	c := MatMul(a, b)
	if c.Rows != 2 || c.Cols != 4 {
		t.Fatalf("got %dx%d, want 2x4", c.Rows, c.Cols)
	}
	// Row 0 of a is [1 2 3]; col 0 of b is [1 5 9] → 1+10+27 = 38.
	if c.At(0, 0) != 38 {
		t.Errorf("c[0,0] = %v, want 38", c.At(0, 0))
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMat(4, 3)
	b := NewMat(4, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	// aᵀ·b via explicit transpose.
	at := NewMat(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	got := MatMulATB(a, b)
	for i := range want.Data {
		if !almostEqual(want.Data[i], got.Data[i], 1e-12) {
			t.Fatalf("ATB mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	// a·bᵀ where now shapes must agree on Cols.
	c := NewMat(6, 3)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	ct := NewMat(3, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	want2 := MatMul(a, ct)
	got2 := MatMulABT(a, c)
	for i := range want2.Data {
		if !almostEqual(want2.Data[i], got2.Data[i], 1e-12) {
			t.Fatalf("ABT mismatch at %d: %v vs %v", i, got2.Data[i], want2.Data[i])
		}
	}
}

func TestMatMulPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMat(2, 3), NewMat(4, 2))
}

// TestGradientCheckMSE verifies analytic backprop through an MLP against
// numerical differentiation of the MSE loss.
func TestGradientCheckMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewMLP(rng, 5, 8, 4, 3)
	x := NewMat(2, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	target := []float64{0.3, -0.2, 0.9, -1.1, 0.0, 0.5}

	lossAt := func() float64 {
		out := net.Forward(x)
		l, _ := MSE(out.Data, target)
		return l
	}

	// Analytic gradients.
	net.ZeroGrad()
	out := net.Forward(x)
	_, g := MSE(out.Data, target)
	net.Backward(&Mat{Rows: out.Rows, Cols: out.Cols, Data: g})

	const eps = 1e-5
	checked := 0
	for _, p := range net.Params() {
		for i := 0; i < len(p.Value); i += 7 { // spot-check every 7th weight
			orig := p.Value[i]
			p.Value[i] = orig + eps
			lp := lossAt()
			p.Value[i] = orig - eps
			lm := lossAt()
			p.Value[i] = orig
			num := (lp - lm) / (2 * eps)
			if !almostEqual(num, p.Grad[i], 1e-4) {
				t.Fatalf("param %s[%d]: numerical %v vs analytic %v", p.Name, i, num, p.Grad[i])
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d gradients checked", checked)
	}
}

// TestGradientCheckPolicy verifies the policy-gradient logits gradient
// (including the entropy bonus) against numerical differentiation.
func TestGradientCheckPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewMLP(rng, 4, 6, 5)
	x := NewMat(1, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	mask := []bool{true, false, true, true, false}
	action := 2
	adv := 1.7
	entCoef := 0.05

	lossAt := func() float64 {
		logits := net.Forward(x).Data
		probs := MaskedSoftmax(logits, mask)
		return -adv*math.Log(probs[action]) - entCoef*Entropy(probs)
	}

	net.ZeroGrad()
	logits := net.Forward(x)
	probs := MaskedSoftmax(logits.Data, mask)
	g := PolicyGradient(probs, mask, action, adv, entCoef)
	net.Backward(&Mat{Rows: 1, Cols: len(g), Data: g})

	const eps = 1e-5
	for _, p := range net.Params() {
		for i := 0; i < len(p.Value); i += 5 {
			orig := p.Value[i]
			p.Value[i] = orig + eps
			lp := lossAt()
			p.Value[i] = orig - eps
			lm := lossAt()
			p.Value[i] = orig
			num := (lp - lm) / (2 * eps)
			if !almostEqual(num, p.Grad[i], 1e-3) {
				t.Fatalf("param %s[%d]: numerical %v vs analytic %v", p.Name, i, num, p.Grad[i])
			}
		}
	}
}

func TestGradientCheckHuber(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewMLP(rng, 3, 6, 2)
	x := NewMat(1, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	target := []float64{5.0, -0.1} // one far (linear region), one near (quadratic)

	lossAt := func() float64 {
		out := net.Forward(x)
		l, _ := HuberLoss(out.Data, target)
		return l
	}
	net.ZeroGrad()
	out := net.Forward(x)
	_, g := HuberLoss(out.Data, target)
	net.Backward(&Mat{Rows: 1, Cols: len(g), Data: g})

	const eps = 1e-6
	for _, p := range net.Params() {
		for i := 0; i < len(p.Value); i += 3 {
			orig := p.Value[i]
			p.Value[i] = orig + eps
			lp := lossAt()
			p.Value[i] = orig - eps
			lm := lossAt()
			p.Value[i] = orig
			num := (lp - lm) / (2 * eps)
			if !almostEqual(num, p.Grad[i], 1e-3) {
				t.Fatalf("param %s[%d]: numerical %v vs analytic %v", p.Name, i, num, p.Grad[i])
			}
		}
	}
}

// Property: softmax output is a probability distribution for any input.
func TestSoftmaxIsDistribution(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, len(raw))
		for i, v := range raw {
			// Clamp into a sane range; softmax of ±Inf/NaN is undefined.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			logits[i] = math.Mod(v, 50)
		}
		p := Softmax(logits)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: masked softmax puts zero mass on masked entries and the rest sums to 1.
func TestMaskedSoftmaxRespectsMask(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		logits := make([]float64, n)
		mask := make([]bool, n)
		anyValid := false
		for i := range logits {
			logits[i] = rng.NormFloat64() * 10
			mask[i] = rng.Intn(2) == 0
			anyValid = anyValid || mask[i]
		}
		p := MaskedSoftmax(logits, mask)
		var sum float64
		for i, v := range p {
			if !mask[i] && v != 0 {
				t.Fatalf("masked entry %d has probability %v", i, v)
			}
			sum += v
		}
		if anyValid && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("sum = %v, want 1", sum)
		}
		if !anyValid && sum != 0 {
			t.Fatalf("all-masked sum = %v, want 0", sum)
		}
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewMLP(rng, 2, 16, 1)
	opt := NewAdam(0.01)
	// Learn y = x0 − x1 on random data.
	xs := NewMat(32, 2)
	ys := make([]float64, 32)
	for i := 0; i < 32; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		xs.Set(i, 0, a)
		xs.Set(i, 1, b)
		ys[i] = a - b
	}
	var first, last float64
	for epoch := 0; epoch < 300; epoch++ {
		net.ZeroGrad()
		out := net.Forward(xs)
		loss, g := MSE(out.Data, ys)
		if epoch == 0 {
			first = loss
		}
		last = loss
		net.Backward(&Mat{Rows: 32, Cols: 1, Data: g})
		opt.Step(net.Params())
	}
	if last > first/20 {
		t.Fatalf("Adam failed to learn: first=%v last=%v", first, last)
	}
}

func TestSGDAndMomentumReduceLoss(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Optimizer
	}{
		{"sgd", &SGD{LR: 0.05}},
		{"momentum", &Momentum{LR: 0.01, Mu: 0.9}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			net := NewMLP(rng, 1, 8, 1)
			xs := NewMat(16, 1)
			ys := make([]float64, 16)
			for i := 0; i < 16; i++ {
				x := rng.Float64()*2 - 1
				xs.Set(i, 0, x)
				ys[i] = 3 * x
			}
			var first, last float64
			for epoch := 0; epoch < 400; epoch++ {
				net.ZeroGrad()
				out := net.Forward(xs)
				loss, g := MSE(out.Data, ys)
				if epoch == 0 {
					first = loss
				}
				last = loss
				net.Backward(&Mat{Rows: 16, Cols: 1, Data: g})
				tc.opt.Step(net.Params())
			}
			if last > first/10 {
				t.Fatalf("%s failed to learn: first=%v last=%v", tc.name, first, last)
			}
		})
	}
}

func TestGradientClipping(t *testing.T) {
	p := &Param{Value: []float64{0}, Grad: []float64{1000}}
	opt := &SGD{LR: 1, Clip: 1}
	opt.Step([]*Param{p})
	if math.Abs(p.Value[0]) > 1.0001 {
		t.Fatalf("clipped step moved by %v, want ≤ 1", -p.Value[0])
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := NewMLP(rng, 6, 10, 4)
	x := NewMat(1, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := net.Forward(x).Clone()

	data, err := net.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Network
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	got := back.Forward(x)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("output %d differs after round trip: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewMLP(rng, 3, 4, 2)
	cl := net.Clone()
	net.Params()[0].Value[0] += 100
	if cl.Params()[0].Value[0] == net.Params()[0].Value[0] {
		t.Fatal("clone shares parameter storage with original")
	}
}

func TestResizeOutputPreservesPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := NewMLP(rng, 4, 8, 3)
	x := NewMat(1, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	before := net.Forward(x).Clone()
	net.ResizeOutput(5, rng)
	after := net.Forward(x)
	if after.Cols != 5 {
		t.Fatalf("output width %d, want 5", after.Cols)
	}
	for i := 0; i < 3; i++ {
		if !almostEqual(before.Data[i], after.Data[i], 1e-12) {
			t.Fatalf("output %d changed after resize: %v vs %v", i, before.Data[i], after.Data[i])
		}
	}
	// Shrinking also preserves the kept prefix.
	net.ResizeOutput(2, rng)
	small := net.Forward(x)
	for i := 0; i < 2; i++ {
		if !almostEqual(before.Data[i], small.Data[i], 1e-12) {
			t.Fatalf("output %d changed after shrink: %v vs %v", i, small.Data[i], before.Data[i])
		}
	}
}

func TestInOutDims(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewMLP(rng, 7, 5, 3)
	if net.InDim() != 7 || net.OutDim() != 3 {
		t.Fatalf("got in=%d out=%d, want 7, 3", net.InDim(), net.OutDim())
	}
}

func TestEntropyBounds(t *testing.T) {
	// Uniform distribution maximizes entropy: H = log n.
	n := 8
	uni := make([]float64, n)
	for i := range uni {
		uni[i] = 1.0 / float64(n)
	}
	if h := Entropy(uni); !almostEqual(h, math.Log(float64(n)), 1e-9) {
		t.Fatalf("uniform entropy %v, want %v", h, math.Log(float64(n)))
	}
	// Deterministic distribution has zero entropy.
	det := make([]float64, n)
	det[3] = 1
	if h := Entropy(det); h != 0 {
		t.Fatalf("deterministic entropy %v, want 0", h)
	}
}
