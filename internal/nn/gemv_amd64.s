//go:build amd64

#include "textflag.h"

// Packed-panel gemv kernels (see gemv_amd64.go for the bitwise contract).
// Register plan:
//
//	Y0, Y1  accumulators (columns 0–7·lanes and the second ymm of columns)
//	Y8, Y9  the current k step's packed panel row
//	Y10     broadcast x value      Y2, Y3  multiply temporaries
//	DX      kc (loop bound)        BX      k index
//	R8      x pointer              SI      panel pointer, advanced per k
//	DI      output pointer during the epilogue
//
// Multiply and add are separate instructions — each product rounds before it
// is folded, exactly as the scalar reference kernel rounds.

// func gemv16f32(kc int, x, panel, out *float32)
TEXT ·gemv16f32(SB), NOSPLIT, $0-32
	MOVQ   kc+0(FP), DX
	MOVQ   x+8(FP), R8
	MOVQ   panel+16(FP), SI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	XORQ   BX, BX
	CMPQ   BX, DX
	JGE    donev16

loopv16:
	VMOVUPS      (SI), Y8
	VMOVUPS      32(SI), Y9
	VBROADCASTSS (R8)(BX*4), Y10
	VMULPS       Y8, Y10, Y2
	VADDPS       Y2, Y0, Y0
	VMULPS       Y9, Y10, Y3
	VADDPS       Y3, Y1, Y1
	ADDQ         $64, SI
	INCQ         BX
	CMPQ         BX, DX
	JLT          loopv16

donev16:
	MOVQ       out+24(FP), DI
	VMOVUPS    Y0, (DI)
	VMOVUPS    Y1, 32(DI)
	VZEROUPPER
	RET

// func gemv8f64(kc int, x, panel, out *float64)
TEXT ·gemv8f64(SB), NOSPLIT, $0-32
	MOVQ   kc+0(FP), DX
	MOVQ   x+8(FP), R8
	MOVQ   panel+16(FP), SI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	XORQ   BX, BX
	CMPQ   BX, DX
	JGE    donev8

loopv8:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (R8)(BX*8), Y10
	VMULPD       Y8, Y10, Y2
	VADDPD       Y2, Y0, Y0
	VMULPD       Y9, Y10, Y3
	VADDPD       Y3, Y1, Y1
	ADDQ         $64, SI
	INCQ         BX
	CMPQ         BX, DX
	JLT          loopv8

donev8:
	MOVQ       out+24(FP), DI
	VMOVUPD    Y0, (DI)
	VMOVUPD    Y1, 32(DI)
	VZEROUPPER
	RET
