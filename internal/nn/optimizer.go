package nn

import "math"

// Optimizer updates parameters in place from their accumulated gradients.
// Step is the historical float64-parameter entry point; StepNet dispatches on
// a network's precision, running the entire update — moments, clipping scale
// application, and the weight write — in the network's own scalar type, so
// an f32 network's optimizer state also stays f32.
type Optimizer interface {
	Step(params []*Param)
	StepNet(net *Network)
}

// sqrtT computes a square root in the parameter precision (the float64
// instantiation is exactly math.Sqrt).
func sqrtT[T Float](x T) T { return T(math.Sqrt(float64(x))) }

// SGD is plain stochastic gradient descent with optional gradient clipping.
type SGD struct {
	LR   float64
	Clip float64 // max L2 norm of the full gradient; 0 disables clipping
}

// Step applies one SGD update to float64 parameters.
func (o *SGD) Step(params []*Param) { sgdStepT(params, o.LR, o.Clip) }

// StepNet applies one SGD update in the network's precision.
func (o *SGD) StepNet(net *Network) {
	if net.Precision() == F32 {
		sgdStepT(net.F32().Params(), o.LR, o.Clip)
		return
	}
	sgdStepT(net.F64().Params(), o.LR, o.Clip)
}

func sgdStepT[T Float](params []*ParamOf[T], lr, clip float64) {
	k := T(lr * clipScaleT(params, clip))
	for _, p := range params {
		for i := range p.Value {
			p.Value[i] -= k * p.Grad[i]
		}
	}
}

// Momentum is SGD with classical momentum.
type Momentum struct {
	LR, Mu float64
	Clip   float64

	vel   map[*Param][]float64
	vel32 map[*ParamOf[float32]][]float32
}

// Step applies one momentum update to float64 parameters.
func (o *Momentum) Step(params []*Param) {
	if o.vel == nil {
		o.vel = make(map[*Param][]float64)
	}
	momentumStepT(o.vel, params, o.LR, o.Mu, o.Clip)
}

// StepNet applies one momentum update in the network's precision.
func (o *Momentum) StepNet(net *Network) {
	if net.Precision() == F32 {
		if o.vel32 == nil {
			o.vel32 = make(map[*ParamOf[float32]][]float32)
		}
		momentumStepT(o.vel32, net.F32().Params(), o.LR, o.Mu, o.Clip)
		return
	}
	o.Step(net.F64().Params())
}

func momentumStepT[T Float](vel map[*ParamOf[T]][]T, params []*ParamOf[T], lr, mu, clip float64) {
	k := T(lr * clipScaleT(params, clip))
	tmu := T(mu)
	for _, p := range params {
		v := vel[p]
		if v == nil {
			v = make([]T, len(p.Value))
			vel[p] = v
		}
		for i := range p.Value {
			v[i] = tmu*v[i] - k*p.Grad[i]
			p.Value[i] += v[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba). The zero value is not
// usable; construct with NewAdam.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	Clip                  float64

	t   int
	m   map[*Param][]float64
	v   map[*Param][]float64
	m32 map[*ParamOf[float32]][]float32
	v32 map[*ParamOf[float32]][]float32
}

// NewAdam returns an Adam optimizer with the conventional defaults
// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*Param][]float64),
		v:     make(map[*Param][]float64),
	}
}

// Step applies one Adam update with bias correction to float64 parameters.
func (o *Adam) Step(params []*Param) {
	o.t++
	adamStepT(o.m, o.v, params, o.t, o.LR, o.Beta1, o.Beta2, o.Eps, o.Clip)
}

// StepNet applies one Adam update in the network's precision, routed through
// the network's compute engine: the constants are converted once per step
// (NewAdamArgs — the same roundings the scalar loop performs) and each
// parameter takes one fused EngineOf.AdamStep pass over its weights,
// gradients, and both moment buffers. On the reference engine this is
// bitwise identical to the historical Step loop; the blocked engine's vector
// kernels round identically by construction (see AdamArgs), so engine choice
// never changes the trained weights. The moment buffers live in the same
// precision as the weights, so the f32 path moves half the optimizer-state
// bytes per step as well.
func (o *Adam) StepNet(net *Network) {
	o.t++
	if net.Precision() == F32 {
		if o.m32 == nil {
			o.m32 = make(map[*ParamOf[float32]][]float32)
			o.v32 = make(map[*ParamOf[float32]][]float32)
		}
		core := net.F32()
		adamStepEngT(NewEngineOf[float32](core.Engine()), o.m32, o.v32, core.Params(),
			o.t, o.LR, o.Beta1, o.Beta2, o.Eps, o.Clip)
		return
	}
	core := net.F64()
	adamStepEngT(NewEngineOf[float64](core.Engine()), o.m, o.v, core.Params(),
		o.t, o.LR, o.Beta1, o.Beta2, o.Eps, o.Clip)
}

// adamStepEngT is the engine-routed Adam update: one clip-scale reduction,
// one constants conversion, then one fused kernel pass per parameter tensor.
func adamStepEngT[T Float](e EngineOf[T], m, v map[*ParamOf[T]][]T, params []*ParamOf[T], t int, lr, beta1, beta2, eps, clip float64) {
	a := NewAdamArgs[T](t, lr, beta1, beta2, eps, clipScaleT(params, clip))
	for _, p := range params {
		mm := m[p]
		vv := v[p]
		if mm == nil {
			mm = make([]T, len(p.Value))
			vv = make([]T, len(p.Value))
			m[p] = mm
			v[p] = vv
		}
		e.AdamStep(p.Value, p.Grad, mm, vv, a)
	}
}

func adamStepT[T Float](m, v map[*ParamOf[T]][]T, params []*ParamOf[T], t int, lr, beta1, beta2, eps, clip float64) {
	scale := T(clipScaleT(params, clip))
	c1 := T(1 - math.Pow(beta1, float64(t)))
	c2 := T(1 - math.Pow(beta2, float64(t)))
	b1, nb1 := T(beta1), T(1-beta1)
	b2, nb2 := T(beta2), T(1-beta2)
	tlr, teps := T(lr), T(eps)
	for _, p := range params {
		mm := m[p]
		vv := v[p]
		if mm == nil {
			mm = make([]T, len(p.Value))
			vv = make([]T, len(p.Value))
			m[p] = mm
			v[p] = vv
		}
		for i := range p.Value {
			g := scale * p.Grad[i]
			mm[i] = b1*mm[i] + nb1*g
			vv[i] = b2*vv[i] + nb2*g*g
			mhat := mm[i] / c1
			vhat := vv[i] / c2
			p.Value[i] -= tlr * mhat / (sqrtT(vhat) + teps)
		}
	}
}

// clipScaleT returns the multiplier that caps the global gradient L2 norm at
// clip (1 if clip is 0 or the norm is already within bounds). The norm is
// accumulated in float64 at every precision: it is a scalar reduction, so
// the extra accuracy is free and keeps the clipping decision stable.
func clipScaleT[T Float](params []*ParamOf[T], clip float64) float64 {
	if clip <= 0 {
		return 1
	}
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad {
			gf := float64(g)
			sq += gf * gf
		}
	}
	norm := math.Sqrt(sq)
	if norm <= clip || norm == 0 {
		return 1
	}
	return clip / norm
}
