package nn

import "math"

// Optimizer updates parameters in place from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional gradient clipping.
type SGD struct {
	LR   float64
	Clip float64 // max L2 norm of the full gradient; 0 disables clipping
}

// Step applies one SGD update.
func (o *SGD) Step(params []*Param) {
	scale := clipScale(params, o.Clip)
	for _, p := range params {
		for i := range p.Value {
			p.Value[i] -= o.LR * scale * p.Grad[i]
		}
	}
}

// Momentum is SGD with classical momentum.
type Momentum struct {
	LR, Mu float64
	Clip   float64

	vel map[*Param][]float64
}

// Step applies one momentum update.
func (o *Momentum) Step(params []*Param) {
	if o.vel == nil {
		o.vel = make(map[*Param][]float64)
	}
	scale := clipScale(params, o.Clip)
	for _, p := range params {
		v := o.vel[p]
		if v == nil {
			v = make([]float64, len(p.Value))
			o.vel[p] = v
		}
		for i := range p.Value {
			v[i] = o.Mu*v[i] - o.LR*scale*p.Grad[i]
			p.Value[i] += v[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba). The zero value is not
// usable; construct with NewAdam.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	Clip                  float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the conventional defaults
// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*Param][]float64),
		v:     make(map[*Param][]float64),
	}
}

// Step applies one Adam update with bias correction.
func (o *Adam) Step(params []*Param) {
	o.t++
	scale := clipScale(params, o.Clip)
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = make([]float64, len(p.Value))
			v = make([]float64, len(p.Value))
			o.m[p] = m
			o.v[p] = v
		}
		for i := range p.Value {
			g := scale * p.Grad[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mhat := m[i] / c1
			vhat := v[i] / c2
			p.Value[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
}

// clipScale returns the multiplier that caps the global gradient L2 norm at
// clip (1 if clip is 0 or the norm is already within bounds).
func clipScale(params []*Param, clip float64) float64 {
	if clip <= 0 {
		return 1
	}
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= clip || norm == 0 {
		return 1
	}
	return clip / norm
}
