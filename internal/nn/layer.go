package nn

import (
	"math"
	"math/rand"
)

// ParamOf is a learnable parameter tensor with its accumulated gradient.
// Optimizers update Value in place from Grad.
type ParamOf[T Float] struct {
	Name  string
	Value []T
	Grad  []T
}

// Param is the float64 parameter (the reference precision's API).
type Param = ParamOf[float64]

// ZeroGrad clears the accumulated gradient.
func (p *ParamOf[T]) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// LayerOf is one differentiable stage of a network at a fixed precision.
// Forward consumes a batch and must cache whatever it needs for the matching
// Backward call; Backward consumes the gradient of the loss with respect to
// its output and returns the gradient with respect to its input, accumulating
// parameter gradients. Infer must compute exactly what Forward computes while
// writing no layer state, so concurrent Infer calls on a shared layer are
// safe as long as the parameters are not mutated.
//
// Buffer ownership: Forward and Backward return per-layer scratch matrices
// that are overwritten by the layer's next Forward/Backward call — callers
// that retain a result across calls must Clone it. Infer allocates a fresh
// output every call (the concurrency contract above requires it).
//
// The unexported methods bind a layer to a compute engine and to the pooled
// zero-allocation inference path; layer implementations live in this
// package.
type LayerOf[T Float] interface {
	Forward(x *MatOf[T]) *MatOf[T]
	Infer(x *MatOf[T]) *MatOf[T]
	Backward(dout *MatOf[T]) *MatOf[T]
	Params() []*ParamOf[T]
	// setEngine binds the compute backend used by the dense kernels.
	setEngine(e EngineOf[T])
	// inferTo computes exactly what Infer computes into out (resized by the
	// layer), writing no layer state. out must not alias x.
	inferTo(x, out *MatOf[T])
}

// Layer is the float64 layer interface.
type Layer = LayerOf[float64]

// LinearOf is a fully connected layer: y = x·W + b.
type LinearOf[T Float] struct {
	In, Out int
	W       *ParamOf[T] // In*Out, row-major (in × out)
	B       *ParamOf[T] // Out

	eng EngineOf[T] // compute backend; nil means the resolved default
	ps  [2]*ParamOf[T]

	// wview is the cached matrix view over W.Value, bound once at
	// construction (see bindViews). The optimizer mutates W.Value in place
	// but never reassigns the slice, so the view stays valid for the layer's
	// lifetime and Forward/Infer never build (and heap-allocate) one per
	// call. Read-only after binding — concurrent Infer callers share it.
	wview MatOf[T]

	x   *MatOf[T] // cached input for backward
	out *MatOf[T] // reusable Forward output
	dx  *MatOf[T] // reusable Backward output
}

// Linear is the float64 fully connected layer.
type Linear = LinearOf[float64]

// NewLinearOf returns a Glorot-initialized fully connected layer of the
// given precision.
func NewLinearOf[T Float](in, out int, rng *rand.Rand) *LinearOf[T] {
	w := NewMatOf[T](in, out)
	Xavier(w, in, out, rng)
	return (&LinearOf[T]{
		In:  in,
		Out: out,
		W:   &ParamOf[T]{Name: "W", Value: w.Data, Grad: make([]T, in*out)},
		B:   &ParamOf[T]{Name: "b", Value: make([]T, out), Grad: make([]T, out)},
	}).bindViews()
}

// NewLinear returns a Glorot-initialized float64 fully connected layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	return NewLinearOf[float64](in, out, rng)
}

// bindViews caches the weight view over W.Value and returns the layer.
// Every construction path (NewLinearOf, clone, convert, gob load) calls it
// exactly once, before the layer is shared.
func (l *LinearOf[T]) bindViews() *LinearOf[T] {
	l.wview = MatOf[T]{Rows: l.In, Cols: l.Out, Data: l.W.Value}
	return l
}

func (l *LinearOf[T]) weight() *MatOf[T] {
	if l.wview.Data == nil {
		// Hand-assembled layer (tests): bind lazily. Constructor-built
		// networks — the only ones the concurrent-inference contract covers —
		// never take this branch.
		l.bindViews()
	}
	return &l.wview
}

func (l *LinearOf[T]) setEngine(e EngineOf[T]) { l.eng = e }

// engine returns the bound backend, lazily resolving the process default for
// layers that never had one set (standalone layers, gob-loaded networks).
func (l *LinearOf[T]) engine() EngineOf[T] {
	if l.eng == nil {
		l.eng = NewEngineOf[T](EngineAuto)
	}
	return l.eng
}

// Forward computes x·W + b for a batch into the layer's reusable output
// (overwritten by the next Forward call).
func (l *LinearOf[T]) Forward(x *MatOf[T]) *MatOf[T] {
	l.x = x
	if l.out == nil {
		l.out = &MatOf[T]{}
	}
	l.out.Resize(x.Rows, l.Out)
	l.engine().LinearForward(x, l.weight(), l.B.Value, l.out)
	return l.out
}

// Infer computes x·W + b into a fresh matrix without caching the input for
// backward.
func (l *LinearOf[T]) Infer(x *MatOf[T]) *MatOf[T] {
	out := NewMatOf[T](x.Rows, l.Out)
	l.engine().LinearForward(x, l.weight(), l.B.Value, out)
	return out
}

func (l *LinearOf[T]) inferTo(x, out *MatOf[T]) {
	out.Resize(x.Rows, l.Out)
	l.engine().LinearForward(x, l.weight(), l.B.Value, out)
}

// Backward accumulates dW = xᵀ·dout and db = Σ dout, and returns dx = dout·Wᵀ
// in the layer's reusable buffer (overwritten by the next Backward call).
func (l *LinearOf[T]) Backward(dout *MatOf[T]) *MatOf[T] {
	if l.dx == nil {
		l.dx = &MatOf[T]{}
	}
	l.dx.Resize(dout.Rows, l.In)
	l.engine().LinearBackward(l.x, dout, l.weight(), l.W.Grad, l.B.Grad, l.dx)
	return l.dx
}

// Params returns the weight and bias parameters.
func (l *LinearOf[T]) Params() []*ParamOf[T] {
	if l.ps[0] == nil {
		l.ps = [2]*ParamOf[T]{l.W, l.B}
	}
	return l.ps[:]
}

// ReLUOf is the rectified-linear activation, applied element-wise.
type ReLUOf[T Float] struct {
	mask []bool
	out  *MatOf[T] // reusable Forward output
	dx   *MatOf[T] // reusable Backward output
}

// ReLU is the float64 rectified-linear activation.
type ReLU = ReLUOf[float64]

// Forward zeroes negative inputs into the layer's reusable output.
func (r *ReLUOf[T]) Forward(x *MatOf[T]) *MatOf[T] {
	if r.out == nil {
		r.out = &MatOf[T]{}
	}
	r.out.Resize(x.Rows, x.Cols)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
			r.out.Data[i] = v
		} else {
			r.mask[i] = false
			r.out.Data[i] = 0
		}
	}
	return r.out
}

// Infer zeroes everything not strictly positive — including NaN, exactly as
// Forward does — without touching the backward mask.
func (r *ReLUOf[T]) Infer(x *MatOf[T]) *MatOf[T] {
	out := NewMatOf[T](x.Rows, x.Cols)
	reluInto(out.Data, x.Data)
	return out
}

func (r *ReLUOf[T]) inferTo(x, out *MatOf[T]) {
	out.Resize(x.Rows, x.Cols)
	reluInto(out.Data, x.Data)
}

func reluInto[T Float](dst, src []T) {
	for i, v := range src {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// Backward passes gradient only where the input was positive.
func (r *ReLUOf[T]) Backward(dout *MatOf[T]) *MatOf[T] {
	if r.dx == nil {
		r.dx = &MatOf[T]{}
	}
	r.dx.Resize(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		if r.mask[i] {
			r.dx.Data[i] = v
		} else {
			r.dx.Data[i] = 0
		}
	}
	return r.dx
}

// Params returns nil; ReLU has no learnable parameters.
func (r *ReLUOf[T]) Params() []*ParamOf[T] { return nil }

func (r *ReLUOf[T]) setEngine(EngineOf[T]) {}

// TanhOf is the hyperbolic-tangent activation, applied element-wise.
type TanhOf[T Float] struct {
	y  *MatOf[T] // reusable Forward output, cached for Backward
	dx *MatOf[T] // reusable Backward output
}

// Tanh is the float64 hyperbolic-tangent activation.
type Tanh = TanhOf[float64]

// Forward applies tanh element-wise into the layer's reusable output.
func (t *TanhOf[T]) Forward(x *MatOf[T]) *MatOf[T] {
	if t.y == nil {
		t.y = &MatOf[T]{}
	}
	t.y.Resize(x.Rows, x.Cols)
	tanhInto(t.y.Data, x.Data)
	return t.y
}

// Infer applies tanh element-wise without caching the activation.
func (t *TanhOf[T]) Infer(x *MatOf[T]) *MatOf[T] {
	out := NewMatOf[T](x.Rows, x.Cols)
	tanhInto(out.Data, x.Data)
	return out
}

func (t *TanhOf[T]) inferTo(x, out *MatOf[T]) {
	out.Resize(x.Rows, x.Cols)
	tanhInto(out.Data, x.Data)
}

func tanhInto[T Float](dst, src []T) {
	for i, v := range src {
		dst[i] = T(math.Tanh(float64(v)))
	}
}

// Backward multiplies by 1 − tanh².
func (t *TanhOf[T]) Backward(dout *MatOf[T]) *MatOf[T] {
	if t.dx == nil {
		t.dx = &MatOf[T]{}
	}
	t.dx.Resize(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		y := t.y.Data[i]
		t.dx.Data[i] = v * (1 - y*y)
	}
	return t.dx
}

// Params returns nil; Tanh has no learnable parameters.
func (t *TanhOf[T]) Params() []*ParamOf[T] { return nil }

func (t *TanhOf[T]) setEngine(EngineOf[T]) {}
