package nn

import (
	"math"
	"math/rand"
)

// ParamOf is a learnable parameter tensor with its accumulated gradient.
// Optimizers update Value in place from Grad.
type ParamOf[T Float] struct {
	Name  string
	Value []T
	Grad  []T
}

// Param is the float64 parameter (the reference precision's API).
type Param = ParamOf[float64]

// ZeroGrad clears the accumulated gradient.
func (p *ParamOf[T]) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// LayerOf is one differentiable stage of a network at a fixed precision.
// Forward consumes a batch and must cache whatever it needs for the matching
// Backward call; Backward consumes the gradient of the loss with respect to
// its output and returns the gradient with respect to its input, accumulating
// parameter gradients. Infer must compute exactly what Forward computes while
// writing no layer state, so concurrent Infer calls on a shared layer are
// safe as long as the parameters are not mutated.
type LayerOf[T Float] interface {
	Forward(x *MatOf[T]) *MatOf[T]
	Infer(x *MatOf[T]) *MatOf[T]
	Backward(dout *MatOf[T]) *MatOf[T]
	Params() []*ParamOf[T]
}

// Layer is the float64 layer interface.
type Layer = LayerOf[float64]

// LinearOf is a fully connected layer: y = x·W + b.
type LinearOf[T Float] struct {
	In, Out int
	W       *ParamOf[T] // In*Out, row-major (in × out)
	B       *ParamOf[T] // Out

	x *MatOf[T] // cached input for backward
}

// Linear is the float64 fully connected layer.
type Linear = LinearOf[float64]

// NewLinearOf returns a Glorot-initialized fully connected layer of the
// given precision.
func NewLinearOf[T Float](in, out int, rng *rand.Rand) *LinearOf[T] {
	w := NewMatOf[T](in, out)
	Xavier(w, in, out, rng)
	return &LinearOf[T]{
		In:  in,
		Out: out,
		W:   &ParamOf[T]{Name: "W", Value: w.Data, Grad: make([]T, in*out)},
		B:   &ParamOf[T]{Name: "b", Value: make([]T, out), Grad: make([]T, out)},
	}
}

// NewLinear returns a Glorot-initialized float64 fully connected layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	return NewLinearOf[float64](in, out, rng)
}

func (l *LinearOf[T]) weight() *MatOf[T] {
	return &MatOf[T]{Rows: l.In, Cols: l.Out, Data: l.W.Value}
}

// Forward computes x·W + b for a batch.
func (l *LinearOf[T]) Forward(x *MatOf[T]) *MatOf[T] {
	l.x = x
	return l.Infer(x)
}

// Infer computes x·W + b without caching the input for backward.
func (l *LinearOf[T]) Infer(x *MatOf[T]) *MatOf[T] {
	out := MatMul(x, l.weight())
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += l.B.Value[j]
		}
	}
	return out
}

// Backward accumulates dW = xᵀ·dout and db = Σ dout, and returns dx = dout·Wᵀ.
func (l *LinearOf[T]) Backward(dout *MatOf[T]) *MatOf[T] {
	dw := MatMulATB(l.x, dout)
	for i, v := range dw.Data {
		l.W.Grad[i] += v
	}
	for i := 0; i < dout.Rows; i++ {
		row := dout.Row(i)
		for j, v := range row {
			l.B.Grad[j] += v
		}
	}
	return MatMulABT(dout, l.weight())
}

// Params returns the weight and bias parameters.
func (l *LinearOf[T]) Params() []*ParamOf[T] { return []*ParamOf[T]{l.W, l.B} }

// ReLUOf is the rectified-linear activation, applied element-wise.
type ReLUOf[T Float] struct {
	mask []bool
}

// ReLU is the float64 rectified-linear activation.
type ReLU = ReLUOf[float64]

// Forward zeroes negative inputs.
func (r *ReLUOf[T]) Forward(x *MatOf[T]) *MatOf[T] {
	out := x.Clone()
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Infer zeroes everything not strictly positive — including NaN, exactly as
// Forward does — without touching the backward mask.
func (r *ReLUOf[T]) Infer(x *MatOf[T]) *MatOf[T] {
	out := x.Clone()
	for i, v := range x.Data {
		if !(v > 0) {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward passes gradient only where the input was positive.
func (r *ReLUOf[T]) Backward(dout *MatOf[T]) *MatOf[T] {
	dx := dout.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil; ReLU has no learnable parameters.
func (r *ReLUOf[T]) Params() []*ParamOf[T] { return nil }

// TanhOf is the hyperbolic-tangent activation, applied element-wise.
type TanhOf[T Float] struct {
	y *MatOf[T]
}

// Tanh is the float64 hyperbolic-tangent activation.
type Tanh = TanhOf[float64]

// Forward applies tanh element-wise.
func (t *TanhOf[T]) Forward(x *MatOf[T]) *MatOf[T] {
	out := t.Infer(x)
	t.y = out
	return out
}

// Infer applies tanh element-wise without caching the activation.
func (t *TanhOf[T]) Infer(x *MatOf[T]) *MatOf[T] {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = T(math.Tanh(float64(v)))
	}
	return out
}

// Backward multiplies by 1 − tanh².
func (t *TanhOf[T]) Backward(dout *MatOf[T]) *MatOf[T] {
	dx := dout.Clone()
	for i := range dx.Data {
		y := t.y.Data[i]
		dx.Data[i] *= 1 - y*y
	}
	return dx
}

// Params returns nil; Tanh has no learnable parameters.
func (t *TanhOf[T]) Params() []*ParamOf[T] { return nil }
