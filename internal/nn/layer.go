package nn

import (
	"math"
	"math/rand"
)

// Param is a learnable parameter tensor with its accumulated gradient.
// Optimizers update Value in place from Grad.
type Param struct {
	Name  string
	Value []float64
	Grad  []float64
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Layer is one differentiable stage of a network. Forward consumes a batch
// and must cache whatever it needs for the matching Backward call; Backward
// consumes the gradient of the loss with respect to its output and returns
// the gradient with respect to its input, accumulating parameter gradients.
// Infer must compute exactly what Forward computes while writing no layer
// state, so concurrent Infer calls on a shared layer are safe as long as
// the parameters are not mutated.
type Layer interface {
	Forward(x *Mat) *Mat
	Infer(x *Mat) *Mat
	Backward(dout *Mat) *Mat
	Params() []*Param
}

// Linear is a fully connected layer: y = x·W + b.
type Linear struct {
	In, Out int
	W       *Param // In*Out, row-major (in × out)
	B       *Param // Out

	x *Mat // cached input for backward
}

// NewLinear returns a Glorot-initialized fully connected layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	w := NewMat(in, out)
	Xavier(w, in, out, rng)
	return &Linear{
		In:  in,
		Out: out,
		W:   &Param{Name: "W", Value: w.Data, Grad: make([]float64, in*out)},
		B:   &Param{Name: "b", Value: make([]float64, out), Grad: make([]float64, out)},
	}
}

func (l *Linear) weight() *Mat { return &Mat{Rows: l.In, Cols: l.Out, Data: l.W.Value} }

// Forward computes x·W + b for a batch.
func (l *Linear) Forward(x *Mat) *Mat {
	l.x = x
	return l.Infer(x)
}

// Infer computes x·W + b without caching the input for backward.
func (l *Linear) Infer(x *Mat) *Mat {
	out := MatMul(x, l.weight())
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += l.B.Value[j]
		}
	}
	return out
}

// Backward accumulates dW = xᵀ·dout and db = Σ dout, and returns dx = dout·Wᵀ.
func (l *Linear) Backward(dout *Mat) *Mat {
	dw := MatMulATB(l.x, dout)
	for i, v := range dw.Data {
		l.W.Grad[i] += v
	}
	for i := 0; i < dout.Rows; i++ {
		row := dout.Row(i)
		for j, v := range row {
			l.B.Grad[j] += v
		}
	}
	return MatMulABT(dout, l.weight())
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ReLU is the rectified-linear activation, applied element-wise.
type ReLU struct {
	mask []bool
}

// Forward zeroes negative inputs.
func (r *ReLU) Forward(x *Mat) *Mat {
	out := x.Clone()
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Infer zeroes everything not strictly positive — including NaN, exactly as
// Forward does — without touching the backward mask.
func (r *ReLU) Infer(x *Mat) *Mat {
	out := x.Clone()
	for i, v := range x.Data {
		if !(v > 0) {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward passes gradient only where the input was positive.
func (r *ReLU) Backward(dout *Mat) *Mat {
	dx := dout.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil; ReLU has no learnable parameters.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation, applied element-wise.
type Tanh struct {
	y *Mat
}

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *Mat) *Mat {
	out := t.Infer(x)
	t.y = out
	return out
}

// Infer applies tanh element-wise without caching the activation.
func (t *Tanh) Infer(x *Mat) *Mat {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// Backward multiplies by 1 − tanh².
func (t *Tanh) Backward(dout *Mat) *Mat {
	dx := dout.Clone()
	for i := range dx.Data {
		y := t.y.Data[i]
		dx.Data[i] *= 1 - y*y
	}
	return dx
}

// Params returns nil; Tanh has no learnable parameters.
func (t *Tanh) Params() []*Param { return nil }
