package nn

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
)

// relDiff is the symmetric relative difference used by the f32 tolerance-
// parity tests: |a−b| / (1 + |a| + |b|).
func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Abs(a) + math.Abs(b))
}

func TestParsePrecision(t *testing.T) {
	cases := []struct {
		in   string
		want Precision
		err  bool
	}{
		{"", PrecisionAuto, false},
		{"auto", PrecisionAuto, false},
		{"f32", F32, false},
		{"Float32", F32, false},
		{"32", F32, false},
		{"f64", F64, false},
		{"FLOAT64", F64, false},
		{"64", F64, false},
		{"f16", PrecisionAuto, true},
		{"double", PrecisionAuto, true},
	}
	for _, c := range cases {
		got, err := ParsePrecision(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	if F32.Resolve() != F32 || F64.Resolve() != F64 {
		t.Fatal("concrete precisions must resolve to themselves")
	}
	if p := PrecisionAuto.Resolve(); p != F32 && p != F64 {
		t.Fatalf("PrecisionAuto resolved to %v", p)
	}
}

// TestMLPAtSeedConsistency: an f32 network built from a seed must start from
// exactly the f32-rounded weights of its f64 counterpart (both consume the
// rng stream identically).
func TestMLPAtSeedConsistency(t *testing.T) {
	n64 := NewMLPAt(F64, rand.New(rand.NewSource(31)), 7, 12, 5)
	n32 := NewMLPAt(F32, rand.New(rand.NewSource(31)), 7, 12, 5)
	if n64.Precision() != F64 || n32.Precision() != F32 {
		t.Fatalf("precisions %v / %v, want f64 / f32", n64.Precision(), n32.Precision())
	}
	w64, w32 := n64.FlattenParams(), n32.FlattenParams()
	if len(w64) != len(w32) {
		t.Fatalf("parameter counts differ: %d vs %d", len(w64), len(w32))
	}
	for i := range w64 {
		if float64(float32(w64[i])) != w32[i] {
			t.Fatalf("weight %d: f32 init %v is not the rounding of f64 init %v", i, w32[i], w64[i])
		}
	}
}

// forwardParityTol is the documented f32-vs-f64 forward-pass parity bound:
// the relative error of one batched forward through production-sized layers.
const forwardParityTol = 1e-4

// TestF32ForwardToleranceParity: a forward pass through the f32 core must
// match the f64 reference within the documented relative tolerance. This is
// the tolerance-based replacement for bitwise parity on the f32 path.
func TestF32ForwardToleranceParity(t *testing.T) {
	n64 := NewMLPAt(F64, rand.New(rand.NewSource(8)), 64, 128, 64, 10)
	n32 := NewMLPAt(F32, rand.New(rand.NewSource(8)), 64, 128, 64, 10)
	rng := rand.New(rand.NewSource(9))
	x := NewMat(16, 64)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	out64 := n64.Forward(x.Clone())
	out32 := n32.Forward(x.Clone())
	worst := 0.0
	for i := range out64.Data {
		if d := relDiff(out64.Data[i], out32.Data[i]); d > worst {
			worst = d
		}
	}
	if worst > forwardParityTol {
		t.Fatalf("f32 forward diverged from f64 by relative %v, documented bound %v", worst, forwardParityTol)
	}
	// Infer must be bitwise identical to Forward at f32 too.
	inf32 := n32.Infer(x.Clone())
	for i := range out32.Data {
		if inf32.Data[i] != out32.Data[i] {
			t.Fatalf("f32 Infer[%d] = %v differs from Forward %v", i, inf32.Data[i], out32.Data[i])
		}
	}
}

// stepParityTol is the documented per-step f32-vs-f64 training parity bound
// on the regression workload: after each full forward/backward/Adam step the
// relative difference in loss stays within this bound for the first training
// epochs (divergence compounds slowly; convergence-level agreement is
// asserted separately by the rl and rejoin tolerance tests).
const stepParityTol = 1e-3

// TestF32TrainingStepToleranceParity trains two identically seeded MLPs —
// one per precision — with Adam on the same regression batch and requires
// per-step loss parity within stepParityTol for 50 steps, plus an actual
// loss reduction on the f32 path (the f32 kernels must learn, not merely
// agree).
func TestF32TrainingStepToleranceParity(t *testing.T) {
	mk := func(p Precision) *Network { return NewMLPAt(p, rand.New(rand.NewSource(5)), 8, 32, 1) }
	n64, n32 := mk(F64), mk(F32)
	opt64, opt32 := NewAdam(0.01), NewAdam(0.01)

	rng := rand.New(rand.NewSource(6))
	xs := NewMat(32, 8)
	ys := NewMat(32, 1)
	for i := 0; i < 32; i++ {
		var sum float64
		for j := 0; j < 8; j++ {
			v := rng.NormFloat64()
			xs.Set(i, j, v)
			if j%2 == 0 {
				sum += v
			} else {
				sum -= v
			}
		}
		ys.Set(i, 0, sum)
	}

	step := func(n *Network, opt *Adam) float64 {
		n.ZeroGrad()
		out := n.Forward(xs)
		loss, g := MSEBatch(out, ys)
		n.Backward(g)
		opt.StepNet(n)
		return loss
	}

	var first32, last32 float64
	for s := 0; s < 50; s++ {
		l64 := step(n64, opt64)
		l32 := step(n32, opt32)
		if s == 0 {
			first32 = l32
		}
		last32 = l32
		if d := relDiff(l64, l32); d > stepParityTol {
			t.Fatalf("step %d: f64 loss %v vs f32 loss %v (relative %v > %v)", s, l64, l32, d, stepParityTol)
		}
	}
	if last32 > first32/5 {
		t.Fatalf("f32 path failed to learn: first loss %v, last %v", first32, last32)
	}
}

// TestConvertTo: explicit precision conversion must round f64→f32 weight by
// weight, widen f32→f64 exactly, and be the identity when the precision
// already matches.
func TestConvertTo(t *testing.T) {
	n64 := NewMLP(rand.New(rand.NewSource(12)), 5, 9, 3)
	if n64.ConvertTo(F64) != n64 {
		t.Fatal("same-precision ConvertTo must return the receiver")
	}
	n32 := n64.ConvertTo(F32)
	if n32.Precision() != F32 {
		t.Fatalf("converted precision %v, want f32", n32.Precision())
	}
	w64, w32 := n64.FlattenParams(), n32.FlattenParams()
	for i := range w64 {
		if float64(float32(w64[i])) != w32[i] {
			t.Fatalf("weight %d: conversion %v is not the f32 rounding of %v", i, w32[i], w64[i])
		}
	}
	// Widening back is exact with respect to the f32 values.
	back := n32.ConvertTo(F64)
	if back.Precision() != F64 {
		t.Fatalf("widened precision %v, want f64", back.Precision())
	}
	wb := back.FlattenParams()
	for i := range w32 {
		if wb[i] != w32[i] {
			t.Fatalf("weight %d changed on exact f32→f64 widening: %v vs %v", i, wb[i], w32[i])
		}
	}
	// The conversions are deep copies: mutating the original must not leak.
	n64.Params()[0].Value[0] += 100
	if n32.FlattenParams()[0] == n64.FlattenParams()[0] {
		t.Fatal("ConvertTo shares storage with the original")
	}
}

// TestF32CheckpointRoundTrip: an f32 network must gob-round-trip at f32 with
// bitwise-identical outputs (the wire format keeps the native precision).
func TestF32CheckpointRoundTrip(t *testing.T) {
	net := NewMLPAt(F32, rand.New(rand.NewSource(21)), 6, 10, 4)
	x := NewMat(3, 6)
	rng := rand.New(rand.NewSource(22))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := net.Forward(x.Clone())

	data, err := net.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Network
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Precision() != F32 {
		t.Fatalf("restored precision %v, want f32", back.Precision())
	}
	got := back.Forward(x.Clone())
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("output %d differs after f32 round trip: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// legacyNetState mirrors the pre-versioning (version-0) wire struct: no
// Version, no Precision, float64 payload only.
type legacyNetState struct {
	Kinds []string
	Ins   []int
	Outs  []int
	Vals  [][]float64
}

// TestLegacyV0CheckpointLoads: a gob stream written by the original
// float64-only format must still decode, as an f64 network.
func TestLegacyV0CheckpointLoads(t *testing.T) {
	net := NewMLP(rand.New(rand.NewSource(33)), 4, 6, 2)
	core := net.F64()
	st := legacyNetState{}
	for _, l := range core.Layers {
		switch l := l.(type) {
		case *Linear:
			st.Kinds = append(st.Kinds, "linear")
			st.Ins = append(st.Ins, l.In)
			st.Outs = append(st.Outs, l.Out)
			st.Vals = append(st.Vals, append([]float64(nil), l.W.Value...), append([]float64(nil), l.B.Value...))
		case *ReLU:
			st.Kinds = append(st.Kinds, "relu")
			st.Ins = append(st.Ins, 0)
			st.Outs = append(st.Outs, 0)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}

	var back Network
	if err := back.UnmarshalBinary(buf.Bytes()); err != nil {
		t.Fatalf("legacy checkpoint failed to load: %v", err)
	}
	if back.Precision() != F64 {
		t.Fatalf("legacy checkpoint restored as %v, want f64", back.Precision())
	}
	x := NewMat(1, 4)
	x.Data[0] = 1
	want, got := net.Forward(x.Clone()), back.Forward(x.Clone())
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("legacy round trip changed output %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestUnmarshalRejectsBadData: empty, truncated, and garbage checkpoint
// bytes must error rather than panic or half-load.
func TestUnmarshalRejectsBadData(t *testing.T) {
	good, err := NewMLP(rand.New(rand.NewSource(1)), 3, 2).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"garbage":   []byte("not a gob stream at all"),
		"truncated": good[:len(good)/2],
	}
	for name, data := range cases {
		var back Network
		if err := back.UnmarshalBinary(data); err == nil {
			t.Fatalf("%s checkpoint decoded without error", name)
		}
	}
}

// TestF32DivideGradsAndFlatten: the precision-agnostic gradient and
// parameter accessors must operate on the f32 core.
func TestF32DivideGradsAndFlatten(t *testing.T) {
	net := NewMLPAt(F32, rand.New(rand.NewSource(2)), 3, 4, 2)
	core := net.F32()
	for _, p := range core.Params() {
		for i := range p.Grad {
			p.Grad[i] = 8
		}
	}
	net.DivideGrads(4)
	for _, p := range core.Params() {
		for i := range p.Grad {
			if p.Grad[i] != 2 {
				t.Fatalf("grad = %v after DivideGrads(4), want 2", p.Grad[i])
			}
		}
	}
	flat := net.FlattenParams()
	want := 3*4 + 4 + 4*2 + 2
	if len(flat) != want {
		t.Fatalf("FlattenParams length %d, want %d", len(flat), want)
	}
}

// TestF32CloneIndependence mirrors the f64 clone tests on the f32 path,
// including the gradient-free inference clone.
func TestF32CloneIndependence(t *testing.T) {
	net := NewMLPAt(F32, rand.New(rand.NewSource(3)), 4, 6, 2)
	x := NewMat(2, 4)
	rng := rand.New(rand.NewSource(4))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := net.Infer(x.Clone())

	snap := net.CloneForInference()
	for _, p := range snap.F32().Params() {
		if p.Grad != nil {
			t.Fatalf("CloneForInference allocated a gradient buffer for %s", p.Name)
		}
	}
	cl := net.Clone()
	net.F32().Params()[0].Value[0] += 100
	for _, m := range []*Network{snap, cl} {
		got := m.Infer(x.Clone())
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatal("f32 clone shares parameter storage with the original")
			}
		}
	}
}

// --- precision benchmarks ---

// benchMatPair builds an r×k · k×c multiplication at the given precision
// with identical (rounded) contents.
func benchMats[T Float](r, k, c int, seed int64) (*MatOf[T], *MatOf[T]) {
	rng := rand.New(rand.NewSource(seed))
	a := NewMatOf[T](r, k)
	b := NewMatOf[T](k, c)
	for i := range a.Data {
		a.Data[i] = T(rng.NormFloat64())
	}
	for i := range b.Data {
		b.Data[i] = T(rng.NormFloat64())
	}
	return a, b
}

// BenchmarkMatMulPrecision compares the f64 and f32 kernels on a
// bandwidth-bound batched-training shape (256×512 · 512×256). SetBytes
// reports the true bytes each kernel moves per multiply — the f32 figure is
// exactly half — so the benchmark demonstrates the bandwidth win in both
// wall-time and B/op terms.
func BenchmarkMatMulPrecision(b *testing.B) {
	const r, k, c = 256, 512, 256
	elems := int64(r*k + k*c + r*c)
	b.Run("f64", func(b *testing.B) {
		x, w := benchMats[float64](r, k, c, 1)
		b.SetBytes(elems * 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MatMul(x, w)
		}
	})
	b.Run("f32", func(b *testing.B) {
		x, w := benchMats[float32](r, k, c, 1)
		b.SetBytes(elems * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MatMul(x, w)
		}
	})
}

// BenchmarkForwardBackwardPrecision compares one full batched
// forward/backward pass through a production-shaped MLP (the
// BenchmarkBatchedTrain network) per precision.
func BenchmarkForwardBackwardPrecision(b *testing.B) {
	run := func(b *testing.B, p Precision) {
		net := NewMLPAt(p, rand.New(rand.NewSource(1)), 256, 128, 64, 64)
		rng := rand.New(rand.NewSource(2))
		x := NewMat(64, 256)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		grad := NewMat(64, 64)
		for i := range grad.Data {
			grad.Data[i] = rng.NormFloat64() * 0.01
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.ZeroGrad()
			net.Forward(x)
			net.Backward(grad)
		}
	}
	b.Run("f64", func(b *testing.B) { run(b, F64) })
	b.Run("f32", func(b *testing.B) { run(b, F32) })
}
