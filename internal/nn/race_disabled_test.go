//go:build !race

package nn

// raceEnabled reports whether the race detector is compiled in; see
// race_enabled_test.go.
const raceEnabled = false
