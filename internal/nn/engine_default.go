//go:build !handsfree_blocked

package nn

// buildDefaultEngine is the engine EngineAuto resolves to when
// HANDSFREE_ENGINE is unset. The default build keeps the reference kernels,
// preserving the pre-seam numerics bit for bit; build with
// -tags handsfree_blocked to default to the blocked backend instead.
const buildDefaultEngine = EngineReference
