//go:build amd64

#include "textflag.h"

// Fused Adam vector kernels (see adam_amd64.go for the bitwise contract).
// Register plan, shared by both precisions:
//
//	Y7–Y15  broadcast constants, in AdamArgs field order:
//	        Scale, B1, NB1, B2, NB2, C1, C2, LR, Eps
//	Y0      scaled gradient g        Y1  first moment m
//	Y2      second moment v          Y3–Y5 temporaries
//	DX      n (loop bound)           BX  element index
//	DI p    SI grad    R8 m    R9 v  R10 args pointer
//
// Every intermediate matches the scalar expression's association exactly:
// in particular v' = B2·v + (NB2·g)·g multiplies NB2·g first (Go's
// left-associative NB2*g*g), and the final step is (LR·mhat)/(sqrt+Eps).
// No FMA anywhere — each multiply and add rounds separately, as the scalar
// loop does.

// func adamStep4f64(n int, p, grad, m, v *float64, a *AdamArgs[float64])
TEXT ·adamStep4f64(SB), NOSPLIT, $0-48
	MOVQ         n+0(FP), DX
	MOVQ         p+8(FP), DI
	MOVQ         grad+16(FP), SI
	MOVQ         m+24(FP), R8
	MOVQ         v+32(FP), R9
	MOVQ         a+40(FP), R10
	VBROADCASTSD 0(R10), Y7
	VBROADCASTSD 8(R10), Y8
	VBROADCASTSD 16(R10), Y9
	VBROADCASTSD 24(R10), Y10
	VBROADCASTSD 32(R10), Y11
	VBROADCASTSD 40(R10), Y12
	VBROADCASTSD 48(R10), Y13
	VBROADCASTSD 56(R10), Y14
	VBROADCASTSD 64(R10), Y15
	XORQ         BX, BX

loop4f64:
	VMOVUPD (SI)(BX*8), Y0 // grad
	VMULPD  Y7, Y0, Y0     // g = Scale·grad
	VMOVUPD (R8)(BX*8), Y1 // m
	VMULPD  Y8, Y1, Y1     // B1·m
	VMULPD  Y9, Y0, Y3     // NB1·g
	VADDPD  Y3, Y1, Y1     // m' = B1·m + NB1·g
	VMOVUPD Y1, (R8)(BX*8)
	VMOVUPD (R9)(BX*8), Y2 // v
	VMULPD  Y10, Y2, Y2    // B2·v
	VMULPD  Y11, Y0, Y4    // NB2·g
	VMULPD  Y0, Y4, Y4     // (NB2·g)·g
	VADDPD  Y4, Y2, Y2     // v' = B2·v + (NB2·g)·g
	VMOVUPD Y2, (R9)(BX*8)
	VDIVPD  Y12, Y1, Y3    // mhat = m'/C1
	VDIVPD  Y13, Y2, Y4    // vhat = v'/C2
	VSQRTPD Y4, Y4
	VADDPD  Y15, Y4, Y4    // sqrt(vhat) + Eps
	VMULPD  Y14, Y3, Y3    // LR·mhat
	VDIVPD  Y4, Y3, Y3     // step = (LR·mhat)/(sqrt+Eps)
	VMOVUPD (DI)(BX*8), Y5
	VSUBPD  Y3, Y5, Y5     // p -= step
	VMOVUPD Y5, (DI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, DX
	JLT     loop4f64
	VZEROUPPER
	RET

// func adamStep8f32(n int, p, grad, m, v *float32, a *AdamArgs[float32])
TEXT ·adamStep8f32(SB), NOSPLIT, $0-48
	MOVQ         n+0(FP), DX
	MOVQ         p+8(FP), DI
	MOVQ         grad+16(FP), SI
	MOVQ         m+24(FP), R8
	MOVQ         v+32(FP), R9
	MOVQ         a+40(FP), R10
	VBROADCASTSS 0(R10), Y7
	VBROADCASTSS 4(R10), Y8
	VBROADCASTSS 8(R10), Y9
	VBROADCASTSS 12(R10), Y10
	VBROADCASTSS 16(R10), Y11
	VBROADCASTSS 20(R10), Y12
	VBROADCASTSS 24(R10), Y13
	VBROADCASTSS 28(R10), Y14
	VBROADCASTSS 32(R10), Y15
	XORQ         BX, BX

loop8f32:
	VMOVUPS (SI)(BX*4), Y0 // grad
	VMULPS  Y7, Y0, Y0     // g = Scale·grad
	VMOVUPS (R8)(BX*4), Y1 // m
	VMULPS  Y8, Y1, Y1     // B1·m
	VMULPS  Y9, Y0, Y3     // NB1·g
	VADDPS  Y3, Y1, Y1     // m' = B1·m + NB1·g
	VMOVUPS Y1, (R8)(BX*4)
	VMOVUPS (R9)(BX*4), Y2 // v
	VMULPS  Y10, Y2, Y2    // B2·v
	VMULPS  Y11, Y0, Y4    // NB2·g
	VMULPS  Y0, Y4, Y4     // (NB2·g)·g
	VADDPS  Y4, Y2, Y2     // v' = B2·v + (NB2·g)·g
	VMOVUPS Y2, (R9)(BX*4)
	VDIVPS  Y12, Y1, Y3    // mhat = m'/C1
	VDIVPS  Y13, Y2, Y4    // vhat = v'/C2
	VSQRTPS Y4, Y4
	VADDPS  Y15, Y4, Y4    // sqrt(vhat) + Eps
	VMULPS  Y14, Y3, Y3    // LR·mhat
	VDIVPS  Y4, Y3, Y3     // step = (LR·mhat)/(sqrt+Eps)
	VMOVUPS (DI)(BX*4), Y5
	VSUBPS  Y3, Y5, Y5     // p -= step
	VMOVUPS Y5, (DI)(BX*4)
	ADDQ    $8, BX
	CMPQ    BX, DX
	JLT     loop8f32
	VZEROUPPER
	RET
