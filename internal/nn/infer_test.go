package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestInferMatchesForward: the stateless inference path must be bitwise
// identical to the training forward pass.
func TestInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewMLP(rng, 12, 16, 8, 5)
	// Include a Tanh so every layer kind is exercised.
	net.F64().Layers = append(net.F64().Layers, &Tanh{})
	for trial := 0; trial < 5; trial++ {
		x := randMat(1+trial*3, 12, rng)
		want := net.Forward(x.Clone())
		got := net.Infer(x)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("Infer shape %dx%d, Forward %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d: Infer[%d] = %v, Forward = %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestInferMatchesForwardOnNaNActivations: a diverged policy (NaN weights)
// must behave identically through both paths — Forward's ReLU zeroes NaN
// pre-activations (v > 0 is false for NaN), and Infer must do the same, or
// async actors would see NaN logits where the sync learner sees finite ones.
func TestInferMatchesForwardOnNaNActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewMLP(rng, 4, 8, 3)
	// Poison one hidden row so the ReLU input contains NaN.
	lin := net.F64().Layers[0].(*Linear)
	for j := 0; j < lin.Out; j++ {
		lin.W.Value[j] = math.NaN()
	}
	x := randMat(2, 4, rng)
	want := net.Forward(x.Clone())
	got := net.Infer(x)
	for i := range want.Data {
		w, g := want.Data[i], got.Data[i]
		if w != g && !(math.IsNaN(w) && math.IsNaN(g)) {
			t.Fatalf("NaN handling diverged at %d: Infer %v, Forward %v", i, g, w)
		}
	}
	for _, v := range got.Data {
		if math.IsNaN(v) {
			t.Fatalf("NaN leaked through the output layer: %v (ReLU must clamp it)", got.Data)
		}
	}
}

// TestInferConcurrentOnSharedNetwork: unlike Forward, Infer must be safe for
// many goroutines sharing one network — the parameter-server snapshot
// contract. Run with -race to make this meaningful.
func TestInferConcurrentOnSharedNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewMLP(rng, 8, 16, 4)
	inputs := make([]*Mat, 8)
	want := make([]*Mat, 8)
	for i := range inputs {
		inputs[i] = randMat(3, 8, rng)
		want[i] = net.Infer(inputs[i].Clone())
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				got := net.Infer(inputs[g])
				for i := range want[g].Data {
					if got.Data[i] != want[g].Data[i] {
						t.Errorf("goroutine %d iter %d: Infer diverged at %d", g, iter, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCloneForInference: the gradient-free clone must produce identical
// inference output, be independent of the original's weights, and carry no
// gradient buffers.
func TestCloneForInference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewMLP(rng, 6, 12, 3)
	x := randMat(4, 6, rng)
	want := net.Infer(x.Clone())

	snap := net.CloneForInference()
	for _, p := range snap.Params() {
		if p.Grad != nil {
			t.Fatalf("CloneForInference allocated a gradient buffer for %s", p.Name)
		}
	}
	got := snap.Infer(x.Clone())
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("clone output diverged at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	// Mutate the original: the snapshot must be unaffected.
	for _, p := range net.Params() {
		for i := range p.Value {
			p.Value[i] += 1
		}
	}
	got2 := snap.Infer(x.Clone())
	for i := range want.Data {
		if got2.Data[i] != want.Data[i] {
			t.Fatalf("snapshot changed when original was mutated (index %d)", i)
		}
	}
	if snap.InDim() != net.InDim() || snap.OutDim() != net.OutDim() {
		t.Fatalf("clone dims %dx%d, want %dx%d", snap.InDim(), snap.OutDim(), net.InDim(), net.OutDim())
	}
}
