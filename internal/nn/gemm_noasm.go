//go:build !amd64

package nn

// Non-amd64 builds have no vector microkernels: the blocked engine always
// runs the portable 2×4 register-tiled Go kernels.

const cpuAVX2FMA = false

// The asm panel widths exist on every platform (packed.go sizes its stack
// accumulator with the widest one); without the kernels they are never
// selected as a pack's layout.
const (
	asmNRF32 = 16
	asmNRF64 = 8
)

const cpuAVX512F = false

var asmGemmEnabled = false

var asmGemm512Enabled = false

// setAsmGemm is the test hook for toggling the vector kernels; without them
// it reports the (permanently false) setting unchanged.
func setAsmGemm(bool) bool { return false }

// setAsmGemm512 is the test hook for the zmm kernels; permanently false.
func setAsmGemm512(bool) bool { return false }

// gemmBlockedAsm reports that no vector kernel path exists.
func gemmBlockedAsm[T Float](a, b, out *MatOf[T]) bool { return false }

var asmGemvEnabled = false

// setAsmGemv is the test hook for the gemv kernels; permanently false.
func setAsmGemv(bool) bool { return false }

// gemvAsm reports that no vector gemv kernel exists (nothing written).
func gemvAsm[T Float](x, panels, out []T, nr int) bool { return false }

var asmAdamEnabled = false

// setAsmAdam is the test hook for the Adam vector kernels; without them it
// reports the (permanently false) setting unchanged.
func setAsmAdam(bool) bool { return false }

// adamStepAsm reports that no vector Adam kernel exists: zero elements done.
func adamStepAsm[T Float](p, grad, m, v []T, a *AdamArgs[T]) int { return 0 }
