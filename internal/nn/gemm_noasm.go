//go:build !amd64

package nn

// Non-amd64 builds have no vector microkernels: the blocked engine always
// runs the portable 2×4 register-tiled Go kernels.

const cpuAVX2FMA = false

var asmGemmEnabled = false

// setAsmGemm is the test hook for toggling the vector kernels; without them
// it reports the (permanently false) setting unchanged.
func setAsmGemm(bool) bool { return false }

// gemmBlockedAsm reports that no vector kernel path exists.
func gemmBlockedAsm[T Float](a, b, out *MatOf[T]) bool { return false }
