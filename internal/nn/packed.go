package nn

import "fmt"

// Shared-packing inference: the per-publish packed form of a policy network.
//
// Serving evaluates the same immutable snapshot thousands of times with 1×d
// inputs (one greedy rollout decision per call). The blocked engine's GEMM
// path deliberately routes single-row products to the scalar reference
// kernel to stay bitwise deterministic, so per-call inference never benefits
// from the microkernels — and even if it did, it would re-pack each layer's
// weight panels on every call. PackedNetOf moves the packing to snapshot
// construction: each Linear's weight matrix is copied once into k-major
// nr-wide column panels (the same layout the GEMM kernels stream), and every
// subsequent inference runs a panel-at-a-time gemv against the shared,
// immutable pack. Packing cost is paid once per Publish instead of once per
// call, and concurrent Plan/Execute evaluations all read the same panels.
//
// Numerics: the gemv kernels are bitwise identical to the reference scalar
// path. Each output element folds x[k]·w[k][j] in ascending k with a
// separate multiply and add per step (no FMA), which rounds exactly like the
// reference i-k-j loop; the reference's av==0 skip is immaterial for finite
// weights because a ±0 product can never flip a running IEEE sum (the
// accumulator starts at +0 and +0 + ±0 = +0). So a packed inference result
// matches NetOf.InferInto bit for bit on every engine, and swapping shared
// packing on or off can never change a served plan. Weights must be finite
// (a non-finite weight times a zero feature would produce NaN where the
// skipping loop produces none) — true of every trainable policy.
type PackedNetOf[T Float] struct {
	layers []packedLayer[T]
	in     int
	out    int
}

type packedKind uint8

const (
	packLinear packedKind = iota
	packReLU
	packTanh
)

// packedLayer is one layer of the packed form. For packLinear, panels holds
// np/nr column panels of the weight matrix, each in×nr and k-major (panel p
// starts at p·in·nr and its k-th row is the nr weights w[k][p·nr : p·nr+nr]);
// the out%nr trailing columns read the original weight view. nr is captured
// at Pack time — the asm gemv width when the vector kernels are enabled, the
// portable tile width otherwise — and asm records which kernel the pack was
// laid out for, so a pack outlives later toggles of the test hooks.
type packedLayer[T Float] struct {
	kind    packedKind
	in, out int
	nr      int
	np      int // panel-covered columns: out − out%nr
	panels  []T
	bias    []T
	w       *MatOf[T]
	asm     bool
}

// packedNR returns the panel width the current kernel configuration wants.
func packedNR[T Float]() (nr int, asm bool) {
	if asmGemvEnabled {
		if _, ok := any(T(0)).(float32); ok {
			return asmNRF32, true
		}
		return asmNRF64, true
	}
	return blockedNR, false
}

// Pack builds the immutable inference-only form of the network. The receiver
// must not be mutated afterwards (the pack aliases the weight and bias
// slices for the column edges); this is exactly the published-snapshot
// contract. Layers the packer does not recognize panic, mirroring clone.
func (n *NetOf[T]) Pack() *PackedNetOf[T] {
	p := &PackedNetOf[T]{in: n.InDim(), out: n.OutDim()}
	nr, asm := packedNR[T]()
	for _, l := range n.Layers {
		switch l := l.(type) {
		case *LinearOf[T]:
			pl := packedLayer[T]{
				kind: packLinear,
				in:   l.In,
				out:  l.Out,
				nr:   nr,
				np:   l.Out - l.Out%nr,
				bias: l.B.Value,
				w:    l.weight(),
				asm:  asm,
			}
			if pl.np > 0 {
				pl.panels = make([]T, l.In*pl.np)
				packBPanelsN(pl.w, 0, l.In, pl.np, nr, pl.panels)
			}
			p.layers = append(p.layers, pl)
		case *ReLUOf[T]:
			p.layers = append(p.layers, packedLayer[T]{kind: packReLU})
		case *TanhOf[T]:
			p.layers = append(p.layers, packedLayer[T]{kind: packTanh})
		default:
			panic(fmt.Sprintf("nn: cannot pack layer %T", l))
		}
	}
	return p
}

// InDim reports the input dimension of the first Linear layer.
func (p *PackedNetOf[T]) InDim() int { return p.in }

// OutDim reports the output dimension of the last Linear layer.
func (p *PackedNetOf[T]) OutDim() int { return p.out }

// InferInto runs the batch through the packed network: out is resized and
// overwritten, intermediates ping-pong through pooled scratch, and no state
// is written — any number of goroutines may call it on one pack at once.
// Results are bitwise identical to NetOf.InferInto on the reference engine
// for any batch, and to every engine for single-row inputs (the blocked
// engine routes 1×d products to the reference kernel, so the serving hot
// path sees one answer no matter how inference is dispatched). out must not
// alias x.
func (p *PackedNetOf[T]) InferInto(x, out *MatOf[T]) {
	if len(p.layers) == 0 {
		out.Resize(x.Rows, x.Cols)
		copy(out.Data, x.Data)
		return
	}
	sc := getInferScratch[T]()
	cur := x
	for i := range p.layers {
		dst := out
		if i < len(p.layers)-1 {
			dst = sc.next()
		}
		p.layers[i].inferTo(cur, dst)
		cur = dst
	}
	putInferScratch(sc)
}

// InferVec is InferInto for the serving hot path's single feature vector: v
// is viewed as a 1×len(v) matrix without copying or allocating.
func (p *PackedNetOf[T]) InferVec(v []T, out *MatOf[T]) {
	x := MatOf[T]{Rows: 1, Cols: len(v), Data: v}
	p.InferInto(&x, out)
}

func (l *packedLayer[T]) inferTo(x, out *MatOf[T]) {
	switch l.kind {
	case packReLU:
		out.Resize(x.Rows, x.Cols)
		reluInto(out.Data, x.Data)
		return
	case packTanh:
		out.Resize(x.Rows, x.Cols)
		tanhInto(out.Data, x.Data)
		return
	}
	out.Resize(x.Rows, l.out)
	for r := 0; r < x.Rows; r++ {
		l.gemvRow(x.Row(r), out.Row(r))
	}
}

// gemvRow computes orow = xrow·W + b for one input row: the vector kernel
// (or the portable panel loop) over the packed panels, the scalar loop over
// the out%nr column edge, then the bias add — the reference LinearForward's
// matmul-then-bias order, element for element.
func (l *packedLayer[T]) gemvRow(xrow, orow []T) {
	if l.np > 0 {
		if !(l.asm && gemvAsm(xrow, l.panels, orow[:l.np], l.nr)) {
			gemvPortable(xrow, l.panels, orow[:l.np], l.nr)
		}
	}
	for j := l.np; j < l.out; j++ {
		var s T
		wcol := l.w.Data[j:]
		for k, av := range xrow {
			s += av * wcol[k*l.out]
		}
		orow[j] = s
	}
	for j, b := range l.bias {
		orow[j] += b
	}
}

// gemvPortable runs the panel gemv in pure Go for an arbitrary panel width
// (≤ the widest asm layout, so the accumulator tile stays on the stack).
func gemvPortable[T Float](x, panels, out []T, nr int) {
	var accBuf [asmNRF32]T
	acc := accBuf[:nr]
	for jp := 0; jp < len(out); jp += nr {
		for j := range acc {
			acc[j] = 0
		}
		panel := panels[jp*len(x):]
		idx := 0
		for _, av := range x {
			for j := range acc {
				acc[j] += av * panel[idx+j]
			}
			idx += nr
		}
		copy(out[jp:jp+nr], acc)
	}
}

// PackedNetwork is the precision-erased packed form, keeping the float64
// interchange boundary of Network: float64 vectors in, float64 logits out,
// with pooled conversions for an f32 core so concurrent serving stays
// allocation-free.
type PackedNetwork struct {
	prec Precision
	p64  *PackedNetOf[float64]
	p32  *PackedNetOf[float32]
}

// Pack builds the immutable packed inference form of the network (see
// PackedNetOf); the receiver must not be mutated afterwards.
func (n *Network) Pack() *PackedNetwork {
	if n.prec == F32 {
		return &PackedNetwork{prec: F32, p32: n.n32.Pack()}
	}
	return &PackedNetwork{prec: F64, p64: n.n64.Pack()}
}

// InDim reports the input dimension of the first Linear layer.
func (p *PackedNetwork) InDim() int {
	if p.prec == F32 {
		return p.p32.InDim()
	}
	return p.p64.InDim()
}

// OutDim reports the output dimension of the last Linear layer.
func (p *PackedNetwork) OutDim() int {
	if p.prec == F32 {
		return p.p32.OutDim()
	}
	return p.p64.OutDim()
}

// InferVec runs one float64 feature vector through the pack into out
// (resized and overwritten), with the same concurrency contract and bitwise
// guarantee as PackedNetOf.InferInto: identical to Network.InferInto on a
// 1×d input, at either precision, allocating nothing in steady state.
func (p *PackedNetwork) InferVec(v []float64, out *Mat) {
	if p.prec == F32 {
		x32 := getMat[float32]()
		y32 := getMat[float32]()
		x32.Resize(1, len(v))
		for i, f := range v {
			x32.Data[i] = float32(f)
		}
		p.p32.InferInto(x32, y32)
		convertMatInto(out, y32)
		putMat(x32)
		putMat(y32)
		return
	}
	p.p64.InferVec(v, out)
}
