package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the minimum multiply-accumulate count at which a
// matrix kernel is split across the worker pool. Below it, goroutine
// hand-off costs more than the arithmetic it saves.
const parallelThreshold = 1 << 16

// minParallelRows is the minimum parallel-dimension size worth splitting:
// single-vector (1×d) passes always stay on the calling goroutine.
const minParallelRows = 4

// workerCount is the configured kernel parallelism (see SetWorkers).
var workerCount atomic.Int64

func init() {
	workerCount.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetWorkers sets how many goroutines the matrix kernels may use. n ≤ 1
// forces every kernel onto the serial path (useful for benchmarking the
// serial baseline and for debugging); the default is GOMAXPROCS.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	workerCount.Store(int64(n))
}

// Workers reports the configured kernel parallelism.
func Workers() int { return int(workerCount.Load()) }

// pool is the shared kernel worker pool, started lazily on the first
// parallel kernel call. Workers live for the life of the process; the pool
// is sized to GOMAXPROCS at first use.
var pool struct {
	once  sync.Once
	tasks chan func()
}

func ensurePool() {
	pool.once.Do(func() {
		pool.tasks = make(chan func())
		for i := 0; i < runtime.GOMAXPROCS(0); i++ {
			go func() {
				for f := range pool.tasks {
					f()
				}
			}()
		}
	})
}

// parallelRows runs f over row blocks covering [0, rows). When the work is
// large enough it fans the blocks out to the worker pool and waits; blocks
// the pool cannot accept immediately run on the calling goroutine, so the
// split never deadlocks even when many collectors saturate the pool
// concurrently. Each block is a contiguous row range and every row is
// processed exactly once, so any f whose rows are independent (or whose
// per-row accumulation order is internal to f) produces results identical
// to a single f(0, rows) call.
func parallelRows(rows, flops int, f func(lo, hi int)) {
	parallelRowsOf(rows, flops, f, func(f func(lo, hi int), lo, hi int) { f(lo, hi) })
}

// serialKernel reports whether a kernel over this many rows and
// multiply-accumulates runs entirely on the calling goroutine (the same
// split rule parallelRowsOf applies). Kernel call sites check it BEFORE
// constructing the dispatch func literal: inside a generic function such a
// literal captures its dictionary, and because parallelRowsOf's task
// closures make it escape, building one per call would heap-allocate even
// when the kernel never leaves the calling goroutine. Branching first keeps
// the serial path — the zero-alloc contract the engine tests pin — free of
// any closure construction.
func serialKernel(rows, flops int) bool {
	return Workers() <= 1 || rows < minParallelRows || flops < parallelThreshold
}

// parallelRowsOf is parallelRows with the kernel's operands threaded through
// an explicit argument instead of a closure. Because f can be a plain
// top-level function, the serial dispatch path (small work, or Workers() ≤ 1)
// performs no allocation at all — the property the zero-alloc training
// benchmarks assert. The parallel path still builds one task closure per
// block.
func parallelRowsOf[A any](rows, flops int, arg A, f func(arg A, lo, hi int)) {
	workers := Workers()
	if workers <= 1 || rows < minParallelRows || flops < parallelThreshold {
		f(arg, 0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	ensurePool()
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if hi == rows {
			// Run the final block on the calling goroutine so the caller
			// contributes instead of idling on the WaitGroup.
			f(arg, lo, hi)
			break
		}
		wg.Add(1)
		task := func(lo, hi int) func() {
			return func() {
				defer wg.Done()
				f(arg, lo, hi)
			}
		}(lo, hi)
		select {
		case pool.tasks <- task:
		default:
			task()
		}
	}
	wg.Wait()
}
