package nn

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// forEachGemvKernel runs fn under each gemv kernel configuration the host can
// execute: the portable panel loop always, the AVX2 vector kernel when the
// CPU has it. The hook is flipped before the test builds its packs (a pack
// captures its kernel at Pack time) and restored afterwards.
func forEachGemvKernel(t *testing.T, fn func(t *testing.T)) {
	t.Run("kernel=portable", func(t *testing.T) {
		prev := setAsmGemv(false)
		defer setAsmGemv(prev)
		fn(t)
	})
	if cpuAVX2FMA {
		t.Run("kernel=avx2fma", func(t *testing.T) {
			prev := setAsmGemv(true)
			defer setAsmGemv(prev)
			fn(t)
		})
	}
}

// packedTestNets builds the network zoo for the parity tests: widths below
// one panel, exact panel multiples, odd column edges, and a Tanh stack.
func packedTestNets[T Float]() map[string]*NetOf[T] {
	nets := map[string]*NetOf[T]{}
	for _, sizes := range [][]int{
		{7, 3},          // narrower than any panel: pure column-edge path
		{13, 16, 5},     // one full f32 panel, then an edge-only layer
		{13, 17, 7},     // odd widths: panel + edge in one layer
		{9, 32, 33, 11}, // two panels, panel+edge, edge
		{5, 64, 64, 24}, // wide enough for multiple panels at either precision
	} {
		rng := rand.New(rand.NewSource(int64(100 + len(sizes)*10 + sizes[len(sizes)-1])))
		nets[fmt.Sprint(sizes)] = NewMLPOf[T](rng, sizes...)
	}
	rng := rand.New(rand.NewSource(77))
	nets["tanh[8 19 6]"] = &NetOf[T]{Layers: []LayerOf[T]{
		NewLinearOf[T](8, 19, rng),
		&TanhOf[T]{},
		NewLinearOf[T](19, 6, rng),
	}}
	return nets
}

// TestPackedInferBitwise pins the shared-packing numerics contract: a packed
// inference matches the unpacked network bit for bit — on the reference
// engine for any batch shape, and on the blocked engine for the single-row
// serving shape (which blocked routes to the reference kernel) — under every
// gemv kernel the host can run.
func TestPackedInferBitwise(t *testing.T) {
	t.Run("f64", func(t *testing.T) { testPackedBitwise[float64](t) })
	t.Run("f32", func(t *testing.T) { testPackedBitwise[float32](t) })
}

func testPackedBitwise[T Float](t *testing.T) {
	forEachGemvKernel(t, func(t *testing.T) {
		for name, net := range packedTestNets[T]() {
			p := net.Pack()
			if p.InDim() != net.InDim() || p.OutDim() != net.OutDim() {
				t.Fatalf("%s: pack dims %dx%d, net dims %dx%d",
					name, p.InDim(), p.OutDim(), net.InDim(), net.OutDim())
			}
			rng := rand.New(rand.NewSource(9))
			for _, rows := range []int{1, 3, 17} {
				x := randMatOf[T](rows, net.InDim(), rng)
				var got, want MatOf[T]
				p.InferInto(x, &got)

				net.SetEngine(EngineReference)
				net.InferInto(x, &want)
				checkBitwise(t, fmt.Sprintf("%s rows=%d vs reference", name, rows),
					got.Data, want.Data)

				if rows == 1 {
					net.SetEngine(EngineBlocked)
					net.InferInto(x, &want)
					checkBitwise(t, fmt.Sprintf("%s rows=1 vs blocked", name),
						got.Data, want.Data)
				}
			}
		}
	})
}

// TestPackedNetworkInferVec checks the precision-erased wrapper at both
// precisions: float64 vector in, logits bitwise equal to Network.InferInto.
func TestPackedNetworkInferVec(t *testing.T) {
	for _, prec := range []Precision{F64, F32} {
		t.Run(prec.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			net := NewMLPAt(prec, rng, 13, 32, 7)
			p := net.Pack()
			x := randMatOf[float64](1, 13, rng)
			var got, want Mat
			p.InferVec(x.Data, &got)
			net.InferInto(x, &want)
			checkBitwise(t, "erased InferVec", got.Data, want.Data)
		})
	}
}

// TestPackedInferConcurrent drives one shared pack from many goroutines and
// checks every caller reads the same bits the sequential path produced: the
// pack is immutable, so concurrent Plan evaluations must never interfere.
// Run under -race this also proves the no-write contract.
func TestPackedInferConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewMLPOf[float64](rng, 13, 32, 32, 7)
	p := net.Pack()

	const callers = 8
	inputs := make([][]float64, callers)
	wants := make([][]float64, callers)
	for i := range inputs {
		x := randMatOf[float64](1, 13, rng)
		inputs[i] = x.Data
		var w MatOf[float64]
		p.InferVec(inputs[i], &w)
		wants[i] = append([]float64(nil), w.Data...)
	}

	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out MatOf[float64]
			for iter := 0; iter < 200; iter++ {
				p.InferVec(inputs[i], &out)
				for j, v := range out.Data {
					if v != wants[i][j] {
						errs <- fmt.Errorf("caller %d iter %d: out[%d]=%v want %v", i, iter, j, v, wants[i][j])
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPackedInferZeroAlloc asserts the serving hot path allocates nothing in
// steady state at either precision: the pack is built once, the caller's
// output buffer is reused, and intermediates come from pooled scratch.
func TestPackedInferZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(1)

	for _, prec := range []Precision{F64, F32} {
		t.Run(prec.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(19))
			net := NewMLPAt(prec, rng, 13, 64, 64, 7)
			p := net.Pack()
			x := make([]float64, 13)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			var out Mat
			p.InferVec(x, &out) // warm pools and size the output
			if n := testing.AllocsPerRun(200, func() {
				p.InferVec(x, &out)
			}); n != 0 {
				t.Fatalf("packed InferVec allocated %v per call, want 0", n)
			}
		})
	}
}
