package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The fused softmax/cross-entropy and Adam kernels promise more than the
// GEMM tolerance contract: every backend — reference, blocked portable,
// blocked vector — must agree BITWISE at both precisions (the fused forms
// reorder passes, never roundings). These tests assert exact bit equality,
// including the sign of zero.

// bitsOf returns the raw bit pattern of v at its own precision.
func bitsOf[T Float](v T) uint64 {
	if f, ok := any(v).(float32); ok {
		return uint64(math.Float32bits(f))
	}
	return math.Float64bits(float64(any(v).(float64)))
}

// checkBitwise fails unless got and want are identical bit for bit.
func checkBitwise[T Float](t *testing.T, op string, got, want []T) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", op, len(got), len(want))
	}
	for i := range want {
		if bitsOf(got[i]) != bitsOf(want[i]) {
			t.Fatalf("%s: element %d: got %v (%#x), want %v (%#x)",
				op, i, got[i], bitsOf(got[i]), want[i], bitsOf(want[i]))
		}
	}
}

// forEachAdamKernel runs f under every Adam kernel implementation available:
// the scalar loop always, and the vector kernels when the CPU has them.
func forEachAdamKernel(t *testing.T, f func(t *testing.T)) {
	t.Run("kernel=portable", func(t *testing.T) {
		prev := setAsmAdam(false)
		defer setAsmAdam(prev)
		f(t)
	})
	if cpuAVX2FMA {
		t.Run("kernel=avx2fma", func(t *testing.T) {
			prev := setAsmAdam(true)
			defer setAsmAdam(prev)
			f(t)
		})
	}
}

// softmaxXentCase builds one batch of logits/masks/actions/advantages with
// every edge the kernel dispatches on: ordinary rows, a fully masked-out
// row, a masked row whose logits are all -Inf (no finite masked logit), and
// an out-of-range action.
func softmaxXentCase[T Float](rows, cols int, rng *rand.Rand) (*MatOf[T], [][]bool, []int, []float64) {
	logits := randMatOf[T](rows, cols, rng)
	masks := make([][]bool, rows)
	actions := make([]int, rows)
	advs := make([]float64, rows)
	for i := 0; i < rows; i++ {
		mask := make([]bool, cols)
		valid := make([]int, 0, cols)
		for j := range mask {
			if rng.Intn(4) != 0 {
				mask[j] = true
				valid = append(valid, j)
			}
		}
		switch {
		case rows > 2 && i == rows-1:
			// All masked out.
			for j := range mask {
				mask[j] = false
			}
			actions[i] = -1
		case rows > 2 && i == rows-2:
			// Masked positions exist but no finite logit.
			row := logits.Row(i)
			for j := range row {
				row[j] = T(math.Inf(-1))
			}
			if len(valid) == 0 {
				mask[0] = true
				valid = append(valid, 0)
			}
			actions[i] = valid[rng.Intn(len(valid))]
		case len(valid) == 0:
			mask[0] = true
			actions[i] = 0
		default:
			actions[i] = valid[rng.Intn(len(valid))]
		}
		masks[i] = mask
		advs[i] = rng.NormFloat64() * 3
	}
	return logits, masks, actions, advs
}

// TestSoftmaxXentBitwise verifies that the blocked engine's fused softmax +
// policy-gradient kernel is bit-identical to the reference engine — which is
// itself the composed MaskedSoftmaxRowsInto + PolicyGradientInto sequence —
// at both precisions, across shapes and entropy settings.
func TestSoftmaxXentBitwise(t *testing.T) {
	t.Run("f64", func(t *testing.T) { testSoftmaxXentBitwise[float64](t) })
	t.Run("f32", func(t *testing.T) { testSoftmaxXentBitwise[float32](t) })
}

func testSoftmaxXentBitwise[T Float](t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := NewEngineOf[T](EngineReference)
	blk := NewEngineOf[T](EngineBlocked)
	shapes := []struct{ rows, cols int }{{1, 1}, {1, 9}, {5, 7}, {17, 3}, {33, 17}, {128, 24}}
	for _, ent := range []float64{0, 0.01, 0.5} {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("ent=%v/%dx%d", ent, sh.rows, sh.cols), func(t *testing.T) {
				logits, masks, actions, advs := softmaxXentCase[T](sh.rows, sh.cols, rng)

				// The reference engine must reproduce the composed helpers.
				wantP := MaskedSoftmaxRows(logits, masks)
				wantG := NewMatOf[T](sh.rows, sh.cols)
				for i := 0; i < sh.rows; i++ {
					PolicyGradientInto(wantG.Row(i), wantP.Row(i), masks[i], actions[i], advs[i], ent)
				}
				var probs, grad MatOf[T]
				ref.SoftmaxXent(logits, masks, actions, advs, ent, &probs, &grad)
				checkBitwise(t, "reference probs", probs.Data, wantP.Data)
				checkBitwise(t, "reference grad", grad.Data, wantG.Data)

				var probsB, gradB MatOf[T]
				blk.SoftmaxXent(logits, masks, actions, advs, ent, &probsB, &gradB)
				checkBitwise(t, "blocked probs", probsB.Data, wantP.Data)
				checkBitwise(t, "blocked grad", gradB.Data, wantG.Data)
			})
		}
	}
}

// TestAdamStepBitwise drives multi-step Adam state through every backend —
// reference scalar, blocked portable, blocked vector — and requires the
// weights and both moment buffers to stay bit-identical throughout, at both
// precisions, across lengths that cover every lane remainder.
func TestAdamStepBitwise(t *testing.T) {
	forEachAdamKernel(t, func(t *testing.T) {
		t.Run("f64", func(t *testing.T) { testAdamStepBitwise[float64](t) })
		t.Run("f32", func(t *testing.T) { testAdamStepBitwise[float32](t) })
	})
}

func testAdamStepBitwise[T Float](t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := NewEngineOf[T](EngineReference)
	blk := NewEngineOf[T](EngineBlocked)
	for _, n := range []int{1, 3, 4, 7, 8, 9, 31, 64, 257, 1000} {
		pRef, pBlk := make([]T, n), make([]T, n)
		gBuf := make([]T, n)
		mRef, mBlk := make([]T, n), make([]T, n)
		vRef, vBlk := make([]T, n), make([]T, n)
		fillUniform(pRef, rng)
		copy(pBlk, pRef)
		for step := 1; step <= 5; step++ {
			fillUniform(gBuf, rng)
			a := NewAdamArgs[T](step, 1e-3, 0.9, 0.999, 1e-8, 0.97)
			ref.AdamStep(pRef, gBuf, mRef, vRef, a)
			blk.AdamStep(pBlk, gBuf, mBlk, vBlk, a)
			checkBitwise(t, fmt.Sprintf("n=%d step=%d params", n, step), pBlk, pRef)
			checkBitwise(t, fmt.Sprintf("n=%d step=%d m", n, step), mBlk, mRef)
			checkBitwise(t, fmt.Sprintf("n=%d step=%d v", n, step), vBlk, vRef)
		}
	}
}

// TestStepNetEngineRoutedBitwise pins the seam migration itself: Adam's
// engine-routed StepNet must update a network bit-identically to the
// historical per-precision scalar loop (adamStepT), at both precisions and
// on both engines.
func TestStepNetEngineRoutedBitwise(t *testing.T) {
	forEachAdamKernel(t, func(t *testing.T) {
		for _, eng := range []Engine{EngineReference, EngineBlocked} {
			t.Run("engine="+eng.String(), func(t *testing.T) {
				t.Run("f64", func(t *testing.T) { testStepNetBitwise[float64](t, eng) })
				t.Run("f32", func(t *testing.T) { testStepNetBitwise[float32](t, eng) })
			})
		}
	})
}

func testStepNetBitwise[T Float](t *testing.T, eng Engine) {
	build := func() *NetOf[T] {
		rng := rand.New(rand.NewSource(23))
		return NewMLPOf[T](rng, 13, 32, 7)
	}
	netA, netB := build(), build()
	netA.SetEngine(eng)
	var wrapped *Network
	if _, ok := any(T(0)).(float32); ok {
		wrapped = WrapNet32(any(netA).(*NetOf[float32]))
	} else {
		wrapped = WrapNet64(any(netA).(*NetOf[float64]))
	}
	opt := NewAdam(1e-3)
	opt.Clip = 5

	// The legacy loop the routed path must match.
	mB := make(map[*ParamOf[T]][]T)
	vB := make(map[*ParamOf[T]][]T)

	rng := rand.New(rand.NewSource(29))
	for step := 1; step <= 4; step++ {
		for i, p := range netA.Params() {
			fillUniform(p.Grad, rng)
			copy(netB.Params()[i].Grad, p.Grad)
		}
		opt.StepNet(wrapped)
		adamStepT(mB, vB, netB.Params(), step, opt.LR, opt.Beta1, opt.Beta2, opt.Eps, opt.Clip)
		for i, p := range netA.Params() {
			checkBitwise(t, fmt.Sprintf("step %d param %d", step, i), p.Value, netB.Params()[i].Value)
		}
	}
}

// TestFusedKernelsZeroAlloc asserts the fused training kernels allocate
// nothing in steady state on either engine.
func TestFusedKernelsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(1)
	rng := rand.New(rand.NewSource(3))
	logits, masks, actions, advs := softmaxXentCase[float64](33, 17, rng)
	var probs, grad MatOf[float64]
	n := 129
	p, g, m, v := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	fillUniform(p, rng)
	fillUniform(g, rng)
	for _, eng := range []Engine{EngineReference, EngineBlocked} {
		e := NewEngineOf[float64](eng)
		e.SoftmaxXent(logits, masks, actions, advs, 0.01, &probs, &grad) // warm: size the buffers
		if allocs := testing.AllocsPerRun(20, func() {
			e.SoftmaxXent(logits, masks, actions, advs, 0.01, &probs, &grad)
		}); allocs != 0 {
			t.Errorf("engine %v SoftmaxXent: %v allocs/run, want 0", eng, allocs)
		}
		a := NewAdamArgs[float64](1, 1e-3, 0.9, 0.999, 1e-8, 1)
		if allocs := testing.AllocsPerRun(20, func() {
			e.AdamStep(p, g, m, v, a)
		}); allocs != 0 {
			t.Errorf("engine %v AdamStep: %v allocs/run, want 0", eng, allocs)
		}
	}
}
