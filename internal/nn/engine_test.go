package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// engineShapes is the parity sweep: degenerate 1×1, single-row shapes that
// must take the bitwise reference fallback, shapes below the register tile,
// ragged shapes that exercise every edge path (trailing rows, trailing
// columns, both), tall-skinny and k=1 extremes, a k that crosses the KC
// block boundary, and full multiples of the tile.
var engineShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 64, 7},    // single row: blocked falls back to the reference kernel
	{3, 5, 2},     // below the MR×NR register tile
	{4, 8, 4},     // exact tile multiples
	{5, 9, 6},     // one trailing row and two trailing columns
	{37, 53, 29},  // ragged everywhere
	{200, 3, 2},   // tall-skinny
	{64, 1, 64},   // k = 1
	{33, 300, 17}, // k crosses the KC=256 block boundary
	{64, 64, 64},
}

// engineTol returns the PR 4 tolerance-parity bound for T: blocked results
// may differ from the reference only by accumulation-order rounding.
func engineTol[T Float]() float64 {
	if _, ok := any(T(0)).(float32); ok {
		return 1e-4
	}
	return 1e-12
}

func fillUniform[T Float](data []T, rng *rand.Rand) {
	for i := range data {
		data[i] = T(rng.Float64()*2 - 1)
	}
}

func randMatOf[T Float](r, c int, rng *rand.Rand) *MatOf[T] {
	m := NewMatOf[T](r, c)
	fillUniform(m.Data, rng)
	return m
}

// checkClose fails unless got matches want element-wise within relative
// tolerance tol (absolute for magnitudes below 1).
func checkClose[T Float](t *testing.T, op string, got, want []T, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", op, len(got), len(want))
	}
	for i := range want {
		g, w := float64(got[i]), float64(want[i])
		if g == w {
			continue
		}
		denom := math.Max(math.Abs(w), 1)
		if rel := math.Abs(g-w) / denom; rel > tol || math.IsNaN(g) {
			t.Fatalf("%s: element %d: got %v, want %v (rel err %.3g > %.3g)", op, i, g, w, rel, tol)
		}
	}
}

// forEachBlockedKernel runs f under every blocked microkernel implementation
// available here: the portable Go tiles always, and the AVX2+FMA vector
// kernels when the CPU has them (the setting is restored afterwards).
func forEachBlockedKernel(t *testing.T, f func(t *testing.T)) {
	t.Run("kernel=portable", func(t *testing.T) {
		prev := setAsmGemm(false)
		defer setAsmGemm(prev)
		f(t)
	})
	if cpuAVX2FMA {
		t.Run("kernel=avx2fma", func(t *testing.T) {
			prev := setAsmGemm(true)
			defer setAsmGemm(prev)
			f(t)
		})
	}
}

// TestEngineMatMulMatchesRef is the engine parity harness: every EngineOf
// method, over the full shape sweep, at both precisions, under serial and
// parallel dispatch and both microkernel implementations, comparing the
// blocked backend against the reference backend within the tolerance-parity
// bounds.
func TestEngineMatMulMatchesRef(t *testing.T) {
	forEachBlockedKernel(t, func(t *testing.T) {
		t.Run("f64", func(t *testing.T) { testEngineParity[float64](t) })
		t.Run("f32", func(t *testing.T) { testEngineParity[float32](t) })
	})
}

func testEngineParity[T Float](t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	ref := NewEngineOf[T](EngineReference)
	blk := NewEngineOf[T](EngineBlocked)
	if ref.Kind() != EngineReference || blk.Kind() != EngineBlocked {
		t.Fatalf("engine kinds: ref %v, blocked %v", ref.Kind(), blk.Kind())
	}
	tol := engineTol[T]()
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		for si, sh := range engineShapes {
			m, k, n := sh.m, sh.k, sh.n
			t.Run(fmt.Sprintf("w%d/%dx%dx%d", workers, m, k, n), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(100*workers + si)))

				// MatMul: out = a·b.
				a, b := randMatOf[T](m, k, rng), randMatOf[T](k, n, rng)
				want, got := NewMatOf[T](m, n), NewMatOf[T](m, n)
				ref.MatMul(a, b, want)
				blk.MatMul(a, b, got)
				checkClose(t, "MatMul", got.Data, want.Data, tol)

				// MatMulATB: out (+)= aᵀ·b with a (k×m), b (k×n).
				at, bt := randMatOf[T](k, m, rng), randMatOf[T](k, n, rng)
				seed := randMatOf[T](m, n, rng)
				for _, accum := range []bool{false, true} {
					copy(want.Data, seed.Data)
					copy(got.Data, seed.Data)
					ref.MatMulATB(at, bt, want, accum)
					blk.MatMulATB(at, bt, got, accum)
					checkClose(t, fmt.Sprintf("MatMulATB(accum=%v)", accum), got.Data, want.Data, tol)
				}

				// MatMulABT: out = a·bᵀ with b (n×k).
				bT := randMatOf[T](n, k, rng)
				ref.MatMulABT(a, bT, want)
				blk.MatMulABT(a, bT, got)
				checkClose(t, "MatMulABT", got.Data, want.Data, tol)

				// LinearForward: out = a·b + bias.
				bias := make([]T, n)
				fillUniform(bias, rng)
				ref.LinearForward(a, b, bias, want)
				blk.LinearForward(a, b, bias, got)
				checkClose(t, "LinearForward", got.Data, want.Data, tol)

				// LinearBackward: dW += xᵀ·dout, dB += Σrows dout, dx = dout·wᵀ,
				// starting both engines from the same nonzero accumulators.
				dout := randMatOf[T](m, n, rng)
				dW0 := make([]T, k*n)
				dB0 := make([]T, n)
				fillUniform(dW0, rng)
				fillUniform(dB0, rng)
				dWr, dWb := append([]T(nil), dW0...), append([]T(nil), dW0...)
				dBr, dBb := append([]T(nil), dB0...), append([]T(nil), dB0...)
				dxr, dxb := NewMatOf[T](m, k), NewMatOf[T](m, k)
				ref.LinearBackward(a, dout, b, dWr, dBr, dxr)
				blk.LinearBackward(a, dout, b, dWb, dBb, dxb)
				checkClose(t, "LinearBackward dW", dWb, dWr, tol)
				checkClose(t, "LinearBackward dB", dBb, dBr, tol)
				checkClose(t, "LinearBackward dx", dxb.Data, dxr.Data, tol)
			})
		}
	}
}

// TestEngineMatMul512 pins parity on the full 512×512×512 shape — two k
// blocks deep, every tile path saturated — at both precisions.
func TestEngineMatMul512(t *testing.T) {
	if testing.Short() {
		t.Skip("large shape")
	}
	old := Workers()
	SetWorkers(1)
	defer SetWorkers(old)
	forEachBlockedKernel(t, func(t *testing.T) {
		t.Run("f64", func(t *testing.T) { testEngine512[float64](t) })
		t.Run("f32", func(t *testing.T) { testEngine512[float32](t) })
	})
}

func testEngine512[T Float](t *testing.T) {
	const d = 512
	rng := rand.New(rand.NewSource(11))
	a, b := randMatOf[T](d, d, rng), randMatOf[T](d, d, rng)
	want, got := NewMatOf[T](d, d), NewMatOf[T](d, d)
	NewEngineOf[T](EngineReference).MatMul(a, b, want)
	NewEngineOf[T](EngineBlocked).MatMul(a, b, got)
	// Relative error scales with the summation length; √k·ε is the usual
	// random-walk bound and k=512 stays far inside the PR 4 budgets.
	checkClose(t, "MatMul 512³", got.Data, want.Data, engineTol[T]())
}

// TestBlockedDeterministicAcrossWorkers: the blocked kernels' k-blocking is a
// pure function of the shapes, so results are bitwise identical no matter how
// rows are split across workers.
func TestBlockedDeterministicAcrossWorkers(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	forEachBlockedKernel(t, func(t *testing.T) {
		eng := NewEngineOf[float64](EngineBlocked)
		rng := rand.New(rand.NewSource(21))
		// 37×29 makes worker chunks misalign the 4-row vector tiles (rows
		// covered by the 4-row kernel in one split run the 1-row kernel in
		// another) and leaves a scalar column edge — both must round
		// identically for the split to be invisible.
		a, b := randMatOf[float64](37, 300, rng), randMatOf[float64](300, 29, rng)
		serial, parallel := NewMatOf[float64](37, 29), NewMatOf[float64](37, 29)
		SetWorkers(1)
		eng.MatMul(a, b, serial)
		SetWorkers(4)
		eng.MatMul(a, b, parallel)
		for i := range serial.Data {
			if serial.Data[i] != parallel.Data[i] {
				t.Fatalf("element %d: serial %v != parallel %v", i, serial.Data[i], parallel.Data[i])
			}
		}
	})
}

// TestEngineSingleRowBitwiseIdentical: 1×d products — the shape of greedy
// rollouts and per-sample inference — take the blocked engine's reference
// fallback and must match the reference engine bit for bit. This is the
// kernel-level fact behind the plan-equivalence property (a reference-trained
// policy plans identically under either engine).
func TestEngineSingleRowBitwiseIdentical(t *testing.T) {
	ref := NewEngineOf[float64](EngineReference)
	blk := NewEngineOf[float64](EngineBlocked)
	rng := rand.New(rand.NewSource(31))
	x, w := randMatOf[float64](1, 384, rng), randMatOf[float64](384, 96, rng)
	bias := make([]float64, 96)
	fillUniform(bias, rng)
	want, got := NewMatOf[float64](1, 96), NewMatOf[float64](1, 96)
	ref.LinearForward(x, w, bias, want)
	blk.LinearForward(x, w, bias, got)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("element %d: reference %v != blocked %v", i, want.Data[i], got.Data[i])
		}
	}
}

// TestNetEngineParity: the same weights forwarded under each engine agree
// within tolerance at the network level, and engine selection survives
// Clone/CloneForInference/ConvertTo.
func TestNetEngineParity(t *testing.T) {
	net := NewMLPOf[float64](rand.New(rand.NewSource(41)), 24, 48, 32, 10)
	blkNet := net.Clone()
	blkNet.SetEngine(EngineBlocked)
	if got := blkNet.Engine(); got != EngineBlocked {
		t.Fatalf("SetEngine(blocked) then Engine() = %v", got)
	}
	if got := blkNet.Clone().Engine(); got != EngineBlocked {
		t.Fatalf("Clone dropped the engine: %v", got)
	}
	if got := blkNet.CloneForInference().Engine(); got != EngineBlocked {
		t.Fatalf("CloneForInference dropped the engine: %v", got)
	}

	rng := rand.New(rand.NewSource(42))
	x := randMatOf[float64](16, 24, rng)
	want := net.Forward(x).Clone()
	got := blkNet.Forward(x)
	checkClose(t, "Forward", got.Data, want.Data, 1e-12)

	out := &MatOf[float64]{}
	blkNet.InferInto(x, out)
	checkClose(t, "InferInto", out.Data, got.Data, 0)
}

// TestEngineKernelsZeroAlloc: every engine kernel is allocation-free in
// steady state — scratch comes from pools, dispatch builds no closures.
func TestEngineKernelsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless under -race")
	}
	old := Workers()
	SetWorkers(1)
	defer SetWorkers(old)
	rng := rand.New(rand.NewSource(51))
	a, b := randMatOf[float64](64, 80, rng), randMatOf[float64](80, 48, rng)
	bT := randMatOf[float64](48, 80, rng)
	at := randMatOf[float64](80, 64, rng)
	out := NewMatOf[float64](64, 48)
	forEachBlockedKernel(t, func(t *testing.T) {
		testEngineKernelsZeroAlloc(t, rng, a, b, bT, at, out)
	})
}

func testEngineKernelsZeroAlloc(t *testing.T, rng *rand.Rand, a, b, bT, at, out *MatOf[float64]) {
	for _, e := range []Engine{EngineReference, EngineBlocked} {
		eng := NewEngineOf[float64](e)
		dout := randMatOf[float64](64, 48, rng)
		dW := make([]float64, 80*48)
		dB := make([]float64, 48)
		dxm := NewMatOf[float64](64, 80)
		bias := make([]float64, 48)
		run := map[string]func(){
			"MatMul":         func() { eng.MatMul(a, b, out) },
			"MatMulATB":      func() { eng.MatMulATB(at, b, out, true) },
			"MatMulABT":      func() { eng.MatMulABT(a, bT, out) },
			"LinearForward":  func() { eng.LinearForward(a, b, bias, out) },
			"LinearBackward": func() { eng.LinearBackward(a, dout, b, dW, dB, dxm) },
		}
		for name, f := range run {
			f() // warm the scratch pools
			if allocs := testing.AllocsPerRun(50, f); allocs != 0 {
				t.Errorf("%s/%s: %.1f allocs/op, want 0", e, name, allocs)
			}
		}
	}
}

// TestForwardBackwardZeroAlloc: a full batched forward/backward pass through
// an MLP allocates nothing in steady state under either engine.
func TestForwardBackwardZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless under -race")
	}
	old := Workers()
	SetWorkers(1)
	defer SetWorkers(old)
	rng := rand.New(rand.NewSource(61))
	for _, e := range []Engine{EngineReference, EngineBlocked} {
		net := NewMLPOf[float64](rng, 24, 64, 32, 8)
		net.SetEngine(e)
		x := randMatOf[float64](16, 24, rng)
		dout := randMatOf[float64](16, 8, rng)
		step := func() {
			net.Forward(x)
			net.ZeroGrad()
			net.Backward(dout)
		}
		step() // first pass sizes the per-layer buffers
		if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
			t.Errorf("%s: forward/backward %.1f allocs/op, want 0", e, allocs)
		}
	}
}

// TestInferIntoZeroAlloc: the pooled inference path allocates nothing in
// steady state.
func TestInferIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless under -race")
	}
	old := Workers()
	SetWorkers(1)
	defer SetWorkers(old)
	rng := rand.New(rand.NewSource(71))
	for _, e := range []Engine{EngineReference, EngineBlocked} {
		net := NewMLPOf[float64](rng, 24, 64, 8)
		net.SetEngine(e)
		x := randMatOf[float64](1, 24, rng)
		out := &MatOf[float64]{}
		net.InferInto(x, out) // warm the infer scratch pool
		if allocs := testing.AllocsPerRun(100, func() { net.InferInto(x, out) }); allocs != 0 {
			t.Errorf("%s: InferInto %.1f allocs/op, want 0", e, allocs)
		}
	}
}

// BenchmarkEngineMatMul sweeps both engines over square matmuls at both
// precisions, single-threaded (the acceptance metric is per-core kernel
// throughput, not pool scaling), reporting GFLOP/s and allocs. On CPUs with
// the vector kernels, "blocked" is the AVX2+FMA path and an extra
// "blocked-portable" variant pins the generic Go tiles' throughput; on CPUs
// with AVX512F a "blocked-avx512" variant runs the zmm tiles (bitwise
// identical to "blocked", so the GFLOP/s delta is the whole story).
func BenchmarkEngineMatMul(b *testing.B) {
	type variant struct {
		name   string
		e      Engine
		asm    bool
		asm512 bool
	}
	variants := []variant{
		{"reference", EngineReference, cpuAVX2FMA, false},
		{"blocked", EngineBlocked, cpuAVX2FMA, false},
	}
	if cpuAVX2FMA {
		variants = append(variants, variant{"blocked-portable", EngineBlocked, false, false})
	}
	if cpuAVX512F {
		variants = append(variants, variant{"blocked-avx512", EngineBlocked, true, true})
	}
	shapes := []int{64, 128, 256, 512}
	for _, d := range shapes {
		for _, v := range variants {
			b.Run(fmt.Sprintf("f64/%dx%dx%d/%s", d, d, d, v.name), func(b *testing.B) {
				benchEngineMatMul[float64](b, v.e, v.asm, v.asm512, d)
			})
			b.Run(fmt.Sprintf("f32/%dx%dx%d/%s", d, d, d, v.name), func(b *testing.B) {
				benchEngineMatMul[float32](b, v.e, v.asm, v.asm512, d)
			})
		}
	}
}

func benchEngineMatMul[T Float](b *testing.B, e Engine, asm, asm512 bool, d int) {
	old := Workers()
	SetWorkers(1)
	defer SetWorkers(old)
	prevAsm := setAsmGemm(asm)
	defer setAsmGemm(prevAsm)
	prev512 := setAsmGemm512(asm512)
	defer setAsmGemm512(prev512)
	eng := NewEngineOf[T](e)
	rng := rand.New(rand.NewSource(81))
	a, x := randMatOf[T](d, d, rng), randMatOf[T](d, d, rng)
	out := NewMatOf[T](d, d)
	eng.MatMul(a, x, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.MatMul(a, x, out)
	}
	flops := 2 * float64(d) * float64(d) * float64(d)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}
