//go:build amd64

package nn

import "os"

// AVX-512 microkernels for the blocked engine's a·b path: 4×32 f32 and 4×16
// f64 register tiles (gemm512_amd64.s), doubling the column width of the
// AVX2 kernels. They are bitwise identical to the AVX2 path by construction:
// each output element still folds its products in ascending k order with one
// FMA per step, and the FMA-covered column region is kept EXACTLY the AVX2
// path's (n − n%16 for f32, n − n%8 for f64) by cascading zmm panels → one
// ymm mid panel → the shared scalar column edge. A column that the AVX2 path
// computes with FMA is never demoted to the scalar edge and vice versa, so
// flipping the knob never changes a single bit of any result, and worker-row
// splits stay invisible exactly as before.
//
// Wide vectors can downclock some server parts, so the kernels are
// frequency-gated: runtime detection (AVX512F with OS-managed zmm/opmask
// state) arms them, but they only run when HANDSFREE_AVX512=1/on opts in.
// Default is off even on capable hardware.

const (
	// asmNR512F32 and asmNR512F64 are the zmm panel widths: two zmm registers
	// of columns per k step at each precision.
	asmNR512F32 = 32
	asmNR512F64 = 16
)

// cpuAVX512F reports whether the CPU and OS support the zmm kernels:
// AVX512F on top of the AVX2+FMA baseline, with XCR0 enabling opmask, upper
// zmm, and hi16-zmm state alongside XMM/YMM.
var cpuAVX512F = detectAVX512F()

func detectAVX512F() bool {
	if !cpuAVX2FMA {
		return false
	}
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	if b&(1<<16) == 0 { // AVX512F
		return false
	}
	lo, _ := xgetbv()
	return lo&0xE6 == 0xE6
}

// asmGemm512Enabled routes gemmBlockedAsm through the zmm kernels. Unlike
// the AVX2 gate it defaults off — detection only arms it; the
// HANDSFREE_AVX512 knob pulls the trigger.
var asmGemm512Enabled = cpuAVX512F && avx512Requested()

func avx512Requested() bool {
	switch os.Getenv("HANDSFREE_AVX512") {
	case "1", "on", "true":
		return true
	}
	return false
}

// setAsmGemm512 is a test hook mirroring setAsmGemm for the zmm kernels
// (enabling is a no-op on CPUs without AVX512F).
func setAsmGemm512(on bool) bool {
	prev := asmGemm512Enabled
	asmGemm512Enabled = on && cpuAVX512F
	return prev
}

// Microkernels (gemm512_amd64.s), the zmm analogues of the AVX2 set: each
// accumulates out[r][0:NR] += Σ_k a_r[k]·bp[k·NR : k·NR+NR] for kc steps of
// one packed panel, ascending k, one FMA per element per step.
//
//go:noescape
func gemm4x32f32(kc int, a0, a1, a2, a3, bp, o0, o1, o2, o3 *float32)

//go:noescape
func gemm1x32f32(kc int, a0, bp, o0 *float32)

//go:noescape
func gemm4x16f64(kc int, a0, a1, a2, a3, bp, o0, o1, o2, o3 *float64)

//go:noescape
func gemm1x16f64(kc int, a0, bp, o0 *float64)

// packBMid packs the single ymm-width mid panel — columns [np512, np) of
// B[kc0:kc1] — after the zmm panels, at offset np512·kc in bp. np−np512 is 0
// or one AVX2 panel width by construction.
func packBMid[T Float](b *MatOf[T], kc0, kc1, np512, np int, bp []T) {
	w := np - np512
	idx := np512 * (kc1 - kc0)
	for k := kc0; k < kc1; k++ {
		copy(bp[idx:idx+w], b.Row(k)[np512:np])
		idx += w
	}
}

func gemmBlocked512F32(a, b, out *MatOf[float32]) {
	m, k, n := a.Rows, a.Cols, b.Cols
	np := n - n%asmNRF32
	bpv := getVec[float32](min(blockedKC, k) * np)
	bp := *bpv
	for kc0 := 0; kc0 < k; kc0 += blockedKC {
		kc1 := min(kc0+blockedKC, k)
		np512 := n - n%asmNR512F32
		packBPanelsN(b, kc0, kc1, np512, asmNR512F32, bp)
		if np > np512 {
			packBMid(b, kc0, kc1, np512, np, bp)
		}
		g := gemmAsmArgsF32{a: a, b: b, out: out, bp: bp, kc0: kc0, kc1: kc1}
		if serialKernel(m, m*(kc1-kc0)*n) {
			gemmAsm512RowsF32(g, 0, m)
			continue
		}
		parallelRowsOf(m, m*(kc1-kc0)*n, g, gemmAsm512RowsF32)
	}
	putVec(bpv)
}

func gemmBlocked512F64(a, b, out *MatOf[float64]) {
	m, k, n := a.Rows, a.Cols, b.Cols
	np := n - n%asmNRF64
	bpv := getVec[float64](min(blockedKC, k) * np)
	bp := *bpv
	for kc0 := 0; kc0 < k; kc0 += blockedKC {
		kc1 := min(kc0+blockedKC, k)
		np512 := n - n%asmNR512F64
		packBPanelsN(b, kc0, kc1, np512, asmNR512F64, bp)
		if np > np512 {
			packBMid(b, kc0, kc1, np512, np, bp)
		}
		g := gemmAsmArgsF64{a: a, b: b, out: out, bp: bp, kc0: kc0, kc1: kc1}
		if serialKernel(m, m*(kc1-kc0)*n) {
			gemmAsm512RowsF64(g, 0, m)
			continue
		}
		parallelRowsOf(m, m*(kc1-kc0)*n, g, gemmAsm512RowsF64)
	}
	putVec(bpv)
}

// gemmAsm512RowsF32 runs rows [lo, hi) of one packed k block: 4-row zmm
// tiles over the 32-wide panels, the AVX2 4×16 kernel for the one mid panel
// (columns the AVX2 path also covers with FMA), the 1-row variants for the
// row remainder, and the shared scalar column edge.
func gemmAsm512RowsF32(g gemmAsmArgsF32, lo, hi int) {
	kc := g.kc1 - g.kc0
	n := g.out.Cols
	np := n - n%asmNRF32
	np512 := n - n%asmNR512F32
	mid := np512 * kc
	i := lo
	for ; i+asmMR <= hi; i += asmMR {
		a0 := g.a.Row(i)[g.kc0:g.kc1]
		a1 := g.a.Row(i + 1)[g.kc0:g.kc1]
		a2 := g.a.Row(i + 2)[g.kc0:g.kc1]
		a3 := g.a.Row(i + 3)[g.kc0:g.kc1]
		o0, o1 := g.out.Row(i), g.out.Row(i+1)
		o2, o3 := g.out.Row(i+2), g.out.Row(i+3)
		for jp := 0; jp < np512; jp += asmNR512F32 {
			gemm4x32f32(kc, &a0[0], &a1[0], &a2[0], &a3[0],
				&g.bp[(jp/asmNR512F32)*kc*asmNR512F32],
				&o0[jp], &o1[jp], &o2[jp], &o3[jp])
		}
		if np > np512 {
			gemm4x16f32(kc, &a0[0], &a1[0], &a2[0], &a3[0], &g.bp[mid],
				&o0[np512], &o1[np512], &o2[np512], &o3[np512])
		}
	}
	for ; i < hi; i++ {
		arow := g.a.Row(i)[g.kc0:g.kc1]
		orow := g.out.Row(i)
		for jp := 0; jp < np512; jp += asmNR512F32 {
			gemm1x32f32(kc, &arow[0], &g.bp[(jp/asmNR512F32)*kc*asmNR512F32], &orow[jp])
		}
		if np > np512 {
			gemm1x16f32(kc, &arow[0], &g.bp[mid], &orow[np512])
		}
	}
	for i = lo; i < hi; i++ {
		gemmColEdgeRow(g.a, g.b, g.kc0, g.kc1, g.out, i, np)
	}
}

func gemmAsm512RowsF64(g gemmAsmArgsF64, lo, hi int) {
	kc := g.kc1 - g.kc0
	n := g.out.Cols
	np := n - n%asmNRF64
	np512 := n - n%asmNR512F64
	mid := np512 * kc
	i := lo
	for ; i+asmMR <= hi; i += asmMR {
		a0 := g.a.Row(i)[g.kc0:g.kc1]
		a1 := g.a.Row(i + 1)[g.kc0:g.kc1]
		a2 := g.a.Row(i + 2)[g.kc0:g.kc1]
		a3 := g.a.Row(i + 3)[g.kc0:g.kc1]
		o0, o1 := g.out.Row(i), g.out.Row(i+1)
		o2, o3 := g.out.Row(i+2), g.out.Row(i+3)
		for jp := 0; jp < np512; jp += asmNR512F64 {
			gemm4x16f64(kc, &a0[0], &a1[0], &a2[0], &a3[0],
				&g.bp[(jp/asmNR512F64)*kc*asmNR512F64],
				&o0[jp], &o1[jp], &o2[jp], &o3[jp])
		}
		if np > np512 {
			gemm4x8f64(kc, &a0[0], &a1[0], &a2[0], &a3[0], &g.bp[mid],
				&o0[np512], &o1[np512], &o2[np512], &o3[np512])
		}
	}
	for ; i < hi; i++ {
		arow := g.a.Row(i)[g.kc0:g.kc1]
		orow := g.out.Row(i)
		for jp := 0; jp < np512; jp += asmNR512F64 {
			gemm1x16f64(kc, &arow[0], &g.bp[(jp/asmNR512F64)*kc*asmNR512F64], &orow[jp])
		}
		if np > np512 {
			gemm1x8f64(kc, &arow[0], &g.bp[mid], &orow[np512])
		}
	}
	for i = lo; i < hi; i++ {
		gemmColEdgeRow(g.a, g.b, g.kc0, g.kc1, g.out, i, np)
	}
}
