package datagen

import (
	"testing"

	"handsfree/internal/query"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, Scale: 0.05, HistogramBuckets: 16, MCVs: 4}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.Store.Table("cast_info")
	tb, _ := b.Store.Table("cast_info")
	ca, _ := ta.Column("movie_id")
	cb, _ := tb.Column("movie_id")
	if len(ca) != len(cb) {
		t.Fatalf("lengths differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("row %d differs: %d vs %d", i, ca[i], cb[i])
		}
	}
}

func TestGenerateSchemaComplete(t *testing.T) {
	db, err := Generate(Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if n := db.Catalog.NumTables(); n != 21 {
		t.Fatalf("generated %d tables, want 21 (JOB schema)", n)
	}
	// Every catalog table must have matching storage and stats with equal
	// row counts, and every column must exist in all three.
	for _, name := range db.Catalog.TableNames() {
		ct := db.Catalog.MustTable(name)
		st, err := db.Store.Table(name)
		if err != nil {
			t.Fatalf("no storage for %s", name)
		}
		if int64(st.N) != ct.Rows {
			t.Fatalf("%s: catalog rows %d vs storage %d", name, ct.Rows, st.N)
		}
		ts, ok := db.Stats.Tables[name]
		if !ok {
			t.Fatalf("no stats for %s", name)
		}
		if ts.Rows != ct.Rows {
			t.Fatalf("%s: catalog rows %d vs stats %d", name, ct.Rows, ts.Rows)
		}
		for _, col := range ct.Columns {
			if _, err := st.Column(col.Name); err != nil {
				t.Fatalf("%s.%s missing from storage", name, col.Name)
			}
			if _, ok := ts.Columns[col.Name]; !ok {
				t.Fatalf("%s.%s missing from stats", name, col.Name)
			}
		}
	}
}

func TestFKValuesInParentDomain(t *testing.T) {
	db, err := Generate(Config{Seed: 2, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, fk := range db.Catalog.FKs {
		child, _ := db.Store.Table(fk.FromTable)
		parent := db.Catalog.MustTable(fk.ToTable)
		vals, err := child.Column(fk.FromColumn)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if v < 0 || v >= parent.Rows {
				t.Fatalf("%s.%s[%d] = %d outside parent %s domain [0,%d)",
					fk.FromTable, fk.FromColumn, i, v, fk.ToTable, parent.Rows)
			}
		}
	}
}

func TestJoinGraphConnected(t *testing.T) {
	db, err := Generate(Config{Seed: 3, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// BFS from title must reach every table.
	seen := map[string]bool{"title": true}
	frontier := []string{"title"}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, n := range db.Catalog.Neighbors(cur) {
			if !seen[n] {
				seen[n] = true
				frontier = append(frontier, n)
			}
		}
	}
	for _, name := range db.Catalog.TableNames() {
		if !seen[name] {
			t.Fatalf("table %s unreachable from title in the FK graph", name)
		}
	}
}

func TestScaleControlsRowCounts(t *testing.T) {
	smallDB, err := Generate(Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	bigDB, err := Generate(Config{Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	small := smallDB.Catalog.MustTable("cast_info").Rows
	big := bigDB.Catalog.MustTable("cast_info").Rows
	if big != 2*small {
		t.Fatalf("scale 0.1 rows = %d, want double of %d", big, small)
	}
}

func TestRejectNonPositiveScale(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, Scale: 0}); err == nil {
		t.Fatal("scale 0 accepted")
	}
}

func TestGeneratedStatsUsable(t *testing.T) {
	db, err := Generate(Config{Seed: 4, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := db.Stats.Column("title", "production_year")
	if err != nil {
		t.Fatal(err)
	}
	sel := cs.Hist.Selectivity(query.Lt, 65)
	if sel <= 0 || sel >= 1 {
		t.Fatalf("selectivity of year<65 = %v, want in (0,1)", sel)
	}
}
