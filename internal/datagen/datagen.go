// Package datagen deterministically generates the synthetic IMDB-like
// database ("JOB-like": same star-with-satellites join-graph shape as the
// Join Order Benchmark) used throughout the reproduction: the catalog, the
// columnar data, and the analyzed statistics.
//
// Value distributions are deliberately skewed (Zipf foreign keys, skewed
// attributes) so that histograms are informative but imperfect, mirroring
// the estimation environment of the paper's experiments.
package datagen

import (
	"fmt"
	"math/rand"

	"handsfree/internal/catalog"
	"handsfree/internal/stats"
	"handsfree/internal/storage"
)

// Config controls database generation.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64
	// Scale multiplies every table's base row count (1.0 ≈ 400k rows total).
	Scale float64
	// HistogramBuckets and MCVs control statistics resolution.
	HistogramBuckets int
	MCVs             int
}

// DefaultConfig returns the configuration used by the experiments:
// scale 1.0, 64-bucket histograms with 8 MCVs.
func DefaultConfig() Config {
	return Config{Seed: 1, Scale: 1.0, HistogramBuckets: 64, MCVs: 8}
}

// Database bundles everything generation produces.
type Database struct {
	Catalog *catalog.Catalog
	Store   *storage.DB
	Stats   *stats.Stats
}

// colSpec describes one generated attribute column.
type colSpec struct {
	name     string
	distinct int64   // domain size (values 0..distinct-1)
	skew     float64 // zipf s parameter; 0 = uniform
}

// tableSpec describes one generated table.
type tableSpec struct {
	name string
	rows int64 // at scale 1.0
	cols []colSpec
	// fks maps FK column name → referenced table (whose id is the PK).
	fks map[string]string
	// fkSkew gives Zipf skew for FK value distribution.
	fkSkew float64
	// indexFKs lists FK columns that receive a B-tree index.
	indexFKs []string
	// hashAttrs lists attribute columns that receive a hash index
	// (equality lookups only — exercises the hash access path).
	hashAttrs []string
}

// jobSchema returns the JOB-like schema: the IMDB table names and FK graph,
// scaled down. title is the hub; cast_info/movie_info/movie_keyword/… are
// the large fact satellites; *_type tables are tiny dimensions.
func jobSchema() []tableSpec {
	return []tableSpec{
		{name: "kind_type", rows: 7, cols: []colSpec{{"kind", 7, 0}}},
		{name: "info_type", rows: 110, cols: []colSpec{{"info", 110, 0}}},
		{name: "role_type", rows: 12, cols: []colSpec{{"role", 12, 0}}},
		{name: "link_type", rows: 18, cols: []colSpec{{"link", 18, 0}}},
		{name: "company_type", rows: 4, cols: []colSpec{{"kind", 4, 0}}},
		{name: "comp_cast_type", rows: 4, cols: []colSpec{{"kind", 4, 0}}},
		{name: "company_name", rows: 4000, cols: []colSpec{
			{"country_code", 120, 1.5}, {"name_hash", 4000, 0},
		}, hashAttrs: []string{"country_code"}},
		{name: "keyword", rows: 5000, cols: []colSpec{{"keyword_hash", 5000, 0}}},
		{name: "char_name", rows: 15000, cols: []colSpec{{"name_hash", 15000, 0}}},
		{name: "name", rows: 30000, cols: []colSpec{
			{"gender", 3, 1.2}, {"name_hash", 30000, 0},
		}, hashAttrs: []string{"gender"}},
		{name: "title", rows: 25000,
			cols: []colSpec{
				{"production_year", 130, 1.4}, // ~1890–2019, recent skew
				{"title_hash", 25000, 0},
				{"season_nr", 40, 2.0},
			},
			fks:      map[string]string{"kind_id": "kind_type"},
			fkSkew:   1.3,
			indexFKs: []string{"kind_id"},
		},
		{name: "aka_title", rows: 8000,
			cols:     []colSpec{{"title_hash", 8000, 0}},
			fks:      map[string]string{"movie_id": "title"},
			fkSkew:   1.4,
			indexFKs: []string{"movie_id"},
		},
		{name: "aka_name", rows: 10000,
			cols:     []colSpec{{"name_hash", 10000, 0}},
			fks:      map[string]string{"person_id": "name"},
			fkSkew:   1.4,
			indexFKs: []string{"person_id"},
		},
		{name: "movie_link", rows: 6000,
			fks:      map[string]string{"movie_id": "title", "linked_movie_id": "title", "link_type_id": "link_type"},
			fkSkew:   1.2,
			indexFKs: []string{"movie_id"},
		},
		{name: "complete_cast", rows: 8000,
			fks:      map[string]string{"movie_id": "title", "subject_id": "comp_cast_type", "status_id": "comp_cast_type"},
			fkSkew:   1.1,
			indexFKs: []string{"movie_id"},
		},
		{name: "movie_companies", rows: 40000,
			cols:     []colSpec{{"note_hash", 200, 1.6}},
			fks:      map[string]string{"movie_id": "title", "company_id": "company_name", "company_type_id": "company_type"},
			fkSkew:   1.3,
			indexFKs: []string{"movie_id", "company_id"},
		},
		{name: "movie_keyword", rows: 40000,
			fks:      map[string]string{"movie_id": "title", "keyword_id": "keyword"},
			fkSkew:   1.4,
			indexFKs: []string{"movie_id", "keyword_id"},
		},
		{name: "movie_info", rows: 60000,
			cols:      []colSpec{{"info_hash", 500, 1.5}},
			fks:       map[string]string{"movie_id": "title", "info_type_id": "info_type"},
			fkSkew:    1.3,
			indexFKs:  []string{"movie_id"},
			hashAttrs: []string{"info_hash"},
		},
		{name: "movie_info_idx", rows: 30000,
			cols:     []colSpec{{"info_hash", 100, 1.3}},
			fks:      map[string]string{"movie_id": "title", "info_type_id": "info_type"},
			fkSkew:   1.2,
			indexFKs: []string{"movie_id", "info_type_id"},
		},
		{name: "cast_info", rows: 80000,
			cols:     []colSpec{{"nr_order", 100, 1.8}},
			fks:      map[string]string{"movie_id": "title", "person_id": "name", "person_role_id": "char_name", "role_id": "role_type"},
			fkSkew:   1.3,
			indexFKs: []string{"movie_id", "person_id"},
		},
		{name: "person_info", rows: 40000,
			cols:     []colSpec{{"info_hash", 300, 1.4}},
			fks:      map[string]string{"person_id": "name", "info_type_id": "info_type"},
			fkSkew:   1.3,
			indexFKs: []string{"person_id"},
		},
	}
}

// Generate builds the catalog, data, and statistics for the JOB-like schema.
func Generate(cfg Config) (*Database, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("datagen: scale must be positive, got %v", cfg.Scale)
	}
	if cfg.HistogramBuckets == 0 {
		cfg.HistogramBuckets = 64
	}
	if cfg.MCVs == 0 {
		cfg.MCVs = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := jobSchema()

	db := &Database{
		Catalog: catalog.New(),
		Store:   storage.NewDB(),
		Stats:   stats.NewStats(),
	}

	rowsOf := map[string]int64{}
	for _, spec := range specs {
		rows := int64(float64(spec.rows) * cfg.Scale)
		if rows < 2 {
			rows = 2
		}
		rowsOf[spec.name] = rows
	}

	for _, spec := range specs {
		rows := rowsOf[spec.name]
		tbl := storage.NewTable(spec.name, int(rows))
		cat := &catalog.Table{Name: spec.name, Rows: rows}

		// Primary key: id = 0..rows-1.
		ids := make([]int64, rows)
		for i := range ids {
			ids[i] = int64(i)
		}
		if err := tbl.AddColumn("id", ids); err != nil {
			return nil, err
		}
		cat.Columns = append(cat.Columns, catalog.Column{Name: "id", Min: 0, Max: rows - 1})
		cat.Indexes = append(cat.Indexes, catalog.Index{Column: "id", Kind: catalog.BTree})

		// Attribute columns.
		for _, cs := range spec.cols {
			vals := genColumn(rng, rows, cs.distinct, cs.skew)
			if err := tbl.AddColumn(cs.name, vals); err != nil {
				return nil, err
			}
			cat.Columns = append(cat.Columns, catalog.Column{Name: cs.name, Min: 0, Max: cs.distinct - 1})
		}

		// Foreign keys.
		for _, fkCol := range sortedFKCols(spec.fks) {
			parent := spec.fks[fkCol]
			parentRows := rowsOf[parent]
			vals := genColumn(rng, rows, parentRows, spec.fkSkew)
			if err := tbl.AddColumn(fkCol, vals); err != nil {
				return nil, err
			}
			cat.Columns = append(cat.Columns, catalog.Column{Name: fkCol, Min: 0, Max: parentRows - 1})
		}
		for _, ix := range spec.indexFKs {
			cat.Indexes = append(cat.Indexes, catalog.Index{Column: ix, Kind: catalog.BTree})
		}
		for _, ix := range spec.hashAttrs {
			cat.Indexes = append(cat.Indexes, catalog.Index{Column: ix, Kind: catalog.Hash})
		}

		db.Store.Add(tbl)
		if err := db.Catalog.AddTable(cat); err != nil {
			return nil, err
		}
		db.Stats.Analyze(spec.name, tbl.Cols, cfg.HistogramBuckets, cfg.MCVs)
	}

	// FK edges.
	for _, spec := range specs {
		for _, fkCol := range sortedFKCols(spec.fks) {
			parent := spec.fks[fkCol]
			if err := db.Catalog.AddFK(catalog.FK{
				FromTable: spec.name, FromColumn: fkCol,
				ToTable: parent, ToColumn: "id",
			}); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// genColumn draws `rows` values from 0..domain-1, Zipf-skewed when skew > 1.
func genColumn(rng *rand.Rand, rows, domain int64, skew float64) []int64 {
	vals := make([]int64, rows)
	if domain <= 1 {
		return vals
	}
	if skew <= 1.0 {
		for i := range vals {
			vals[i] = rng.Int63n(domain)
		}
		return vals
	}
	z := rand.NewZipf(rng, skew, 1, uint64(domain-1))
	// Random permutation so that skewed mass doesn't always land on value 0.
	perm := rng.Perm(int(domain))
	for i := range vals {
		vals[i] = int64(perm[z.Uint64()])
	}
	return vals
}

func sortedFKCols(fks map[string]string) []string {
	out := make([]string, 0, len(fks))
	for k := range fks {
		out = append(out, k)
	}
	// Deterministic order for reproducible generation.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
