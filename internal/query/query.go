// Package query defines the logical query IR shared by the SQL parser, the
// workload generators, the optimizers, and the learned agents: a set of
// (aliased) relations, equality join predicates, single-column filter
// predicates, and optional grouped aggregation.
package query

import (
	"fmt"
	"sort"
	"strings"
)

// CmpOp is a comparison operator in a filter predicate.
type CmpOp int

// Comparison operators supported in WHERE clauses.
const (
	Eq CmpOp = iota
	Lt
	Le
	Gt
	Ge
	Ne
)

// String renders the operator as SQL.
func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Ne:
		return "<>"
	default:
		return "?"
	}
}

// Relation is one FROM-clause entry: a base table with an alias.
type Relation struct {
	Table string // catalog table name
	Alias string // unique within the query
}

// Filter is a single-column predicate: alias.Column op Value.
type Filter struct {
	Alias  string
	Column string
	Op     CmpOp
	Value  int64
}

// String renders the filter as SQL.
func (f Filter) String() string {
	return fmt.Sprintf("%s.%s %s %d", f.Alias, f.Column, f.Op, f.Value)
}

// Join is an equality join predicate: LeftAlias.LeftCol = RightAlias.RightCol.
type Join struct {
	LeftAlias, LeftCol   string
	RightAlias, RightCol string
}

// String renders the join predicate as SQL.
func (j Join) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol)
}

// AggKind enumerates the aggregate functions in the SELECT list.
type AggKind int

// Aggregate functions.
const (
	AggNone AggKind = iota
	AggCount
	AggMin
	AggMax
	AggSum
)

// String renders the aggregate function name.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggSum:
		return "SUM"
	default:
		return ""
	}
}

// Aggregate is one aggregate output, e.g. MIN(t.production_year).
type Aggregate struct {
	Kind   AggKind
	Alias  string // empty for COUNT(*)
	Column string // empty for COUNT(*)
}

// GroupBy is a grouping column.
type GroupBy struct {
	Alias  string
	Column string
}

// Query is a parsed or generated logical query.
type Query struct {
	// Name optionally labels the query (e.g. the JOB template "8c").
	Name       string
	Relations  []Relation
	Joins      []Join
	Filters    []Filter
	Aggregates []Aggregate
	GroupBys   []GroupBy
}

// RelationByAlias returns the relation with the given alias.
func (q *Query) RelationByAlias(alias string) (Relation, bool) {
	for _, r := range q.Relations {
		if r.Alias == alias {
			return r, true
		}
	}
	return Relation{}, false
}

// FiltersOn returns all filters that apply to the given alias.
func (q *Query) FiltersOn(alias string) []Filter {
	var out []Filter
	for _, f := range q.Filters {
		if f.Alias == alias {
			out = append(out, f)
		}
	}
	return out
}

// JoinsBetween returns all join predicates connecting any alias in left with
// any alias in right.
func (q *Query) JoinsBetween(left, right map[string]bool) []Join {
	var out []Join
	for _, j := range q.Joins {
		if (left[j.LeftAlias] && right[j.RightAlias]) || (left[j.RightAlias] && right[j.LeftAlias]) {
			out = append(out, j)
		}
	}
	return out
}

// HasJoinBetween reports whether any join predicate connects an alias in
// left with an alias in right — JoinsBetween's allocation-free form for
// callers that only need connectivity (the featurization hot path).
func (q *Query) HasJoinBetween(left, right map[string]bool) bool {
	for _, j := range q.Joins {
		if (left[j.LeftAlias] && right[j.RightAlias]) || (left[j.RightAlias] && right[j.LeftAlias]) {
			return true
		}
	}
	return false
}

// Adjacency returns, for each alias, the set of aliases it joins with.
func (q *Query) Adjacency() map[string]map[string]bool {
	adj := make(map[string]map[string]bool, len(q.Relations))
	for _, r := range q.Relations {
		adj[r.Alias] = map[string]bool{}
	}
	for _, j := range q.Joins {
		if adj[j.LeftAlias] != nil && adj[j.RightAlias] != nil {
			adj[j.LeftAlias][j.RightAlias] = true
			adj[j.RightAlias][j.LeftAlias] = true
		}
	}
	return adj
}

// Connected reports whether the join graph over the query's relations is
// connected (no unavoidable cross products).
func (q *Query) Connected() bool {
	if len(q.Relations) == 0 {
		return true
	}
	adj := q.Adjacency()
	seen := map[string]bool{q.Relations[0].Alias: true}
	frontier := []string{q.Relations[0].Alias}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for n := range adj[cur] {
			if !seen[n] {
				seen[n] = true
				frontier = append(frontier, n)
			}
		}
	}
	return len(seen) == len(q.Relations)
}

// Validate checks internal consistency: unique aliases, and every predicate
// referencing a declared alias.
func (q *Query) Validate() error {
	aliases := map[string]bool{}
	for _, r := range q.Relations {
		if aliases[r.Alias] {
			return fmt.Errorf("query: duplicate alias %q", r.Alias)
		}
		aliases[r.Alias] = true
	}
	for _, j := range q.Joins {
		if !aliases[j.LeftAlias] || !aliases[j.RightAlias] {
			return fmt.Errorf("query: join %s references undeclared alias", j)
		}
	}
	for _, f := range q.Filters {
		if !aliases[f.Alias] {
			return fmt.Errorf("query: filter %s references undeclared alias", f)
		}
	}
	for _, g := range q.GroupBys {
		if !aliases[g.Alias] {
			return fmt.Errorf("query: group by %s.%s references undeclared alias", g.Alias, g.Column)
		}
	}
	for _, a := range q.Aggregates {
		if a.Kind != AggCount && !aliases[a.Alias] {
			return fmt.Errorf("query: aggregate references undeclared alias %q", a.Alias)
		}
	}
	return nil
}

// SQL renders the query back to SQL text.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case len(q.Aggregates) > 0:
		parts := make([]string, 0, len(q.Aggregates)+len(q.GroupBys))
		for _, g := range q.GroupBys {
			parts = append(parts, g.Alias+"."+g.Column)
		}
		for _, a := range q.Aggregates {
			if a.Kind == AggCount && a.Column == "" {
				parts = append(parts, "COUNT(*)")
			} else {
				parts = append(parts, fmt.Sprintf("%s(%s.%s)", a.Kind, a.Alias, a.Column))
			}
		}
		b.WriteString(strings.Join(parts, ", "))
	default:
		b.WriteString("*")
	}
	b.WriteString(" FROM ")
	rels := make([]string, len(q.Relations))
	for i, r := range q.Relations {
		if r.Alias == r.Table {
			rels[i] = r.Table
		} else {
			rels[i] = r.Table + " AS " + r.Alias
		}
	}
	b.WriteString(strings.Join(rels, ", "))
	var preds []string
	for _, j := range q.Joins {
		preds = append(preds, j.String())
	}
	for _, f := range q.Filters {
		preds = append(preds, f.String())
	}
	if len(preds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(preds, " AND "))
	}
	if len(q.GroupBys) > 0 {
		cols := make([]string, len(q.GroupBys))
		for i, g := range q.GroupBys {
			cols[i] = g.Alias + "." + g.Column
		}
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(cols, ", "))
	}
	b.WriteString(";")
	return b.String()
}

// Key returns a canonical string identifying the query's logical content
// (used to key caches and the deterministic latency noise field).
func (q *Query) Key() string {
	var parts []string
	for _, r := range q.Relations {
		parts = append(parts, "R:"+r.Table+"/"+r.Alias)
	}
	for _, j := range q.Joins {
		l, r := j.LeftAlias+"."+j.LeftCol, j.RightAlias+"."+j.RightCol
		if l > r {
			l, r = r, l
		}
		parts = append(parts, "J:"+l+"="+r)
	}
	for _, f := range q.Filters {
		parts = append(parts, "F:"+f.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}
