package query

import (
	"strings"
	"testing"
)

func demoQuery() *Query {
	return &Query{
		Name: "demo",
		Relations: []Relation{
			{Table: "title", Alias: "t"},
			{Table: "movie_companies", Alias: "mc"},
			{Table: "company_name", Alias: "cn"},
		},
		Joins: []Join{
			{LeftAlias: "mc", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "mc", LeftCol: "company_id", RightAlias: "cn", RightCol: "id"},
		},
		Filters: []Filter{
			{Alias: "t", Column: "production_year", Op: Gt, Value: 100},
			{Alias: "cn", Column: "country_code", Op: Eq, Value: 3},
		},
		Aggregates: []Aggregate{{Kind: AggCount}},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := demoQuery().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadReferences(t *testing.T) {
	q := demoQuery()
	q.Joins = append(q.Joins, Join{LeftAlias: "zz", LeftCol: "id", RightAlias: "t", RightCol: "id"})
	if err := q.Validate(); err == nil {
		t.Fatal("join with undeclared alias accepted")
	}

	q2 := demoQuery()
	q2.Filters = append(q2.Filters, Filter{Alias: "zz", Column: "x", Op: Eq, Value: 1})
	if err := q2.Validate(); err == nil {
		t.Fatal("filter with undeclared alias accepted")
	}

	q3 := demoQuery()
	q3.Relations = append(q3.Relations, Relation{Table: "title", Alias: "t"})
	if err := q3.Validate(); err == nil {
		t.Fatal("duplicate alias accepted")
	}
}

func TestConnected(t *testing.T) {
	q := demoQuery()
	if !q.Connected() {
		t.Fatal("demo query should be connected")
	}
	q.Relations = append(q.Relations, Relation{Table: "keyword", Alias: "k"})
	if q.Connected() {
		t.Fatal("query with isolated relation should be disconnected")
	}
}

func TestJoinsBetween(t *testing.T) {
	q := demoQuery()
	left := map[string]bool{"t": true}
	right := map[string]bool{"mc": true, "cn": true}
	js := q.JoinsBetween(left, right)
	if len(js) != 1 {
		t.Fatalf("JoinsBetween = %v, want exactly the t–mc join", js)
	}
	if js[0].LeftCol != "movie_id" {
		t.Fatalf("unexpected join %v", js[0])
	}
	// Joins entirely inside one side are excluded.
	all := map[string]bool{"t": true, "mc": true, "cn": true}
	if got := q.JoinsBetween(all, map[string]bool{}); len(got) != 0 {
		t.Fatalf("JoinsBetween(all, none) = %v, want empty", got)
	}
}

func TestSQLRendering(t *testing.T) {
	q := demoQuery()
	sql := q.SQL()
	for _, want := range []string{
		"SELECT COUNT(*)",
		"FROM title AS t, movie_companies AS mc, company_name AS cn",
		"mc.movie_id = t.id",
		"t.production_year > 100",
		"cn.country_code = 3",
	} {
		if !strings.Contains(sql, want) {
			t.Fatalf("SQL %q missing %q", sql, want)
		}
	}
}

func TestSQLGroupBy(t *testing.T) {
	q := demoQuery()
	q.GroupBys = []GroupBy{{Alias: "cn", Column: "country_code"}}
	q.Aggregates = []Aggregate{{Kind: AggMin, Alias: "t", Column: "production_year"}}
	sql := q.SQL()
	if !strings.Contains(sql, "GROUP BY cn.country_code") {
		t.Fatalf("SQL %q missing GROUP BY", sql)
	}
	if !strings.Contains(sql, "MIN(t.production_year)") {
		t.Fatalf("SQL %q missing aggregate", sql)
	}
}

func TestKeyCanonical(t *testing.T) {
	q1 := demoQuery()
	q2 := demoQuery()
	// Reorder joins and swap one join's sides: the key must not change.
	q2.Joins = []Join{
		{LeftAlias: "cn", LeftCol: "id", RightAlias: "mc", RightCol: "company_id"},
		{LeftAlias: "mc", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
	}
	if q1.Key() != q2.Key() {
		t.Fatalf("keys differ for logically identical queries:\n%s\n%s", q1.Key(), q2.Key())
	}
	q2.Filters[0].Value = 101
	if q1.Key() == q2.Key() {
		t.Fatal("keys equal for different filters")
	}
}

func TestFiltersOn(t *testing.T) {
	q := demoQuery()
	if got := q.FiltersOn("t"); len(got) != 1 || got[0].Column != "production_year" {
		t.Fatalf("FiltersOn(t) = %v", got)
	}
	if got := q.FiltersOn("mc"); len(got) != 0 {
		t.Fatalf("FiltersOn(mc) = %v, want empty", got)
	}
}

func TestAdjacency(t *testing.T) {
	q := demoQuery()
	adj := q.Adjacency()
	if !adj["t"]["mc"] || !adj["mc"]["t"] || !adj["mc"]["cn"] {
		t.Fatalf("adjacency wrong: %v", adj)
	}
	if adj["t"]["cn"] {
		t.Fatal("t and cn should not be adjacent")
	}
}

func TestCmpOpString(t *testing.T) {
	cases := map[CmpOp]string{Eq: "=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Ne: "<>"}
	for op, want := range cases {
		if op.String() != want {
			t.Fatalf("%v.String() = %q, want %q", int(op), op.String(), want)
		}
	}
}
