// Package cost implements a PostgreSQL-style analytical cost model over
// physical plans. Costs are unitless, exactly as the paper discusses in
// §5.2: they are meant to *compare* plans, not to predict latency — the gap
// between this model (estimated cardinalities, hand-tuned constants) and the
// engine's latency model (true cardinalities, different hardware constants)
// is the learning signal the paper's agents exploit.
//
// The model is parameterized by a CardSource so the identical operator
// arithmetic can be driven by the Estimator (the optimizer's view) or by the
// Oracle (execution's view).
package cost

import (
	"math"

	"handsfree/internal/plan"
	"handsfree/internal/query"
)

// CardSource supplies cardinalities: either estimated (stats.Estimator) or
// true (stats.Oracle).
type CardSource interface {
	// BaseCard is the post-filter cardinality of one relation.
	BaseCard(q *query.Query, alias string) float64
	// JoinSelectivity is the selectivity of one equality join predicate.
	JoinSelectivity(q *query.Query, j query.Join) float64
	// TableRows is the unfiltered row count of a table.
	TableRows(table string) int64
}

// Params are the cost-model constants (PostgreSQL's defaults, plus the
// engine-geometry knobs the simulator needs).
type Params struct {
	SeqPageCost       float64 // cost to read one page sequentially
	RandomPageCost    float64 // cost to read one page randomly
	CPUTupleCost      float64 // cost to process one tuple
	CPUIndexTupleCost float64 // cost to process one index entry
	CPUOperatorCost   float64 // cost to evaluate one predicate/expression
	RowsPerPage       float64 // tuples per page
	WorkMemRows       float64 // rows fitting in memory for hash/sort
	SpillFactor       float64 // multiplier applied to spilled hash/sort work
}

// DefaultParams mirrors PostgreSQL's default planner constants.
func DefaultParams() Params {
	return Params{
		SeqPageCost:       1.0,
		RandomPageCost:    4.0,
		CPUTupleCost:      0.01,
		CPUIndexTupleCost: 0.005,
		CPUOperatorCost:   0.0025,
		RowsPerPage:       100,
		WorkMemRows:       100_000,
		SpillFactor:       2.5,
	}
}

// Model evaluates plans.
type Model struct {
	Params Params
	Cards  CardSource
}

// New returns a cost model with the given constants and cardinality source.
func New(p Params, cards CardSource) *Model {
	return &Model{Params: p, Cards: cards}
}

// NodeCost is the costing result for one operator.
type NodeCost struct {
	// Rows is the (estimated or true, per the CardSource) output cardinality.
	Rows float64
	// Total is the cumulative cost of producing all output rows.
	Total float64
	// RescanCost is the cost of producing the output again (used when this
	// node is the inner side of a nested-loop join).
	RescanCost float64
	// Sorted reports whether output is sorted on a join column (merge joins
	// exploit interesting orders from B-tree index scans).
	Sorted bool
}

// Cost returns the total cost of the plan for query q.
func (m *Model) Cost(q *query.Query, n plan.Node) float64 {
	return m.cost(q, n).Total
}

// Explain returns the per-node costing of the plan root.
func (m *Model) Explain(q *query.Query, n plan.Node) NodeCost {
	return m.cost(q, n)
}

func (m *Model) cost(q *query.Query, n plan.Node) NodeCost {
	switch n := n.(type) {
	case *plan.Scan:
		return m.ScanCost(q, n)
	case *plan.Join:
		return m.JoinCost(q, n, m.cost(q, n.Left), m.cost(q, n.Right))
	case *plan.Agg:
		return m.AggCost(q, n, m.cost(q, n.Child))
	default:
		panic("cost: unknown plan node")
	}
}

// ScanCost prices one scan leaf.
func (m *Model) ScanCost(q *query.Query, s *plan.Scan) NodeCost {
	p := m.Params
	baseRows := float64(m.Cards.TableRows(s.Table))
	outRows := m.Cards.BaseCard(q, s.Alias)
	if outRows > baseRows {
		outRows = baseRows
	}
	nFilters := float64(len(s.Filters))

	switch s.Access {
	case plan.SeqScan:
		pages := math.Ceil(baseRows / p.RowsPerPage)
		total := p.SeqPageCost*pages + p.CPUTupleCost*baseRows + p.CPUOperatorCost*nFilters*baseRows
		return NodeCost{Rows: outRows, Total: total, RescanCost: total, Sorted: false}

	case plan.IndexScan, plan.HashIndexScan:
		// Rows matched by the index alone: the index only covers predicates
		// on its column; remaining filters are applied afterwards. With only
		// the combined selectivity available, attribute an even (geometric)
		// share of it to each filter.
		matched := baseRows
		idxFilters := 0
		for _, f := range s.Filters {
			if f.Column == s.IndexColumn {
				idxFilters++
			}
		}
		if nFilters > 0 && idxFilters > 0 {
			perFilterSel := math.Pow(outRows/math.Max(baseRows, 1), 1/nFilters)
			matched = baseRows * math.Pow(perFilterSel, float64(idxFilters))
		}
		if matched < 1 {
			matched = 1
		}
		// Descent: one random leaf fetch plus comparisons down the tree
		// (upper levels are assumed cached, as real optimizers model it).
		height := math.Log2(baseRows + 2)
		descend := p.RandomPageCost + p.CPUIndexTupleCost*50*height
		if s.Access == plan.HashIndexScan {
			descend = p.RandomPageCost // single bucket lookup
			if idxFilters == 0 || !hasEqFilter(s) {
				// A hash index cannot serve a range or absent predicate:
				// degenerate to walking every bucket.
				matched = baseRows
			}
		}
		fetch := matched * (p.CPUIndexTupleCost + p.CPUTupleCost + p.RandomPageCost/p.RowsPerPage)
		residual := p.CPUOperatorCost * (nFilters - float64(idxFilters)) * matched
		total := descend + fetch + math.Max(residual, 0)
		return NodeCost{
			Rows:       outRows,
			Total:      total,
			RescanCost: total,
			Sorted:     s.Access == plan.IndexScan,
		}
	default:
		panic("cost: unknown access path")
	}
}

func hasEqFilter(s *plan.Scan) bool {
	for _, f := range s.Filters {
		if f.Column == s.IndexColumn && f.Op == query.Eq {
			return true
		}
	}
	return false
}

// joinSelectivity multiplies the selectivities of every predicate applied at
// the join; an empty predicate list is a cross product (selectivity 1).
func (m *Model) joinSelectivity(q *query.Query, preds []query.Join) float64 {
	sel := 1.0
	for _, j := range preds {
		sel *= m.Cards.JoinSelectivity(q, j)
	}
	return sel
}

// JoinCost prices a join given its children's already-computed costs,
// allowing dynamic-programming enumerators to cost candidates incrementally.
func (m *Model) JoinCost(q *query.Query, j *plan.Join, left, right NodeCost) NodeCost {
	p := m.Params
	sel := m.joinSelectivity(q, j.Preds)
	outRows := left.Rows * right.Rows * sel
	if outRows < 1 {
		outRows = 1
	}
	emit := p.CPUTupleCost * outRows

	switch j.Algo {
	case plan.NestLoop:
		var inner float64
		if idx, perProbe := m.indexProbeCost(q, j); idx {
			// Index nested loop: each outer row probes the inner index.
			inner = left.Rows * perProbe
		} else {
			// First inner pass at full cost, then materialized rescans.
			rescan := right.RescanCost
			mat := right.Rows * p.CPUTupleCost * 0.5
			if mat < rescan {
				rescan = mat // materialize when cheaper
			}
			inner = right.Total + math.Max(left.Rows-1, 0)*rescan +
				left.Rows*right.Rows*p.CPUOperatorCost
		}
		total := left.Total + inner + emit
		return NodeCost{Rows: outRows, Total: total, RescanCost: total, Sorted: false}

	case plan.HashJoin:
		build := right.Rows * (p.CPUOperatorCost + p.CPUTupleCost)
		probe := left.Rows * (p.CPUOperatorCost + p.CPUTupleCost*0.5)
		spill := 0.0
		if right.Rows > p.WorkMemRows {
			batches := math.Ceil(right.Rows / p.WorkMemRows)
			spill = (left.Rows + right.Rows) / p.RowsPerPage * p.SeqPageCost * 2 * math.Log2(batches+1) * (p.SpillFactor - 1)
		}
		total := left.Total + right.Total + build + probe + spill + emit
		return NodeCost{Rows: outRows, Total: total, RescanCost: total, Sorted: false}

	case plan.MergeJoin:
		total := left.Total + right.Total
		if !left.Sorted {
			total += m.sortCost(left.Rows)
		}
		if !right.Sorted {
			total += m.sortCost(right.Rows)
		}
		total += (left.Rows + right.Rows) * p.CPUTupleCost
		total += emit
		return NodeCost{Rows: outRows, Total: total, RescanCost: total, Sorted: true}
	default:
		panic("cost: unknown join algorithm")
	}
}

// indexProbeCost reports whether the inner (right) side of a nested loop is
// a bare indexed scan whose index column participates in the join predicate,
// and if so the cost of one probe.
func (m *Model) indexProbeCost(q *query.Query, j *plan.Join) (bool, float64) {
	s, ok := j.Right.(*plan.Scan)
	if !ok || s.Access == plan.SeqScan || len(j.Preds) == 0 {
		return false, 0
	}
	match := false
	for _, pr := range j.Preds {
		if (pr.LeftAlias == s.Alias && pr.LeftCol == s.IndexColumn) ||
			(pr.RightAlias == s.Alias && pr.RightCol == s.IndexColumn) {
			match = true
			break
		}
	}
	if !match {
		return false, 0
	}
	p := m.Params
	baseRows := float64(m.Cards.TableRows(s.Table))
	perMatch := p.CPUIndexTupleCost + p.CPUTupleCost + p.RandomPageCost/p.RowsPerPage
	// Average matches per probe: rows of inner per distinct join key.
	sel := m.joinSelectivity(q, j.Preds)
	matches := math.Max(baseRows*sel, 1.0/8)
	descend := p.RandomPageCost + p.CPUIndexTupleCost*50*math.Log2(baseRows+2)
	if s.Access == plan.HashIndexScan {
		descend = p.RandomPageCost
	}
	residual := p.CPUOperatorCost * float64(len(s.Filters)) * matches
	return true, descend + matches*perMatch + residual
}

func (m *Model) sortCost(rows float64) float64 {
	p := m.Params
	if rows < 2 {
		return p.CPUOperatorCost
	}
	c := p.CPUOperatorCost * 2 * rows * math.Log2(rows)
	if rows > p.WorkMemRows {
		c *= p.SpillFactor
	}
	return c
}

// AggCost prices an aggregation given its child's already-computed cost.
func (m *Model) AggCost(q *query.Query, a *plan.Agg, child NodeCost) NodeCost {
	p := m.Params
	groups := 1.0
	if len(a.GroupBys) > 0 {
		// Heuristic group estimate: output grows sub-linearly with input.
		groups = math.Min(child.Rows, math.Pow(child.Rows, 2.0/3.0)*float64(len(a.GroupBys)))
		if groups < 1 {
			groups = 1
		}
	}
	work := float64(len(a.Aggregates)+len(a.GroupBys)) * p.CPUOperatorCost * child.Rows
	var total float64
	switch a.Algo {
	case plan.HashAgg:
		spill := 1.0
		if groups > p.WorkMemRows {
			spill = p.SpillFactor
		}
		total = child.Total + (work+child.Rows*p.CPUOperatorCost)*spill + groups*p.CPUTupleCost
	case plan.SortAgg:
		sort := 0.0
		if !child.Sorted || len(a.GroupBys) > 0 {
			sort = m.sortCost(child.Rows)
		}
		total = child.Total + sort + work + groups*p.CPUTupleCost
	default:
		panic("cost: unknown aggregation algorithm")
	}
	return NodeCost{Rows: groups, Total: total, RescanCost: total, Sorted: a.Algo == plan.SortAgg}
}
