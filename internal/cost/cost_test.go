package cost

import (
	"math/rand"
	"testing"

	"handsfree/internal/catalog"
	"handsfree/internal/plan"
	"handsfree/internal/query"
	"handsfree/internal/stats"
)

// fixture builds a three-table schema with analyzed statistics, the demo
// query, and an estimator-backed cost model.
func fixture(t *testing.T) (*Model, *query.Query, *stats.Estimator) {
	t.Helper()
	cat := catalog.New()
	for _, tbl := range []*catalog.Table{
		{Name: "title", Rows: 10000, Columns: []catalog.Column{{Name: "id"}, {Name: "production_year"}},
			Indexes: []catalog.Index{{Column: "id", Kind: catalog.BTree}}},
		{Name: "movie_companies", Rows: 50000, Columns: []catalog.Column{{Name: "id"}, {Name: "movie_id"}, {Name: "company_id"}},
			Indexes: []catalog.Index{{Column: "movie_id", Kind: catalog.BTree}}},
		{Name: "company_name", Rows: 500, Columns: []catalog.Column{{Name: "id"}, {Name: "country_code"}}},
	} {
		if err := cat.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	st := stats.NewStats()
	seq := func(n int) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = int64(i)
		}
		return v
	}
	uni := func(n int, domain int64) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = rng.Int63n(domain)
		}
		return v
	}
	st.Analyze("title", map[string][]int64{"id": seq(10000), "production_year": uni(10000, 130)}, 32, 4)
	st.Analyze("movie_companies", map[string][]int64{"id": seq(50000), "movie_id": uni(50000, 10000), "company_id": uni(50000, 500)}, 32, 4)
	st.Analyze("company_name", map[string][]int64{"id": seq(500), "country_code": uni(500, 50)}, 32, 4)

	q := &query.Query{
		Relations: []query.Relation{
			{Table: "title", Alias: "t"},
			{Table: "movie_companies", Alias: "mc"},
			{Table: "company_name", Alias: "cn"},
		},
		Joins: []query.Join{
			{LeftAlias: "mc", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "mc", LeftCol: "company_id", RightAlias: "cn", RightCol: "id"},
		},
		Filters: []query.Filter{
			{Alias: "t", Column: "production_year", Op: query.Lt, Value: 13},
		},
	}
	est := stats.NewEstimator(cat, st)
	return New(DefaultParams(), est), q, est
}

func TestSeqScanCostScalesWithRows(t *testing.T) {
	m, q, _ := fixture(t)
	small := m.Cost(q, plan.BuildScan(q, "cn", plan.SeqScan, ""))
	large := m.Cost(q, plan.BuildScan(q, "mc", plan.SeqScan, ""))
	if large <= small {
		t.Fatalf("scanning 50k rows (%v) should cost more than 500 (%v)", large, small)
	}
	if large < 50*small {
		t.Fatalf("cost should scale ≈ linearly: %v vs %v", large, small)
	}
}

func TestIndexScanBeatsSeqScanOnSelectiveFilter(t *testing.T) {
	m, q, _ := fixture(t)
	// year < 13 keeps ≈ 10% of title; B-tree on production_year would help,
	// but the fixture indexes id. Use an equality filter on id instead,
	// which is maximally selective.
	q.Filters = []query.Filter{{Alias: "t", Column: "id", Op: query.Eq, Value: 42}}
	seq := m.Cost(q, plan.BuildScan(q, "t", plan.SeqScan, ""))
	idx := m.Cost(q, plan.BuildScan(q, "t", plan.IndexScan, "id"))
	if idx >= seq {
		t.Fatalf("index scan (%v) should beat seq scan (%v) for id = 42", idx, seq)
	}
}

func TestSeqScanBeatsIndexScanOnUnselectiveFilter(t *testing.T) {
	m, q, _ := fixture(t)
	// year < 125 keeps ≈ everything: random I/O through an index loses.
	q.Filters = []query.Filter{{Alias: "t", Column: "production_year", Op: query.Lt, Value: 125}}
	// Pretend an index exists on production_year for costing purposes.
	seq := m.Cost(q, plan.BuildScan(q, "t", plan.SeqScan, ""))
	idx := m.Cost(q, plan.BuildScan(q, "t", plan.IndexScan, "production_year"))
	if seq >= idx {
		t.Fatalf("seq scan (%v) should beat index scan (%v) for an unselective filter", seq, idx)
	}
}

func TestHashJoinBeatsNLJOnLargeInputs(t *testing.T) {
	m, q, _ := fixture(t)
	l := plan.BuildScan(q, "mc", plan.SeqScan, "")
	r := plan.BuildScan(q, "t", plan.SeqScan, "")
	hash := m.Cost(q, plan.JoinNodes(q, plan.HashJoin, l, r))
	nlj := m.Cost(q, plan.JoinNodes(q, plan.NestLoop, l, r))
	if hash >= nlj {
		t.Fatalf("hash join (%v) should beat plain NLJ (%v) on 50k×10k", hash, nlj)
	}
}

func TestIndexNestedLoopCompetitive(t *testing.T) {
	m, q, _ := fixture(t)
	// Unfiltered inner: rescanning/materializing 10k rows per outer row is
	// expensive, so probing the id index must win. (With a highly selective
	// filter on the inner, a materialized rescan can legitimately win.)
	q.Filters = nil
	outer := plan.BuildScan(q, "mc", plan.SeqScan, "")
	innerIdx := plan.BuildScan(q, "t", plan.IndexScan, "id")
	innerSeq := plan.BuildScan(q, "t", plan.SeqScan, "")
	inlj := m.Cost(q, plan.JoinNodes(q, plan.NestLoop, outer, innerIdx))
	nlj := m.Cost(q, plan.JoinNodes(q, plan.NestLoop, outer, innerSeq))
	if inlj >= nlj {
		t.Fatalf("index NLJ (%v) should beat plain NLJ (%v)", inlj, nlj)
	}
}

func TestCrossProductIsExpensive(t *testing.T) {
	m, q, _ := fixture(t)
	good := plan.JoinNodes(q, plan.HashJoin,
		plan.BuildScan(q, "mc", plan.SeqScan, ""),
		plan.BuildScan(q, "t", plan.SeqScan, ""))
	cross := plan.JoinNodes(q, plan.HashJoin,
		plan.BuildScan(q, "t", plan.SeqScan, ""),
		plan.BuildScan(q, "cn", plan.SeqScan, ""))
	goodFull := m.Cost(q, plan.JoinNodes(q, plan.HashJoin, good, plan.BuildScan(q, "cn", plan.SeqScan, "")))
	crossFull := m.Cost(q, plan.JoinNodes(q, plan.HashJoin, cross, plan.BuildScan(q, "mc", plan.SeqScan, "")))
	if crossFull <= goodFull*2 {
		t.Fatalf("cross-product plan (%v) should cost far more than join-order plan (%v)", crossFull, goodFull)
	}
}

func TestCardinalityPropagation(t *testing.T) {
	m, q, est := fixture(t)
	full := plan.JoinNodes(q, plan.HashJoin,
		plan.JoinNodes(q, plan.HashJoin,
			plan.BuildScan(q, "mc", plan.SeqScan, ""),
			plan.BuildScan(q, "t", plan.SeqScan, "")),
		plan.BuildScan(q, "cn", plan.SeqScan, ""))
	nc := m.Explain(q, full)
	want := est.SubsetCard(q, map[string]bool{"t": true, "mc": true, "cn": true})
	if diff := nc.Rows/want - 1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("plan output rows %v, want estimator subset card %v", nc.Rows, want)
	}
}

func TestMergeJoinExploitsSortedInputs(t *testing.T) {
	m, q, _ := fixture(t)
	// Unfiltered: sorting the full 10k-row inner costs more than the index
	// scan's random-I/O premium, so the interesting order pays off.
	q.Filters = nil
	sorted := plan.BuildScan(q, "t", plan.IndexScan, "id")
	unsorted := plan.BuildScan(q, "t", plan.SeqScan, "")
	outer := plan.BuildScan(q, "mc", plan.SeqScan, "")
	mjSorted := m.Cost(q, plan.JoinNodes(q, plan.MergeJoin, outer, sorted))
	mjUnsorted := m.Cost(q, plan.JoinNodes(q, plan.MergeJoin, outer, unsorted))
	if mjSorted >= mjUnsorted {
		t.Fatalf("merge join with pre-sorted inner (%v) should beat unsorted (%v)", mjSorted, mjUnsorted)
	}
}

func TestAggCosts(t *testing.T) {
	m, q, _ := fixture(t)
	q.Aggregates = []query.Aggregate{{Kind: query.AggCount}}
	q.GroupBys = []query.GroupBy{{Alias: "cn", Column: "country_code"}}
	child := plan.JoinNodes(q, plan.HashJoin,
		plan.JoinNodes(q, plan.HashJoin,
			plan.BuildScan(q, "mc", plan.SeqScan, ""),
			plan.BuildScan(q, "t", plan.SeqScan, "")),
		plan.BuildScan(q, "cn", plan.SeqScan, ""))
	hash := m.Cost(q, plan.FinishAgg(q, plan.HashAgg, child))
	sortA := m.Cost(q, plan.FinishAgg(q, plan.SortAgg, child))
	base := m.Cost(q, child)
	if hash <= base || sortA <= base {
		t.Fatal("aggregation must add cost")
	}
	if hash >= sortA {
		t.Fatalf("hash agg (%v) should beat sort agg (%v) on unsorted input", hash, sortA)
	}
}

func TestOracleDrivesSameModel(t *testing.T) {
	m, q, est := fixture(t)
	o := stats.NewOracle(est, 3)
	truthModel := New(DefaultParams(), o)
	p := plan.JoinNodes(q, plan.HashJoin,
		plan.BuildScan(q, "mc", plan.SeqScan, ""),
		plan.BuildScan(q, "t", plan.SeqScan, ""))
	ec := m.Cost(q, p)
	tc := truthModel.Cost(q, p)
	if ec == tc {
		t.Fatal("estimator- and oracle-driven costs identical (error field missing?)")
	}
	if ec <= 0 || tc <= 0 {
		t.Fatalf("non-positive costs: %v, %v", ec, tc)
	}
}

func TestHashIndexDegeneratesOnRangePredicate(t *testing.T) {
	m, q, _ := fixture(t)
	q.Filters = []query.Filter{{Alias: "t", Column: "production_year", Op: query.Lt, Value: 13}}
	rangeViaHash := m.Cost(q, plan.BuildScan(q, "t", plan.HashIndexScan, "production_year"))
	seq := m.Cost(q, plan.BuildScan(q, "t", plan.SeqScan, ""))
	if rangeViaHash <= seq {
		t.Fatalf("hash index on a range predicate (%v) must not beat seq scan (%v)", rangeViaHash, seq)
	}
}
