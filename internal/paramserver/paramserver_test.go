package paramserver

import (
	"math/rand"
	"sync"
	"testing"

	"handsfree/internal/nn"
)

// tagNet builds a 1×1 network whose single weight carries tag, so a reader
// can recover which publish produced the snapshot it observed.
func tagNet(tag float64) *nn.Network {
	net := nn.NewMLP(rand.New(rand.NewSource(1)), 1, 1)
	net.F64().Layers[0].(*nn.Linear).W.Value[0] = tag
	net.F64().Layers[0].(*nn.Linear).B.Value[0] = 0
	return net
}

func tagOf(net *nn.Network) float64 {
	return net.F64().Layers[0].(*nn.Linear).W.Value[0]
}

func TestPublishAssignsDenseVersions(t *testing.T) {
	srv := New(tagNet(0))
	if v := srv.Version(); v != 0 {
		t.Fatalf("initial version %d, want 0", v)
	}
	for i := 1; i <= 10; i++ {
		if v := srv.Publish(tagNet(float64(i)), i); v != uint64(i) {
			t.Fatalf("publish %d assigned version %d", i, v)
		}
	}
	snap := srv.Latest()
	if snap.Version != 10 || tagOf(snap.Net) != 10 || snap.Updates != 10 {
		t.Fatalf("latest = (v%d, tag %v, updates %d), want (10, 10, 10)", snap.Version, tagOf(snap.Net), snap.Updates)
	}
	st := srv.Stats()
	if st.Publishes != 10 || st.Version != 10 || st.Fetches != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOnPublishHookSeesEveryVersion(t *testing.T) {
	srv := New(tagNet(0))
	var got []uint64
	srv.OnPublish = func(v uint64) { got = append(got, v) }
	for i := 1; i <= 5; i++ {
		srv.Publish(tagNet(float64(i)), i)
	}
	if len(got) != 5 {
		t.Fatalf("hook ran %d times, want 5", len(got))
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("hook call %d saw version %d", i, v)
		}
	}
}

// TestPublishFetchLinearizable is the race/linearizability harness for the
// snapshot exchange: 4 concurrent publishers CAS-race ≥200 publishes while
// 4 readers continuously fetch. Afterwards it checks, against the publishers'
// own (version → tag) records, that
//
//  1. versions are dense — every version in [1, publishes] was assigned
//     exactly once;
//  2. every snapshot a reader observed is exactly one published (version,
//     tag) pair — no torn or recombined snapshots;
//  3. each reader's observed versions are monotonically non-decreasing —
//     once version v is visible, no older snapshot can be fetched.
//
// Run under -race this also proves the data handoff (network contents
// written before Publish, read after Latest) is properly synchronized.
func TestPublishFetchLinearizable(t *testing.T) {
	const publishers, readers, perPublisher = 4, 4, 60

	srv := New(tagNet(0))
	published := make([]map[uint64]float64, publishers) // version → tag
	readerSeen := make([][]*Snapshot, readers)

	var start, wg sync.WaitGroup
	start.Add(1)
	for p := 0; p < publishers; p++ {
		published[p] = make(map[uint64]float64, perPublisher)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			start.Wait()
			for i := 0; i < perPublisher; i++ {
				tag := float64(p*1_000_000 + i + 1)
				v := srv.Publish(tagNet(tag), i)
				published[p][v] = tag
			}
		}(p)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			start.Wait()
			for i := 0; i < 2000; i++ {
				snap := srv.Latest()
				readerSeen[r] = append(readerSeen[r], &Snapshot{Version: snap.Version, Net: snap.Net})
			}
		}(r)
	}
	start.Done()
	wg.Wait()

	const total = publishers * perPublisher
	if total < 200 {
		t.Fatalf("stress too small: %d publishes", total)
	}
	// (1) dense, uniquely assigned versions.
	byVersion := map[uint64]float64{0: 0}
	for p := range published {
		for v, tag := range published[p] {
			if _, dup := byVersion[v]; dup {
				t.Fatalf("version %d assigned twice", v)
			}
			byVersion[v] = tag
		}
	}
	for v := uint64(1); v <= total; v++ {
		if _, ok := byVersion[v]; !ok {
			t.Fatalf("version %d never assigned", v)
		}
	}
	if got := srv.Version(); got != total {
		t.Fatalf("final version %d, want %d", got, total)
	}
	// (2) observed snapshots match published pairs; (3) monotonic reads.
	for r := range readerSeen {
		last := uint64(0)
		for i, snap := range readerSeen[r] {
			if snap.Version < last {
				t.Fatalf("reader %d: version went backwards at read %d (%d after %d)", r, i, snap.Version, last)
			}
			last = snap.Version
			want, ok := byVersion[snap.Version]
			if !ok {
				t.Fatalf("reader %d observed unassigned version %d", r, snap.Version)
			}
			if got := tagOf(snap.Net); got != want {
				t.Fatalf("reader %d: version %d carried tag %v, want %v — torn snapshot", r, snap.Version, got, want)
			}
		}
	}
}

// TestClientStalenessBound: while a publisher races ahead, a
// staleness-bounded client must never act on a snapshot more than K
// versions behind the server version it checked against.
func TestClientStalenessBound(t *testing.T) {
	for _, k := range []int{0, 1, 3} {
		srv := New(tagNet(0))
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; ; i++ {
				select {
				case <-done:
					return
				default:
					srv.Publish(tagNet(float64(i)), i)
				}
			}
		}()
		client := srv.NewClient(k)
		for i := 0; i < 5000; i++ {
			snap, lag := client.Snapshot()
			if lag > uint64(k) {
				t.Fatalf("K=%d: client acted on lag %d", k, lag)
			}
			if snap == nil {
				t.Fatalf("K=%d: nil snapshot", k)
			}
		}
		close(done)
		wg.Wait()
		if client.MaxLag() > uint64(k) {
			t.Fatalf("K=%d: MaxLag %d exceeds bound", k, client.MaxLag())
		}
		if k == 0 && client.Refetches() == 0 {
			t.Fatal("K=0 client under a racing publisher never refetched")
		}
	}
}

// TestClientCachesWithinBound: with no publishes happening, the client must
// fetch once and then serve its cache.
func TestClientCachesWithinBound(t *testing.T) {
	srv := New(tagNet(0))
	client := srv.NewClient(2)
	for i := 0; i < 100; i++ {
		if _, lag := client.Snapshot(); lag != 0 {
			t.Fatalf("lag %d with no publisher", lag)
		}
	}
	if client.Refetches() != 1 {
		t.Fatalf("refetches = %d, want exactly the initial fetch", client.Refetches())
	}
	if srv.Stats().Fetches != 1 {
		t.Fatalf("server fetches = %d, want 1", srv.Stats().Fetches)
	}
}

// TestClientDynBoundTakesEffectImmediately: tightening a shared DynBound
// must change the refetch decision of the very next Snapshot call, and
// loosening it must let the cache ride again.
func TestClientDynBoundTakesEffectImmediately(t *testing.T) {
	srv := New(tagNet(0))
	bound := NewDynBound(4)
	client := srv.NewClientDyn(bound)
	client.Snapshot() // initial fetch at version 0

	// Publish 3 versions: lag 3 ≤ 4, so the cache must be served.
	for i := 1; i <= 3; i++ {
		srv.Publish(tagNet(float64(i)), i)
	}
	if snap, lag := client.Snapshot(); snap.Version != 0 || lag != 3 {
		t.Fatalf("within bound: got version %d lag %d, want cached version 0 lag 3", snap.Version, lag)
	}

	// Tighten to 1: the same 3-version lag must now force a refetch.
	bound.Set(1)
	if client.Bound() != 1 {
		t.Fatalf("Bound() = %d after Set(1)", client.Bound())
	}
	if snap, lag := client.Snapshot(); snap.Version != 3 || lag != 0 {
		t.Fatalf("after tightening: got version %d lag %d, want fresh version 3", snap.Version, lag)
	}

	// Loosen back to 4: two more publishes stay within the bound again.
	bound.Set(4)
	srv.Publish(tagNet(4), 4)
	srv.Publish(tagNet(5), 5)
	if snap, lag := client.Snapshot(); snap.Version != 3 || lag != 2 {
		t.Fatalf("after loosening: got version %d lag %d, want cached version 3 lag 2", snap.Version, lag)
	}
	if NewDynBound(-5).Get() != 0 {
		t.Fatal("negative DynBound must clamp to 0")
	}
}

// TestSnapshotsPreservePrecision: an f32 learner's published snapshots must
// stay f32 end to end — the parameter server is precision-transparent, so
// actors infer against half-width weights exactly as published.
func TestSnapshotsPreservePrecision(t *testing.T) {
	f32net := nn.NewMLPAt(nn.F32, rand.New(rand.NewSource(1)), 3, 4, 2)
	srv := New(f32net.CloneForInference())
	if p := srv.Latest().Net.Precision(); p != nn.F32 {
		t.Fatalf("initial snapshot precision %v, want f32", p)
	}
	srv.Publish(f32net.CloneForInference(), 1)
	snap := srv.Latest()
	if p := snap.Net.Precision(); p != nn.F32 {
		t.Fatalf("published snapshot precision %v, want f32", p)
	}
	// The snapshot must serve concurrent inference (the actor contract).
	x := nn.NewMat(1, 3)
	x.Data[0] = 1
	want := snap.Net.Infer(x.Clone())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := snap.Net.Infer(x.Clone())
				for j := range want.Data {
					if got.Data[j] != want.Data[j] {
						t.Errorf("concurrent f32 Infer diverged")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestSnapshotPacked pins the shared-pack lifetime contract: one pack per
// snapshot (built lazily, stable across calls and callers), a fresh pack
// after every Publish (hot-swap invalidation for free), and nil when the
// snapshot carries no network.
func TestSnapshotPacked(t *testing.T) {
	srv := New(tagNet(1))
	snap := srv.Latest()

	p := snap.Packed()
	if p == nil {
		t.Fatal("Packed returned nil for a snapshot with a network")
	}
	if again := snap.Packed(); again != p {
		t.Fatal("second Packed call returned a different pack")
	}

	// Concurrent first-use racers on a fresh snapshot must all converge on
	// one pack (the losing CAS racer discards its redundant pack).
	srv.Publish(tagNet(2), 1)
	snap2 := srv.Latest()
	const racers = 8
	packs := make([]*nn.PackedNetwork, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			packs[i] = snap2.Packed()
		}(i)
	}
	wg.Wait()
	for i, got := range packs {
		if got == nil || got != packs[0] {
			t.Fatalf("racer %d observed pack %p, racer 0 observed %p", i, got, packs[0])
		}
	}
	if packs[0] == p {
		t.Fatal("new snapshot reused the previous snapshot's pack")
	}

	// The pack evaluates the snapshot's own weights: tag 2 through a 1×1
	// identity-shaped net gives logit 2·x.
	var out nn.Mat
	packs[0].InferVec([]float64{3}, &out)
	if out.Data[0] != 6 {
		t.Fatalf("packed inference = %v, want 6", out.Data[0])
	}

	nilSnap := &Snapshot{Version: 99}
	if got := nilSnap.Packed(); got != nil {
		t.Fatalf("Packed on a netless snapshot = %v, want nil", got)
	}
}
