// Package paramserver implements the versioned parameter server at the
// center of the asynchronous actor-learner training split (the architecture
// Balsa and Neo use to keep hardware saturated during the paper's
// long-running training phases). A single learner publishes immutable policy
// snapshots; any number of actor goroutines fetch them lock-free — the read
// path is one atomic pointer load — and collect episodes against their
// latest-fetched snapshot while the learner keeps updating.
//
// Consistency model:
//
//   - Publish is linearizable: versions are assigned by a compare-and-swap
//     on the current snapshot, so they are dense (v, v+1, v+2, …), every
//     version carries exactly one network, and once a reader has observed
//     version v no reader can later observe an older version.
//   - Fetch is wait-free: Latest/Version are single atomic loads.
//   - Staleness is bounded per actor by a Client: an actor whose cached
//     snapshot lags the server by more than K versions refetches before the
//     next episode, so no episode is ever collected against a snapshot more
//     than K versions behind the server at episode start.
//
// Snapshots hand out *nn.Network values that must be treated as immutable;
// actors evaluate them with nn.Infer, which is safe for concurrent use on a
// shared network.
package paramserver

import (
	"sync/atomic"

	"handsfree/internal/nn"
)

// Snapshot is one immutable published policy version. Net must never be
// mutated or trained; evaluate it with nn.Infer (Forward caches layer state
// and is not safe for concurrent use on a shared network) or through
// Packed's shared-packing form.
type Snapshot struct {
	// Version counts publishes: the initial snapshot is version 0 and each
	// Publish increments it by exactly one.
	Version uint64
	// Net is the frozen policy at this version.
	Net *nn.Network
	// Updates is the learner's update counter when the snapshot was
	// published (metadata for staleness accounting and cache keys).
	Updates int

	// packed caches the shared packed-inference form, built lazily on first
	// Packed call. Tying the pack's lifetime to the snapshot is what makes
	// invalidation automatic: a Publish installs a new Snapshot, so a hot
	// policy swap can never serve stale panels.
	packed atomic.Pointer[nn.PackedNetwork]
}

// Packed returns the snapshot's shared packed-inference form, packing Net's
// weight panels once on first use (nil when the snapshot has no network).
// The pack is immutable and safe for any number of concurrent inference
// callers; every evaluation of this snapshot shares the same panels instead
// of re-reading the unpacked weights per call. A losing racer on first use
// packs redundantly and discards — packing is idempotent, so callers always
// observe one consistent pack.
func (s *Snapshot) Packed() *nn.PackedNetwork {
	if s.Net == nil {
		return nil
	}
	if p := s.packed.Load(); p != nil {
		return p
	}
	p := s.Net.Pack()
	if s.packed.CompareAndSwap(nil, p) {
		return p
	}
	return s.packed.Load()
}

// Server is the lock-free parameter server. The zero value is not usable;
// construct with New. Publish may be called from any goroutine (the usual
// deployment has a single learner); Latest and Version are wait-free and may
// be called from any number of actors.
type Server struct {
	cur atomic.Pointer[Snapshot]

	publishes atomic.Uint64
	fetches   atomic.Uint64

	// OnPublish, when non-nil, runs after each new snapshot becomes
	// visible, with the new version. Set it before any concurrent use; the
	// hook must be safe to call from the publishing goroutine. The training
	// loops use it to advance the plan cache's policy epoch so plans
	// memoized under older snapshots can never be served.
	OnPublish func(version uint64)
}

// New builds a server whose initial snapshot (version 0) wraps initial.
// The caller hands over ownership: initial must not be mutated afterwards.
func New(initial *nn.Network) *Server {
	s := &Server{}
	s.cur.Store(&Snapshot{Version: 0, Net: initial})
	return s
}

// Publish makes net the latest snapshot and returns its version. The caller
// hands over ownership of net (publish a clone of a live training network,
// e.g. nn.Network.CloneForInference). updates is the learner's update
// counter, recorded as snapshot metadata.
func (s *Server) Publish(net *nn.Network, updates int) uint64 {
	for {
		old := s.cur.Load()
		snap := &Snapshot{Version: old.Version + 1, Net: net, Updates: updates}
		if s.cur.CompareAndSwap(old, snap) {
			s.publishes.Add(1)
			if s.OnPublish != nil {
				s.OnPublish(snap.Version)
			}
			return snap.Version
		}
	}
}

// Latest returns the current snapshot (one atomic load).
func (s *Server) Latest() *Snapshot {
	s.fetches.Add(1)
	return s.cur.Load()
}

// Version returns the current snapshot's version without counting a fetch.
func (s *Server) Version() uint64 {
	return s.cur.Load().Version
}

// Stats is a point-in-time snapshot of the server counters.
type Stats struct {
	// Publishes counts completed Publish calls (== current Version when a
	// single learner publishes).
	Publishes uint64
	// Fetches counts Latest calls across all actors.
	Fetches uint64
	// Version is the current snapshot version.
	Version uint64
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Publishes: s.publishes.Load(),
		Fetches:   s.fetches.Load(),
		Version:   s.cur.Load().Version,
	}
}

// DynBound is a staleness bound shared by many clients and adjustable while
// they run: the adaptive-staleness learner tightens it when it outpaces the
// actors and relaxes it when publishes are rare. Set/Get are atomic, so the
// learner adjusts it without synchronizing with the actor goroutines.
type DynBound struct {
	v atomic.Int64
}

// NewDynBound returns a shared bound initialized to k (clamped at 0).
func NewDynBound(k int) *DynBound {
	b := &DynBound{}
	b.Set(k)
	return b
}

// Set replaces the bound (values < 0 clamp to 0).
func (b *DynBound) Set(k int) {
	if k < 0 {
		k = 0
	}
	b.v.Store(int64(k))
}

// Get returns the current bound.
func (b *DynBound) Get() int { return int(b.v.Load()) }

// Client is one actor's staleness-bounded view of the server. It caches the
// most recently fetched snapshot and refetches only when the cache lags the
// server by more than the bound, keeping the per-episode cost at one atomic
// load in the common case. A Client belongs to a single actor goroutine and
// is not safe for concurrent use (the optional shared DynBound is).
type Client struct {
	srv   *Server
	bound uint64
	dyn   *DynBound
	snap  *Snapshot

	refetches uint64
	maxLag    uint64
}

// NewClient builds a staleness-bounded client. bound is K, the maximum
// number of versions the client's snapshot may lag the server at the moment
// Snapshot is called; bound 0 means the client always acts on the snapshot
// that was latest when Snapshot checked.
func (s *Server) NewClient(bound int) *Client {
	if bound < 0 {
		bound = 0
	}
	return &Client{srv: s, bound: uint64(bound)}
}

// NewClientDyn builds a client whose bound is read from the shared DynBound
// at every Snapshot call, so a learner-side adjustment takes effect for the
// actor's very next episode.
func (s *Server) NewClientDyn(bound *DynBound) *Client {
	return &Client{srv: s, dyn: bound}
}

// boundNow returns the bound in force for the next Snapshot call.
func (c *Client) boundNow() uint64 {
	if c.dyn != nil {
		return uint64(c.dyn.Get())
	}
	return c.bound
}

// Snapshot returns the snapshot the actor should act on and the staleness
// (server version at check time minus snapshot version, floored at 0) of
// what it returns. If the cached snapshot lags by more than the bound it is
// replaced with the server's latest first, so the returned lag never exceeds
// the bound: this is the staleness invariant the property tests pin down.
func (c *Client) Snapshot() (*Snapshot, uint64) {
	latest := c.srv.Version()
	if c.snap == nil || latest-c.snap.Version > c.boundNow() {
		c.snap = c.srv.Latest()
		c.refetches++
	}
	var lag uint64
	if latest > c.snap.Version {
		lag = latest - c.snap.Version
	}
	if lag > c.maxLag {
		c.maxLag = lag
	}
	return c.snap, lag
}

// Bound returns the client's staleness bound K currently in force.
func (c *Client) Bound() uint64 { return c.boundNow() }

// Refetches reports how many times the bound forced a refetch.
func (c *Client) Refetches() uint64 { return c.refetches }

// MaxLag reports the largest staleness the client ever acted on; it never
// exceeds the bound that was in force at that Snapshot call (for a fixed
// bound, never Bound; under a shrinking DynBound it may exceed the current
// bound but never the largest bound ever set).
func (c *Client) MaxLag() uint64 { return c.maxLag }
