package server

import (
	"net/http"
	"testing"

	"handsfree"
)

// approxSQL is a sketch-eligible single-relation aggregate over the
// generated schema.
const approxSQL = `SELECT COUNT(*), SUM(t.production_year) FROM title t`

// TestExecuteApproxEndpoint drives mode "approx" on POST /executesql end to
// end: the answer carries sample-scaled estimates with confidence intervals,
// and GET /stats reflects the approximate serve and its exact audit.
func TestExecuteApproxEndpoint(t *testing.T) {
	svc := newTestTenant(t, 3)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()

	var er ExecuteResponse
	resp := postJSON(t, client, ts.URL+"/executesql",
		PlanRequest{SQL: approxSQL, Mode: "approx", MaxError: 0.05}, &er)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %+v", resp.StatusCode, er)
	}
	if !er.Approx || er.ApproxFellBack {
		t.Fatalf("expected an approximate answer: %+v", er)
	}
	if len(er.Estimates) != 3 { // COUNT, SUM, derived AVG
		t.Fatalf("got %d estimates, want 3: %+v", len(er.Estimates), er.Estimates)
	}
	for _, est := range er.Estimates {
		if est.Name == "" || est.Kind == "" {
			t.Fatalf("unnamed estimate: %+v", est)
		}
		if est.Lo > est.Value || est.Value > est.Hi {
			t.Fatalf("%s: point %v outside its own CI [%v, %v]", est.Name, est.Value, est.Lo, est.Hi)
		}
		if est.RelError > 0.05 {
			t.Fatalf("%s: rel_error %v exceeds the met budget", est.Name, est.RelError)
		}
	}
	if !(er.SampleFraction > 0 && er.SampleFraction <= 1) {
		t.Fatalf("sample_fraction %v out of range", er.SampleFraction)
	}
	if er.LatencyMs <= 0 || er.WorkUnits <= 0 {
		t.Fatalf("execution observables missing: %+v", er)
	}

	// Exact mode on the same query: a plain result, no estimates.
	var exact ExecuteResponse
	resp = postJSON(t, client, ts.URL+"/executesql",
		PlanRequest{SQL: approxSQL, Mode: "exact"}, &exact)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact mode status %d", resp.StatusCode)
	}
	if exact.Approx || len(exact.Estimates) != 0 {
		t.Fatalf("exact mode returned approximate fields: %+v", exact)
	}

	var sr StatsResponse
	getJSON(t, client, ts.URL+"/stats", &sr)
	if len(sr.Tenants) != 1 {
		t.Fatalf("tenants: %+v", sr.Tenants)
	}
	tn := sr.Tenants[0]
	// The wire value mirrors whatever the tenant resolved to (the default is
	// exact, but the sketch CI leg runs with HANDSFREE_STATS=sketch).
	if want := svc.StatsMode().String(); tn.StatsMode != want {
		t.Fatalf("stats_mode %q, want %q", tn.StatsMode, want)
	}
	if tn.ApproxServed != 1 || tn.ApproxFallbacks != 0 {
		t.Fatalf("approx counters: %+v", tn)
	}
	// The first approximate serve is audited against exact execution; every
	// audited CI must have covered the truth.
	if tn.ApproxAudits != 1 || tn.AuditEstimates == 0 || tn.AuditCovered != tn.AuditEstimates {
		t.Fatalf("audit counters: %+v", tn)
	}
	if tn.AuditMeanRelError == nil || *tn.AuditMeanRelError > 0.05 {
		t.Fatalf("audit mean rel error: %+v", tn.AuditMeanRelError)
	}
}

// TestExecuteApproxFallsBackOnWire: an unsatisfiable budget and an
// ineligible (join) query both serve the exact answer, flagged as a
// fallback; the accuracy counters tally the misses.
func TestExecuteApproxFallsBackOnWire(t *testing.T) {
	svc := newTestTenant(t, 3)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()

	var er ExecuteResponse
	resp := postJSON(t, client, ts.URL+"/executesql",
		PlanRequest{SQL: approxSQL, Mode: "approx", MaxError: 1e-9}, &er)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if er.Approx || !er.ApproxFellBack || len(er.Estimates) != 0 {
		t.Fatalf("unsatisfiable budget should fall back to exact: %+v", er)
	}
	if er.LatencyMs <= 0 || er.Rows <= 0 {
		t.Fatalf("fallback execution observables missing: %+v", er)
	}

	resp = postJSON(t, client, ts.URL+"/executesql",
		PlanRequest{SQL: oneJoinSQL(t, svc), Mode: "approx"}, &er)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join approx status %d", resp.StatusCode)
	}
	if er.Approx || !er.ApproxFellBack {
		t.Fatalf("join query should fall back to exact: %+v", er)
	}

	var sr StatsResponse
	getJSON(t, client, ts.URL+"/stats", &sr)
	if tn := sr.Tenants[0]; tn.ApproxServed != 0 || tn.ApproxFallbacks != 2 {
		t.Fatalf("fallback counters: %+v", tn)
	}
}

// TestExecuteApproxValidation pins the wire contract: mode and max_error are
// execute-only fields with strict values.
func TestExecuteApproxValidation(t *testing.T) {
	svc := newTestTenant(t, 3)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()

	var er ErrorResponse
	resp := postJSON(t, client, ts.URL+"/executesql",
		PlanRequest{SQL: approxSQL, Mode: "fast"}, &er)
	if resp.StatusCode != http.StatusBadRequest || er.Error.Code != "bad_request" {
		t.Fatalf("unknown mode: status %d code %q", resp.StatusCode, er.Error.Code)
	}
	resp = postJSON(t, client, ts.URL+"/executesql",
		PlanRequest{SQL: approxSQL, Mode: "approx", MaxError: -0.1}, &er)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative max_error: status %d", resp.StatusCode)
	}
	resp = postJSON(t, client, ts.URL+"/plansql",
		PlanRequest{SQL: approxSQL, Mode: "approx"}, &er)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mode on a planning endpoint: status %d", resp.StatusCode)
	}
	resp = postJSON(t, client, ts.URL+"/plansql",
		PlanRequest{SQL: approxSQL, MaxError: 0.05}, &er)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("max_error on a planning endpoint: status %d", resp.StatusCode)
	}
}
