package server

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// admission is the bounded request queue in front of the planning endpoints:
// at most `concurrency` plans run at once, at most `queueDepth` requests
// wait for a slot, and no request waits longer than the SLO — a request that
// would have to is shed immediately with 429 + Retry-After, because a queue
// wait riding the SLO means the server is saturated and the honest answer
// is "come back later", not a response that blows the latency budget before
// planning even starts. Admitted requests are never dropped: once a slot is
// held, the request runs to completion (or to its own deadline).
type admission struct {
	slots      chan struct{}
	queueDepth int64
	slo        time.Duration

	queued        atomic.Int64
	admitted      atomic.Uint64
	shedQueueFull atomic.Uint64
	shedSLO       atomic.Uint64

	// ewmaNs tracks recent plan service time (exponentially weighted) to
	// estimate Retry-After for shed clients.
	ewmaNs atomic.Int64
}

func newAdmission(concurrency, queueDepth int, slo time.Duration) *admission {
	return &admission{
		slots:      make(chan struct{}, concurrency),
		queueDepth: int64(queueDepth),
		slo:        slo,
	}
}

// admit blocks until a slot is free (returning a release func and the queue
// wait), or sheds: queue at capacity or queue wait reaching the SLO yield a
// 429 apiError with Retry-After; a context cancelled while queued yields the
// context error through the canceled apiError.
func (a *admission) admit(ctx context.Context) (release func(), wait time.Duration, apiErr *apiError) {
	// Fast path: a slot is free, no queueing at all.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return a.releaseFunc(time.Now()), 0, nil
	default:
	}
	if a.queued.Add(1) > a.queueDepth {
		a.queued.Add(-1)
		a.shedQueueFull.Add(1)
		return nil, 0, &apiError{
			status: http.StatusTooManyRequests, code: "queue_full",
			message:       "admission queue at capacity",
			retryAfterSec: a.retryAfterSec(),
		}
	}
	defer a.queued.Add(-1)
	start := time.Now()
	timer := time.NewTimer(a.slo)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return a.releaseFunc(time.Now()), time.Since(start), nil
	case <-timer.C:
		a.shedSLO.Add(1)
		return nil, time.Since(start), &apiError{
			status: http.StatusTooManyRequests, code: "slo_shed",
			message:       "queue wait reached the latency SLO; server saturated",
			retryAfterSec: a.retryAfterSec(),
		}
	case <-ctx.Done():
		return nil, time.Since(start), &apiError{
			status: 499, code: "canceled",
			message: "client went away while queued",
		}
	}
}

// releaseFunc frees the slot and folds the observed service time into the
// EWMA that prices Retry-After for shed clients.
func (a *admission) releaseFunc(start time.Time) func() {
	return func() {
		served := time.Since(start).Nanoseconds()
		for {
			old := a.ewmaNs.Load()
			next := served
			if old > 0 {
				next = old + (served-old)/4 // EWMA, alpha 1/4
			}
			if a.ewmaNs.CompareAndSwap(old, next) {
				break
			}
		}
		<-a.slots
	}
}

// retryAfterSec estimates how long a shed client should back off: the work
// already queued ahead of it, priced at the recent per-plan service time,
// divided across the slots — at least 1s, at most 60s.
func (a *admission) retryAfterSec() int {
	ewma := time.Duration(a.ewmaNs.Load())
	if ewma <= 0 {
		ewma = a.slo
	}
	backlog := a.queued.Load() + int64(len(a.slots))
	est := time.Duration(backlog) * ewma / time.Duration(cap(a.slots))
	sec := int((est + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}
