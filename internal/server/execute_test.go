package server

import (
	"net/http"
	"testing"

	"handsfree"
)

// oneJoinSQL renders a small query from the tenant's workload (same seed ⇒
// same schema across tenants, so one SQL string drives both).
func oneJoinSQL(t testing.TB, svc *handsfree.Service) string {
	t.Helper()
	q, err := svc.System().Workload.ByRelations(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	return q.SQL()
}

// TestExecuteEndpoint drives POST /executesql end to end on an untrained
// tenant: the response carries the serving decision (expert — nothing is
// trained) plus a real observed latency, and GET /drift reflects the
// execution in the tenant's feedback-loop counters.
func TestExecuteEndpoint(t *testing.T) {
	svc := newTestTenant(t, 3)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()
	sql := oneJoinSQL(t, svc)

	var er ExecuteResponse
	resp := postJSON(t, client, ts.URL+"/executesql",
		PlanRequest{SQL: sql, Explain: true}, &er)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %+v", resp.StatusCode, er)
	}
	if er.Source != "expert" {
		t.Fatalf("untrained tenant served source %q, want expert", er.Source)
	}
	if er.LatencyMs <= 0 || er.Rows <= 0 || er.WorkUnits <= 0 {
		t.Fatalf("execution observables missing: latency=%v rows=%d work=%d",
			er.LatencyMs, er.Rows, er.WorkUnits)
	}
	if er.Fingerprint == "" || er.Fingerprint == "0000000000000000" {
		t.Fatalf("fingerprint %q, want non-zero hex", er.Fingerprint)
	}
	if er.Plan == "" {
		t.Fatal("explain requested but no plan rendering returned")
	}
	if er.TotalMs < 0 {
		t.Fatalf("total_ms %v", er.TotalMs)
	}

	var dr DriftResponse
	getJSON(t, client, ts.URL+"/drift", &dr)
	if dr.Executions != 1 || dr.History.Records != 1 || dr.History.Expert != 1 {
		t.Fatalf("drift counters after one execute: %+v", dr)
	}
	if dr.GuardRatio != handsfree.DefaultLatencyGuardRatio {
		t.Fatalf("guard_ratio %v, want default %v", dr.GuardRatio, handsfree.DefaultLatencyGuardRatio)
	}
	if dr.DriftRatio <= 0 || dr.DriftSustain <= 0 {
		t.Fatalf("drift thresholds unresolved: %+v", dr)
	}
	// The per-fingerprint view: one expert execution ⇒ one entry keyed by
	// the decision's fingerprint, an expert-only window, no ratio verdict
	// yet, no drift streak.
	if len(dr.Entries) != 1 {
		t.Fatalf("drift entries after one execute: %+v", dr.Entries)
	}
	ent := dr.Entries[0]
	if ent.Fingerprint != er.Fingerprint {
		t.Fatalf("entry fingerprint %q, decision fingerprint %q", ent.Fingerprint, er.Fingerprint)
	}
	if ent.Expert != 1 || ent.Learned != 0 || ent.Ratio != nil || ent.Streak != 0 {
		t.Fatalf("entry after one expert execute: %+v", ent)
	}
	if ent.LastSource != "expert" {
		t.Fatalf("entry last_source %q, want expert", ent.LastSource)
	}

	// The structured endpoint rejects a SQL body and vice versa, like /plan.
	resp = postJSON(t, client, ts.URL+"/execute", PlanRequest{SQL: sql}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/execute with sql body: status %d, want 400", resp.StatusCode)
	}
}

// TestExecuteEndpointErrors: unknown tenants and malformed bodies surface as
// structured 4xx, and an injected execution failure on an expert-served plan
// is a 422 execute_error (there is no cheaper plan to fall back to).
func TestExecuteEndpointErrors(t *testing.T) {
	svc := newTestTenant(t, 3)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()
	sql := oneJoinSQL(t, svc)

	var er ErrorResponse
	resp := postJSON(t, client, ts.URL+"/executesql?tenant=ghost", PlanRequest{SQL: sql}, &er)
	if resp.StatusCode != http.StatusNotFound || er.Error.Code != "unknown_tenant" {
		t.Fatalf("unknown tenant: status %d code %q", resp.StatusCode, er.Error.Code)
	}

	resp = postJSON(t, client, ts.URL+"/executesql", PlanRequest{SQL: "SELECT nonsense"}, &er)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad SQL: status %d, want 400", resp.StatusCode)
	}

	getJSON(t, client, ts.URL+"/drift?tenant=ghost", &er)
	if er.Error.Code != "unknown_tenant" {
		t.Fatalf("/drift unknown tenant code %q", er.Error.Code)
	}

	// Every execution fails ⇒ the expert-served plan has no fallback left.
	svc.Faults().FailEvery(1)
	defer svc.Faults().Clear()
	resp = postJSON(t, client, ts.URL+"/executesql", PlanRequest{SQL: sql}, &er)
	if resp.StatusCode != http.StatusUnprocessableEntity || er.Error.Code != "execute_error" {
		t.Fatalf("injected failure: status %d code %q, want 422 execute_error", resp.StatusCode, er.Error.Code)
	}
}

// TestIntegrationTwoTenantDriftIsolation: tenants share the listener and the
// admission queue but nothing in the execution feedback loop. Faults injected
// into tenant A's engine (latency inflation + periodic failures) must inflate
// A's observed latencies and failure counters while tenant B — same schema,
// same SQL — keeps executing at baseline with a clean /drift snapshot.
func TestIntegrationTwoTenantDriftIsolation(t *testing.T) {
	svcA := newTestTenant(t, 3)
	svcB := newTestTenant(t, 3) // same seed: same schema, comparable latencies
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"a": svcA, "b": svcB})
	client := ts.Client()
	sql := oneJoinSQL(t, svcA)

	// Baseline on B, then inject drift into A only: every table 25× slower,
	// every 3rd execution fails outright.
	var base ExecuteResponse
	if resp := postJSON(t, client, ts.URL+"/executesql?tenant=b", PlanRequest{SQL: sql}, &base); resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline execute on b: status %d", resp.StatusCode)
	}
	for _, tbl := range svcA.System().DB.Catalog.TableNames() {
		svcA.Faults().InflateTable(tbl, 25)
	}
	svcA.Faults().FailEvery(3)

	const rounds = 6
	aFailures := 0
	for i := 0; i < rounds; i++ {
		var ea ExecuteResponse
		resp := postJSON(t, client, ts.URL+"/executesql?tenant=a", PlanRequest{SQL: sql}, &ea)
		switch resp.StatusCode {
		case http.StatusOK:
			if ea.LatencyMs < 20*base.LatencyMs {
				t.Fatalf("tenant a execution %d not inflated: %v ms vs baseline %v ms", i, ea.LatencyMs, base.LatencyMs)
			}
		case http.StatusUnprocessableEntity:
			aFailures++
		default:
			t.Fatalf("tenant a execution %d: status %d", i, resp.StatusCode)
		}
		var eb ExecuteResponse
		if resp := postJSON(t, client, ts.URL+"/executesql?tenant=b", PlanRequest{SQL: sql}, &eb); resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant b execution %d: status %d", i, resp.StatusCode)
		} else if eb.LatencyMs != base.LatencyMs {
			t.Fatalf("tenant b latency moved under a's faults: %v ms vs %v ms", eb.LatencyMs, base.LatencyMs)
		}
	}
	if aFailures == 0 {
		t.Fatal("FailEvery(3) on tenant a never surfaced over 6 executions")
	}

	var da, db DriftResponse
	getJSON(t, client, ts.URL+"/drift?tenant=a", &da)
	getJSON(t, client, ts.URL+"/drift?tenant=b", &db)
	if da.Executions != rounds || da.Failures == 0 {
		t.Fatalf("tenant a drift snapshot: %+v (want %d executions, >0 failures)", da, rounds)
	}
	if db.Executions != rounds+1 || db.Failures != 0 || db.History.Failures != 0 {
		t.Fatalf("tenant b drift snapshot polluted by a's faults: %+v", db)
	}
	if db.History.Records != rounds+1 {
		t.Fatalf("tenant b history records %d, want %d", db.History.Records, rounds+1)
	}
}
