package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"handsfree"
)

// The end-to-end integration harness: every test here drives the full
// network path — JSON over HTTP through httptest, the admission queue, the
// tenant registry, and the Service's safeguarded Plan(ctx) — against live
// substrate, asserting the serving contracts the front end exists for:
// deadlines become 504s promptly, saturation sheds without dropping
// admitted work, policy hot-swaps are visible across requests, tenants are
// isolated, and drain completes in-flight plans even mid-training.

// twelveRelSQL renders a 12-relation query whose DP sweep takes long enough
// (~200ms on the test substrate) to be cancelled mid-flight.
func twelveRelSQL(t testing.TB, svc *handsfree.Service) string {
	t.Helper()
	q, err := svc.System().Workload.ByRelations(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	return q.SQL()
}

// rawPost is postJSON without testing.T plumbing, safe to call from
// goroutines other than the test's own (t.Fatal must not run there).
func rawPost(client *http.Client, url string, body any) (status int, retryAfter string, raw []byte, err error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, "", nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, "", nil, err
	}
	raw, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Retry-After"), raw, err
}

// liveTraining is a lifecycle whose cost budget is effectively unbounded for
// test purposes: the tenant stays in live training until stopped.
func liveTraining() handsfree.LifecycleConfig {
	return handsfree.LifecycleConfig{
		Hidden:          []int{16},
		DemoSweeps:      1,
		PretrainBatches: 2,
		CostEpisodes:    1 << 20,
		EvalEvery:       512,
		LatencyEpisodes: 8,
		Actors:          2,
		Seed:            7,
	}
}

// quickLifecycle passes through every phase in a couple of seconds.
func quickLifecycle() handsfree.LifecycleConfig {
	return handsfree.LifecycleConfig{
		Hidden:          []int{16},
		DemoSweeps:      1,
		PretrainBatches: 4,
		CostEpisodes:    48,
		EvalEvery:       24,
		LatencyEpisodes: 8,
		Actors:          2,
		Seed:            7,
	}
}

// TestIntegrationDeadline504MidDPSweep maps a per-request deadline onto the
// Plan(ctx) cancellation path: a 12-relation DP sweep (~200ms uncancelled)
// under a 120ms timeout_ms must surface as a 504 in well under 2× the
// deadline, proving the enumeration loop's context checks cut the search
// off mid-sweep rather than running it to completion.
func TestIntegrationDeadline504MidDPSweep(t *testing.T) {
	svc := newTestTenant(t, 3)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()
	sql := twelveRelSQL(t, svc)

	const deadline = 120 * time.Millisecond
	start := time.Now()
	var er ErrorResponse
	resp := postJSON(t, client, ts.URL+"/plansql",
		PlanRequest{SQL: sql, TimeoutMs: deadline.Milliseconds()}, &er)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout || er.Error.Code != "deadline_exceeded" {
		t.Fatalf("status %d body %+v (want 504 deadline_exceeded)", resp.StatusCode, er)
	}
	if elapsed >= 2*deadline {
		t.Fatalf("504 took %v, want < 2× the %v deadline", elapsed, deadline)
	}

	// The same query under a generous deadline completes, proving the 504
	// was a mid-sweep cancellation and not a broken query.
	var plan PlanResponse
	resp = postJSON(t, client, ts.URL+"/plansql",
		PlanRequest{SQL: sql, TimeoutMs: 30_000}, &plan)
	if resp.StatusCode != http.StatusOK || plan.Cost <= 0 {
		t.Fatalf("unbounded replan: status %d %+v", resp.StatusCode, plan)
	}

	// The 504 is counted.
	var stats StatsResponse
	getJSON(t, client, ts.URL+"/stats", &stats)
	if stats.Server.Timeouts != 1 {
		t.Fatalf("timeouts counter = %d, want 1", stats.Server.Timeouts)
	}
}

// TestIntegrationClientCancelMidSweep cancels the client's request context
// mid-DP-sweep: the server must notice through the same ctx path, count the
// cancellation, drain the in-flight slot, and keep serving.
func TestIntegrationClientCancelMidSweep(t *testing.T) {
	svc := newTestTenant(t, 3)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()
	sql := twelveRelSQL(t, svc)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond) // let the DP sweep get going
		cancel()
	}()
	body, err := json.Marshal(PlanRequest{SQL: sql, TimeoutMs: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/plansql", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := client.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("cancelled request returned a response")
	}

	// The handler finishes asynchronously after the client goes away: poll
	// until the cancellation is counted and the in-flight gauge drains.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats StatsResponse
		getJSON(t, client, ts.URL+"/stats", &stats)
		if stats.Server.ClientCancels >= 1 && stats.Server.Inflight <= 1 {
			break // Inflight includes this /stats request itself
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancellation never drained: %+v", stats.Server)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The server still serves.
	var plan PlanResponse
	if resp := postJSON(t, client, ts.URL+"/plansql", PlanRequest{SQL: svc.Queries()[0].SQL()}, &plan); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel plan status %d", resp.StatusCode)
	}
}

// TestIntegrationLoadShedUnderSaturation saturates a 1-slot server with slow
// 12-relation plans: the bounded queue and the queue-wait SLO must shed the
// excess with 429 + Retry-After while every admitted request completes —
// zero in-flight requests dropped.
func TestIntegrationLoadShedUnderSaturation(t *testing.T) {
	svc := newTestTenant(t, 3)
	srv, ts := newTestServer(t, Config{
		Concurrency: 1,
		QueueDepth:  2,
		SLO:         60 * time.Millisecond,
	}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()
	sql := twelveRelSQL(t, svc)

	const total = 10
	type outcome struct {
		status     int
		retryAfter string
		err        error
	}
	results := make(chan outcome, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, retryAfter, _, err := rawPost(client, ts.URL+"/plansql",
				PlanRequest{SQL: sql, TimeoutMs: 30_000})
			results <- outcome{status: status, retryAfter: retryAfter, err: err}
		}()
	}
	wg.Wait()
	close(results)

	ok, shed := 0, 0
	for o := range results {
		if o.err != nil {
			t.Fatal(o.err)
		}
		switch o.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if o.retryAfter == "" || o.retryAfter == "0" {
				t.Fatalf("429 without a Retry-After header: %+v", o)
			}
		default:
			t.Fatalf("unexpected status %d under saturation", o.status)
		}
	}
	if ok == 0 {
		t.Fatal("saturation completed zero plans")
	}
	if shed == 0 {
		t.Fatal("saturation shed nothing: admission control is not engaging")
	}
	if ok+shed != total {
		t.Fatalf("%d ok + %d shed != %d requests", ok, shed, total)
	}

	// Zero admitted requests were dropped: every admission is accounted for
	// by a completed 200, and the shed counters cover every 429.
	var stats StatsResponse
	getJSON(t, client, ts.URL+"/stats", &stats)
	if got := stats.Server.Admitted; got != uint64(ok) {
		t.Fatalf("admitted %d but %d requests completed: an in-flight request was dropped", got, ok)
	}
	if got := stats.Server.ShedQueueFull + stats.Server.ShedSLO; got != uint64(shed) {
		t.Fatalf("shed counters %d != %d observed 429s", got, shed)
	}
	if srv.adm.queued.Load() != 0 {
		t.Fatalf("queue gauge %d after the burst", srv.adm.queued.Load())
	}
}

// TestIntegrationHotPolicySwapAcrossRequests runs a full lifecycle under
// live HTTP traffic: responses must expose monotone non-decreasing policy
// versions, at least one hot swap must be observed across requests, and the
// phase endpoint must report the completed state machine afterwards.
func TestIntegrationHotPolicySwapAcrossRequests(t *testing.T) {
	svc := newTestTenant(t, 3, handsfree.WithCache(handsfree.CacheConfig{Capacity: 1 << 14}))
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()

	if err := svc.StartTraining(context.Background(), quickLifecycle()); err != nil {
		t.Fatal(err)
	}
	var versions []uint64
	queries := svc.Queries()
	for i := 0; svc.TrainingActive(); i++ {
		var plan PlanResponse
		resp := postJSON(t, client, ts.URL+"/plansql",
			PlanRequest{SQL: queries[i%len(queries)].SQL()}, &plan)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mid-training plan status %d", resp.StatusCode)
		}
		if plan.Cost <= 0 || plan.ExpertCost <= 0 || plan.Source == "" {
			t.Fatalf("torn decision under training: %+v", plan)
		}
		versions = append(versions, plan.PolicyVersion)
	}
	if err := svc.WaitTraining(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One more request after the lifecycle completes: it must observe the
	// final published policy, so the version stream ends above zero.
	var final PlanResponse
	if resp := postJSON(t, client, ts.URL+"/plansql", PlanRequest{SQL: queries[0].SQL()}, &final); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-training plan status %d", resp.StatusCode)
	}
	versions = append(versions, final.PolicyVersion)

	var last uint64
	swaps := 0
	for _, v := range versions {
		if v < last {
			t.Fatalf("policy version went backwards across requests: %v", versions)
		}
		if v > last {
			swaps++
		}
		last = v
	}
	if last == 0 || swaps == 0 {
		t.Fatalf("no hot policy swap observed across %d requests", len(versions))
	}

	var phase PhaseResponse
	getJSON(t, client, ts.URL+"/phase", &phase)
	if phase.Phase != "done" || phase.TrainingActive || phase.PolicyVersion == 0 {
		t.Fatalf("phase after lifecycle: %+v", phase)
	}
	if len(phase.Transitions) != 4 {
		t.Fatalf("transitions %+v, want the 4-step state machine", phase.Transitions)
	}
	for _, tr := range phase.Transitions {
		if tr.Reason == "" {
			t.Fatalf("transition without a reason: %+v", tr)
		}
	}
}

// TestIntegrationTwoTenantsIsolated proves the multi-tenant registry keeps
// workloads independent: tenant A trains to completion and serves from its
// own cache with its own fallback counters while tenant B — same listener,
// same admission queue — stays untrained, uncached, and uncounted.
func TestIntegrationTwoTenantsIsolated(t *testing.T) {
	// A's safeguard ratio is absurdly tight so its learned rollouts always
	// fall back — a deterministic way to exercise A's fallback counter.
	svcA := newTestTenant(t, 3,
		handsfree.WithCache(handsfree.CacheConfig{Capacity: 1 << 14}),
		handsfree.WithFallbackRatio(1e-9))
	svcB := newTestTenant(t, 5)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"alpha": svcA, "beta": svcB})
	client := ts.Client()

	if err := svcA.StartTraining(context.Background(), quickLifecycle()); err != nil {
		t.Fatal(err)
	}
	if err := svcA.WaitTraining(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Serve A's workload twice (second pass hits A's plan cache).
	for round := 0; round < 2; round++ {
		for _, q := range svcA.Queries() {
			var plan PlanResponse
			resp := postJSON(t, client, ts.URL+"/plansql?tenant=alpha", PlanRequest{SQL: q.SQL()}, &plan)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("alpha plan status %d", resp.StatusCode)
			}
			if plan.PolicyVersion == 0 {
				t.Fatalf("trained tenant served with no policy: %+v", plan)
			}
		}
	}

	var statsA, statsB StatsResponse
	getJSON(t, client, ts.URL+"/stats?tenant=alpha", &statsA)
	getJSON(t, client, ts.URL+"/stats?tenant=beta", &statsB)
	a, b := statsA.Tenants[0], statsB.Tenants[0]
	if a.Phase != "done" || a.PolicyVersion == 0 || a.Plans != 8 {
		t.Fatalf("tenant alpha: %+v", a)
	}
	if a.Fallbacks == 0 {
		t.Fatalf("alpha's 1e-9 safeguard never fired: %+v", a)
	}
	if b.Phase != "idle" || b.PolicyVersion != 0 || b.Plans != 0 || b.Fallbacks != 0 {
		t.Fatalf("tenant beta leaked state from alpha: %+v", b)
	}

	// Caches are isolated: alpha's warmed, beta's empty (disabled).
	var cacheA, cacheB CacheResponse
	getJSON(t, client, ts.URL+"/cache?tenant=alpha", &cacheA)
	getJSON(t, client, ts.URL+"/cache?tenant=beta", &cacheB)
	if cacheA.Hits == 0 || cacheA.Size == 0 {
		t.Fatalf("alpha cache never warmed: %+v", cacheA)
	}
	if cacheB.Hits != 0 || cacheB.Misses != 0 || cacheB.Size != 0 {
		t.Fatalf("beta cache leaked from alpha: %+v", cacheB)
	}

	// Beta still serves — untrained, expert source, version 0.
	var planB PlanResponse
	resp := postJSON(t, client, ts.URL+"/plansql?tenant=beta", PlanRequest{SQL: svcB.Queries()[0].SQL()}, &planB)
	if resp.StatusCode != http.StatusOK || planB.Source != "expert" || planB.PolicyVersion != 0 {
		t.Fatalf("beta plan: status %d %+v", resp.StatusCode, planB)
	}
	getJSON(t, client, ts.URL+"/stats?tenant=beta", &statsB)
	if statsB.Tenants[0].Plans != 1 || statsB.Tenants[0].ExpertServed != 1 {
		t.Fatalf("beta counters: %+v", statsB.Tenants[0])
	}
}

// TestIntegrationGracefulDrainMidTraining shuts the server down while a
// tenant is mid-training and a slow plan is in flight: the in-flight plan
// must complete with 200, new requests must bounce with 503, healthz must
// flip to draining, the lifecycle goroutine must stop cleanly, and no
// goroutines may leak.
func TestIntegrationGracefulDrainMidTraining(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := newTestTenant(t, 3)
	srv, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()
	sql := twelveRelSQL(t, svc)

	if err := svc.StartTraining(context.Background(), liveTraining()); err != nil {
		t.Fatal(err)
	}
	// Wait for training to actually be under way (past demonstration).
	deadline := time.Now().Add(30 * time.Second)
	for svc.Phase() != handsfree.PhaseCostTraining {
		if time.Now().After(deadline) {
			t.Fatalf("lifecycle never reached cost training (phase %v)", svc.Phase())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Put a slow plan in flight, then drain while it runs.
	inflight := make(chan PlanResponse, 1)
	inflightErr := make(chan error, 1)
	go func() {
		status, _, raw, err := rawPost(client, ts.URL+"/plansql",
			PlanRequest{SQL: sql, TimeoutMs: 30_000})
		if err != nil {
			inflightErr <- err
			return
		}
		if status != http.StatusOK {
			inflightErr <- fmt.Errorf("in-flight plan status %d: %s", status, raw)
			return
		}
		var plan PlanResponse
		if err := json.Unmarshal(raw, &plan); err != nil {
			inflightErr <- err
			return
		}
		inflight <- plan
	}()
	// Wait until the plan has passed admission and its sweep is under way —
	// only planning requests touch the Admitted counter, so this is exact.
	for waitStart := time.Now(); ; {
		var stats StatsResponse
		getJSON(t, client, ts.URL+"/stats", &stats)
		if stats.Server.Admitted >= 1 {
			break
		}
		if time.Since(waitStart) > 10*time.Second {
			t.Fatalf("plan request never admitted: %+v", stats.Server)
		}
		time.Sleep(2 * time.Millisecond)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	drainTime := time.Since(start)

	// The in-flight plan completed during the drain.
	select {
	case err := <-inflightErr:
		t.Fatal(err)
	case plan := <-inflight:
		if plan.Cost <= 0 {
			t.Fatalf("drained in-flight plan is torn: %+v", plan)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight plan never returned after drain")
	}
	if drainTime > 20*time.Second {
		t.Fatalf("drain took %v", drainTime)
	}

	// The lifecycle stopped cleanly mid-training.
	if got := svc.Phase(); got != handsfree.PhaseStopped {
		t.Fatalf("phase after drain = %v, want stopped", got)
	}
	if svc.TrainingActive() {
		t.Fatal("lifecycle goroutine still running after drain")
	}

	// New requests bounce with 503 + draining; healthz flips to draining.
	var er ErrorResponse
	resp := postJSON(t, client, ts.URL+"/plansql", PlanRequest{SQL: svc.Queries()[0].SQL()}, &er)
	if resp.StatusCode != http.StatusServiceUnavailable || er.Error.Code != "draining" {
		t.Fatalf("post-drain request: status %d body %+v", resp.StatusCode, er)
	}
	var health HealthResponse
	hresp := getJSON(t, client, ts.URL+"/healthz", &health)
	if hresp.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Fatalf("healthz after drain: status %d %+v", hresp.StatusCode, health)
	}

	// No goroutine leak: with the listener closed and idle connections shut,
	// the count returns to (about) where it started.
	ts.Close()
	client.CloseIdleConnections()
	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}
