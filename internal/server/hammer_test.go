package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	"handsfree"
)

// TestHammer100ClientsDuringTraining is the -race twin of the integration
// harness: 100 concurrent HTTP clients plan against a tenant that is live
// training and hot-swapping policies the whole time. Every response must be
// a complete decision (positive finite cost, a valid source, the safeguard
// bound respected) and each client's policy versions must be monotone
// non-decreasing across its sequential requests.
func TestHammer100ClientsDuringTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short mode")
	}
	svc := newTestTenant(t, 3, handsfree.WithCache(handsfree.CacheConfig{Capacity: 1 << 14}))
	ratio := svc.FallbackRatio()
	if ratio <= 0 {
		t.Fatalf("test needs an active safeguard, got ratio %v", ratio)
	}
	// Queue generously: this test is about correctness under concurrency,
	// not shedding, so nothing should bounce.
	_, ts := newTestServer(t, Config{
		QueueDepth: 4096,
		SLO:        30 * time.Second,
	}, map[string]*handsfree.Service{"solo": svc})

	client := ts.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		tr.MaxIdleConnsPerHost = 128
	}

	ctx := context.Background()
	if err := svc.StartTraining(ctx, liveTraining()); err != nil {
		t.Fatal(err)
	}

	const (
		clients     = 100
		reqsPerConn = 6
	)
	queries := svc.Queries()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var lastVersion uint64
			for i := 0; i < reqsPerConn; i++ {
				q := queries[(c+i)%len(queries)]
				status, _, raw, err := rawPost(client, ts.URL+"/plansql",
					PlanRequest{SQL: q.SQL(), TimeoutMs: 60_000})
				if err != nil {
					errCh <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				if status != http.StatusOK {
					errCh <- fmt.Errorf("client %d: status %d: %s", c, status, raw)
					return
				}
				var plan PlanResponse
				if err := json.Unmarshal(raw, &plan); err != nil {
					errCh <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				if plan.Cost <= 0 || math.IsNaN(plan.Cost) || math.IsInf(plan.Cost, 0) ||
					plan.ExpertCost <= 0 {
					errCh <- fmt.Errorf("client %d: torn decision %+v", c, plan)
					return
				}
				switch plan.Source {
				case "expert", "learned", "fallback":
				default:
					errCh <- fmt.Errorf("client %d: unknown source %q", c, plan.Source)
					return
				}
				if plan.Cost > ratio*plan.ExpertCost*(1+1e-12) {
					errCh <- fmt.Errorf("client %d: safeguard breached: cost %v > %v×%v",
						c, plan.Cost, ratio, plan.ExpertCost)
					return
				}
				if plan.PolicyVersion < lastVersion {
					errCh <- fmt.Errorf("client %d: policy version went backwards (%d → %d)",
						c, lastVersion, plan.PolicyVersion)
					return
				}
				lastVersion = plan.PolicyVersion
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Training was genuinely live throughout; stop it and sanity-check the
	// server saw every request.
	if !svc.TrainingActive() {
		t.Fatal("lifecycle ended before the hammer finished: the test lost its live-training premise")
	}
	if err := svc.StopTraining(ctx); err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	getJSON(t, client, ts.URL+"/stats", &stats)
	if got := stats.Server.Admitted; got != clients*reqsPerConn {
		t.Fatalf("admitted %d, want %d", got, clients*reqsPerConn)
	}
	if stats.Server.ShedQueueFull+stats.Server.ShedSLO != 0 {
		t.Fatalf("hammer shed requests despite generous queue: %+v", stats.Server)
	}
	if st := stats.Tenants[0]; st.Plans != clients*reqsPerConn {
		t.Fatalf("tenant planned %d, want %d", st.Plans, clients*reqsPerConn)
	}
}
