package server

import (
	"fmt"
	"sort"
	"sync"

	"handsfree"
)

// Tenant is one workload/schema behind the listener: an independent
// handsfree.Service with its own substrate, plan cache, learning lifecycle,
// policy versions, and fallback counters. Tenants share nothing but the
// listener and the admission queue.
type Tenant struct {
	name string
	svc  *handsfree.Service
}

// Name returns the tenant's registry name.
func (t *Tenant) Name() string { return t.name }

// Service returns the tenant's optimizer service.
func (t *Tenant) Service() *handsfree.Service { return t.svc }

// Registry is the tenant directory: name → Service, concurrency-safe.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// NewRegistry returns an empty tenant registry.
func NewRegistry() *Registry {
	return &Registry{tenants: map[string]*Tenant{}}
}

// Add registers a tenant. Names must be unique and non-empty.
func (r *Registry) Add(name string, svc *handsfree.Service) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("server: tenant name must be non-empty")
	}
	if svc == nil {
		return nil, fmt.Errorf("server: tenant %q has a nil service", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[name]; ok {
		return nil, fmt.Errorf("server: tenant %q already registered", name)
	}
	t := &Tenant{name: name, svc: svc}
	r.tenants[name] = t
	return t, nil
}

// Get looks a tenant up by name. An empty name resolves iff exactly one
// tenant is registered (the single-tenant convenience).
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.tenants) == 1 {
			for _, t := range r.tenants {
				return t, true
			}
		}
		return nil, false
	}
	t, ok := r.tenants[name]
	return t, ok
}

// Names returns the registered tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.tenants))
	for n := range r.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the tenants in name order.
func (r *Registry) All() []*Tenant {
	names := r.Names()
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Tenant, 0, len(names))
	for _, n := range names {
		out = append(out, r.tenants[n])
	}
	return out
}

// Len returns the registered tenant count.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}
