// Package server is the network-facing front end of the hands-free
// optimizer: a JSON-over-HTTP surface that multiplexes N independent
// handsfree.Services — one per tenant, each with its own plan cache,
// learning lifecycle, policy versions, and fallback counters — behind one
// listener, with admission control (bounded queue, SLO-based load shedding),
// per-request deadlines mapped onto the Plan(ctx) cancellation path, and
// graceful drain that completes in-flight plans even mid-training.
//
// Endpoints:
//
//	POST /plan        plan a structured query (JSON IR)
//	POST /plansql     plan a SQL string
//	POST /execute     plan a structured query AND run the served plan,
//	                  returning its observed latency (feeds the tenant's
//	                  latency guard and drift detector)
//	POST /executesql  same, from a SQL string
//	GET  /phase       lifecycle phase + transition history for one tenant
//	GET  /drift       one tenant's execution-feedback/drift snapshot
//	GET  /stats       server admission counters + per-tenant serving stats
//	GET  /cache       per-tenant plan cache counters
//	GET  /healthz     liveness (503 while draining)
//
// Planning endpoints take the tenant from the "tenant" query parameter or
// the X-Tenant header; a single-tenant server accepts requests with no
// tenant named. See ARCHITECTURE.md, "Serving layer".
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"handsfree/internal/query"
)

// maxBodyBytes bounds a planning request body; anything larger is a 400.
const maxBodyBytes = 1 << 20

// PlanRequest is the body of POST /plan and POST /plansql. Exactly one of
// SQL (for /plansql) or Query (for /plan) carries the query.
type PlanRequest struct {
	// SQL is the query text (/plansql).
	SQL string `json:"sql,omitempty"`
	// Query is the structured logical query IR (/plan).
	Query *WireQuery `json:"query,omitempty"`
	// TimeoutMs is the per-request planning deadline in milliseconds. It is
	// mapped onto the context handed to Service.Plan, so an expiring
	// deadline cancels the search mid-flight and surfaces as a 504. Zero
	// uses the server's default; values above the server cap are clamped.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Explain asks for the served plan tree in EXPLAIN format.
	Explain bool `json:"explain,omitempty"`
	// Mode selects how /execute and /executesql run the served plan:
	// "exact" (or empty — the default) runs it in full; "approx" answers
	// eligible aggregate queries from the table's row sample with bootstrap
	// confidence intervals, falling back to exact execution when the error
	// budget cannot be met. Planning endpoints reject the field.
	Mode string `json:"mode,omitempty"`
	// MaxError is the approximate-execution error budget: every estimate's
	// confidence-interval half-width must stay within max_error × |estimate|
	// (0 uses the service default; only meaningful with mode "approx").
	MaxError float64 `json:"max_error,omitempty"`
}

// WireQuery is the JSON form of the logical query IR.
type WireQuery struct {
	Name       string          `json:"name,omitempty"`
	Relations  []WireRelation  `json:"relations"`
	Joins      []WireJoin      `json:"joins,omitempty"`
	Filters    []WireFilter    `json:"filters,omitempty"`
	Aggregates []WireAggregate `json:"aggregates,omitempty"`
	GroupBys   []WireGroupBy   `json:"group_bys,omitempty"`
}

// WireRelation is one FROM-clause entry. An empty alias defaults to the
// table name.
type WireRelation struct {
	Table string `json:"table"`
	Alias string `json:"alias,omitempty"`
}

// WireJoin is an equality join predicate.
type WireJoin struct {
	LeftAlias  string `json:"left_alias"`
	LeftCol    string `json:"left_col"`
	RightAlias string `json:"right_alias"`
	RightCol   string `json:"right_col"`
}

// WireFilter is a single-column comparison predicate. Op is one of
// "=", "<", "<=", ">", ">=", "<>".
type WireFilter struct {
	Alias  string `json:"alias"`
	Column string `json:"column"`
	Op     string `json:"op"`
	Value  int64  `json:"value"`
}

// WireAggregate is one SELECT-list aggregate. Kind is one of "COUNT",
// "MIN", "MAX", "SUM"; COUNT with empty alias/column is COUNT(*).
type WireAggregate struct {
	Kind   string `json:"kind"`
	Alias  string `json:"alias,omitempty"`
	Column string `json:"column,omitempty"`
}

// WireGroupBy is one grouping column.
type WireGroupBy struct {
	Alias  string `json:"alias"`
	Column string `json:"column"`
}

// PlanResponse is the body of a successful planning request.
type PlanResponse struct {
	Tenant string `json:"tenant"`
	// Query names what was planned (the query's Name, else its SQL).
	Query string `json:"query,omitempty"`
	// Source is which planner produced the served plan: "expert",
	// "learned", or "fallback" (learned plan regressed past the safeguard).
	Source string `json:"source"`
	// Cost is the served plan's cost-model estimate; ExpertCost the
	// traditional optimizer's (the safeguard reference).
	Cost       float64 `json:"cost"`
	ExpertCost float64 `json:"expert_cost"`
	// LearnedCost is present only when a learned rollout ran.
	LearnedCost *float64 `json:"learned_cost,omitempty"`
	// PolicyVersion is the policy snapshot consulted (0 = none yet).
	// Within one client connection it is monotone non-decreasing.
	PolicyVersion uint64 `json:"policy_version"`
	// Phase is the tenant's lifecycle phase at serving time.
	Phase string `json:"phase"`
	// Plan is the EXPLAIN rendering (only with "explain": true).
	Plan string `json:"plan,omitempty"`
	// QueueMs is time spent waiting in the admission queue; PlanMs is the
	// planning time proper.
	QueueMs float64 `json:"queue_ms"`
	PlanMs  float64 `json:"plan_ms"`
}

// ExecuteResponse is the body of a successful POST /execute or
// POST /executesql: the safeguarded serving decision (as in PlanResponse)
// plus what actually happened when the served plan ran.
type ExecuteResponse struct {
	Tenant string `json:"tenant"`
	Query  string `json:"query,omitempty"`
	// Source is "expert", "learned", or "fallback"; LatencyGuarded marks a
	// fallback forced by the observed-latency guard rather than the cost
	// guard, and Failed one forced at execution time (the learned plan's
	// execution failed and the expert plan was run and served instead).
	Source         string `json:"source"`
	LatencyGuarded bool   `json:"latency_guarded,omitempty"`
	Failed         bool   `json:"failed,omitempty"`
	// Cost/ExpertCost/LearnedCost are the cost-model estimates, as in
	// PlanResponse.
	Cost          float64  `json:"cost"`
	ExpertCost    float64  `json:"expert_cost"`
	LearnedCost   *float64 `json:"learned_cost,omitempty"`
	PolicyVersion uint64   `json:"policy_version"`
	Phase         string   `json:"phase"`
	// Fingerprint is the query's canonical fingerprint (zero-padded hex —
	// uint64 would lose precision in JavaScript clients), the key its
	// execution history is tracked under.
	Fingerprint string `json:"fingerprint"`
	// LatencyMs is the served plan's observed execution latency (the budget
	// itself when TimedOut). Rows and WorkUnits describe the result.
	LatencyMs float64 `json:"latency_ms"`
	TimedOut  bool    `json:"timed_out,omitempty"`
	Rows      int     `json:"rows"`
	WorkUnits int64   `json:"work_units"`
	// LatencyRatio is the fingerprint's rolling learned/expert observed
	// latency ratio at decision time (absent until both windows hold their
	// minimum samples).
	LatencyRatio *float64 `json:"latency_ratio,omitempty"`
	// Approx marks an approximately executed answer: Estimates carries the
	// sample-scaled aggregates with their confidence intervals and
	// SampleFraction the fraction of the table actually scanned.
	// ApproxFellBack reports that mode "approx" was requested but the query
	// was ineligible or the error budget unsatisfiable, so the answer above
	// is an exact execution.
	Approx         bool           `json:"approx,omitempty"`
	ApproxFellBack bool           `json:"approx_fell_back,omitempty"`
	Estimates      []EstimateInfo `json:"estimates,omitempty"`
	SampleFraction float64        `json:"sample_fraction,omitempty"`
	// Plan is the EXPLAIN rendering (only with "explain": true).
	Plan string `json:"plan,omitempty"`
	// QueueMs is admission-queue wait; TotalMs is planning + execution.
	QueueMs float64 `json:"queue_ms"`
	TotalMs float64 `json:"total_ms"`
}

// EstimateInfo is one approximate aggregate on the wire: the point estimate
// with its 99% bootstrap confidence interval.
type EstimateInfo struct {
	// Name matches the exact executor's output column naming
	// ("agg<i>_<KIND>"; derived averages are "avg<i>_<column>").
	Name string `json:"name"`
	// Kind is the aggregate function: COUNT, SUM, or the derived AVG.
	Kind string `json:"kind"`
	// Value is the sample-scaled point estimate; Lo and Hi bound its
	// confidence interval; RelError is the half-width relative to |Value|.
	Value    float64 `json:"value"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	RelError float64 `json:"rel_error"`
}

// DriftResponse is the body of GET /drift: one tenant's execution feedback
// loop — the guard/drift thresholds in force, the loop's counters, and the
// bounded history store behind them.
type DriftResponse struct {
	Tenant string `json:"tenant"`
	Phase  string `json:"phase"`
	// GuardRatio, DriftRatio, DriftSustain are the resolved thresholds
	// (negative ratio = that mechanism disabled).
	GuardRatio   float64 `json:"guard_ratio"`
	DriftRatio   float64 `json:"drift_ratio"`
	DriftSustain int     `json:"drift_sustain"`
	// Executions counts /execute-path runs; Failures injected or failed
	// executions; TimedOut budget-censored ones; LatencyGuarded serving
	// decisions forced to the expert by the observed-latency guard.
	Executions     uint64 `json:"executions"`
	Failures       uint64 `json:"failures"`
	TimedOut       uint64 `json:"timed_out"`
	LatencyGuarded uint64 `json:"latency_guarded"`
	// DriftEvents counts drift-detector trips; Retrains completed
	// drift-triggered re-training rounds; WorstRatio the worst finite
	// learned/expert ratio seen since the last round (absent when none).
	DriftEvents uint64          `json:"drift_events"`
	Retrains    uint64          `json:"retrains"`
	WorstRatio  *float64        `json:"worst_ratio,omitempty"`
	History     ExecHistoryInfo `json:"history"`
	// Entries is the per-fingerprint view behind the aggregate counters,
	// most recently executed first (absent when nothing has executed). The
	// aggregate fields above keep their shape regardless.
	Entries []DriftEntryInfo `json:"entries,omitempty"`
}

// DriftEntryInfo is one fingerprint's execution-feedback state.
type DriftEntryInfo struct {
	// Fingerprint is the query's canonical fingerprint, in %016x hex.
	Fingerprint string `json:"fingerprint"`
	// Ratio is the rolling learned/expert observed-latency ratio (absent
	// until both windows hold their configured minimum samples).
	Ratio *float64 `json:"ratio,omitempty"`
	// Learned / Expert are the current latency-window sizes.
	Learned int `json:"learned"`
	Expert  int `json:"expert"`
	// Streak is the drift detector's consecutive-degradation count.
	Streak int `json:"streak"`
	// LastSource is the serving decision that last touched the fingerprint:
	// "learned", "expert", "fallback", "latency-guard", or "demonstration"
	// (absent when only sourceless shadow probes have recorded).
	LastSource string `json:"last_source,omitempty"`
}

// ExecHistoryInfo snapshots the bounded per-fingerprint execution history.
type ExecHistoryInfo struct {
	Fingerprints   int    `json:"fingerprints"`
	Evictions      uint64 `json:"evictions"`
	Records        uint64 `json:"records"`
	Learned        uint64 `json:"learned"`
	Expert         uint64 `json:"expert"`
	Rejected       uint64 `json:"rejected"`
	TimedOut       uint64 `json:"timed_out"`
	Failures       uint64 `json:"failures"`
	LearnedHeld    int    `json:"learned_held"`
	ExpertHeld     int    `json:"expert_held"`
	LearnedFlushes uint64 `json:"learned_flushes"`
}

// PhaseResponse is the body of GET /phase.
type PhaseResponse struct {
	Tenant         string           `json:"tenant"`
	Phase          string           `json:"phase"`
	TrainingActive bool             `json:"training_active"`
	PolicyVersion  uint64           `json:"policy_version"`
	Transitions    []TransitionInfo `json:"transitions,omitempty"`
}

// TransitionInfo is one lifecycle state-machine transition.
type TransitionInfo struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Reason string `json:"reason"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Server  ServerStats   `json:"server"`
	Tenants []TenantStats `json:"tenants"`
}

// ServerStats are the listener-wide admission and serving counters.
type ServerStats struct {
	// Requests counts every planning request that reached admission;
	// Admitted the ones that got a slot. ShedQueueFull and ShedSLO split
	// the 429s: queue at capacity vs queue wait riding the SLO.
	Requests      uint64 `json:"requests"`
	Admitted      uint64 `json:"admitted"`
	ShedQueueFull uint64 `json:"shed_queue_full"`
	ShedSLO       uint64 `json:"shed_slo"`
	// Timeouts counts 504s (per-request deadline expired mid-search);
	// ClientCancels requests whose client went away mid-plan; DrainRejects
	// 503s sent while draining.
	Timeouts      uint64 `json:"timeouts"`
	ClientCancels uint64 `json:"client_cancels"`
	DrainRejects  uint64 `json:"drain_rejects"`
	// Inflight and Queued are point-in-time gauges.
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	Tenants  int   `json:"tenants"`
	Draining bool  `json:"draining"`
}

// TenantStats is one tenant's lifecycle and serving snapshot.
type TenantStats struct {
	Name          string  `json:"name"`
	Phase         string  `json:"phase"`
	PolicyVersion uint64  `json:"policy_version"`
	Plans         uint64  `json:"plans"`
	LearnedServed uint64  `json:"learned_served"`
	ExpertServed  uint64  `json:"expert_served"`
	Fallbacks     uint64  `json:"fallbacks"`
	CostEpisodes  int     `json:"cost_episodes"`
	LatencyEps    int     `json:"latency_episodes"`
	CostRatio     float64 `json:"cost_ratio,omitempty"`
	// StatsMode says which statistics source the tenant's planner runs on:
	// "exact" (histograms) or "sketch" (HLL/Count-Min/sample).
	StatsMode string `json:"stats_mode"`
	// ApproxServed / ApproxFallbacks count approximate executions served vs
	// fallen back to exact; the audit fields score served answers against
	// periodic exact re-executions (mean relative error absent until the
	// first audit).
	ApproxServed      uint64   `json:"approx_served,omitempty"`
	ApproxFallbacks   uint64   `json:"approx_fallbacks,omitempty"`
	ApproxAudits      uint64   `json:"approx_audits,omitempty"`
	AuditEstimates    uint64   `json:"approx_audit_estimates,omitempty"`
	AuditCovered      uint64   `json:"approx_audit_covered,omitempty"`
	AuditMeanRelError *float64 `json:"approx_audit_mean_rel_error,omitempty"`
}

// CacheResponse is the body of GET /cache: one tenant's plan cache counters.
type CacheResponse struct {
	Tenant         string  `json:"tenant"`
	Hits           uint64  `json:"hits"`
	Misses         uint64  `json:"misses"`
	Puts           uint64  `json:"puts"`
	Evictions      uint64  `json:"evictions"`
	EpochBumps     uint64  `json:"epoch_bumps"`
	AdmissionSkips uint64  `json:"admission_skips"`
	Size           int     `json:"size"`
	Epoch          uint64  `json:"epoch"`
	HitRate        float64 `json:"hit_rate"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"` // "ok" or "draining"
	Tenants int    `json:"tenants"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is a machine-readable error: a stable code plus a message.
type ErrorDetail struct {
	// Code is one of: bad_request, unknown_tenant, plan_error,
	// execute_error, deadline_exceeded, canceled, queue_full, slo_shed,
	// draining, method_not_allowed, not_found.
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiError carries an HTTP status + wire error through the handler layers.
type apiError struct {
	status  int
	code    string
	message string
	// retryAfterSec sets the Retry-After header on 429s.
	retryAfterSec int
}

func (e *apiError) Error() string { return e.message }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: "bad_request", message: fmt.Sprintf(format, args...)}
}

// decodePlanRequest strictly decodes a planning request body. It never
// panics on arbitrary input (fuzz-tested); every malformed body yields a
// *apiError with status 400 and a structured code/message. allowExec admits
// the execution-only fields (mode, max_error); planning endpoints reject
// them.
func decodePlanRequest(body io.Reader, wantSQL, allowExec bool) (*PlanRequest, *apiError) {
	data, err := io.ReadAll(io.LimitReader(body, maxBodyBytes+1))
	if err != nil {
		return nil, badRequest("reading request body: %v", err)
	}
	if len(data) > maxBodyBytes {
		return nil, badRequest("request body exceeds %d bytes", maxBodyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req PlanRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("invalid JSON: %v", err)
	}
	// Reject trailing garbage after the JSON object.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, badRequest("trailing data after JSON body")
	}
	if req.TimeoutMs < 0 {
		return nil, badRequest("timeout_ms must be non-negative, got %d", req.TimeoutMs)
	}
	switch req.Mode {
	case "", "exact", "approx":
	default:
		return nil, badRequest(`mode must be "exact" or "approx", got %q`, req.Mode)
	}
	if req.MaxError < 0 {
		return nil, badRequest("max_error must be non-negative, got %v", req.MaxError)
	}
	if !allowExec {
		if req.Mode != "" {
			return nil, badRequest("mode applies to /execute and /executesql only")
		}
		if req.MaxError != 0 {
			return nil, badRequest("max_error applies to /execute and /executesql only")
		}
	}
	if wantSQL {
		if req.SQL == "" {
			return nil, badRequest(`missing "sql" field`)
		}
		if req.Query != nil {
			return nil, badRequest(`/plansql takes "sql", not "query"`)
		}
	} else {
		if req.Query == nil {
			return nil, badRequest(`missing "query" field`)
		}
		if req.SQL != "" {
			return nil, badRequest(`/plan takes "query", not "sql" (use /plansql)`)
		}
	}
	return &req, nil
}

// parseOp maps a wire comparison operator to the IR.
func parseOp(s string) (query.CmpOp, error) {
	switch s {
	case "=":
		return query.Eq, nil
	case "<":
		return query.Lt, nil
	case "<=":
		return query.Le, nil
	case ">":
		return query.Gt, nil
	case ">=":
		return query.Ge, nil
	case "<>", "!=":
		return query.Ne, nil
	default:
		return 0, fmt.Errorf("unknown comparison operator %q", s)
	}
}

// toQuery converts the wire form into a validated logical query.
func (w *WireQuery) toQuery() (*query.Query, *apiError) {
	if len(w.Relations) == 0 {
		return nil, badRequest("query has no relations")
	}
	q := &query.Query{Name: w.Name}
	for _, r := range w.Relations {
		if r.Table == "" {
			return nil, badRequest("relation with empty table name")
		}
		alias := r.Alias
		if alias == "" {
			alias = r.Table
		}
		q.Relations = append(q.Relations, query.Relation{Table: r.Table, Alias: alias})
	}
	for _, j := range w.Joins {
		q.Joins = append(q.Joins, query.Join{
			LeftAlias: j.LeftAlias, LeftCol: j.LeftCol,
			RightAlias: j.RightAlias, RightCol: j.RightCol,
		})
	}
	for _, f := range w.Filters {
		op, err := parseOp(f.Op)
		if err != nil {
			return nil, badRequest("filter %s.%s: %v", f.Alias, f.Column, err)
		}
		q.Filters = append(q.Filters, query.Filter{Alias: f.Alias, Column: f.Column, Op: op, Value: f.Value})
	}
	for _, a := range w.Aggregates {
		kind, err := parseAgg(a.Kind)
		if err != nil {
			return nil, badRequest("aggregate: %v", err)
		}
		q.Aggregates = append(q.Aggregates, query.Aggregate{Kind: kind, Alias: a.Alias, Column: a.Column})
	}
	for _, g := range w.GroupBys {
		q.GroupBys = append(q.GroupBys, query.GroupBy{Alias: g.Alias, Column: g.Column})
	}
	if err := q.Validate(); err != nil {
		return nil, badRequest("invalid query: %v", err)
	}
	return q, nil
}

// parseAgg maps a wire aggregate function name to the IR.
func parseAgg(s string) (query.AggKind, error) {
	switch s {
	case "COUNT":
		return query.AggCount, nil
	case "MIN":
		return query.AggMin, nil
	case "MAX":
		return query.AggMax, nil
	case "SUM":
		return query.AggSum, nil
	default:
		return 0, fmt.Errorf("unknown aggregate function %q", s)
	}
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client may have gone away; nothing to do
}

// writeError writes the structured error envelope (and Retry-After on 429s).
func writeError(w http.ResponseWriter, e *apiError) {
	if e.retryAfterSec > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", e.retryAfterSec))
	}
	writeJSON(w, e.status, ErrorResponse{Error: ErrorDetail{Code: e.code, Message: e.message}})
}
