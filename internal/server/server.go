package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"handsfree"
	"handsfree/internal/catalog"
)

// Config sizes the front end. The zero value resolves to serving defaults;
// Describe renders the resolved configuration for operator diffs.
type Config struct {
	// Addr is the listen address (used by cmd/handsfree serve; a Server
	// mounted under httptest ignores it). Default ":8080".
	Addr string
	// Concurrency is how many plans may run at once (default GOMAXPROCS).
	Concurrency int
	// QueueDepth bounds how many admitted-but-waiting requests may queue
	// for a slot; the excess is shed with 429 (default 4 × Concurrency).
	QueueDepth int
	// SLO is the longest a request may wait in the admission queue before
	// it is shed with 429 + Retry-After (default 500ms).
	SLO time.Duration
	// DefaultTimeout is the per-request planning deadline applied when the
	// client sends no timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 2m).
	MaxTimeout time.Duration
	// DrainTimeout bounds Shutdown's graceful drain (default 30s).
	DrainTimeout time.Duration
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Concurrency <= 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Concurrency
	}
	if c.SLO <= 0 {
		c.SLO = 500 * time.Millisecond
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
}

// Describe renders the resolved serving configuration, one knob per line,
// so operators can diff deployments (`handsfree env` prints it). The output
// is stable: it is covered by a golden test.
func (c Config) Describe(tenants int) string {
	c.fill()
	var b strings.Builder
	fmt.Fprintf(&b, "serving:\n")
	fmt.Fprintf(&b, "  addr:            %s\n", c.Addr)
	fmt.Fprintf(&b, "  tenants:         %d\n", tenants)
	fmt.Fprintf(&b, "  concurrency:     %d\n", c.Concurrency)
	fmt.Fprintf(&b, "  queue depth:     %d\n", c.QueueDepth)
	fmt.Fprintf(&b, "  queue-wait SLO:  %s\n", c.SLO)
	fmt.Fprintf(&b, "  default timeout: %s\n", c.DefaultTimeout)
	fmt.Fprintf(&b, "  max timeout:     %s\n", c.MaxTimeout)
	fmt.Fprintf(&b, "  drain timeout:   %s\n", c.DrainTimeout)
	return b.String()
}

// Server is the multi-tenant HTTP front end. Create one with New, mount
// Handler() on a listener (or httptest), and Shutdown to drain.
type Server struct {
	cfg Config
	reg *Registry
	adm *admission
	mux *http.ServeMux

	requests      atomic.Uint64
	timeouts      atomic.Uint64
	clientCancels atomic.Uint64
	drainRejects  atomic.Uint64

	// drain state: once draining, new requests are rejected with 503 while
	// in-flight handlers (counted under mu) run to completion. idle is
	// created by Shutdown when handlers are still in flight and closed by
	// the last one to leave.
	mu        sync.Mutex
	draining  bool
	inflightN int64
	idle      chan struct{}
}

// New builds a Server over a tenant registry.
func New(cfg Config, reg *Registry) *Server {
	cfg.fill()
	s := &Server{
		cfg: cfg,
		reg: reg,
		adm: newAdmission(cfg.Concurrency, cfg.QueueDepth, cfg.SLO),
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /plan", func(w http.ResponseWriter, r *http.Request) { s.handlePlan(w, r, false) })
	s.mux.HandleFunc("POST /plansql", func(w http.ResponseWriter, r *http.Request) { s.handlePlan(w, r, true) })
	s.mux.HandleFunc("POST /execute", func(w http.ResponseWriter, r *http.Request) { s.handleExecute(w, r, false) })
	s.mux.HandleFunc("POST /executesql", func(w http.ResponseWriter, r *http.Request) { s.handleExecute(w, r, true) })
	s.mux.HandleFunc("GET /phase", s.handlePhase)
	s.mux.HandleFunc("GET /drift", s.handleDrift)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /cache", s.handleCache)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Config returns the resolved configuration.
func (s *Server) Config() Config { return s.cfg }

// Registry returns the tenant registry.
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the HTTP handler: the route mux wrapped in the
// drain/accounting middleware.
func (s *Server) Handler() http.Handler { return s }

// enter admits a request past the drain gate, counting it in flight.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflightN++
	return true
}

// leave uncounts a finished request and, when the drain is waiting on the
// last one, signals it.
func (s *Server) leave() {
	s.mu.Lock()
	s.inflightN--
	if s.inflightN == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.mu.Unlock()
}

// ServeHTTP implements http.Handler with the drain gate: while draining,
// every endpoint except /healthz answers 503 so load balancers and clients
// move on, and in-flight requests are counted so Shutdown can wait for them.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		if r.URL.Path == "/healthz" {
			s.handleHealthz(w, r)
			return
		}
		s.drainRejects.Add(1)
		writeError(w, &apiError{
			status: http.StatusServiceUnavailable, code: "draining",
			message: "server is draining; no new requests accepted",
		})
		return
	}
	defer s.leave()
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server gracefully: it stops admitting new requests
// (503 + "draining"), cancels every tenant's learning lifecycle and waits
// for the lifecycle goroutines to exit, then waits for in-flight plans to
// complete — they run under their own request contexts, so a shutdown
// mid-training still returns every admitted response. Returns ctx.Err() if
// the drain outlives ctx (cfg.DrainTimeout is the caller's conventional
// bound). Safe to call once; later calls return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	var idle chan struct{}
	if s.inflightN > 0 {
		idle = make(chan struct{})
		s.idle = idle
	}
	s.mu.Unlock()
	// Stop every lifecycle first: training holds goroutines (actors,
	// learner) that must exit cleanly; in-flight serving is untouched — Plan
	// calls run under their own request contexts.
	var firstErr error
	for _, t := range s.reg.All() {
		if err := t.svc.StopTraining(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("server: stopping tenant %q lifecycle: %w", t.name, err)
		}
	}
	if idle != nil {
		select {
		case <-idle:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return firstErr
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// tenantFor resolves the request's tenant from the "tenant" query parameter
// or the X-Tenant header.
func (s *Server) tenantFor(r *http.Request) (*Tenant, *apiError) {
	name := r.URL.Query().Get("tenant")
	if name == "" {
		name = r.Header.Get("X-Tenant")
	}
	t, ok := s.reg.Get(name)
	if !ok {
		if name == "" {
			return nil, &apiError{
				status: http.StatusBadRequest, code: "unknown_tenant",
				message: fmt.Sprintf("no tenant named; pass ?tenant= or X-Tenant (registered: %s)", strings.Join(s.reg.Names(), ", ")),
			}
		}
		return nil, &apiError{
			status: http.StatusNotFound, code: "unknown_tenant",
			message: fmt.Sprintf("unknown tenant %q (registered: %s)", name, strings.Join(s.reg.Names(), ", ")),
		}
	}
	return t, nil
}

// timeoutFor resolves the effective planning deadline for a request.
func (s *Server) timeoutFor(req *PlanRequest) time.Duration {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		d = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// validateAgainstCatalog rejects queries referencing tables or columns the
// tenant's schema does not have — the planner is deliberately lenient about
// unknown names (it costs what it can), but over the wire that leniency
// would turn client typos into confusing plans instead of 400s.
func validateAgainstCatalog(tenant *Tenant, q *handsfree.Query) *apiError {
	cat := tenant.svc.System().DB.Catalog
	tables := make(map[string]*catalog.Table, len(q.Relations))
	for _, r := range q.Relations {
		tbl, err := cat.Table(r.Table)
		if err != nil {
			return badRequest("tenant %q has no table %q", tenant.name, r.Table)
		}
		tables[r.Alias] = tbl
	}
	checkCol := func(alias, col, what string) *apiError {
		tbl, ok := tables[alias]
		if !ok {
			return badRequest("%s references undeclared alias %q", what, alias)
		}
		if !tbl.HasColumn(col) {
			return badRequest("%s: table %q has no column %q", what, tbl.Name, col)
		}
		return nil
	}
	for _, j := range q.Joins {
		if e := checkCol(j.LeftAlias, j.LeftCol, "join"); e != nil {
			return e
		}
		if e := checkCol(j.RightAlias, j.RightCol, "join"); e != nil {
			return e
		}
	}
	for _, f := range q.Filters {
		if e := checkCol(f.Alias, f.Column, "filter"); e != nil {
			return e
		}
	}
	for _, g := range q.GroupBys {
		if e := checkCol(g.Alias, g.Column, "group by"); e != nil {
			return e
		}
	}
	for _, a := range q.Aggregates {
		if a.Column == "" {
			continue // COUNT(*)
		}
		if e := checkCol(a.Alias, a.Column, "aggregate"); e != nil {
			return e
		}
	}
	return nil
}

// resolvePlanShaped resolves the tenant, decodes the body, and validates the
// query for a planning-shaped request — the front half shared by /plan,
// /plansql, /execute, and /executesql.
func (s *Server) resolvePlanShaped(r *http.Request, wantSQL, allowExec bool) (*Tenant, *PlanRequest, *handsfree.Query, string, *apiError) {
	tenant, apiErr := s.tenantFor(r)
	if apiErr != nil {
		return nil, nil, nil, "", apiErr
	}
	req, apiErr := decodePlanRequest(r.Body, wantSQL, allowExec)
	if apiErr != nil {
		return nil, nil, nil, "", apiErr
	}
	var q *handsfree.Query
	var label string
	if wantSQL {
		parsed, err := handsfree.ParseSQL(req.SQL)
		if err != nil {
			return nil, nil, nil, "", badRequest("parsing SQL: %v", err)
		}
		q, label = parsed, req.SQL
	} else {
		var wireErr *apiError
		q, wireErr = req.Query.toQuery()
		if wireErr != nil {
			return nil, nil, nil, "", wireErr
		}
		label = q.Name
		if label == "" {
			label = q.SQL()
		}
	}
	if apiErr := validateAgainstCatalog(tenant, q); apiErr != nil {
		return nil, nil, nil, "", apiErr
	}
	return tenant, req, q, label, nil
}

// planError maps a Plan/Execute error onto the wire: deadline → 504, client
// cancel → 499, anything else → 422 with the given code.
func (s *Server) planError(w http.ResponseWriter, err error, deadline time.Duration, code string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		writeError(w, &apiError{
			status: http.StatusGatewayTimeout, code: "deadline_exceeded",
			message: fmt.Sprintf("planning exceeded the %s deadline", deadline),
		})
	case errors.Is(err, context.Canceled):
		// The client went away mid-plan; nobody reads this response, but
		// count it and answer coherently for proxies that still do.
		s.clientCancels.Add(1)
		writeError(w, &apiError{status: 499, code: "canceled", message: "client closed the request"})
	default:
		writeError(w, &apiError{status: http.StatusUnprocessableEntity, code: code, message: err.Error()})
	}
}

// handlePlan serves POST /plan (structured IR) and POST /plansql (SQL text):
// resolve the tenant, decode, pass admission, then run the tenant's
// safeguarded Plan under the per-request deadline.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request, wantSQL bool) {
	s.requests.Add(1)
	tenant, req, q, label, apiErr := s.resolvePlanShaped(r, wantSQL, false)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}

	release, queueWait, apiErr := s.adm.admit(r.Context())
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req))
	defer cancel()
	start := time.Now()
	res, err := tenant.svc.Plan(ctx, q)
	planTime := time.Since(start)
	if err != nil {
		s.planError(w, err, s.timeoutFor(req), "plan_error")
		return
	}
	resp := PlanResponse{
		Tenant:        tenant.name,
		Query:         label,
		Source:        res.Source.String(),
		Cost:          res.Cost,
		ExpertCost:    res.ExpertCost,
		PolicyVersion: res.PolicyVersion,
		Phase:         tenant.svc.Phase().String(),
		QueueMs:       float64(queueWait) / float64(time.Millisecond),
		PlanMs:        float64(planTime) / float64(time.Millisecond),
	}
	if !math.IsNaN(res.LearnedCost) {
		lc := res.LearnedCost
		resp.LearnedCost = &lc
	}
	if req.Explain {
		resp.Plan = handsfree.ExplainPlan(res.Plan)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExecute serves POST /execute (structured IR) and POST /executesql
// (SQL text): the same safeguarded serving decision as /plan, but the served
// plan is then run on the tenant's engine and its observed latency returned —
// and recorded, so every call feeds the tenant's latency guard and drift
// detector. The per-request deadline covers planning and execution together.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request, wantSQL bool) {
	s.requests.Add(1)
	tenant, req, q, label, apiErr := s.resolvePlanShaped(r, wantSQL, true)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}

	release, queueWait, apiErr := s.adm.admit(r.Context())
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req))
	defer cancel()
	start := time.Now()
	var res handsfree.ExecResult
	var err error
	if req.Mode == "approx" {
		res, err = tenant.svc.ExecuteApprox(ctx, q, req.MaxError)
	} else {
		res, err = tenant.svc.Execute(ctx, q)
	}
	total := time.Since(start)
	if err != nil {
		s.planError(w, err, s.timeoutFor(req), "execute_error")
		return
	}
	resp := ExecuteResponse{
		Tenant:         tenant.name,
		Query:          label,
		Source:         res.Source.String(),
		LatencyGuarded: res.LatencyGuarded,
		Failed:         res.Failed,
		Cost:           res.Cost,
		ExpertCost:     res.ExpertCost,
		PolicyVersion:  res.PolicyVersion,
		Phase:          tenant.svc.Phase().String(),
		Fingerprint:    fmt.Sprintf("%016x", res.Fingerprint),
		LatencyMs:      res.LatencyMs,
		TimedOut:       res.TimedOut,
		Rows:           res.Rows,
		WorkUnits:      res.WorkUnits,
		QueueMs:        float64(queueWait) / float64(time.Millisecond),
		TotalMs:        float64(total) / float64(time.Millisecond),
	}
	if !math.IsNaN(res.LearnedCost) {
		lc := res.LearnedCost
		resp.LearnedCost = &lc
	}
	if !math.IsNaN(res.LatencyRatio) {
		lr := res.LatencyRatio
		resp.LatencyRatio = &lr
	}
	resp.Approx = res.Approx
	resp.ApproxFellBack = res.ApproxFellBack
	resp.SampleFraction = res.SampleFraction
	for _, est := range res.Estimates {
		resp.Estimates = append(resp.Estimates, EstimateInfo{
			Name: est.Name, Kind: est.Kind,
			Value: est.Value, Lo: est.Lo, Hi: est.Hi, RelError: est.RelError,
		})
	}
	if req.Explain {
		resp.Plan = handsfree.ExplainPlan(res.Plan)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDrift serves GET /drift: one tenant's execution feedback snapshot —
// resolved guard/drift thresholds, the loop's counters, and the history
// store behind them. Tenants share nothing here: one tenant's drift never
// shows in another's response.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	tenant, apiErr := s.tenantFor(r)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	st := tenant.svc.ExecStats()
	ec := tenant.svc.ExecutionConfig()
	resp := DriftResponse{
		Tenant:         tenant.name,
		Phase:          tenant.svc.Phase().String(),
		GuardRatio:     ec.GuardRatio,
		DriftRatio:     ec.DriftRatio,
		DriftSustain:   ec.DriftSustain,
		Executions:     st.Executions,
		Failures:       st.Failures,
		TimedOut:       st.TimedOut,
		LatencyGuarded: st.LatencyGuarded,
		DriftEvents:    st.DriftEvents,
		Retrains:       st.Retrains,
		History: ExecHistoryInfo{
			Fingerprints:   st.History.Fingerprints,
			Evictions:      st.History.Evictions,
			Records:        st.History.Records,
			Learned:        st.History.Learned,
			Expert:         st.History.Expert,
			Rejected:       st.History.Rejected,
			TimedOut:       st.History.TimedOut,
			Failures:       st.History.Failures,
			LearnedHeld:    st.History.LearnedHeld,
			ExpertHeld:     st.History.ExpertHeld,
			LearnedFlushes: st.History.LearnedFlushes,
		},
	}
	if !math.IsNaN(st.DriftWorstRatio) {
		wr := st.DriftWorstRatio
		resp.WorstRatio = &wr
	}
	// The per-fingerprint view, bounded so a hot store cannot balloon the
	// response: the store orders entries most recently executed first, so
	// the cap keeps the fingerprints an operator is acting on.
	const maxDriftEntries = 256
	for _, e := range tenant.svc.DriftEntries(maxDriftEntries) {
		info := DriftEntryInfo{
			Fingerprint: fmt.Sprintf("%016x", e.Fingerprint),
			Learned:     e.LearnedN,
			Expert:      e.ExpertN,
			Streak:      e.Streak,
			LastSource:  e.LastSource,
		}
		if !math.IsNaN(e.Ratio) {
			ratio := e.Ratio
			info.Ratio = &ratio
		}
		resp.Entries = append(resp.Entries, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePhase serves GET /phase: one tenant's lifecycle state.
func (s *Server) handlePhase(w http.ResponseWriter, r *http.Request) {
	tenant, apiErr := s.tenantFor(r)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	st := tenant.svc.LifecycleStats()
	resp := PhaseResponse{
		Tenant:         tenant.name,
		Phase:          st.Phase.String(),
		TrainingActive: tenant.svc.TrainingActive(),
		PolicyVersion:  st.PolicyVersion,
	}
	for _, tr := range st.Transitions {
		resp.Transitions = append(resp.Transitions, TransitionInfo{
			From: tr.From.String(), To: tr.To.String(), Reason: tr.Reason,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStats serves GET /stats: the admission counters plus every tenant's
// lifecycle/serving snapshot (or one tenant's with ?tenant=).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	inflight, draining := s.inflightN, s.draining
	s.mu.Unlock()
	resp := StatsResponse{
		Server: ServerStats{
			Requests:      s.requests.Load(),
			Admitted:      s.adm.admitted.Load(),
			ShedQueueFull: s.adm.shedQueueFull.Load(),
			ShedSLO:       s.adm.shedSLO.Load(),
			Timeouts:      s.timeouts.Load(),
			ClientCancels: s.clientCancels.Load(),
			DrainRejects:  s.drainRejects.Load(),
			Inflight:      inflight,
			Queued:        s.adm.queued.Load(),
			Tenants:       s.reg.Len(),
			Draining:      draining,
		},
		Tenants: []TenantStats{},
	}
	tenants := s.reg.All()
	if name := r.URL.Query().Get("tenant"); name != "" {
		t, ok := s.reg.Get(name)
		if !ok {
			writeError(w, &apiError{status: http.StatusNotFound, code: "unknown_tenant", message: fmt.Sprintf("unknown tenant %q", name)})
			return
		}
		tenants = []*Tenant{t}
	}
	for _, t := range tenants {
		st := t.svc.LifecycleStats()
		ts := TenantStats{
			Name:          t.name,
			Phase:         st.Phase.String(),
			PolicyVersion: st.PolicyVersion,
			Plans:         st.Plans,
			LearnedServed: st.LearnedServed,
			ExpertServed:  st.ExpertServed,
			Fallbacks:     st.Fallbacks,
			CostEpisodes:  st.CostEpisodes,
			LatencyEps:    st.LatencyEpisodes,
		}
		if !math.IsInf(st.CostRatio, 0) && st.CostRatio > 0 {
			ts.CostRatio = st.CostRatio
		}
		ts.StatsMode = t.svc.StatsMode().String()
		ap := t.svc.ApproxStats()
		ts.ApproxServed = ap.Served
		ts.ApproxFallbacks = ap.Fallbacks
		ts.ApproxAudits = ap.Audits
		ts.AuditEstimates = ap.AuditEstimates
		ts.AuditCovered = ap.AuditCovered
		if !math.IsNaN(ap.AuditMeanRelError) {
			mre := ap.AuditMeanRelError
			ts.AuditMeanRelError = &mre
		}
		resp.Tenants = append(resp.Tenants, ts)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCache serves GET /cache: one tenant's plan cache counters.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	tenant, apiErr := s.tenantFor(r)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	st := tenant.svc.CacheStats()
	writeJSON(w, http.StatusOK, CacheResponse{
		Tenant:         tenant.name,
		Hits:           st.Hits,
		Misses:         st.Misses,
		Puts:           st.Puts,
		Evictions:      st.Evictions,
		EpochBumps:     st.EpochBumps,
		AdmissionSkips: st.AdmissionSkips,
		Size:           st.Size,
		Epoch:          st.Epoch,
		HitRate:        st.HitRate(),
	})
}

// handleHealthz serves GET /healthz: 200 "ok" while serving, 503 "draining"
// once Shutdown begins (so load balancers rotate the instance out).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{Status: "ok", Tenants: s.reg.Len()}
	status := http.StatusOK
	if s.Draining() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
