package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"handsfree"
)

// newTestTenant builds a small-scale service with a 4-query workload.
func newTestTenant(t testing.TB, seed int64, opts ...handsfree.Option) *handsfree.Service {
	t.Helper()
	svc, err := handsfree.New(append([]handsfree.Option{
		handsfree.WithScale(0.05),
		handsfree.WithWorkload(4, 4, 5, seed),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// newTestServer mounts tenants on a Server behind httptest. The returned
// base URL has no trailing slash.
func newTestServer(t testing.TB, cfg Config, tenants map[string]*handsfree.Service) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	for name, svc := range tenants {
		if _, err := reg.Add(name, svc); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(cfg, reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postJSON posts a JSON body and decodes the response into out (which may be
// nil to skip decoding). It returns the raw response for status/header
// checks; the body is fully read and closed.
func postJSON(t testing.TB, client *http.Client, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s response %q: %v", url, raw, err)
		}
	}
	return resp
}

// getJSON fetches a URL and decodes the JSON response into out.
func getJSON(t testing.TB, client *http.Client, url string, out any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s response %q: %v", url, raw, err)
		}
	}
	return resp
}

func TestHealthzAndTenantRouting(t *testing.T) {
	svcA := newTestTenant(t, 3)
	svcB := newTestTenant(t, 5)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"alpha": svcA, "beta": svcB})
	client := ts.Client()

	var health HealthResponse
	if resp := getJSON(t, client, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Tenants != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	// Two tenants registered: a request naming none is a 400 listing them.
	var errResp ErrorResponse
	resp := postJSON(t, client, ts.URL+"/plansql", PlanRequest{SQL: "SELECT * FROM title t"}, &errResp)
	if resp.StatusCode != http.StatusBadRequest || errResp.Error.Code != "unknown_tenant" {
		t.Fatalf("tenantless request: status %d body %+v", resp.StatusCode, errResp)
	}
	if !strings.Contains(errResp.Error.Message, "alpha") || !strings.Contains(errResp.Error.Message, "beta") {
		t.Fatalf("tenantless error does not list tenants: %q", errResp.Error.Message)
	}

	// Unknown tenant name: 404.
	resp = postJSON(t, client, ts.URL+"/plansql?tenant=nope", PlanRequest{SQL: "SELECT * FROM title t"}, &errResp)
	if resp.StatusCode != http.StatusNotFound || errResp.Error.Code != "unknown_tenant" {
		t.Fatalf("unknown tenant: status %d body %+v", resp.StatusCode, errResp)
	}

	// Named tenants plan fine, via query param and via header.
	var plan PlanResponse
	resp = postJSON(t, client, ts.URL+"/plansql?tenant=alpha", PlanRequest{SQL: svcA.Queries()[0].SQL()}, &plan)
	if resp.StatusCode != http.StatusOK || plan.Tenant != "alpha" || plan.Cost <= 0 {
		t.Fatalf("alpha plan: status %d body %+v", resp.StatusCode, plan)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/plansql", strings.NewReader(`{"sql":"SELECT * FROM title t"}`))
	req.Header.Set("X-Tenant", "beta")
	hr, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("X-Tenant plan: status %d body %s", hr.StatusCode, body)
	}
}

func TestSingleTenantNeedsNoName(t *testing.T) {
	svc := newTestTenant(t, 3)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	var plan PlanResponse
	resp := postJSON(t, ts.Client(), ts.URL+"/plansql", PlanRequest{SQL: svc.Queries()[0].SQL(), Explain: true}, &plan)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if plan.Tenant != "solo" || plan.Source != "expert" || plan.PolicyVersion != 0 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Plan == "" {
		t.Fatal("explain=true returned no plan tree")
	}
	if plan.LearnedCost != nil {
		t.Fatalf("learned cost %v with no policy", *plan.LearnedCost)
	}
}

func TestStructuredPlanEndpoint(t *testing.T) {
	svc := newTestTenant(t, 3)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()

	// Build the wire form of a workload query and check /plan agrees with
	// /plansql on its SQL rendering.
	q := svc.Queries()[0]
	wq := &WireQuery{Name: q.Name}
	for _, r := range q.Relations {
		wq.Relations = append(wq.Relations, WireRelation{Table: r.Table, Alias: r.Alias})
	}
	for _, j := range q.Joins {
		wq.Joins = append(wq.Joins, WireJoin{LeftAlias: j.LeftAlias, LeftCol: j.LeftCol, RightAlias: j.RightAlias, RightCol: j.RightCol})
	}
	for _, f := range q.Filters {
		wq.Filters = append(wq.Filters, WireFilter{Alias: f.Alias, Column: f.Column, Op: f.Op.String(), Value: f.Value})
	}
	for _, a := range q.Aggregates {
		wq.Aggregates = append(wq.Aggregates, WireAggregate{Kind: a.Kind.String(), Alias: a.Alias, Column: a.Column})
	}
	for _, g := range q.GroupBys {
		wq.GroupBys = append(wq.GroupBys, WireGroupBy{Alias: g.Alias, Column: g.Column})
	}
	var structured, sql PlanResponse
	if resp := postJSON(t, client, ts.URL+"/plan", PlanRequest{Query: wq}, &structured); resp.StatusCode != http.StatusOK {
		t.Fatalf("/plan status %d: %+v", resp.StatusCode, structured)
	}
	if resp := postJSON(t, client, ts.URL+"/plansql", PlanRequest{SQL: q.SQL()}, &sql); resp.StatusCode != http.StatusOK {
		t.Fatalf("/plansql status %d", resp.StatusCode)
	}
	if structured.Cost != sql.Cost || structured.ExpertCost != sql.ExpertCost {
		t.Fatalf("structured cost %v vs sql cost %v", structured.Cost, sql.Cost)
	}
}

func TestMalformedRequestsAre400WithStructuredErrors(t *testing.T) {
	svc := newTestTenant(t, 3)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()

	cases := []struct {
		name string
		path string
		body string
	}{
		{"empty body", "/plansql", ""},
		{"not JSON", "/plansql", "SELECT * FROM title"},
		{"trailing garbage", "/plansql", `{"sql":"SELECT * FROM title t"} extra`},
		{"unknown field", "/plansql", `{"sql":"SELECT * FROM title t","bogus":1}`},
		{"missing sql", "/plansql", `{}`},
		{"query on plansql", "/plansql", `{"sql":"x","query":{"relations":[{"table":"title"}]}}`},
		{"negative timeout", "/plansql", `{"sql":"SELECT * FROM title t","timeout_ms":-5}`},
		{"bad SQL", "/plansql", `{"sql":"DELETE FROM title"}`},
		{"missing query", "/plan", `{}`},
		{"sql on plan", "/plan", `{"sql":"SELECT * FROM title t"}`},
		{"no relations", "/plan", `{"query":{"relations":[]}}`},
		{"bad op", "/plan", `{"query":{"relations":[{"table":"title","alias":"t"}],"filters":[{"alias":"t","column":"id","op":"LIKE","value":1}]}}`},
		{"undeclared alias", "/plan", `{"query":{"relations":[{"table":"title","alias":"t"}],"filters":[{"alias":"x","column":"id","op":"=","value":1}]}}`},
		{"duplicate alias", "/plan", `{"query":{"relations":[{"table":"title","alias":"t"},{"table":"title","alias":"t"}]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := client.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, raw)
			}
			var er ErrorResponse
			if err := json.Unmarshal(raw, &er); err != nil {
				t.Fatalf("400 body is not the error envelope: %s", raw)
			}
			if er.Error.Code == "" || er.Error.Message == "" {
				t.Fatalf("unstructured 400: %+v", er)
			}
		})
	}

	// A well-formed query over names the tenant's schema lacks is a client
	// error too: tables and columns are validated against the catalog.
	var er ErrorResponse
	resp := postJSON(t, client, ts.URL+"/plan",
		PlanRequest{Query: &WireQuery{Relations: []WireRelation{{Table: "no_such_table"}}}}, &er)
	if resp.StatusCode != http.StatusBadRequest || er.Error.Code != "bad_request" {
		t.Fatalf("unknown table: status %d body %+v", resp.StatusCode, er)
	}
	resp = postJSON(t, client, ts.URL+"/plan",
		PlanRequest{Query: &WireQuery{
			Relations: []WireRelation{{Table: "title", Alias: "t"}},
			Filters:   []WireFilter{{Alias: "t", Column: "no_such_column", Op: "=", Value: 1}},
		}}, &er)
	if resp.StatusCode != http.StatusBadRequest || er.Error.Code != "bad_request" {
		t.Fatalf("unknown column: status %d body %+v", resp.StatusCode, er)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	svc := newTestTenant(t, 3)
	_, ts := newTestServer(t, Config{}, map[string]*handsfree.Service{"solo": svc})
	resp, err := ts.Client().Get(ts.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /plan status %d, want 405", resp.StatusCode)
	}
}

func TestAdmissionFastPathAndQueueFull(t *testing.T) {
	a := newAdmission(1, 1, 50*time.Millisecond)
	release, wait, apiErr := a.admit(context.Background())
	if apiErr != nil || wait != 0 {
		t.Fatalf("fast path: wait %v err %+v", wait, apiErr)
	}
	// Slot held: one waiter fits the queue, the second is shed immediately.
	waiterDone := make(chan *apiError, 1)
	go func() {
		r2, _, e2 := a.admit(context.Background())
		if r2 != nil {
			defer r2()
		}
		waiterDone <- e2
	}()
	// Give the waiter time to enqueue, then overflow the queue.
	deadline := time.Now().Add(time.Second)
	for a.queued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_, _, e3 := a.admit(context.Background())
	if e3 == nil || e3.status != http.StatusTooManyRequests || e3.code != "queue_full" {
		t.Fatalf("overflow: %+v", e3)
	}
	if e3.retryAfterSec < 1 {
		t.Fatalf("429 without Retry-After estimate: %+v", e3)
	}
	release()
	if e2 := <-waiterDone; e2 != nil {
		t.Fatalf("queued waiter shed despite a freed slot: %+v", e2)
	}
	if got := a.shedQueueFull.Load(); got != 1 {
		t.Fatalf("shedQueueFull = %d", got)
	}
}

func TestAdmissionSLOShed(t *testing.T) {
	a := newAdmission(1, 4, 30*time.Millisecond)
	release, _, apiErr := a.admit(context.Background())
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	defer release()
	start := time.Now()
	_, _, e2 := a.admit(context.Background())
	if e2 == nil || e2.code != "slo_shed" || e2.status != http.StatusTooManyRequests {
		t.Fatalf("SLO shed: %+v", e2)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("shed after %v, want ≈ the 30ms SLO", elapsed)
	}
	if a.shedSLO.Load() != 1 {
		t.Fatalf("shedSLO = %d", a.shedSLO.Load())
	}
}

func TestAdmissionCanceledWhileQueued(t *testing.T) {
	a := newAdmission(1, 4, time.Minute)
	release, _, apiErr := a.admit(context.Background())
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(time.Second)
		for a.queued.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, _, e2 := a.admit(ctx)
	if e2 == nil || e2.code != "canceled" {
		t.Fatalf("canceled waiter: %+v", e2)
	}
}

// TestDescribeGolden pins the operator-facing serving-config rendering: the
// `handsfree env` serving section must stay diffable across deployments, so
// its exact layout is golden.
func TestDescribeGolden(t *testing.T) {
	pinned := Config{
		Addr:           ":9090",
		Concurrency:    8,
		QueueDepth:     32,
		SLO:            250 * time.Millisecond,
		DefaultTimeout: 10 * time.Second,
		MaxTimeout:     time.Minute,
		DrainTimeout:   15 * time.Second,
	}
	want := `serving:
  addr:            :9090
  tenants:         2
  concurrency:     8
  queue depth:     32
  queue-wait SLO:  250ms
  default timeout: 10s
  max timeout:     1m0s
  drain timeout:   15s
`
	if got := pinned.Describe(2); got != want {
		t.Fatalf("Describe mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestDescribeDefaults(t *testing.T) {
	got := Config{}.Describe(1)
	var c Config
	c.fill()
	for _, want := range []string{
		"addr:            :8080",
		"tenants:         1",
		fmt.Sprintf("concurrency:     %d", c.Concurrency),
		fmt.Sprintf("queue depth:     %d", 4*c.Concurrency),
		"queue-wait SLO:  500ms",
		"default timeout: 30s",
		"max timeout:     2m0s",
		"drain timeout:   30s",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("Describe defaults missing %q:\n%s", want, got)
		}
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	svc := newTestTenant(t, 3)
	if _, err := reg.Add("", svc); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if _, err := reg.Add("a", nil); err == nil {
		t.Fatal("nil service accepted")
	}
	if _, err := reg.Add("a", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("a", svc); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if _, ok := reg.Get("a"); !ok {
		t.Fatal("registered tenant not found")
	}
	if _, ok := reg.Get(""); !ok {
		t.Fatal("single-tenant empty-name lookup failed")
	}
	if _, err := reg.Add("b", svc); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get(""); ok {
		t.Fatal("empty-name lookup resolved with two tenants")
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v", names)
	}
}
