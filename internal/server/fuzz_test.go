package server

import (
	"strings"
	"testing"
)

// FuzzPlanRequestDecode drives the /plan request decoder with arbitrary
// bytes. Properties:
//
//  1. decodePlanRequest never panics — any byte sequence either decodes or
//     yields a 400 with a structured, non-empty code and message.
//  2. A body the decoder accepts for /plan converts (toQuery) either into a
//     query the IR validates, or into another structured 400 — never a
//     panic, never a silent nil.
//
// Both endpoints' decode modes are exercised on every input.
func FuzzPlanRequestDecode(f *testing.F) {
	for _, seed := range []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`{"sql":"SELECT * FROM title t"}`,
		`{"sql":"SELECT * FROM title t","timeout_ms":250,"explain":true}`,
		`{"sql":"SELECT * FROM title t","timeout_ms":-1}`,
		`{"sql":"x"} trailing`,
		`{"bogus":1}`,
		`{"query":{"relations":[{"table":"title","alias":"t"}]}}`,
		`{"query":{"relations":[{"table":"title","alias":"t"},{"table":"cast_info","alias":"ci"}],` +
			`"joins":[{"left_alias":"t","left_col":"id","right_alias":"ci","right_col":"movie_id"}],` +
			`"filters":[{"alias":"t","column":"kind_id","op":"<=","value":3}],` +
			`"aggregates":[{"kind":"COUNT"}],"group_bys":[{"alias":"t","column":"kind_id"}]}}`,
		`{"query":{"relations":[]}}`,
		`{"query":{"relations":[{"table":""}]}}`,
		`{"query":{"relations":[{"table":"t","alias":"a"},{"table":"t","alias":"a"}]}}`,
		`{"query":{"relations":[{"table":"t"}],"filters":[{"alias":"t","column":"c","op":"LIKE","value":0}]}}`,
		`{"query":{"relations":[{"table":"t"}],"aggregates":[{"kind":"AVG","column":"c"}]}}`,
		`{"query":{"relations":[{"table":"t"}],"joins":[{"left_alias":"x","left_col":"a","right_alias":"y","right_col":"b"}]}}`,
		"\x00\xff{{{",
		`{"sql":` + `"` + strings.Repeat("A", 4096) + `"}`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, body string) {
		for _, wantSQL := range []bool{true, false} {
			req, apiErr := decodePlanRequest(strings.NewReader(body), wantSQL, wantSQL)
			if apiErr != nil {
				if apiErr.status != 400 || apiErr.code == "" || apiErr.message == "" {
					t.Fatalf("unstructured decode error for %q: %+v", body, apiErr)
				}
				continue
			}
			if req == nil {
				t.Fatalf("decode of %q returned neither request nor error", body)
			}
			if wantSQL {
				continue // SQL strings are fuzzed separately in internal/sqlparse
			}
			q, convErr := req.Query.toQuery()
			if convErr != nil {
				if convErr.status != 400 || convErr.code == "" || convErr.message == "" {
					t.Fatalf("unstructured conversion error for %q: %+v", body, convErr)
				}
				continue
			}
			if q == nil {
				t.Fatalf("toQuery of %q returned neither query nor error", body)
			}
			if err := q.Validate(); err != nil {
				t.Fatalf("toQuery returned an invalid query for %q: %v", body, err)
			}
		}
	})
}
