package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"handsfree"
)

// The serving benchmarks measure sustained plans/sec through the full HTTP
// path (JSON decode, admission, tenant lookup, Plan, JSON encode) at
// several concurrency levels, plus the shed rate when a deliberately
// undersized server is saturated. CI serializes these via cmd/benchjson
// into BENCH_PR7.json.

// rawPostBytes posts a prebuilt JSON body, draining and closing the response.
func rawPostBytes(client *http.Client, url string, body []byte) (status int, retryAfter string, raw []byte, err error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	raw, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Retry-After"), raw, err
}

func benchBodies(b *testing.B, svc *handsfree.Service) [][]byte {
	b.Helper()
	var bodies [][]byte
	for _, q := range svc.Queries() {
		data, err := json.Marshal(PlanRequest{SQL: q.SQL(), TimeoutMs: 60_000})
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, data)
	}
	return bodies
}

// BenchmarkServePlans reports sustained plans/sec at 1, 25, and 100
// concurrent clients against an untrained single-tenant server.
func BenchmarkServePlans(b *testing.B) {
	for _, clients := range []int{1, 25, 100} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			svc := newTestTenant(b, 3)
			_, ts := newTestServer(b, Config{
				QueueDepth: 1 << 14,
				SLO:        time.Minute,
			}, map[string]*handsfree.Service{"solo": svc})
			client := ts.Client()
			if tr, ok := client.Transport.(*http.Transport); ok {
				tr.MaxIdleConnsPerHost = clients + 8
			}
			bodies := benchBodies(b, svc)

			var next atomic.Int64
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						status, _, raw, err := rawPostBytes(client, ts.URL+"/plansql", bodies[i%int64(len(bodies))])
						if err != nil {
							errs <- err
							return
						}
						if status != http.StatusOK {
							errs <- fmt.Errorf("status %d: %s", status, raw)
							return
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "plans/sec")
		})
	}
}

// BenchmarkServeSaturation drives 100 clients at a server sized for one:
// the interesting number is the shed rate — the fraction of requests turned
// away with 429 while the admitted remainder completes. The workload is an
// 8-relation query: slow enough (milliseconds of DP sweep) that in-flight
// plans overlap arriving requests and the queue genuinely builds, even on a
// single-core runner where sub-millisecond plans would serialize naturally
// and never shed.
func BenchmarkServeSaturation(b *testing.B) {
	svc := newTestTenant(b, 3)
	_, ts := newTestServer(b, Config{
		Concurrency: 1,
		QueueDepth:  4,
		SLO:         2 * time.Millisecond,
	}, map[string]*handsfree.Service{"solo": svc})
	client := ts.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		tr.MaxIdleConnsPerHost = 128
	}
	slow, err := svc.System().Workload.ByRelations(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(PlanRequest{SQL: slow.SQL(), TimeoutMs: 60_000})
	if err != nil {
		b.Fatal(err)
	}
	bodies := [][]byte{body}

	const clients = 100
	var next atomic.Int64
	var ok, shed atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				status, _, raw, err := rawPostBytes(client, ts.URL+"/plansql", bodies[i%int64(len(bodies))])
				if err != nil {
					errs <- err
					return
				}
				switch status {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					errs <- fmt.Errorf("status %d: %s", status, raw)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
	total := ok.Load() + shed.Load()
	if total > 0 {
		b.ReportMetric(float64(shed.Load())/float64(total), "shed-rate")
	}
}
