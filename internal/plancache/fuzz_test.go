package plancache

import (
	"math/rand"
	"testing"

	"handsfree/internal/query"
)

// fuzzQuery builds an arbitrary (not necessarily valid) logical query from
// fuzzer-controlled bytes: relation/join/filter/group-by/aggregate counts
// and contents are all derived from the input stream, so the fuzzer explores
// alias collisions, self-joins, duplicate predicates, and empty sections.
func fuzzQuery(data []byte) *query.Query {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	name := func() string {
		names := []string{"t", "mc", "ci", "mk", "n", "k", "a", "b"}
		return names[int(next())%len(names)]
	}
	col := func() string {
		cols := []string{"id", "movie_id", "kind_id", "x", "y"}
		return cols[int(next())%len(cols)]
	}
	q := &query.Query{}
	for i, n := 0, 1+int(next())%6; i < n; i++ {
		q.Relations = append(q.Relations, query.Relation{Table: name(), Alias: name()})
	}
	for i, n := 0, int(next())%6; i < n; i++ {
		q.Joins = append(q.Joins, query.Join{
			LeftAlias: name(), LeftCol: col(),
			RightAlias: name(), RightCol: col(),
		})
	}
	for i, n := 0, int(next())%6; i < n; i++ {
		q.Filters = append(q.Filters, query.Filter{
			Alias: name(), Column: col(),
			Op: query.CmpOp(int(next()) % 6), Value: int64(next()) - 128,
		})
	}
	for i, n := 0, int(next())%3; i < n; i++ {
		q.GroupBys = append(q.GroupBys, query.GroupBy{Alias: name(), Column: col()})
	}
	for i, n := 0, int(next())%3; i < n; i++ {
		q.Aggregates = append(q.Aggregates, query.Aggregate{
			Kind: query.AggKind(1 + int(next())%4), Alias: name(), Column: col(),
		})
	}
	return q
}

// FuzzFingerprint: on arbitrary generated queries, the canonical fingerprint
// must be invariant under permutation of every component list and under
// swapping the two sides of any equality join (the permuted helper from the
// property tests) — the property that makes it safe as a cache key — and
// must change when the logical content changes.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{3, 1, 2, 0, 4, 4, 2, 2, 1, 1, 9, 9, 200, 17, 5}, int64(7))
	f.Add([]byte("SELECT-ish arbitrary bytes \x00\xff\x80"), int64(42))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		q := fuzzQuery(data)
		fp := Fingerprint(q)
		canon := Canonical(q)
		rng := rand.New(rand.NewSource(seed))
		for v := 0; v < 4; v++ {
			p := permuted(rng, q)
			if got := Canonical(p); got != canon {
				t.Fatalf("canonical form not permutation-invariant (variant %d):\n%q\n%q", v, canon, got)
			}
			if got := Fingerprint(p); got != fp {
				t.Fatalf("fingerprint not permutation-invariant (variant %d): %x vs %x", v, got, fp)
			}
		}
		// Sanity: a logical change must change the canonical form.
		if len(q.Filters) > 0 {
			mutated := permuted(rng, q)
			mutated.Filters[0].Value++
			if Canonical(mutated) == canon {
				t.Fatal("changing a filter value left the canonical form unchanged")
			}
		}
	})
}
