package plancache

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"handsfree/internal/cost"
	"handsfree/internal/plan"
	"handsfree/internal/query"
)

// Mode identifies which computation an entry memoizes. Entries produced by
// the traditional optimizer are pure functions of (query, skeleton) and use
// Epoch 0; ModeGreedyPolicy entries depend on learned policy weights and
// must carry the policy epoch they were produced under.
type Mode uint8

const (
	// ModeCompletePhysical is a subtree or root of Planner.CompletePhysical:
	// access paths, join algorithms, and aggregation re-chosen over a fixed
	// join order (the paper's §3 completion loop).
	ModeCompletePhysical Mode = iota
	// ModeCompleteOperators is Planner.CompleteOperators: join/aggregation
	// algorithm selection over fixed order and access paths (§5.3 stage 2).
	ModeCompleteOperators
	// ModeCompleteAccess is Planner.CompleteAccess: access-path selection
	// over fixed order and operators.
	ModeCompleteAccess
	// ModeCostFixed is Planner.CostFixed: costing a fully specified plan
	// (Aux carries the aggregation algorithm).
	ModeCostFixed
	// ModePlan is a full traditional-optimizer plan (Aux carries the
	// effective enumeration strategy).
	ModePlan
	// ModeGreedyPolicy is a learned agent's greedy plan for a whole query.
	// Entries are policy-dependent: they are keyed by Epoch and invalidated
	// by BumpEpoch when the policy changes.
	ModeGreedyPolicy
)

// Key identifies one cached computation.
type Key struct {
	// Query is the canonical query fingerprint.
	Query uint64
	// Skeleton hashes the partial plan's Signature (0 for whole-query
	// entries).
	Skeleton uint64
	// Mode is the memoized computation.
	Mode Mode
	// Aux is a mode-specific discriminator.
	Aux uint8
	// Epoch is the policy epoch for policy-dependent modes (0 for pure).
	Epoch uint64
}

// hash mixes the key into the shard-selection hash.
func (k Key) hash() uint64 {
	h := k.Query
	h ^= bits.RotateLeft64(k.Skeleton, 23)
	h ^= uint64(k.Mode)<<56 | uint64(k.Aux)<<48
	h ^= bits.RotateLeft64(k.Epoch*0x9e3779b97f4a7c15, 41)
	h *= 0xff51afd7ed558ccd
	return h ^ (h >> 33)
}

// Entry is one memoized plan: the completed physical tree and its cost.
// Cached plan trees are shared between callers and must be treated as
// immutable — every consumer in this repository (cost model, latency model,
// executor, featurizer) only reads them.
type Entry struct {
	Plan plan.Node
	Cost cost.NodeCost
}

// Config sizes a Cache.
type Config struct {
	// Capacity bounds the total number of entries across all shards
	// (default 4096; values < Shards are rounded up to one per shard).
	Capacity int
	// Shards is the shard count, rounded up to a power of two (default 16).
	Shards int
	// MinAdmitCost is the cost-based admission threshold for completion
	// subtree entries (ModeCompletePhysical/Operators/Access/CostFixed):
	// entries whose plan cost is below it are not cached, on the theory that
	// recomputing a subtree cheaper than the threshold costs about as much
	// as the lookup that would serve it. This turns the stochastic-training
	// path — where sampled join orders rarely repeat wholesale and cheap
	// leaf/small-join entries dominate the memoization traffic — from
	// cache-neutral into a win. Whole-query entries (ModePlan,
	// ModeGreedyPolicy) are always admitted. 0 disables admission control.
	// Skipped admissions are counted in Stats.AdmissionSkips.
	MinAdmitCost float64
}

func (c *Config) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	// Round shards up to a power of two so shard selection is a mask.
	if c.Shards&(c.Shards-1) != 0 {
		c.Shards = 1 << bits.Len(uint(c.Shards))
	}
}

// node is an intrusive LRU list element.
type node struct {
	key        Key
	entry      Entry
	prev, next *node
}

// shard is one independently locked slice of the cache.
type shard struct {
	mu   sync.Mutex
	m    map[Key]*node
	head *node // most recently used
	tail *node // least recently used
	cap  int
}

func (s *shard) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *shard) pushFront(n *node) {
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

// Cache is a sharded, concurrency-safe, bounded LRU plan cache.
type Cache struct {
	shards   []*shard
	mask     uint64
	minAdmit float64
	epoch    atomic.Uint64
	fp       fingerprintMemo

	hits           atomic.Uint64
	misses         atomic.Uint64
	puts           atomic.Uint64
	evictions      atomic.Uint64
	epochBumps     atomic.Uint64
	admissionSkips atomic.Uint64
}

// New builds a cache. A nil *Cache is a valid no-op receiver for Get/Put,
// so callers can thread an optional cache without nil checks.
func New(cfg Config) *Cache {
	cfg.fill()
	per := cfg.Capacity / cfg.Shards
	if per < 1 {
		per = 1
	}
	c := &Cache{shards: make([]*shard, cfg.Shards), mask: uint64(cfg.Shards - 1), minAdmit: cfg.MinAdmitCost}
	for i := range c.shards {
		c.shards[i] = &shard{m: make(map[Key]*node, per), cap: per}
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard { return c.shards[k.hash()&c.mask] }

// Get returns the entry under k and whether it was present, promoting it to
// most-recently-used. A nil cache always misses (without counting).
func (c *Cache) Get(k Key) (Entry, bool) {
	if c == nil {
		return Entry{}, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	n, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return Entry{}, false
	}
	if s.head != n {
		s.unlink(n)
		s.pushFront(n)
	}
	e := n.entry
	s.mu.Unlock()
	c.hits.Add(1)
	return e, true
}

// admissionControlled reports whether entries of this mode are subject to
// the cost-based admission threshold: the per-episode completion subtrees.
// Whole-query computations (a full traditional plan, a learned greedy plan)
// always amortize their cost and are always admitted.
func admissionControlled(m Mode) bool {
	switch m {
	case ModeCompletePhysical, ModeCompleteOperators, ModeCompleteAccess, ModeCostFixed:
		return true
	}
	return false
}

// Put stores e under k, evicting the shard's least-recently-used entry when
// the shard is full. Completion-subtree entries cheaper than the configured
// MinAdmitCost are skipped (counted in Stats.AdmissionSkips) instead of
// stored: they cost as much to look up as to recompute, and in stochastic
// training they are the entries that almost never hit. A nil cache ignores
// the call.
func (c *Cache) Put(k Key, e Entry) {
	if c == nil {
		return
	}
	c.put(k, e)
}

// put is Put with an admission report: true when the entry was stored.
func (c *Cache) put(k Key, e Entry) bool {
	if c.minAdmit > 0 && e.Cost.Total < c.minAdmit && admissionControlled(k.Mode) {
		c.admissionSkips.Add(1)
		return false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if n, ok := s.m[k]; ok {
		n.entry = e
		if s.head != n {
			s.unlink(n)
			s.pushFront(n)
		}
		s.mu.Unlock()
		c.puts.Add(1)
		return true
	}
	if len(s.m) >= s.cap {
		lru := s.tail
		s.unlink(lru)
		delete(s.m, lru.key)
		c.evictions.Add(1)
	}
	n := &node{key: k, entry: e}
	s.m[k] = n
	s.pushFront(n)
	s.mu.Unlock()
	c.puts.Add(1)
	return true
}

// Len returns the current number of entries across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// Epoch returns the current policy epoch. Policy-dependent entries must be
// stored and looked up under the epoch current at production time.
func (c *Cache) Epoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// BumpEpoch advances the policy epoch, logically invalidating every
// policy-dependent (ModeGreedyPolicy) entry in O(1): their keys can never
// match a future lookup, and they age out of the LRU under new traffic.
// Call it whenever fresh policy snapshots are taken for collection or the
// policy is transferred/retrained, so plans from old policies cannot
// poison training or evaluation.
func (c *Cache) BumpEpoch() {
	if c == nil {
		return
	}
	c.epoch.Add(1)
	c.epochBumps.Add(1)
}

// Flush drops every entry (pure and policy-dependent alike) and the
// fingerprint memo, releasing every plan and query the cache pinned.
// Statistics and the epoch counter are preserved.
func (c *Cache) Flush() {
	if c == nil {
		return
	}
	for _, s := range c.shards {
		s.mu.Lock()
		s.m = make(map[Key]*node, s.cap)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
	c.fp.reset()
}

// FingerprintOf returns the query's canonical fingerprint, memoized by
// pointer identity (workload queries are immutable and pointer-stable, so
// canonicalization is paid once per query, not once per episode).
func (c *Cache) FingerprintOf(q *query.Query) uint64 {
	if c == nil {
		return Fingerprint(q)
	}
	return c.fp.of(q)
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Puts, Evictions, EpochBumps uint64
	// AdmissionSkips counts Put calls rejected by the MinAdmitCost admission
	// threshold (completion subtrees cheaper than the lookup they'd save).
	AdmissionSkips uint64
	// Size is the entry count at snapshot time.
	Size int
	// Epoch is the policy epoch at snapshot time.
	Epoch uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the counters. A nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Puts:           c.puts.Load(),
		Evictions:      c.evictions.Load(),
		EpochBumps:     c.epochBumps.Load(),
		AdmissionSkips: c.admissionSkips.Load(),
		Size:           c.Len(),
		Epoch:          c.epoch.Load(),
	}
}
