package plancache

import (
	"bytes"
	"strings"
	"testing"

	"handsfree/internal/cost"
	"handsfree/internal/plan"
	"handsfree/internal/query"
)

// TestAdmissionThresholdSkipsCheapSubtrees: completion-subtree entries below
// MinAdmitCost must be skipped and counted; entries at or above it, and
// whole-query entries of any cost, must be admitted.
func TestAdmissionThresholdSkipsCheapSubtrees(t *testing.T) {
	c := New(Config{Capacity: 64, Shards: 4, MinAdmitCost: 100})

	cheap := Key{Query: 1, Skeleton: 2, Mode: ModeCompletePhysical}
	c.Put(cheap, entryFor(99))
	if _, ok := c.Get(cheap); ok {
		t.Fatal("sub-threshold completion entry was admitted")
	}

	expensive := Key{Query: 1, Skeleton: 3, Mode: ModeCompletePhysical}
	c.Put(expensive, entryFor(100))
	if _, ok := c.Get(expensive); !ok {
		t.Fatal("at-threshold completion entry was rejected")
	}

	// Every completion mode is admission-controlled.
	for i, m := range []Mode{ModeCompleteOperators, ModeCompleteAccess, ModeCostFixed} {
		k := Key{Query: 2, Skeleton: uint64(10 + i), Mode: m}
		c.Put(k, entryFor(1))
		if _, ok := c.Get(k); ok {
			t.Fatalf("cheap %v entry was admitted", m)
		}
	}

	// Whole-query entries always amortize: admitted regardless of cost.
	for _, m := range []Mode{ModePlan, ModeGreedyPolicy} {
		k := Key{Query: 3, Skeleton: uint64(m), Mode: m}
		c.Put(k, entryFor(1))
		if _, ok := c.Get(k); !ok {
			t.Fatalf("cheap whole-query %v entry was rejected by admission", m)
		}
	}

	st := c.Stats()
	if st.AdmissionSkips != 4 {
		t.Fatalf("AdmissionSkips = %d, want 4", st.AdmissionSkips)
	}
	if st.Puts != 3 {
		t.Fatalf("Puts = %d, want 3 admitted puts", st.Puts)
	}

	// Threshold 0 disables admission control entirely.
	open := New(Config{Capacity: 64, Shards: 4})
	open.Put(cheap, entryFor(1))
	if _, ok := open.Get(cheap); !ok {
		t.Fatal("zero threshold must admit everything")
	}
	if open.Stats().AdmissionSkips != 0 {
		t.Fatal("zero-threshold cache counted admission skips")
	}
}

// buildTree returns a small physical plan exercising every node kind, so a
// persisted entry round-trips scans, joins, and aggregation.
func buildTree() plan.Node {
	left := &plan.Scan{Alias: "t", Table: "title", Access: plan.IndexScan, IndexColumn: "id",
		Filters: []query.Filter{{Alias: "t", Column: "year", Op: query.Gt, Value: 1990}}}
	right := &plan.Scan{Alias: "mc", Table: "movie_companies"}
	join := &plan.Join{Algo: plan.HashJoin, Left: left, Right: right,
		Preds: []query.Join{{LeftAlias: "t", LeftCol: "id", RightAlias: "mc", RightCol: "movie_id"}}}
	return &plan.Agg{Algo: plan.HashAgg, Child: join,
		Aggregates: []query.Aggregate{{Kind: query.AggCount}}}
}

// TestSaveLoadRoundTrip: pure entries must survive a gob round trip into a
// fresh cache — same keys, same costs, structurally identical plans — while
// policy-dependent entries stay behind.
func TestSaveLoadRoundTrip(t *testing.T) {
	src := New(Config{Capacity: 64, Shards: 4})
	pure1 := Key{Query: 11, Skeleton: 21, Mode: ModeCompletePhysical}
	pure2 := Key{Query: 12, Skeleton: 0, Mode: ModePlan, Aux: 2}
	policy := Key{Query: 13, Skeleton: 99, Mode: ModeGreedyPolicy, Epoch: 5}
	tree := buildTree()
	src.Put(pure1, Entry{Plan: tree, Cost: cost.NodeCost{Rows: 10, Total: 1234.5, Sorted: true}})
	src.Put(pure2, Entry{Plan: tree, Cost: cost.NodeCost{Total: 42}})
	src.Put(policy, entryFor(7))

	var buf bytes.Buffer
	if err := src.Save(&buf, 77); err != nil {
		t.Fatal(err)
	}

	dst := New(Config{Capacity: 64, Shards: 2})
	n, err := dst.Load(&buf, 77)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d entries, want the 2 pure ones", n)
	}
	if _, ok := dst.Get(policy); ok {
		t.Fatal("policy-dependent entry crossed the process boundary")
	}
	e1, ok := dst.Get(pure1)
	if !ok || e1.Cost.Total != 1234.5 || e1.Cost.Rows != 10 || !e1.Cost.Sorted {
		t.Fatalf("pure entry 1 mangled: ok=%v cost=%+v", ok, e1.Cost)
	}
	if e1.Plan.Signature() != tree.Signature() {
		t.Fatalf("restored plan signature %q differs from original %q", e1.Plan.Signature(), tree.Signature())
	}
	if e2, ok := dst.Get(pure2); !ok || e2.Cost.Total != 42 {
		t.Fatalf("pure entry 2 mangled: ok=%v cost=%v", ok, e2.Cost.Total)
	}
}

// TestLoadAppliesReceiverAdmission: a dump replayed into a cache with a
// stricter admission threshold is re-filtered by it.
func TestLoadAppliesReceiverAdmission(t *testing.T) {
	src := New(Config{Capacity: 16, Shards: 2})
	cheapK := Key{Query: 1, Skeleton: 1, Mode: ModeCompletePhysical}
	richK := Key{Query: 1, Skeleton: 2, Mode: ModeCompletePhysical}
	src.Put(cheapK, Entry{Plan: buildTree(), Cost: cost.NodeCost{Total: 5}})
	src.Put(richK, Entry{Plan: buildTree(), Cost: cost.NodeCost{Total: 5000}})

	var buf bytes.Buffer
	if err := src.Save(&buf, 77); err != nil {
		t.Fatal(err)
	}
	strict := New(Config{Capacity: 16, Shards: 2, MinAdmitCost: 1000})
	if _, err := strict.Load(&buf, 77); err != nil {
		t.Fatal(err)
	}
	if _, ok := strict.Get(cheapK); ok {
		t.Fatal("strict cache admitted a sub-threshold dump entry")
	}
	if _, ok := strict.Get(richK); !ok {
		t.Fatal("strict cache rejected an above-threshold dump entry")
	}
	if strict.Stats().AdmissionSkips != 1 {
		t.Fatalf("AdmissionSkips = %d, want 1", strict.Stats().AdmissionSkips)
	}
}

// TestLoadRejectsBadData: garbage and truncated dumps error cleanly.
func TestLoadRejectsBadData(t *testing.T) {
	c := New(Config{Capacity: 16, Shards: 2})
	if _, err := c.Load(strings.NewReader(""), 0); err == nil {
		t.Fatal("empty dump loaded without error")
	}
	if _, err := c.Load(strings.NewReader("garbage bytes"), 0); err == nil {
		t.Fatal("garbage dump loaded without error")
	}
	src := New(Config{Capacity: 16, Shards: 2})
	src.Put(Key{Query: 1, Mode: ModePlan}, Entry{Plan: buildTree(), Cost: cost.NodeCost{Total: 9}})
	var buf bytes.Buffer
	if err := src.Save(&buf, 77); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2]), 0); err == nil {
		t.Fatal("truncated dump loaded without error")
	}
}

// TestLoadRejectsForeignTag: a dump tagged for one system configuration
// must not load into a cache claiming another — entries are keyed by pure
// fingerprints with the catalog implicit, so a silent cross-system load
// would serve plans and costs from the wrong database.
func TestLoadRejectsForeignTag(t *testing.T) {
	src := New(Config{Capacity: 16, Shards: 2})
	k := Key{Query: 1, Mode: ModePlan}
	src.Put(k, Entry{Plan: buildTree(), Cost: cost.NodeCost{Total: 9}})
	var buf bytes.Buffer
	if err := src.Save(&buf, 111); err != nil {
		t.Fatal(err)
	}
	dst := New(Config{Capacity: 16, Shards: 2})
	if _, err := dst.Load(&buf, 222); err == nil {
		t.Fatal("dump with a foreign tag loaded without error")
	}
	if _, ok := dst.Get(k); ok {
		t.Fatal("foreign-tagged entry reached the cache")
	}
}
