package plancache

import (
	"fmt"
	"math/rand"
	"testing"

	"handsfree/internal/plan"
	"handsfree/internal/query"
)

// randomQuery builds a random connected query over n relations: a random
// spanning tree of equality joins plus extra join edges, random filters,
// and occasionally grouped aggregation.
func randomQuery(rng *rand.Rand, n int) *query.Query {
	q := &query.Query{Name: fmt.Sprintf("rand-%d", rng.Int63())}
	for i := 0; i < n; i++ {
		q.Relations = append(q.Relations, query.Relation{
			Table: fmt.Sprintf("t%d", rng.Intn(4)),
			Alias: fmt.Sprintf("a%d", i),
		})
	}
	// Spanning tree keeps the join graph connected.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		q.Joins = append(q.Joins, query.Join{
			LeftAlias: q.Relations[i].Alias, LeftCol: fmt.Sprintf("c%d", rng.Intn(3)),
			RightAlias: q.Relations[j].Alias, RightCol: fmt.Sprintf("c%d", rng.Intn(3)),
		})
	}
	for extra := rng.Intn(3); extra > 0 && n >= 2; extra-- {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		q.Joins = append(q.Joins, query.Join{
			LeftAlias: q.Relations[i].Alias, LeftCol: "x",
			RightAlias: q.Relations[j].Alias, RightCol: "y",
		})
	}
	for f := rng.Intn(4); f > 0; f-- {
		q.Filters = append(q.Filters, query.Filter{
			Alias:  q.Relations[rng.Intn(n)].Alias,
			Column: fmt.Sprintf("c%d", rng.Intn(3)),
			Op:     query.CmpOp(rng.Intn(6)),
			Value:  rng.Int63n(1000),
		})
	}
	if rng.Intn(3) == 0 {
		q.GroupBys = append(q.GroupBys, query.GroupBy{Alias: q.Relations[0].Alias, Column: "c0"})
		q.Aggregates = append(q.Aggregates, query.Aggregate{Kind: query.AggCount})
	}
	return q
}

// permuted returns a deep copy of q with every component list shuffled and
// each join predicate's sides swapped with probability ½ — a different
// surface form of the same logical query.
func permuted(rng *rand.Rand, q *query.Query) *query.Query {
	p := &query.Query{Name: q.Name}
	p.Relations = append(p.Relations, q.Relations...)
	p.Filters = append(p.Filters, q.Filters...)
	p.GroupBys = append(p.GroupBys, q.GroupBys...)
	p.Aggregates = append(p.Aggregates, q.Aggregates...)
	for _, j := range q.Joins {
		if rng.Intn(2) == 0 {
			j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol = j.RightAlias, j.RightCol, j.LeftAlias, j.LeftCol
		}
		p.Joins = append(p.Joins, j)
	}
	rng.Shuffle(len(p.Relations), func(i, j int) { p.Relations[i], p.Relations[j] = p.Relations[j], p.Relations[i] })
	rng.Shuffle(len(p.Joins), func(i, j int) { p.Joins[i], p.Joins[j] = p.Joins[j], p.Joins[i] })
	rng.Shuffle(len(p.Filters), func(i, j int) { p.Filters[i], p.Filters[j] = p.Filters[j], p.Filters[i] })
	rng.Shuffle(len(p.GroupBys), func(i, j int) { p.GroupBys[i], p.GroupBys[j] = p.GroupBys[j], p.GroupBys[i] })
	rng.Shuffle(len(p.Aggregates), func(i, j int) { p.Aggregates[i], p.Aggregates[j] = p.Aggregates[j], p.Aggregates[i] })
	return p
}

// TestFingerprintPermutationInvariant: any reordering of the relation,
// join, filter, group-by, or aggregate lists — and any side swap of a join
// predicate — must hash identically.
func TestFingerprintPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		q := randomQuery(rng, 2+rng.Intn(7))
		want := Fingerprint(q)
		for v := 0; v < 4; v++ {
			p := permuted(rng, q)
			if got := Fingerprint(p); got != want {
				t.Fatalf("trial %d variant %d: fingerprint %x != %x\noriginal:  %s\npermuted:  %s",
					trial, v, got, want, Canonical(q), Canonical(p))
			}
		}
	}
}

// TestFingerprintDistinguishesQueries: mutating any logical component must
// change the fingerprint (collisions only by 64-bit chance, so none are
// expected over a few hundred trials).
func TestFingerprintDistinguishesQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		q := randomQuery(rng, 3+rng.Intn(5))
		base := Fingerprint(q)

		mutations := []func(*query.Query){
			func(m *query.Query) { // change a filter constant (or add one)
				if len(m.Filters) > 0 {
					m.Filters[rng.Intn(len(m.Filters))].Value += 1
				} else {
					m.Filters = append(m.Filters, query.Filter{Alias: m.Relations[0].Alias, Column: "c0", Op: query.Eq, Value: 1})
				}
			},
			func(m *query.Query) { // retarget a join column
				m.Joins[rng.Intn(len(m.Joins))].LeftCol = "zz"
			},
			func(m *query.Query) { // rename a relation's table
				m.Relations[rng.Intn(len(m.Relations))].Table = "other"
			},
			func(m *query.Query) { // add a join edge
				m.Joins = append(m.Joins, query.Join{
					LeftAlias: m.Relations[0].Alias, LeftCol: "new",
					RightAlias: m.Relations[len(m.Relations)-1].Alias, RightCol: "new",
				})
			},
		}
		for mi, mutate := range mutations {
			c := permuted(rng, q) // fresh copy with its own backing arrays
			c.Joins = append([]query.Join(nil), c.Joins...)
			c.Filters = append([]query.Filter(nil), c.Filters...)
			c.Relations = append([]query.Relation(nil), c.Relations...)
			mutate(c)
			if Fingerprint(c) == base {
				t.Fatalf("trial %d mutation %d left fingerprint unchanged\nquery: %s\nmutant: %s",
					trial, mi, Canonical(q), Canonical(c))
			}
		}

		// Two independently generated queries should not collide either.
		other := randomQuery(rng, 3+rng.Intn(5))
		if Canonical(other) != Canonical(q) && Fingerprint(other) == base {
			t.Fatalf("trial %d: distinct queries collide:\n%s\n%s", trial, Canonical(q), Canonical(other))
		}
	}
}

// TestFingerprintNameIndependent: the fingerprint reflects logical content
// only, not the display name.
func TestFingerprintNameIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := randomQuery(rng, 4)
	named := permuted(rng, q)
	named.Name = "renamed"
	if Fingerprint(named) != Fingerprint(q) {
		t.Fatal("renaming a query changed its fingerprint")
	}
}

func BenchmarkFingerprint(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	q := randomQuery(rng, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fingerprint(q)
	}
}

// TestHashSubtreesMatchesHashPlan: the single-walk per-subtree hashes must
// equal hashing each subtree independently.
func TestHashSubtreesMatchesHashPlan(t *testing.T) {
	scanA := &plan.Scan{Alias: "a", Table: "t1", Filters: []query.Filter{{Alias: "a", Column: "c0", Op: query.Lt, Value: 9}}}
	scanB := &plan.Scan{Alias: "b", Table: "t2", Access: plan.IndexScan, IndexColumn: "id"}
	scanC := &plan.Scan{Alias: "c", Table: "t3"}
	joinAB := &plan.Join{Algo: plan.HashJoin, Left: scanA, Right: scanB,
		Preds: []query.Join{{LeftAlias: "a", LeftCol: "id", RightAlias: "b", RightCol: "id"}}}
	root := plan.Node(&plan.Agg{Algo: plan.SortAgg, Child: &plan.Join{Algo: plan.NestLoop, Left: joinAB, Right: scanC}})

	hs := map[plan.Node]uint64{}
	if got, want := HashSubtrees(root, hs), HashPlan(root); got != want {
		t.Fatalf("root hash %x != HashPlan %x", got, want)
	}
	plan.Walk(root, func(n plan.Node) {
		if hs[n] != HashPlan(n) {
			t.Fatalf("subtree hash mismatch at %s: %x != %x", n.Signature(), hs[n], HashPlan(n))
		}
	})
	// Sibling subtrees must not collide.
	if hs[scanA] == hs[scanB] || hs[joinAB] == hs[scanC] {
		t.Fatal("distinct subtrees hash equal")
	}

	// Aggregation contents participate: same algo and child, different
	// group-by column or aggregate kind must hash differently.
	aggA := &plan.Agg{Algo: plan.HashAgg, Child: scanC, GroupBys: []query.GroupBy{{Alias: "c", Column: "x"}}}
	aggB := &plan.Agg{Algo: plan.HashAgg, Child: scanC, GroupBys: []query.GroupBy{{Alias: "c", Column: "y"}}}
	aggCnt := &plan.Agg{Algo: plan.HashAgg, Child: scanC, Aggregates: []query.Aggregate{{Kind: query.AggCount}}}
	aggSum := &plan.Agg{Algo: plan.HashAgg, Child: scanC, Aggregates: []query.Aggregate{{Kind: query.AggSum, Alias: "c", Column: "x"}}}
	if HashPlan(aggA) == HashPlan(aggB) {
		t.Fatal("group-by column does not participate in the plan hash")
	}
	if HashPlan(aggCnt) == HashPlan(aggSum) {
		t.Fatal("aggregate kind does not participate in the plan hash")
	}
}

// TestHashSubtreesMemoReuses: the memoized walk returns the same hashes as
// a fresh walk, short-circuits on already-hashed subtrees, and composes
// incrementally — hashing a tree whose children were hashed earlier only
// visits the new node.
func TestHashSubtreesMemoReuses(t *testing.T) {
	scanA := &plan.Scan{Alias: "a", Table: "t1", Filters: []query.Filter{{Alias: "a", Column: "c0", Op: query.Lt, Value: 9}}}
	scanB := &plan.Scan{Alias: "b", Table: "t2", Access: plan.IndexScan, IndexColumn: "id"}
	scanC := &plan.Scan{Alias: "c", Table: "t3"}
	joinAB := &plan.Join{Algo: plan.HashJoin, Left: scanA, Right: scanB,
		Preds: []query.Join{{LeftAlias: "a", LeftCol: "id", RightAlias: "b", RightCol: "id"}}}
	root := plan.Node(&plan.Join{Algo: plan.NestLoop, Left: joinAB, Right: scanC})

	// Nil memo degrades to the fresh walk.
	if HashSubtreesMemo(root, nil) != HashPlan(root) {
		t.Fatal("nil-memo hash differs from the fresh hash")
	}

	// Incremental composition: hash the children first, then the root; every
	// hash must match the fresh walk.
	memo := map[plan.Node]uint64{}
	HashSubtreesMemo(joinAB, memo)
	HashSubtreesMemo(scanC, memo)
	if got, want := HashSubtreesMemo(root, memo), HashPlan(root); got != want {
		t.Fatalf("memoized root hash %x != fresh %x", got, want)
	}
	plan.Walk(root, func(n plan.Node) {
		if memo[n] != HashPlan(n) {
			t.Fatalf("memo entry for %s is %x, fresh hash %x", n.Signature(), memo[n], HashPlan(n))
		}
	})

	// Reuse: a poisoned entry proves the memo short-circuits instead of
	// re-walking (the poisoned child hash propagates into the root).
	poisoned := map[plan.Node]uint64{joinAB: 0xdeadbeef}
	if HashSubtreesMemo(root, poisoned) == HashPlan(root) {
		t.Fatal("memoized walk re-hashed a subtree it should have reused")
	}
	// A second walk over the same memo returns the cached root hash.
	first := HashSubtreesMemo(root, memo)
	if second := HashSubtreesMemo(root, memo); second != first {
		t.Fatalf("repeat memoized hash %x != %x", second, first)
	}
}

// TestFingerprintMemoBounded: the pointer memo resets at capacity instead
// of pinning every query ever fingerprinted, and Flush clears it.
func TestFingerprintMemoBounded(t *testing.T) {
	var memo fingerprintMemo
	rng := rand.New(rand.NewSource(21))
	q := randomQuery(rng, 3)
	want := Fingerprint(q)
	if memo.of(q) != want {
		t.Fatal("memo returned a wrong fingerprint")
	}
	for i := 0; i < memoCap+10; i++ {
		memo.of(randomQuery(rng, 2))
	}
	memo.mu.RLock()
	n := len(memo.m)
	memo.mu.RUnlock()
	if n > memoCap {
		t.Fatalf("memo holds %d entries, cap %d", n, memoCap)
	}
	if memo.of(q) != want {
		t.Fatal("memo returned a wrong fingerprint after reset")
	}
	c := New(Config{Capacity: 8, Shards: 2})
	c.FingerprintOf(q)
	c.Flush()
	c.fp.mu.RLock()
	empty := len(c.fp.m) == 0
	c.fp.mu.RUnlock()
	if !empty {
		t.Fatal("Flush left the fingerprint memo populated")
	}
}
