package plancache

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"handsfree/internal/plan"
	"handsfree/internal/query"
)

// fnv64Offset and fnv64Prime are the FNV-1a 64-bit parameters.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// HashString returns the FNV-1a 64-bit hash of s.
func HashString(s string) uint64 {
	h := uint64(fnv64Offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnv64Prime
	}
	return h
}

// Canonical renders the query's logical content in a canonical form: every
// component list (relations, joins, filters, group-bys, aggregates) is
// sorted, and each equality join is side-normalized so a.x = b.y and
// b.y = a.x render identically. Two queries have equal Canonical strings
// exactly when they are the same logical query up to component order.
func Canonical(q *query.Query) string {
	parts := make([]string, 0, len(q.Relations)+len(q.Joins)+len(q.Filters)+len(q.GroupBys)+len(q.Aggregates))
	for _, r := range q.Relations {
		parts = append(parts, "R:"+r.Table+"/"+r.Alias)
	}
	for _, j := range q.Joins {
		l, r := j.LeftAlias+"."+j.LeftCol, j.RightAlias+"."+j.RightCol
		if l > r {
			l, r = r, l
		}
		parts = append(parts, "J:"+l+"="+r)
	}
	for _, f := range q.Filters {
		parts = append(parts, fmt.Sprintf("F:%s.%s %d %d", f.Alias, f.Column, f.Op, f.Value))
	}
	for _, g := range q.GroupBys {
		parts = append(parts, "G:"+g.Alias+"."+g.Column)
	}
	for _, a := range q.Aggregates {
		parts = append(parts, fmt.Sprintf("A:%d %s.%s", a.Kind, a.Alias, a.Column))
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// Fingerprint returns the canonical 64-bit fingerprint of the query: the
// hash of its Canonical form. It is invariant under permutation of the
// relation, join, filter, group-by, and aggregate lists and under swapping
// the two sides of any join predicate; distinct logical queries collide
// only with ordinary 64-bit hash probability.
func Fingerprint(q *query.Query) uint64 {
	return HashString(Canonical(q))
}

// memoCap bounds the fingerprint memo: a workload's query set is far
// smaller, and a long-lived process planning ad-hoc queries (a fresh
// *query.Query per statement) must not pin every query ever seen.
const memoCap = 1 << 16

// fingerprintMemo caches Fingerprint per *query.Query pointer. Workload
// queries are pointer-stable and treated as immutable across episodes, so
// the canonicalization cost is paid once per query rather than once per
// episode. The memo is keyed by identity: two distinct pointers to equal
// queries simply each get an entry with the same value. At memoCap entries
// the whole memo is reset (generation-style) so memory stays bounded and
// no query object is pinned forever.
type fingerprintMemo struct {
	mu sync.RWMutex
	m  map[*query.Query]uint64
}

func (f *fingerprintMemo) of(q *query.Query) uint64 {
	f.mu.RLock()
	fp, ok := f.m[q]
	f.mu.RUnlock()
	if ok {
		return fp
	}
	fp = Fingerprint(q)
	f.mu.Lock()
	if f.m == nil || len(f.m) >= memoCap {
		f.m = make(map[*query.Query]uint64, 64)
	}
	f.m[q] = fp
	f.mu.Unlock()
	return fp
}

func (f *fingerprintMemo) reset() {
	f.mu.Lock()
	f.m = nil
	f.mu.Unlock()
}

// mix folds one byte string into an FNV-1a accumulator, with a separator so
// adjacent fields cannot alias ("ab","c" vs "a","bc").
func mix(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnv64Prime
	}
	h ^= 0xff
	h *= fnv64Prime
	return h
}

// mixUint folds an integer into an FNV-1a accumulator.
func mixUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnv64Prime
		v >>= 8
	}
	return h
}

// HashPlan returns a structural 64-bit hash of a plan subtree — the
// skeleton component of completion cache keys. Unlike hashing
// Node.Signature() it allocates nothing: the tree is folded directly into
// the accumulator. Operator kind, join/aggregation algorithm, access path,
// relation identity, and every predicate participate, so two subtrees hash
// equal exactly when the completion computations they key are
// interchangeable (field order within a node follows storage order, which
// is deterministic for skeletons built from the same query).
func HashPlan(n plan.Node) uint64 {
	return hashTree(n, nil, false)
}

// HashSubtrees computes the structural hash of every node in the tree in a
// single post-order walk — each node's hash is composed from its fields and
// its children's hashes — storing per-node hashes into out (keyed by node
// identity; pass nil to skip) and returning the root hash. Callers that
// need every subtree's hash (the completion memoization hot path) use this
// to pay O(tree) once instead of O(subtree) per node.
func HashSubtrees(n plan.Node, out map[plan.Node]uint64) uint64 {
	return hashTree(n, out, false)
}

// HashSubtreesMemo is HashSubtrees with reuse: subtrees whose root node is
// already present in memo are returned from it without re-walking, and every
// newly hashed node is added. An environment that keeps one memo per episode
// pays the structural hash once per node per episode even when several
// completion calls walk overlapping trees (e.g. costing the same skeleton
// under two aggregation algorithms), instead of once per completion call.
// A nil memo degrades to a plain HashSubtrees walk.
func HashSubtreesMemo(n plan.Node, memo map[plan.Node]uint64) uint64 {
	if memo == nil {
		return hashTree(n, nil, false)
	}
	return hashTree(n, memo, true)
}

// hashTree is the shared post-order walk behind HashPlan/HashSubtrees/
// HashSubtreesMemo. When consult is set, nodes already present in out
// short-circuit the walk (memoized reuse); entries only ever hold a node's
// structural hash, so consulting cannot change the result.
func hashTree(n plan.Node, out map[plan.Node]uint64, consult bool) uint64 {
	if consult {
		if h, ok := out[n]; ok {
			return h
		}
	}
	var h uint64
	switch n := n.(type) {
	case *plan.Scan:
		h = mixUint(fnv64Offset, 1)
		h = mixUint(h, uint64(n.Access))
		h = mix(h, n.Table)
		h = mix(h, n.Alias)
		h = mix(h, n.IndexColumn)
		for _, f := range n.Filters {
			h = mix(h, f.Alias)
			h = mix(h, f.Column)
			h = mixUint(h, uint64(f.Op))
			h = mixUint(h, uint64(f.Value))
		}
	case *plan.Join:
		h = mixUint(fnv64Offset, 2)
		h = mixUint(h, uint64(n.Algo))
		for _, p := range n.Preds {
			h = mix(h, p.LeftAlias)
			h = mix(h, p.LeftCol)
			h = mix(h, p.RightAlias)
			h = mix(h, p.RightCol)
		}
		h = mixUint(h, hashTree(n.Left, out, consult))
		h = mixUint(h, hashTree(n.Right, out, consult))
	case *plan.Agg:
		h = mixUint(fnv64Offset, 3)
		h = mixUint(h, uint64(n.Algo))
		for _, g := range n.GroupBys {
			h = mix(h, g.Alias)
			h = mix(h, g.Column)
		}
		for _, a := range n.Aggregates {
			h = mixUint(h, uint64(a.Kind))
			h = mix(h, a.Alias)
			h = mix(h, a.Column)
		}
		h = mixUint(h, hashTree(n.Child, out, consult))
	}
	if out != nil {
		out[n] = h
	}
	return h
}
