// Package plancache is the plan cache service: a sharded, concurrency-safe
// memoization layer mapping canonical query fingerprints (plus partial-plan
// skeleton signatures) to completed physical plans and their costs.
//
// The paper's training loop (Marcus & Papaemmanouil, CIDR 2019, §3–§5)
// serves every workload query once per episode sweep, and each episode ends
// with the traditional optimizer completing the agent's partial plan —
// access-path, operator, and aggregation selection over the learned join
// order. That completion is a pure function of (query, skeleton), yet the
// seed system recomputed it from scratch for every repetition of every
// workload query; after the batched tensor path of PR 1 it was the dominant
// per-episode cost during collection. Neo (Marcus et al., VLDB 2019)
// likewise assumes repeated queries are cheap on the second visit. This
// package makes them cheap.
//
// # Keys
//
// A cache Key has five parts:
//
//   - Query: Fingerprint(q), a 64-bit hash over the query's canonicalized
//     relations, join graph, and predicates. Permuting the relation list,
//     the join list, the filter list, or the two sides of any equality join
//     does not change the fingerprint; changing any logical content does
//     (up to 64-bit collision chance).
//   - Skeleton: HashPlan of the partial plan (an allocation-free
//     structural tree hash); zero for whole-query entries (full optimizer
//     plans, learned greedy plans).
//   - Mode: which computation produced the entry (subtree completion,
//     full-plan completion, fixed-plan costing, traditional planning, or a
//     learned policy's greedy plan).
//   - Aux: a mode-specific discriminator (aggregation algorithm,
//     enumeration strategy).
//   - Epoch: the policy epoch for policy-dependent entries. Optimizer
//     completions are pure and use epoch 0; learned greedy plans are keyed
//     by the epoch current when they were produced, so BumpEpoch —
//     called whenever fresh policy snapshots are taken or the policy is
//     transferred across curriculum phases — invalidates them in O(1)
//     without touching pure entries. Stale entries simply never match
//     again and age out through the LRU.
//
// # Sharding and eviction
//
// The cache is split into power-of-two shards selected by key hash; each
// shard holds an independent mutex, hash map, and intrusive LRU list, so
// parallel collection workers (rl.CollectParallel) rarely contend on the
// same lock. Total capacity is bounded; inserting into a full shard evicts
// that shard's least-recently-used entry. Hits, misses, puts, evictions,
// and epoch bumps are counted with atomics and exposed via Stats.
package plancache
