package plancache

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"handsfree/internal/plan"
)

// Warm-start persistence: Save serializes the cache's pure entries with gob
// (the same encoding the policy checkpoints use) and Load replays them into
// a cache in a fresh process, so a restarted system serves its repeated
// workload from the first sweep instead of paying the cold completion cost
// again.
//
// Only pure entries travel: policy-dependent (ModeGreedyPolicy) entries are
// keyed by process-local agent identities and policy epochs, so they cannot
// be meaningful in another process and are skipped by Save. Pure entries
// (traditional plans and completion subtrees) are functions of (query
// fingerprint, skeleton hash, mode) alone — the catalog and cost model are
// part of the system configuration — and reload exactly.

// savedCacheVersion is the wire-format version of the persisted cache.
const savedCacheVersion = 1

// savedEntry is one persisted (key, entry) pair.
type savedEntry struct {
	Key   Key
	Entry Entry
}

// savedCache is the gob wire form of a cache dump.
type savedCache struct {
	Version int
	// Tag identifies the system configuration (catalog, statistics, cost
	// model) the entries were computed under; Load refuses a dump whose tag
	// differs from the loader's. Entry keys alone are pure fingerprints of
	// (query, skeleton, mode) — the catalog is implicit — so without the
	// tag a dump from a differently scaled or seeded database would
	// silently serve plans and costs from the wrong system.
	Tag uint64
	// Entries are the pure (policy-independent) cache entries, LRU first.
	Entries []savedEntry
}

// registerPlanNodes makes the concrete plan.Node implementations known to
// gob exactly once (Entry.Plan is an interface value on the wire).
var registerPlanNodes = sync.OnceFunc(func() {
	gob.Register(&plan.Scan{})
	gob.Register(&plan.Join{})
	gob.Register(&plan.Agg{})
})

// Save writes every pure (policy-independent) entry to w, least recently
// used first, so a subsequent Load rebuilds the same recency order. tag
// identifies the system configuration the entries were computed under
// (catalog, statistics, cost model — e.g. a hash of the database seed and
// scale); Load checks it, so a dump can never warm a differently built
// system. The cache stays live during the dump; each shard is locked only
// while its entries are collected.
func (c *Cache) Save(w io.Writer, tag uint64) error {
	if c == nil {
		return fmt.Errorf("plancache: Save on a nil cache")
	}
	registerPlanNodes()
	dump := savedCache{Version: savedCacheVersion, Tag: tag}
	for _, s := range c.shards {
		s.mu.Lock()
		// Walk tail→head (LRU→MRU): replaying in this order makes the last
		// Put the most recently used, matching the live cache.
		for n := s.tail; n != nil; n = n.prev {
			if n.key.Mode == ModeGreedyPolicy {
				continue
			}
			dump.Entries = append(dump.Entries, savedEntry{Key: n.key, Entry: n.entry})
		}
		s.mu.Unlock()
	}
	return gob.NewEncoder(w).Encode(dump)
}

// Load replays entries previously written by Save into the cache and
// returns how many the cache actually stored. tag must match the dump's
// (see Save): a mismatch errors without loading anything. Entries pass
// through the normal Put path, so capacity limits and the admission
// threshold of the receiving cache apply — a cache configured with a
// higher MinAdmitCost than the saver's re-filters the dump, and such skips
// count in Stats.AdmissionSkips, not in the returned count. Loading into a
// non-empty cache merges.
func (c *Cache) Load(r io.Reader, tag uint64) (int, error) {
	if c == nil {
		return 0, fmt.Errorf("plancache: Load on a nil cache")
	}
	registerPlanNodes()
	var dump savedCache
	if err := gob.NewDecoder(r).Decode(&dump); err != nil {
		return 0, err
	}
	if dump.Version != savedCacheVersion {
		return 0, fmt.Errorf("plancache: unsupported cache dump version %d", dump.Version)
	}
	if dump.Tag != tag {
		return 0, fmt.Errorf("plancache: dump was produced by a different system configuration (tag %#x, want %#x)", dump.Tag, tag)
	}
	restored := 0
	for _, e := range dump.Entries {
		if e.Key.Mode == ModeGreedyPolicy || e.Entry.Plan == nil {
			continue
		}
		if c.put(e.Key, e.Entry) {
			restored++
		}
	}
	return restored, nil
}
