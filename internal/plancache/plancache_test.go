package plancache

import (
	"fmt"
	"sync"
	"testing"

	"handsfree/internal/cost"
	"handsfree/internal/plan"
)

func entryFor(i int) Entry {
	return Entry{
		Plan: &plan.Scan{Alias: fmt.Sprintf("a%d", i), Table: "t"},
		Cost: cost.NodeCost{Total: float64(i)},
	}
}

func TestCacheGetPut(t *testing.T) {
	c := New(Config{Capacity: 64, Shards: 4})
	k := Key{Query: 1, Skeleton: 2, Mode: ModeCompletePhysical}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k, entryFor(7))
	e, ok := c.Get(k)
	if !ok || e.Cost.Total != 7 {
		t.Fatalf("Get after Put: ok=%v cost=%v", ok, e.Cost.Total)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / size 1", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", got)
	}
}

// TestCacheKeyComponentsDistinguish: every key field participates in
// identity, so the same query under a different mode, skeleton, aux, or
// epoch is a distinct entry.
func TestCacheKeyComponentsDistinguish(t *testing.T) {
	c := New(Config{Capacity: 64, Shards: 4})
	base := Key{Query: 9, Skeleton: 9, Mode: ModeCompletePhysical, Aux: 0, Epoch: 0}
	c.Put(base, entryFor(1))
	for _, k := range []Key{
		{Query: 10, Skeleton: 9, Mode: ModeCompletePhysical},
		{Query: 9, Skeleton: 10, Mode: ModeCompletePhysical},
		{Query: 9, Skeleton: 9, Mode: ModeCompleteOperators},
		{Query: 9, Skeleton: 9, Mode: ModeCompletePhysical, Aux: 1},
		{Query: 9, Skeleton: 9, Mode: ModeCompletePhysical, Epoch: 1},
	} {
		if _, ok := c.Get(k); ok {
			t.Fatalf("key %+v unexpectedly matched %+v", k, base)
		}
	}
}

// TestCacheLRUEviction: a full shard evicts its least-recently-used entry,
// and a Get refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	c := New(Config{Capacity: 2, Shards: 1}) // one shard, two slots
	k1, k2, k3 := Key{Query: 1}, Key{Query: 2}, Key{Query: 3}
	c.Put(k1, entryFor(1))
	c.Put(k2, entryFor(2))
	c.Get(k1) // k1 now most recent; k2 is LRU
	c.Put(k3, entryFor(3))
	if _, ok := c.Get(k2); ok {
		t.Fatal("LRU entry k2 survived eviction")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("recently used k1 was evicted")
	}
	if _, ok := c.Get(k3); !ok {
		t.Fatal("new entry k3 missing")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / size 2", st)
	}
}

// TestCacheCapacityBound: the cache never holds more than its capacity.
func TestCacheCapacityBound(t *testing.T) {
	c := New(Config{Capacity: 32, Shards: 4})
	for i := 0; i < 1000; i++ {
		c.Put(Key{Query: uint64(i)}, entryFor(i))
	}
	if n := c.Len(); n > 32 {
		t.Fatalf("cache holds %d entries, capacity 32", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
}

// TestCacheEpochInvalidation: bumping the epoch makes policy-dependent
// entries unreachable while pure entries survive.
func TestCacheEpochInvalidation(t *testing.T) {
	c := New(Config{Capacity: 64, Shards: 4})
	pure := Key{Query: 1, Mode: ModeCompletePhysical}
	policy := Key{Query: 1, Mode: ModeGreedyPolicy, Epoch: c.Epoch()}
	c.Put(pure, entryFor(1))
	c.Put(policy, entryFor(2))

	c.BumpEpoch()

	if _, ok := c.Get(Key{Query: 1, Mode: ModeGreedyPolicy, Epoch: c.Epoch()}); ok {
		t.Fatal("stale policy entry visible under the new epoch")
	}
	if _, ok := c.Get(pure); !ok {
		t.Fatal("pure entry lost across an epoch bump")
	}
	if st := c.Stats(); st.EpochBumps != 1 || st.Epoch != 1 {
		t.Fatalf("stats = %+v, want epoch 1 after one bump", st)
	}
}

func TestCacheFlush(t *testing.T) {
	c := New(Config{Capacity: 64, Shards: 4})
	for i := 0; i < 10; i++ {
		c.Put(Key{Query: uint64(i)}, entryFor(i))
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after Flush", c.Len())
	}
	if _, ok := c.Get(Key{Query: 3}); ok {
		t.Fatal("entry visible after Flush")
	}
}

// TestCacheNilReceiver: a nil *Cache is a safe no-op so call sites can
// thread an optional cache without branching.
func TestCacheNilReceiver(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(Key{Query: 1}); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(Key{Query: 1}, entryFor(1))
	c.BumpEpoch()
	c.Flush()
	if c.Len() != 0 || c.Epoch() != 0 {
		t.Fatal("nil cache reported non-zero state")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

// TestCacheConcurrent hammers the cache from many goroutines (run with
// -race): correctness here is no panics, no lost shards, and the capacity
// bound holding under contention.
func TestCacheConcurrent(t *testing.T) {
	c := New(Config{Capacity: 128, Shards: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{Query: uint64((w*31 + i) % 200), Mode: Mode(i % 3)}
				if i%3 == 0 {
					c.Put(k, entryFor(i))
				} else {
					c.Get(k)
				}
				if i%500 == 0 {
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 128 {
		t.Fatalf("capacity exceeded under contention: %d", n)
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c := New(Config{Capacity: 1024, Shards: 16})
	k := Key{Query: 42, Skeleton: 7, Mode: ModeCompletePhysical}
	c.Put(k, entryFor(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(k); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkCacheMiss(b *testing.B) {
	c := New(Config{Capacity: 1024, Shards: 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(Key{Query: uint64(i)})
	}
}

func BenchmarkCachePut(b *testing.B) {
	c := New(Config{Capacity: 1024, Shards: 16})
	e := entryFor(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(Key{Query: uint64(i & 2047)}, e)
	}
}
