// Package experiment regenerates every figure of the paper's evaluation:
// Figure 3 (a, b, c) from the ReJOIN case study, the §4 negative results
// (naive full-space DRL, latency-as-reward from scratch), and the predicted
// behaviours of the §5 research directions (learning from demonstration,
// cost-model bootstrapping, incremental learning).
//
// Each experiment returns a typed result carrying the raw series/tables plus
// a Render method producing the aligned-text form the CLI prints. The
// associated benchmarks in the repository root drive the same entry points.
package experiment

import (
	"fmt"

	"handsfree/internal/cost"
	"handsfree/internal/datagen"
	"handsfree/internal/engine"
	"handsfree/internal/featurize"
	"handsfree/internal/optimizer"
	"handsfree/internal/plancache"
	"handsfree/internal/stats"
	"handsfree/internal/workload"
)

// LabConfig seeds and scales the shared experimental substrate.
type LabConfig struct {
	// Seed drives data generation.
	Seed int64
	// Scale is the database scale factor (1.0 ≈ 400k rows).
	Scale float64
	// OracleSeed selects the systematic cardinality-error field.
	OracleSeed int64
	// LatencySeed selects the execution-noise field.
	LatencySeed int64
	// CacheCapacity, when > 0, attaches a plan cache of that many entries
	// to the lab's planner, memoizing expert plans and episode completions
	// across experiments. The recorded experiment configurations leave it
	// 0 so planning-time measurements (Figure 3c) price every plan from
	// scratch, exactly as the paper's baseline does.
	CacheCapacity int
}

// DefaultLabConfig is the configuration used by the recorded experiments.
func DefaultLabConfig() LabConfig {
	return LabConfig{Seed: 1, Scale: 0.25, OracleSeed: 11, LatencySeed: 5}
}

// QuickLabConfig is a miniature substrate for tests and smoke runs.
func QuickLabConfig() LabConfig {
	return LabConfig{Seed: 1, Scale: 0.05, OracleSeed: 11, LatencySeed: 5}
}

// Lab is the shared substrate: one synthetic database with its statistics,
// cost model, traditional optimizer, truth oracle, and latency simulator.
type Lab struct {
	Cfg      LabConfig
	DB       *datagen.Database
	Est      *stats.Estimator
	Oracle   *stats.Oracle
	Model    *cost.Model
	Planner  *optimizer.Planner
	Latency  *engine.LatencyModel
	Workload *workload.Workload
	// Cache is the plan cache attached to Planner (nil when
	// LabConfig.CacheCapacity is 0).
	Cache *plancache.Cache
}

// NewLab builds the substrate.
func NewLab(cfg LabConfig) (*Lab, error) {
	db, err := datagen.Generate(datagen.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	est := stats.NewEstimator(db.Catalog, db.Stats)
	oracle := stats.NewOracle(est, cfg.OracleSeed)
	model := cost.New(cost.DefaultParams(), est)
	planner := optimizer.New(db.Catalog, model)
	var cache *plancache.Cache
	if cfg.CacheCapacity > 0 {
		cache = plancache.New(plancache.Config{Capacity: cfg.CacheCapacity})
		planner = planner.WithCache(cache)
	}
	return &Lab{
		Cfg:      cfg,
		DB:       db,
		Est:      est,
		Oracle:   oracle,
		Model:    model,
		Planner:  planner,
		Latency:  engine.NewLatencyModel(oracle, cfg.LatencySeed),
		Workload: workload.New(db),
		Cache:    cache,
	}, nil
}

// Space builds a featurization space sized for queries up to maxRels.
func (l *Lab) Space(maxRels int) *featurize.Space {
	return featurize.NewSpace(maxRels, l.Est)
}
