package experiment

import (
	"fmt"

	"handsfree/internal/cost"
	"handsfree/internal/engine"
	"handsfree/internal/optimizer"
	"handsfree/internal/stats"
)

// AblationOracleConfig sizes the cost-model-error ablation.
type AblationOracleConfig struct {
	// Sigmas are the join-error field strengths to sweep (stats.Oracle's
	// JoinSigma; 0 = the cost model is perfectly informed).
	Sigmas []float64
	// QueryCount, MinRel, MaxRel shape the evaluation workload.
	QueryCount, MinRel, MaxRel int
	Seed                       int64
}

// DefaultAblationOracleConfig sweeps the error strengths around the default.
func DefaultAblationOracleConfig() AblationOracleConfig {
	return AblationOracleConfig{Sigmas: []float64{0, 0.4, 0.8, 1.2}, QueryCount: 16, MinRel: 4, MaxRel: 8, Seed: 7}
}

// AblationOracleResult reports, per error strength, the latency headroom a
// latency-informed optimizer has over the cost-model-driven expert: the
// geometric mean of expert-plan latency divided by truth-informed-plan
// latency. Headroom 1.0 means the cost model loses nothing; the paper's
// motivation (§4, "using DRL to find execution plans with a low cost …
// might not always achieve the best possible results") predicts headroom
// grows with estimation error.
type AblationOracleResult struct {
	Table    *Table
	Headroom map[float64]float64
}

// AblationOracle quantifies the exploitable gap the oracle's systematic
// error field creates. For each sigma it rebuilds the truth oracle, plans
// each query twice — once with the estimator-driven cost model (the expert)
// and once with a truth-driven model (a "perfectly informed" planner) — and
// compares the simulated latencies of the two plans.
func (l *Lab) AblationOracle(cfg AblationOracleConfig) (*AblationOracleResult, error) {
	queries, err := l.Workload.Training(cfg.QueryCount, cfg.MinRel, cfg.MaxRel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &AblationOracleResult{
		Table: &Table{
			Title:   "ablation — latency headroom vs cost-model error strength",
			Columns: []string{"join-error σ", "headroom (expert lat / informed lat)"},
		},
		Headroom: map[float64]float64{},
	}
	for _, sigma := range cfg.Sigmas {
		oracle := stats.NewOracle(l.Est, l.Cfg.OracleSeed)
		oracle.JoinSigma = sigma
		if sigma == 0 {
			oracle.JoinBias = 0
			oracle.FilterSigma = 0
		}
		latency := engine.NewLatencyModel(oracle, l.Cfg.LatencySeed)

		// The informed planner optimizes the hardware-truth objective
		// directly (the best a learned optimizer could hope to reach).
		informedModel := cost.New(engine.HardwareParams(), oracle)
		informed := optimizer.New(l.DB.Catalog, informedModel)

		ratios := make([]float64, 0, len(queries))
		for _, q := range queries {
			expertPlan, err := l.Planner.Plan(q)
			if err != nil {
				return nil, err
			}
			informedPlan, err := informed.Plan(q)
			if err != nil {
				return nil, err
			}
			expertLat := latency.Latency(q, expertPlan.Root)
			informedLat := latency.Latency(q, informedPlan.Root)
			if informedLat <= 0 {
				continue
			}
			ratios = append(ratios, expertLat/informedLat)
		}
		h := GeoMean(ratios)
		res.Headroom[sigma] = h
		res.Table.AddRow(fmt.Sprintf("%.1f", sigma), fmt.Sprintf("%.2f×", h))
	}
	return res, nil
}

// Render prints the headroom table.
func (r *AblationOracleResult) Render() string {
	return r.Table.Render() + "\n(headroom is what a perfectly latency-informed planner saves over the\ncost-model expert; it bounds what any learned optimizer can gain)\n"
}

// AblationEnumeratorConfig sizes the enumerator ablation.
type AblationEnumeratorConfig struct {
	// RelationCounts to sweep.
	RelationCounts []int
	// Repeats averages each point.
	Repeats int
	Seed    int64
}

// DefaultAblationEnumeratorConfig sweeps the DP regime.
func DefaultAblationEnumeratorConfig() AblationEnumeratorConfig {
	return AblationEnumeratorConfig{RelationCounts: []int{4, 6, 8, 10, 12}, Repeats: 3, Seed: 7}
}

// AblationEnumeratorResult compares bushy DP, left-deep DP, greedy, and
// GEQO on plan quality (cost relative to bushy DP) and planning time.
type AblationEnumeratorResult struct {
	Quality *Table
	Time    *Table
}

// AblationEnumerator runs the enumerator ablation: the design-space choice
// (DESIGN.md) of giving the expert bushy DP rather than the classical
// left-deep restriction, quantified.
func (l *Lab) AblationEnumerator(cfg AblationEnumeratorConfig) (*AblationEnumeratorResult, error) {
	res := &AblationEnumeratorResult{
		Quality: &Table{
			Title:   "ablation — plan cost relative to bushy DP (geomean)",
			Columns: []string{"#relations", "left-deep DP", "greedy", "geqo"},
		},
		Time: &Table{
			Title:   "ablation — planning time (ms, mean)",
			Columns: []string{"#relations", "bushy DP", "left-deep DP", "greedy", "geqo"},
		},
	}
	leftPlanner := optimizer.New(l.DB.Catalog, l.Model)
	leftPlanner.LeftDeepOnly = true

	for _, n := range cfg.RelationCounts {
		type acc struct {
			ratios []float64
			timeMs float64
		}
		accs := map[string]*acc{"bushy": {}, "left": {}, "greedy": {}, "geqo": {}}
		for rep := 0; rep < cfg.Repeats; rep++ {
			q, err := l.Workload.ByRelations(n, cfg.Seed+int64(rep*100+n))
			if err != nil {
				return nil, err
			}
			bushy, err := l.Planner.PlanWith(q, optimizer.DP)
			if err != nil {
				return nil, err
			}
			accs["bushy"].timeMs += float64(bushy.Duration.Microseconds()) / 1000

			record := func(key string, planned optimizer.Planned) {
				accs[key].ratios = append(accs[key].ratios, planned.Cost/bushy.Cost)
				accs[key].timeMs += float64(planned.Duration.Microseconds()) / 1000
			}
			left, err := leftPlanner.PlanWith(q, optimizer.DP)
			if err != nil {
				return nil, err
			}
			record("left", left)
			greedy, err := l.Planner.PlanWith(q, optimizer.Greedy)
			if err != nil {
				return nil, err
			}
			record("greedy", greedy)
			geqo, err := l.Planner.PlanWith(q, optimizer.GEQO)
			if err != nil {
				return nil, err
			}
			record("geqo", geqo)
		}
		reps := float64(cfg.Repeats)
		res.Quality.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", GeoMean(accs["left"].ratios)),
			fmt.Sprintf("%.3f", GeoMean(accs["greedy"].ratios)),
			fmt.Sprintf("%.3f", GeoMean(accs["geqo"].ratios)),
		)
		res.Time.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", accs["bushy"].timeMs/reps),
			fmt.Sprintf("%.2f", accs["left"].timeMs/reps),
			fmt.Sprintf("%.2f", accs["greedy"].timeMs/reps),
			fmt.Sprintf("%.2f", accs["geqo"].timeMs/reps),
		)
	}
	return res, nil
}

// Render prints both ablation tables.
func (r *AblationEnumeratorResult) Render() string {
	return r.Quality.Render() + "\n" + r.Time.Render()
}
