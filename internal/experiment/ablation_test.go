package experiment

import (
	"fmt"
	"testing"
)

func TestAblationOracleHeadroomGrowsWithError(t *testing.T) {
	lab := quickLab(t)
	res, err := lab.AblationOracle(AblationOracleConfig{
		Sigmas: []float64{0, 0.8}, QueryCount: 10, MinRel: 4, MaxRel: 7, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle ablation:\n%s", res.Render())
	h0 := res.Headroom[0]
	h8 := res.Headroom[0.8]
	// With no estimation error, the expert only loses to hardware-constant
	// mismatch; with a strong error field the headroom must be larger.
	if h8 <= h0 {
		t.Fatalf("headroom did not grow with error strength: σ=0 → %.2f, σ=0.8 → %.2f", h0, h8)
	}
	if h0 < 0.5 || h0 > 4 {
		t.Fatalf("σ=0 headroom %.2f implausible (should be near 1)", h0)
	}
}

func TestAblationEnumeratorShapes(t *testing.T) {
	lab := quickLab(t)
	res, err := lab.AblationEnumerator(AblationEnumeratorConfig{
		RelationCounts: []int{4, 8}, Repeats: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("enumerator ablation:\n%s", res.Render())
	if len(res.Quality.Rows) != 2 || len(res.Time.Rows) != 2 {
		t.Fatalf("tables incomplete: %d/%d rows", len(res.Quality.Rows), len(res.Time.Rows))
	}
	// Every alternative's quality ratio is ≥ 1 (bushy DP is optimal).
	for _, row := range res.Quality.Rows {
		for col := 1; col < len(row); col++ {
			var ratio float64
			if _, err := fmt.Sscanf(row[col], "%f", &ratio); err != nil {
				t.Fatalf("unparseable ratio %q", row[col])
			}
			if ratio < 0.999 {
				t.Fatalf("enumerator beat exhaustive bushy DP: %s", row[col])
			}
		}
	}
}
