package experiment

import (
	"fmt"
	"math"
	"time"

	"handsfree/internal/optimizer"
	"handsfree/internal/query"
	"handsfree/internal/rejoin"
	"handsfree/internal/rl"
	"handsfree/internal/workload"
)

// Fig3aConfig sizes the ReJOIN convergence experiment (paper Figure 3a).
type Fig3aConfig struct {
	// Episodes is the training length (the paper runs 14k; the shape is
	// visible from a few thousand at our scale).
	Episodes int
	// QueryCount, MinRel, MaxRel shape the training workload.
	QueryCount, MinRel, MaxRel int
	// SamplePoints is how many points the output series carries.
	SamplePoints int
	// Window smooths the per-episode cost ratios.
	Window int
	// Workers > 1 collects training episodes with that many parallel
	// environment replicas (deterministic merged order); ≤ 1 trains
	// strictly sequentially, reproducing the historical single-threaded
	// trajectory exactly.
	Workers int
	Seed    int64
}

// DefaultFig3aConfig mirrors the paper's setup at reproducible scale. The
// paper's PPO agent reached parity near 9k episodes; this REINFORCE learner
// converges more slowly, so the default run is longer.
func DefaultFig3aConfig() Fig3aConfig {
	return Fig3aConfig{Episodes: 24000, QueryCount: 24, MinRel: 4, MaxRel: 8, SamplePoints: 60, Window: 200, Seed: 7}
}

// Fig3aResult is the convergence curve: training episodes vs. plan cost
// relative to the PostgreSQL-style baseline (percent; 100 = parity).
// Curve tracks the plans sampled during training (exploration included,
// like the paper's plot); Greedy tracks the current policy's pure-
// exploitation plans at the same checkpoints.
type Fig3aResult struct {
	Curve  *Series
	Greedy *Series
	// Baseline is the constant 100% line (the traditional optimizer).
	Baseline *Series
	// FirstParity is the episode at which the greedy curve first reaches
	// ≤ 120% of the baseline (-1 if never).
	FirstParity int
}

// Fig3a trains ReJOIN with the optimizer's cost model as its reward and
// tracks the produced plans' cost relative to the traditional optimizer
// (greedy bottom-up enumeration — the paper's characterization of
// PostgreSQL's algorithm).
func (l *Lab) Fig3a(cfg Fig3aConfig) (*Fig3aResult, error) {
	queries, err := l.Workload.Training(cfg.QueryCount, cfg.MinRel, cfg.MaxRel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	expert := map[string]float64{}
	for _, q := range queries {
		planned, err := l.Planner.PlanWith(q, optimizer.Greedy)
		if err != nil {
			return nil, err
		}
		expert[q.Key()] = planned.Cost
	}

	space := l.Space(cfg.MaxRel)
	env := rejoin.NewEnv(space, l.Planner, queries, cfg.Seed)
	agent := rejoin.NewAgent(env, rl.ReinforceConfig{
		Hidden: []int{128, 64}, LR: 1e-3, BatchSize: 32, Seed: cfg.Seed,
	})

	greedyPct := func() float64 {
		ratios := make([]float64, 0, len(queries))
		for _, q := range queries {
			_, c := agent.GreedyPlan(q)
			ratios = append(ratios, c/expert[q.Key()])
		}
		return GeoMean(ratios) * 100
	}

	// Smooth the sampled curve geometrically: per-episode ratios span orders
	// of magnitude early in training, and an arithmetic window would let
	// single catastrophic episodes dominate it.
	out := &Fig3aResult{
		Curve:       &Series{Name: "ReJOIN"},
		Greedy:      &Series{Name: "ReJOIN-greedy"},
		Baseline:    &Series{Name: "Postgres"},
		FirstParity: -1,
	}
	step := cfg.Episodes / cfg.SamplePoints
	if step < 1 {
		step = 1
	}
	logRatios := make([]float64, cfg.Episodes)
	if cfg.Workers > 1 {
		// Parallel collection path: train in chunks of one checkpoint
		// interval, evaluating the greedy policy between chunks.
		for ep := 0; ep < cfg.Episodes; {
			n := step
			if ep+n > cfg.Episodes {
				n = cfg.Episodes - ep
			}
			for i, res := range agent.TrainEpisodes(n, cfg.Workers) {
				logRatios[ep+i] = math.Log(res.Cost / expert[res.Query.Key()] * 100)
			}
			ep += n
			g := greedyPct()
			out.Greedy.Add(float64(ep-1), g)
			if out.FirstParity < 0 && g <= 120 {
				out.FirstParity = ep - 1
			}
		}
	} else {
		for ep := 0; ep < cfg.Episodes; ep++ {
			res := agent.TrainEpisode()
			logRatios[ep] = math.Log(res.Cost / expert[res.Query.Key()] * 100)
			if ep%step == 0 || ep == cfg.Episodes-1 {
				g := greedyPct()
				out.Greedy.Add(float64(ep), g)
				if out.FirstParity < 0 && g <= 120 {
					out.FirstParity = ep
				}
			}
		}
	}
	smoothLog := MovingAverage(logRatios, cfg.Window)
	for ep := 0; ep < cfg.Episodes; ep += step {
		out.Curve.Add(float64(ep), math.Exp(smoothLog[ep]))
		out.Baseline.Add(float64(ep), 100)
	}
	out.Curve.Add(float64(cfg.Episodes-1), math.Exp(smoothLog[cfg.Episodes-1]))
	out.Baseline.Add(float64(cfg.Episodes-1), 100)
	return out, nil
}

// Render prints the convergence table.
func (r *Fig3aResult) Render() string {
	t := SeriesTable("Figure 3a — ReJOIN convergence (plan cost % relative to Postgres)", "episode", r.Curve, r.Greedy, r.Baseline)
	s := t.Render()
	if r.FirstParity >= 0 {
		s += fmt.Sprintf("\ngreedy policy first ≤120%% of baseline at episode %d\n", r.FirstParity)
	} else {
		s += "\ngreedy policy never reached 120% of baseline\n"
	}
	return s
}

// Fig3bConfig sizes the per-query final plan cost experiment (Figure 3b).
type Fig3bConfig struct {
	// Episodes trains ReJOIN on the named queries before evaluation.
	Episodes int
	Seed     int64
}

// DefaultFig3bConfig mirrors the paper's setup (longer than Figure 3a's
// per-query budget: these are the workload's largest queries).
func DefaultFig3bConfig() Fig3bConfig {
	return Fig3bConfig{Episodes: 12000, Seed: 7}
}

// Fig3bResult is the per-query cost comparison.
type Fig3bResult struct {
	Table *Table
	// Wins counts queries where ReJOIN's final cost ≤ the baseline's.
	Wins, Total int
}

// Fig3b trains ReJOIN on the ten named JOB-like queries of the paper's
// Figure 3b and compares final (greedy) plan costs against the traditional
// optimizer's greedy enumeration.
func (l *Lab) Fig3b(cfg Fig3bConfig) (*Fig3bResult, error) {
	names := workload.Fig3bNames()
	var queries []*queryWithName
	maxRel := 0
	for _, name := range names {
		q, err := l.Workload.Named(name)
		if err != nil {
			return nil, err
		}
		queries = append(queries, &queryWithName{name: name, q: q})
		if len(q.Relations) > maxRel {
			maxRel = len(q.Relations)
		}
	}
	space := l.Space(maxRel)
	var qs []*query.Query
	for _, qn := range queries {
		qs = append(qs, qn.q)
	}
	env := rejoin.NewEnv(space, l.Planner, qs, cfg.Seed)
	// Cross-product actions are masked here: on 8–11-relation queries a
	// single cross-product episode costs ~1e6× a good plan, and REINFORCE
	// at this budget can collapse onto that mode. Follow-up systems to the
	// paper (Neo, Balsa) mask disconnected joins for the same reason; see
	// EXPERIMENTS.md.
	env.DisallowCross = true
	agent := rejoin.NewAgent(env, rl.ReinforceConfig{
		Hidden: []int{128, 64}, LR: 1.5e-3, BatchSize: 16, Seed: cfg.Seed,
		EntropyDecay: 0.995,
	})
	for ep := 0; ep < cfg.Episodes; ep++ {
		agent.TrainEpisode()
	}

	res := &Fig3bResult{Table: &Table{
		Title:   "Figure 3b — final optimizer cost per query",
		Columns: []string{"query", "Postgres", "ReJOIN", "ratio"},
	}}
	for _, qn := range queries {
		planned, err := l.Planner.PlanWith(qn.q, optimizer.Greedy)
		if err != nil {
			return nil, err
		}
		_, rjCost := agent.GreedyPlan(qn.q)
		ratio := rjCost / planned.Cost
		res.Table.AddRow(qn.name, fmt.Sprintf("%.0f", planned.Cost), fmt.Sprintf("%.0f", rjCost), fmt.Sprintf("%.3f", ratio))
		res.Total++
		if ratio <= 1.000001 {
			res.Wins++
		}
	}
	return res, nil
}

// Render prints the per-query table.
func (r *Fig3bResult) Render() string {
	return r.Table.Render() + fmt.Sprintf("\nReJOIN matches or beats the baseline on %d/%d queries\n", r.Wins, r.Total)
}

// Fig3cConfig sizes the planning-time experiment (Figure 3c).
type Fig3cConfig struct {
	// RelationCounts to sweep (paper: 4…12, 14, 17).
	RelationCounts []int
	// Repeats averages the timing over this many runs.
	Repeats int
	Seed    int64
}

// DefaultFig3cConfig mirrors the paper's sweep.
func DefaultFig3cConfig() Fig3cConfig {
	return Fig3cConfig{RelationCounts: []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 17}, Repeats: 5, Seed: 7}
}

// Fig3cResult carries planning time (ms) per relation count.
type Fig3cResult struct {
	Postgres *Series
	ReJOIN   *Series
}

// Fig3c measures planning time versus relation count: the traditional
// optimizer (DP through its threshold, GEQO beyond — PostgreSQL's regime
// change) against ReJOIN greedy inference (n−1 network forward passes).
func (l *Lab) Fig3c(cfg Fig3cConfig) (*Fig3cResult, error) {
	maxRel := 0
	for _, n := range cfg.RelationCounts {
		if n > maxRel {
			maxRel = n
		}
	}
	space := l.Space(maxRel)
	res := &Fig3cResult{
		Postgres: &Series{Name: "PostgreSQL"},
		ReJOIN:   &Series{Name: "ReJOIN"},
	}
	for _, n := range cfg.RelationCounts {
		var pgTotal, rjTotal time.Duration
		for rep := 0; rep < cfg.Repeats; rep++ {
			q, err := l.Workload.ByRelations(n, cfg.Seed+int64(rep*1000+n))
			if err != nil {
				return nil, err
			}
			planned, err := l.Planner.Plan(q)
			if err != nil {
				return nil, err
			}
			pgTotal += planned.Duration

			env := rejoin.NewEnv(space, l.Planner, []*query.Query{q}, cfg.Seed)
			agent := rejoin.NewAgent(env, rl.ReinforceConfig{Hidden: []int{128, 64}, Seed: cfg.Seed})
			start := time.Now()
			agent.GreedyPlan(q)
			rjTotal += time.Since(start)
		}
		res.Postgres.Add(float64(n), float64(pgTotal.Microseconds())/float64(cfg.Repeats)/1000)
		res.ReJOIN.Add(float64(n), float64(rjTotal.Microseconds())/float64(cfg.Repeats)/1000)
	}
	return res, nil
}

// Render prints the planning-time table.
func (r *Fig3cResult) Render() string {
	return SeriesTable("Figure 3c — planning time (ms) vs #relations", "#relations", r.Postgres, r.ReJOIN).Render()
}

// queryWithName pairs a named template with its parsed query.
type queryWithName struct {
	name string
	q    *query.Query
}
