package experiment

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points — a figure curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Last returns the final y value (NaN-free series assumed).
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// Table is an aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render produces the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// SeriesTable flattens several series sharing x values into one table.
func SeriesTable(title, xName string, series ...*Series) *Table {
	t := &Table{Title: title, Columns: append([]string{xName}, names(series)...)}
	if len(series) == 0 {
		return t
	}
	for i := range series[0].X {
		row := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.3f", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

func names(series []*Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

// GeoMean returns the geometric mean of positive values — the standard
// aggregation for plan-quality ratios, robust to single-query blowups.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// MovingAverage smooths a raw sequence with the given window.
func MovingAverage(values []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(values))
	var sum float64
	for i, v := range values {
		sum += v
		if i >= window {
			sum -= values[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}
