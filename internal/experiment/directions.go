package experiment

import (
	"fmt"
	"math"

	"handsfree/internal/bootstrap"
	"handsfree/internal/curriculum"
	"handsfree/internal/lfd"
	"handsfree/internal/nn"
	"handsfree/internal/planspace"
	"handsfree/internal/query"
	"handsfree/internal/rl"
)

// NaiveConfig sizes the §4 negative-result experiment.
type NaiveConfig struct {
	// Episodes is the training budget (the paper gave the naive agent 72
	// hours and it still did not beat random choice).
	Episodes int
	// QueryCount, MinRel, MaxRel shape the workload.
	QueryCount, MinRel, MaxRel int
	// EvalEvery samples the comparison curve.
	EvalEvery int
	Seed      int64
}

// DefaultNaiveConfig mirrors the §4 setup at reproducible scale.
func DefaultNaiveConfig() NaiveConfig {
	return NaiveConfig{Episodes: 6000, QueryCount: 16, MinRel: 5, MaxRel: 8, EvalEvery: 500, Seed: 7}
}

// NaiveResult contrasts the naive full-plan-space agent with a
// join-order-only agent (ReJOIN's restricted space) at the same training
// budget, with uniform random full-space plans as the reference level.
type NaiveResult struct {
	Agent     *Series // naive full-space greedy cost ratio vs expert
	JoinOrder *Series // restricted-space greedy cost ratio vs expert
	// FinalAgent, FinalJoinOrder and RandomLevel summarize the end state.
	FinalAgent, FinalJoinOrder, RandomLevel float64
}

// NaiveFullSpace trains a tabula-rasa policy-gradient agent on the FULL
// pipeline (join order × access paths × operators × aggregation) and
// compares against random choice — §4's "a naive extension of ReJOIN …
// yielded a model that did not out-perform random choice".
func (l *Lab) NaiveFullSpace(cfg NaiveConfig) (*NaiveResult, error) {
	queries, err := l.Workload.Training(cfg.QueryCount, cfg.MinRel, cfg.MaxRel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	expert, err := l.expertCosts(queries)
	if err != nil {
		return nil, err
	}
	space := l.Space(cfg.MaxRel)
	mkEnv := func(stages planspace.Stages) *planspace.Env {
		return planspace.NewEnv(planspace.Config{
			Space:   space,
			Stages:  stages,
			Planner: l.Planner,
			Queries: queries,
			Reward:  planspace.CostReward,
			Seed:    cfg.Seed,
		})
	}
	fullEnv := mkEnv(planspace.StagePrefix(planspace.NumStages))
	joinEnv := mkEnv(planspace.StagePrefix(1))
	// The §4 negative result is a qualitative gap (naive ≫ restricted) whose
	// seed calibration belongs to the deterministic f64 reference; f32
	// rounding perturbs the sampled trajectories enough to blur the figure,
	// so this experiment pins the reference precision.
	full := rl.NewReinforce(fullEnv.ObsDim(), fullEnv.ActionDim(), rl.ReinforceConfig{
		Hidden: []int{128, 64}, LR: 1.5e-3, BatchSize: 16, Precision: nn.F64, Seed: cfg.Seed,
	})
	restricted := rl.NewReinforce(joinEnv.ObsDim(), joinEnv.ActionDim(), rl.ReinforceConfig{
		Hidden: []int{128, 64}, LR: 1.5e-3, BatchSize: 16, Precision: nn.F64, Seed: cfg.Seed,
	})

	res := &NaiveResult{
		Agent:       &Series{Name: "naive-full-space"},
		JoinOrder:   &Series{Name: "join-order-only"},
		RandomLevel: l.randomLevel(fullEnv, queries, expert, cfg.Seed+999),
	}
	for ep := 0; ep < cfg.Episodes; ep++ {
		traj := rl.RunEpisode(fullEnv, full.Sample, 4*space.MaxRels+8)
		full.Observe(traj)
		traj = rl.RunEpisode(joinEnv, restricted.Sample, 4*space.MaxRels+8)
		restricted.Observe(traj)
		if ep%cfg.EvalEvery == 0 || ep == cfg.Episodes-1 {
			res.Agent.Add(float64(ep), l.greedyRatio(fullEnv, full, queries, expert))
			res.JoinOrder.Add(float64(ep), l.greedyRatio(joinEnv, restricted, queries, expert))
		}
	}
	res.FinalAgent = res.Agent.Last()
	res.FinalJoinOrder = res.JoinOrder.Last()
	return res, nil
}

// Render prints the naive-vs-restricted comparison.
func (r *NaiveResult) Render() string {
	s := SeriesTable("§4 — naive full-plan-space DRL vs restricted join-order DRL (cost ratio vs expert)", "episode", r.Agent, r.JoinOrder).Render()
	s += fmt.Sprintf("\nfinal: naive %.1f×, join-order-only %.1f×; uniform-random full-space level %.3g×\n",
		r.FinalAgent, r.FinalJoinOrder, r.RandomLevel)
	return s
}

// ScratchLatencyConfig sizes the footnote-2 experiment.
type ScratchLatencyConfig struct {
	Episodes                   int
	QueryCount, MinRel, MaxRel int
	// BudgetFactor sets the execution budget as a multiple of the expert's
	// latency (plans beyond it "cannot be executed in reasonable time").
	BudgetFactor float64
	Seed         int64
}

// DefaultScratchLatencyConfig mirrors footnote 2.
func DefaultScratchLatencyConfig() ScratchLatencyConfig {
	return ScratchLatencyConfig{Episodes: 300, QueryCount: 12, MinRel: 5, MaxRel: 8, BudgetFactor: 25, Seed: 7}
}

// ScratchLatencyResult reports how tabula-rasa latency-reward training
// spends its time executing un-executable plans.
type ScratchLatencyResult struct {
	Episodes int
	TimedOut int
	// TimeoutFraction = TimedOut / Episodes.
	TimeoutFraction float64
	// WallclockFactor estimates total execution time relative to running
	// every query once with the expert's plans.
	WallclockFactor float64
}

// LatencyFromScratch reproduces footnote 2: a fresh agent trained directly
// on latency must execute its plans; most early plans blow through any
// reasonable execution budget.
func (l *Lab) LatencyFromScratch(cfg ScratchLatencyConfig) (*ScratchLatencyResult, error) {
	queries, err := l.Workload.Training(cfg.QueryCount, cfg.MinRel, cfg.MaxRel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Expert latencies define the per-query budget and the wallclock unit.
	var expertTotal float64
	budget := map[string]float64{}
	for _, q := range queries {
		planned, err := l.Planner.Plan(q)
		if err != nil {
			return nil, err
		}
		lat, _ := l.Latency.Execute(q, planned.Root, 0)
		expertTotal += lat
		budget[q.Key()] = lat * cfg.BudgetFactor
	}
	space := l.Space(cfg.MaxRel)
	env := planspace.NewEnv(planspace.Config{
		Space:              space,
		Stages:             planspace.StagePrefix(planspace.NumStages),
		Planner:            l.Planner,
		Latency:            l.Latency,
		Queries:            queries,
		Reward:             planspace.LatencyReward,
		RewardNeedsLatency: true,
		Seed:               cfg.Seed,
	})
	agent := rl.NewReinforce(env.ObsDim(), env.ActionDim(), rl.ReinforceConfig{
		Hidden: []int{128, 64}, LR: 1.5e-3, BatchSize: 16, Seed: cfg.Seed,
	})

	var execTotal float64
	for ep := 0; ep < cfg.Episodes; ep++ {
		// Per-query budget: the env takes one global budget, so set it to
		// the upcoming query's.
		next := env.Cfg.Queries[(ep)%len(queries)]
		env.Cfg.LatencyBudgetMs = budget[next.Key()]
		traj := rl.RunEpisode(env, agent.Sample, 4*space.MaxRels+8)
		agent.Observe(traj)
		execTotal += env.Last.LatencyMs
	}
	res := &ScratchLatencyResult{
		Episodes:        cfg.Episodes,
		TimedOut:        env.TimedOutCount,
		TimeoutFraction: float64(env.TimedOutCount) / float64(cfg.Episodes),
		WallclockFactor: execTotal / expertTotal,
	}
	return res, nil
}

// Render prints the footnote-2 summary.
func (r *ScratchLatencyResult) Render() string {
	return fmt.Sprintf(`§4 footnote 2 — latency as reward, tabula rasa
episodes executed:           %d
hit the execution budget:    %d (%.0f%%)
execution time vs expert:    %.1f× one expert pass over the workload
`, r.Episodes, r.TimedOut, 100*r.TimeoutFraction, r.WallclockFactor)
}

// LfDConfig sizes the §5.1 experiment.
type LfDConfig struct {
	QueryCount, MinRel, MaxRel int
	PretrainBatches            int
	FineTuneEpisodes           int
	Seed                       int64
}

// DefaultLfDConfig mirrors §5.1.
func DefaultLfDConfig() LfDConfig {
	return LfDConfig{QueryCount: 16, MinRel: 4, MaxRel: 7, PretrainBatches: 3000, FineTuneEpisodes: 1200, Seed: 7}
}

// LfDResult compares learning-from-demonstration against a tabula-rasa
// latency learner with the same execution budget.
type LfDResult struct {
	// RatioAfterPretrain is the LfD agent's latency ratio vs expert before
	// any self-driven execution.
	RatioAfterPretrain float64
	// RatioAfterFineTune is the final ratio.
	RatioAfterFineTune float64
	// Catastrophic counts executions ≥ 50× the expert during fine-tuning.
	Catastrophic int
	// ScratchCatastrophic counts them for the tabula-rasa baseline over the
	// same number of executed episodes.
	ScratchCatastrophic int
	// ScratchRatio is the baseline's final latency ratio.
	ScratchRatio float64
	// Retrains counts slip-triggered re-trainings.
	Retrains int
}

// LfDExperiment runs §5.1: demonstrations → imitation → latency fine-tuning,
// against a from-scratch latency learner with the same execution budget.
func (l *Lab) LfDExperiment(cfg LfDConfig) (*LfDResult, error) {
	queries, err := l.Workload.Training(cfg.QueryCount, cfg.MinRel, cfg.MaxRel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	space := l.Space(cfg.MaxRel)
	mkEnv := func(seed int64) *planspace.Env {
		return planspace.NewEnv(planspace.Config{
			Space:         space,
			Stages:        planspace.StagePrefix(planspace.NumStages),
			Planner:       l.Planner,
			Latency:       l.Latency,
			Queries:       queries,
			Reward:        planspace.LatencyReward,
			ExecuteAlways: true,
			Seed:          seed,
		})
	}

	agent := lfd.New(lfd.Config{Env: mkEnv(cfg.Seed), Seed: cfg.Seed})
	if err := agent.CollectDemonstrations(); err != nil {
		return nil, err
	}
	agent.Pretrain(cfg.PretrainBatches, 32)

	evalRatio := func(latOf func(*query.Query) float64) float64 {
		ratios := make([]float64, 0, len(queries))
		for _, q := range queries {
			ratios = append(ratios, latOf(q)/agent.ExpertLatency(q))
		}
		return GeoMean(ratios)
	}
	res := &LfDResult{}
	res.RatioAfterPretrain = evalRatio(agent.GreedyLatency)

	for ep := 0; ep < cfg.FineTuneEpisodes; ep++ {
		agent.FineTuneEpisode()
	}
	res.RatioAfterFineTune = evalRatio(agent.GreedyLatency)
	res.Catastrophic = agent.CatastrophicExecutions
	res.Retrains = agent.Retrains

	// Tabula-rasa baseline: latency-reward policy gradient with the same
	// number of executed episodes.
	scratchEnv := mkEnv(cfg.Seed + 1)
	scratch := rl.NewReinforce(scratchEnv.ObsDim(), scratchEnv.ActionDim(), rl.ReinforceConfig{
		Hidden: []int{128, 64}, LR: 1.5e-3, BatchSize: 16, Seed: cfg.Seed + 1,
	})
	expertLat := map[string]float64{}
	for _, q := range queries {
		expertLat[q.Key()] = agent.ExpertLatency(q)
	}
	for ep := 0; ep < cfg.FineTuneEpisodes; ep++ {
		traj := rl.RunEpisode(scratchEnv, scratch.Sample, 4*space.MaxRels+8)
		scratch.Observe(traj)
		if scratchEnv.Last.LatencyMs >= 50*expertLat[scratchEnv.Current().Key()] {
			res.ScratchCatastrophic++
		}
	}
	res.ScratchRatio = evalRatio(func(q *query.Query) float64 {
		s := scratchEnv.ResetTo(q)
		for !s.Terminal {
			act := scratch.Greedy(s)
			if act < 0 {
				break
			}
			next, _, done := scratchEnv.Step(act)
			s = next
			if done {
				break
			}
		}
		return scratchEnv.Last.LatencyMs
	})
	return res, nil
}

// Render prints the §5.1 comparison.
func (r *LfDResult) Render() string {
	return fmt.Sprintf(`§5.1 — learning from demonstration (latency ratio vs expert; 1.0 = parity)
after imitation only (0 agent executions): %.2f
after latency fine-tuning:                 %.2f
catastrophic executions (LfD):             %d
catastrophic executions (from scratch):    %d
from-scratch final ratio (same budget):    %.2f
slip re-trainings:                         %d
`, r.RatioAfterPretrain, r.RatioAfterFineTune, r.Catastrophic, r.ScratchCatastrophic, r.ScratchRatio, r.Retrains)
}

// BootstrapConfig sizes the §5.2 experiment.
type BootstrapConfig struct {
	QueryCount, MinRel, MaxRel int
	Phase1Episodes             int
	Phase2Episodes             int
	EvalEvery                  int
	Seed                       int64
}

// DefaultBootstrapConfig mirrors §5.2.
func DefaultBootstrapConfig() BootstrapConfig {
	return BootstrapConfig{QueryCount: 16, MinRel: 4, MaxRel: 7, Phase1Episodes: 5000, Phase2Episodes: 2500, EvalEvery: 250, Seed: 7}
}

// BootstrapResult compares the raw reward switch against the paper's linear
// rescaling. The tracked metric is the quality of the plans the agent
// BUILDS AND EXECUTES during training (windowed geometric-mean cost ratio of
// sampled episodes): §5.2's warning is precisely that a destabilized policy
// "begin[s] exploring previously-discarded strategies, requiring the
// execution of poor execution plans".
type BootstrapResult struct {
	Unscaled *Series // windowed log10 training cost ratio vs expert
	Scaled   *Series
	// SwitchEpisode marks where Phase 2 begins.
	SwitchEpisode int
	// Dip quantifies post-switch destabilization: worst post-switch window
	// minus the last pre-switch window (log10 units), per variant.
	DipUnscaled, DipScaled float64
	// PoorUnscaled / PoorScaled count Phase-2 executions ≥ 10× the expert's
	// latency.
	PoorUnscaled, PoorScaled int
}

// BootstrapExperiment runs §5.2 for both Phase-2 reward mappings.
func (l *Lab) BootstrapExperiment(cfg BootstrapConfig) (*BootstrapResult, error) {
	queries, err := l.Workload.Training(cfg.QueryCount, cfg.MinRel, cfg.MaxRel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	expert, err := l.expertCosts(queries)
	if err != nil {
		return nil, err
	}
	space := l.Space(cfg.MaxRel)

	// Expert latencies define what a "poor" Phase-2 execution means.
	expertLat := map[string]float64{}
	for _, q := range queries {
		planned, err := l.Planner.Plan(q)
		if err != nil {
			return nil, err
		}
		lat, _ := l.Latency.Execute(q, planned.Root, 0)
		expertLat[q.Key()] = lat
	}

	run := func(scaling bootstrap.Scaling, name string) (*Series, float64, int, error) {
		env := planspace.NewEnv(planspace.Config{
			Space:   space,
			Stages:  planspace.StagePrefix(planspace.NumStages),
			Planner: l.Planner,
			Latency: l.Latency,
			Queries: queries,
			Seed:    cfg.Seed,
		})
		agent := bootstrap.New(bootstrap.Config{
			Env:     env,
			Scaling: scaling,
			Agent: rl.ReinforceConfig{
				Hidden: []int{128, 64}, BatchSize: 16, Seed: cfg.Seed,
			},
		})
		series := &Series{Name: name}
		var window []float64
		flush := func(ep int) float64 {
			if len(window) == 0 {
				return 0
			}
			sum := 0.0
			for _, v := range window {
				sum += v
			}
			r := sum / float64(len(window))
			series.Add(float64(ep), r)
			window = window[:0]
			return r
		}
		pre := 0.0
		for ep := 0; ep < cfg.Phase1Episodes; ep++ {
			out := agent.TrainEpisode()
			window = append(window, math.Log10(out.Cost/expert[env.Current().Key()]))
			if (ep+1)%cfg.EvalEvery == 0 {
				pre = flush(ep)
			}
		}
		agent.SwitchToLatency()
		worst := pre
		poor := 0
		for ep := 0; ep < cfg.Phase2Episodes; ep++ {
			out := agent.TrainEpisode()
			q := env.Current()
			window = append(window, math.Log10(out.Cost/expert[q.Key()]))
			if out.LatencyMs >= 10*expertLat[q.Key()] {
				poor++
			}
			if (ep+1)%cfg.EvalEvery == 0 || ep == cfg.Phase2Episodes-1 {
				if r := flush(cfg.Phase1Episodes + ep); r > worst {
					worst = r
				}
			}
		}
		return series, worst - pre, poor, nil
	}

	unscaled, dipU, poorU, err := run(bootstrap.ScaleNone, "unscaled")
	if err != nil {
		return nil, err
	}
	scaled, dipS, poorS, err := run(bootstrap.ScaleLinear, "scaled")
	if err != nil {
		return nil, err
	}
	return &BootstrapResult{
		Unscaled:      unscaled,
		Scaled:        scaled,
		SwitchEpisode: cfg.Phase1Episodes,
		DipUnscaled:   dipU,
		DipScaled:     dipS,
		PoorUnscaled:  poorU,
		PoorScaled:    poorS,
	}, nil
}

// Render prints the §5.2 comparison.
func (r *BootstrapResult) Render() string {
	s := SeriesTable("§5.2 — cost-model bootstrapping (log10 training cost ratio vs expert)", "episode", r.Unscaled, r.Scaled).Render()
	s += fmt.Sprintf("\nreward switch at episode %d\npost-switch destabilization (log10): unscaled %+.2f, scaled %+.2f\npoor plans executed in phase 2 (≥10× expert latency): unscaled %d, scaled %d\n",
		r.SwitchEpisode, r.DipUnscaled, r.DipScaled, r.PoorUnscaled, r.PoorScaled)
	return s
}

// CurriculumConfig sizes the §5.3 experiment.
type CurriculumConfig struct {
	QueryCount, MinRel, MaxRel int
	// EpisodesPerPhase is each curriculum phase's budget; the flat baseline
	// receives the same total.
	EpisodesPerPhase int
	Seed             int64
}

// DefaultCurriculumConfig mirrors §5.3.
func DefaultCurriculumConfig() CurriculumConfig {
	return CurriculumConfig{QueryCount: 24, MinRel: 2, MaxRel: 7, EpisodesPerPhase: 1500, Seed: 7}
}

// CurriculumResult compares the three decompositions and the flat baseline
// at equal total training budgets.
type CurriculumResult struct {
	Table *Table
	// FinalRatios maps schedule name → final full-pipeline cost ratio on
	// the complete workload.
	FinalRatios map[string]float64
}

// CurriculumExperiment trains pipeline, relations, hybrid, and flat
// schedules with equal budgets and evaluates each final policy on the full
// workload with the full pipeline.
func (l *Lab) CurriculumExperiment(cfg CurriculumConfig) (*CurriculumResult, error) {
	queries, err := l.Workload.Training(cfg.QueryCount, cfg.MinRel, cfg.MaxRel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	space := l.Space(cfg.MaxRel)

	// Every schedule receives the same TOTAL training budget (the pipeline
	// schedule's), so the comparison isolates the decomposition itself.
	budget := cfg.EpisodesPerPhase * planspace.NumStages
	perPhase := func(s curriculum.Schedule) curriculum.Schedule {
		for i := range s {
			s[i].Episodes = budget / len(s)
		}
		return s
	}
	schedules := []struct {
		name string
		s    curriculum.Schedule
	}{
		{"pipeline", perPhase(curriculum.PipelineSchedule(cfg.EpisodesPerPhase))},
		{"relations", perPhase(curriculum.RelationsSchedule(cfg.EpisodesPerPhase, relationSteps(cfg.MinRel, cfg.MaxRel)))},
		{"hybrid", perPhase(curriculum.HybridSchedule(cfg.EpisodesPerPhase, cfg.MaxRel))},
		{"flat (naive §4)", curriculum.FlatSchedule(budget)},
	}

	res := &CurriculumResult{
		Table: &Table{
			Title:   "§5.3 — incremental learning (final cost ratio vs expert, full pipeline)",
			Columns: []string{"schedule", "phases", "episodes", "final ratio"},
		},
		FinalRatios: map[string]float64{},
	}
	for _, sc := range schedules {
		tr := curriculum.NewTrainer(curriculum.Config{
			Space:   space,
			Planner: l.Planner,
			Latency: l.Latency,
			Queries: queries,
			Agent: rl.ReinforceConfig{
				Hidden: []int{128, 64}, LR: 1.5e-3, BatchSize: 16, Seed: cfg.Seed,
			},
			Cache: l.Cache,
			Seed:  cfg.Seed,
		})
		if _, err := tr.Run(sc.s, nil); err != nil {
			return nil, err
		}
		// Final evaluation: full pipeline over the whole workload.
		final := curriculum.Phase{
			Name:     "eval",
			Stages:   planspace.StagePrefix(planspace.NumStages),
			Episodes: 0,
		}
		if _, err := tr.RunPhase(final, sc.s.TotalEpisodes(), nil); err != nil {
			return nil, err
		}
		ratio, err := tr.EvalRatio(queries)
		if err != nil {
			return nil, err
		}
		res.FinalRatios[sc.name] = ratio
		res.Table.AddRow(sc.name, fmt.Sprintf("%d", len(sc.s)), fmt.Sprintf("%d", sc.s.TotalEpisodes()), fmt.Sprintf("%.2f", ratio))
	}
	return res, nil
}

// Render prints the §5.3 comparison.
func (r *CurriculumResult) Render() string {
	return r.Table.Render()
}

// relationSteps builds the growing-relations curriculum steps.
func relationSteps(minRel, maxRel int) []int {
	var steps []int
	for n := minRel + 1; n <= maxRel; n += 2 {
		steps = append(steps, n)
	}
	if len(steps) == 0 || steps[len(steps)-1] != maxRel {
		steps = append(steps, maxRel)
	}
	return steps
}

// expertCosts plans each query with the traditional optimizer and returns
// cost keyed by query.
func (l *Lab) expertCosts(queries []*query.Query) (map[string]float64, error) {
	out := map[string]float64{}
	for _, q := range queries {
		planned, err := l.Planner.Plan(q)
		if err != nil {
			return nil, err
		}
		out[q.Key()] = planned.Cost
	}
	return out, nil
}

// greedyRatio evaluates an agent's greedy policy over the workload
// (geometric mean of per-query cost ratios).
func (l *Lab) greedyRatio(env *planspace.Env, agent *rl.Reinforce, queries []*query.Query, expert map[string]float64) float64 {
	ratios := make([]float64, 0, len(queries))
	for _, q := range queries {
		s := env.ResetTo(q)
		for !s.Terminal {
			act := agent.Greedy(s)
			if act < 0 {
				break
			}
			next, _, done := env.Step(act)
			s = next
			if done {
				break
			}
		}
		ratios = append(ratios, env.Last.Cost/expert[q.Key()])
	}
	return GeoMean(ratios)
}

// randomLevel evaluates uniform-random plan construction over the workload
// (geometric mean over repeated passes).
func (l *Lab) randomLevel(env *planspace.Env, queries []*query.Query, expert map[string]float64, seed int64) float64 {
	pol := rl.RandomPolicy(seed)
	var ratios []float64
	for rep := 0; rep < 5; rep++ {
		for _, q := range queries {
			s := env.ResetTo(q)
			for !s.Terminal {
				next, _, done := env.Step(pol(s))
				s = next
				if done {
					break
				}
			}
			ratios = append(ratios, env.Last.Cost/expert[q.Key()])
		}
	}
	return GeoMean(ratios)
}
