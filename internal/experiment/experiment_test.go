package experiment

import (
	"fmt"
	"strings"
	"testing"
)

func quickLab(t *testing.T) *Lab {
	t.Helper()
	lab, err := NewLab(QuickLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	return lab
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bbbb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.Render()
	for _, want := range []string{"T\n", "a    bbbb", "333  4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bbbb\n1,2\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestMovingAverage(t *testing.T) {
	out := MovingAverage([]float64{2, 4, 6, 8}, 2)
	want := []float64{2, 3, 5, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("ma[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if got := MovingAverage([]float64{1, 2}, 0); got[0] != 1 || got[1] != 2 {
		t.Fatal("window 0 must behave as window 1")
	}
}

func TestSeriesTableAlignsSeries(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 30)
	tab := SeriesTable("title", "x", a, b)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[1][2] != "" {
		t.Fatalf("missing b value should render empty, got %q", tab.Rows[1][2])
	}
}

func TestFig3aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	lab := quickLab(t)
	res, err := lab.Fig3a(Fig3aConfig{
		Episodes: 4000, QueryCount: 8, MinRel: 4, MaxRel: 6,
		SamplePoints: 20, Window: 200, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Curve.Y[1] // index 0 is inside the warm-up window
	last := res.Curve.Last()
	t.Logf("fig3a: first=%.0f%% last=%.0f%% greedy=%.0f%% parity@%d", first, last, res.Greedy.Last(), res.FirstParity)
	if last >= first/2 {
		t.Fatalf("convergence curve did not descend enough: %.0f%% → %.0f%%", first, last)
	}
	if res.Greedy.Last() > 900 {
		t.Fatalf("greedy ratio %.0f%% still above 900%% after the quick run", res.Greedy.Last())
	}
}

func TestFig3bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	lab := quickLab(t)
	res, err := lab.Fig3b(Fig3bConfig{Episodes: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 10 {
		t.Fatalf("evaluated %d queries, want 10", res.Total)
	}
	if len(res.Table.Rows) != 10 {
		t.Fatalf("table has %d rows", len(res.Table.Rows))
	}
	t.Logf("fig3b: ReJOIN wins %d/%d\n%s", res.Wins, res.Total, res.Render())
	// A quick run cannot reach the paper's full result (ReJOIN ≤ baseline on
	// every query); require near-parity on some queries as the shape check.
	near := 0
	for _, row := range res.Table.Rows {
		var ratio float64
		fmt.Sscanf(row[3], "%f", &ratio)
		if ratio <= 3 {
			near++
		}
	}
	if near < 3 {
		t.Errorf("only %d/10 queries within 3× of the baseline after the quick run", near)
	}
}

func TestFig3cShape(t *testing.T) {
	lab := quickLab(t)
	res, err := lab.Fig3c(Fig3cConfig{RelationCounts: []int{4, 8, 12, 14}, Repeats: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fig3c:\n%s", res.Render())
	pg := res.Postgres.Y
	rj := res.ReJOIN.Y
	// DP planning time grows sharply from 4 to 12 relations.
	if pg[2] <= pg[0] {
		t.Fatalf("DP time at 12 relations (%.3fms) not above 4 relations (%.3fms)", pg[2], pg[0])
	}
	// ReJOIN inference stays below the traditional optimizer at the upper
	// end of the DP regime (the paper's counter-intuitive result).
	if rj[2] >= pg[2] {
		t.Fatalf("ReJOIN at 12 relations (%.3fms) not faster than DP (%.3fms)", rj[2], pg[2])
	}
}

func TestNaiveFullSpaceNotBetterThanRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	lab := quickLab(t)
	res, err := lab.NaiveFullSpace(NaiveConfig{
		Episodes: 4000, QueryCount: 8, MinRel: 4, MaxRel: 6, EvalEvery: 500, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("naive:\n%s", res.Render())
	// §4's claim at fixed budget: the restricted (ReJOIN-style) space has
	// converged near the expert while the full plan space has not.
	if res.FinalJoinOrder > 4 {
		t.Errorf("restricted agent only reached %.1f× expert; expected near-convergence at this budget", res.FinalJoinOrder)
	}
	if res.FinalAgent < 2*res.FinalJoinOrder {
		t.Errorf("naive full-space (%.1f×) converged almost as well as restricted (%.1f×); §4's search-space gap is missing", res.FinalAgent, res.FinalJoinOrder)
	}
}

func TestLatencyFromScratchTimesOut(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	lab := quickLab(t)
	res, err := lab.LatencyFromScratch(ScratchLatencyConfig{
		Episodes: 120, QueryCount: 8, MinRel: 5, MaxRel: 7, BudgetFactor: 25, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scratch latency: %s", res.Render())
	if res.TimeoutFraction < 0.25 {
		t.Fatalf("only %.0f%% of tabula-rasa episodes hit the budget; footnote 2 expects most early plans to be unexecutable", 100*res.TimeoutFraction)
	}
	if res.WallclockFactor < 3 {
		t.Fatalf("execution overhead %.1f× too low to support footnote 2", res.WallclockFactor)
	}
}

func TestLfDExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	lab := quickLab(t)
	res, err := lab.LfDExperiment(LfDConfig{
		QueryCount: 8, MinRel: 5, MaxRel: 7, PretrainBatches: 1200, FineTuneEpisodes: 250, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("lfd:\n%s", res.Render())
	if res.RatioAfterPretrain >= res.ScratchRatio {
		t.Fatalf("imitation (%.2f) not better than from-scratch (%.2f)", res.RatioAfterPretrain, res.ScratchRatio)
	}
	if res.Catastrophic > res.ScratchCatastrophic {
		t.Fatalf("LfD executed more catastrophic plans (%d) than from-scratch (%d)", res.Catastrophic, res.ScratchCatastrophic)
	}
}

func TestBootstrapExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	lab := quickLab(t)
	res, err := lab.BootstrapExperiment(BootstrapConfig{
		QueryCount: 8, MinRel: 4, MaxRel: 6, Phase1Episodes: 1200, Phase2Episodes: 600, EvalEvery: 150, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bootstrap:\n%s", res.Render())
	if res.DipUnscaled <= res.DipScaled {
		t.Errorf("unscaled switch (dip %+.2f log10) was not less stable than scaled (%+.2f)", res.DipUnscaled, res.DipScaled)
	}
	if res.PoorUnscaled < res.PoorScaled {
		t.Errorf("unscaled switch executed fewer poor plans (%d) than scaled (%d)", res.PoorUnscaled, res.PoorScaled)
	}
}

func TestCurriculumExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	lab := quickLab(t)
	res, err := lab.CurriculumExperiment(CurriculumConfig{
		QueryCount: 12, MinRel: 2, MaxRel: 5, EpisodesPerPhase: 250, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("curriculum:\n%s", res.Render())
	if len(res.FinalRatios) != 4 {
		t.Fatalf("expected 4 schedules, got %v", res.FinalRatios)
	}
	for name, r := range res.FinalRatios {
		if r <= 0 {
			t.Fatalf("schedule %s ratio %v", name, r)
		}
	}
}
