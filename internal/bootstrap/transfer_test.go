package bootstrap

import (
	"testing"

	"handsfree/internal/nn"
	"handsfree/internal/rl"
)

func TestTransferSwitchKeepsHiddenReinitsOutput(t *testing.T) {
	env, _ := fixtureEnv(t, 4, 4, 5)
	// Pinned to f64: the test compares raw Params() slices across the switch.
	agent := New(Config{Env: env, Agent: rl.ReinforceConfig{Hidden: []int{32, 16}, Precision: nn.F64, Seed: 3}, Scaling: ScaleTransfer})
	for ep := 0; ep < 40; ep++ {
		agent.TrainEpisode()
	}
	oldPolicy := agent.RL.Policy
	oldHidden := append([]float64(nil), oldPolicy.Params()[0].Value...)
	oldOutput := outputWeights(t, agent)

	agent.SwitchToLatency()

	if agent.RL.Policy == oldPolicy {
		t.Fatal("transfer switch did not rebuild the learner")
	}
	newHidden := agent.RL.Policy.Params()[0].Value
	for i := range oldHidden {
		if newHidden[i] != oldHidden[i] {
			t.Fatal("hidden layer weights changed across the transfer switch")
		}
	}
	newOutput := outputWeights(t, agent)
	same := 0
	for i := range oldOutput {
		if oldOutput[i] == newOutput[i] {
			same++
		}
	}
	if same > len(oldOutput)/10 {
		t.Fatalf("%d/%d output weights unchanged; output layer not re-initialized", same, len(oldOutput))
	}

	// Phase 2 must still train without error and use the batch-std learner.
	for ep := 0; ep < 40; ep++ {
		agent.TrainEpisode()
	}
	if agent.RL.Cfg.UseSGD {
		t.Fatal("transfer switch should move to the scale-free (Adam) learner")
	}
}

func outputWeights(t *testing.T, a *Agent) []float64 {
	t.Helper()
	params := a.RL.Policy.Params()
	// Last weight matrix is the second-to-last param (weights, then bias).
	w := params[len(params)-2].Value
	return append([]float64(nil), w...)
}

func TestTransferRewardIsLogLatency(t *testing.T) {
	env, _ := fixtureEnv(t, 3, 4, 4)
	agent := New(Config{Env: env, Agent: rl.ReinforceConfig{Hidden: []int{16}, Seed: 5}, Scaling: ScaleTransfer})
	for ep := 0; ep < 10; ep++ {
		agent.TrainEpisode()
	}
	agent.SwitchToLatency()
	out := agent.TrainEpisode()
	if out.LatencyMs <= 0 {
		t.Fatal("phase-2 transfer episode was not executed")
	}
}
