// Package bootstrap implements §5.2 of the paper: cost-model bootstrapping.
//
// A policy-gradient agent first trains with the traditional optimizer's
// cost model as its reward ("training wheels", Phase 1) — exploration is
// safe because bad plans are merely costed, never executed. Once Phase 1
// has converged, the reward switches to observed execution latency
// (Phase 2). The paper predicts that switching the raw reward range
// destabilizes the policy, and proposes rescaling latencies into the cost
// range observed at the end of Phase 1:
//
//	r_l = Cmin + (l − Lmin)/(Lmax − Lmin) · (Cmax − Cmin)
//
// Both variants (raw switch and rescaled switch) are provided so the
// experiment can measure the difference.
package bootstrap

import (
	"math"
	"math/rand"
	"sync"

	"handsfree/internal/planspace"
	"handsfree/internal/query"
	"handsfree/internal/rl"
)

// Scaling selects how Phase-2 latencies become rewards.
type Scaling int

const (
	// ScaleNone switches the reward to raw −latency (the destabilizing
	// variant the paper warns about).
	ScaleNone Scaling = iota
	// ScaleLinear applies the paper's linear latency→cost-range mapping.
	ScaleLinear
	// ScaleTransfer is the paper's closing §5.2 alternative ("transfer
	// learning"): at the switch, the hidden layers are kept, the output
	// layer is re-initialized, and Phase 2 trains on −log(latency) with a
	// scale-free (batch-standardized) learner. The reward-range jump is
	// absorbed by the fresh head instead of being rescaled away.
	ScaleTransfer
)

// Config controls a bootstrapping run.
type Config struct {
	Env *planspace.Env
	// Agent is the policy-gradient learner configuration.
	Agent rl.ReinforceConfig
	// Scaling selects the Phase-2 reward mapping.
	Scaling Scaling
	// CalibrationWindow is how many trailing Phase-1 episodes contribute to
	// the observed cost range (default 200).
	CalibrationWindow int
	// Robust keeps the learner's production defaults (Adam, batch-standardized
	// baseline, gradient clipping) instead of the deliberately range-sensitive
	// vanilla-REINFORCE setup the §5.2 experiment uses to expose the reward
	// switch. With a scale-free learner the raw reward magnitude is irrelevant,
	// so Phase 2 trains on −log(latency) regardless of Scaling and
	// SwitchToLatency performs no learner surgery. This is the configuration
	// the root handsfree.Service lifecycle controller runs: the experiment
	// studies the hazard, the service avoids it.
	Robust bool
}

// Agent is the cost-model-bootstrapped learner.
type Agent struct {
	Cfg Config
	RL  *rl.Reinforce

	// mu guards the reward closure's calibration state. The closure is
	// shared by every environment replica during parallel or asynchronous
	// collection (replicas copy the env config, closure value included), so
	// it runs on actor goroutines concurrently.
	mu          sync.Mutex
	phase2      bool
	costRange   rl.Range
	latRange    rl.Range
	recentCosts []float64

	// Phase2Episodes counts episodes run since the switch.
	Phase2Episodes int
}

// New builds the agent. The environment should start with a cost reward;
// the agent installs its own reward closure.
func New(cfg Config) *Agent {
	if cfg.CalibrationWindow == 0 {
		cfg.CalibrationWindow = 200
	}
	env := cfg.Env
	if !cfg.Robust {
		// Range-sensitive learner: the §5.2 phenomenon under study is the
		// reward-range discontinuity. A per-batch standardizer would hide it in
		// the advantages, and Adam's per-weight normalization would hide it in
		// the updates, so the bootstrapping agent uses an EMA baseline with
		// plain gradient ascent (vanilla REINFORCE, as in §2 of the paper).
		cfg.Agent.Baseline = rl.BaselineRunningEMA
		cfg.Agent.UseSGD = true
		if cfg.Agent.Clip == 0 {
			cfg.Agent.Clip = -1 // unclipped: §5.2's hazard is the raw magnitude
		}
		if cfg.Agent.LR == 0 {
			cfg.Agent.LR = 3e-2
		}
	}
	a := &Agent{Cfg: cfg, RL: rl.NewReinforce(env.ObsDim(), env.ActionDim(), cfg.Agent)}
	env.Cfg.Reward = a.reward
	env.Cfg.RewardNeedsLatency = false
	return a
}

// reward is the phase-dependent reward closure installed into the env.
// Phase 1: −log(cost), with the trailing cost range recorded for
// calibration. Phase 2: −(latency mapped per the configured scaling).
// It is safe for concurrent use: environment replicas collecting in
// parallel (or async actors) share this closure.
func (a *Agent) reward(o planspace.Outcome) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.phase2 {
		if math.IsInf(o.Cost, 1) || o.Cost <= 0 {
			return -1e6
		}
		r := -math.Log(o.Cost)
		// Track the trailing window of log-costs; the calibration range is
		// taken from "the end of Phase 1", as the paper specifies.
		a.recentCosts = append(a.recentCosts, -r)
		if len(a.recentCosts) > a.Cfg.CalibrationWindow {
			a.recentCosts = a.recentCosts[1:]
		}
		return r
	}
	lat := o.LatencyMs
	if lat <= 0 || math.IsNaN(lat) {
		return -1e6
	}
	a.latRange.Observe(lat)
	if a.Cfg.Robust {
		// Scale-free learner: the raw magnitude is irrelevant, no mapping
		// needed (Scaling is ignored under Robust).
		return -math.Log(lat)
	}
	switch a.Cfg.Scaling {
	case ScaleTransfer:
		// Scale-free learner: the raw magnitude is irrelevant.
		return -math.Log(lat)
	case ScaleLinear:
		if a.latRange.Count() < 2 || a.costRange.Count() < 2 {
			// Before the latency range is known, anchor at the cost range's
			// midpoint to avoid a startup spike.
			return -(a.costRange.Min() + a.costRange.Max()) / 2
		}
		return -a.latRange.Rescale(lat, &a.costRange)
	default:
		return -math.Log(lat) * latencyRawScale
	}
}

// latencyRawScale exaggerates nothing: it converts −log(latency) into a
// range far from Phase 1's −log(cost) range (latencies are in milliseconds,
// costs in planner units ≈ 100–1000× larger), reproducing the paper's
// example of the reward range jumping at the switch.
const latencyRawScale = 60

// TrainEpisode runs one sampled episode under the current phase's reward.
func (a *Agent) TrainEpisode() planspace.Outcome {
	env := a.Cfg.Env
	traj := rl.RunEpisode(env, a.RL.Sample, 4*env.Cfg.Space.MaxRels+8)
	a.RL.Observe(traj)
	if a.InPhase2() {
		a.Phase2Episodes++
	}
	return env.Last
}

// SwitchToLatency flips the reward source to execution latency (Phase 2).
// The environment starts executing every episode from here on, and the
// calibration range is frozen from the trailing Phase-1 window. Under
// ScaleTransfer the policy's output layer is re-initialized and the learner
// is rebuilt scale-free (Adam + batch standardization) over the preserved
// hidden layers.
func (a *Agent) SwitchToLatency() {
	a.mu.Lock()
	a.phase2 = true
	a.costRange = rl.Range{}
	for _, c := range a.recentCosts {
		a.costRange.Observe(c)
	}
	a.mu.Unlock()
	a.Cfg.Env.Cfg.RewardNeedsLatency = true
	if a.Cfg.Robust {
		// Scale-free learner throughout: no surgery needed at the switch.
		return
	}
	if a.Cfg.Scaling == ScaleTransfer {
		old := a.RL.Policy
		cfg := a.Cfg.Agent
		cfg.UseSGD = false
		cfg.Baseline = rl.BaselineBatchStd
		cfg.Clip = 5
		cfg.LR = 1.5e-3
		env := a.Cfg.Env
		fresh := rl.NewReinforce(env.ObsDim(), env.ActionDim(), cfg)
		fresh.Policy = old.Clone()
		fresh.Policy.ReinitOutput(rand.New(rand.NewSource(cfg.Seed + 99)))
		a.RL = fresh
	}
}

// SwitchToCost returns the agent to cost-model reward (Phase 1), used when
// drift-triggered re-training restarts the learning lifecycle from the cost
// phase. The trailing cost window is cleared so the calibration range is
// re-learned from post-drift conditions. Only supported for Robust agents,
// whose scale-free learner needs no surgery at phase switches.
func (a *Agent) SwitchToCost() {
	a.mu.Lock()
	a.phase2 = false
	a.recentCosts = a.recentCosts[:0]
	a.mu.Unlock()
	a.Cfg.Env.Cfg.RewardNeedsLatency = false
}

// InPhase2 reports whether the latency phase is active.
func (a *Agent) InPhase2() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.phase2
}

// GreedyOutcome plans q greedily with the current policy and returns the
// (always-executed) outcome.
func (a *Agent) GreedyOutcome(q *query.Query) planspace.Outcome {
	env := a.Cfg.Env
	s := env.ResetTo(q)
	for !s.Terminal {
		act := a.RL.Greedy(s)
		if act < 0 {
			break
		}
		next, _, done := env.Step(act)
		s = next
		if done {
			break
		}
	}
	out := env.Last
	if math.IsNaN(out.LatencyMs) && env.Cfg.Latency != nil {
		out.LatencyMs, out.TimedOut = env.Cfg.Latency.Execute(q, out.Plan, env.Cfg.LatencyBudgetMs)
	}
	return out
}

// CostRange exposes the Phase-1 calibration range (log-cost units).
func (a *Agent) CostRange() *rl.Range { return &a.costRange }
