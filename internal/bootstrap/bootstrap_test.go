package bootstrap

import (
	"math"
	"testing"

	"handsfree/internal/cost"
	"handsfree/internal/datagen"
	"handsfree/internal/engine"
	"handsfree/internal/featurize"
	"handsfree/internal/optimizer"
	"handsfree/internal/planspace"
	"handsfree/internal/query"
	"handsfree/internal/rl"
	"handsfree/internal/stats"
	"handsfree/internal/workload"
)

func fixtureEnv(t *testing.T, nQueries, minRel, maxRel int) (*planspace.Env, []*query.Query) {
	t.Helper()
	db, err := datagen.Generate(datagen.Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(db.Catalog, db.Stats)
	model := cost.New(cost.DefaultParams(), est)
	planner := optimizer.New(db.Catalog, model)
	oracle := stats.NewOracle(est, 11)
	lat := engine.NewLatencyModel(oracle, 5)
	w := workload.New(db)
	qs, err := w.Training(nQueries, minRel, maxRel, 17)
	if err != nil {
		t.Fatal(err)
	}
	env := planspace.NewEnv(planspace.Config{
		Space:   featurize.NewSpace(maxRel, est),
		Stages:  planspace.StagePrefix(4),
		Planner: planner,
		Latency: lat,
		Queries: qs,
		Seed:    3,
	})
	return env, qs
}

func TestPhase1DoesNotExecute(t *testing.T) {
	env, _ := fixtureEnv(t, 4, 4, 5)
	agent := New(Config{Env: env, Agent: rl.ReinforceConfig{Hidden: []int{32}, Seed: 1}})
	for ep := 0; ep < 20; ep++ {
		agent.TrainEpisode()
	}
	if env.Executions != 0 {
		t.Fatalf("phase 1 executed %d plans; the whole point is zero executions", env.Executions)
	}
}

func TestPhase2Executes(t *testing.T) {
	env, _ := fixtureEnv(t, 4, 4, 5)
	agent := New(Config{Env: env, Agent: rl.ReinforceConfig{Hidden: []int{32}, Seed: 1}})
	for ep := 0; ep < 10; ep++ {
		agent.TrainEpisode()
	}
	agent.SwitchToLatency()
	for ep := 0; ep < 10; ep++ {
		agent.TrainEpisode()
	}
	if env.Executions != 10 {
		t.Fatalf("phase 2 executed %d plans over 10 episodes", env.Executions)
	}
	if agent.Phase2Episodes != 10 {
		t.Fatalf("phase-2 episode counter = %d", agent.Phase2Episodes)
	}
}

// TestRewardContinuity verifies the mechanism of §5.2 directly: with linear
// rescaling the Phase-2 rewards land inside the Phase-1 reward range; with
// no scaling they land far outside it.
func TestRewardContinuity(t *testing.T) {
	for _, tc := range []struct {
		name    string
		scaling Scaling
		inside  bool
	}{
		{"unscaled jumps", ScaleNone, false},
		{"scaled stays", ScaleLinear, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env, _ := fixtureEnv(t, 4, 4, 5)
			agent := New(Config{Env: env, Agent: rl.ReinforceConfig{Hidden: []int{32}, Seed: 2}, Scaling: tc.scaling})
			var phase1Rewards []float64
			for ep := 0; ep < 60; ep++ {
				agent.TrainEpisode()
				phase1Rewards = append(phase1Rewards, planspace.CostReward(env.Last))
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, r := range phase1Rewards[len(phase1Rewards)-30:] {
				lo = math.Min(lo, r)
				hi = math.Max(hi, r)
			}
			agent.SwitchToLatency()
			inside, outside := 0, 0
			for ep := 0; ep < 30; ep++ {
				out := agent.TrainEpisode()
				r := agent.reward(out)
				// Widen the band slightly: new plans can be a bit outside.
				span := hi - lo + 1
				if r >= lo-span && r <= hi+span {
					inside++
				} else {
					outside++
				}
			}
			if tc.inside && inside < outside {
				t.Fatalf("scaled rewards mostly left the phase-1 range: %d inside, %d outside [%v, %v]",
					inside, outside, lo, hi)
			}
			if !tc.inside && outside < inside {
				t.Fatalf("unscaled rewards mostly stayed in the phase-1 range: %d inside, %d outside [%v, %v]",
					inside, outside, lo, hi)
			}
		})
	}
}

func TestCalibrationUsesTrailingWindow(t *testing.T) {
	env, _ := fixtureEnv(t, 4, 4, 5)
	agent := New(Config{Env: env, Agent: rl.ReinforceConfig{Hidden: []int{32}, Seed: 3}, CalibrationWindow: 10})
	for ep := 0; ep < 50; ep++ {
		agent.TrainEpisode()
	}
	agent.SwitchToLatency()
	if agent.CostRange().Count() != 10 {
		t.Fatalf("calibration range built from %d episodes, want the trailing 10", agent.CostRange().Count())
	}
}

// TestPhase1Learns confirms the cost-reward phase actually improves the
// policy (the premise of bootstrapping).
func TestPhase1Learns(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	env, qs := fixtureEnv(t, 6, 4, 5)
	// Defaults: the vanilla-REINFORCE learner with the package's tuned LR.
	agent := New(Config{Env: env, Agent: rl.ReinforceConfig{
		Hidden: []int{64, 32}, BatchSize: 16, Seed: 4,
	}})
	eval := func() float64 {
		total := 0.0
		for _, q := range qs {
			out := agent.GreedyOutcome(q)
			planned, err := env.Cfg.Planner.Plan(q)
			if err != nil {
				t.Fatal(err)
			}
			total += out.Cost / planned.Cost
		}
		return total / float64(len(qs))
	}
	before := eval()
	for ep := 0; ep < 3000; ep++ {
		agent.TrainEpisode()
	}
	after := eval()
	t.Logf("cost ratio vs expert: before=%.2f after=%.2f", before, after)
	if after >= before {
		t.Fatalf("phase 1 did not improve the policy: %.2f → %.2f", before, after)
	}
}
