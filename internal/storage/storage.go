// Package storage provides the in-memory columnar table store the execution
// engine reads. Tables are maps from column name to a dense []int64; row i
// of a table is the i-th entry of every column.
package storage

import "fmt"

// Table holds one relation's data in columnar form.
type Table struct {
	Name string
	N    int
	Cols map[string][]int64
}

// NewTable returns an empty table with capacity hints for n rows.
func NewTable(name string, n int) *Table {
	return &Table{Name: name, N: n, Cols: make(map[string][]int64)}
}

// AddColumn attaches a column; its length must equal the table's row count.
func (t *Table) AddColumn(name string, values []int64) error {
	if len(values) != t.N {
		return fmt.Errorf("storage: column %s.%s has %d values, table has %d rows", t.Name, name, len(values), t.N)
	}
	t.Cols[name] = values
	return nil
}

// Column returns the named column's values.
func (t *Table) Column(name string) ([]int64, error) {
	c, ok := t.Cols[name]
	if !ok {
		return nil, fmt.Errorf("storage: table %s has no column %s", t.Name, name)
	}
	return c, nil
}

// DB is a set of tables.
type DB struct {
	Tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{Tables: make(map[string]*Table)}
}

// Add registers a table.
func (db *DB) Add(t *Table) { db.Tables[t.Name] = t }

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.Tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %s", name)
	}
	return t, nil
}
