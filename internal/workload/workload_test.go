package workload

import (
	"testing"

	"handsfree/internal/datagen"
)

func testDB(t *testing.T) *datagen.Database {
	t.Helper()
	db, err := datagen.Generate(datagen.Config{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNamedQueriesValid(t *testing.T) {
	w := New(testDB(t))
	for _, name := range NamedNames() {
		q, err := w.Named(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !q.Connected() {
			t.Fatalf("%s: join graph disconnected", name)
		}
		if len(q.Filters) == 0 {
			t.Fatalf("%s: no filters", name)
		}
	}
}

func TestFig3bNamesAllExist(t *testing.T) {
	w := New(testDB(t))
	for _, name := range Fig3bNames() {
		if _, err := w.Named(name); err != nil {
			t.Fatalf("figure 3b query %s: %v", name, err)
		}
	}
}

func TestNamedDeterministic(t *testing.T) {
	w := New(testDB(t))
	a := w.MustNamed("8c")
	b := w.MustNamed("8c")
	if a.SQL() != b.SQL() {
		t.Fatalf("8c not deterministic:\n%s\n%s", a.SQL(), b.SQL())
	}
}

func TestNamedRelationCountsMatchJOBShape(t *testing.T) {
	w := New(testDB(t))
	wants := map[string]int{"1a": 5, "8c": 7, "12b": 8, "13c": 9, "16b": 8, "22c": 11}
	for name, want := range wants {
		q := w.MustNamed(name)
		if len(q.Relations) != want {
			t.Fatalf("%s has %d relations, want %d", name, len(q.Relations), want)
		}
	}
}

func TestByRelationsExactCount(t *testing.T) {
	w := New(testDB(t))
	for _, n := range []int{1, 2, 4, 8, 12, 17} {
		q, err := w.ByRelations(n, 7)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(q.Relations) != n {
			t.Fatalf("n=%d: got %d relations", n, len(q.Relations))
		}
		if !q.Connected() {
			t.Fatalf("n=%d: disconnected", n)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestByRelationsDeterministicInSeed(t *testing.T) {
	w := New(testDB(t))
	a, _ := w.ByRelations(6, 42)
	b, _ := w.ByRelations(6, 42)
	if a.SQL() != b.SQL() {
		t.Fatal("ByRelations not deterministic")
	}
	c, _ := w.ByRelations(6, 43)
	if a.SQL() == c.SQL() {
		t.Fatal("different seeds gave identical queries (suspicious)")
	}
}

func TestByRelationsBounds(t *testing.T) {
	w := New(testDB(t))
	if _, err := w.ByRelations(0, 1); err == nil {
		t.Fatal("accepted 0 relations")
	}
	if _, err := w.ByRelations(100, 1); err == nil {
		t.Fatal("accepted more relations than tables")
	}
}

func TestTrainingWorkload(t *testing.T) {
	w := New(testDB(t))
	qs, err := w.Training(20, 3, 7, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 20 {
		t.Fatalf("got %d queries, want 20", len(qs))
	}
	for _, q := range qs {
		n := len(q.Relations)
		if n < 3 || n > 7 {
			t.Fatalf("query %s has %d relations, want 3..7", q.Name, n)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
	}
}

func TestFiltersUseRealDomains(t *testing.T) {
	w := New(testDB(t))
	qs, err := w.Training(30, 2, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		for _, f := range q.Filters {
			rel, _ := q.RelationByAlias(f.Alias)
			col, err := w.DB.Catalog.MustTable(rel.Table).Column(f.Column)
			if err != nil {
				t.Fatalf("%s: filter on unknown column %s.%s", q.Name, rel.Table, f.Column)
			}
			if f.Value < col.Min || f.Value > col.Max {
				t.Fatalf("%s: filter value %d outside domain [%d,%d] of %s.%s",
					q.Name, f.Value, col.Min, col.Max, rel.Table, f.Column)
			}
		}
	}
}
