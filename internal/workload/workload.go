// Package workload builds the query workloads for the experiments: named
// JOB-like templates (the paper's Figure 3b evaluates queries 1a…22c of the
// Join Order Benchmark), generators parameterized by relation count (Figure
// 3c sweeps 4…17 relations), and random training workloads.
//
// Every generated query is deterministic in its seed, connected over the
// schema's FK graph, and carries selection predicates whose values come from
// the generated data's actual domains.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"handsfree/internal/datagen"
	"handsfree/internal/query"
)

// aliasOf maps schema tables to their conventional JOB aliases.
var aliasOf = map[string]string{
	"title":           "t",
	"movie_companies": "mc",
	"company_name":    "cn",
	"company_type":    "ct",
	"cast_info":       "ci",
	"name":            "n",
	"aka_name":        "an",
	"char_name":       "chn",
	"role_type":       "rt",
	"movie_info":      "mi",
	"movie_info_idx":  "miidx",
	"info_type":       "it",
	"movie_keyword":   "mk",
	"keyword":         "k",
	"kind_type":       "kt",
	"link_type":       "lt",
	"movie_link":      "ml",
	"person_info":     "pi",
	"comp_cast_type":  "cct",
	"complete_cast":   "cc",
	"aka_title":       "at",
}

// Workload builds queries over a generated database.
type Workload struct {
	DB *datagen.Database
}

// New returns a workload builder for the database.
func New(db *datagen.Database) *Workload {
	return &Workload{DB: db}
}

// Fig3bNames lists the JOB query names evaluated in the paper's Figure 3b.
func Fig3bNames() []string {
	return []string{"1a", "1b", "1c", "1d", "8c", "12b", "13c", "15a", "16b", "22c"}
}

// template describes a named JOB-like query: its relations and how many
// filters to place (values are seeded by the template name).
type template struct {
	tables  []string
	filters int
	groupBy bool
}

// templates approximate the Join Order Benchmark's named queries over the
// synthetic schema: same relation counts and star shape as their JOB
// namesakes.
var templates = map[string]template{
	"1a":  {tables: []string{"title", "movie_companies", "company_type", "movie_info_idx", "info_type"}, filters: 2},
	"1b":  {tables: []string{"title", "movie_companies", "company_type", "movie_info_idx", "info_type"}, filters: 3},
	"1c":  {tables: []string{"title", "movie_companies", "company_type", "movie_info_idx", "info_type"}, filters: 2, groupBy: true},
	"1d":  {tables: []string{"title", "movie_companies", "company_type", "movie_info_idx", "info_type"}, filters: 3},
	"8c":  {tables: []string{"aka_name", "cast_info", "company_name", "movie_companies", "name", "role_type", "title"}, filters: 3},
	"12b": {tables: []string{"company_name", "company_type", "info_type", "movie_info", "movie_info_idx", "movie_companies", "title", "kind_type"}, filters: 3},
	"13c": {tables: []string{"company_name", "company_type", "info_type", "kind_type", "movie_companies", "movie_info", "movie_info_idx", "title", "movie_keyword"}, filters: 3},
	"15a": {tables: []string{"aka_title", "company_name", "company_type", "info_type", "movie_companies", "movie_info", "title", "movie_keyword", "keyword"}, filters: 4, groupBy: true},
	"16b": {tables: []string{"aka_name", "cast_info", "company_name", "keyword", "movie_companies", "movie_keyword", "name", "title"}, filters: 2},
	"22c": {tables: []string{"company_name", "company_type", "info_type", "keyword", "kind_type", "movie_companies", "movie_info", "movie_info_idx", "movie_keyword", "title", "cast_info"}, filters: 4},
	// Additional templates for broader workloads.
	"2a":  {tables: []string{"company_name", "keyword", "movie_companies", "movie_keyword", "title"}, filters: 2},
	"4b":  {tables: []string{"info_type", "keyword", "movie_info_idx", "movie_keyword", "title"}, filters: 3},
	"10a": {tables: []string{"char_name", "cast_info", "company_name", "company_type", "movie_companies", "role_type", "title"}, filters: 3},
	"17e": {tables: []string{"cast_info", "company_name", "keyword", "movie_companies", "movie_keyword", "name", "title"}, filters: 2},
	"20a": {tables: []string{"complete_cast", "comp_cast_type", "char_name", "cast_info", "keyword", "kind_type", "movie_keyword", "name", "title"}, filters: 3, groupBy: true},
}

// NamedNames returns every named template, sorted.
func NamedNames() []string {
	out := make([]string, 0, len(templates))
	for name := range templates {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Named builds the named query. The same name always yields the same query.
func (w *Workload) Named(name string) (*query.Query, error) {
	tpl, ok := templates[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown query template %q", name)
	}
	seed := int64(0)
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	rng := rand.New(rand.NewSource(seed))
	q, err := w.assemble(name, tpl.tables, tpl.filters, tpl.groupBy, rng)
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustNamed is Named for template names known statically.
func (w *Workload) MustNamed(name string) *query.Query {
	q, err := w.Named(name)
	if err != nil {
		panic(err)
	}
	return q
}

// assemble builds a connected query over the given tables: one FK join edge
// linking every table into the connected component, plus every other FK edge
// between included tables (matching JOB's predicate-rich shape), plus
// seeded filters and a COUNT/MIN aggregate.
func (w *Workload) assemble(name string, tables []string, nFilters int, groupBy bool, rng *rand.Rand) (*query.Query, error) {
	q := &query.Query{Name: name}
	included := map[string]bool{}
	for _, tbl := range tables {
		alias := aliasOf[tbl]
		if alias == "" {
			return nil, fmt.Errorf("workload: table %q has no alias", tbl)
		}
		q.Relations = append(q.Relations, query.Relation{Table: tbl, Alias: alias})
		included[tbl] = true
	}
	// All FK edges among included tables become join predicates.
	for _, fk := range w.DB.Catalog.FKs {
		if included[fk.FromTable] && included[fk.ToTable] {
			q.Joins = append(q.Joins, query.Join{
				LeftAlias: aliasOf[fk.FromTable], LeftCol: fk.FromColumn,
				RightAlias: aliasOf[fk.ToTable], RightCol: fk.ToColumn,
			})
		}
	}
	if !q.Connected() {
		return nil, fmt.Errorf("workload: template %s is not connected over the FK graph", name)
	}
	w.addFilters(q, nFilters, rng)
	// JOB-style aggregate output.
	q.Aggregates = []query.Aggregate{{Kind: query.AggCount}}
	if groupBy {
		if alias, col, ok := w.someAttrColumn(q, rng); ok {
			q.GroupBys = []query.GroupBy{{Alias: alias, Column: col}}
		}
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("workload: template %s: %w", name, err)
	}
	return q, nil
}

// attrColumns lists the filterable (non-key) columns of a table.
func (w *Workload) attrColumns(table string) []string {
	ct := w.DB.Catalog.MustTable(table)
	var out []string
	for _, c := range ct.Columns {
		if c.Name == "id" {
			continue
		}
		// Skip FK columns: filters belong on attributes.
		isFK := false
		for _, fk := range w.DB.Catalog.FKs {
			if fk.FromTable == table && fk.FromColumn == c.Name {
				isFK = true
				break
			}
		}
		if !isFK {
			out = append(out, c.Name)
		}
	}
	return out
}

func (w *Workload) someAttrColumn(q *query.Query, rng *rand.Rand) (alias, col string, ok bool) {
	perm := rng.Perm(len(q.Relations))
	for _, i := range perm {
		rel := q.Relations[i]
		cols := w.attrColumns(rel.Table)
		if len(cols) > 0 {
			return rel.Alias, cols[rng.Intn(len(cols))], true
		}
	}
	return "", "", false
}

// addFilters attaches n seeded filters on attribute columns of the query's
// relations, with values drawn from the columns' actual domains.
func (w *Workload) addFilters(q *query.Query, n int, rng *rand.Rand) {
	for attempts := 0; len(q.Filters) < n && attempts < n*10; attempts++ {
		rel := q.Relations[rng.Intn(len(q.Relations))]
		cols := w.attrColumns(rel.Table)
		if len(cols) == 0 {
			continue
		}
		colName := cols[rng.Intn(len(cols))]
		ct := w.DB.Catalog.MustTable(rel.Table)
		col, err := ct.Column(colName)
		if err != nil {
			continue
		}
		span := col.Max - col.Min
		var f query.Filter
		switch rng.Intn(3) {
		case 0: // equality on a domain value
			f = query.Filter{Alias: rel.Alias, Column: colName, Op: query.Eq, Value: col.Min + rng.Int63n(span+1)}
		case 1: // keep roughly the lower 20–80%
			f = query.Filter{Alias: rel.Alias, Column: colName, Op: query.Lt, Value: col.Min + span/5 + rng.Int63n(max64(3*span/5, 1))}
		default: // keep roughly the upper 20–80%
			f = query.Filter{Alias: rel.Alias, Column: colName, Op: query.Gt, Value: col.Min + rng.Int63n(max64(3*span/5, 1))}
		}
		// At most one filter per (alias, column): simpler and closer to JOB.
		dup := false
		for _, ex := range q.Filters {
			if ex.Alias == f.Alias && ex.Column == f.Column {
				dup = true
				break
			}
		}
		if !dup {
			q.Filters = append(q.Filters, f)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ByRelations generates a connected query over exactly n distinct relations
// via a seeded random walk on the FK graph (the Figure 3c sweep).
func (w *Workload) ByRelations(n int, seed int64) (*query.Query, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: relation count must be ≥ 1")
	}
	names := w.DB.Catalog.TableNames()
	if n > len(names) {
		return nil, fmt.Errorf("workload: %d relations exceeds the schema's %d tables", n, len(names))
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < 100; attempt++ {
		start := names[rng.Intn(len(names))]
		included := []string{start}
		set := map[string]bool{start: true}
		for len(included) < n {
			// Gather the frontier of FK neighbors.
			var frontier []string
			for _, t := range included {
				for _, nb := range w.DB.Catalog.Neighbors(t) {
					if !set[nb] {
						frontier = append(frontier, nb)
					}
				}
			}
			if len(frontier) == 0 {
				break
			}
			pick := frontier[rng.Intn(len(frontier))]
			included = append(included, pick)
			set[pick] = true
		}
		if len(included) != n {
			continue
		}
		sort.Strings(included)
		q, err := w.assemble(fmt.Sprintf("gen%d_%d", n, seed), included, 1+rng.Intn(3), rng.Intn(5) == 0, rng)
		if err == nil {
			return q, nil
		}
	}
	return nil, fmt.Errorf("workload: could not build a connected %d-relation query", n)
}

// Training returns a deterministic workload of count queries whose relation
// counts are uniform in [minRel, maxRel].
func (w *Workload) Training(count, minRel, maxRel int, seed int64) ([]*query.Query, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*query.Query, 0, count)
	for i := 0; i < count; i++ {
		n := minRel
		if maxRel > minRel {
			n += rng.Intn(maxRel - minRel + 1)
		}
		q, err := w.ByRelations(n, rng.Int63())
		if err != nil {
			return nil, err
		}
		q.Name = fmt.Sprintf("train%03d", i)
		out = append(out, q)
	}
	return out, nil
}
