package rl

import (
	"math/rand"
	"testing"
)

func TestMarshalPolicyRoundTrip(t *testing.T) {
	a := NewReinforce(4, 3, ReinforceConfig{Hidden: []int{8}, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	features := make([]float64, 4)
	for i := range features {
		features[i] = rng.NormFloat64()
	}
	mask := []bool{true, true, true}
	s := State{Features: features, Mask: mask}
	want := a.Probs(s)

	data, err := a.MarshalPolicy()
	if err != nil {
		t.Fatal(err)
	}
	b := NewReinforce(4, 3, ReinforceConfig{Hidden: []int{8}, Seed: 99})
	if err := b.UnmarshalPolicy(data); err != nil {
		t.Fatal(err)
	}
	got := b.Probs(s)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prob %d differs after restore: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestUnmarshalPolicyRejectsWrongDims(t *testing.T) {
	a := NewReinforce(4, 3, ReinforceConfig{Hidden: []int{8}, Seed: 1})
	data, err := a.MarshalPolicy()
	if err != nil {
		t.Fatal(err)
	}
	b := NewReinforce(5, 3, ReinforceConfig{Hidden: []int{8}, Seed: 1})
	if err := b.UnmarshalPolicy(data); err == nil {
		t.Fatal("accepted checkpoint with wrong input dimension")
	}
	c := NewReinforce(4, 7, ReinforceConfig{Hidden: []int{8}, Seed: 1})
	if err := c.UnmarshalPolicy(data); err == nil {
		t.Fatal("accepted checkpoint with wrong action dimension")
	}
}

func TestEntropyAnnealing(t *testing.T) {
	env := &banditEnv{rng: rand.New(rand.NewSource(1)), arms: 3}
	agent := NewReinforce(env.ObsDim(), env.ActionDim(), ReinforceConfig{
		Hidden: []int{8}, BatchSize: 4, EntropyCoef: 0.1, EntropyDecay: 0.5, Seed: 3,
	})
	if agent.entCoef != 0.1 {
		t.Fatalf("initial entropy coef %v", agent.entCoef)
	}
	for ep := 0; ep < 40; ep++ {
		traj := RunEpisode(env, agent.Sample, 5)
		agent.Observe(traj)
	}
	// After 10 updates at decay 0.5 the coefficient must sit at the floor.
	if agent.entCoef != agent.Cfg.EntropyMin {
		t.Fatalf("entropy coef %v, want floored at %v", agent.entCoef, agent.Cfg.EntropyMin)
	}
	if agent.Cfg.EntropyMin != 0.1/50 {
		t.Fatalf("default entropy floor %v, want EntropyCoef/50", agent.Cfg.EntropyMin)
	}
}

func TestEntropyNoDecayByDefault(t *testing.T) {
	env := &banditEnv{rng: rand.New(rand.NewSource(1)), arms: 3}
	agent := NewReinforce(env.ObsDim(), env.ActionDim(), ReinforceConfig{
		Hidden: []int{8}, BatchSize: 4, EntropyCoef: 0.1, Seed: 3,
	})
	for ep := 0; ep < 20; ep++ {
		traj := RunEpisode(env, agent.Sample, 5)
		agent.Observe(traj)
	}
	if agent.entCoef != 0.1 {
		t.Fatalf("entropy coef drifted to %v without decay configured", agent.entCoef)
	}
}
