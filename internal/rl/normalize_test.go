package rl

import (
	"math"
	"testing"
)

// TestRunningNormEdgeCases codifies RunningNorm's behavior on degenerate
// observation streams: no data, a single value, and non-finite inputs. The
// contract callers rely on is "Normalize is the identity until the
// statistics are trustworthy, and non-finite observations poison the
// statistics visibly instead of silently".
func TestRunningNormEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		observe []float64
		in      float64
		want    float64 // expected Normalize(in)
		mean    float64
		std     float64
	}{
		{name: "zero observations are identity", observe: nil, in: 3.5, want: 3.5, mean: 0, std: 0},
		{name: "single observation is identity", observe: []float64{5}, in: 7, want: 7, mean: 5, std: 0},
		{name: "identical observations are identity", observe: []float64{2, 2, 2}, in: 9, want: 9, mean: 2, std: 0},
		{name: "two observations standardize", observe: []float64{0, 2}, in: 2, want: 1, mean: 1, std: 1},
		{name: "single NaN is identity (std still zero)", observe: []float64{math.NaN()}, in: 4, want: 4, mean: math.NaN(), std: 0},
		{name: "NaN poisons the stream", observe: []float64{math.NaN(), 1}, in: 4, want: math.NaN(), mean: math.NaN(), std: math.NaN()},
		{name: "single +Inf is identity (std still zero)", observe: []float64{math.Inf(1)}, in: 4, want: 4, mean: math.Inf(1), std: 0},
		{name: "mixed infinities poison the stream", observe: []float64{math.Inf(1), math.Inf(-1)}, in: 4, want: math.NaN(), mean: math.NaN(), std: math.NaN()},
	}
	eq := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var rn RunningNorm
			for _, x := range c.observe {
				rn.Observe(x)
			}
			if rn.Count() != len(c.observe) {
				t.Fatalf("Count = %d, want %d", rn.Count(), len(c.observe))
			}
			if !eq(rn.Mean(), c.mean) {
				t.Fatalf("Mean = %v, want %v", rn.Mean(), c.mean)
			}
			if !eq(rn.Std(), c.std) {
				t.Fatalf("Std = %v, want %v", rn.Std(), c.std)
			}
			if got := rn.Normalize(c.in); !eq(got, c.want) {
				t.Fatalf("Normalize(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

// TestRangeEdgeCases codifies Range's behavior with no data, one value, and
// non-finite inputs. Notably a NaN after the first observation is ignored
// (every comparison with NaN is false), while a NaN as the FIRST observation
// pins the range to NaN forever — the §5.2 bootstrapping path must seed
// ranges from real phase-1 costs before rescaling anything.
func TestRangeEdgeCases(t *testing.T) {
	dst := func() *Range {
		var d Range
		d.Observe(10)
		d.Observe(50)
		return &d
	}
	eq := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}

	cases := []struct {
		name     string
		observe  []float64
		min, max float64
		in       float64
		want     float64 // expected Rescale(in, dst)
	}{
		{name: "zero observations rescale to midpoint", observe: nil, min: 0, max: 0, in: 3, want: 30},
		{name: "single observation rescales to midpoint", observe: []float64{7}, min: 7, max: 7, in: 7, want: 30},
		{name: "two points map linearly", observe: []float64{100, 200}, min: 100, max: 200, in: 150, want: 30},
		{name: "NaN first pins the range", observe: []float64{math.NaN(), 5, -5}, min: math.NaN(), max: math.NaN(), in: 1, want: math.NaN()},
		{name: "NaN later is ignored", observe: []float64{1, math.NaN(), 3}, min: 1, max: 3, in: 2, want: 30},
		{name: "infinite max collapses finite inputs to dst min", observe: []float64{1, math.Inf(1)}, min: 1, max: math.Inf(1), in: 1e12, want: 10},
		{name: "rescaling the infinite endpoint is NaN", observe: []float64{1, math.Inf(1)}, min: 1, max: math.Inf(1), in: math.Inf(1), want: math.NaN()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var r Range
			for _, x := range c.observe {
				r.Observe(x)
			}
			if r.Count() != len(c.observe) {
				t.Fatalf("Count = %d, want %d", r.Count(), len(c.observe))
			}
			if !eq(r.Min(), c.min) || !eq(r.Max(), c.max) {
				t.Fatalf("range [%v, %v], want [%v, %v]", r.Min(), r.Max(), c.min, c.max)
			}
			if got := r.Rescale(c.in, dst()); !eq(got, c.want) {
				t.Fatalf("Rescale(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}
