package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"handsfree/internal/nn"
)

// banditEnv is a contextual bandit: the context says which arm pays.
// One step per episode; reward 1 for the matching arm, 0 otherwise.
type banditEnv struct {
	rng  *rand.Rand
	arms int
	ctx  int
}

func (e *banditEnv) Reset() State {
	e.ctx = e.rng.Intn(e.arms)
	return e.state()
}

func (e *banditEnv) state() State {
	f := make([]float64, e.arms)
	f[e.ctx] = 1
	mask := make([]bool, e.arms)
	for i := range mask {
		mask[i] = true
	}
	return State{Features: f, Mask: mask}
}

func (e *banditEnv) Step(a int) (State, float64, bool) {
	r := 0.0
	if a == e.ctx {
		r = 1
	}
	return State{Terminal: true}, r, true
}

func (e *banditEnv) ObsDim() int    { return e.arms }
func (e *banditEnv) ActionDim() int { return e.arms }

// chainEnv is a two-step environment where the first action constrains the
// mask of the second; reaching cell (1,1) pays 1. It exercises masks and
// multi-step credit assignment.
type chainEnv struct {
	step  int
	first int
}

func (e *chainEnv) Reset() State {
	e.step = 0
	return e.state()
}

func (e *chainEnv) state() State {
	f := make([]float64, 4)
	f[e.step] = 1
	if e.step == 1 {
		f[2+e.first] = 1
	}
	mask := []bool{true, true, false, false}
	if e.step == 1 {
		mask = []bool{false, false, true, true}
	}
	return State{Features: f, Mask: mask}
}

func (e *chainEnv) Step(a int) (State, float64, bool) {
	if e.step == 0 {
		e.first = a
		e.step = 1
		return e.state(), 0, false
	}
	r := 0.0
	if e.first == 1 && a == 3 {
		r = 1
	}
	return State{Terminal: true}, r, true
}

func (e *chainEnv) ObsDim() int    { return 4 }
func (e *chainEnv) ActionDim() int { return 4 }

func TestReinforceLearnsContextualBandit(t *testing.T) {
	env := &banditEnv{rng: rand.New(rand.NewSource(42)), arms: 4}
	agent := NewReinforce(env.ObsDim(), env.ActionDim(), ReinforceConfig{
		Hidden: []int{32}, BatchSize: 8, Seed: 1,
	})
	for ep := 0; ep < 2000; ep++ {
		traj := RunEpisode(env, agent.Sample, 10)
		agent.Observe(traj)
	}
	// Greedy policy should be near-perfect now.
	correct := 0
	for trial := 0; trial < 100; trial++ {
		s := env.Reset()
		a := agent.Greedy(s)
		if a == env.ctx {
			correct++
		}
	}
	if correct < 90 {
		t.Fatalf("greedy policy correct on %d/100 contexts, want ≥ 90", correct)
	}
}

func TestReinforceLearnsMultiStepWithMasks(t *testing.T) {
	env := &chainEnv{}
	agent := NewReinforce(env.ObsDim(), env.ActionDim(), ReinforceConfig{
		Hidden: []int{16}, BatchSize: 8, Seed: 3,
	})
	for ep := 0; ep < 1500; ep++ {
		traj := RunEpisode(env, agent.Sample, 10)
		agent.Observe(traj)
	}
	traj := RunEpisode(env, agent.Greedy, 10)
	if traj.Return != 1 {
		t.Fatalf("greedy return = %v, want 1", traj.Return)
	}
}

func TestReinforceNeverPicksMaskedAction(t *testing.T) {
	env := &chainEnv{}
	agent := NewReinforce(env.ObsDim(), env.ActionDim(), ReinforceConfig{Hidden: []int{8}, Seed: 9})
	for ep := 0; ep < 200; ep++ {
		s := env.Reset()
		for !s.Terminal {
			a := agent.Sample(s)
			if a < 0 || !s.Mask[a] {
				t.Fatalf("sampled invalid action %d with mask %v", a, s.Mask)
			}
			next, _, done := env.Step(a)
			s = next
			if done {
				break
			}
		}
	}
}

func TestQAgentRegression(t *testing.T) {
	// Q agent should learn that in context i, action i has target 0 and
	// all others have target 1 (lower is better → Best picks the match).
	arms := 3
	agent := NewQAgent(arms, arms, QAgentConfig{Hidden: []int{32}, Seed: 5})
	buf := NewReplayBuffer(1000)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 600; i++ {
		ctx := rng.Intn(arms)
		f := make([]float64, arms)
		f[ctx] = 1
		a := rng.Intn(arms)
		target := 1.0
		if a == ctx {
			target = 0
		}
		buf.Add(Sample{Features: f, Action: a, Target: target})
	}
	for i := 0; i < 400; i++ {
		agent.Train(buf, 32)
	}
	mask := []bool{true, true, true}
	for ctx := 0; ctx < arms; ctx++ {
		f := make([]float64, arms)
		f[ctx] = 1
		if got := agent.Best(State{Features: f, Mask: mask}); got != ctx {
			t.Fatalf("context %d: best action %d, want %d (pred=%v)", ctx, got, ctx,
				agent.Predict(State{Features: f, Mask: mask}))
		}
	}
}

func TestReplayBufferEvictsOldest(t *testing.T) {
	buf := NewReplayBuffer(3)
	for i := 0; i < 5; i++ {
		buf.Add(Sample{Target: float64(i)})
	}
	if buf.Len() != 3 {
		t.Fatalf("len = %d, want 3", buf.Len())
	}
	seen := map[float64]bool{}
	for _, s := range buf.data {
		seen[s.Target] = true
	}
	for _, old := range []float64{0, 1} {
		if seen[old] {
			t.Fatalf("evicted sample %v still present", old)
		}
	}
}

func TestRunningNormMatchesBatchStats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var rn RunningNorm
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 7
		xs = append(xs, x)
		rn.Observe(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var variance float64
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	std := math.Sqrt(variance / float64(len(xs)))
	if math.Abs(rn.Mean()-mean) > 1e-9 || math.Abs(rn.Std()-std) > 1e-9 {
		t.Fatalf("running (%v, %v) vs batch (%v, %v)", rn.Mean(), rn.Std(), mean, std)
	}
}

// Property: rescaling a value from [a,b] into [c,d] keeps the endpoints.
func TestRangeRescaleEndpoints(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) || math.IsInf(d, 0) {
			return true
		}
		a, b = math.Mod(a, 1e6), math.Mod(b, 1e6)
		c, d = math.Mod(c, 1e6), math.Mod(d, 1e6)
		if a == b {
			return true
		}
		var src, dst Range
		src.Observe(a)
		src.Observe(b)
		dst.Observe(c)
		dst.Observe(d)
		lo := src.Rescale(src.Min(), &dst)
		hi := src.Rescale(src.Max(), &dst)
		return math.Abs(lo-dst.Min()) < 1e-6*(1+math.Abs(dst.Min())) &&
			math.Abs(hi-dst.Max()) < 1e-6*(1+math.Abs(dst.Max()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeRescaleMatchesPaperFormula(t *testing.T) {
	// Paper example: costs 10–50, latencies 100–200. A latency of 150 should
	// map to cost 30.
	var lat, cost Range
	lat.Observe(100)
	lat.Observe(200)
	cost.Observe(10)
	cost.Observe(50)
	if got := lat.Rescale(150, &cost); math.Abs(got-30) > 1e-12 {
		t.Fatalf("rescale(150) = %v, want 30", got)
	}
}

func TestRandomPolicyUniformOverValid(t *testing.T) {
	mask := []bool{false, true, false, true, true}
	pol := RandomPolicy(1)
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		a := pol(State{Mask: mask})
		if !mask[a] {
			t.Fatalf("random policy picked masked action %d", a)
		}
		counts[a]++
	}
	for _, i := range []int{1, 3, 4} {
		if counts[i] < 800 {
			t.Fatalf("action %d picked only %d/3000 times; not uniform", i, counts[i])
		}
	}
}

func TestStateNumValid(t *testing.T) {
	s := State{Mask: []bool{true, false, true}}
	if s.NumValid() != 2 {
		t.Fatalf("NumValid = %d, want 2", s.NumValid())
	}
}

// TestQAgentBestFallbackCounted: when every valid prediction is NaN, Best
// must return the first valid action AND count the anomaly, so diverged
// networks are observable rather than silently tolerated.
func TestQAgentBestFallbackCounted(t *testing.T) {
	// Pinned to f64: the test pokes NaNs straight into Params().
	agent := NewQAgent(2, 3, QAgentConfig{Hidden: []int{8}, Precision: nn.F64, Seed: 1})
	// Poison the network: NaN weights make every prediction NaN.
	for _, p := range agent.Net.Params() {
		for i := range p.Value {
			p.Value[i] = math.NaN()
		}
	}
	s := State{Features: []float64{1, 0}, Mask: []bool{false, true, true}}
	if got := agent.Best(s); got != 1 {
		t.Fatalf("Best = %d under all-NaN predictions, want first valid action 1", got)
	}
	if n := agent.BestFallbacks(); n != 1 {
		t.Fatalf("BestFallbacks = %d after one NaN fallback, want 1", n)
	}
	// A healthy call must not bump the counter.
	healthy := NewQAgent(2, 3, QAgentConfig{Hidden: []int{8}, Seed: 1})
	if a := healthy.Best(s); a < 0 || !s.Mask[a] {
		t.Fatalf("healthy Best returned %d", a)
	}
	if n := healthy.BestFallbacks(); n != 0 {
		t.Fatalf("BestFallbacks = %d on a healthy agent, want 0", n)
	}
	// An all-false mask still reports no action and counts nothing.
	if a := agent.Best(State{Features: []float64{1, 0}, Mask: []bool{false, false, false}}); a != -1 {
		t.Fatalf("Best = %d with an all-false mask, want -1", a)
	}
	if n := agent.BestFallbacks(); n != 1 {
		t.Fatalf("BestFallbacks = %d after all-false mask, want still 1", n)
	}
}
